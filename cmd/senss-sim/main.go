// Command senss-sim runs one workload on one simulated machine
// configuration and prints the measurements.
//
// Examples:
//
//	senss-sim -workload fft -procs 4 -mode senss
//	senss-sim -workload ocean -mode senss+mem -integrity -interval 10
//	senss-sim -printconfig
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"senss"
	"senss/internal/crypto"
	"senss/internal/trace"
)

func main() {
	var (
		name        = flag.String("workload", "fft", "workload: "+strings.Join(senss.WorkloadNames(), ", "))
		procs       = flag.Int("procs", 4, "number of processors (1-32)")
		l2          = flag.Int("l2", 64<<10, "L2 cache bytes per processor")
		l1          = flag.Int("l1", 4<<10, "L1 cache bytes (each of I and D)")
		mode        = flag.String("mode", "base", "security mode: base, senss, senss+mem, naive")
		integrity   = flag.Bool("integrity", false, "enable CHash memory integrity (with -mode senss+mem)")
		masks       = flag.Int("masks", 8, "SENSS mask banks (1, 2, 4, 8)")
		perfect     = flag.Bool("perfect", true, "perfect mask supply (no stalls)")
		authmode    = flag.String("authmode", "cbc", "bus construction: cbc (paper) or gf (GCM-style extension)")
		padupdate   = flag.Bool("padupdate", false, "write-update pad coherence (§6.1 variant) instead of invalidate")
		padperfect  = flag.Bool("padperfect", true, "perfect sequence-number cache (§7.7)")
		dispatch    = flag.Bool("dispatch", false, "establish groups via the full §4.1 RSA dispatch handshake")
		adaptive    = flag.Bool("adaptive", false, "load-adaptive authentication interval (§4.3 extension)")
		interval    = flag.Int("interval", 100, "authentication interval in cache-to-cache transfers (0 = off)")
		bench       = flag.Bool("bench", false, "use the larger bench-scale problem size")
		seed        = flag.Uint64("seed", 1, "simulation seed")
		backend     = flag.String("crypto", crypto.Ref, "crypto backend: "+strings.Join(crypto.Backends(), ", ")+" (ref is the fidelity oracle; cycle counts are identical across backends)")
		printConfig = flag.Bool("printconfig", false, "print the Figure 5 architectural parameters and exit")
		compare     = flag.Bool("compare", true, "also run the unprotected baseline and report slowdown")
		traceFile   = flag.String("trace", "", "record the bus transaction stream to this JSONL file")
		traceLimit  = flag.Int("tracelimit", 100000, "maximum transactions to trace")
	)
	flag.Parse()

	cfg := senss.DefaultConfig()
	cfg.Procs = *procs
	cfg.Coherence.L1Size = *l1
	cfg.Coherence.L2Size = *l2
	cfg.Seed = *seed
	cfg.Security.Senss.Masks = *masks
	cfg.Security.Senss.Perfect = *perfect
	cfg.Security.Senss.AuthInterval = *interval
	cfg.Security.Memsec.WriteUpdate = *padupdate
	cfg.Security.Memsec.PerfectSNC = *padperfect
	cfg.Security.FullDispatch = *dispatch
	cfg.Security.Senss.Adaptive = *adaptive
	if !crypto.Known(*backend) {
		fmt.Fprintf(os.Stderr, "senss-sim: unknown crypto backend %q (have %s)\n", *backend, strings.Join(crypto.Backends(), ", "))
		os.Exit(2)
	}
	cfg.Security.Senss.Backend = *backend
	switch *authmode {
	case "cbc":
		cfg.Security.Senss.AuthMode = senss.AuthCBC
	case "gf":
		cfg.Security.Senss.AuthMode = senss.AuthGF
	default:
		fmt.Fprintf(os.Stderr, "senss-sim: unknown authmode %q\n", *authmode)
		os.Exit(2)
	}
	switch *mode {
	case "base":
		cfg.Security.Mode = senss.SecurityOff
	case "senss":
		cfg.Security.Mode = senss.SecurityBus
	case "naive":
		cfg.Security.Mode = senss.SecurityBus
		cfg.Security.Naive = true
	case "senss+mem":
		cfg.Security.Mode = senss.SecurityBusMem
		cfg.Security.Integrity = *integrity
	default:
		fmt.Fprintf(os.Stderr, "senss-sim: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	if *printConfig {
		printFigure5(cfg)
		return
	}

	size := senss.SizeTest
	if *bench {
		size = senss.SizeBench
	}

	if *traceFile != "" {
		runTraced(*name, size, cfg, *traceFile, *traceLimit)
		return
	}

	if *mode == "base" || !*compare {
		run, err := senss.RunWorkload(*name, size, cfg)
		if err != nil {
			fail(err)
		}
		printRun(run)
		return
	}

	base, sec, err := senss.Compare(*name, size, cfg)
	if err != nil {
		fail(err)
	}
	fmt.Println("=== baseline ===")
	printRun(base)
	fmt.Printf("\n=== %s ===\n", *mode)
	printRun(sec)
	fmt.Printf("\nslowdown:             %8.3f %%\n", senss.SlowdownPct(base, sec))
	fmt.Printf("bus traffic increase: %8.3f %%\n", senss.TrafficIncreasePct(base, sec))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "senss-sim:", err)
	os.Exit(1)
}

// runTraced runs one workload with bus tracing and writes the JSONL file
// plus a summary.
func runTraced(name string, size senss.Size, cfg senss.Config, path string, limit int) {
	cfg.TraceLimit = limit
	w, err := senss.NewWorkload(name, size)
	if err != nil {
		fail(err)
	}
	m := senss.NewMachine(cfg)
	progs := w.Setup(m, cfg.Procs)
	run, err := m.Run(progs)
	if err != nil {
		fail(err)
	}
	if err := w.Validate(m); err != nil {
		fail(err)
	}
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	if err := m.Trace.WriteJSONL(f); err != nil {
		fail(err)
	}
	// An unchecked Close on a written file can silently lose buffered
	// output.
	if err := f.Close(); err != nil {
		fail(err)
	}
	printRun(run)
	fmt.Printf("\ntrace: %d events to %s (%d beyond limit dropped)\n",
		len(m.Trace.Events), path, m.Trace.Dropped)
	trace.Summarize(m.Trace.Events).Format(os.Stdout)
}

func printRun(r senss.Run) {
	fmt.Printf("cycles:            %d\n", r.Cycles)
	fmt.Printf("bus transactions:  %d (%d cache-to-cache, %d memory fills)\n", r.BusTotal, r.C2C, r.MemFills)
	kinds := make([]string, 0, len(r.BusByKind))
	for k := range r.BusByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf("  %-10s %d\n", k, r.BusByKind[k])
	}
	fmt.Printf("bus busy cycles:   %d\n", r.BusBusy)
	if r.ArbWaits > 0 {
		fmt.Printf("bus contention:    %d waits, %d cycles total, %d worst\n",
			r.ArbWaits, r.ArbWaitCyc, r.ArbWaitMax)
	}
	fmt.Printf("memory ops:        %d loads, %d stores, %d RMWs\n", r.Loads, r.Stores, r.RMWs)
	fmt.Printf("L1D hits/misses:   %d/%d\n", r.L1DHits, r.L1DMisses)
	fmt.Printf("L2 hits/misses:    %d/%d\n", r.L2Hits, r.L2Misses)
	if r.AuthMsgs > 0 || r.MaskStalls > 0 {
		fmt.Printf("SENSS:             %d auth msgs, %d mask-stall cycles\n", r.AuthMsgs, r.MaskStalls)
	}
	if r.AuthUps+r.AuthDowns > 0 {
		fmt.Printf("adaptive auth:     %d interval raises, %d drops\n", r.AuthUps, r.AuthDowns)
	}
	if r.PadMsgs > 0 {
		fmt.Printf("memsec:            %d pad msgs (%d hits, %d misses)\n", r.PadMsgs, r.PadHits, r.PadMisses)
	}
	if r.HashOps > 0 {
		fmt.Printf("integrity:         %d hash ops\n", r.HashOps)
	}
	if r.Halted {
		fmt.Printf("HALTED:            %s\n", r.HaltReason)
	}
}

func printFigure5(cfg senss.Config) {
	fmt.Println("Architectural parameters (paper Figure 5)")
	fmt.Println("-----------------------------------------")
	fmt.Printf("processors:             %d at 1 GHz, in-order\n", cfg.Procs)
	fmt.Printf("L1 I/D caches:          %d KB each, %d-way, %d B lines, %d-cycle hit\n",
		cfg.Coherence.L1Size>>10, cfg.Coherence.L1Ways, cfg.Coherence.L1Line, cfg.Coherence.L1HitLat)
	fmt.Printf("L2 cache:               %d KB, %d-way, %d B lines, %d-cycle hit, write-back\n",
		cfg.Coherence.L2Size>>10, cfg.Coherence.L2Ways, cfg.Coherence.L2Line, cfg.Coherence.L2HitLat)
	fmt.Printf("coherence:              MOESI write-invalidate snooping\n")
	fmt.Printf("shared bus:             %d B/bus-cycle at CPU/%d (3.2 GB/s-class)\n",
		cfg.Bus.BytesPerBusCycle, cfg.Bus.BusCycle)
	fmt.Printf("cache-to-cache latency: %d cycles (uncontended)\n", cfg.Bus.C2CLat)
	fmt.Printf("memory latency:         %d cycles\n", cfg.Bus.MemLat)
	fmt.Printf("AES unit:               %d-cycle latency, bus-matched throughput\n", cfg.Security.Senss.AESLatency)
	fmt.Printf("hash unit:              %d-cycle latency\n", cfg.Security.Tree.HashLatency)
	fmt.Printf("SENSS bus overhead:     +%d cycles per tagged message\n", cfg.Security.Senss.BusOverhead)
	fmt.Printf("mask banks:             %d (perfect=%v), auth interval %d\n",
		cfg.Security.Senss.Masks, cfg.Security.Senss.Perfect, cfg.Security.Senss.AuthInterval)
}
