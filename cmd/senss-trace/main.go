// Command senss-trace analyzes a bus trace recorded with
// `senss-sim -trace file.jsonl`: summary, per-kind/per-CPU breakdown, the
// hottest (most contended) cache lines, and the inter-transaction gap
// histogram the adaptive authentication controller keys on.
//
//	senss-sim -workload radix -mode senss -trace /tmp/radix.jsonl
//	senss-trace /tmp/radix.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"senss/internal/trace"
)

func main() {
	top := flag.Int("top", 10, "how many hot lines to show")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: senss-trace [-top N] <trace.jsonl>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "senss-trace:", err)
		os.Exit(1)
	}
	events, err := trace.ReadJSONL(f)
	_ = f.Close() // read-only; a close failure cannot corrupt anything
	if err != nil {
		fmt.Fprintln(os.Stderr, "senss-trace:", err)
		os.Exit(1)
	}

	trace.Summarize(events).Format(os.Stdout)

	fmt.Printf("\nhottest lines (top %d):\n", *top)
	fmt.Printf("  %-12s %8s %8s %s\n", "address", "accesses", "c2c", "requesters")
	for _, h := range trace.HotLines(events, *top) {
		fmt.Printf("  %#-12x %8d %8d %d\n", h.Addr, h.Accesses, h.C2C, h.Requesters)
	}

	fmt.Println("\ninter-transaction gap histogram (cycles, power-of-two buckets):")
	hist := trace.GapHistogram(events)
	maxBucket := 0
	for b := range hist {
		if b > maxBucket {
			maxBucket = b
		}
	}
	for b := 0; b <= maxBucket; b++ {
		if hist[b] == 0 {
			continue
		}
		fmt.Printf("  [%6d, %6d)  %d\n", 1<<b, 1<<(b+1), hist[b])
	}
}
