// Command senss-verify runs the full reproduction checklist in one shot:
// every workload validated under every security mode, the MOESI
// invariants, every attack scenario, and the §7.1 arithmetic. It is the
// release smoke test — a green run means the repository reproduces the
// paper's functional claims on this machine.
//
//	senss-verify            # ~15s
//	senss-verify -quick     # subset, ~3s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"senss"
	"senss/internal/attack"
	"senss/internal/core"
)

var failures int

func check(area, name string, err error) {
	if err != nil {
		failures++
		fmt.Printf("✘ %-12s %-28s %v\n", area, name, err)
		return
	}
	fmt.Printf("✔ %-12s %s\n", area, name)
}

func main() {
	quick := flag.Bool("quick", false, "run a reduced checklist")
	flag.Parse()
	start := time.Now()

	workloads := senss.WorkloadNames()
	baseCfg := senss.DefaultConfig()
	baseCfg.Procs = 4
	baseCfg.Coherence.L1Size = 4 << 10
	baseCfg.Coherence.L2Size = 32 << 10

	if *quick {
		workloads = []string{"radix", "ocean", "lockcontend"}
	}

	// 1. Workload correctness per security mode. RunWorkload validates
	// the computed result and fails on any false alarm.
	for _, name := range workloads {
		cfg := baseCfg
		check("baseline", name, run(name, cfg))

		cfg.Security.Mode = senss.SecurityBus
		cfg.Security.Senss.AuthInterval = 32
		check("senss", name, run(name, cfg))

		if !*quick {
			cfg.Security.Mode = senss.SecurityBusMem
			cfg.Security.Integrity = true
			check("senss+mem", name, run(name, cfg))
		}
	}

	// 2. GCM-style extension mode.
	gfCfg := baseCfg
	gfCfg.Security.Mode = senss.SecurityBus
	gfCfg.Security.Senss.AuthMode = senss.AuthGF
	gfCfg.Security.Senss.Perfect = false
	gfCfg.Security.Senss.Masks = 1
	check("authgf", "radix (1 mask, no stalls)", run("radix", gfCfg))

	// 3. Attack scenarios: every verdict must match the paper.
	for _, sc := range attack.Scenarios() {
		rep := sc.Run(2025)
		var err error
		if !rep.OK() {
			err = fmt.Errorf("verdict: %s", rep.Verdict())
		}
		check("attack", sc.Name, err)
	}

	// 4. §7.1 arithmetic.
	h := core.ComputeHWCost(core.DefaultHWCost())
	var hwErr error
	if h.MatrixBytes != 640 || h.EntryBits != 1161 || h.TableBytes != 148608 {
		hwErr = fmt.Errorf("got %d B / %d bits / %d B", h.MatrixBytes, h.EntryBits, h.TableBytes)
	}
	check("hwcost", "matrix 640B, entry 1161b, table 148.6KB", hwErr)

	fmt.Printf("\n%d failure(s) in %.1fs\n", failures, time.Since(start).Seconds())
	if failures > 0 {
		os.Exit(1)
	}
}

// run executes and validates one workload, checking invariants afterwards.
func run(name string, cfg senss.Config) error {
	w, err := senss.NewWorkload(name, senss.SizeTest)
	if err != nil {
		return err
	}
	m := senss.NewMachine(cfg)
	progs := w.Setup(m, cfg.Procs)
	if _, err := m.Run(progs); err != nil {
		return err
	}
	if halted, why := m.Halted(); halted {
		return fmt.Errorf("false alarm: %s", why)
	}
	if err := w.Validate(m); err != nil {
		return err
	}
	if err := m.CheckInvariants(); err != nil {
		return err
	}
	m.Shutdown()
	return nil
}
