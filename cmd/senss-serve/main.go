// Command senss-serve hosts SENSS simulations behind the HTTP/JSON API
// in internal/serve: multi-tenant sessions over a lock-striped table, a
// service-wide SHU group accountant with per-tenant quotas, and a
// bounded worker pool that answers saturation with 429 + Retry-After.
//
// Subcommands:
//
//	senss-serve serve -addr 127.0.0.1:8080 [-workers N] [-quota N] [-smoke]
//	senss-serve bench -tenants 4 -sessions 16 -out BENCH_serve.json
//
// "serve" runs the service until interrupted. With -smoke it instead
// binds an ephemeral port, drives one secured session to completion
// through its own HTTP API, checks the group accounting drained, and
// exits — the self-test "make verify" runs.
//
// "bench" starts an in-process server on an ephemeral port, drives M
// tenants × K sessions through it, and writes the sessions/sec,
// step-latency percentile, and group-occupancy record.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"senss/internal/serve"
)

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "serve":
		err = cmdServe(args)
	case "bench":
		err = cmdBench(args)
	case "help", "-h", "-help", "--help":
		usage(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "senss-serve: unknown subcommand %q\n\n", cmd)
		usage(os.Stderr)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "senss-serve: %v\n", err)
		os.Exit(1)
	}
}

func usage(w *os.File) {
	fmt.Fprint(w, `senss-serve — multi-tenant SENSS simulation service

usage: senss-serve <serve|bench> [flags]

serve flags:
  -addr       listen address (default 127.0.0.1:8080; -smoke uses :0)
  -shards     session-table stripe count (default 16)
  -workers    concurrent simulation slices (default 8)
  -backlog    admission waiting room beyond workers (default 32)
  -step       default step slice in cycles (default 200000)
  -capacity   service-wide SHU group budget (default 1024)
  -quota      per-tenant group quota, 0 = unlimited (default 0)
  -idle       evict sessions idle this long, 0 = never (default 0)
  -sweep      janitor period when -idle is set (default 30s)
  -smoke      run the self-test against an ephemeral port and exit

bench flags:
  -addr       external server to load; empty starts one in-process
  -tenants    tenant count M (default 4)
  -sessions   sessions per tenant K (default 16)
  -workload   workload every session runs (default lockcontend)
  -security   session protection mode (default senss)
  -step       requested step slice in cycles (0 = server default)
  -conc       concurrent client requests (default 2*tenants)
  -workers    in-process server worker bound (default 8)
  -out        report path (default BENCH_serve.json)
`)
}

type serveFlags struct {
	fs       *flag.FlagSet
	addr     *string
	shards   *int
	workers  *int
	backlog  *int
	step     *uint64
	capacity *int
	quota    *int
	idle     *time.Duration
	sweep    *time.Duration
}

func newServeFlags(name string) serveFlags {
	fs := flag.NewFlagSet("senss-serve "+name, flag.ExitOnError)
	return serveFlags{
		fs:       fs,
		addr:     fs.String("addr", "127.0.0.1:8080", "listen address"),
		shards:   fs.Int("shards", 0, "session-table stripe count"),
		workers:  fs.Int("workers", 0, "concurrent simulation slices"),
		backlog:  fs.Int("backlog", 0, "admission waiting room"),
		step:     fs.Uint64("step", 0, "default step slice in cycles"),
		capacity: fs.Int("capacity", 0, "service-wide SHU group budget"),
		quota:    fs.Int("quota", 0, "per-tenant group quota (0 = unlimited)"),
		idle:     fs.Duration("idle", 0, "idle-session eviction timeout (0 = never)"),
		sweep:    fs.Duration("sweep", 30*time.Second, "eviction janitor period"),
	}
}

func (f serveFlags) options() serve.Options {
	return serve.Options{
		Shards:        *f.shards,
		Workers:       *f.workers,
		Backlog:       *f.backlog,
		StepCycles:    *f.step,
		GroupCapacity: *f.capacity,
		TenantQuota:   *f.quota,
		IdleTimeout:   *f.idle,
		SweepEvery:    *f.sweep,
	}
}

func cmdServe(args []string) error {
	f := newServeFlags("serve")
	smoke := f.fs.Bool("smoke", false, "run the self-test and exit")
	if err := f.fs.Parse(args); err != nil {
		return err
	}
	srv := serve.New(f.options())
	defer srv.Close()

	addr := *f.addr
	if *smoke {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", addr, err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	if *smoke {
		go hs.Serve(ln)
		defer closeServer(hs)
		return runSmoke(srv, "http://"+ln.Addr().String())
	}
	fmt.Printf("senss-serve: listening on http://%s\n", ln.Addr())
	return hs.Serve(ln)
}

// closeServer tears down an ephemeral in-process HTTP server. The
// process is exiting either way, but a failed teardown still gets a line
// on stderr rather than vanishing into a blank discard.
func closeServer(hs *http.Server) {
	if err := hs.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "senss-serve: closing http server: %v\n", err)
	}
}

// runSmoke drives one secured session to completion through the real
// HTTP surface and checks the books balance afterwards.
func runSmoke(srv *serve.Server, baseURL string) error {
	rep, err := serve.RunBench(serve.BenchOptions{
		BaseURL:           baseURL,
		Tenants:           2,
		SessionsPerTenant: 1,
		Workload:          "lockcontend",
		Security:          "senss",
	})
	if err != nil {
		return fmt.Errorf("smoke: %w", err)
	}
	if rep.Completed != 2 || rep.Failed != 0 {
		return fmt.Errorf("smoke: completed=%d failed=%d", rep.Completed, rep.Failed)
	}
	if st := srv.Stats(); st.GroupsInUse != 0 || st.Sessions != 0 {
		return fmt.Errorf("smoke: books did not drain: groups=%d sessions=%d", st.GroupsInUse, st.Sessions)
	}
	fmt.Printf("senss-serve smoke OK: %d sessions, %d steps, p50 %.2fms\n",
		rep.Completed, rep.Steps, rep.StepP50MS)
	return nil
}

func cmdBench(args []string) error {
	f := newServeFlags("bench")
	tenants := f.fs.Int("tenants", 4, "tenant count")
	sessions := f.fs.Int("sessions", 16, "sessions per tenant")
	workloadName := f.fs.String("workload", "lockcontend", "workload to run")
	security := f.fs.String("security", "senss", "protection mode")
	conc := f.fs.Int("conc", 0, "concurrent client requests")
	out := f.fs.String("out", "BENCH_serve.json", "report path")
	external := f.fs.String("target", "", "external server base URL (empty = in-process)")
	if err := f.fs.Parse(args); err != nil {
		return err
	}

	baseURL := *external
	if baseURL == "" {
		srv := serve.New(f.options())
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("listen: %w", err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer closeServer(hs)
		baseURL = "http://" + ln.Addr().String()
	}

	start := time.Now()
	rep, err := serve.RunBench(serve.BenchOptions{
		BaseURL:           baseURL,
		Tenants:           *tenants,
		SessionsPerTenant: *sessions,
		Workload:          *workloadName,
		Security:          *security,
		StepCycles:        *f.step,
		Concurrency:       *conc,
	})
	if err != nil {
		return err
	}
	record := struct {
		Timestamp string `json:"timestamp"`
		serve.BenchReport
	}{Timestamp: start.UTC().Format(time.RFC3339), BenchReport: rep}
	data, err := json.MarshalIndent(record, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("senss-serve bench: %d sessions in %.1fms (%.1f/sec), step p50 %.2fms p99 %.2fms, peak groups %d/%d -> %s\n",
		rep.Completed, rep.WallMS, rep.SessionsPerSec, rep.StepP50MS, rep.StepP99MS,
		rep.PeakGroups, rep.GroupCapacity, *out)
	return nil
}
