// Command senss-fuzz replays fuzz corpus entries against the lockstep
// reference models outside the test binary: every checked-in seed (and
// any crasher the fuzzer minimized into the corpus) runs through the same
// decoders as the `go test -fuzz` targets, and the first divergence is
// printed with its full report.
//
//	senss-fuzz                               # replay the whole corpus
//	senss-fuzz -target FuzzAdversary         # one target's corpus
//	senss-fuzz -entry path/to/corpusfile -target FuzzSchedule
//
// Run from the repository root (or point -corpus at the testdata/fuzz
// directory). Exit status 1 means at least one entry diverged.
package main

import (
	"flag"
	"fmt"
	"os"

	"senss/internal/fuzzing"
)

func main() {
	corpus := flag.String("corpus", "internal/fuzzing/testdata/fuzz",
		"corpus root directory (one subdirectory per fuzz target)")
	target := flag.String("target", "", "replay only this target (FuzzSchedule, FuzzAdversary, FuzzConfig)")
	entry := flag.String("entry", "", "replay a single corpus file (requires -target)")
	flag.Parse()

	if *entry != "" {
		if *target == "" {
			fmt.Fprintln(os.Stderr, "senss-fuzz: -entry requires -target")
			os.Exit(2)
		}
		data, err := fuzzing.ParseCorpusFile(*entry)
		if err != nil {
			fmt.Fprintf(os.Stderr, "senss-fuzz: %v\n", err)
			os.Exit(2)
		}
		if err := fuzzing.Run(*target, data); err != nil {
			fmt.Printf("FAIL %s %s\n  %v\n", *target, *entry, err)
			os.Exit(1)
		}
		fmt.Printf("PASS %s %s\n", *target, *entry)
		return
	}

	results, err := fuzzing.ReplayCorpus(*corpus)
	if err != nil {
		fmt.Fprintf(os.Stderr, "senss-fuzz: %v\n", err)
		os.Exit(2)
	}
	if len(results) == 0 {
		fmt.Fprintf(os.Stderr, "senss-fuzz: no corpus entries under %s (run from the repository root?)\n", *corpus)
		os.Exit(2)
	}
	failures := 0
	for _, r := range results {
		if *target != "" && r.Target != *target {
			continue
		}
		if r.Err != nil {
			failures++
			fmt.Printf("FAIL %s/%s (%d ms)\n  %v\n", r.Target, r.Entry, r.WallMS, r.Err)
		} else {
			fmt.Printf("PASS %s/%s (%d ms)\n", r.Target, r.Entry, r.WallMS)
		}
	}
	if failures > 0 {
		fmt.Printf("%d corpus entr%s diverged\n", failures, plural(failures))
		os.Exit(1)
	}
}

func plural(n int) string {
	if n == 1 {
		return "y"
	}
	return "ies"
}
