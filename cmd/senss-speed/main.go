// Command senss-speed measures the software crypto backends behind the
// simulator (gocryptfs `speed` style): raw block-encrypt throughput, the
// memsec pad-stream kernel, the chained CBC-MAC, and end-to-end secured
// simulation, per registered backend. It writes the results to
// BENCH_crypto.json — the pinned trajectory point for the crypto layer —
// and prints a human-readable summary.
//
// The backend never affects simulated time (the SHU's AES is charged in
// modeled cycles), so these are host wall-clock numbers only: they bound
// how fast the simulator itself can run, not what the modeled hardware
// does.
//
// Examples:
//
//	senss-speed
//	senss-speed -quick -out /dev/stdout
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"senss"
	"senss/internal/crypto"
	"senss/internal/crypto/aes"
	"senss/internal/crypto/cbcmac"
	"senss/internal/rng"
)

// backendReport is one backend's row of the emitted JSON.
type backendReport struct {
	Name string `json:"name"`
	// BlockEncryptMBps is raw single-block AES throughput.
	BlockEncryptMBps float64 `json:"block_encrypt_mbps"`
	// PadStreamMBps is the memsec kernel: four AES_K(addr‖seq‖i) blocks
	// per 64-byte line.
	PadStreamMBps float64 `json:"pad_stream_mbps"`
	// CBCMACMBps is the Eq. (1) authentication chain.
	CBCMACMBps float64 `json:"cbcmac_mbps"`
	// E2ESimOpsPerSecond is simulated memory operations per host second
	// for a fully secured (bus+mem) run under this backend.
	E2ESimOpsPerSecond float64 `json:"e2e_sim_ops_per_second"`
	// E2ECycles pins cross-backend fidelity: simulated cycle counts must
	// be byte-identical for every backend.
	E2ECycles uint64 `json:"e2e_sim_cycles"`
}

// speedReport is the BENCH_crypto.json schema.
type speedReport struct {
	Benchmark  string          `json:"benchmark"`
	Date       string          `json:"date"`
	HostCPUs   int             `json:"host_cpus"`
	Gomaxprocs int             `json:"gomaxprocs"`
	Quick      bool            `json:"quick"`
	Workload   string          `json:"workload"`
	Backends   []backendReport `json:"backends"`
	// StdlibBlockSpeedup is stdlib/ref block-encrypt throughput — the
	// headline ratio the issue tracks (AES-NI vs table-based reference).
	StdlibBlockSpeedup float64 `json:"stdlib_block_speedup"`
}

func main() {
	var (
		quick    = flag.Bool("quick", false, "short measurement intervals (CI smoke; numbers are noisy)")
		out      = flag.String("out", "BENCH_crypto.json", "output file")
		name     = flag.String("workload", "ocean", "workload for the end-to-end secured run")
		measure  = flag.Duration("t", 400*time.Millisecond, "target time per microbenchmark")
		e2eIters = flag.Int("e2e-iters", 3, "end-to-end run repetitions")
	)
	flag.Parse()
	if *quick {
		*measure = 40 * time.Millisecond
		*e2eIters = 1
	}

	report := speedReport{
		Benchmark:  "crypto-backends",
		Date:       time.Now().UTC().Format(time.RFC3339),
		HostCPUs:   runtime.NumCPU(),
		Gomaxprocs: runtime.GOMAXPROCS(0),
		Quick:      *quick,
		Workload:   *name,
	}

	var refMBps, stdlibMBps float64
	for _, backend := range crypto.Backends() {
		br := backendReport{Name: backend}
		br.BlockEncryptMBps = benchBlockEncrypt(backend, *measure)
		br.PadStreamMBps = benchPadStream(backend, *measure)
		br.CBCMACMBps = benchCBCMAC(backend, *measure)
		ops, cycles, secs, err := benchE2E(backend, *name, *e2eIters)
		if err != nil {
			fail(err)
		}
		br.E2ESimOpsPerSecond = float64(ops) / secs
		br.E2ECycles = cycles
		report.Backends = append(report.Backends, br)

		fmt.Printf("%-8s blockEncrypt %9.1f MB/s   padStream %9.1f MB/s   cbcmac %9.1f MB/s   e2e %9.0f simOps/s\n",
			backend, br.BlockEncryptMBps, br.PadStreamMBps, br.CBCMACMBps, br.E2ESimOpsPerSecond)

		switch backend {
		case crypto.Ref:
			refMBps = br.BlockEncryptMBps
		case crypto.Stdlib:
			stdlibMBps = br.BlockEncryptMBps
		}
	}
	if refMBps > 0 {
		report.StdlibBlockSpeedup = stdlibMBps / refMBps
		fmt.Printf("stdlib/ref block-encrypt speedup: %.1fx\n", report.StdlibBlockSpeedup)
	}

	// Cross-backend fidelity gate: identical simulated cycle counts.
	for _, br := range report.Backends[1:] {
		if br.E2ECycles != report.Backends[0].E2ECycles {
			fail(fmt.Errorf("backend %s simulated %d cycles, %s simulated %d — backends must be cycle-identical",
				br.Name, br.E2ECycles, report.Backends[0].Name, report.Backends[0].E2ECycles))
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "senss-speed:", err)
	os.Exit(1)
}

// throughput runs body (which processes bytesPerCall bytes) in batches
// until the target measurement time elapses, returning MB/s (1 MB = 1e6
// bytes, matching gocryptfs speed).
func throughput(target time.Duration, bytesPerCall int, body func()) float64 {
	const batch = 4096
	var calls int
	t0 := time.Now()
	for time.Since(t0) < target {
		for i := 0; i < batch; i++ {
			body()
		}
		calls += batch
	}
	secs := time.Since(t0).Seconds()
	return float64(calls) * float64(bytesPerCall) / secs / 1e6
}

func benchBlockEncrypt(backend string, target time.Duration) float64 {
	r := rng.New(0xb10c)
	c := crypto.MustBackend(backend, aes.Block(r.Block16()))
	in := aes.Block(r.Block16())
	var sink aes.Block
	mbps := throughput(target, aes.BlockSize, func() {
		sink = c.Encrypt(in)
		in[0] = sink[0] // serialize: next input depends on last output
	})
	return mbps
}

// benchPadStream mirrors memsec.Layer.pad: four counter-derived AES
// blocks per 64-byte line.
func benchPadStream(backend string, target time.Duration) float64 {
	r := rng.New(0x9ad5)
	c := crypto.MustBackend(backend, aes.Block(r.Block16()))
	const lineBytes = 64
	var addr, seq uint64 = 0x1000, 1
	var sink byte
	mbps := throughput(target, lineBytes, func() {
		for i := 0; i*aes.BlockSize < lineBytes; i++ {
			b := c.Encrypt(aes.BlockFromUint64(addr, seq<<8|uint64(i)))
			sink ^= b[0]
		}
		addr += lineBytes
		seq++
	})
	_ = sink
	return mbps
}

func benchCBCMAC(backend string, target time.Duration) float64 {
	r := rng.New(0x3ac)
	c := crypto.MustBackend(backend, aes.Block(r.Block16()))
	m := cbcmac.New(c, aes.Block(r.Block16()))
	in := aes.Block(r.Block16())
	return throughput(target, aes.BlockSize, func() {
		m.Update(in)
	})
}

// benchE2E runs a fully secured (bus + memory pads) simulation under the
// backend and reports total simulated memory operations, the simulated
// cycle count of one run, and elapsed host seconds.
func benchE2E(backend, name string, iters int) (ops, cycles uint64, secs float64, err error) {
	cfg := senss.DefaultConfig()
	cfg.Procs = 4
	cfg.Coherence.L1Size = 4 << 10
	cfg.Coherence.L2Size = 64 << 10
	cfg.CPU.CodeBytes = 2 << 10
	cfg.Security.Mode = senss.SecurityBusMem
	cfg.Security.Senss.Backend = backend

	// One warmup run (page-in, code layout) before the measured loop.
	if _, err := senss.RunWorkload(name, senss.SizeTest, cfg); err != nil {
		return 0, 0, 0, err
	}
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		run, err := senss.RunWorkload(name, senss.SizeTest, cfg)
		if err != nil {
			return 0, 0, 0, err
		}
		ops += run.Loads + run.Stores + run.RMWs
		cycles = run.Cycles
	}
	return ops, cycles, time.Since(t0).Seconds(), nil
}
