package main

import (
	"bytes"
	"flag"
	"os"
	"testing"

	"senss/internal/attack"
)

var update = flag.Bool("update", false, "rewrite the golden stdout file")

// TestGoldenStdout pins the full stdout of `senss-attack` (default seed,
// all scenarios) to a golden file, in the same spirit as the repository's
// golden cycle counts: the attack reports are part of the artifact the
// paper reproduction presents, so any wording or verdict change must be a
// deliberate decision. Regenerate with `go test ./cmd/senss-attack -update`.
func TestGoldenStdout(t *testing.T) {
	var buf bytes.Buffer
	if failures := runScenarios(&buf, attack.Scenarios(), 2025, ""); failures != 0 {
		t.Fatalf("%d scenario(s) deviated from the paper's prediction:\n%s", failures, buf.String())
	}

	const golden = "testdata/golden_stdout.txt"
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("stdout diverged from %s — if intentional, rerun with -update\ngot:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}
}

// TestScenarioFilter: -scenario restricts the run to one named scenario.
func TestScenarioFilter(t *testing.T) {
	scenarios := attack.Scenarios()
	if len(scenarios) < 2 {
		t.Skip("needs at least two scenarios")
	}
	var buf bytes.Buffer
	runScenarios(&buf, scenarios, 2025, scenarios[0].Name)
	if !bytes.Contains(buf.Bytes(), []byte(scenarios[0].Name)) {
		t.Errorf("filtered run missing scenario %q", scenarios[0].Name)
	}
	if bytes.Contains(buf.Bytes(), []byte("=== "+scenarios[1].Name+" ===")) {
		t.Errorf("filtered run included unselected scenario %q", scenarios[1].Name)
	}
}
