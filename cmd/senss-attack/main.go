// Command senss-attack runs the canned bus-attack scenarios of paper §3
// and §4.3 — the §3.1 pad-reuse break, Type 1 dropping, Type 2
// reordering (plus the strawman that misses it), Type 3 spoofing and
// replay — and reports whether each is detected as the paper predicts.
//
// Example:
//
//	senss-attack -seed 42
//	senss-attack -scenario type1-drop
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"senss/internal/attack"
)

func main() {
	var (
		seed = flag.Uint64("seed", 2025, "scenario randomness seed")
		only = flag.String("scenario", "", "run a single named scenario")
		list = flag.Bool("list", false, "list scenarios and exit")
	)
	flag.Parse()

	scenarios := attack.Scenarios()
	if *list {
		for _, sc := range scenarios {
			fmt.Printf("%-26s %s\n", sc.Name, sc.Description)
		}
		return
	}

	failures := runScenarios(os.Stdout, scenarios, *seed, *only)
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "senss-attack: %d scenario(s) deviated from the paper's prediction\n", failures)
		os.Exit(1)
	}
}

// runScenarios executes every selected scenario under seed, writes the
// report to w, and returns how many deviated from the paper's
// prediction. The output for a fixed seed is deterministic — a golden
// test pins it.
func runScenarios(w io.Writer, scenarios []attack.Scenario, seed uint64, only string) int {
	failures := 0
	for _, sc := range scenarios {
		if only != "" && sc.Name != only {
			continue
		}
		rep := sc.Run(seed)
		fmt.Fprintf(w, "=== %s ===\n", sc.Name)
		fmt.Fprintf(w, "    %s\n", sc.Description)
		for _, d := range rep.Details {
			fmt.Fprintf(w, "    • %s\n", d)
		}
		fmt.Fprintf(w, "    verdict: %s\n\n", rep.Verdict())
		if !rep.OK() {
			failures++
		}
	}
	return failures
}
