package main

import (
	"os"
	"path/filepath"
	"testing"

	"senss/internal/lint"
)

// TestLintEntryRoundTrip pins the verdict cache contract: a written entry
// reads back only under its own hash, and corrupt or mismatched entries
// are rejected (recomputed, never trusted).
func TestLintEntryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lint", "sha256-abc.json")

	env := lintEnvelope{
		Schema:      "senss-lint/1",
		ContentHash: "sha256:abc",
		Analyzers:   []string{"taintflow"},
		Findings:    []lint.Diagnostic{},
	}
	if err := writeLintEntry(path, env); err != nil {
		t.Fatal(err)
	}

	got, ok := readLintEntry(path, "sha256:abc")
	if !ok {
		t.Fatal("fresh entry not readable")
	}
	if got.ContentHash != env.ContentHash || len(got.Analyzers) != 1 || got.Analyzers[0] != "taintflow" {
		t.Errorf("round trip mangled the envelope: %+v", got)
	}

	if _, ok := readLintEntry(path, "sha256:other"); ok {
		t.Error("entry accepted under a different content hash")
	}
	if err := os.WriteFile(path, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := readLintEntry(path, "sha256:abc"); ok {
		t.Error("corrupt entry accepted")
	}
	if _, ok := readLintEntry(filepath.Join(dir, "missing.json"), "sha256:abc"); ok {
		t.Error("missing entry accepted")
	}
}
