package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"senss/internal/farm"
	"senss/internal/machine"
	"senss/internal/stats"
	"senss/internal/workload"
)

// seedCache populates dir with one valid entry, one garbage entry, and
// the given manifests, returning the valid job's hash.
func seedCache(t *testing.T, dir string, manifests ...farm.Manifest) string {
	t.Helper()
	c, err := farm.NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.Seed = 7
	j := farm.Job{Workload: "falseshare", Size: workload.SizeTest, Config: cfg, Figure: "test"}
	if err := c.Put(j, j.Hash(), stats.Run{Cycles: 1234}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir+"/0123456789abcdef0123456789abcdef.json", []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, m := range manifests {
		data, err := m.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(farm.ManifestPath(dir, m.Sweep), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return j.Hash()
}

func manifestWith(sweep string, statuses ...string) farm.Manifest {
	m := farm.Manifest{Sweep: sweep, Version: farm.CacheVersion}
	for i, s := range statuses {
		m.Jobs = append(m.Jobs, farm.ManifestEntry{
			Hash:     strings.Repeat("0", 31) + string(rune('a'+i)),
			Workload: "falseshare",
			Status:   s,
		})
	}
	return m
}

// TestStatusText pins the human-readable status report across cache and
// manifest states.
func TestStatusText(t *testing.T) {
	cases := []struct {
		name         string
		seed         bool
		manifests    []farm.Manifest
		wantContains []string
	}{
		{
			name: "empty cache",
			wantContains: []string{
				"0 valid entries, 0 invalid/stale",
				"no sweep manifests",
			},
		},
		{
			name: "entries but no manifests",
			seed: true,
			wantContains: []string{
				"1 valid entries, 1 invalid/stale",
				"no sweep manifests",
			},
		},
		{
			name: "manifest states",
			seed: true,
			manifests: []farm.Manifest{
				manifestWith("fig6-done", farm.StatusDone, farm.StatusDone),
				manifestWith("fig7-part", farm.StatusDone, farm.StatusPending),
				manifestWith("fig8-bad", farm.StatusDone, farm.StatusFailed),
			},
			wantContains: []string{
				"1 valid entries, 1 invalid/stale",
				"fig6-done",
				"2 done, 0 failed, 0 pending  (complete)",
				"fig7-part",
				"1 done, 0 failed, 1 pending  (resumable)",
				"fig8-bad",
				"1 done, 1 failed, 0 pending  (has failures)",
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if tc.seed {
				seedCache(t, dir, tc.manifests...)
			}
			var buf bytes.Buffer
			if err := writeStatus(&buf, dir, false); err != nil {
				t.Fatal(err)
			}
			for _, want := range tc.wantContains {
				if !strings.Contains(buf.String(), want) {
					t.Errorf("status output missing %q:\n%s", want, buf.String())
				}
			}
		})
	}
}

// TestStatusJSON: the -json document carries the same facts in
// machine-readable form.
func TestStatusJSON(t *testing.T) {
	dir := t.TempDir()
	seedCache(t, dir, manifestWith("fig6-test", farm.StatusDone, farm.StatusPending))
	var buf bytes.Buffer
	if err := writeStatus(&buf, dir, true); err != nil {
		t.Fatal(err)
	}
	var got statusReport
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("status -json emitted invalid JSON: %v\n%s", err, buf.String())
	}
	if got.CacheDir != dir || got.Version != farm.CacheVersion {
		t.Errorf("report header = %q/%q", got.CacheDir, got.Version)
	}
	if got.Entries != 1 || got.Invalid != 1 {
		t.Errorf("entries=%d invalid=%d, want 1/1", got.Entries, got.Invalid)
	}
	if len(got.Sweeps) != 1 || got.Sweeps[0].Sweep != "fig6-test" {
		t.Fatalf("sweeps = %+v", got.Sweeps)
	}
	done, failed, pending := got.Sweeps[0].Counts()
	if done != 1 || failed != 0 || pending != 1 {
		t.Errorf("counts = %d/%d/%d, want 1/0/1", done, failed, pending)
	}
}

// TestValidWorkload pins the bench-sim -workload guard: every built-in
// name passes, a typo fails fast naming the available set.
func TestValidWorkload(t *testing.T) {
	for _, name := range workload.AllNames() {
		if err := validWorkload(name); err != nil {
			t.Errorf("validWorkload(%q) = %v", name, err)
		}
	}
	err := validWorkload("oceen")
	if err == nil {
		t.Fatal("typo accepted")
	}
	if !strings.Contains(err.Error(), `"oceen"`) || !strings.Contains(err.Error(), "ocean") {
		t.Fatalf("error does not name the typo and the available set: %v", err)
	}
}

// TestBenchSimJobs pins the sweep's record set: one record per workload
// at the 4-processor bench geometry, plus the single-processor engine
// record, in workload order — BENCH_sim.json's shape is part of the
// bench-check contract.
func TestBenchSimJobs(t *testing.T) {
	names := workload.AllNames()
	jobs := benchSimJobs(names)
	if len(jobs) != len(names)+1 {
		t.Fatalf("%d jobs for %d workloads, want %d", len(jobs), len(names), len(names)+1)
	}
	for i, n := range names {
		if jobs[i].Workload != n || jobs[i].Procs != benchSimProcs {
			t.Errorf("job %d = %+v, want {%s %d}", i, jobs[i], n, benchSimProcs)
		}
	}
	last := jobs[len(jobs)-1]
	if last.Workload != "ocean" || last.Procs != 1 {
		t.Errorf("engine record = %+v, want {ocean 1}", last)
	}
}

// TestBenchSimRecordsWorkloads runs a tiny two-workload bench-sim sweep
// and pins that the emitted records carry the workloads that produced
// them plus the 1-proc engine record — trajectory points from different
// workloads must never be conflated.
func TestBenchSimRecordsWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several simulations")
	}
	out := t.TempDir() + "/BENCH_sim.json"
	if err := cmdBenchSim([]string{"-workloads", "lockcontend,prodcons", "-iters", "1", "-out", out}); err != nil {
		t.Fatalf("bench-sim: %v", err)
	}
	reports, err := readSimBench(out)
	if err != nil {
		t.Fatal(err)
	}
	want := []simBenchJob{
		{Workload: "lockcontend", Procs: benchSimProcs},
		{Workload: "prodcons", Procs: benchSimProcs},
		{Workload: "ocean", Procs: 1},
	}
	if len(reports) != len(want) {
		t.Fatalf("%d records, want %d", len(reports), len(want))
	}
	for i, rep := range reports {
		if rep.Workload != want[i].Workload || rep.Procs != want[i].Procs || rep.Iterations != 1 {
			t.Errorf("record %d = %s/procs=%d/iters=%d, want %s/procs=%d/iters=1",
				i, rep.Workload, rep.Procs, rep.Iterations, want[i].Workload, want[i].Procs)
		}
		if rep.SimMemOps == 0 || rep.OpsPerSecond <= 0 {
			t.Errorf("implausible measurement: %+v", rep)
		}
	}
	if err := cmdBenchSim([]string{"-workloads", "oceen"}); err == nil {
		t.Fatal("bench-sim accepted unknown workload")
	}
}
