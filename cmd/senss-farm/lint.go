package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"senss/internal/lint"
)

// lintEnvelope mirrors cmd/senss-lint's -json schema so a cached verdict
// and a fresh run are byte-interchangeable.
type lintEnvelope struct {
	Schema      string            `json:"schema"`
	ContentHash string            `json:"content_hash"`
	Analyzers   []string          `json:"analyzers"`
	Findings    []lint.Diagnostic `json:"findings"`
}

// cmdLint runs the senss-lint analyzer suite through the farm's
// content-addressed cache: the verdict is stored under the run's content
// hash (analyzer set + every source file), so an unchanged tree never
// re-analyzes — the same contract experiment results get from the sweep
// cache. Exit is vet-style: error (status 1) when findings exist, whether
// fresh or cached.
func cmdLint(args []string) error {
	fs := flag.NewFlagSet("senss-farm lint", flag.ExitOnError)
	cacheDir := fs.String("cache-dir", ".senss-cache", "cache directory")
	jsonOut := fs.Bool("json", false, "emit the JSON envelope instead of text findings")
	if err := fs.Parse(args); err != nil {
		return err
	}

	root, err := moduleRoot()
	if err != nil {
		return err
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		return err
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		return err
	}
	analyzers := lint.Registry()
	var names []string
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	hash, err := lint.ContentHash(names, pkgs)
	if err != nil {
		return err
	}

	path := filepath.Join(*cacheDir, "lint", strings.ReplaceAll(hash, ":", "-")+".json")
	env, cached := readLintEntry(path, hash)
	if !cached {
		diags := lint.RunAnalyzers(analyzers, pkgs)
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		for i := range diags {
			if rel, rerr := filepath.Rel(root, diags[i].Pos.Filename); rerr == nil && !strings.HasPrefix(rel, "..") {
				diags[i].Pos.Filename = rel
			}
		}
		env = lintEnvelope{Schema: "senss-lint/1", ContentHash: hash, Analyzers: names, Findings: diags}
		if err := writeLintEntry(path, env); err != nil {
			return err
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(env); err != nil {
			return err
		}
	} else {
		for _, d := range env.Findings {
			fmt.Println(d)
		}
		state := "analyzed"
		if cached {
			state = "cached"
		}
		fmt.Printf("senss-farm lint: %s, %d finding(s), %s\n", state, len(env.Findings), hash)
	}
	if len(env.Findings) > 0 {
		return fmt.Errorf("%d lint finding(s)", len(env.Findings))
	}
	return nil
}

// readLintEntry loads a cached verdict, rejecting anything that does not
// match the expected hash and schema (corrupt or stale entries are
// recomputed, never trusted — the same policy as the experiment cache).
func readLintEntry(path, wantHash string) (lintEnvelope, bool) {
	var env lintEnvelope
	data, err := os.ReadFile(path)
	if err != nil {
		return env, false
	}
	if err := json.Unmarshal(data, &env); err != nil {
		return lintEnvelope{}, false
	}
	if env.Schema != "senss-lint/1" || env.ContentHash != wantHash {
		return lintEnvelope{}, false
	}
	return env, true
}

// writeLintEntry persists the verdict atomically (temp file + rename).
func writeLintEntry(path string, env lintEnvelope) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(env, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".lint-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
