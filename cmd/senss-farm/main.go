// Command senss-farm drives the internal/farm orchestration subsystem
// directly: it runs figure sweeps across a bounded worker pool with a
// persistent content-addressed result cache, reports sweep/cache status,
// garbage-collects stale entries, pre-warms the cache, and records the
// cold-vs-parallel benchmark trajectory point.
//
// Subcommands:
//
//	senss-farm run    -fig all -workers 8 -cache-dir .senss-cache
//	senss-farm warm   -fig 6 -size bench
//	senss-farm status -cache-dir .senss-cache -json
//	senss-farm gc     -cache-dir .senss-cache [-all]
//	senss-farm bench  -out BENCH_farm.json
//	senss-farm bench-sim -out BENCH_sim.json
//	senss-farm lint   -cache-dir .senss-cache [-json]
//
// "lint" runs the senss-lint suite through the same content-addressed
// cache as experiments: the verdict is stored under a hash of the
// analyzer set and every source file, so an unchanged tree is never
// re-analyzed.
//
// Interrupted sweeps are resumable: every completed job is cached and
// recorded in the sweep manifest, so re-running the same command picks
// up from the completed set.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"senss"
	"senss/internal/crypto"
	"senss/internal/farm"
)

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "run":
		err = cmdRun(args)
	case "warm":
		err = cmdWarm(args)
	case "status":
		err = cmdStatus(args)
	case "gc":
		err = cmdGC(args)
	case "bench":
		err = cmdBench(args)
	case "bench-sim":
		err = cmdBenchSim(args)
	case "bench-check":
		err = cmdBenchCheck(args)
	case "lint":
		err = cmdLint(args)
	case "help", "-h", "-help", "--help":
		usage(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "senss-farm: unknown subcommand %q\n\n", cmd)
		usage(os.Stderr)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "senss-farm: %v\n", err)
		os.Exit(1)
	}
}

func usage(w *os.File) {
	fmt.Fprint(w, `senss-farm — parallel experiment orchestration with result caching

usage: senss-farm <run|warm|status|gc|bench|bench-sim|lint> [flags]

  run     execute figure sweeps and print their tables
  warm    execute figure sweeps, populating the cache only
  status  report sweep manifests and cache contents
  gc      remove stale/corrupt cache entries (-all wipes everything)
  bench   measure cold serial vs parallel wall-clock for the Figure 6
          sweep and write the BENCH_farm.json trajectory point
  bench-sim
          measure raw simulator throughput and allocation rate on the
          unprotected machine across every workload and write the
          BENCH_sim.json baseline
  bench-check
          re-measure the BENCH_sim.json workloads and fail on a >15%
          ops/sec regression against the committed records
  lint    run the senss-lint suite content-addressed: verdicts cache
          under a hash of the analyzer set + all sources

common flags: -fig, -size, -workers, -cache-dir, -json (see <sub> -h)
`)
}

// sweepFlags is the flag set shared by the sweep-running subcommands.
type sweepFlags struct {
	fs       *flag.FlagSet
	fig      *string
	size     *string
	workers  *int
	cacheDir *string
	jsonOut  *bool
	markdown *bool
	backend  *string
}

func newSweepFlags(name string) *sweepFlags {
	fs := flag.NewFlagSet("senss-farm "+name, flag.ExitOnError)
	return &sweepFlags{
		fs:       fs,
		fig:      fs.String("fig", "all", "figure: 6, 7, 8, 9, 10, 11, scale, or all"),
		size:     fs.String("size", "test", "problem scale: test or bench"),
		workers:  fs.Int("workers", 0, "concurrent simulations (0 = one per core)"),
		cacheDir: fs.String("cache-dir", ".senss-cache", "result cache directory (empty = in-memory only)"),
		jsonOut:  fs.Bool("json", false, "emit machine-readable JSON instead of text"),
		markdown: fs.Bool("markdown", false, "emit markdown tables (run only)"),
		backend:  fs.String("crypto", crypto.Ref, "crypto backend for secured runs: ref or stdlib (tables are byte-identical; the backend is part of the cache key)"),
	}
}

func (sf *sweepFlags) parse(args []string) (scale senss.Size, figs []int, err error) {
	if err := sf.fs.Parse(args); err != nil {
		return scale, nil, err
	}
	switch *sf.size {
	case "test":
		scale = senss.SizeTest
	case "bench":
		scale = senss.SizeBench
	default:
		return scale, nil, fmt.Errorf("unknown size %q", *sf.size)
	}
	if !crypto.Known(*sf.backend) {
		return scale, nil, fmt.Errorf("unknown crypto backend %q", *sf.backend)
	}
	switch *sf.fig {
	case "all":
		figs = []int{6, 7, 8, 9, 10, 11}
	case "scale":
		figs = []int{figScale}
	default:
		var n int
		if _, err := fmt.Sscanf(*sf.fig, "%d", &n); err != nil || n < 6 || n > 11 {
			return scale, nil, fmt.Errorf("bad figure %q (6-11, scale, or all)", *sf.fig)
		}
		figs = []int{n}
	}
	return scale, figs, nil
}

// figScale is the pseudo figure number for the E2 scalability sweep.
const figScale = -2

// newHarness assembles the farm (with a stderr progress reporter unless
// JSON output is requested) and the harness on top of it.
func (sf *sweepFlags) newHarness(scale senss.Size) (*senss.Harness, *farm.Farm, error) {
	opts := farm.Options{Workers: *sf.workers, CacheDir: *sf.cacheDir}
	if !*sf.jsonOut {
		opts.Progress = farm.NewReporter(os.Stderr)
	}
	f, err := farm.New(opts)
	if err != nil {
		return nil, nil, err
	}
	h := senss.NewHarnessOn(scale, f)
	h.Crypto = *sf.backend
	return h, f, nil
}

// figTables runs one figure (or the scalability sweep) to completion.
func figTables(h *senss.Harness, n int) ([]*senss.Table, error) {
	if n == figScale {
		return h.Scalability()
	}
	return h.Figure(n)
}

// runReport is the -json document emitted by run and warm.
type runReport struct {
	Size    string          `json:"size"`
	Workers int             `json:"workers"`
	Sweeps  []farm.Manifest `json:"sweeps"`
	Cache   farm.CacheStats `json:"cache"`
}

func cmdRun(args []string) error {
	sf := newSweepFlags("run")
	scale, figs, err := sf.parse(args)
	if err != nil {
		return err
	}
	h, f, err := sf.newHarness(scale)
	if err != nil {
		return err
	}
	report := runReport{Size: *sf.size, Workers: f.Workers()}
	for _, n := range figs {
		tables, err := figTables(h, n)
		if err != nil {
			return err
		}
		if *sf.jsonOut {
			if m := loadSweepManifest(h, f, n); m != nil {
				report.Sweeps = append(report.Sweeps, *m)
			}
			continue
		}
		for _, t := range tables {
			if *sf.markdown {
				fmt.Println(t.Markdown())
			} else {
				fmt.Println(t.Render())
			}
		}
	}
	report.Cache = f.Cache().Stats()
	if *sf.jsonOut {
		return emitJSON(report)
	}
	fmt.Fprintf(os.Stderr, "farm cache: %+v\n", report.Cache)
	return nil
}

func cmdWarm(args []string) error {
	sf := newSweepFlags("warm")
	scale, figs, err := sf.parse(args)
	if err != nil {
		return err
	}
	h, f, err := sf.newHarness(scale)
	if err != nil {
		return err
	}
	report := runReport{Size: *sf.size, Workers: f.Workers()}
	for _, n := range figs {
		if _, err := figTables(h, n); err != nil {
			return err
		}
		if m := loadSweepManifest(h, f, n); m != nil {
			report.Sweeps = append(report.Sweeps, *m)
			if !*sf.jsonOut {
				done, failed, pending := m.Counts()
				fmt.Printf("%-14s %d done, %d failed, %d pending\n", m.Sweep, done, failed, pending)
			}
		}
	}
	report.Cache = f.Cache().Stats()
	if *sf.jsonOut {
		return emitJSON(report)
	}
	fmt.Printf("cache: %d hits (%d disk), %d misses, %d corrupt\n",
		report.Cache.Hits, report.Cache.DiskHits, report.Cache.Misses, report.Cache.Corrupt)
	return nil
}

// loadSweepManifest fetches the manifest a figure's sweep just wrote
// (nil for memory-only farms, where no manifest persists).
func loadSweepManifest(h *senss.Harness, f *farm.Farm, n int) *farm.Manifest {
	if f.Cache().Dir() == "" {
		return nil
	}
	var tag string
	var err error
	if n == figScale {
		tag = "scaleE2-" + sizeLabel(h)
	} else {
		tag, err = h.SweepTag(n)
		if err != nil {
			return nil
		}
	}
	m, err := farm.LoadManifest(f.Cache().Dir(), tag)
	if err != nil {
		return nil
	}
	return m
}

func sizeLabel(h *senss.Harness) string {
	if h.Size == senss.SizeBench {
		return "bench"
	}
	return "test"
}

func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("senss-farm status", flag.ExitOnError)
	cacheDir := fs.String("cache-dir", ".senss-cache", "result cache directory")
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return writeStatus(os.Stdout, *cacheDir, *jsonOut)
}

// statusReport is the -json document emitted by status.
type statusReport struct {
	CacheDir string          `json:"cache_dir"`
	Version  string          `json:"version"`
	Entries  int             `json:"entries"`
	Invalid  int             `json:"invalid"`
	Sweeps   []farm.Manifest `json:"sweeps"`
}

// writeStatus reports the cache contents and sweep manifests of cacheDir
// to w, as text or as one JSON document.
func writeStatus(w io.Writer, cacheDir string, jsonOut bool) error {
	c, err := farm.NewCache(cacheDir)
	if err != nil {
		return err
	}
	hashes, invalid, err := c.DiskEntries()
	if err != nil {
		return err
	}
	manifests, err := farm.Manifests(cacheDir)
	if err != nil {
		return err
	}
	if jsonOut {
		out := statusReport{CacheDir: cacheDir, Version: farm.CacheVersion, Entries: len(hashes), Invalid: invalid}
		for _, m := range manifests {
			out.Sweeps = append(out.Sweeps, *m)
		}
		return emitJSONTo(w, out)
	}
	fmt.Fprintf(w, "cache %s (version %s): %d valid entries, %d invalid/stale\n",
		cacheDir, farm.CacheVersion, len(hashes), invalid)
	if len(manifests) == 0 {
		fmt.Fprintln(w, "no sweep manifests")
		return nil
	}
	for _, m := range manifests {
		done, failed, pending := m.Counts()
		state := "complete"
		if pending > 0 {
			state = "resumable"
		}
		if failed > 0 {
			state = "has failures"
		}
		fmt.Fprintf(w, "  %-16s %3d jobs: %3d done, %d failed, %d pending  (%s)\n",
			m.Sweep, len(m.Jobs), done, failed, pending, state)
	}
	return nil
}

func cmdGC(args []string) error {
	fs := flag.NewFlagSet("senss-farm gc", flag.ExitOnError)
	cacheDir := fs.String("cache-dir", ".senss-cache", "result cache directory")
	all := fs.Bool("all", false, "remove every entry and manifest, not just stale/corrupt ones")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := farm.NewCache(*cacheDir)
	if err != nil {
		return err
	}
	removed, err := c.GC(*all)
	if err != nil {
		return err
	}
	fmt.Printf("gc %s: removed %d file(s)\n", *cacheDir, removed)
	return nil
}

// benchReport is the recorded trajectory point: cold-cache serial vs
// parallel wall-clock for the Figure 6 sweep, plus the warm-cache replay.
type benchReport struct {
	Benchmark       string  `json:"benchmark"`
	Date            string  `json:"date"`
	HostCPUs        int     `json:"host_cpus"`
	Gomaxprocs      int     `json:"gomaxprocs"`
	Size            string  `json:"size"`
	Jobs            int     `json:"jobs"`
	Workers         int     `json:"workers"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
	WarmSeconds     float64 `json:"warm_seconds"`
	WarmHitRate     float64 `json:"warm_hit_rate"`
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("senss-farm bench", flag.ExitOnError)
	size := fs.String("size", "test", "problem scale: test or bench")
	workers := fs.Int("workers", 0, "parallel worker count (0 = one per core)")
	out := fs.String("out", "BENCH_farm.json", "output file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scale := senss.SizeTest
	if *size == "bench" {
		scale = senss.SizeBench
	}
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if runtime.GOMAXPROCS(0) == 1 {
		fmt.Fprintln(os.Stderr, "bench: warning: GOMAXPROCS=1 — the parallel phase cannot "+
			"beat serial on this host; read speedup as a ceiling of 1.0, not a regression")
	}

	// The job set is enumerated once; each phase gets a fresh
	// memory-only farm so every timing starts cold.
	jobs, err := senss.NewHarnessOn(scale, farm.NewMem(1)).FigureJobs(6)
	if err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "bench: %d jobs, cold serial...\n", len(jobs))
	serial := farm.NewMem(1)
	t0 := time.Now()
	if err := serial.Warm(jobs); err != nil {
		return err
	}
	serialDur := time.Since(t0)

	fmt.Fprintf(os.Stderr, "bench: cold parallel (%d workers)...\n", w)
	par := farm.NewMem(w)
	t0 = time.Now()
	if err := par.Warm(jobs); err != nil {
		return err
	}
	parallelDur := time.Since(t0)

	before := par.Cache().Stats()
	t0 = time.Now()
	if err := par.Warm(jobs); err != nil {
		return err
	}
	warmDur := time.Since(t0)
	after := par.Cache().Stats()
	hitRate := float64(after.Hits-before.Hits) / float64(len(jobs))

	report := benchReport{
		Benchmark:       "farm-fig6-sweep",
		Date:            time.Now().UTC().Format(time.RFC3339),
		HostCPUs:        runtime.NumCPU(),
		Gomaxprocs:      runtime.GOMAXPROCS(0),
		Size:            *size,
		Jobs:            len(jobs),
		Workers:         w,
		SerialSeconds:   serialDur.Seconds(),
		ParallelSeconds: parallelDur.Seconds(),
		Speedup:         serialDur.Seconds() / parallelDur.Seconds(),
		WarmSeconds:     warmDur.Seconds(),
		WarmHitRate:     hitRate,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("serial %.2fs, parallel %.2fs (%d workers) = %.2fx, warm replay %.3fs (hit rate %.2f) -> %s\n",
		report.SerialSeconds, report.ParallelSeconds, w, report.Speedup, report.WarmSeconds, hitRate, *out)
	return nil
}

// simBenchReport is one BENCH_sim.json trajectory point: raw substrate
// throughput (simulated memory operations and cycles per host second) and
// the host-side allocation rate per simulated operation — the number the
// hotpath discipline (DESIGN.md section 13) exists to keep down. The file
// holds one record per swept workload at the 4-processor bench geometry,
// plus one single-processor engine record (see benchSimJobs).
type simBenchReport struct {
	Benchmark    string  `json:"benchmark"`
	Date         string  `json:"date"`
	HostCPUs     int     `json:"host_cpus"`
	Gomaxprocs   int     `json:"gomaxprocs"`
	Workload     string  `json:"workload"`
	Procs        int     `json:"procs"`
	Iterations   int     `json:"iterations"`
	Seconds      float64 `json:"seconds"`
	SimMemOps    uint64  `json:"sim_mem_ops"`
	SimCycles    uint64  `json:"sim_cycles"`
	OpsPerSecond float64 `json:"ops_per_second"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
}

// benchSimProcs is the multiprocessor bench geometry's processor count,
// matching BenchmarkSimulator in bench_test.go.
const benchSimProcs = 4

// simBenchJob names one measurement of the sweep.
type simBenchJob struct {
	Workload string
	Procs    int
}

// benchSimJobs returns the sweep's job list: every workload at the
// 4-processor bench geometry, then one single-processor record. The
// 1-proc row isolates raw engine dispatch throughput — with one runnable
// proc there are no cross-proc scheduler handoffs and no bus contention,
// so it tracks the scheduler fast path that multiprocessor rows dilute
// with (simulated) lock and arbitration traffic.
func benchSimJobs(names []string) []simBenchJob {
	jobs := make([]simBenchJob, 0, len(names)+1)
	for _, n := range names {
		jobs = append(jobs, simBenchJob{Workload: n, Procs: benchSimProcs})
	}
	jobs = append(jobs, simBenchJob{Workload: "ocean", Procs: 1})
	return jobs
}

// measureSimBench runs one bench-sim measurement: warmup, then iters
// timed repetitions of the unprotected machine at the bench geometry.
func measureSimBench(job simBenchJob, iters int) (simBenchReport, error) {
	// The throughput baseline runs the unprotected machine at the bench
	// suite's scale (BenchmarkSimulator in bench_test.go uses the same
	// geometry), so trajectory points stay comparable across PRs.
	cfg := senss.DefaultConfig()
	cfg.Procs = job.Procs
	cfg.Coherence.L1Size = 4 << 10
	cfg.Coherence.L2Size = 64 << 10
	cfg.CPU.CodeBytes = 2 << 10

	if _, err := senss.RunWorkload(job.Workload, senss.SizeTest, cfg); err != nil {
		return simBenchReport{}, err
	}

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	var ops, cycles uint64
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		run, err := senss.RunWorkload(job.Workload, senss.SizeTest, cfg)
		if err != nil {
			return simBenchReport{}, err
		}
		ops += run.Loads + run.Stores + run.RMWs
		cycles += run.Cycles
	}
	dur := time.Since(t0)
	runtime.ReadMemStats(&ms1)

	return simBenchReport{
		Benchmark:    "sim-throughput",
		Date:         time.Now().UTC().Format(time.RFC3339),
		HostCPUs:     runtime.NumCPU(),
		Gomaxprocs:   runtime.GOMAXPROCS(0),
		Workload:     job.Workload,
		Procs:        job.Procs,
		Iterations:   iters,
		Seconds:      dur.Seconds(),
		SimMemOps:    ops,
		SimCycles:    cycles,
		OpsPerSecond: float64(ops) / dur.Seconds(),
		AllocsPerOp:  float64(ms1.Mallocs-ms0.Mallocs) / float64(ops),
		BytesPerOp:   float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(ops),
	}, nil
}

// benchSimWorkloads resolves the -workloads flag into a validated name
// list ("all" means every built-in workload).
func benchSimWorkloads(list string) ([]string, error) {
	if list == "all" {
		return senss.WorkloadNames(), nil
	}
	var names []string
	for _, n := range strings.Split(list, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if err := validWorkload(n); err != nil {
			return nil, err
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("empty workload list")
	}
	return names, nil
}

func cmdBenchSim(args []string) error {
	fs := flag.NewFlagSet("senss-farm bench-sim", flag.ExitOnError)
	list := fs.String("workloads", "all", `comma-separated workloads to sweep, or "all"`)
	iters := fs.Int("iters", 5, "measured repetitions per record")
	out := fs.String("out", "BENCH_sim.json", "output file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	names, err := benchSimWorkloads(*list)
	if err != nil {
		return err
	}

	var reports []simBenchReport
	for _, job := range benchSimJobs(names) {
		fmt.Fprintf(os.Stderr, "bench-sim: %s procs=%d (%d iters)...\n", job.Workload, job.Procs, *iters)
		rep, err := measureSimBench(job, *iters)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s procs=%d  %8d sim mem ops in %6.2fs = %9.0f ops/s, %.2f allocs/op, %.1f bytes/op\n",
			rep.Workload, rep.Procs, rep.SimMemOps, rep.Seconds, rep.OpsPerSecond, rep.AllocsPerOp, rep.BytesPerOp)
		reports = append(reports, rep)
	}
	data, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("%d records -> %s\n", len(reports), *out)
	return nil
}

// benchCheckThreshold is the fraction of the committed ops/sec a fresh
// measurement must reach; below it bench-check fails the build.
const benchCheckThreshold = 0.85

// readSimBench loads a BENCH_sim.json record set, accepting both the
// current array format and the single-record format of older baselines.
func readSimBench(path string) ([]simBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var reports []simBenchReport
	if err := json.Unmarshal(data, &reports); err != nil {
		var one simBenchReport
		if err2 := json.Unmarshal(data, &one); err2 != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		if one.Procs == 0 {
			one.Procs = benchSimProcs
		}
		reports = []simBenchReport{one}
	}
	if len(reports) == 0 {
		return nil, fmt.Errorf("%s: no records", path)
	}
	return reports, nil
}

// cmdBenchCheck re-measures every committed BENCH_sim.json record and
// fails on a >15% ops/sec regression — the performance ratchet guarding
// the engine hot path.
func cmdBenchCheck(args []string) error {
	fs := flag.NewFlagSet("senss-farm bench-check", flag.ExitOnError)
	iters := fs.Int("iters", 3, "measured repetitions per record")
	in := fs.String("in", "BENCH_sim.json", "committed baseline to check against")
	if err := fs.Parse(args); err != nil {
		return err
	}
	baseline, err := readSimBench(*in)
	if err != nil {
		return err
	}
	var failures []string
	for _, want := range baseline {
		job := simBenchJob{Workload: want.Workload, Procs: want.Procs}
		fmt.Fprintf(os.Stderr, "bench-check: %s procs=%d...\n", job.Workload, job.Procs)
		got, err := measureSimBench(job, *iters)
		if err != nil {
			return err
		}
		ratio := got.OpsPerSecond / want.OpsPerSecond
		status := "ok"
		if ratio < benchCheckThreshold {
			status = "REGRESSION"
			failures = append(failures, fmt.Sprintf("%s procs=%d: %.0f ops/s vs committed %.0f (%.0f%%)",
				job.Workload, job.Procs, got.OpsPerSecond, want.OpsPerSecond, 100*ratio))
		}
		fmt.Printf("%-12s procs=%d  %9.0f ops/s vs committed %9.0f  (%3.0f%%)  %s\n",
			job.Workload, job.Procs, got.OpsPerSecond, want.OpsPerSecond, 100*ratio, status)
	}
	if len(failures) > 0 {
		return fmt.Errorf("ops/sec regressed >%.0f%% on %d record(s):\n  %s",
			100*(1-benchCheckThreshold), len(failures), strings.Join(failures, "\n  "))
	}
	return nil
}

// validWorkload rejects an unknown -workload before any warmup work, so
// a typo fails fast with the available names instead of partway into a
// measurement.
func validWorkload(name string) error {
	names := senss.WorkloadNames()
	for _, n := range names {
		if n == name {
			return nil
		}
	}
	return fmt.Errorf("unknown workload %q (available: %s)", name, strings.Join(names, ", "))
}

func emitJSON(v any) error { return emitJSONTo(os.Stdout, v) }

func emitJSONTo(w io.Writer, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
