// Command senss-tables regenerates the paper's evaluation artifacts
// (Figures 6-11) as text tables, plus the §7.1 hardware-cost numbers.
//
// Sweeps run on the internal/farm orchestration pool: independent
// simulations execute concurrently (bounded by -workers) and results are
// content-addressed, so identical configurations across figures simulate
// once. With -cache-dir the results persist and a re-run assembles
// tables without simulating at all. Output is byte-identical for any
// worker count and cache temperature.
//
// Examples:
//
//	senss-tables -fig 6
//	senss-tables -fig all -size bench -workers 8 -cache-dir .senss-cache
package main

import (
	"flag"
	"fmt"
	"os"

	"senss"
	"senss/internal/core"
	"senss/internal/crypto"
	"senss/internal/farm"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure to regenerate: 6, 7, 8, 9, 10, 11, hw, detect, scale, or all")
		size     = flag.String("size", "test", "problem scale: test (fast) or bench (larger)")
		markdown = flag.Bool("markdown", false, "emit GitHub-flavored markdown instead of aligned text")
		workers  = flag.Int("workers", 0, "concurrent simulations (0 = one per core)")
		cacheDir = flag.String("cache-dir", "", "persistent result cache directory (empty = in-memory only)")
		progress = flag.Bool("progress", false, "report live sweep progress on stderr")
		backend  = flag.String("crypto", crypto.Ref, "crypto backend for secured runs: ref or stdlib (tables are byte-identical; stdlib is faster wall-clock)")
	)
	flag.Parse()

	if !crypto.Known(*backend) {
		fmt.Fprintf(os.Stderr, "senss-tables: unknown crypto backend %q\n", *backend)
		os.Exit(2)
	}

	scale := senss.SizeTest
	if *size == "bench" {
		scale = senss.SizeBench
	} else if *size != "test" {
		fmt.Fprintf(os.Stderr, "senss-tables: unknown size %q\n", *size)
		os.Exit(2)
	}

	opts := farm.Options{Workers: *workers, CacheDir: *cacheDir}
	if *progress {
		opts.Progress = farm.NewReporter(os.Stderr)
	}
	f, err := farm.New(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "senss-tables: %v\n", err)
		os.Exit(1)
	}

	h := senss.NewHarnessOn(scale, f)
	h.Crypto = *backend
	figures := []int{6, 7, 8, 9, 10, 11}
	switch *fig {
	case "all":
	case "hw":
		printHW()
		return
	case "scale":
		tables, err := h.Scalability()
		if err != nil {
			fmt.Fprintf(os.Stderr, "senss-tables: %v\n", err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(render(t, *markdown))
		}
		return
	case "detect":
		tables, err := h.DetectionLatency(6)
		if err != nil {
			fmt.Fprintf(os.Stderr, "senss-tables: %v\n", err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(render(t, *markdown))
		}
		return
	default:
		var n int
		if _, err := fmt.Sscanf(*fig, "%d", &n); err != nil {
			fmt.Fprintf(os.Stderr, "senss-tables: bad figure %q\n", *fig)
			os.Exit(2)
		}
		figures = []int{n}
	}

	for _, n := range figures {
		tables, err := h.Figure(n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "senss-tables: figure %d: %v\n", n, err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(render(t, *markdown))
		}
	}
	if *fig == "all" {
		printHW()
	}
}

// render picks the output format.
func render(t *senss.Table, markdown bool) string {
	if markdown {
		return t.Markdown()
	}
	return t.Render()
}

func printHW() {
	fmt.Println("§7.1 — SHU hardware overhead")
	fmt.Println("----------------------------")
	fmt.Println(core.ComputeHWCost(core.DefaultHWCost()))
	fmt.Println()
}
