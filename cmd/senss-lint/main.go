// Command senss-lint runs the repository's domain-specific static-analysis
// suite (package internal/lint) over the module: determinism, banned
// nondeterminism primitives, secret hygiene, cycle accounting, error
// discipline, secret taint flow, hot-path allocation discipline, and
// lock discipline (guarded fields, unlock paths, lock ordering,
// goroutine/blocking hygiene).
//
// Usage:
//
//	senss-lint [-json] [-analyzer name[,name...]] [-skip prefix[,prefix...]] [-list] [patterns]
//
// Patterns are module-relative package paths; "./..." (the default) means
// every package, "./internal/bus" one package, "./internal/..." a subtree.
// -analyzer restricts the run to the named analyzers (e.g. "taintflow");
// naming an unknown analyzer is a usage error. Exit status: 0 clean, 1
// findings, 2 usage or load failure.
//
// With -json the driver emits a stable envelope,
//
//	{"schema": "senss-lint/1", "content_hash": "sha256:...",
//	 "analyzers": [...], "findings": [...]}
//
// whose content_hash digests the analyzer set and every source file, so a
// caching layer (internal/farm) can treat lint runs as content-addressed
// artifacts: same hash, same findings.
//
// Deliberate exceptions are waived in source with
//
//	//senss-lint:ignore <analyzer> <reason>
//
// directives; a waiver without a reason is itself a finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"senss/internal/lint"
)

// envelope is the -json output schema.
type envelope struct {
	Schema      string            `json:"schema"`
	ContentHash string            `json:"content_hash"`
	Analyzers   []string          `json:"analyzers"`
	Findings    []lint.Diagnostic `json:"findings"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit a JSON envelope with findings and a content hash")
	analyzer := flag.String("analyzer", "", "comma-separated analyzer names to run (default: all)")
	skip := flag.String("skip", "", "comma-separated module-relative path prefixes to skip")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	analyzers := lint.Registry()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *analyzer != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*analyzer, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "senss-lint: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
		if len(analyzers) == 0 {
			fmt.Fprintln(os.Stderr, "senss-lint: -analyzer names no analyzers")
			os.Exit(2)
		}
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "senss-lint:", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "senss-lint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "senss-lint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var selected []*lint.Package
	for _, pkg := range pkgs {
		if matchesAny(pkg.RelPath, patterns) && !skipped(pkg.RelPath, *skip) {
			selected = append(selected, pkg)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintln(os.Stderr, "senss-lint: no packages match", patterns)
		os.Exit(2)
	}

	for _, pkg := range selected {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "senss-lint: warning: %s: type checking: %v\n", pkg.ImportPath, terr)
		}
	}

	diags := lint.RunAnalyzers(analyzers, selected)
	if *jsonOut {
		var names []string
		for _, a := range analyzers {
			names = append(names, a.Name)
		}
		hash, err := lint.ContentHash(names, selected)
		if err != nil {
			fmt.Fprintln(os.Stderr, "senss-lint:", err)
			os.Exit(2)
		}
		for i := range diags {
			diags[i].Pos.Filename = relToRoot(root, diags[i].Pos.Filename)
		}
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		env := envelope{Schema: "senss-lint/1", ContentHash: hash, Analyzers: names, Findings: diags}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(env); err != nil {
			fmt.Fprintln(os.Stderr, "senss-lint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			d.Pos.Filename = relToRoot(root, d.Pos.Filename)
			fmt.Println(d)
		}
		fmt.Printf("senss-lint: %d package(s), %d finding(s)\n", len(selected), len(diags))
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// matchesAny implements the ./... pattern subset the driver supports.
func matchesAny(relPath string, patterns []string) bool {
	for _, p := range patterns {
		p = strings.TrimPrefix(p, "./")
		if p == "..." || p == "" {
			return true
		}
		if sub, ok := strings.CutSuffix(p, "/..."); ok {
			if relPath == sub || strings.HasPrefix(relPath, sub+"/") {
				return true
			}
			continue
		}
		if relPath == p {
			return true
		}
	}
	return false
}

// skipped applies the -skip prefix list.
func skipped(relPath, skip string) bool {
	if skip == "" {
		return false
	}
	for _, p := range strings.Split(skip, ",") {
		p = strings.TrimSpace(strings.TrimPrefix(p, "./"))
		if p != "" && (relPath == p || strings.HasPrefix(relPath, p+"/")) {
			return true
		}
	}
	return false
}

// relToRoot shortens absolute diagnostic paths for terminal output.
func relToRoot(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
