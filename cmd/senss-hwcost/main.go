// Command senss-hwcost evaluates the §7.1 hardware-overhead arithmetic of
// the SENSS security hardware unit for a configurable machine size.
//
// Example:
//
//	senss-hwcost -groups 1024 -procs 32 -masks 8
package main

import (
	"flag"
	"fmt"

	"senss/internal/core"
)

func main() {
	p := core.DefaultHWCost()
	flag.IntVar(&p.MaxGroups, "groups", p.MaxGroups, "group info table entries")
	flag.IntVar(&p.MaxProcs, "procs", p.MaxProcs, "maximum processors")
	flag.IntVar(&p.MaskCount, "masks", p.MaskCount, "masks stored per group entry")
	flag.IntVar(&p.CounterBits, "ctrbits", p.CounterBits, "authentication counter bits")
	flag.IntVar(&p.BaseBusLines, "buslines", p.BaseBusLines, "base bus line count (Gigaplane: 378)")
	flag.Parse()

	fmt.Println("SENSS SHU hardware overhead (paper §7.1)")
	fmt.Println("----------------------------------------")
	fmt.Println(core.ComputeHWCost(p))
}
