package senss

import (
	"testing"

	"senss/internal/crypto"
	"senss/internal/machine"
	"senss/internal/workload"
)

// TestOracleSweepClean runs every workload of the Figure 6 sweep at test
// size with the lockstep differential oracle attached, in the unprotected
// baseline and in the SENSS configuration under each crypto backend. The
// timed simulator must agree with the untimed reference models on every
// bus transaction, every decrypted payload, and every authentication tag
// — and because the oracle always recomputes with the reference AES, the
// stdlib-backend rows are a full lockstep cross-check of the fast cipher
// against the reference implementation.
func TestOracleSweepClean(t *testing.T) {
	cases := []struct {
		label   string
		mode    machine.SecurityMode
		backend string
	}{
		{machine.SecurityOff.String(), machine.SecurityOff, ""},
		{machine.SecurityBus.String(), machine.SecurityBus, crypto.Ref},
		{machine.SecurityBus.String() + "-stdlib", machine.SecurityBus, crypto.Stdlib},
	}
	for _, name := range PaperSuite() {
		for _, tc := range cases {
			name, tc := name, tc
			t.Run(name+"/"+tc.label, func(t *testing.T) {
				cfg := DefaultConfig()
				cfg.Procs = 4
				cfg.Coherence.L1Size = 4 << 10
				cfg.Coherence.L2Size = 64 << 10
				cfg.CPU.CodeBytes = 2 << 10
				cfg.Security.Mode = tc.mode
				cfg.Security.Senss.Backend = tc.backend
				cfg.Security.Senss.Perfect = true
				cfg.Security.Senss.AuthInterval = 100
				cfg.Oracle = true

				w, err := workload.New(name, SizeTest)
				if err != nil {
					t.Fatal(err)
				}
				m := machine.New(cfg)
				progs := w.Setup(m, cfg.Procs)
				if _, err := m.Run(progs); err != nil {
					t.Fatal(err)
				}
				if halted, why := m.Halted(); halted {
					t.Fatalf("halted: %s", why)
				}
				if m.Oracle.Diverged() {
					t.Fatalf("oracle diverged: %s", m.Oracle.Report().Divergence)
				}
				if m.Oracle.Checked() == 0 {
					t.Fatal("oracle observed no transactions")
				}
				if err := w.Validate(m); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
