package senss

import (
	"testing"

	"senss/internal/machine"
	"senss/internal/workload"
)

// TestOracleSweepClean runs every workload of the Figure 6 sweep at test
// size with the lockstep differential oracle attached, in both the
// unprotected baseline and the SENSS configuration. The timed simulator
// must agree with the untimed reference models on every bus transaction,
// every decrypted payload, and every authentication tag.
func TestOracleSweepClean(t *testing.T) {
	modes := []machine.SecurityMode{machine.SecurityOff, machine.SecurityBus}
	for _, name := range PaperSuite() {
		for _, mode := range modes {
			name, mode := name, mode
			t.Run(name+"/"+mode.String(), func(t *testing.T) {
				cfg := DefaultConfig()
				cfg.Procs = 4
				cfg.Coherence.L1Size = 4 << 10
				cfg.Coherence.L2Size = 64 << 10
				cfg.CPU.CodeBytes = 2 << 10
				cfg.Security.Mode = mode
				cfg.Security.Senss.Perfect = true
				cfg.Security.Senss.AuthInterval = 100
				cfg.Oracle = true

				w, err := workload.New(name, SizeTest)
				if err != nil {
					t.Fatal(err)
				}
				m := machine.New(cfg)
				progs := w.Setup(m, cfg.Procs)
				if _, err := m.Run(progs); err != nil {
					t.Fatal(err)
				}
				if halted, why := m.Halted(); halted {
					t.Fatalf("halted: %s", why)
				}
				if m.Oracle.Diverged() {
					t.Fatalf("oracle diverged: %s", m.Oracle.Report().Divergence)
				}
				if m.Oracle.Checked() == 0 {
					t.Fatal("oracle observed no transactions")
				}
				if err := w.Validate(m); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
