GO ?= go

.PHONY: all build test vet lint taintflow hotpath lockguard race farm-race serve-race oracle fuzz-smoke figures bench-sim bench-check bench-crypto bench-serve speed-smoke serve-smoke verify clean

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

lint: build
	$(GO) run ./cmd/senss-lint ./...

# taintflow runs only the interprocedural secret-taint analyzer (the most
# expensive rule) with vet-style exit codes: 0 clean, 1 findings. The
# full `lint` target (and thus `verify`) already includes it.
taintflow: build
	$(GO) run ./cmd/senss-lint -analyzer taintflow ./...

# hotpath runs only the allocation-and-escape discipline analyzer for
# //senss-lint:hotpath code (DESIGN.md section 13). The full `lint`
# target (and thus `verify`) already includes it; this target is the
# fast loop while annotating or remediating hot code.
hotpath: build
	$(GO) run ./cmd/senss-lint -analyzer hotpath ./...

# lockguard runs only the lock-discipline analyzer (guarded fields,
# unlock paths, lock ordering, goroutine/blocking hygiene; DESIGN.md
# section 17). The full `lint` target already includes it; this target is
# the fast loop while annotating //senss-lint:guardedby fields or
# remediating concurrency findings.
lockguard: build
	$(GO) run ./cmd/senss-lint -analyzer lockguard ./...

race:
	$(GO) test -race ./...

# farm-race hammers the orchestration pool specifically: the worker
# pool, cache, and manifest paths under the race detector with high
# iteration count. Cheap enough to run on every change to internal/farm.
farm-race:
	$(GO) test -race -count=3 ./internal/farm

# serve-race hammers the serving layer under the race detector: the
# lock-striped session table, the quota accountant, the bounded pool,
# and the 64-session concurrency test whose served stats must stay
# byte-identical to serial driver.Run.
serve-race:
	$(GO) test -race ./internal/serve

# oracle runs the shape-regression suite with the lockstep differential
# oracle attached (SENSS_ORACLE=1): every bus transaction is replayed
# against the untimed coherence and crypto reference models at zero
# cycle cost, plus the oracle unit suite (planted-bug demonstrations).
oracle: build
	SENSS_ORACLE=1 $(GO) test -run 'TestShape|TestOracle' . ./internal/oracle

# fuzz-smoke first replays every checked-in corpus entry through
# cmd/senss-fuzz (deterministic, always), then gives each native fuzz
# target 10s of coverage-guided exploration against the oracle.
fuzz-smoke: build
	$(GO) run ./cmd/senss-fuzz
	$(GO) test ./internal/fuzzing -run '^$$' -fuzz '^FuzzSchedule$$' -fuzztime 10s
	$(GO) test ./internal/fuzzing -run '^$$' -fuzz '^FuzzAdversary$$' -fuzztime 10s
	$(GO) test ./internal/fuzzing -run '^$$' -fuzz '^FuzzConfig$$' -fuzztime 10s

# figures regenerates the full evaluation (Figures 6-11 + §7.1) through
# the persistent cache; a second invocation assembles from .senss-cache
# without simulating.
figures: build
	$(GO) run ./cmd/senss-tables -fig all -cache-dir .senss-cache

# bench-sim records the raw-substrate trajectory points (simulated memory
# ops per host second, host allocations per simulated op) in
# BENCH_sim.json: one record per workload at the 4-proc bench geometry
# plus the 1-proc engine record — the pinned baseline for performance work.
bench-sim: build
	$(GO) run ./cmd/senss-farm bench-sim

# bench-check re-measures every committed BENCH_sim.json record and fails
# on a >15% ops/sec regression — the performance ratchet guarding the
# engine hot path. Part of `verify`.
bench-check: build
	$(GO) run ./cmd/senss-farm bench-check

# bench-crypto records the crypto-backend trajectory point (block
# encrypt, pad stream, CBC-MAC, and end-to-end secured throughput per
# backend, plus the stdlib/ref speedup) in BENCH_crypto.json.
bench-crypto: build
	$(GO) run ./cmd/senss-speed

# bench-serve records the serving-layer trajectory point (sessions/sec,
# step-latency percentiles, peak SHU-group occupancy under M tenants x K
# sessions) in BENCH_serve.json.
bench-serve: build
	$(GO) run ./cmd/senss-serve bench

# speed-smoke is the cheap senss-speed invocation verify runs: quick
# intervals, output to a scratch file, but the full backend sweep and the
# cross-backend cycle-identity gate still execute.
speed-smoke: build
	$(GO) run ./cmd/senss-speed -quick -out /tmp/senss-speed-smoke.json

# serve-smoke drives one secured session per tenant through the real
# HTTP surface on an ephemeral port and checks the group accounting
# drains to zero — the serving layer's end-to-end self-test.
serve-smoke: build
	$(GO) run ./cmd/senss-serve serve -smoke

# verify is the full pre-merge gate: everything CI runs, in order of
# increasing cost.
verify: build vet lint lockguard test farm-race serve-race race oracle speed-smoke serve-smoke bench-check fuzz-smoke

clean:
	$(GO) clean ./...
