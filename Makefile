GO ?= go

.PHONY: all build test vet lint race farm-race figures verify clean

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

lint: build
	$(GO) run ./cmd/senss-lint ./...

race:
	$(GO) test -race ./...

# farm-race hammers the orchestration pool specifically: the worker
# pool, cache, and manifest paths under the race detector with high
# iteration count. Cheap enough to run on every change to internal/farm.
farm-race:
	$(GO) test -race -count=3 ./internal/farm

# figures regenerates the full evaluation (Figures 6-11 + §7.1) through
# the persistent cache; a second invocation assembles from .senss-cache
# without simulating.
figures: build
	$(GO) run ./cmd/senss-tables -fig all -cache-dir .senss-cache

# verify is the full pre-merge gate: everything CI runs, in order of
# increasing cost.
verify: build vet lint test farm-race race

clean:
	$(GO) clean ./...
