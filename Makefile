GO ?= go

.PHONY: all build test vet lint race verify clean

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

lint: build
	$(GO) run ./cmd/senss-lint ./...

race:
	$(GO) test -race ./...

# verify is the full pre-merge gate: everything CI runs, in order of
# increasing cost.
verify: build vet lint test race

clean:
	$(GO) clean ./...
