package senss

// One benchmark per table/figure of the paper's evaluation (§7). Each
// bench runs the corresponding experiment at test scale and reports the
// paper's metric via b.ReportMetric:
//
//	Figure 6  — slowdown_pct per workload (SENSS, auth interval 100)
//	Figure 7  — slowdown_pct and mask_stall_cycles per mask-bank count
//	Figure 8  — traffic_pct per workload
//	Figure 9  — slowdown_pct / traffic_pct per authentication interval
//	Figure 10 — slowdown_pct / traffic_pct for the integrated system
//	Figure 11 — cycle spread under timing perturbation (§7.8)
//	Table 1   — the bus-encryption datapath itself (protocol throughput)
//
// cmd/senss-tables regenerates the full tables; these benches make every
// experiment reproducible through `go test -bench`.

import (
	"testing"

	"senss/internal/core"
	"senss/internal/crypto/aes"
	"senss/internal/machine"
	"senss/internal/rng"
	"senss/internal/stats"
	"senss/internal/workload"
)

// benchConfig is the shared experiment machine (scaled per DESIGN.md §2).
func benchConfig(procs int, l2 int) Config {
	cfg := machine.DefaultConfig()
	cfg.Procs = procs
	cfg.Coherence.L1Size = 4 << 10
	cfg.Coherence.L2Size = l2
	cfg.CPU.CodeBytes = 2 << 10
	return cfg
}

func mustRun(b *testing.B, name string, cfg Config) Run {
	b.Helper()
	run, err := RunWorkload(name, SizeTest, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return run
}

// comparePair runs base + secure once and reports the paper metrics.
func comparePair(b *testing.B, name string, secure Config) (Run, Run) {
	b.Helper()
	base := secure
	base.Security.Mode = machine.SecurityOff
	base.Security.Naive = false
	return mustRun(b, name, base), mustRun(b, name, secure)
}

// BenchmarkFig6_Slowdown reproduces Figure 6: per-workload slowdown of
// SENSS at authentication interval 100 (4P, large-class L2).
func BenchmarkFig6_Slowdown(b *testing.B) {
	for _, name := range workload.PaperSuite() {
		b.Run(name, func(b *testing.B) {
			cfg := benchConfig(4, 64<<10)
			cfg.Security.Mode = SecurityBus
			cfg.Security.Senss.Perfect = true
			cfg.Security.Senss.AuthInterval = 100
			var slow float64
			for i := 0; i < b.N; i++ {
				base, sec := comparePair(b, name, cfg)
				slow = stats.SlowdownPct(base, sec)
			}
			b.ReportMetric(slow, "slowdown_pct")
		})
	}
}

// BenchmarkFig7_Masks reproduces Figure 7: the cost of shrinking the mask
// supply (radix, the most bus-intensive kernel).
func BenchmarkFig7_Masks(b *testing.B) {
	points := []struct {
		label   string
		masks   int
		perfect bool
	}{
		{"perfect", 8, true}, {"masks8", 8, false}, {"masks4", 4, false},
		{"masks2", 2, false}, {"masks1", 1, false},
	}
	for _, pt := range points {
		b.Run(pt.label, func(b *testing.B) {
			cfg := benchConfig(4, 64<<10)
			cfg.Security.Mode = SecurityBus
			cfg.Security.Senss.Masks = pt.masks
			cfg.Security.Senss.Perfect = pt.perfect
			cfg.Security.Senss.AuthInterval = 100
			var slow, stalls float64
			for i := 0; i < b.N; i++ {
				base, sec := comparePair(b, "radix", cfg)
				slow = stats.SlowdownPct(base, sec)
				stalls = float64(sec.MaskStalls)
			}
			b.ReportMetric(slow, "slowdown_pct")
			b.ReportMetric(stalls, "mask_stall_cycles")
		})
	}
}

// BenchmarkFig8_Traffic reproduces Figure 8: bus-activity increase per
// workload (4P, small-class L2).
func BenchmarkFig8_Traffic(b *testing.B) {
	for _, name := range workload.PaperSuite() {
		b.Run(name, func(b *testing.B) {
			cfg := benchConfig(4, 16<<10)
			cfg.Security.Mode = SecurityBus
			cfg.Security.Senss.Perfect = true
			cfg.Security.Senss.AuthInterval = 100
			var tr float64
			for i := 0; i < b.N; i++ {
				base, sec := comparePair(b, name, cfg)
				tr = stats.TrafficIncreasePct(base, sec)
			}
			b.ReportMetric(tr, "traffic_pct")
		})
	}
}

// BenchmarkFig9_AuthInterval reproduces Figure 9: the authentication
// interval sweep (radix, 4P).
func BenchmarkFig9_AuthInterval(b *testing.B) {
	for _, interval := range []int{100, 32, 10, 1} {
		b.Run(map[int]string{100: "txns100", 32: "txns32", 10: "txns10", 1: "txns1"}[interval],
			func(b *testing.B) {
				cfg := benchConfig(4, 64<<10)
				cfg.Security.Mode = SecurityBus
				cfg.Security.Senss.Perfect = true
				cfg.Security.Senss.AuthInterval = interval
				var slow, tr float64
				for i := 0; i < b.N; i++ {
					base, sec := comparePair(b, "radix", cfg)
					slow = stats.SlowdownPct(base, sec)
					tr = stats.TrafficIncreasePct(base, sec)
				}
				b.ReportMetric(slow, "slowdown_pct")
				b.ReportMetric(tr, "traffic_pct")
			})
	}
}

// BenchmarkFig10_Integrated reproduces Figure 10: SENSS plus memory
// encryption (perfect SNC) and CHash integrity, small-class L2.
func BenchmarkFig10_Integrated(b *testing.B) {
	for _, name := range workload.PaperSuite() {
		b.Run(name, func(b *testing.B) {
			cfg := benchConfig(4, 16<<10)
			cfg.Security.Mode = SecurityBusMem
			cfg.Security.Integrity = true
			cfg.Security.Senss.Perfect = true
			cfg.Security.Senss.AuthInterval = 100
			var slow, tr float64
			for i := 0; i < b.N; i++ {
				base, sec := comparePair(b, name, cfg)
				slow = stats.SlowdownPct(base, sec)
				tr = stats.TrafficIncreasePct(base, sec)
			}
			b.ReportMetric(slow, "slowdown_pct")
			b.ReportMetric(tr, "traffic_pct")
		})
	}
}

// BenchmarkFig11_Variability reproduces §7.8 / Figure 11: the spread of
// the secure-vs-base comparison across small timing perturbations.
func BenchmarkFig11_Variability(b *testing.B) {
	var spread, fasterShare float64
	for i := 0; i < b.N; i++ {
		var minS, maxS float64
		faster := 0
		const seeds = 6
		for seed := 1; seed <= seeds; seed++ {
			base := benchConfig(4, 64<<10)
			base.PerturbMax = 3
			base.PerturbSeed = uint64(seed)
			baseRun := mustRun(b, "falseshare", base)
			sec := base
			sec.Security.Mode = SecurityBus
			sec.Security.Senss.Perfect = true
			sec.Security.Senss.AuthInterval = 100
			secRun := mustRun(b, "falseshare", sec)
			s := stats.SlowdownPct(baseRun, secRun)
			if seed == 1 || s < minS {
				minS = s
			}
			if seed == 1 || s > maxS {
				maxS = s
			}
			if s < 0 {
				faster++
			}
		}
		spread = maxS - minS
		fasterShare = float64(faster) / seeds
	}
	b.ReportMetric(spread, "slowdown_spread_pct")
	b.ReportMetric(fasterShare*100, "secure_faster_pct_of_seeds")
}

// BenchmarkTable1_BusCrypto measures the Table 1 datapath itself: the
// per-line cost of the SHU encrypt/observe path (four OTP XORs on the
// critical path, chained AES refresh and MAC in the background).
func BenchmarkTable1_BusCrypto(b *testing.B) {
	params := core.DefaultParams()
	params.Perfect = true
	sys := core.NewSystem(nil, nil, 2, params, false)
	r := rng.New(42)
	key := aes.Block(r.Block16())
	encIV := aes.Block(r.Block16())
	authIV := aes.Block(r.Block16())
	if err := sys.Establish(0, key, core.MemberMask(0, 1), encIV, authIV); err != nil {
		b.Fatal(err)
	}
	line := make([]byte, 64)
	r.Read(line)
	plain := core.LineToBlocks(line)
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cipher, err := sys.SHU(0).Encrypt(0, plain)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.SHU(1).Observe(0, cipher, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulator measures raw simulator throughput (memory operations
// per second) on the unprotected machine — the substrate's own speed.
func BenchmarkSimulator(b *testing.B) {
	var ops uint64
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(4, 64<<10)
		run := mustRun(b, "ocean", cfg)
		ops = run.Loads + run.Stores + run.RMWs
	}
	b.ReportMetric(float64(ops), "sim_mem_ops")
}
