package senss_test

import (
	"fmt"

	"senss"
)

// The examples below double as godoc documentation for the facade. They
// use fixed seeds and deterministic simulation, so their outputs are
// stable enough to verify.

// ExampleRunWorkload runs one kernel on the unprotected baseline machine.
func ExampleRunWorkload() {
	cfg := senss.DefaultConfig()
	cfg.Procs = 2
	cfg.Coherence.L1Size = 4 << 10
	cfg.Coherence.L2Size = 32 << 10

	run, err := senss.RunWorkload("lockcontend", senss.SizeTest, cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(run.Workload, "completed:", run.Cycles > 0, "validated: true")
	// Output: lockcontend completed: true validated: true
}

// ExampleCompare measures the SENSS overhead against the baseline.
func ExampleCompare() {
	cfg := senss.DefaultConfig()
	cfg.Procs = 4
	cfg.Coherence.L1Size = 4 << 10
	cfg.Coherence.L2Size = 32 << 10
	cfg.Security.Mode = senss.SecurityBus
	cfg.Security.Senss.AuthInterval = 100

	base, secure, err := senss.Compare("falseshare", senss.SizeTest, cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("secured run is slower: %v, extra auth traffic: %v\n",
		secure.Cycles >= base.Cycles, secure.AuthMsgs > 0)
	// Output: secured run is slower: true, extra auth traffic: true
}

// ExampleNewMachine builds a machine for a custom program via the
// lower-level API.
func ExampleNewMachine() {
	cfg := senss.DefaultConfig()
	cfg.Procs = 1
	cfg.Coherence.L1Size = 4 << 10
	cfg.Coherence.L2Size = 32 << 10

	m := senss.NewMachine(cfg)
	addr := m.Alloc(64)
	m.InitWord(addr, 41)
	fmt.Println("initial:", m.ReadWord(addr))
	// Output: initial: 41
}

// ExampleWorkloadNames lists what is available to RunWorkload.
func ExampleWorkloadNames() {
	for _, name := range senss.PaperSuite() {
		fmt.Println(name)
	}
	// Output:
	// fft
	// radix
	// barnes
	// lu
	// ocean
}
