package senss

// Cross-backend fidelity: the crypto backend is a host-software choice
// behind the crypto.BlockCipher interface, so a secured simulation must
// produce identical results — every cycle count, every bus statistic —
// whichever backend computes the AES. The differential oracle checks the
// payloads in lockstep elsewhere (oracle_sweep_test.go); this test pins
// the whole measurement record.

import (
	"reflect"
	"testing"

	"senss/internal/crypto"
	"senss/internal/machine"
)

func TestBackendsCycleIdentical(t *testing.T) {
	for _, mode := range []machine.SecurityMode{SecurityBus, SecurityBusMem} {
		t.Run(mode.String(), func(t *testing.T) {
			var runs []Run
			for _, backend := range crypto.Backends() {
				cfg := DefaultConfig()
				cfg.Procs = 4
				cfg.Coherence.L1Size = 4 << 10
				cfg.Coherence.L2Size = 64 << 10
				cfg.CPU.CodeBytes = 2 << 10
				cfg.Security.Mode = mode
				cfg.Security.Senss.Backend = backend
				run, err := RunWorkload("fft", SizeTest, cfg)
				if err != nil {
					t.Fatalf("backend %s: %v", backend, err)
				}
				if run.Cycles == 0 {
					t.Fatalf("backend %s: zero-cycle run; test is vacuous", backend)
				}
				runs = append(runs, run)
			}
			for i, backend := range crypto.Backends() {
				if !reflect.DeepEqual(runs[0], runs[i]) {
					t.Errorf("backend %s produced a different run record than %s:\n%+v\nvs\n%+v",
						backend, crypto.Backends()[0], runs[i], runs[0])
				}
			}
		})
	}
}
