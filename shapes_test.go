package senss

// Shape regression tests: the paper's qualitative claims, pinned with
// small fast runs so `go test` guards them. EXPERIMENTS.md records the
// full-sweep numbers; these tests keep the *orderings* from regressing.

import (
	"os"
	"testing"

	"senss/internal/core"
	"senss/internal/machine"
	"senss/internal/stats"
)

func shapeConfig() Config {
	cfg := machine.DefaultConfig()
	cfg.Procs = 4
	cfg.Coherence.L1Size = 4 << 10
	cfg.Coherence.L2Size = 64 << 10
	cfg.CPU.CodeBytes = 2 << 10
	// SENSS_ORACLE=1 runs every shape test in lockstep with the
	// differential oracle (internal/oracle). The oracle charges zero bus
	// cycles, so the pinned orderings are unaffected; a divergence halts
	// the machine, which driver.Run turns into the error shapeRun fatals
	// on. `make oracle` sets the guard.
	if os.Getenv("SENSS_ORACLE") != "" {
		cfg.Oracle = true
	}
	return cfg
}

func shapeRun(t *testing.T, name string, cfg Config) Run {
	t.Helper()
	run, err := RunWorkload(name, SizeTest, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func shapePair(t *testing.T, name string, cfg Config) (Run, Run) {
	t.Helper()
	base := cfg
	base.Security.Mode = SecurityOff
	return shapeRun(t, name, base), shapeRun(t, name, cfg)
}

// TestShapeFig7MaskOrdering: fewer masks never run faster, 4 banks ≈
// perfect (the paper's §7.4 finding), 1 bank clearly slower.
func TestShapeFig7MaskOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in short mode")
	}
	cycles := map[string]uint64{}
	for _, pt := range []struct {
		label   string
		masks   int
		perfect bool
	}{{"perfect", 8, true}, {"m4", 4, false}, {"m2", 2, false}, {"m1", 1, false}} {
		cfg := shapeConfig()
		cfg.Security.Mode = SecurityBus
		cfg.Security.Senss.Masks = pt.masks
		cfg.Security.Senss.Perfect = pt.perfect
		cfg.Security.Senss.AuthInterval = 100
		cycles[pt.label] = shapeRun(t, "radix", cfg).Cycles
	}
	if cycles["m4"] != cycles["perfect"] {
		// The paper: "using 4 masks is as good as the perfect case". With
		// an 80-cycle AES and ≥40-cycle back-to-back transfer spacing, 4
		// banks fully hide the refresh; allow a whisker of tolerance.
		diff := float64(cycles["m4"])/float64(cycles["perfect"]) - 1
		if diff > 0.002 {
			t.Errorf("4 masks measurably worse than perfect: %v vs %v", cycles["m4"], cycles["perfect"])
		}
	}
	if cycles["m2"] < cycles["m4"] {
		t.Errorf("2 masks faster than 4: %v < %v", cycles["m2"], cycles["m4"])
	}
	if cycles["m1"] <= cycles["m2"] {
		t.Errorf("1 mask not slower than 2: %v <= %v", cycles["m1"], cycles["m2"])
	}
}

// TestShapeFig10IntegratedCostsMore: full protection must cost more than
// bus-only in both metrics, with hash work present.
func TestShapeFig10IntegratedCostsMore(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in short mode")
	}
	busCfg := shapeConfig()
	busCfg.Security.Mode = SecurityBus
	busCfg.Security.Senss.Perfect = true
	busCfg.Security.Senss.AuthInterval = 100
	base, busRun := shapePair(t, "radix", busCfg)

	fullCfg := busCfg
	fullCfg.Security.Mode = SecurityBusMem
	fullCfg.Security.Integrity = true
	fullRun := shapeRun(t, "radix", fullCfg)

	if fullRun.Cycles <= busRun.Cycles {
		t.Errorf("integrated (%d cycles) not slower than bus-only (%d)", fullRun.Cycles, busRun.Cycles)
	}
	if fullRun.BusTotal <= busRun.BusTotal {
		t.Errorf("integrated traffic (%d) not above bus-only (%d)", fullRun.BusTotal, busRun.BusTotal)
	}
	if fullRun.HashOps == 0 {
		t.Error("integrated run did no hashing")
	}
	if s := stats.SlowdownPct(base, fullRun); s < stats.SlowdownPct(base, busRun) {
		t.Error("integrated slowdown below bus-only slowdown")
	}
}

// TestShapeTrafficSmallAtInterval100: the Figure 8 claim — bus-activity
// increase well under a few percent at the default interval.
func TestShapeTrafficSmallAtInterval100(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in short mode")
	}
	for _, name := range []string{"radix", "ocean"} {
		cfg := shapeConfig()
		cfg.Security.Mode = SecurityBus
		cfg.Security.Senss.Perfect = true
		cfg.Security.Senss.AuthInterval = 100
		base, sec := shapePair(t, name, cfg)
		if tr := stats.TrafficIncreasePct(base, sec); tr > 3 {
			t.Errorf("%s: traffic increase %.2f%% exceeds the Figure 8 regime", name, tr)
		}
	}
}

// TestShapeInterval1BoundedByC2CShare: Figure 9's explanation — per-
// transfer authentication adds one message per cache-to-cache transfer,
// so the traffic increase approximates the base run's c2c share.
func TestShapeInterval1BoundedByC2CShare(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in short mode")
	}
	cfg := shapeConfig()
	cfg.Security.Mode = SecurityBus
	cfg.Security.Senss.Perfect = true
	cfg.Security.Senss.AuthInterval = 1
	base, sec := shapePair(t, "radix", cfg)
	tr := stats.TrafficIncreasePct(base, sec) / 100
	share := base.C2CShare()
	// One auth per c2c transfer: increase ≈ share/(1) with slack for the
	// second-order timing shifts.
	if tr < share*0.5 || tr > share*1.5 {
		t.Errorf("interval-1 traffic increase %.3f not within 50%% of c2c share %.3f", tr, share)
	}
}

// TestShapeGFModeBeatsCBCUnderMaskScarcity: the §4.3 GCM-style extension
// eliminates mask stalls, so with one bank it must outperform CBC.
func TestShapeGFModeBeatsCBCUnderMaskScarcity(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in short mode")
	}
	run := func(mode core.AuthMode) Run {
		cfg := shapeConfig()
		cfg.Security.Mode = SecurityBus
		cfg.Security.Senss.AuthMode = mode
		cfg.Security.Senss.Perfect = false
		cfg.Security.Senss.Masks = 1
		cfg.Security.Senss.AuthInterval = 100
		return shapeRun(t, "radix", cfg)
	}
	cbc := run(core.AuthCBC)
	gf := run(core.AuthGF)
	if gf.MaskStalls != 0 {
		t.Errorf("GF mode stalled %d cycles", gf.MaskStalls)
	}
	if cbc.MaskStalls == 0 {
		t.Error("CBC with one bank never stalled (the comparison is vacuous)")
	}
	if gf.Cycles >= cbc.Cycles {
		t.Errorf("GF (%d cycles) not faster than stalling CBC (%d)", gf.Cycles, cbc.Cycles)
	}
}

// TestShapeSlowdownGrowsWithProcessors: the Figure 6 observation — more
// processors means more cache-to-cache transfers, hence more SENSS cost.
func TestShapeSlowdownGrowsWithProcessors(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in short mode")
	}
	slow := func(procs int) float64 {
		cfg := shapeConfig()
		cfg.Procs = procs
		cfg.Security.Mode = SecurityBus
		cfg.Security.Senss.Perfect = true
		cfg.Security.Senss.AuthInterval = 100
		base, sec := shapePair(t, "fft", cfg)
		return stats.SlowdownPct(base, sec)
	}
	s2, s4 := slow(2), slow(4)
	if s4 < s2*0.8 {
		// Allow variability headroom, but 4P should not be clearly cheaper.
		t.Errorf("slowdown shrank with more processors: 2P %.2f%% vs 4P %.2f%%", s2, s4)
	}
}
