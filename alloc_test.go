package senss

// Dynamic half of the hotpath discipline (DESIGN.md §13): the static
// analyzer proves the steady state allocates nothing by construction;
// these tests measure it. A resident driver proc keeps one engine, bus,
// and coherence node alive across testing.AllocsPerRun iterations, so the
// measurement sees only per-operation cost — never engine or goroutine
// setup. Budgets — including the miss paths, which are pooled since the
// fillState/scratch-buffer rework — are pinned in
// testdata/alloc_budget.json; they only ratchet down. Raising one is a
// deliberate, reviewed act made in the same commit as the code that
// needs it.

import (
	"encoding/json"
	"os"
	"testing"

	"senss/internal/bus"
	"senss/internal/coherence"
	"senss/internal/crypto"
	"senss/internal/crypto/aes"
	"senss/internal/mem"
	"senss/internal/memsec"
	"senss/internal/rng"
	"senss/internal/sim"
)

// allocRig owns a live simulation whose single proc executes memory
// operations on demand. The proc blocks on work while holding the run
// token; each run call hands it a batch and waits for completion, so the
// simulated clock advances only inside measured regions.
type allocRig struct {
	work chan int
	done chan struct{}
	fin  chan error
	op   int // persistent operation counter, so batches keep advancing the working set
}

// startAllocRig builds a one-node machine (small caches so miss scenarios
// stay cheap) and parks a driver proc executing body per operation. A
// non-empty backend makes the memory port the memsec encryption layer
// running that crypto backend.
func startAllocRig(body func(p *sim.Proc, n *coherence.Node, op int), backend string) *allocRig {
	params := coherence.Params{
		L1Size: 4 << 10, L1Ways: 2, L1Line: 32,
		L2Size: 16 << 10, L2Ways: 4, L2Line: 64,
		L1HitLat: 2, L2HitLat: 10, StoreLat: 2, RMWLat: 4,
	}
	timing := bus.Timing{
		BusCycle: 10, C2CLat: 120, MemLat: 180,
		BytesPerBusCycle: 32, LineBytes: 64,
	}
	eng := sim.NewEngine()
	store := mem.New()
	var port bus.MemoryPort = &bus.SimpleMemory{Backing: store}
	if backend != "" {
		r := rng.New(7)
		port = memsec.New(store, crypto.MustBackend(backend, aes.Block(r.Block16())), 1,
			memsec.Params{AESLatency: 80, PerfectSNC: true, PadEntries: 8192})
	}
	b := bus.New(eng, timing, port)
	n := coherence.NewNode(0, params, b)

	rig := &allocRig{
		work: make(chan int),
		done: make(chan struct{}),
		fin:  make(chan error, 1),
	}
	eng.Spawn("alloc-driver", func(p *sim.Proc) {
		for nops := range rig.work {
			for i := 0; i < nops; i++ {
				body(p, n, rig.op)
				rig.op++
			}
			rig.done <- struct{}{}
		}
	})
	go func() { rig.fin <- eng.Run() }()
	return rig
}

// run executes one batch of nops operations inside the simulation.
func (r *allocRig) run(nops int) {
	r.work <- nops
	<-r.done
}

// stop retires the driver proc and drains the engine.
func (r *allocRig) stop(t *testing.T) {
	t.Helper()
	close(r.work)
	if err := <-r.fin; err != nil {
		t.Fatalf("alloc rig engine: %v", err)
	}
}

// steadyBody touches a 4 KiB working set (64 lines, resident in the
// 16 KiB L2) with loads, stores, and RMWs: after warmup every operation
// is a cache hit — the simulator's steady state.
func steadyBody(p *sim.Proc, n *coherence.Node, op int) {
	addr := 0x1000 + uint64(op%64)*64
	n.Load(p, addr)
	n.Store(p, addr, uint64(op))
	n.RMW(p, addr, func(v uint64) uint64 { return v + 1 })
}

// missBody cycles a 64 KiB working set (1024 lines, 4× the L2) so every
// operation misses: fills, evictions, and dirty writebacks on the store
// half.
func missBody(p *sim.Proc, n *coherence.Node, op int) {
	addr := 0x1000 + uint64(op%1024)*64
	if op%2 == 0 {
		n.Load(p, addr)
	} else {
		n.Store(p, addr, uint64(op))
	}
}

// calqueueBody drives the engine scheduler through both tiers of the
// calendar queue: the short sleep lands in the 1024-bucket wheel, the
// long one overflows past the wheel horizon into the spill heap, and the
// timer callback scheduled 2048 cycles out exercises Engine.After through
// the overflow path (it migrates into the wheel on a later rotation).
// The callback closure captures nothing, so it is a singleton — any
// measured allocation comes from the queue itself.
func calqueueBody(p *sim.Proc, n *coherence.Node, op int) {
	p.Sleep(uint64(op%7) + 1)
	p.Sleep(1024 + uint64(op%513))
	p.Engine().After(2048, func() {})
}

// allocBudget is the schema of testdata/alloc_budget.json.
type allocBudget struct {
	Comment string             `json:"comment"`
	Budgets map[string]float64 `json:"budgets"`
}

func loadAllocBudgets(t *testing.T) map[string]float64 {
	t.Helper()
	raw, err := os.ReadFile("testdata/alloc_budget.json")
	if err != nil {
		t.Fatalf("reading alloc budget: %v", err)
	}
	var b allocBudget
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatalf("parsing alloc budget: %v", err)
	}
	if len(b.Budgets) == 0 {
		t.Fatal("alloc budget file has no budgets")
	}
	return b.Budgets
}

// measureAllocsPerOp reports average heap allocations per simulated
// memory operation for a scenario, after warming caches, freelists, and
// scratch buffers with warmup operations.
func measureAllocsPerOp(t *testing.T, rig *allocRig, warmup, batch int) float64 {
	t.Helper()
	rig.run(warmup)
	avg := testing.AllocsPerRun(20, func() { rig.run(batch) })
	return avg / float64(batch)
}

// TestBusSteadyStateZeroAlloc is the hard gate: once warm, the bus,
// coherence, and sim-engine hit paths allocate nothing — zero allocations
// per operation, not merely few. If this fails, something on a
// //senss-lint:hotpath route started allocating (or a waiver hid a
// steady-state allocation the analyzer could not prove away).
func TestBusSteadyStateZeroAlloc(t *testing.T) {
	budgets := loadAllocBudgets(t)
	if want, ok := budgets["bus_steady_state"]; !ok || want != 0 {
		t.Fatalf("alloc budget for bus_steady_state must be pinned at 0, got %v (present=%v)", want, ok)
	}
	rig := startAllocRig(steadyBody, "")
	defer rig.stop(t)
	perOp := measureAllocsPerOp(t, rig, 1024, 192)
	if perOp != 0 {
		t.Errorf("steady-state allocations = %v per op, want exactly 0 — "+
			"a hot path regressed; run `make hotpath` and check recent waivers", perOp)
	}
}

// TestAllocBudgets pins the deliberately-allocating paths (miss fills,
// writebacks, the memsec port) to the recorded budgets. Exceeding one
// means a new allocation crept onto a miss path; deliberate changes must
// update testdata/alloc_budget.json in the same commit.
func TestAllocBudgets(t *testing.T) {
	budgets := loadAllocBudgets(t)
	scenarios := []struct {
		name    string
		budget  string
		backend string // "" = insecure port, otherwise the memsec crypto backend
		body    func(p *sim.Proc, n *coherence.Node, op int)
	}{
		{"coherence_miss_fill", "coherence_miss_fill", "", missBody},
		// The memsec budget must hold under every registered crypto
		// backend: the pad kernel is the same hotpath either way.
		{"memsec_miss_fill_ref", "memsec_miss_fill", crypto.Ref, missBody},
		{"memsec_miss_fill_stdlib", "memsec_miss_fill", crypto.Stdlib, missBody},
		// Calendar-queue overflow tier: far-future sleeps and timers spill
		// into the heap and migrate back into the wheel on rotation. Once
		// the heap and bucket slices reach steady capacity nothing on this
		// route allocates, and the budget pins that at zero.
		{"calqueue_overflow", "calqueue_overflow", "", calqueueBody},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			want, ok := budgets[sc.budget]
			if !ok {
				t.Fatalf("no alloc budget recorded for %s", sc.budget)
			}
			rig := startAllocRig(sc.body, sc.backend)
			defer rig.stop(t)
			perOp := measureAllocsPerOp(t, rig, 2048, 256)
			if perOp > want {
				t.Errorf("%s allocates %.2f per op, budget %.2f — an off-hotpath route grew; "+
					"if deliberate, update testdata/alloc_budget.json in this commit",
					sc.name, perOp, want)
			}
		})
	}
}
