package senss

// Ablation benchmarks for the design choices DESIGN.md calls out: each
// isolates one mechanism and reports how much of the overhead (or saving)
// it is responsible for.

import (
	"testing"

	"senss/internal/core"
	"senss/internal/machine"
	"senss/internal/stats"
)

// BenchmarkAblation_BusOverhead isolates the +3-cycle per-message datapath
// cost (§7.1: 1 sender XOR + 2 receiver cycles) from the rest of SENSS.
func BenchmarkAblation_BusOverhead(b *testing.B) {
	for _, overhead := range []uint64{0, 3} {
		name := map[uint64]string{0: "without", 3: "with"}[overhead]
		b.Run(name, func(b *testing.B) {
			cfg := benchConfig(4, 64<<10)
			cfg.Security.Mode = SecurityBus
			cfg.Security.Senss.Perfect = true
			cfg.Security.Senss.AuthInterval = 100
			cfg.Security.Senss.BusOverhead = overhead
			var slow float64
			for i := 0; i < b.N; i++ {
				base, sec := comparePair(b, "radix", cfg)
				slow = stats.SlowdownPct(base, sec)
			}
			b.ReportMetric(slow, "slowdown_pct")
		})
	}
}

// BenchmarkAblation_AuthMode compares the paper's CBC chaining against the
// §4.3 GCM-style extension under mask scarcity: counter-mode masks never
// stall, so AuthGF with one bank should approach the perfect-mask CBC run.
func BenchmarkAblation_AuthMode(b *testing.B) {
	modes := []struct {
		name string
		mode core.AuthMode
	}{{"cbc1mask", core.AuthCBC}, {"gf1mask", core.AuthGF}}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			cfg := benchConfig(4, 64<<10)
			cfg.Security.Mode = SecurityBus
			cfg.Security.Senss.AuthMode = m.mode
			cfg.Security.Senss.Perfect = false
			cfg.Security.Senss.Masks = 1
			cfg.Security.Senss.AuthInterval = 100
			var slow, stalls float64
			for i := 0; i < b.N; i++ {
				base, sec := comparePair(b, "radix", cfg)
				slow = stats.SlowdownPct(base, sec)
				stalls = float64(sec.MaskStalls)
			}
			b.ReportMetric(slow, "slowdown_pct")
			b.ReportMetric(stalls, "mask_stall_cycles")
		})
	}
}

// BenchmarkAblation_PadCoherence compares §6.1's write-invalidate and
// write-update pad-coherence variants under a finite sequence-number cache.
func BenchmarkAblation_PadCoherence(b *testing.B) {
	for _, update := range []bool{false, true} {
		name := map[bool]string{false: "invalidate", true: "update"}[update]
		b.Run(name, func(b *testing.B) {
			cfg := benchConfig(4, 8<<10) // tiny L2: heavy writeback traffic
			cfg.Security.Mode = SecurityBusMem
			cfg.Security.Senss.Perfect = true
			cfg.Security.Senss.AuthInterval = 100
			cfg.Security.Memsec.PerfectSNC = false
			cfg.Security.Memsec.PadEntries = 256
			cfg.Security.Memsec.WriteUpdate = update
			var slow, misses float64
			for i := 0; i < b.N; i++ {
				base, sec := comparePair(b, "radix", cfg)
				slow = stats.SlowdownPct(base, sec)
				misses = float64(sec.PadMisses)
			}
			b.ReportMetric(slow, "slowdown_pct")
			b.ReportMetric(misses, "pad_misses")
		})
	}
}

// BenchmarkAblation_TreeWarm sweeps the hash-tree warm budget: how much of
// Figure 10's overhead is cold-tree fetching vs steady-state maintenance.
func BenchmarkAblation_TreeWarm(b *testing.B) {
	for _, warm := range []int{64, 2 << 10, 16 << 10} {
		b.Run(map[int]string{64: "cold", 2 << 10: "top2k", 16 << 10: "warm16k"}[warm],
			func(b *testing.B) {
				cfg := benchConfig(4, 64<<10)
				cfg.Security.Mode = SecurityBusMem
				cfg.Security.Integrity = true
				cfg.Security.Senss.Perfect = true
				cfg.Security.Senss.AuthInterval = 100
				cfg.Security.TreeWarmBytes = warm
				var slow, hashes float64
				for i := 0; i < b.N; i++ {
					base, sec := comparePair(b, "radix", cfg)
					slow = stats.SlowdownPct(base, sec)
					hashes = float64(sec.HashOps)
				}
				b.ReportMetric(slow, "slowdown_pct")
				b.ReportMetric(hashes, "hash_ops")
			})
	}
}

// BenchmarkAblation_NaiveBaseline quantifies why the paper dismisses the
// direct-encryption baseline (§7.3: "of less interest because of its
// performance penalty"): block-cipher latency on both ends of every
// cache-to-cache transfer vs SENSS's one-XOR critical path.
func BenchmarkAblation_NaiveBaseline(b *testing.B) {
	for _, naive := range []bool{false, true} {
		name := map[bool]string{false: "senss", true: "naive"}[naive]
		b.Run(name, func(b *testing.B) {
			cfg := benchConfig(4, 64<<10)
			cfg.Security.Mode = SecurityBus
			cfg.Security.Naive = naive
			cfg.Security.Senss.Perfect = true
			cfg.Security.Senss.AuthInterval = 100
			var slow float64
			for i := 0; i < b.N; i++ {
				base, sec := comparePair(b, "radix", cfg)
				slow = stats.SlowdownPct(base, sec)
			}
			b.ReportMetric(slow, "slowdown_pct")
		})
	}
}

// BenchmarkAblation_IntegrityMode compares eager CHash verification with
// the LHash-style lazy mode (paper §2.2: "significantly reduced to 5%
// compared to 25%"; §7.7: LHash "will also be very effective in SENSS").
func BenchmarkAblation_IntegrityMode(b *testing.B) {
	for _, lazy := range []bool{false, true} {
		name := map[bool]string{false: "chash", true: "lhash"}[lazy]
		b.Run(name, func(b *testing.B) {
			cfg := benchConfig(4, 16<<10)
			cfg.Security.Mode = SecurityBusMem
			cfg.Security.Integrity = true
			cfg.Security.Tree.Lazy = lazy
			cfg.Security.Senss.Perfect = true
			cfg.Security.Senss.AuthInterval = 100
			var slow float64
			for i := 0; i < b.N; i++ {
				base, sec := comparePair(b, "radix", cfg)
				slow = stats.SlowdownPct(base, sec)
			}
			b.ReportMetric(slow, "slowdown_pct")
		})
	}
}

// BenchmarkAblation_MaskStallsVsInterval cross-checks that mask scarcity
// and authentication frequency compose additively rather than interacting
// pathologically (the two overhead sources of §7.3).
func BenchmarkAblation_MaskStallsVsInterval(b *testing.B) {
	cases := []struct {
		name     string
		masks    int
		perfect  bool
		interval int
	}{
		{"masks8_int100", 8, false, 100},
		{"masks8_int1", 8, false, 1},
		{"masks1_int100", 1, false, 100},
		{"masks1_int1", 1, false, 1},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			cfg := benchConfig(4, 64<<10)
			cfg.Security.Mode = SecurityBus
			cfg.Security.Senss.Masks = c.masks
			cfg.Security.Senss.Perfect = c.perfect
			cfg.Security.Senss.AuthInterval = c.interval
			var slow float64
			for i := 0; i < b.N; i++ {
				base, sec := comparePair(b, "ocean", cfg)
				slow = stats.SlowdownPct(base, sec)
			}
			b.ReportMetric(slow, "slowdown_pct")
		})
	}
}

var _ = machine.DefaultConfig // keep the import when cases change
