package senss

import (
	"fmt"
	"strings"
	"testing"
)

func TestRunWorkloadBaseline(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Coherence.L1Size = 4 << 10
	cfg.Coherence.L2Size = 32 << 10
	run, err := RunWorkload("radix", SizeTest, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if run.Cycles == 0 || run.Workload != "radix" {
		t.Errorf("bad run record: %+v", run)
	}
}

func TestCompareProducesOverhead(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Coherence.L1Size = 4 << 10
	cfg.Coherence.L2Size = 32 << 10
	cfg.Security.Mode = SecurityBus
	cfg.Security.Senss.AuthInterval = 10
	base, sec, err := Compare("lockcontend", SizeTest, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sec.Cycles < base.Cycles {
		t.Errorf("secure faster than base: %d < %d", sec.Cycles, base.Cycles)
	}
	if sec.AuthMsgs == 0 {
		t.Error("no auth messages in secure run")
	}
	if s := SlowdownPct(base, sec); s < 0 {
		t.Errorf("negative slowdown %.2f%% without perturbation", s)
	}
	if tr := TrafficIncreasePct(base, sec); tr <= 0 {
		t.Errorf("no traffic increase: %.2f%%", tr)
	}
}

func TestRunWorkloadUnknownName(t *testing.T) {
	if _, err := RunWorkload("bogus", SizeTest, DefaultConfig()); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestHarnessFigureUnknown(t *testing.T) {
	h := NewHarness(SizeTest)
	if _, err := h.Figure(5); err == nil {
		t.Error("figure 5 is a config table, not an experiment")
	}
}

// TestFigure9Shape runs the smallest real figure sweep and checks the
// paper's qualitative shape: shorter authentication intervals cost more
// bus traffic, with interval 1 the maximum.
func TestFigure9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep in short mode")
	}
	h := NewHarness(SizeTest)
	h.Workloads = []string{"radix", "ocean"} // keep the test quick
	tables, err := h.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("want 2 tables, got %d", len(tables))
	}
	traffic := tables[1]
	avg := traffic.Rows[len(traffic.Rows)-1]
	var vals []float64
	for _, cell := range avg[1:] {
		var v float64
		if _, err := fmt.Sscanf(cell, "%f", &v); err != nil {
			t.Fatalf("parse %q: %v", cell, err)
		}
		vals = append(vals, v)
	}
	// interval 100 ≤ 32 ≤ 10 ≤ 1 in traffic increase.
	for i := 1; i < len(vals); i++ {
		if vals[i] < vals[i-1]-1e-9 {
			t.Errorf("traffic increase not monotone in auth frequency: %v", vals)
		}
	}
	if vals[len(vals)-1] <= vals[0] {
		t.Errorf("per-transfer auth (%v%%) should cost clearly more than interval 100 (%v%%)", vals[3], vals[0])
	}
	out := traffic.Render()
	if !strings.Contains(out, "Figure 9b") {
		t.Error("table title missing")
	}
}
