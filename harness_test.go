package senss

import (
	"strings"
	"testing"
)

// TestHarnessAllFigures exercises every figure generator with a reduced
// workload set, checking table structure (titles, row counts, averages).
func TestHarnessAllFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweeps in short mode")
	}
	h := NewHarness(SizeTest)
	h.Workloads = []string{"falseshare", "lockcontend"}

	cases := []struct {
		fig    int
		tables int
		title  string
	}{
		{6, 2, "Figure 6"},
		{7, 2, "Figure 7"},
		{8, 2, "Figure 8"},
		{9, 2, "Figure 9"},
		{10, 2, "Figure 10"},
		{11, 1, "Figure 11"},
	}
	for _, c := range cases {
		tables, err := h.Figure(c.fig)
		if err != nil {
			t.Fatalf("figure %d: %v", c.fig, err)
		}
		if len(tables) != c.tables {
			t.Fatalf("figure %d: %d tables, want %d", c.fig, len(tables), c.tables)
		}
		for _, tab := range tables {
			if !strings.Contains(tab.Title, c.title) {
				t.Errorf("figure %d: title %q", c.fig, tab.Title)
			}
			if len(tab.Rows) == 0 {
				t.Errorf("figure %d: empty table", c.fig)
			}
			out := tab.Render()
			if len(out) == 0 {
				t.Errorf("figure %d: empty render", c.fig)
			}
		}
		// Figures over the workload list carry an average row.
		if c.fig >= 6 && c.fig <= 10 {
			last := tables[0].Rows[len(tables[0].Rows)-1]
			if last[0] != "average" {
				t.Errorf("figure %d: last row %q, want average", c.fig, last[0])
			}
		}
	}
}

// TestHarnessDetectionLatency covers the E1 experiment with few seeds.
func TestHarnessDetectionLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("detection sweep in short mode")
	}
	h := NewHarness(SizeTest)
	tables, err := h.DetectionLatency(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 4 {
		t.Fatalf("unexpected table shape: %+v", tables)
	}
	for _, row := range tables[0].Rows {
		if !strings.HasSuffix(row[5], "/2") {
			t.Errorf("row %v: detection column malformed", row)
		}
		if row[5] != "2/2" {
			t.Errorf("interval %s: not all attacks detected (%s)", row[0], row[5])
		}
	}
}

// TestHarnessBaseCaching: the per-(workload, machine) baseline runs must
// be computed once and reused across variants.
func TestHarnessBaseCaching(t *testing.T) {
	h := NewHarness(SizeTest)
	h.Workloads = []string{"falseshare"}
	cfg := h.senssConfig(4, true)
	b1, _, err := h.pair("falseshare", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Security.Senss.AuthInterval = 1
	b2, _, err := h.pair("falseshare", cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if b1.Cycles != b2.Cycles {
		t.Error("baseline re-run differed — cache key broken")
	}
}
