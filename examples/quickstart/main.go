// Quickstart: run one SPLASH2 kernel on the simulated SMP with and
// without SENSS, and print the paper's two headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"senss"
)

func main() {
	// The paper's Figure 5 machine, scaled caches for the test-size
	// problem (see DESIGN.md §2 on proportional scaling).
	cfg := senss.DefaultConfig()
	cfg.Procs = 4
	cfg.Coherence.L1Size = 4 << 10
	cfg.Coherence.L2Size = 64 << 10

	// Highest security level: authenticate every 100 cache-to-cache
	// transfers with a full mask supply.
	cfg.Security.Mode = senss.SecurityBus
	cfg.Security.Senss.AuthInterval = 100
	cfg.Security.Senss.Perfect = true

	for _, name := range senss.PaperSuite() {
		base, secure, err := senss.Compare(name, senss.SizeTest, cfg)
		if err != nil {
			log.Fatalf("quickstart: %v", err)
		}
		fmt.Printf("%-8s base %10d cycles | senss %10d cycles | slowdown %6.3f%% | traffic +%6.3f%% | %d auth msgs\n",
			name, base.Cycles, secure.Cycles,
			senss.SlowdownPct(base, secure),
			senss.TrafficIncreasePct(base, secure),
			secure.AuthMsgs)
	}
	fmt.Println("\nEvery kernel's output is validated against a host-side reference;")
	fmt.Println("a wrong result or a false security alarm would have failed the run.")
}
