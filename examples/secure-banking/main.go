// Secure banking: a custom workload written directly against the machine
// API — the enterprise-server scenario the paper's introduction motivates
// (banking on an SMP whose OS and hardware may be tampered with).
//
// Four teller processors execute random transfers between 32 accounts
// under per-account spinlocks (lock ordering prevents deadlock), with the
// full protection stack: SENSS bus encryption + per-32-transfer
// authentication, OTP memory encryption, and CHash integrity. Memory
// holds only ciphertext; every bus transfer is masked and MAC-chained;
// and at the end the books must balance to the cent.
//
//	go run ./examples/secure-banking
package main

import (
	"fmt"
	"log"

	"senss"
	"senss/internal/cpu"
	"senss/internal/psync"
	"senss/internal/rng"
)

const (
	procs          = 4
	accounts       = 32
	transfers      = 150 // per teller
	initialBalance = 10_000
)

func main() {
	cfg := senss.DefaultConfig()
	cfg.Procs = procs
	cfg.Coherence.L1Size = 4 << 10
	cfg.Coherence.L2Size = 8 << 10
	cfg.Security.Mode = senss.SecurityBusMem
	cfg.Security.Integrity = true
	cfg.Security.Senss.AuthInterval = 32

	m := senss.NewMachine(cfg)

	// Shared ledger: one balance word and one lock per account, padded to
	// separate cache lines so contention is per-account.
	balanceBase := m.Alloc(accounts * 64)
	lockBase := m.Alloc(accounts * 64)
	balance := func(a int) uint64 { return balanceBase + uint64(a)*64 }
	locks := make([]*psync.Lock, accounts)
	for a := 0; a < accounts; a++ {
		m.InitWord(balance(a), initialBalance)
		locks[a] = psync.NewLock(lockBase + uint64(a)*64)
	}

	progs := make([]cpu.Program, procs)
	for tid := 0; tid < procs; tid++ {
		r := rng.New(uint64(100 + tid))
		progs[tid] = func(c *cpu.Port) {
			for k := 0; k < transfers; k++ {
				from := r.Intn(accounts)
				to := r.Intn(accounts - 1)
				if to >= from {
					to++
				}
				amount := uint64(1 + r.Intn(200))
				// Lock ordering by account index prevents deadlock.
				first, second := from, to
				if second < first {
					first, second = second, first
				}
				locks[first].Acquire(c)
				locks[second].Acquire(c)
				f := c.Load(balance(from))
				if f >= amount {
					c.Store(balance(from), f-amount)
					c.Store(balance(to), c.Load(balance(to))+amount)
				}
				locks[second].Release(c)
				locks[first].Release(c)
			}
		}
	}

	run, err := m.Run(progs)
	if err != nil {
		log.Fatal(err)
	}
	if halted, why := m.Halted(); halted {
		log.Fatalf("security alarm during clean run: %s", why)
	}

	var total uint64
	for a := 0; a < accounts; a++ {
		total += m.ReadWord(balance(a))
	}
	fmt.Printf("%d tellers × %d transfers across %d accounts\n", procs, transfers, accounts)
	fmt.Printf("final ledger total: %d (expected %d) — %s\n",
		total, accounts*initialBalance, verdict(total == accounts*initialBalance))
	fmt.Printf("simulated cycles:   %d\n", run.Cycles)
	fmt.Printf("bus transfers:      %d total, %d cache-to-cache (all masked+MAC-chained)\n",
		run.BusTotal, run.C2C)
	fmt.Printf("authentication:     %d MAC broadcasts\n", run.AuthMsgs)
	fmt.Printf("memory encryption:  %d pad msgs; integrity: %d hash ops\n", run.PadMsgs, run.HashOps)

	// Show that DRAM never sees a balance in the clear.
	raw := m.Store.ReadWord(balance(0))
	plain := m.ReadWord(balance(0))
	fmt.Printf("DRAM view of account 0: %#x (plaintext value: %d)\n", raw, plain)
}

func verdict(ok bool) string {
	if ok {
		return "books balance"
	}
	return "MONEY LEAKED"
}
