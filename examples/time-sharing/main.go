// Time-sharing with encrypted context swaps (paper §4.2): two
// applications alternate on the same processors. At every quantum the
// outgoing group is stopped at instruction boundaries, each SHU's session
// context (mask banks, chain state) is encrypted and authenticated under
// the session key, and the incoming group's contexts are restored — the
// OS schedules but only ever touches opaque blobs.
//
//	go run ./examples/time-sharing
package main

import (
	"fmt"
	"log"

	"senss"
	"senss/internal/cpu"
)

func main() {
	cfg := senss.DefaultConfig()
	cfg.Procs = 2
	cfg.Coherence.L1Size = 4 << 10
	cfg.Coherence.L2Size = 32 << 10
	cfg.Security.Mode = senss.SecurityBus
	cfg.Security.Senss.AuthInterval = 16

	m := senss.NewMachine(cfg)

	// Application A: a streaming producer/consumer pair.
	// Application B: per-processor checksum loops.
	appA, handoff := buildStream(m)
	appB, sums := buildChecksum(m)

	run, err := m.RunTimeShared(appA, appB, 15_000)
	if err != nil {
		log.Fatal(err)
	}
	if halted, why := m.Halted(); halted {
		log.Fatalf("alarm during time-sharing: %s", why)
	}

	fmt.Printf("context switches: %d (each: quiesce → encrypt contexts → restore → retag)\n", m.SwapCount)
	fmt.Printf("app A streamed:   %d items (checksum ok: %v)\n",
		m.ReadWord(handoff), m.ReadWord(handoff) == 400)
	fmt.Printf("app B checksums:  %d and %d\n", m.ReadWord(sums[0]), m.ReadWord(sums[1]))
	fmt.Printf("cycles: %d, bus txns: %d, auth broadcasts: %d\n",
		run.Cycles, run.BusTotal, run.AuthMsgs)
	fmt.Println("\nBoth groups' MAC chains survived every swap — a single corrupted")
	fmt.Println("context blob would have halted the machine at swap-in.")
}

// buildStream: proc 0 produces 400 items, proc 1 consumes and counts.
func buildStream(m *senss.Machine) ([]cpu.Program, uint64) {
	const items = 400
	slot := m.Alloc(64)
	ack := m.Alloc(64)
	count := m.Alloc(64)
	progs := make([]cpu.Program, 2)
	progs[0] = func(c *cpu.Port) {
		for i := uint64(1); i <= items; i++ {
			c.Store(slot, i)
			for c.Load(ack) != i {
				c.Think(15)
			}
		}
	}
	progs[1] = func(c *cpu.Port) {
		for i := uint64(1); i <= items; i++ {
			for c.Load(slot) != i {
				c.Think(15)
			}
			c.Store(count, c.Load(count)+1)
			c.Store(ack, i)
		}
	}
	return progs, count
}

// buildChecksum: each proc folds a private array into a checksum word.
func buildChecksum(m *senss.Machine) ([]cpu.Program, []uint64) {
	const words = 512
	progs := make([]cpu.Program, 2)
	sums := make([]uint64, 2)
	for tid := 0; tid < 2; tid++ {
		arr := m.Alloc(words * 8)
		sum := m.Alloc(64)
		sums[tid] = sum
		for i := uint64(0); i < words; i++ {
			m.InitWord(arr+i*8, i*(uint64(tid)+3))
		}
		progs[tid] = func(c *cpu.Port) {
			var acc uint64
			for i := uint64(0); i < words; i++ {
				acc += c.Load(arr + i*8)
			}
			c.Store(sum, acc)
		}
	}
	return progs, sums
}
