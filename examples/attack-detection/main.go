// Attack detection: drive the paper's §3 attacks against SENSS, at two
// levels.
//
// First, protocol level: every canned adversary (wiretap XOR leak, Type 1
// dropping, Type 2 reordering, Type 3 spoofing/replay) runs against the
// SHU protocol, including the two strawman schemes whose flaws the paper
// demonstrates.
//
// Second, system level: a dropping adversary is soldered onto the bus of
// a full simulated machine running the radix benchmark; the periodic MAC
// broadcast catches the divergence and freezes the machine.
//
//	go run ./examples/attack-detection
package main

import (
	"fmt"
	"log"

	"senss"
	"senss/internal/attack"
)

func main() {
	fmt.Println("── protocol-level scenarios ──────────────────────────────")
	for _, sc := range attack.Scenarios() {
		rep := sc.Run(7)
		status := "✔"
		if !rep.OK() {
			status = "✘"
		}
		fmt.Printf("%s %-26s %s\n", status, sc.Name, rep.Verdict())
	}

	fmt.Println("\n── full-machine attack: drop a broadcast mid-benchmark ──")
	cfg := senss.DefaultConfig()
	cfg.Procs = 4
	cfg.Coherence.L1Size = 4 << 10
	cfg.Coherence.L2Size = 64 << 10
	cfg.Security.Mode = senss.SecurityBus
	cfg.Security.Senss.AuthInterval = 32

	w, err := senss.NewWorkload("radix", senss.SizeTest)
	if err != nil {
		log.Fatal(err)
	}
	m := senss.NewMachine(cfg)
	progs := w.Setup(m, cfg.Procs)
	m.Load()
	m.SetTamperer(&attack.Dropper{Victims: []int{2}, FromSeq: 40})

	run, err := m.Run(progs)
	if err != nil {
		log.Fatal(err)
	}
	if run.Halted {
		fmt.Printf("machine frozen after %d cycles: %s\n", run.Cycles, run.HaltReason)
		fmt.Printf("(%d cache-to-cache transfers had been protected; %d auth broadcasts)\n",
			run.C2C, run.AuthMsgs)
	} else {
		fmt.Println("UNEXPECTED: attack not detected")
	}
}
