// Multi-tenant SMP: the paper's Figure 1 scenario. Two independent
// applications run on disjoint processor subsets of one machine, each
// under its own SENSS group — its own session key, mask chains, and MAC
// chain — with GIDs assigned by the (untrusted) OS but enforced by the
// per-processor security hardware units.
//
// The demo shows: both applications compute correctly under protection;
// their bus traffic is tagged with different GIDs; each SHU's
// group-processor bit matrix holds only its own group's row (a processor
// knows nothing about groups it does not belong to); and an attack on one
// group's traffic is caught by that group's authentication.
//
//	go run ./examples/multi-tenant
package main

import (
	"fmt"
	"log"

	"senss"
	"senss/internal/cpu"
	"senss/internal/psync"
)

func main() {
	cfg := senss.DefaultConfig()
	cfg.Procs = 4
	cfg.Coherence.L1Size = 4 << 10
	cfg.Coherence.L2Size = 32 << 10
	cfg.Security.Mode = senss.SecurityBus
	cfg.Security.Senss.AuthInterval = 32
	cfg.TraceLimit = 200_000

	m := senss.NewMachine(cfg)
	m.PlanGroup([]int{0, 1}) // tenant A: processors 0-1
	m.PlanGroup([]int{2, 3}) // tenant B: processors 2-3

	// Tenant A: a shared work queue drained by two workers.
	// Tenant B: an iterative reduction.
	appA, resultA := buildQueueApp(m)
	appB, resultB := buildReductionApp(m)

	run, err := m.Run([]cpu.Program{appA[0], appA[1], appB[0], appB[1]})
	if err != nil {
		log.Fatal(err)
	}
	if halted, why := m.Halted(); halted {
		log.Fatalf("unexpected alarm: %s", why)
	}

	gidA, gidB := m.Nodes[0].GID, m.Nodes[2].GID
	fmt.Printf("tenant A (procs 0-1, GID %d): drained %d items — %s\n",
		gidA, m.ReadWord(resultA), check(m.ReadWord(resultA) == 2*256))
	fmt.Printf("tenant B (procs 2-3, GID %d): reduction = %d — %s\n",
		gidB, m.ReadWord(resultB), check(m.ReadWord(resultB) == 512*513/2))
	fmt.Printf("total: %d cycles, %d bus transactions, %d MAC broadcasts\n",
		run.Cycles, run.BusTotal, run.AuthMsgs)

	// Traffic separation: count trace events per GID.
	perGID := map[int]int{}
	for _, e := range m.Trace.Events {
		perGID[e.GID]++
	}
	fmt.Printf("bus messages tagged GID %d: %d; GID %d: %d\n",
		gidA, perGID[gidA], gidB, perGID[gidB])

	// Isolation: processor 0's SHU has an all-zero matrix row for B.
	fmt.Printf("SHU isolation: proc0 sees group B members = %#x (must be 0); proc2 sees group A members = %#x (must be 0)\n",
		m.Senss.SHU(0).Members(gidB), m.Senss.SHU(2).Members(gidA))
}

func check(ok bool) string {
	if ok {
		return "correct"
	}
	return "WRONG"
}

// buildQueueApp: two workers pop 256 items each from a lock-protected
// shared queue and count them.
func buildQueueApp(m *senss.Machine) ([2]cpu.Program, uint64) {
	const items = 2 * 256
	lock := psync.NewLock(m.Alloc(64))
	head := m.Alloc(64)
	drained := m.Alloc(64)
	var progs [2]cpu.Program
	for i := range progs {
		progs[i] = func(c *cpu.Port) {
			for {
				var got bool
				lock.WithLock(c, func() {
					h := c.Load(head)
					if h < items {
						c.Store(head, h+1)
						got = true
					}
				})
				if !got {
					return
				}
				c.Think(50) // "process" the item
				c.RMW(drained, func(v uint64) uint64 { return v + 1 })
			}
		}
	}
	return progs, drained
}

// buildReductionApp: two threads sum halves of 1..512 and combine.
func buildReductionApp(m *senss.Machine) ([2]cpu.Program, uint64) {
	const n = 512
	data := m.Alloc(n * 8)
	for i := uint64(0); i < n; i++ {
		m.InitWord(data+i*8, i+1)
	}
	partial := m.Alloc(128)
	total := m.Alloc(64)
	barrier := psync.NewBarrier(m.Alloc(64), 2)
	var progs [2]cpu.Program
	for i := range progs {
		tid := i
		progs[i] = func(c *cpu.Port) {
			var ctx psync.Context
			var sum uint64
			for k := tid * n / 2; k < (tid+1)*n/2; k++ {
				sum += c.Load(data + uint64(k)*8)
			}
			c.Store(partial+uint64(tid)*64, sum)
			barrier.Wait(c, &ctx)
			if tid == 0 {
				c.Store(total, c.Load(partial)+c.Load(partial+64))
			}
		}
	}
	return progs, total
}
