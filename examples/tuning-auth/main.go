// Tuning the authentication interval: the paper's §4.3 design lets the
// system trade integrity-check latency against bus overhead without
// changing the algorithm (every transfer is still covered by the chained
// MAC). This example sweeps the interval on a lock-heavy workload — the
// kind of sharing a transaction-processing server generates — and prints
// the trade-off curve of Figure 9.
//
//	go run ./examples/tuning-auth
package main

import (
	"fmt"
	"log"

	"senss"
)

func main() {
	cfg := senss.DefaultConfig()
	cfg.Procs = 4
	cfg.Coherence.L1Size = 4 << 10
	cfg.Coherence.L2Size = 64 << 10
	cfg.Security.Mode = senss.SecurityBus
	cfg.Security.Senss.Perfect = true

	const name = "radix"
	baseCfg := cfg
	baseCfg.Security.Mode = senss.SecurityOff
	base, err := senss.RunWorkload(name, senss.SizeTest, baseCfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s, 4P: %d cycles unprotected, %d cache-to-cache transfers\n\n",
		name, base.Cycles, base.C2C)
	fmt.Printf("%-10s  %-12s  %-12s  %-10s  %s\n",
		"interval", "slowdown %", "traffic +%", "auth msgs", "detection latency bound")
	for _, interval := range []int{100, 32, 10, 1} {
		c := cfg
		c.Security.Senss.AuthInterval = interval
		sec, err := senss.RunWorkload(name, senss.SizeTest, c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d  %-12.3f  %-12.3f  %-10d  ≤ %d transfers\n",
			interval,
			senss.SlowdownPct(base, sec),
			senss.TrafficIncreasePct(base, sec),
			sec.AuthMsgs, interval)
	}
	fmt.Println("\nInterval 1 authenticates every transfer (maximum integrity); larger")
	fmt.Println("intervals batch the check without leaving any transfer unauthenticated —")
	fmt.Println("the chained MAC covers the whole history (paper §4.3).")
}
