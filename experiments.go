package senss

import (
	"fmt"

	"senss/internal/attack"
	"senss/internal/farm"
	"senss/internal/machine"
	"senss/internal/stats"
	"senss/internal/workload"
)

// This file is the figure-regeneration harness: one function per figure of
// the paper's evaluation (§7), each returning formatted tables with the
// same rows/series the paper reports. cmd/senss-tables prints them;
// bench_test.go wraps them as testing.B benchmarks. EXPERIMENTS.md records
// paper-vs-measured values.
//
// Problem and cache sizes are scaled together (DESIGN.md §2): the paper's
// "1 MB / 4 MB L2" points map to capacities proportionate to the scaled
// working sets, preserving which level the working set spills out of.
//
// Since the farm rewiring (DESIGN.md §10), every figure runs as a
// two-pass sweep over internal/farm: a collection pass enumerates each
// (workload, config) point without simulating, the farm executes the
// deduplicated job set across its worker pool (each unique configuration
// simulates exactly once per sweep — and once per cache lifetime when a
// disk cache is attached), and the assembly pass rebuilds the tables
// entirely from cache hits. Tables are therefore byte-identical for any
// worker count and any cache temperature.

// Harness runs experiment sweeps on a farm.
type Harness struct {
	Size      Size
	Workloads []string

	// Crypto, when non-empty, names the crypto.BlockCipher backend every
	// secured run of the sweep uses ("ref", "stdlib"). Baseline
	// (security-off) runs never carry a backend, so they stay shared
	// across backends in the cache. Empty means the default (reference)
	// backend.
	Crypto string

	farm *farm.Farm

	// collecting/pending implement the two-pass sweep protocol: while
	// collecting, run records jobs instead of simulating; figure is the
	// provenance tag stamped on the jobs of the sweep in flight.
	collecting bool
	pending    []farm.Job
	figure     string
}

// NewHarness creates a harness at the given problem scale over the
// paper's five benchmarks, on a memory-only farm with one worker per
// core.
func NewHarness(size Size) *Harness {
	return NewHarnessOn(size, farm.NewMem(0))
}

// NewHarnessOn runs the harness on an explicit farm, putting worker
// count, disk caching, and progress reporting under the caller's
// control (cmd/senss-tables and cmd/senss-farm).
func NewHarnessOn(size Size, f *farm.Farm) *Harness {
	return &Harness{
		Size:      size,
		Workloads: workload.PaperSuite(),
		farm:      f,
	}
}

// Farm exposes the harness's farm (cache statistics, worker count).
func (h *Harness) Farm() *farm.Farm { return h.farm }

// sizeName labels the problem scale in sweep names.
func (h *Harness) sizeName() string {
	if h.Size == SizeBench {
		return "bench"
	}
	return "test"
}

// run routes one simulation point through the farm: during the
// collection pass it records the job and returns a zero Run (the derived
// metrics of the discarded first-pass tables are all zero-safe); during
// assembly it is served from the farm's cache.
func (h *Harness) run(name string, cfg Config) (Run, error) {
	if h.Crypto != "" && cfg.Security.Mode != machine.SecurityOff {
		cfg.Security.Senss.Backend = h.Crypto
	}
	job := farm.Job{Workload: name, Size: h.Size, Config: cfg, Figure: h.figure}
	if h.collecting {
		h.pending = append(h.pending, job)
		return Run{}, nil
	}
	return h.farm.Get(job)
}

// baselineOf canonicalizes cfg into its insecure baseline: security off
// and every protection parameter reset to the defaults. Baseline runs
// are invariant to the protection parameters (machine.New gates all
// security machinery on Mode), so canonicalizing them gives every
// secured variant of one machine shape a single shared baseline job —
// Figures 6, 8, and 10 (and each mask/interval point of 7 and 9) reuse
// one baseline simulation instead of re-running it per security level.
func baselineOf(cfg Config) Config {
	base := cfg
	base.Security = machine.DefaultConfig().Security
	return base
}

// pair runs the canonical baseline and the secured variant.
func (h *Harness) pair(name string, cfg Config) (base, sec Run, err error) {
	base, err = h.run(name, baselineOf(cfg))
	if err != nil {
		return base, sec, err
	}
	sec, err = h.run(name, cfg)
	return base, sec, err
}

// collect performs the enumeration pass: fn runs with simulation
// disabled, and every point it routes through run/pair is recorded.
func (h *Harness) collect(tag string, fn func() ([]*Table, error)) []farm.Job {
	h.figure = tag
	h.collecting, h.pending = true, nil
	_, _ = fn() // first-pass tables and errors are discarded; no simulation happens
	h.collecting = false
	jobs := h.pending
	h.pending = nil
	return jobs
}

// sweep is the two-pass figure protocol: collect the job set, execute it
// as a named resumable sweep on the farm, then assemble the tables from
// cache hits.
func (h *Harness) sweep(tag string, fn func() ([]*Table, error)) ([]*Table, error) {
	jobs := h.collect(tag, fn)
	if _, _, err := h.farm.RunSweep(tag+"-"+h.sizeName(), jobs); err != nil {
		return nil, err
	}
	return fn()
}

// l2Bytes maps the paper's small (1 MB) and large (4 MB) L2 points to
// scaled capacities.
func (h *Harness) l2Bytes(big bool) int {
	if h.Size == SizeBench {
		if big {
			return 256 << 10
		}
		return 64 << 10
	}
	if big {
		return 64 << 10
	}
	return 16 << 10
}

// l2Label names an L2 point in the paper's terms.
func l2Label(big bool) string {
	if big {
		return "4M-class L2"
	}
	return "1M-class L2"
}

// baseConfig builds the machine configuration for an experiment point.
func (h *Harness) baseConfig(procs int, bigL2 bool) Config {
	cfg := machine.DefaultConfig()
	cfg.Procs = procs
	cfg.Coherence.L1Size = 4 << 10
	cfg.Coherence.L2Size = h.l2Bytes(bigL2)
	cfg.CPU.CodeBytes = 2 << 10
	return cfg
}

// senssConfig is the paper's bus-security-only setup: perfect mask supply,
// authentication every 100 cache-to-cache transfers.
func (h *Harness) senssConfig(procs int, bigL2 bool) Config {
	cfg := h.baseConfig(procs, bigL2)
	cfg.Security.Mode = machine.SecurityBus
	cfg.Security.Senss.Perfect = true
	cfg.Security.Senss.AuthInterval = 100
	return cfg
}

func pct(v float64) string { return fmt.Sprintf("%.3f", v) }

// Figure6 regenerates Figure 6: % slowdown of SENSS over the baseline for
// both L2 classes on 2 and 4 processors (authentication interval 100).
func (h *Harness) Figure6() ([]*Table, error) { return h.sweep("fig6", h.figure6) }

func (h *Harness) figure6() ([]*Table, error) {
	var tables []*Table
	for _, big := range []bool{false, true} {
		t := &Table{
			Title:   fmt.Sprintf("Figure 6 — %% slowdown, write-invalidate, %s", l2Label(big)),
			Columns: []string{"benchmark", "2P", "4P"},
		}
		sums := make([]float64, 2)
		for _, name := range h.Workloads {
			row := []string{name}
			for pi, procs := range []int{2, 4} {
				base, sec, err := h.pair(name, h.senssConfig(procs, big))
				if err != nil {
					return nil, err
				}
				s := stats.SlowdownPct(base, sec)
				sums[pi] += s
				row = append(row, pct(s))
			}
			t.Add(row...)
		}
		n := float64(len(h.Workloads))
		t.Add("average", pct(sums[0]/n), pct(sums[1]/n))
		tables = append(tables, t)
	}
	return tables, nil
}

// Figure7 regenerates Figure 7: % slowdown and % bus-activity increase as
// the mask supply shrinks (perfect, 4, 2, 1) on 4 processors, large L2.
func (h *Harness) Figure7() ([]*Table, error) { return h.sweep("fig7", h.figure7) }

func (h *Harness) figure7() ([]*Table, error) {
	type maskPoint struct {
		label   string
		masks   int
		perfect bool
	}
	points := []maskPoint{
		{"perfect", 8, true}, {"4 masks", 4, false},
		{"2 masks", 2, false}, {"1 mask", 1, false},
	}
	slow := &Table{
		Title:   "Figure 7a — % slowdown vs number of masks (4P, 4M-class L2)",
		Columns: []string{"benchmark", "perfect", "4 masks", "2 masks", "1 mask"},
	}
	traffic := &Table{
		Title:   "Figure 7b — % bus activity increase vs number of masks (4P, 4M-class L2)",
		Columns: []string{"benchmark", "perfect", "4 masks", "2 masks", "1 mask"},
	}
	sumsS := make([]float64, len(points))
	sumsT := make([]float64, len(points))
	for _, name := range h.Workloads {
		rowS := []string{name}
		rowT := []string{name}
		for i, pt := range points {
			cfg := h.senssConfig(4, true)
			cfg.Security.Senss.Masks = pt.masks
			cfg.Security.Senss.Perfect = pt.perfect
			base, sec, err := h.pair(name, cfg)
			if err != nil {
				return nil, err
			}
			s := stats.SlowdownPct(base, sec)
			tr := stats.TrafficIncreasePct(base, sec)
			sumsS[i] += s
			sumsT[i] += tr
			rowS = append(rowS, pct(s))
			rowT = append(rowT, pct(tr))
		}
		slow.Add(rowS...)
		traffic.Add(rowT...)
	}
	n := float64(len(h.Workloads))
	avgS := []string{"average"}
	avgT := []string{"average"}
	for i := range points {
		avgS = append(avgS, pct(sumsS[i]/n))
		avgT = append(avgT, pct(sumsT[i]/n))
	}
	slow.Add(avgS...)
	traffic.Add(avgT...)
	return []*Table{slow, traffic}, nil
}

// Figure8 regenerates Figure 8: % bus traffic increase for both L2 classes
// on 2 and 4 processors (authentication interval 100).
func (h *Harness) Figure8() ([]*Table, error) { return h.sweep("fig8", h.figure8) }

func (h *Harness) figure8() ([]*Table, error) {
	var tables []*Table
	for _, big := range []bool{false, true} {
		t := &Table{
			Title:   fmt.Sprintf("Figure 8 — %% bus activity increase, %s", l2Label(big)),
			Columns: []string{"benchmark", "2P", "4P"},
		}
		sums := make([]float64, 2)
		for _, name := range h.Workloads {
			row := []string{name}
			for pi, procs := range []int{2, 4} {
				base, sec, err := h.pair(name, h.senssConfig(procs, big))
				if err != nil {
					return nil, err
				}
				tr := stats.TrafficIncreasePct(base, sec)
				sums[pi] += tr
				row = append(row, pct(tr))
			}
			t.Add(row...)
		}
		n := float64(len(h.Workloads))
		t.Add("average", pct(sums[0]/n), pct(sums[1]/n))
		tables = append(tables, t)
	}
	return tables, nil
}

// Figure9 regenerates Figure 9: % slowdown and % bus traffic increase as
// the authentication interval shrinks (100, 32, 10, 1) on 4P, large L2.
func (h *Harness) Figure9() ([]*Table, error) { return h.sweep("fig9", h.figure9) }

func (h *Harness) figure9() ([]*Table, error) {
	intervals := []int{100, 32, 10, 1}
	slow := &Table{
		Title:   "Figure 9a — % slowdown vs authentication interval (4P, 4M-class L2)",
		Columns: []string{"benchmark", "100 txns", "32 txns", "10 txns", "1 txn"},
	}
	traffic := &Table{
		Title:   "Figure 9b — % bus activity increase vs authentication interval (4P, 4M-class L2)",
		Columns: []string{"benchmark", "100 txns", "32 txns", "10 txns", "1 txn"},
	}
	sumsS := make([]float64, len(intervals))
	sumsT := make([]float64, len(intervals))
	for _, name := range h.Workloads {
		rowS := []string{name}
		rowT := []string{name}
		for i, interval := range intervals {
			cfg := h.senssConfig(4, true)
			cfg.Security.Senss.AuthInterval = interval
			base, sec, err := h.pair(name, cfg)
			if err != nil {
				return nil, err
			}
			s := stats.SlowdownPct(base, sec)
			tr := stats.TrafficIncreasePct(base, sec)
			sumsS[i] += s
			sumsT[i] += tr
			rowS = append(rowS, pct(s))
			rowT = append(rowT, pct(tr))
		}
		slow.Add(rowS...)
		traffic.Add(rowT...)
	}
	n := float64(len(h.Workloads))
	avgS := []string{"average"}
	avgT := []string{"average"}
	for i := range intervals {
		avgS = append(avgS, pct(sumsS[i]/n))
		avgT = append(avgT, pct(sumsT[i]/n))
	}
	slow.Add(avgS...)
	traffic.Add(avgT...)
	return []*Table{slow, traffic}, nil
}

// Figure10 regenerates Figure 10: SENSS alone vs SENSS integrated with
// memory encryption (perfect SNC, as §7.7) and CHash integrity.
//
// The paper runs this on its 1 MB L2, which comfortably holds the SPLASH2
// working sets; at our scale that capacity ratio corresponds to the large
// L2 class (the small class would overstate hash-tree cache pollution far
// beyond the paper's regime).
func (h *Harness) Figure10() ([]*Table, error) { return h.sweep("fig10", h.figure10) }

func (h *Harness) figure10() ([]*Table, error) {
	slow := &Table{
		Title:   "Figure 10a — % slowdown, 1M-class L2 (4P)",
		Columns: []string{"benchmark", "SENSS", "SENSS+Mem_OTP_CHash"},
	}
	traffic := &Table{
		Title:   "Figure 10b — % bus activity increase, 1M-class L2 (4P)",
		Columns: []string{"benchmark", "SENSS", "SENSS+Mem_OTP_CHash"},
	}
	var sumS, sumSI, sumT, sumTI float64
	for _, name := range h.Workloads {
		busCfg := h.senssConfig(4, true)
		base, busRun, err := h.pair(name, busCfg)
		if err != nil {
			return nil, err
		}
		fullCfg := busCfg
		fullCfg.Security.Mode = machine.SecurityBusMem
		fullCfg.Security.Integrity = true
		fullCfg.Security.Memsec.PerfectSNC = true
		_, fullRun, err := h.pair(name, fullCfg)
		if err != nil {
			return nil, err
		}
		s := stats.SlowdownPct(base, busRun)
		si := stats.SlowdownPct(base, fullRun)
		tr := stats.TrafficIncreasePct(base, busRun)
		tri := stats.TrafficIncreasePct(base, fullRun)
		sumS += s
		sumSI += si
		sumT += tr
		sumTI += tri
		slow.Add(name, pct(s), pct(si))
		traffic.Add(name, pct(tr), pct(tri))
	}
	n := float64(len(h.Workloads))
	slow.Add("average", pct(sumS/n), pct(sumSI/n))
	traffic.Add("average", pct(sumT/n), pct(sumTI/n))
	return []*Table{slow, traffic}, nil
}

// Figure11 regenerates the §7.8 variability study: identical runs of the
// false-sharing microbenchmark under small deterministic bus-timing
// perturbations. The spread — including secure runs that beat the base —
// is the paper's point about full-system simulation noise.
func (h *Harness) Figure11(seeds int) ([]*Table, error) {
	return h.sweep("fig11", func() ([]*Table, error) { return h.figure11(seeds) })
}

func (h *Harness) figure11(seeds int) ([]*Table, error) {
	t := &Table{
		Title:   "Figure 11 / §7.8 — timing variability under ±3-cycle bus perturbation (falseshare, 4P)",
		Columns: []string{"perturb seed", "base cycles", "senss cycles", "slowdown %"},
	}
	faster := 0
	for seed := 0; seed < seeds; seed++ {
		baseCfg := h.baseConfig(4, true)
		baseCfg.PerturbMax = 3
		baseCfg.PerturbSeed = uint64(seed + 1)
		base, err := h.run("falseshare", baseCfg)
		if err != nil {
			return nil, err
		}
		secCfg := baseCfg
		secCfg.Security.Mode = machine.SecurityBus
		secCfg.Security.Senss.Perfect = true
		secCfg.Security.Senss.AuthInterval = 100
		sec, err := h.run("falseshare", secCfg)
		if err != nil {
			return nil, err
		}
		s := stats.SlowdownPct(base, sec)
		if s < 0 {
			faster++
		}
		t.Add(fmt.Sprintf("%d", seed+1),
			fmt.Sprintf("%d", base.Cycles), fmt.Sprintf("%d", sec.Cycles), pct(s))
	}
	t.Add("secure<base", fmt.Sprintf("%d of %d seeds", faster, seeds), "", "")
	return []*Table{t}, nil
}

// DetectionLatency is an extension experiment (E1 in DESIGN.md): for each
// authentication interval, inject one message drop at a pseudo-random
// point of a radix run (per seed) and measure how many protected transfers
// pass between the attack and the global alarm. The paper's guarantee is
// latency ≤ interval; the table shows the measured distribution.
//
// Attack injection needs a hand-assembled machine with a tamperer
// attached, so this experiment does not route through the farm.
func (h *Harness) DetectionLatency(seeds int) ([]*Table, error) {
	t := &Table{
		Title:   "Extension E1 — Type 1 attack detection latency (protected transfers until alarm)",
		Columns: []string{"auth interval", "min", "mean", "max", "bound", "detected"},
	}
	for _, interval := range []int{1, 10, 32, 100} {
		var lats []uint64
		detected := 0
		for seed := 0; seed < seeds; seed++ {
			lat, ok, err := h.injectDrop(interval, uint64(seed))
			if err != nil {
				return nil, err
			}
			if ok {
				detected++
				lats = append(lats, lat)
			}
		}
		var mn, mx, sum uint64
		for i, l := range lats {
			if i == 0 || l < mn {
				mn = l
			}
			if l > mx {
				mx = l
			}
			sum += l
		}
		mean := "-"
		if len(lats) > 0 {
			mean = fmt.Sprintf("%.1f", float64(sum)/float64(len(lats)))
		}
		t.Add(fmt.Sprintf("%d", interval),
			fmt.Sprintf("%d", mn), mean, fmt.Sprintf("%d", mx),
			fmt.Sprintf("≤ %d", interval),
			fmt.Sprintf("%d/%d", detected, seeds))
	}
	return []*Table{t}, nil
}

// injectDrop runs radix under SENSS with one dropped broadcast and returns
// the detection latency in protected transfers.
func (h *Harness) injectDrop(interval int, seed uint64) (latency uint64, detected bool, err error) {
	cfg := h.senssConfig(4, true)
	cfg.Security.Senss.AuthInterval = interval
	cfg.Seed = 1 // fixed machine; the attack point varies by seed
	w, err := workload.New("radix", h.Size)
	if err != nil {
		return 0, false, err
	}
	m := machine.New(cfg)
	progs := w.Setup(m, cfg.Procs)
	m.Load()
	drop := &attack.Dropper{
		Victims:   []int{1 + int(seed)%3},
		FromSeq:   50 + 37*seed, // pseudo-random strike point
		LandedSeq: -1,
	}
	m.SetTamperer(drop)
	run, err := m.Run(progs)
	if err != nil {
		return 0, false, err
	}
	if !run.Halted || drop.LandedSeq < 0 {
		return 0, false, nil
	}
	msgs := m.Senss.Stats.Messages
	return msgs - uint64(drop.LandedSeq) - 1, true, nil
}

// Scalability is an extension experiment (E2): the paper evaluates 2-4
// processors and observes that SENSS overhead grows with the
// cache-to-cache share; its architecture targets up to 32. This sweep
// extends the Figure 6 measurement to 8 and 16 processors.
func (h *Harness) Scalability() ([]*Table, error) { return h.sweep("scaleE2", h.scalability) }

func (h *Harness) scalability() ([]*Table, error) {
	procsList := []int{2, 4, 8, 16}
	slow := &Table{
		Title:   "Extension E2 — % slowdown vs processor count (SENSS, interval 100, 4M-class L2)",
		Columns: []string{"benchmark", "2P", "4P", "8P", "16P"},
	}
	share := &Table{
		Title:   "Extension E2 — cache-to-cache share of bus transactions (baseline)",
		Columns: []string{"benchmark", "2P", "4P", "8P", "16P"},
	}
	sums := make([]float64, len(procsList))
	for _, name := range h.Workloads {
		rowS := []string{name}
		rowC := []string{name}
		for i, procs := range procsList {
			base, sec, err := h.pair(name, h.senssConfig(procs, true))
			if err != nil {
				return nil, err
			}
			s := stats.SlowdownPct(base, sec)
			sums[i] += s
			rowS = append(rowS, pct(s))
			rowC = append(rowC, fmt.Sprintf("%.1f%%", base.C2CShare()*100))
		}
		slow.Add(rowS...)
		share.Add(rowC...)
	}
	avg := []string{"average"}
	for i := range procsList {
		avg = append(avg, pct(sums[i]/float64(len(h.Workloads))))
	}
	slow.Add(avg...)
	return []*Table{slow, share}, nil
}

// figureFn maps a figure number to its table generator and sweep tag.
func (h *Harness) figureFn(n int) (fn func() ([]*Table, error), tag string, err error) {
	switch n {
	case 6:
		return h.figure6, "fig6", nil
	case 7:
		return h.figure7, "fig7", nil
	case 8:
		return h.figure8, "fig8", nil
	case 9:
		return h.figure9, "fig9", nil
	case 10:
		return h.figure10, "fig10", nil
	case 11:
		return func() ([]*Table, error) { return h.figure11(8) }, "fig11", nil
	}
	return nil, "", fmt.Errorf("senss: no experiment for figure %d (6-11 available)", n)
}

// Figure returns the tables for a figure number (6-11).
func (h *Harness) Figure(n int) ([]*Table, error) {
	fn, tag, err := h.figureFn(n)
	if err != nil {
		return nil, err
	}
	return h.sweep(tag, fn)
}

// FigureJobs enumerates the deduplicated job set of a figure's sweep
// without simulating anything — the farm CLI's warm/status planning
// input.
func (h *Harness) FigureJobs(n int) ([]farm.Job, error) {
	fn, tag, err := h.figureFn(n)
	if err != nil {
		return nil, err
	}
	jobs := h.collect(tag, fn)
	unique, _ := farm.Dedupe(jobs)
	return unique, nil
}

// SweepTag returns the manifest sweep name a figure runs under.
func (h *Harness) SweepTag(n int) (string, error) {
	_, tag, err := h.figureFn(n)
	if err != nil {
		return "", err
	}
	return tag + "-" + h.sizeName(), nil
}
