package senss

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"senss/internal/crypto"
	"senss/internal/driver"
	"senss/internal/machine"
	"senss/internal/stats"
)

// goldenCyclesFile pins the complete measurement table — total cycles,
// retired-op counts, and every stat the simulator reports — for all five
// SPLASH2 kernels plus the false-sharing micro, under the unprotected
// baseline and under both secured modes with both crypto backends. It is
// the conformance contract for engine rewrites: any scheduler, cache, or
// bus optimization must reproduce these tables byte-for-byte.
const goldenCyclesFile = "testdata/golden_cycles.json"

// goldenWorkloads is the conformance surface: the paper's five SPLASH2
// kernels plus the false-sharing micro-benchmark.
var goldenWorkloads = []string{"fft", "radix", "barnes", "lu", "ocean", "falseshare"}

// goldenVariants crosses both secured modes with both crypto backends,
// plus the unprotected baseline (backend-independent, recorded once).
var goldenVariants = []struct {
	label   string
	mode    machine.SecurityMode
	backend string
}{
	{"base", machine.SecurityOff, ""},
	{"senss/ref", machine.SecurityBus, crypto.Ref},
	{"senss/stdlib", machine.SecurityBus, crypto.Stdlib},
	{"senss+mem/ref", machine.SecurityBusMem, crypto.Ref},
	{"senss+mem/stdlib", machine.SecurityBusMem, crypto.Stdlib},
}

// goldenConfig is the canonical conformance geometry: the same scaled-down
// machine as TestGoldenCycleCounts and the oracle sweep, with the lockstep
// differential oracle attached so every recorded run is also oracle-clean.
func goldenConfig(mode machine.SecurityMode, backend string) Config {
	cfg := DefaultConfig()
	cfg.Procs = 4
	cfg.Coherence.L1Size = 4 << 10
	cfg.Coherence.L2Size = 64 << 10
	cfg.CPU.CodeBytes = 2 << 10
	cfg.Security.Mode = mode
	cfg.Security.Senss.Backend = backend
	cfg.Security.Senss.Perfect = true
	cfg.Security.Senss.AuthInterval = 100
	if mode == machine.SecurityBusMem {
		cfg.Security.Integrity = true
	}
	cfg.Oracle = true
	return cfg
}

// goldenKey names one record in the golden table.
func goldenKey(workload, variant string) string { return workload + "/" + variant }

// runGolden executes one conformance cell and asserts the run-level
// invariants that make the recorded table trustworthy: no simulation
// error, no security halt, workload-validated, and oracle-clean.
func runGolden(t *testing.T, name string, cfg Config) stats.Run {
	t.Helper()
	run, err := RunWorkload(name, SizeTest, cfg)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if run.Halted {
		t.Fatalf("%s: halted: %s", name, run.HaltReason)
	}
	return run
}

// TestGoldenConformance byte-compares the full stats table of every
// workload × variant cell against testdata/golden_cycles.json. Regenerate
// with SENSS_UPDATE_GOLDEN=1 go test -run TestGoldenConformance — but only
// when the timing model changed on purpose; document why in EXPERIMENTS.md.
func TestGoldenConformance(t *testing.T) {
	update := os.Getenv("SENSS_UPDATE_GOLDEN") != ""

	got := make(map[string]stats.Run, len(goldenWorkloads)*len(goldenVariants))
	for _, name := range goldenWorkloads {
		for _, v := range goldenVariants {
			run := runGolden(t, name, goldenConfig(v.mode, v.backend))
			if v.mode != machine.SecurityOff && run.AuthMsgs == 0 {
				t.Errorf("%s/%s: secured run reports no authentication traffic", name, v.label)
			}
			if run.Loads == 0 || run.Stores == 0 {
				t.Errorf("%s/%s: implausible retired-op counts: loads=%d stores=%d",
					name, v.label, run.Loads, run.Stores)
			}
			got[goldenKey(name, v.label)] = run
		}
	}

	if update {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, '\n')
		if err := os.MkdirAll(filepath.Dir(goldenCyclesFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenCyclesFile, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("recorded %d golden runs to %s", len(got), goldenCyclesFile)
		return
	}

	raw, err := os.ReadFile(goldenCyclesFile)
	if err != nil {
		t.Fatalf("missing golden table (generate with SENSS_UPDATE_GOLDEN=1): %v", err)
	}
	var want map[string]json.RawMessage
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("corrupt %s: %v", goldenCyclesFile, err)
	}

	keys := make([]string, 0, len(got))
	for k := range got {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		wantRaw, ok := want[k]
		if !ok {
			t.Errorf("%s: missing from golden table — regenerate it", k)
			continue
		}
		gotJSON, err := json.Marshal(got[k])
		if err != nil {
			t.Fatal(err)
		}
		var compact bytes.Buffer
		if err := json.Compact(&compact, wantRaw); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotJSON, compact.Bytes()) {
			t.Errorf("%s: stats table diverged from golden record\n got: %s\nwant: %s",
				k, gotJSON, compact.Bytes())
		}
	}
	for k := range want {
		if _, ok := got[k]; !ok {
			t.Errorf("%s: stale golden record with no matching run", k)
		}
	}
	if len(keys) != len(goldenWorkloads)*len(goldenVariants) {
		t.Errorf("conformance surface shrank: %d cells, want %d",
			len(keys), len(goldenWorkloads)*len(goldenVariants))
	}
	// Spot-check the two backends agree cycle-for-cycle: the crypto
	// backend changes host speed, never simulated timing.
	for _, name := range goldenWorkloads {
		for _, mode := range []string{"senss", "senss+mem"} {
			ref := got[goldenKey(name, mode+"/ref")]
			std := got[goldenKey(name, mode+"/stdlib")]
			if ref.Cycles != std.Cycles {
				t.Errorf("%s/%s: backend changed simulated timing: ref=%d stdlib=%d cycles",
					name, mode, ref.Cycles, std.Cycles)
			}
		}
	}
}

// TestGoldenConformanceOracleClean re-runs one secured cell per backend and
// asserts the differential oracle saw traffic and stayed clean; RunWorkload
// would have surfaced a divergence halt, this pins the plumbing.
func TestGoldenConformanceOracleClean(t *testing.T) {
	for _, backend := range []string{crypto.Ref, crypto.Stdlib} {
		cfg := goldenConfig(machine.SecurityBus, backend)
		s, err := driver.NewSession("falseshare", SizeTest, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(context.Background(), 0); err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if rep := s.OracleReport(); rep != nil {
			t.Fatalf("%s: oracle diverged: %+v", backend, rep)
		}
		s.Close()
	}
}
