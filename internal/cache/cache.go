// Package cache provides the set-associative cache arrays used for the L1
// instruction/data caches, the unified L2, and the memsec pad cache.
//
// The package is purely structural: state machines (MESI, pad validity)
// live in the layers that own a cache; here we keep tags, LRU order, data
// payloads, and hit/miss accounting.
package cache

import "fmt"

// State is a coherence state. L1 and pad caches only use Invalid and
// Shared (present); the L2 uses the full MOESI set — the write-invalidate
// protocol of the Sun Gigaplane-class machines the paper models, where a
// dirty line can be supplied cache-to-cache (the Owned state) without an
// inline memory update.
type State uint8

// MOESI states.
const (
	Invalid State = iota
	Shared
	Exclusive
	Owned
	Modified
)

// String renders the state as its MOESI letter.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Owned:
		return "O"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Dirty reports whether the state obliges a writeback on eviction.
//
//senss-lint:hotpath
func (s State) Dirty() bool { return s == Modified || s == Owned }

// Valid reports whether the state holds a usable copy.
//
//senss-lint:hotpath
func (s State) Valid() bool { return s != Invalid }

// Line is one cache line frame.
type Line struct {
	Tag   uint64 // line address / (lineSize*sets); valid only when State != Invalid
	State State
	Data  []byte // nil for tag-only caches (L1, pad cache)
	lru   uint64
}

// Cache is a set-associative array.
type Cache struct {
	sets     int
	ways     int
	lineSize int
	withData bool
	frames   [][]Line
	tick     uint64

	// Statistics.
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// New builds a cache of size bytes with the given associativity and line
// size. withData controls whether lines carry payload buffers.
func New(size, ways, lineSize int, withData bool) *Cache {
	if size <= 0 || ways <= 0 || lineSize <= 0 {
		panic("cache: non-positive geometry")
	}
	lines := size / lineSize
	sets := lines / ways
	if sets == 0 {
		sets = 1
		ways = lines
		if ways == 0 {
			ways = 1
		}
	}
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two (size=%d ways=%d line=%d)",
			sets, size, ways, lineSize))
	}
	c := &Cache{sets: sets, ways: ways, lineSize: lineSize, withData: withData}
	c.frames = make([][]Line, sets)
	backing := make([]Line, sets*ways)
	for i := range c.frames {
		c.frames[i] = backing[i*ways : (i+1)*ways]
	}
	return c
}

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() int { return c.lineSize }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// LineAddr returns the line-aligned address containing addr.
//
//senss-lint:hotpath
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr &^ (uint64(c.lineSize) - 1)
}

//senss-lint:hotpath
func (c *Cache) index(addr uint64) (set int, tag uint64) {
	la := addr / uint64(c.lineSize)
	return int(la % uint64(c.sets)), la / uint64(c.sets)
}

// AddrOf reconstructs the line address of a frame in a given set.
//
//senss-lint:hotpath
func (c *Cache) AddrOf(set int, l *Line) uint64 {
	return (l.Tag*uint64(c.sets) + uint64(set)) * uint64(c.lineSize)
}

// Lookup returns the valid line containing addr and bumps its LRU age, or
// nil on miss. Hit/miss counters are updated.
//
//senss-lint:hotpath
func (c *Cache) Lookup(addr uint64) *Line {
	set, tag := c.index(addr)
	for i := range c.frames[set] {
		l := &c.frames[set][i]
		if l.State.Valid() && l.Tag == tag {
			c.tick++
			l.lru = c.tick
			c.Hits++
			return l
		}
	}
	c.Misses++
	return nil
}

// Peek returns the valid line containing addr without touching LRU or
// counters, or nil.
//
//senss-lint:hotpath
func (c *Cache) Peek(addr uint64) *Line {
	set, tag := c.index(addr)
	for i := range c.frames[set] {
		l := &c.frames[set][i]
		if l.State.Valid() && l.Tag == tag {
			return l
		}
	}
	return nil
}

// Victim describes a line displaced by Insert.
type Victim struct {
	Addr  uint64
	State State
	Data  []byte // copy of the victim payload (nil for tag-only caches)
}

// Insert allocates a frame for addr in the given state and returns the
// displaced victim, if any. The returned line's Data is zeroed (caller
// fills it). Inserting an address that is already present reuses its frame.
//
// Insert allocates a fresh Victim per eviction; steady-state callers use
// InsertVictim with a reusable record instead.
func (c *Cache) Insert(addr uint64, state State) (*Line, *Victim) {
	var v Victim
	l, evicted := c.InsertVictim(addr, state, &v)
	if !evicted {
		return l, nil
	}
	return l, &v
}

// InsertVictim is Insert writing any displaced line into the caller-owned
// victim record, whose Data buffer is reused across evictions — the
// allocation-free form for the coherence hot path. It reports whether a
// line was displaced; when it returns false, victim is untouched.
//
//senss-lint:hotpath
func (c *Cache) InsertVictim(addr uint64, state State, victim *Victim) (*Line, bool) {
	set, tag := c.index(addr)
	frames := c.frames[set]

	// Reuse an existing frame for this tag.
	for i := range frames {
		l := &frames[i]
		if l.State.Valid() && l.Tag == tag {
			l.State = state
			c.tick++
			l.lru = c.tick
			return l, false
		}
	}
	// Prefer an invalid frame.
	var slot *Line
	for i := range frames {
		if !frames[i].State.Valid() {
			slot = &frames[i]
			break
		}
	}
	evicted := false
	if slot == nil {
		// Evict the LRU frame.
		slot = &frames[0]
		for i := range frames {
			if frames[i].lru < slot.lru {
				slot = &frames[i]
			}
		}
		victim.Addr = c.AddrOf(set, slot)
		victim.State = slot.State
		if c.withData {
			if len(victim.Data) != c.lineSize {
				//senss-lint:ignore hotpath first-touch growth: the victim record's payload buffer reaches line size once and is reused
				victim.Data = make([]byte, c.lineSize)
			}
			copy(victim.Data, slot.Data)
		} else {
			victim.Data = nil
		}
		c.Evictions++
		evicted = true
	}
	slot.Tag = tag
	slot.State = state
	if c.withData {
		if slot.Data == nil {
			//senss-lint:ignore hotpath first-touch growth: each frame's payload is allocated once and reused
			slot.Data = make([]byte, c.lineSize)
		} else {
			for i := range slot.Data {
				slot.Data[i] = 0
			}
		}
	}
	c.tick++
	slot.lru = c.tick
	return slot, evicted
}

// Drop invalidates addr's line if present and returns its prior state,
// without copying the payload — the snoop-side form for protocols where
// the writer is guaranteed to hold current data, so the victim's bytes
// are dead. Use Invalidate when the caller needs the data for dirty
// handling.
//
//senss-lint:hotpath
func (c *Cache) Drop(addr uint64) State {
	set, tag := c.index(addr)
	for i := range c.frames[set] {
		l := &c.frames[set][i]
		if l.State.Valid() && l.Tag == tag {
			st := l.State
			l.State = Invalid
			return st
		}
	}
	return Invalid
}

// Invalidate drops addr's line if present, returning its prior state and
// a copy of its data (for dirty handling by the caller).
func (c *Cache) Invalidate(addr uint64) (State, []byte) {
	set, tag := c.index(addr)
	for i := range c.frames[set] {
		l := &c.frames[set][i]
		if l.State.Valid() && l.Tag == tag {
			st := l.State
			var data []byte
			if c.withData {
				data = append([]byte(nil), l.Data...)
			}
			l.State = Invalid
			return st, data
		}
	}
	return Invalid, nil
}

// ForEach visits every valid line with its address.
func (c *Cache) ForEach(fn func(addr uint64, l *Line)) {
	for set := range c.frames {
		for i := range c.frames[set] {
			l := &c.frames[set][i]
			if l.State.Valid() {
				fn(c.AddrOf(set, l), l)
			}
		}
	}
}

// Flush invalidates every line. Dirty data is discarded; callers needing
// writebacks should ForEach first.
func (c *Cache) Flush() {
	for set := range c.frames {
		for i := range c.frames[set] {
			c.frames[set][i].State = Invalid
		}
	}
}
