package cache

import (
	"testing"

	"senss/internal/rng"
)

// refModel is an oracle for cache behavior: a map plus explicit LRU list
// per set, evolved alongside the real cache under random operations.
type refModel struct {
	sets     int
	ways     int
	lineSize int
	// per set: ordered slice of line addresses, most recent last
	order map[int][]uint64
	state map[uint64]State
}

func newRefModel(c *Cache) *refModel {
	return &refModel{
		sets: c.Sets(), ways: c.Ways(), lineSize: c.LineSize(),
		order: make(map[int][]uint64),
		state: make(map[uint64]State),
	}
}

func (r *refModel) setOf(addr uint64) int {
	return int(addr / uint64(r.lineSize) % uint64(r.sets))
}

func (r *refModel) touch(set int, addr uint64) {
	lst := r.order[set]
	for i, a := range lst {
		if a == addr {
			lst = append(append(lst[:i:i], lst[i+1:]...), addr)
			r.order[set] = lst
			return
		}
	}
	r.order[set] = append(lst, addr)
}

func (r *refModel) lookup(addr uint64) (State, bool) {
	st, ok := r.state[addr]
	if ok {
		r.touch(r.setOf(addr), addr)
	}
	return st, ok
}

func (r *refModel) insert(addr uint64, st State) (victim uint64, evicted bool) {
	set := r.setOf(addr)
	if _, ok := r.state[addr]; ok {
		r.state[addr] = st
		r.touch(set, addr)
		return 0, false
	}
	if len(r.order[set]) >= r.ways {
		victim = r.order[set][0]
		r.order[set] = r.order[set][1:]
		delete(r.state, victim)
		evicted = true
	}
	r.state[addr] = st
	r.touch(set, addr)
	return victim, evicted
}

func (r *refModel) invalidate(addr uint64) {
	set := r.setOf(addr)
	for i, a := range r.order[set] {
		if a == addr {
			r.order[set] = append(r.order[set][:i:i], r.order[set][i+1:]...)
			break
		}
	}
	delete(r.state, addr)
}

// TestAgainstReferenceModel drives 20k random lookups/inserts/invalidates
// and requires the real cache to agree with the oracle on every hit, every
// state, and every eviction decision.
func TestAgainstReferenceModel(t *testing.T) {
	c := New(2048, 4, 64, false) // 8 sets × 4 ways
	ref := newRefModel(c)
	r := rng.New(777)
	states := []State{Shared, Exclusive, Owned, Modified}

	for op := 0; op < 20000; op++ {
		addr := uint64(r.Intn(64)) * 64 // 64 lines over 8 sets: heavy conflict
		switch r.Intn(3) {
		case 0: // lookup
			want, wantOK := ref.lookup(addr)
			got := c.Lookup(addr)
			if (got != nil) != wantOK {
				t.Fatalf("op %d: lookup(%#x) hit=%v, oracle %v", op, addr, got != nil, wantOK)
			}
			if got != nil && got.State != want {
				t.Fatalf("op %d: lookup(%#x) state %v, oracle %v", op, addr, got.State, want)
			}
		case 1: // insert
			st := states[r.Intn(len(states))]
			wantVictim, wantEvicted := ref.insert(addr, st)
			_, victim := c.Insert(addr, st)
			if (victim != nil) != wantEvicted {
				t.Fatalf("op %d: insert(%#x) evicted=%v, oracle %v", op, addr, victim != nil, wantEvicted)
			}
			if victim != nil && victim.Addr != wantVictim {
				t.Fatalf("op %d: insert(%#x) victim %#x, oracle %#x", op, addr, victim.Addr, wantVictim)
			}
		default: // invalidate
			ref.invalidate(addr)
			c.Invalidate(addr)
		}
	}

	// Final state must agree entirely.
	count := 0
	c.ForEach(func(addr uint64, l *Line) {
		count++
		if st, ok := ref.state[addr]; !ok || st != l.State {
			t.Errorf("final: cache holds %#x in %v, oracle %v (present=%v)", addr, l.State, st, ok)
		}
	})
	if count != len(ref.state) {
		t.Errorf("final: cache holds %d lines, oracle %d", count, len(ref.state))
	}
}
