package cache

import (
	"testing"
	"testing/quick"

	"senss/internal/rng"
)

func TestStateStrings(t *testing.T) {
	cases := map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Owned: "O", Modified: "M"}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
	if State(99).String() == "" {
		t.Error("unknown state should still render")
	}
}

func TestDirtyStates(t *testing.T) {
	if !Modified.Dirty() || !Owned.Dirty() {
		t.Error("M and O must be dirty")
	}
	if Invalid.Dirty() || Shared.Dirty() || Exclusive.Dirty() {
		t.Error("I, S, E must be clean")
	}
}

func TestLookupHitMiss(t *testing.T) {
	c := New(1024, 4, 64, true)
	if c.Lookup(0x100) != nil {
		t.Fatal("hit in empty cache")
	}
	c.Insert(0x100, Shared)
	l := c.Lookup(0x100)
	if l == nil || l.State != Shared {
		t.Fatal("miss after insert")
	}
	if c.Lookup(0x140) != nil { // adjacent line
		t.Fatal("wrong line matched")
	}
	if c.Hits != 1 || c.Misses != 2 {
		t.Errorf("hits/misses = %d/%d, want 1/2", c.Hits, c.Misses)
	}
}

func TestSameLineDifferentOffsets(t *testing.T) {
	c := New(1024, 4, 64, true)
	c.Insert(0x100, Exclusive)
	if c.Lookup(0x13F) == nil {
		t.Error("offset within line missed")
	}
	if c.Lookup(0x140) != nil {
		t.Error("next line hit")
	}
}

func TestLRUEviction(t *testing.T) {
	// 2 sets, 2 ways, 64B lines = 256B.
	c := New(256, 2, 64, true)
	// Set 0 gets lines at stride 128.
	c.Insert(0x000, Shared)
	c.Insert(0x080, Shared)
	c.Lookup(0x000) // make 0x080 the LRU
	_, v := c.Insert(0x100, Shared)
	if v == nil || v.Addr != 0x080 {
		t.Fatalf("victim = %+v, want line 0x080", v)
	}
	if c.Peek(0x000) == nil || c.Peek(0x100) == nil {
		t.Error("resident lines lost")
	}
	if c.Peek(0x080) != nil {
		t.Error("victim still present")
	}
}

func TestInsertReusesExistingFrame(t *testing.T) {
	c := New(256, 2, 64, true)
	l1, _ := c.Insert(0x40, Shared)
	l1.Data[0] = 0xAA
	l2, v := c.Insert(0x40, Modified)
	if v != nil {
		t.Error("reinsert evicted something")
	}
	if l2 != l1 {
		t.Error("reinsert used a different frame")
	}
	if l2.State != Modified {
		t.Error("state not updated")
	}
	if l2.Data[0] != 0xAA {
		t.Error("reinsert cleared data of existing frame")
	}
}

func TestVictimCarriesDataCopy(t *testing.T) {
	c := New(128, 2, 64, true) // one set, 2 ways
	l, _ := c.Insert(0x000, Modified)
	copy(l.Data, []byte{1, 2, 3})
	c.Insert(0x040, Shared)
	_, v := c.Insert(0x080, Shared) // evicts LRU = 0x000
	if v == nil || v.Addr != 0 || v.State != Modified {
		t.Fatalf("victim = %+v", v)
	}
	if v.Data[0] != 1 || v.Data[1] != 2 || v.Data[2] != 3 {
		t.Error("victim data not copied")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(1024, 4, 64, true)
	l, _ := c.Insert(0x200, Modified)
	l.Data[5] = 42
	st, data := c.Invalidate(0x200)
	if st != Modified || data[5] != 42 {
		t.Errorf("Invalidate = %v %v", st, data[5])
	}
	if c.Peek(0x200) != nil {
		t.Error("line survived invalidation")
	}
	if st, _ := c.Invalidate(0x200); st != Invalid {
		t.Error("double invalidate returned valid state")
	}
}

func TestAddrOfRoundTrip(t *testing.T) {
	c := New(4096, 4, 64, true)
	r := rng.New(2)
	f := func() bool {
		addr := c.LineAddr(uint64(r.Uint32()))
		l, _ := c.Insert(addr, Shared)
		set, _ := int(addr/64%uint64(c.Sets())), 0
		_ = set
		// Locate the frame and reconstruct its address.
		found := false
		c.ForEach(func(a uint64, ll *Line) {
			if ll == l && a == addr {
				found = true
			}
		})
		return found
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTagOnlyCache(t *testing.T) {
	c := New(256, 2, 32, false)
	l, _ := c.Insert(0x20, Shared)
	if l.Data != nil {
		t.Error("tag-only cache allocated data")
	}
	_, v := c.Insert(0x20+256, Shared)
	_ = v
	if c.Peek(0x20) == nil {
		t.Error("line missing")
	}
}

func TestFlush(t *testing.T) {
	c := New(1024, 4, 64, true)
	c.Insert(0x100, Modified)
	c.Insert(0x200, Shared)
	c.Flush()
	n := 0
	c.ForEach(func(uint64, *Line) { n++ })
	if n != 0 {
		t.Errorf("%d lines after flush", n)
	}
}

func TestTinyCacheGeometry(t *testing.T) {
	// Fewer lines than requested ways: falls back to one set.
	c := New(64, 4, 64, true)
	if c.Sets() != 1 || c.Ways() != 1 {
		t.Errorf("geometry %d sets × %d ways", c.Sets(), c.Ways())
	}
}

func TestNonPowerOfTwoSetsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("3-set cache accepted")
		}
	}()
	New(3*64*2, 2, 64, true)
}
