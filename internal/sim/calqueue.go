package sim

import "math/bits"

// This file is the engine's event scheduler: a calendar queue (time wheel)
// specialized for the simulator's traffic pattern. Nearly every event is
// scheduled a small number of cycles ahead (OpGap, cache hit latencies, the
// ~180-cycle memory round trip), so a wheel of per-cycle buckets covering the
// next wheelBuckets cycles absorbs the hot path with O(1) push and pop and no
// comparison sorting; the rare far-future event overflows into a small binary
// heap and is drained into the wheel when the window rotates past it.
//
// The ordering contract is identical to the binary heap it replaced: events
// pop in (cycle, insertion sequence) order, so same-cycle events are FIFO.
// Within a bucket that holds exactly because each bucket is append-only and
// consumed front to back; across the overflow boundary it holds because the
// window only rotates when the wheel is empty, and the drain inserts overflow
// events (all carrying older sequence numbers than any later direct push to
// the new window) in heap order, which is sequence order within a cycle.
// The scheduler-equivalence and metamorphic tests in calqueue_test.go pin
// both properties against the reference heap.

const (
	// wheelBuckets is the wheel window size in cycles. It must be a power
	// of two and comfortably exceed the largest common latency (MemLat +
	// crypto ≈ 300 cycles) so rotation — the only O(log n) path — stays
	// rare. 1024 buckets is 40 KiB of bucket headers per engine.
	wheelBuckets = 1 << 10
	wheelMask    = wheelBuckets - 1
)

// event is a scheduled occurrence: either an engine-context callback or the
// resumption of a parked proc. Events are values — the calendar queue stores
// them inline in its buckets, so the steady state moves no pointers and
// allocates nothing.
type event struct {
	at  uint64
	seq uint64
	fn  func()
	p   *Proc
}

// bucket holds the events of one cycle in insertion order. It is consumed
// front to back via head, and reset (retaining capacity) once drained.
type bucket struct {
	evs  []event
	head int
}

// calQueue is the calendar queue. The zero value is an empty queue with the
// window starting at cycle 0.
type calQueue struct {
	// base is the window start: the wheel covers cycles
	// [base, base+wheelBuckets), bucket index = cycle & wheelMask.
	base uint64
	// cur is the scan cursor: every bucket for a cycle below cur is empty.
	// Only pop advances it (to the popped cycle), which is safe because
	// all future pushes happen at or after the current simulated cycle.
	// Peek never moves it: a peek that stops a run slice may be followed
	// by pushes at earlier cycles than the peeked event.
	cur     uint64
	n       int // total events (wheel + overflow)
	inWheel int // events currently in wheel buckets
	occ     [wheelBuckets / 64]uint64
	buckets [wheelBuckets]bucket
	// overflow is a binary min-heap ordered by (at, seq) holding events
	// beyond the current window.
	overflow []event
}

// len returns the number of scheduled events.
//
//senss-lint:hotpath
func (q *calQueue) len() int { return q.n }

// push schedules ev. ev.at must be >= the cycle of the last popped event
// (time never runs backwards), which keeps every push inside or beyond the
// current window.
//
//senss-lint:hotpath
func (q *calQueue) push(ev event) {
	q.n++
	if ev.at < q.base+wheelBuckets {
		q.bucketPush(ev)
		return
	}
	q.overflowPush(ev)
}

//senss-lint:hotpath
func (q *calQueue) bucketPush(ev event) {
	i := ev.at & wheelMask
	b := &q.buckets[i]
	if b.head == len(b.evs) {
		b.evs = b.evs[:0]
		b.head = 0
		q.occ[i>>6] |= 1 << (i & 63)
	}
	//senss-lint:ignore hotpath amortized growth: buckets reach steady-state capacity after warmup
	b.evs = append(b.evs, ev)
	q.inWheel++
}

// peekAt returns the cycle of the next event without removing it, and
// whether one exists. It never rotates the window and never moves cur.
//
//senss-lint:hotpath
func (q *calQueue) peekAt() (uint64, bool) {
	if q.inWheel > 0 {
		return q.scanFrom(q.cur), true
	}
	if len(q.overflow) > 0 {
		return q.overflow[0].at, true
	}
	return 0, false
}

// popAt removes and returns the next event, whose cycle the caller obtained
// from peekAt with no intervening push (peek and pop run under the single
// run token, so nothing can interleave).
//
//senss-lint:hotpath
func (q *calQueue) popAt(at uint64) event {
	if q.inWheel == 0 {
		q.rotate()
	}
	i := at & wheelMask
	b := &q.buckets[i]
	ev := b.evs[b.head]
	b.evs[b.head] = event{} // drop fn/proc references for the GC
	b.head++
	if b.head == len(b.evs) {
		b.evs = b.evs[:0]
		b.head = 0
		q.occ[i>>6] &^= 1 << (i & 63)
	}
	q.cur = at
	q.inWheel--
	q.n--
	return ev
}

// scanFrom returns the lowest cycle >= c with a nonempty bucket. The caller
// guarantees the wheel is nonempty; buckets below c are empty by the cur
// invariant, so any set occupancy bit at or after c names the next cycle.
//
//senss-lint:hotpath
func (q *calQueue) scanFrom(c uint64) uint64 {
	end := q.base + wheelBuckets
	for c < end {
		i := c & wheelMask
		w := q.occ[i>>6] >> (i & 63)
		if w != 0 {
			return c + uint64(bits.TrailingZeros64(w))
		}
		c += 64 - (i & 63)
	}
	panic("sim: calendar wheel lost an event (scan past window end)")
}

// rotate advances the window to the earliest overflow event and drains every
// overflow event that now fits. Only called when the wheel is empty, so no
// bucket can hold events of two different cycles.
//
//senss-lint:coldpath window rotation: only far-future events (beyond 1024 cycles) ever trigger it
func (q *calQueue) rotate() {
	q.base = q.overflow[0].at
	q.cur = q.base
	for len(q.overflow) > 0 && q.overflow[0].at < q.base+wheelBuckets {
		q.bucketPush(q.overflowPop())
	}
}

// reset drops every scheduled event (Abort teardown).
func (q *calQueue) reset() {
	*q = calQueue{}
}

// overflowLess orders the overflow heap by (cycle, insertion sequence).
func overflowLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// overflowPush is a hand-rolled sift-up so events stay values (container/heap
// would box them through interface{}).
//
//senss-lint:coldpath overflow heap: only far-future events (beyond 1024 cycles) land here
func (q *calQueue) overflowPush(ev event) {
	h := append(q.overflow, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !overflowLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	q.overflow = h
}

func (q *calQueue) overflowPop() event {
	h := q.overflow
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = event{}
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && overflowLess(h[l], h[small]) {
			small = l
		}
		if r < len(h) && overflowLess(h[r], h[small]) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	q.overflow = h
	return top
}
