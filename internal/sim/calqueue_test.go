package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"testing"
)

// refHeap is the reference scheduler: the binary min-heap ordered by
// (cycle, insertion sequence) that the calendar queue replaced. The
// equivalence tests below run both structures in lockstep on fuzzed
// schedules and demand identical peek and pop behavior — the calendar
// queue earns its place only by being indistinguishable.
type refHeap []event

func (h refHeap) Len() int            { return len(h) }
func (h refHeap) Less(i, j int) bool  { return overflowLess(h[i], h[j]) }
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old) - 1
	ev := old[n]
	*h = old[:n]
	return ev
}

func (h *refHeap) peekAt() (uint64, bool) {
	if len(*h) == 0 {
		return 0, false
	}
	return (*h)[0].at, true
}

func (h *refHeap) pop() event { return heap.Pop(h).(event) }

// popBoth pops the next event from the queue and the reference heap and
// fails the test on any disagreement in peek, pop, or length.
func popBoth(t *testing.T, q *calQueue, ref *refHeap) event {
	t.Helper()
	at, ok := q.peekAt()
	wat, wok := ref.peekAt()
	if ok != wok || at != wat {
		t.Fatalf("peekAt = (%d, %v), reference heap says (%d, %v)", at, ok, wat, wok)
	}
	got := q.popAt(at)
	want := ref.pop()
	if got.at != want.at || got.seq != want.seq {
		t.Fatalf("popped (at=%d seq=%d), reference heap popped (at=%d seq=%d)",
			got.at, got.seq, want.at, want.seq)
	}
	if q.len() != ref.Len() {
		t.Fatalf("after pop: len=%d, reference heap len=%d", q.len(), ref.Len())
	}
	return got
}

// TestCalQueueMatchesReferenceHeap is the lockstep scheduler-equivalence
// property test: fuzzed schedules mixing same-cycle bursts, hit-latency
// deltas, bus-scale deltas, and far-future events beyond the wheel
// horizon, with peeks and pops interleaved the way RunUntil deadline
// slicing interleaves them (peek, then push at earlier cycles than the
// peeked event, then peek again). The calendar queue must agree with the
// reference heap on every observable at every step.
func TestCalQueueMatchesReferenceHeap(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			var q calQueue
			var ref refHeap
			var seq uint64
			var now uint64 // cycle of the last popped event
			overflowPushes := 0

			push := func(at uint64) {
				ev := event{at: at, seq: seq}
				seq++
				if at >= q.base+wheelBuckets {
					overflowPushes++
				}
				q.push(ev)
				heap.Push(&ref, ev)
				if q.len() != ref.Len() {
					t.Fatalf("after push: len=%d, reference heap len=%d", q.len(), ref.Len())
				}
			}

			for step := 0; step < 20000; step++ {
				if q.len() == 0 || (q.len() < 4096 && r.Intn(10) < 6) {
					var delta uint64
					switch r.Intn(12) {
					case 0: // same-cycle burst: the tie-break path
						delta = 0
					case 1, 2: // cache-hit latencies
						delta = uint64(r.Intn(8))
					case 3: // beyond the wheel horizon: the overflow heap
						delta = wheelBuckets + uint64(r.Intn(4*wheelBuckets))
					default: // bus and memory round-trip scale
						delta = uint64(r.Intn(512))
					}
					push(now + delta)
					continue
				}
				if r.Intn(4) == 0 {
					// Deadline-slicing interleaving: peek (as RunUntil does
					// to compare against its deadline), then push an event
					// at an earlier cycle than the peeked one. The peek must
					// not have advanced the scan cursor past it.
					peeked, _ := q.peekAt()
					push(now)
					if got, _ := q.peekAt(); got > peeked || got > now {
						t.Fatalf("after peek(%d) then push(at=%d): peekAt=%d — peek moved the cursor", peeked, now, got)
					}
				}
				now = popBoth(t, &q, &ref).at
			}
			for q.len() > 0 {
				popBoth(t, &q, &ref)
			}
			if overflowPushes == 0 {
				t.Fatal("schedule never exercised the overflow heap; fuzz mix is broken")
			}
		})
	}
}

// TestCalQueueMetamorphicSameCycleOrder pins the tie-break contract:
// events at the same cycle retire in insertion order (FIFO), and only
// insertion order — for every permutation of same-cycle pushes, the pop
// sequence is exactly (cycle, insertion sequence) order and identical to
// the reference heap's. The cycle-level retirement timeline is invariant
// across permutations. This is the contract that lets the golden-cycles
// conformance suite hold: the engine always presents insertions in the
// same deterministic order, and the queue never reorders within a cycle.
func TestCalQueueMetamorphicSameCycleOrder(t *testing.T) {
	// Clusters of same-cycle events, including one beyond the wheel
	// horizon so a tie group lives in the overflow heap.
	cycles := []uint64{3, 3, 3, 3, 17, 17, 40, 40, 40, 40, 40, 700, 700, 5000, 5000, 5000}

	var wantCycles []uint64 // sorted retirement timeline, fixed across permutations

	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		// Permute insertion order within each equal-cycle group; group
		// positions stay put so cross-cycle insertion order is unchanged.
		order := make([]int, len(cycles))
		for i := range order {
			order[i] = i
		}
		for lo := 0; lo < len(cycles); {
			hi := lo
			for hi < len(cycles) && cycles[hi] == cycles[lo] {
				hi++
			}
			r.Shuffle(hi-lo, func(i, j int) { order[lo+i], order[lo+j] = order[lo+j], order[lo+i] })
			lo = hi
		}

		var q calQueue
		var ref refHeap
		insertionAt := make([]uint64, len(cycles)) // seq -> cycle pushed
		for seq, idx := range order {
			ev := event{at: cycles[idx], seq: uint64(seq)}
			insertionAt[seq] = ev.at
			q.push(ev)
			heap.Push(&ref, ev)
		}

		var gotCycles []uint64
		nextSeqAt := make(map[uint64]uint64) // cycle -> next expected seq rank within that cycle's insertions
		for q.len() > 0 {
			ev := popBoth(t, &q, &ref)
			gotCycles = append(gotCycles, ev.at)
			// FIFO within the cycle: this event's seq must be the lowest
			// not-yet-retired seq among this cycle's insertions.
			for s := nextSeqAt[ev.at]; ; s++ {
				if insertionAt[s] == ev.at {
					if s != ev.seq {
						t.Fatalf("trial %d: cycle %d retired seq %d before seq %d — tie-break is not FIFO",
							trial, ev.at, ev.seq, s)
					}
					nextSeqAt[ev.at] = s + 1
					break
				}
			}
		}

		if wantCycles == nil {
			wantCycles = gotCycles
			continue
		}
		if len(gotCycles) != len(wantCycles) {
			t.Fatalf("trial %d: retired %d events, want %d", trial, len(gotCycles), len(wantCycles))
		}
		for i := range gotCycles {
			if gotCycles[i] != wantCycles[i] {
				t.Fatalf("trial %d: retirement timeline changed at position %d: cycle %d, want %d — "+
					"same-cycle insertion order leaked across cycles", trial, i, gotCycles[i], wantCycles[i])
			}
		}
	}
}

// TestCalQueueOverflowBoundaryFIFO pins FIFO across the overflow/wheel
// boundary: events for one far-future cycle pushed before rotation (via
// the overflow heap) and after rotation (directly into the wheel) must
// still retire in global insertion order, because the drain inserts the
// overflow events — which all carry older sequence numbers — ahead of
// any later direct push into the same bucket.
func TestCalQueueOverflowBoundaryFIFO(t *testing.T) {
	var q calQueue
	var seq uint64
	push := func(at uint64) uint64 {
		ev := event{at: at, seq: seq}
		seq++
		q.push(ev)
		return ev.seq
	}

	const far = 3 * wheelBuckets
	// Three far-future events land in the overflow heap, deliberately
	// pushed out of cycle order to make the drain do real sorting work.
	push(far + 1)
	push(far)
	push(far)
	// A near event keeps the wheel busy so rotation happens on its pop.
	push(5)

	if got := q.popAt(5); got.at != 5 {
		t.Fatalf("first pop at=%d, want 5", got.at)
	}
	// The wheel is now empty; the next pop rotates the window to `far`
	// and drains the overflow heap into wheel buckets.
	at, ok := q.peekAt()
	if !ok || at != far {
		t.Fatalf("peek after wheel drained = (%d, %v), want (%d, true)", at, ok, far)
	}
	if got := q.popAt(at); got.seq != 1 {
		t.Fatalf("first post-rotation pop seq=%d, want 1", got.seq)
	}
	// The window now starts at `far`, so pushes for the drained cycles go
	// directly into the wheel, appending behind the drained events: newer
	// seq, same bucket.
	push(far)
	push(far + 1)

	wantSeqs := []uint64{2, 4, 0, 5} // at=far: seq 2 then 4; at=far+1: seq 0 then 5
	for i, want := range wantSeqs {
		at, ok := q.peekAt()
		if !ok {
			t.Fatalf("queue empty after %d pops, want %d more", i, len(wantSeqs)-i)
		}
		got := q.popAt(at)
		if got.seq != want {
			t.Fatalf("pop %d: (at=%d seq=%d), want seq %d — FIFO broke across the overflow boundary",
				i, got.at, got.seq, want)
		}
	}
	if q.len() != 0 {
		t.Fatalf("%d events left over", q.len())
	}
}

// TestRunUntilRandomSlicesMatchRun re-runs the bit-reproducibility
// contract under adversarial slicing: random deadline sizes, including
// long stretches of 1-cycle slices that peek the queue at every cycle —
// the access pattern that punishes a scheduler whose peek disturbs
// cursor state. Every slicing must retire the identical trace at the
// identical cycles as the unsliced run, including sleeps past the wheel
// horizon that traverse the overflow heap.
func TestRunUntilRandomSlicesMatchRun(t *testing.T) {
	build := func() (*Engine, *[]string) {
		e := NewEngine()
		var trace []string
		rec := func(name string, step uint64, n int) {
			e.Spawn(name, func(p *Proc) {
				for i := 0; i < n; i++ {
					trace = append(trace, name)
					p.Sleep(step)
				}
			})
		}
		rec("a", 2, 40)
		rec("b", 7, 25)
		rec("c", 1500, 4) // every sleep crosses the wheel horizon
		rec("d", wheelBuckets, 5)
		return e, &trace
	}

	whole, wholeTrace := build()
	if err := whole.Run(); err != nil {
		t.Fatal(err)
	}

	for seed := int64(1); seed <= 6; seed++ {
		r := rand.New(rand.NewSource(seed))
		e, trace := build()
		for steps := 0; ; steps++ {
			var slice uint64
			if r.Intn(3) == 0 {
				slice = 1
			} else {
				slice = 1 + uint64(r.Intn(400))
			}
			done, err := e.RunUntil(e.Now() + slice)
			if err != nil {
				t.Fatal(err)
			}
			if done {
				break
			}
			if steps > 100000 {
				t.Fatal("sliced run never finished")
			}
		}
		if e.Now() != whole.Now() {
			t.Errorf("seed %d: final cycle %d, want %d", seed, e.Now(), whole.Now())
		}
		if len(*trace) != len(*wholeTrace) {
			t.Fatalf("seed %d: trace length %d, want %d", seed, len(*trace), len(*wholeTrace))
		}
		for i := range *trace {
			if (*trace)[i] != (*wholeTrace)[i] {
				t.Fatalf("seed %d: trace differs at %d: %q, want %q", seed, i, (*trace)[i], (*wholeTrace)[i])
			}
		}
	}
}
