package sim

import (
	"testing"

	"senss/internal/rng"
)

// TestEngineRandomStress spawns a web of procs that randomly sleep, fight
// over mutexes, wait on queues, and wake each other, then asserts clean
// completion, monotonic time, and determinism across an identical re-run.
func TestEngineRandomStress(t *testing.T) {
	run := func(seed uint64) (uint64, uint64) {
		e := NewEngine()
		e.SetLimit(50_000_000)
		var m1, m2 Mutex
		var q Queue
		var events uint64
		var lastTime uint64
		note := func(p *Proc) {
			if p.Now() < lastTime {
				t.Fatalf("time went backwards: %d < %d", p.Now(), lastTime)
			}
			lastTime = p.Now()
			events++
		}
		const procs = 8
		waitersPossible := 0
		for i := 0; i < procs; i++ {
			r := rng.New(seed + uint64(i)*977)
			i := i
			e.Spawn("stress", func(p *Proc) {
				for op := 0; op < 300; op++ {
					switch r.Intn(5) {
					case 0:
						p.Sleep(uint64(r.Intn(50)))
					case 1:
						m1.Lock(p)
						note(p)
						p.Sleep(uint64(r.Intn(5)))
						m1.Unlock(p)
					case 2:
						m2.Lock(p)
						note(p)
						m2.Unlock(p)
					case 3:
						// Park on the queue only if someone will be around
						// to wake us: even procs park, odd procs wake.
						if i%2 == 0 && waitersPossible < 3 {
							waitersPossible++
							q.Wait(p)
							waitersPossible--
							note(p)
						}
					default:
						q.WakeOne(e)
						note(p)
						p.Sleep(1)
					}
				}
				// Drain any parked siblings so the engine can finish.
				for q.WakeAll(e); q.Len() > 0; {
					p.Sleep(1)
				}
			})
		}
		// Final sweeper ensures no one stays parked forever.
		e.Spawn("sweeper", func(p *Proc) {
			for i := 0; i < 40_000; i++ {
				p.Sleep(25)
				q.WakeAll(e)
			}
		})
		if err := e.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		return e.Now(), events
	}
	c1, e1 := run(42)
	c2, e2 := run(42)
	if c1 != c2 || e1 != e2 {
		t.Errorf("nondeterministic stress run: (%d,%d) vs (%d,%d)", c1, e1, c2, e2)
	}
	if e1 == 0 {
		t.Error("stress run did nothing")
	}
}
