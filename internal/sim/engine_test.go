package sim

import (
	"errors"
	"testing"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(10, func() { order = append(order, 2) })
	e.Schedule(5, func() { order = append(order, 1) })
	e.Schedule(10, func() { order = append(order, 3) }) // same cycle: FIFO
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 10 {
		t.Errorf("Now = %d, want 10", e.Now())
	}
}

func TestProcSleepAdvancesTime(t *testing.T) {
	e := NewEngine()
	var at []uint64
	e.Spawn("a", func(p *Proc) {
		at = append(at, p.Now())
		p.Sleep(7)
		at = append(at, p.Now())
		p.Sleep(0)
		at = append(at, p.Now())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 7, 7}
	for i := range want {
		if at[i] != want[i] {
			t.Errorf("at[%d] = %d, want %d", i, at[i], want[i])
		}
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var trace []string
		e.Spawn("a", func(p *Proc) {
			for i := 0; i < 3; i++ {
				trace = append(trace, "a")
				p.Sleep(2)
			}
		})
		e.Spawn("b", func(p *Proc) {
			for i := 0; i < 3; i++ {
				trace = append(trace, "b")
				p.Sleep(3)
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); len(got) != len(first) {
			t.Fatal("trace length varies")
		} else {
			for j := range got {
				if got[j] != first[j] {
					t.Fatalf("run %d: trace differs at %d: %v vs %v", i, j, got, first)
				}
			}
		}
	}
}

func TestQueueFIFO(t *testing.T) {
	e := NewEngine()
	var q Queue
	var order []string
	block := func(name string) {
		e.Spawn(name, func(p *Proc) {
			q.Wait(p)
			order = append(order, name)
		})
	}
	block("first")
	block("second")
	block("third")
	e.Schedule(5, func() { q.WakeAll(e) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "first" || order[1] != "second" || order[2] != "third" {
		t.Errorf("order = %v", order)
	}
}

func TestQueueWakeOne(t *testing.T) {
	e := NewEngine()
	var q Queue
	woken := 0
	e.Spawn("w1", func(p *Proc) { q.Wait(p); woken++ })
	e.Spawn("w2", func(p *Proc) { q.Wait(p); woken++ })
	e.Schedule(1, func() { q.WakeOne(e) })
	err := e.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("want DeadlockError (one waiter left), got %v", err)
	}
	if woken != 1 {
		t.Errorf("woken = %d, want 1", woken)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	e := NewEngine()
	var m Mutex
	inside := 0
	maxInside := 0
	for i := 0; i < 4; i++ {
		e.Spawn("locker", func(p *Proc) {
			for n := 0; n < 10; n++ {
				m.Lock(p)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				p.Sleep(3)
				inside--
				m.Unlock(p)
				p.Sleep(1)
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Errorf("max procs inside critical section = %d", maxInside)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEngine()
	var q Queue
	e.Spawn("stuck", func(p *Proc) { q.Wait(p) })
	err := e.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("want DeadlockError, got %v", err)
	}
}

func TestCycleLimit(t *testing.T) {
	e := NewEngine()
	e.SetLimit(100)
	e.Spawn("spinner", func(p *Proc) {
		for {
			p.Sleep(10)
		}
	})
	err := e.Run()
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("want LimitError, got %v", err)
	}
}

func TestHaltStopsRun(t *testing.T) {
	e := NewEngine()
	steps := 0
	e.Spawn("victim", func(p *Proc) {
		for i := 0; i < 1000; i++ {
			steps++
			if i == 5 {
				e.Halt("alarm")
			}
			p.Sleep(1)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	halted, msg := e.Halted()
	if !halted || msg != "alarm" {
		t.Errorf("Halted = %v %q", halted, msg)
	}
	if steps > 7 {
		t.Errorf("ran %d steps after halt", steps)
	}
}

func TestSpawnFromProc(t *testing.T) {
	e := NewEngine()
	var childRan bool
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(5)
		e.Spawn("child", func(c *Proc) {
			c.Sleep(2)
			childRan = true
		})
		p.Sleep(10)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Error("child never ran")
	}
	if e.Now() != 15 {
		t.Errorf("Now = %d, want 15", e.Now())
	}
}

func TestUnparkResumesAtCurrentCycle(t *testing.T) {
	e := NewEngine()
	var wakeTime uint64
	var sleeper *Proc
	sleeper = e.Spawn("sleeper", func(p *Proc) {
		p.Park()
		wakeTime = p.Now()
	})
	e.Schedule(42, func() { e.Unpark(sleeper) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wakeTime != 42 {
		t.Errorf("woke at %d, want 42", wakeTime)
	}
}
