package sim

import (
	"errors"
	"testing"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(10, func() { order = append(order, 2) })
	e.Schedule(5, func() { order = append(order, 1) })
	e.Schedule(10, func() { order = append(order, 3) }) // same cycle: FIFO
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 10 {
		t.Errorf("Now = %d, want 10", e.Now())
	}
}

func TestProcSleepAdvancesTime(t *testing.T) {
	e := NewEngine()
	var at []uint64
	e.Spawn("a", func(p *Proc) {
		at = append(at, p.Now())
		p.Sleep(7)
		at = append(at, p.Now())
		p.Sleep(0)
		at = append(at, p.Now())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 7, 7}
	for i := range want {
		if at[i] != want[i] {
			t.Errorf("at[%d] = %d, want %d", i, at[i], want[i])
		}
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var trace []string
		e.Spawn("a", func(p *Proc) {
			for i := 0; i < 3; i++ {
				trace = append(trace, "a")
				p.Sleep(2)
			}
		})
		e.Spawn("b", func(p *Proc) {
			for i := 0; i < 3; i++ {
				trace = append(trace, "b")
				p.Sleep(3)
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); len(got) != len(first) {
			t.Fatal("trace length varies")
		} else {
			for j := range got {
				if got[j] != first[j] {
					t.Fatalf("run %d: trace differs at %d: %v vs %v", i, j, got, first)
				}
			}
		}
	}
}

func TestQueueFIFO(t *testing.T) {
	e := NewEngine()
	var q Queue
	var order []string
	block := func(name string) {
		e.Spawn(name, func(p *Proc) {
			q.Wait(p)
			order = append(order, name)
		})
	}
	block("first")
	block("second")
	block("third")
	e.Schedule(5, func() { q.WakeAll(e) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "first" || order[1] != "second" || order[2] != "third" {
		t.Errorf("order = %v", order)
	}
}

func TestQueueWakeOne(t *testing.T) {
	e := NewEngine()
	var q Queue
	woken := 0
	e.Spawn("w1", func(p *Proc) { q.Wait(p); woken++ })
	e.Spawn("w2", func(p *Proc) { q.Wait(p); woken++ })
	e.Schedule(1, func() { q.WakeOne(e) })
	err := e.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("want DeadlockError (one waiter left), got %v", err)
	}
	if woken != 1 {
		t.Errorf("woken = %d, want 1", woken)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	e := NewEngine()
	var m Mutex
	inside := 0
	maxInside := 0
	for i := 0; i < 4; i++ {
		e.Spawn("locker", func(p *Proc) {
			for n := 0; n < 10; n++ {
				m.Lock(p)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				p.Sleep(3)
				inside--
				m.Unlock(p)
				p.Sleep(1)
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Errorf("max procs inside critical section = %d", maxInside)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEngine()
	var q Queue
	e.Spawn("stuck", func(p *Proc) { q.Wait(p) })
	err := e.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("want DeadlockError, got %v", err)
	}
}

func TestCycleLimit(t *testing.T) {
	e := NewEngine()
	e.SetLimit(100)
	e.Spawn("spinner", func(p *Proc) {
		for {
			p.Sleep(10)
		}
	})
	err := e.Run()
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("want LimitError, got %v", err)
	}
}

func TestHaltStopsRun(t *testing.T) {
	e := NewEngine()
	steps := 0
	e.Spawn("victim", func(p *Proc) {
		for i := 0; i < 1000; i++ {
			steps++
			if i == 5 {
				e.Halt("alarm")
			}
			p.Sleep(1)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	halted, msg := e.Halted()
	if !halted || msg != "alarm" {
		t.Errorf("Halted = %v %q", halted, msg)
	}
	if steps > 7 {
		t.Errorf("ran %d steps after halt", steps)
	}
}

func TestSpawnFromProc(t *testing.T) {
	e := NewEngine()
	var childRan bool
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(5)
		e.Spawn("child", func(c *Proc) {
			c.Sleep(2)
			childRan = true
		})
		p.Sleep(10)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Error("child never ran")
	}
	if e.Now() != 15 {
		t.Errorf("Now = %d, want 15", e.Now())
	}
}

func TestUnparkResumesAtCurrentCycle(t *testing.T) {
	e := NewEngine()
	var wakeTime uint64
	var sleeper *Proc
	sleeper = e.Spawn("sleeper", func(p *Proc) {
		p.Park()
		wakeTime = p.Now()
	})
	e.Schedule(42, func() { e.Unpark(sleeper) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wakeTime != 42 {
		t.Errorf("woke at %d, want 42", wakeTime)
	}
}

// TestRunUntilSlicedMatchesRun drives the same two-proc workload whole
// and chopped into arbitrary slices, and demands the identical trace —
// the bit-reproducibility contract incremental sessions rest on.
func TestRunUntilSlicedMatchesRun(t *testing.T) {
	build := func() (*Engine, *[]string) {
		e := NewEngine()
		var trace []string
		rec := func(name string, step uint64, n int) {
			e.Spawn(name, func(p *Proc) {
				for i := 0; i < n; i++ {
					trace = append(trace, name)
					p.Sleep(step)
				}
			})
		}
		rec("a", 2, 9)
		rec("b", 3, 7)
		rec("c", 5, 4)
		return e, &trace
	}

	whole, wholeTrace := build()
	if err := whole.Run(); err != nil {
		t.Fatal(err)
	}

	for _, slice := range []uint64{1, 3, 7} {
		e, trace := build()
		steps := 0
		for {
			done, err := e.RunUntil(e.Now() + slice)
			if err != nil {
				t.Fatal(err)
			}
			steps++
			if steps > 10000 {
				t.Fatal("sliced run never finished")
			}
			if done {
				break
			}
		}
		if e.Now() != whole.Now() {
			t.Errorf("slice %d: final cycle %d, want %d", slice, e.Now(), whole.Now())
		}
		if len(*trace) != len(*wholeTrace) {
			t.Fatalf("slice %d: trace length %d, want %d", slice, len(*trace), len(*wholeTrace))
		}
		for i := range *trace {
			if (*trace)[i] != (*wholeTrace)[i] {
				t.Fatalf("slice %d: trace differs at %d", slice, i)
			}
		}
	}
}

// TestRunUntilAdvancesAcrossEmptyGaps pins the clock semantics: a slice
// whose deadline falls short of the next event still moves Now forward,
// so a fixed-slice caller always makes progress.
func TestRunUntilAdvancesAcrossEmptyGaps(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(1000, func() { ran = true })
	for i := 0; i < 9; i++ {
		done, err := e.RunUntil(e.Now() + 100)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			t.Fatalf("done after %d cycles with the event still pending", e.Now())
		}
	}
	if e.Now() != 900 {
		t.Errorf("Now = %d, want 900", e.Now())
	}
	done, err := e.RunUntil(e.Now() + 100)
	if err != nil || !done || !ran {
		t.Errorf("done=%v err=%v ran=%v after the final slice", done, err, ran)
	}
	if e.Now() != 1000 {
		t.Errorf("final Now = %d, want 1000", e.Now())
	}
}

// TestRunUntilDeadlockSurfaces pins that a genuine deadlock inside a
// slice is reported as done with the DeadlockError, not as an
// exhausted slice.
func TestRunUntilDeadlockSurfaces(t *testing.T) {
	e := NewEngine()
	var q Queue
	e.Spawn("stuck", func(p *Proc) { q.Wait(p) })
	done, err := e.RunUntil(e.Now() + 50)
	if !done {
		t.Fatal("deadlock not surfaced as done")
	}
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("want DeadlockError, got %v", err)
	}
}

// TestAbortTerminatesLiveProcs drives a mid-run abort: parked, sleeping,
// and unstarted procs must all unwind, leaving zero live procs, and the
// deferred cleanup of each proc body must still run.
func TestAbortTerminatesLiveProcs(t *testing.T) {
	e := NewEngine()
	var q Queue
	cleanups := 0
	e.Spawn("parked", func(p *Proc) {
		defer func() { cleanups++ }()
		q.Wait(p)
	})
	e.Spawn("sleeper", func(p *Proc) {
		defer func() { cleanups++ }()
		for {
			p.Sleep(10)
		}
	})
	if done, err := e.RunUntil(e.Now() + 25); done || err != nil {
		t.Fatalf("done=%v err=%v, want a paused mid-run engine", done, err)
	}
	e.Spawn("unstarted", func(p *Proc) {
		defer func() { cleanups++ }()
		p.Sleep(1)
	})
	e.Abort()
	if e.live != 0 {
		t.Errorf("live = %d after Abort, want 0", e.live)
	}
	if e.q.len() != 0 {
		t.Errorf("%d events survived Abort", e.q.len())
	}
	// The sleeper's deferred cleanup observed the unwind; the parked and
	// unstarted procs likewise.
	if cleanups != 2 {
		// The unstarted proc returns before fn runs, so its body's defer
		// never existed; only the two started procs unwind through theirs.
		t.Errorf("cleanups = %d, want 2", cleanups)
	}
	e.Abort() // idempotent
}
