// Package sim is a deterministic discrete-event simulation engine with
// cooperative green threads ("procs").
//
// The SMP model is written in blocking style: each simulated processor runs
// its program inside a proc; memory-hierarchy layers charge simulated cycles
// by calling Sleep, and contention points (the bus arbiter, spinlocks) are
// expressed with wait queues.  Exactly one proc executes at a time — a single
// run token moves to whichever event is next in (cycle, sequence) order — so
// the whole simulation is single-threaded in effect and bit-reproducible for
// a fixed seed, which DESIGN.md §6 requires.
//
// Scheduling is direct-handoff: the goroutine that holds the run token
// (a proc inside Sleep/Park, or the engine inside RunUntil) pops the next
// event itself and hands the token straight to its target. When a proc's own
// resumption is the next event it simply keeps running — zero channel
// operations — and otherwise a handoff costs one channel send, instead of
// the two sends plus two receives of a central dispatcher loop. The profile
// that motivated this (see DESIGN.md §16) showed ~70% of simulation time in
// exactly that dispatcher round trip. Events live in a calendar queue
// (calqueue.go) rather than a binary heap for the same reason: O(1)
// value-typed push/pop with no comparison sorting on the hot path.
package sim

import "fmt"

// Engine owns simulated time and the run token.
type Engine struct {
	now uint64
	seq uint64
	q   calQueue
	// deadline is the active run slice's bound; dispatch stops before
	// popping any event beyond it. Run uses MaxUint64.
	deadline uint64
	// stop records why the token came back to the engine.
	stop stopReason
	// ctl hands the run token from a stopping proc back to RunUntil.
	ctl  chan struct{}
	live int // procs spawned and not yet finished
	// procs registers every spawned proc so Abort can reach the ones
	// parked outside the event queue (wait queues hold them privately).
	procs    []*Proc
	limit    uint64
	halted   bool
	haltMsg  string
	aborting bool
}

// stopReason says why dispatch returned the token to the engine.
type stopReason uint8

const (
	stopEmpty    stopReason = iota // no events remain
	stopHalt                       // Engine.Halt was called
	stopDeadline                   // next event lies beyond the slice deadline
	stopLimit                      // simulated time passed the cycle limit
)

// NewEngine returns an empty engine at cycle 0.
func NewEngine() *Engine {
	return &Engine{ctl: make(chan struct{})}
}

// Now returns the current simulated cycle.
//
//senss-lint:hotpath
func (e *Engine) Now() uint64 { return e.now }

// Schedule runs fn in engine context at absolute cycle at (>= Now).
//
//senss-lint:hotpath
func (e *Engine) Schedule(at uint64, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.q.push(event{at: at, seq: e.seq, fn: fn})
}

// After runs fn in engine context after delay cycles.
func (e *Engine) After(delay uint64, fn func()) { e.Schedule(e.now+delay, fn) }

// Halt stops the simulation at the end of the current event with the given
// reason. Used by the SENSS alarm: an authentication failure freezes the
// machine.
func (e *Engine) Halt(msg string) {
	e.halted = true
	e.haltMsg = msg
}

// Halted reports whether Halt was called, and the reason.
func (e *Engine) Halted() (bool, string) { return e.halted, e.haltMsg }

// Proc is a cooperative simulated thread of execution.
type Proc struct {
	e      *Engine
	wake   chan struct{}
	name   string
	parked bool
	done   bool
}

// Name returns the proc's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Engine returns the owning engine.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current simulated cycle.
//
//senss-lint:hotpath
func (p *Proc) Now() uint64 { return p.e.now }

// procAborted is the sentinel Sleep/Park panic with when the engine is
// tearing down; the Spawn wrapper recovers it and retires the proc.
type abortSentinel struct{}

var procAborted = abortSentinel{}

// Spawn creates a proc running fn, started at the current cycle (after
// already-queued events at this cycle).
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{e: e, wake: make(chan struct{}), name: name}
	e.live++
	e.procs = append(e.procs, p)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, aborted := r.(abortSentinel); !aborted {
					panic(r) // a genuine simulation bug keeps crashing loudly
				}
			}
			p.done = true
			e.live--
			e.retire(p)
		}()
		<-p.wake // wait for the start event to hand us the token
		if e.aborting {
			return // unwound before the program ever ran
		}
		fn(p)
	}()
	e.seq++
	e.q.push(event{at: e.now, seq: e.seq, p: p}) // the start event
	return p
}

// dispatch pops and runs events while the caller holds the run token,
// until the token must leave it. self is the proc giving up the token (it
// has already scheduled its own resumption, or parked), or nil when the
// engine dispatches from RunUntil.
//
// It returns true only when self's own resumption event came up — the
// caller keeps the token and simply continues, with no channel traffic at
// all (the common case whenever other procs are blocked or idle this
// cycle). On false the token has moved: to another proc (one channel
// send), or back to the engine with e.stop recording why.
//
// fn events run inline under the caller's goroutine; they are engine
// context either way because their code never blocks or sleeps.
//
//senss-lint:hotpath
func (e *Engine) dispatch(self *Proc) bool {
	for {
		at, ok := e.q.peekAt()
		if !ok {
			return e.handback(self, stopEmpty)
		}
		if e.halted {
			return e.handback(self, stopHalt)
		}
		if at > e.deadline {
			return e.handback(self, stopDeadline)
		}
		ev := e.q.popAt(at)
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.at
		if e.limit != 0 && e.now > e.limit {
			return e.handback(self, stopLimit)
		}
		if ev.p == nil {
			ev.fn()
			continue
		}
		if ev.p == self {
			return true
		}
		if ev.p.done {
			panic(fmt.Sprintf("sim: resuming finished proc %q", ev.p.name))
		}
		ev.p.parked = false
		ev.p.wake <- struct{}{}
		if self == nil {
			// The engine keeps waiting here until a proc stops the
			// slice and hands the token back through ctl.
			<-e.ctl
		}
		return false
	}
}

// handback routes the run token to the engine with the given stop reason.
// A proc does it over ctl (RunUntil's dispatch is blocked receiving); the
// engine's own dispatch just returns.
//
//senss-lint:hotpath
func (e *Engine) handback(self *Proc, why stopReason) bool {
	e.stop = why
	if self != nil {
		e.ctl <- struct{}{}
	}
	return false
}

// retire runs as the final act of a proc's goroutine, which still holds
// the run token: during teardown it returns the token to Abort, otherwise
// it dispatches onward like a Sleep that never wakes.
func (e *Engine) retire(p *Proc) {
	if e.aborting {
		e.ctl <- struct{}{}
		return
	}
	if e.dispatch(p) {
		panic(fmt.Sprintf("sim: event scheduled for finished proc %q", p.name))
	}
}

// Sleep suspends the proc for d simulated cycles (0 means yield to other
// events at this cycle).
//
//senss-lint:hotpath
func (p *Proc) Sleep(d uint64) {
	e := p.e
	e.seq++
	e.q.push(event{at: e.now + d, seq: e.seq, p: p})
	if e.dispatch(p) {
		return // own resumption was next: keep the token
	}
	<-p.wake
	if e.aborting {
		panic(procAborted)
	}
}

// Park suspends the proc indefinitely; another party must wake it via a
// Queue or Engine.Unpark.
//
//senss-lint:hotpath
func (p *Proc) Park() {
	e := p.e
	p.parked = true
	if e.dispatch(p) {
		// An Unpark at this cycle was already queued before we parked.
		p.parked = false
		return
	}
	<-p.wake
	if e.aborting {
		panic(procAborted)
	}
}

// Unpark schedules parked proc q to resume at the current cycle. It may be
// called from engine context or from another running proc.
//
//senss-lint:hotpath
func (e *Engine) Unpark(q *Proc) {
	e.seq++
	e.q.push(event{at: e.now, seq: e.seq, p: q})
}

// DeadlockError reports that no events remain while procs are still alive.
type DeadlockError struct {
	Cycle  uint64
	Parked []string
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at cycle %d, parked procs: %v", d.Cycle, d.Parked)
}

// LimitError reports that the run exceeded the configured cycle limit.
type LimitError struct{ Limit uint64 }

func (l *LimitError) Error() string {
	return fmt.Sprintf("sim: exceeded cycle limit %d (livelock?)", l.Limit)
}

// SetLimit aborts Run with a LimitError once simulated time passes limit
// cycles. Zero disables the limit.
func (e *Engine) SetLimit(limit uint64) { e.limit = limit }

// Run processes events until none remain or the engine halts. It returns a
// *DeadlockError if procs are still alive with an empty event queue, and a
// *LimitError if the cycle limit is exceeded.
//
//senss-lint:hotpath
func (e *Engine) Run() error {
	_, err := e.RunUntil(^uint64(0))
	return err
}

// RunUntil processes events whose cycle is <= deadline, then stops with
// the clock advanced to deadline. It returns done == true when the
// simulation finished (no events remain, the engine halted, or an error
// ended the run) and done == false when events beyond the deadline are
// still pending. Slicing is invisible to the simulation: events are
// dispatched in exactly the (cycle, sequence) order Run would use, so a
// run chopped into arbitrary slices retires the same events at the same
// cycles and produces bit-identical state — the property the serving
// layer's incremental sessions (internal/driver.Session) rely on.
//
//senss-lint:hotpath
func (e *Engine) RunUntil(deadline uint64) (done bool, err error) {
	e.deadline = deadline
	e.dispatch(nil)
	switch e.stop {
	case stopDeadline:
		// The slice is exhausted: advance the clock so the next
		// slice's deadline moves forward even across empty gaps.
		// This never affects the final state — completion below
		// happens while popping events, with now at the last event.
		if deadline > e.now {
			e.now = deadline
		}
		return false, nil
	case stopHalt:
		return true, nil
	case stopLimit:
		//senss-lint:ignore hotpath failure path: the run is over, one error record is fine
		return true, &LimitError{Limit: e.limit}
	default: // stopEmpty
		if e.live > 0 {
			//senss-lint:ignore hotpath failure path: the run is over, one error record is fine
			return true, &DeadlockError{Cycle: e.now, Parked: e.parkedNames()}
		}
		return true, nil
	}
}

// Abort tears the simulation down mid-run: every live proc — parked,
// sleeping, or not yet started — is resumed once into a sentinel panic
// that unwinds its goroutine, and the event queue is dropped. Must be
// called from engine-caller context (never from inside a proc or event
// callback). The engine is unusable afterwards; counters and the clock
// remain readable. Idempotent.
func (e *Engine) Abort() {
	e.aborting = true
	for _, p := range e.procs {
		if !p.done {
			p.wake <- struct{}{} // wakes into the sentinel panic…
			<-e.ctl              // …whose retire hands the token back
		}
	}
	e.procs = nil
	e.q.reset()
}

// parkedNames describes the still-live procs for the deadlock report.
//
//senss-lint:coldpath deadlock diagnostics: runs once, after the simulation is already dead
func (e *Engine) parkedNames() []string {
	// The engine does not keep a registry of procs; deadlock is rare and
	// diagnostic-only, so report the count when names are unavailable.
	return []string{fmt.Sprintf("%d live procs", e.live)}
}

// Queue is a FIFO wait queue for procs — the building block for the bus
// arbiter, simulated mutexes, and condition variables.
type Queue struct {
	waiters []*Proc
}

// Wait appends the calling proc and parks it until woken.
//
//senss-lint:hotpath
func (q *Queue) Wait(p *Proc) {
	//senss-lint:ignore hotpath amortized growth: the waiter list reaches steady-state capacity after warmup
	q.waiters = append(q.waiters, p)
	p.Park()
}

// Len returns the number of parked waiters.
//
//senss-lint:hotpath
func (q *Queue) Len() int { return len(q.waiters) }

// WakeOne unparks the oldest waiter, if any, and reports whether one existed.
//
//senss-lint:hotpath
func (q *Queue) WakeOne(e *Engine) bool {
	if len(q.waiters) == 0 {
		return false
	}
	p := q.waiters[0]
	copy(q.waiters, q.waiters[1:])
	q.waiters = q.waiters[:len(q.waiters)-1]
	e.Unpark(p)
	return true
}

// WakeAll unparks every waiter in FIFO order.
//
//senss-lint:hotpath
func (q *Queue) WakeAll(e *Engine) {
	for _, p := range q.waiters {
		e.Unpark(p)
	}
	q.waiters = q.waiters[:0]
}

// Mutex is a FIFO simulated-time mutex.
type Mutex struct {
	held bool
	q    Queue
}

// Lock acquires the mutex, parking the proc until it is granted.
//
//senss-lint:hotpath
func (m *Mutex) Lock(p *Proc) {
	for m.held {
		m.q.Wait(p)
	}
	m.held = true
}

// Unlock releases the mutex and wakes the next waiter.
//
//senss-lint:hotpath
func (m *Mutex) Unlock(p *Proc) {
	if !m.held {
		panic("sim: unlock of unlocked mutex")
	}
	m.held = false
	m.q.WakeOne(p.e)
}
