// Package sim is a deterministic discrete-event simulation engine with
// cooperative green threads ("procs").
//
// The SMP model is written in blocking style: each simulated processor runs
// its program inside a proc; memory-hierarchy layers charge simulated cycles
// by calling Sleep, and contention points (the bus arbiter, spinlocks) are
// expressed with wait queues.  Exactly one proc executes at a time — the
// engine hands a single run token to whichever event is next in (cycle,
// sequence) order — so the whole simulation is single-threaded in effect and
// bit-reproducible for a fixed seed, which DESIGN.md §6 requires.
package sim

import (
	"container/heap"
	"fmt"
)

// event is a scheduled occurrence: either an engine-context callback or the
// resumption of a parked proc.
type event struct {
	at   uint64
	seq  uint64
	fn   func()
	proc *Proc
}

// eventHeap orders events by (cycle, insertion sequence).
type eventHeap []*event

//senss-lint:hotpath
func (h eventHeap) Len() int { return len(h) }

//senss-lint:hotpath
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

//senss-lint:hotpath
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

//senss-lint:hotpath
func (h *eventHeap) Push(x any) {
	//senss-lint:ignore hotpath amortized growth: the heap reaches steady-state capacity after warmup
	*h = append(*h, x.(*event))
}

//senss-lint:hotpath
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine owns simulated time and the run token.
type Engine struct {
	now    uint64
	seq    uint64
	events eventHeap
	// free recycles event records: the steady state schedules and retires
	// one event per Sleep/Unpark, so without a freelist every simulated
	// cycle heap-allocates (hotpath discipline, DESIGN.md §13).
	free []*event
	// yield receives control back from the currently running proc.
	yield chan struct{}
	live  int // procs spawned and not yet finished
	// procs registers every spawned proc so Abort can reach the ones
	// parked outside the event heap (wait queues hold them privately).
	procs    []*Proc
	limit    uint64
	halted   bool
	haltMsg  string
	aborting bool
}

// newEvent pops a recycled event record or allocates a fresh one.
//
//senss-lint:hotpath
func (e *Engine) newEvent(at, seq uint64, fn func(), proc *Proc) *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.fn, ev.proc = at, seq, fn, proc
		return ev
	}
	//senss-lint:ignore hotpath first-touch growth: the freelist feeds every later steady-state event
	return &event{at: at, seq: seq, fn: fn, proc: proc}
}

// releaseEvent returns a retired event record to the freelist. The caller
// must not hold any reference to ev afterwards.
//
//senss-lint:hotpath
func (e *Engine) releaseEvent(ev *event) {
	ev.fn, ev.proc = nil, nil
	//senss-lint:ignore hotpath amortized growth: the freelist reaches steady-state capacity after warmup
	e.free = append(e.free, ev)
}

// NewEngine returns an empty engine at cycle 0.
func NewEngine() *Engine {
	return &Engine{yield: make(chan struct{})}
}

// Now returns the current simulated cycle.
//
//senss-lint:hotpath
func (e *Engine) Now() uint64 { return e.now }

// Schedule runs fn in engine context at absolute cycle at (>= Now).
//
//senss-lint:hotpath
func (e *Engine) Schedule(at uint64, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.events, e.newEvent(at, e.seq, fn, nil))
}

// After runs fn in engine context after delay cycles.
func (e *Engine) After(delay uint64, fn func()) { e.Schedule(e.now+delay, fn) }

// Halt stops the simulation at the end of the current event with the given
// reason. Used by the SENSS alarm: an authentication failure freezes the
// machine.
func (e *Engine) Halt(msg string) {
	e.halted = true
	e.haltMsg = msg
}

// Halted reports whether Halt was called, and the reason.
func (e *Engine) Halted() (bool, string) { return e.halted, e.haltMsg }

// Proc is a cooperative simulated thread of execution.
type Proc struct {
	e      *Engine
	wake   chan struct{}
	name   string
	parked bool
	done   bool
}

// Name returns the proc's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Engine returns the owning engine.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current simulated cycle.
//
//senss-lint:hotpath
func (p *Proc) Now() uint64 { return p.e.now }

// procAborted is the sentinel Sleep/Park panic with when the engine is
// tearing down; the Spawn wrapper recovers it and retires the proc.
type abortSentinel struct{}

var procAborted = abortSentinel{}

// Spawn creates a proc running fn, started at the current cycle (after
// already-queued events at this cycle).
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{e: e, wake: make(chan struct{}), name: name}
	e.live++
	e.procs = append(e.procs, p)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, aborted := r.(abortSentinel); !aborted {
					panic(r) // a genuine simulation bug keeps crashing loudly
				}
			}
			p.done = true
			e.live--
			e.yield <- struct{}{}
		}()
		<-p.wake // wait for the start event to hand us the token
		if e.aborting {
			return // unwound before the program ever ran
		}
		fn(p)
	}()
	e.Schedule(e.now, func() { e.resume(p) })
	return p
}

// resume hands the run token to p and waits for it to come back. Engine
// context only.
//
//senss-lint:hotpath
func (e *Engine) resume(p *Proc) {
	if p.done {
		panic(fmt.Sprintf("sim: resuming finished proc %q", p.name))
	}
	p.parked = false
	p.wake <- struct{}{}
	<-e.yield
}

// Sleep suspends the proc for d simulated cycles (0 means yield to other
// events at this cycle).
//
//senss-lint:hotpath
func (p *Proc) Sleep(d uint64) {
	e := p.e
	e.seq++
	heap.Push(&e.events, e.newEvent(e.now+d, e.seq, nil, p))
	e.yield <- struct{}{}
	<-p.wake
	if e.aborting {
		panic(procAborted)
	}
}

// Park suspends the proc indefinitely; another party must wake it via a
// Queue or Engine.Unpark.
//
//senss-lint:hotpath
func (p *Proc) Park() {
	p.parked = true
	p.e.yield <- struct{}{}
	<-p.wake
	if p.e.aborting {
		panic(procAborted)
	}
}

// Unpark schedules parked proc q to resume at the current cycle. It may be
// called from engine context or from another running proc.
//
//senss-lint:hotpath
func (e *Engine) Unpark(q *Proc) {
	e.seq++
	heap.Push(&e.events, e.newEvent(e.now, e.seq, nil, q))
}

// DeadlockError reports that no events remain while procs are still alive.
type DeadlockError struct {
	Cycle  uint64
	Parked []string
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at cycle %d, parked procs: %v", d.Cycle, d.Parked)
}

// LimitError reports that the run exceeded the configured cycle limit.
type LimitError struct{ Limit uint64 }

func (l *LimitError) Error() string {
	return fmt.Sprintf("sim: exceeded cycle limit %d (livelock?)", l.Limit)
}

// SetLimit aborts Run with a LimitError once simulated time passes limit
// cycles. Zero disables the limit.
func (e *Engine) SetLimit(limit uint64) { e.limit = limit }

// Run processes events until none remain or the engine halts. It returns a
// *DeadlockError if procs are still alive with an empty event queue, and a
// *LimitError if the cycle limit is exceeded.
//
//senss-lint:hotpath
func (e *Engine) Run() error {
	_, err := e.RunUntil(^uint64(0))
	return err
}

// RunUntil processes events whose cycle is <= deadline, then stops with
// the clock advanced to deadline. It returns done == true when the
// simulation finished (no events remain, the engine halted, or an error
// ended the run) and done == false when events beyond the deadline are
// still pending. Slicing is invisible to the simulation: events are
// dispatched in exactly the (cycle, sequence) order Run would use, so a
// run chopped into arbitrary slices retires the same events at the same
// cycles and produces bit-identical state — the property the serving
// layer's incremental sessions (internal/driver.Session) rely on.
//
//senss-lint:hotpath
func (e *Engine) RunUntil(deadline uint64) (done bool, err error) {
	for len(e.events) > 0 {
		if e.halted {
			return true, nil
		}
		if e.events[0].at > deadline {
			// The slice is exhausted: advance the clock so the next
			// slice's deadline moves forward even across empty gaps.
			// This never affects the final state — completion below
			// happens while popping events, with now at the last event.
			if deadline > e.now {
				e.now = deadline
			}
			return false, nil
		}
		ev := heap.Pop(&e.events).(*event)
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.at
		if e.limit != 0 && e.now > e.limit {
			//senss-lint:ignore hotpath failure path: the run is over, one error record is fine
			return true, &LimitError{Limit: e.limit}
		}
		// Recycle the record before dispatch: nothing references it once
		// popped, and the dispatched proc/fn may schedule new events that
		// want it back.
		proc, fn := ev.proc, ev.fn
		e.releaseEvent(ev)
		if proc != nil {
			e.resume(proc)
		} else {
			fn()
		}
	}
	if e.live > 0 {
		//senss-lint:ignore hotpath failure path: the run is over, one error record is fine
		return true, &DeadlockError{Cycle: e.now, Parked: e.parkedNames()}
	}
	return true, nil
}

// Abort tears the simulation down mid-run: every live proc — parked,
// sleeping, or not yet started — is resumed once into a sentinel panic
// that unwinds its goroutine, and the event queue is dropped. Must be
// called from engine-caller context (never from inside a proc or event
// callback). The engine is unusable afterwards; counters and the clock
// remain readable. Idempotent.
func (e *Engine) Abort() {
	e.aborting = true
	for _, p := range e.procs {
		if !p.done {
			e.resume(p)
		}
	}
	e.procs = nil
	e.events = nil
	e.free = nil
}

// parkedNames describes the still-live procs for the deadlock report.
//
//senss-lint:coldpath deadlock diagnostics: runs once, after the simulation is already dead
func (e *Engine) parkedNames() []string {
	// The engine does not keep a registry of procs; deadlock is rare and
	// diagnostic-only, so report the count when names are unavailable.
	return []string{fmt.Sprintf("%d live procs", e.live)}
}

// Queue is a FIFO wait queue for procs — the building block for the bus
// arbiter, simulated mutexes, and condition variables.
type Queue struct {
	waiters []*Proc
}

// Wait appends the calling proc and parks it until woken.
//
//senss-lint:hotpath
func (q *Queue) Wait(p *Proc) {
	//senss-lint:ignore hotpath amortized growth: the waiter list reaches steady-state capacity after warmup
	q.waiters = append(q.waiters, p)
	p.Park()
}

// Len returns the number of parked waiters.
//
//senss-lint:hotpath
func (q *Queue) Len() int { return len(q.waiters) }

// WakeOne unparks the oldest waiter, if any, and reports whether one existed.
//
//senss-lint:hotpath
func (q *Queue) WakeOne(e *Engine) bool {
	if len(q.waiters) == 0 {
		return false
	}
	p := q.waiters[0]
	copy(q.waiters, q.waiters[1:])
	q.waiters = q.waiters[:len(q.waiters)-1]
	e.Unpark(p)
	return true
}

// WakeAll unparks every waiter in FIFO order.
//
//senss-lint:hotpath
func (q *Queue) WakeAll(e *Engine) {
	for _, p := range q.waiters {
		e.Unpark(p)
	}
	q.waiters = q.waiters[:0]
}

// Mutex is a FIFO simulated-time mutex.
type Mutex struct {
	held bool
	q    Queue
}

// Lock acquires the mutex, parking the proc until it is granted.
//
//senss-lint:hotpath
func (m *Mutex) Lock(p *Proc) {
	for m.held {
		m.q.Wait(p)
	}
	m.held = true
}

// Unlock releases the mutex and wakes the next waiter.
//
//senss-lint:hotpath
func (m *Mutex) Unlock(p *Proc) {
	if !m.held {
		panic("sim: unlock of unlocked mutex")
	}
	m.held = false
	m.q.WakeOne(p.e)
}
