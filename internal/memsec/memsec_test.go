package memsec

import (
	"bytes"
	"testing"

	"senss/internal/bus"
	"senss/internal/crypto"
	"senss/internal/crypto/aes"
	"senss/internal/mem"
	"senss/internal/rng"
)

func newLayer(t *testing.T, nprocs int, params Params) (*Layer, *mem.Store) {
	t.Helper()
	store := mem.New()
	r := rng.New(99)
	return New(store, crypto.MustBackend(crypto.Ref, aes.Block(r.Block16())), nprocs, params), store
}

func fetch(l *Layer, src int, addr uint64) ([]byte, uint64) {
	dst := make([]byte, mem.LineSize)
	extra := l.Fetch(&bus.Transaction{Kind: bus.Rd, Addr: addr, Src: src}, dst)
	return dst, extra
}

func store(l *Layer, src int, addr uint64, data []byte) uint64 {
	return l.Store(&bus.Transaction{Kind: bus.WB, Addr: addr, Src: src}, data)
}

func TestEncryptAllHidesPlaintext(t *testing.T) {
	l, st := newLayer(t, 2, Params{AESLatency: 80, PerfectSNC: true})
	st.WriteWord(0x100, 0xAABBCCDD)
	l.EncryptAll()
	if st.ReadWord(0x100) == 0xAABBCCDD {
		t.Error("memory still plaintext after EncryptAll")
	}
	if got := l.ReadWordDecrypted(0x100); got != 0xAABBCCDD {
		t.Errorf("decrypted view = %#x", got)
	}
}

func TestFetchDecrypts(t *testing.T) {
	l, st := newLayer(t, 2, Params{AESLatency: 80, PerfectSNC: true})
	st.WriteWord(0x200, 42)
	l.EncryptAll()
	line, _ := fetch(l, 0, 0x200)
	if got := mem.ReadWordFromLine(line, 0); got != 42 {
		t.Errorf("fetched %d", got)
	}
}

func TestStoreBumpsSequenceAndChangesCiphertext(t *testing.T) {
	l, st := newLayer(t, 2, Params{AESLatency: 80, PerfectSNC: true})
	data := make([]byte, mem.LineSize)
	for i := range data {
		data[i] = 0x77
	}
	store(l, 0, 0x300, data)
	ct1 := make([]byte, mem.LineSize)
	st.ReadLine(0x300, ct1)
	seq1 := l.Seq(0x300)

	store(l, 0, 0x300, data) // same plaintext again
	ct2 := make([]byte, mem.LineSize)
	st.ReadLine(0x300, ct2)
	if l.Seq(0x300) != seq1+1 {
		t.Error("sequence not bumped")
	}
	if bytes.Equal(ct1, ct2) {
		t.Error("same plaintext encrypted identically across writebacks (pad reuse!)")
	}
	line, _ := fetch(l, 1, 0x300)
	if !bytes.Equal(line, data) {
		t.Error("fetch after re-encryption returned wrong plaintext")
	}
}

func TestPerfectSNCNeverMisses(t *testing.T) {
	l, _ := newLayer(t, 2, Params{AESLatency: 80, PerfectSNC: true})
	data := make([]byte, mem.LineSize)
	store(l, 0, 0x400, data)
	if _, extra := fetch(l, 1, 0x400); extra != 0 {
		t.Errorf("perfect SNC charged %d extra cycles", extra)
	}
	if l.Stats.PadMisses != 0 {
		t.Error("perfect SNC recorded misses")
	}
}

func TestFiniteSNCMissAndHit(t *testing.T) {
	l, _ := newLayer(t, 2, Params{AESLatency: 80, PadEntries: 16})
	data := make([]byte, mem.LineSize)
	store(l, 0, 0x500, data)

	// First fetch by processor 1: its SNC is cold → AES exposed.
	if _, extra := fetch(l, 1, 0x500); extra != 80 {
		t.Errorf("cold fetch extra = %d, want 80", extra)
	}
	if addr, ok := l.TakePendingRequest(1); !ok || addr != 0x500 {
		t.Errorf("pending PadReq = %#x,%v", addr, ok)
	}
	// Second fetch: entry cached, pad generation overlaps.
	if _, extra := fetch(l, 1, 0x500); extra != 0 {
		t.Errorf("warm fetch extra = %d, want 0", extra)
	}
	if _, ok := l.TakePendingRequest(1); ok {
		t.Error("spurious pending PadReq")
	}
}

func TestWriterInvalidatesOtherPads(t *testing.T) {
	l, _ := newLayer(t, 2, Params{AESLatency: 80, PadEntries: 16})
	data := make([]byte, mem.LineSize)
	store(l, 0, 0x600, data)
	fetch(l, 1, 0x600)       // proc 1 warms its entry
	l.TakePendingRequest(1)  // clear the pending request
	store(l, 0, 0x600, data) // proc 0 writes back again: seq changes
	if _, extra := fetch(l, 1, 0x600); extra != 80 {
		t.Errorf("stale pad not treated as miss (extra=%d)", extra)
	}
}

func TestWriteUpdateKeepsOtherPadsFresh(t *testing.T) {
	l, _ := newLayer(t, 2, Params{AESLatency: 80, PadEntries: 16, WriteUpdate: true})
	data := make([]byte, mem.LineSize)
	store(l, 0, 0x600, data)
	fetch(l, 1, 0x600) // proc 1 warms its entry (cold miss)
	l.TakePendingRequest(1)
	store(l, 0, 0x600, data) // writer bumps the sequence
	// Write-update refreshed proc 1's entry in place: no miss, no AES.
	if _, extra := fetch(l, 1, 0x600); extra != 0 {
		t.Errorf("write-update left a stale pad (extra=%d)", extra)
	}
}

func TestWriteUpdateDoesNotWarmColdCaches(t *testing.T) {
	l, _ := newLayer(t, 2, Params{AESLatency: 80, PadEntries: 16, WriteUpdate: true})
	data := make([]byte, mem.LineSize)
	store(l, 0, 0x640, data)
	// Proc 1 never cached this pad: the update must not conjure an entry.
	if _, extra := fetch(l, 1, 0x640); extra != 80 {
		t.Errorf("cold fetch extra = %d, want 80", extra)
	}
}

func TestWriterOwnPadStaysFresh(t *testing.T) {
	l, _ := newLayer(t, 1, Params{AESLatency: 80, PadEntries: 16})
	data := make([]byte, mem.LineSize)
	store(l, 0, 0x700, data)
	if _, extra := fetch(l, 0, 0x700); extra != 0 {
		t.Errorf("writer's own pad stale after its writeback (extra=%d)", extra)
	}
}

func TestPadCacheLRUCapacity(t *testing.T) {
	l, _ := newLayer(t, 1, Params{AESLatency: 80, PadEntries: 2})
	data := make([]byte, mem.LineSize)
	for _, a := range []uint64{0x000, 0x040, 0x080} { // 3 lines, capacity 2
		store(l, 0, a, data)
	}
	// 0x000 is the LRU entry and must have been displaced.
	if _, extra := fetch(l, 0, 0x000); extra != 80 {
		t.Errorf("displaced entry fetched with extra=%d, want 80", extra)
	}
	if _, extra := fetch(l, 0, 0x080); extra != 0 {
		t.Errorf("recent entry missed (extra=%d)", extra)
	}
}

func TestLazyZeroLineEncryption(t *testing.T) {
	// A line never written before the program starts must still decrypt
	// to zeros when first fetched.
	l, _ := newLayer(t, 1, Params{AESLatency: 80, PerfectSNC: true})
	line, _ := fetch(l, 0, 0x12340)
	for i, b := range line {
		if b != 0 {
			t.Fatalf("byte %d of untouched line = %#x", i, b)
		}
	}
}

func TestCiphertextDiffersAcrossAddresses(t *testing.T) {
	// Same plaintext at two addresses must produce different ciphertext
	// (the pad folds the address in).
	l, st := newLayer(t, 1, Params{AESLatency: 80, PerfectSNC: true})
	st.WriteWord(0x000, 7)
	st.WriteWord(0x040, 7)
	l.EncryptAll()
	a := make([]byte, mem.LineSize)
	b := make([]byte, mem.LineSize)
	st.ReadLine(0x000, a)
	st.ReadLine(0x040, b)
	if bytes.Equal(a, b) {
		t.Error("identical ciphertext at different addresses")
	}
}
