// Package memsec implements the "fast memory encryption" cache-to-memory
// protection SENSS integrates (paper §2.1, §6.1, after Suh et al. and Yang
// et al.): every memory line is stored as ciphertext — plaintext XOR a pad
// derived as AES_K(address ‖ sequence-number) — with the sequence number
// bumped on every writeback so pads are never reused for new data.
//
// Each processor caches (address → sequence) entries in a pad cache / SNC;
// a hit lets pad generation fully overlap the DRAM access (zero exposed
// latency), a miss serializes the AES behind the fetch.  Pad changes are
// propagated with the write-invalidate messages the paper adds to the bus
// (PadInv on writeback, PadReq on a stale fetch — bus command encodings
// "01" and "10" of §7.1).
package memsec

import (
	"senss/internal/bus"
	"senss/internal/crypto"
	"senss/internal/crypto/aes"
	"senss/internal/mem"
)

// Params configures the layer.
type Params struct {
	AESLatency uint64 // pad generation latency when not overlapped
	PerfectSNC bool   // sequence-number cache never misses (paper §7.7)
	PadEntries int    // per-processor pad cache capacity when not perfect

	// WriteUpdate selects the §6.1 "write update" pad-coherence variant:
	// a writeback broadcasts the fresh sequence number (PadUpd) and every
	// other processor's pad entry is refreshed in place, so later fetches
	// never miss on staleness. The default is the paper's choice, "write
	// invalidate" (PadInv + on-demand PadReq).
	WriteUpdate bool
}

// Stats counts pad activity.
type Stats struct {
	PadHits     uint64
	PadMisses   uint64
	Encrypts    uint64
	Decrypts    uint64
	SeqBumps    uint64
	Invalidates uint64 // PadInv broadcasts issued
	Requests    uint64 // PadReq transactions issued
}

// padCache is one processor's (address → seen-sequence) cache with LRU
// replacement. Entries are stored by value: the steady state hits get/put
// once per protected memory access, and a pointer-valued map would
// heap-allocate an entry per insertion (hotpath discipline, DESIGN.md §13).
type padCache struct {
	entries  map[uint64]padEntry
	capacity int
	tick     uint64
}

type padEntry struct {
	seq uint64
	lru uint64
}

func newPadCache(capacity int) *padCache {
	return &padCache{entries: make(map[uint64]padEntry), capacity: capacity}
}

//senss-lint:hotpath
func (c *padCache) get(addr uint64) (uint64, bool) {
	e, ok := c.entries[addr]
	if !ok {
		return 0, false
	}
	c.tick++
	e.lru = c.tick
	c.entries[addr] = e
	return e.seq, true
}

//senss-lint:hotpath
func (c *padCache) put(addr, seq uint64) {
	if e, ok := c.entries[addr]; ok {
		e.seq = seq
		c.tick++
		e.lru = c.tick
		c.entries[addr] = e
		return
	}
	if c.capacity > 0 && len(c.entries) >= c.capacity {
		var victim uint64
		var oldest uint64 = ^uint64(0)
		// Min-accumulation over the total order (lru, addr): the result is
		// identical for every visit order, so map iteration is safe here.
		// The address tie-break keeps that true even if lru ticks were ever
		// to collide. The scan is also bounded by the pad-cache capacity,
		// so the hotpath waiver covers a short, allocation-free loop.
		//senss-lint:ignore determinism,hotpath min over the total order (lru, addr) is iteration-order-independent, bounded by capacity, and allocation-free
		for a, e := range c.entries {
			if e.lru < oldest || (e.lru == oldest && a < victim) {
				oldest, victim = e.lru, a
			}
		}
		delete(c.entries, victim)
	}
	c.tick++
	c.entries[addr] = padEntry{seq: seq, lru: c.tick}
}

//senss-lint:hotpath
func (c *padCache) drop(addr uint64) { delete(c.entries, addr) }

// Layer is the memory-encryption layer. It wraps the raw backing store as
// the bus.MemoryPort, holding the authoritative per-line sequence numbers.
type Layer struct {
	params  Params
	cipher  crypto.BlockCipher
	backing *mem.Store
	seq     map[uint64]uint64 // line address → current sequence (≥1 once touched)
	pads    []*padCache       // per processor

	// pendingReq/pendingSet record, per processor, the line whose fetch
	// just missed the pad cache; the node hook turns it into a PadReq
	// transaction. Flat per-PID slots, not a map: the slot is written and
	// consumed once per pad miss on the fill path.
	pendingReq []uint64
	pendingSet []bool

	// padScratch and storeScratch are reusable line-sized buffers for pad
	// material and ciphertext staging: without them every protected fetch
	// and writeback heap-allocates (hotpath discipline, DESIGN.md §13).
	// They are safe to share per layer because xorPad and Store never
	// nest within themselves.
	padScratch   []byte
	storeScratch []byte

	Stats Stats
}

// New creates the layer for nprocs processors over backing, deriving pads
// under cipher (any crypto.BlockCipher backend; the SHU key is bound at
// construction time by the caller).
func New(backing *mem.Store, cipher crypto.BlockCipher, nprocs int, params Params) *Layer {
	l := &Layer{
		params:     params,
		cipher:     cipher,
		backing:    backing,
		seq:        make(map[uint64]uint64),
		pendingReq: make([]uint64, nprocs),
		pendingSet: make([]bool, nprocs),
	}
	for i := 0; i < nprocs; i++ {
		capacity := params.PadEntries
		if params.PerfectSNC {
			capacity = 0 // unbounded
		}
		l.pads = append(l.pads, newPadCache(capacity))
	}
	return l
}

// pad computes the OTP material for one line: four AES blocks of
// AES_K(addr ‖ seq ‖ i).
//
//senss-lint:hotpath
func (l *Layer) pad(addr, seq uint64, dst []byte) {
	for i := 0; i*aes.BlockSize < len(dst); i++ {
		b := l.cipher.Encrypt(aes.BlockFromUint64(addr, seq<<8|uint64(i)))
		copy(dst[i*aes.BlockSize:], b[:])
	}
}

// xorPad XORs the pad for (addr, seq) into buf in place.
//
//senss-lint:hotpath
func (l *Layer) xorPad(addr, seq uint64, buf []byte) {
	if cap(l.padScratch) < len(buf) {
		//senss-lint:ignore hotpath first-touch growth: the scratch buffer reaches line size once and is reused
		l.padScratch = make([]byte, len(buf))
	}
	padBuf := l.padScratch[:len(buf)]
	l.pad(addr, seq, padBuf)
	for i := range buf {
		buf[i] ^= padBuf[i]
	}
}

// ensure lazily encrypts a line the first time the protected system touches
// it (initial image lines are encrypted by EncryptAll; this covers
// never-initialized zero lines).
//
//senss-lint:hotpath
func (l *Layer) ensure(addr uint64) uint64 {
	if s, ok := l.seq[addr]; ok {
		return s
	}
	l.seq[addr] = 1
	//senss-lint:ignore hotpath first-touch encryption runs once per line, off the steady state
	buf := make([]byte, mem.LineSize)
	l.backing.ReadLine(addr, buf)
	l.xorPad(addr, 1, buf)
	l.backing.WriteLine(addr, buf)
	l.Stats.Encrypts++
	return 1
}

// EncryptAll converts the current (plaintext) memory image to ciphertext —
// the "program load" step. Call once, after workload setup.
func (l *Layer) EncryptAll() {
	for _, addr := range l.backing.Touched() {
		l.ensure(addr)
	}
}

// Fetch implements bus.MemoryPort: decrypt the line for the requester,
// charging AES latency only when the requester's pad entry is stale or
// missing (SNC miss).
//
//senss-lint:hotpath
func (l *Layer) Fetch(t *bus.Transaction, dst []byte) uint64 {
	seq := l.ensure(t.Addr)
	l.backing.ReadLine(t.Addr, dst)
	l.xorPad(t.Addr, seq, dst)
	l.Stats.Decrypts++

	var extra uint64
	if l.params.PerfectSNC {
		// A perfect SNC (paper §7.7) always holds the fresh sequence, so
		// pad generation fully overlaps the DRAM access.
		l.Stats.PadHits++
		//senss-lint:ignore cycleacct perfect SNC: pad generation fully overlaps the DRAM access (§7.7)
		return 0
	}
	if t.Src >= 0 && t.Src < len(l.pads) {
		pc := l.pads[t.Src]
		if seen, ok := pc.get(t.Addr); ok && seen == seq {
			l.Stats.PadHits++
			// Pad generation fully overlaps the DRAM access.
		} else {
			l.Stats.PadMisses++
			extra = l.params.AESLatency
			l.pendingReq[t.Src] = t.Addr
			l.pendingSet[t.Src] = true
			pc.put(t.Addr, seq)
		}
	}
	return extra
}

// Store implements bus.MemoryPort: bump the sequence, encrypt under the
// fresh pad, and refresh the writer's pad entry. Pad generation overlaps
// the writeback, so no extra cycles are exposed.
//
//senss-lint:hotpath
func (l *Layer) Store(t *bus.Transaction, src []byte) uint64 {
	l.ensure(t.Addr)
	l.seq[t.Addr]++
	seq := l.seq[t.Addr]
	l.Stats.SeqBumps++
	if cap(l.storeScratch) < len(src) {
		//senss-lint:ignore hotpath first-touch growth: the scratch buffer reaches line size once and is reused
		l.storeScratch = make([]byte, len(src))
	}
	buf := l.storeScratch[:len(src)]
	copy(buf, src)
	l.xorPad(t.Addr, seq, buf)
	l.backing.WriteLine(t.Addr, buf)
	l.Stats.Encrypts++
	if !l.params.PerfectSNC {
		if t.Src >= 0 && t.Src < len(l.pads) {
			l.pads[t.Src].put(t.Addr, seq)
		}
		for pid, pc := range l.pads {
			if pid == t.Src {
				continue
			}
			if l.params.WriteUpdate {
				// Write-update (§6.1 variant): the PadUpd broadcast
				// refreshes entries that exist; processors not caching
				// the pad stay cold.
				if _, ok := pc.get(t.Addr); ok {
					pc.put(t.Addr, seq)
				}
			} else {
				// Write-invalidate (the paper's default): the PadInv
				// broadcast drops stale entries.
				pc.drop(t.Addr)
			}
		}
	}
	//senss-lint:ignore cycleacct pad generation overlaps the writeback; no cycles are exposed (§6.1)
	return 0
}

// TakePendingRequest returns (and clears) the line address whose fetch by
// pid just missed the pad cache — the node hook issues the corresponding
// PadReq bus transaction.
func (l *Layer) TakePendingRequest(pid int) (uint64, bool) {
	if pid < 0 || pid >= len(l.pendingSet) || !l.pendingSet[pid] {
		return 0, false
	}
	l.pendingSet[pid] = false
	l.Stats.Requests++
	return l.pendingReq[pid], true
}

// NoteInvalidate counts a PadInv/PadUpd broadcast (issued by the writer's
// hook).
func (l *Layer) NoteInvalidate() { l.Stats.Invalidates++ }

// WriteUpdate reports which pad-coherence variant is active.
func (l *Layer) WriteUpdate() bool { return l.params.WriteUpdate }

// ReadLineDecrypted reads the current plaintext of a line, bypassing
// timing — for validation, invariant checks, and the integrity layer's
// tree construction.
func (l *Layer) ReadLineDecrypted(addr uint64, dst []byte) {
	l.backing.ReadLine(addr, dst)
	if seq, ok := l.seq[addr]; ok {
		l.xorPad(addr, seq, dst)
	}
}

// ReadWordDecrypted reads one aligned plaintext word without timing.
func (l *Layer) ReadWordDecrypted(addr uint64) uint64 {
	la := mem.LineAddr(addr)
	buf := make([]byte, mem.LineSize)
	l.ReadLineDecrypted(la, buf)
	return mem.ReadWordFromLine(buf, addr-la)
}

// Seq exposes a line's current sequence number (tests).
func (l *Layer) Seq(addr uint64) uint64 { return l.seq[addr] }
