package machine

import (
	"strings"
	"testing"

	"senss/internal/core"
	"senss/internal/cpu"
	"senss/internal/crypto/aes"
	"senss/internal/psync"
	"senss/internal/sim"
	"senss/internal/stats"
)

// smallConfig shrinks the caches so tests exercise evictions quickly.
func smallConfig(procs int, mode SecurityMode) Config {
	cfg := DefaultConfig()
	cfg.Procs = procs
	cfg.Coherence.L1Size = 1 << 10
	cfg.Coherence.L2Size = 16 << 10
	cfg.CPU.CodeBytes = 1 << 10
	cfg.Security.Mode = mode
	cfg.Limit = 2_000_000_000
	return cfg
}

// counterProgram has every thread lock-increment a shared counter and then
// barrier. It exercises RMW, locks, barriers, and plain load/store sharing.
func counterProgram(m *Machine, procs, iters int) ([]cpu.Program, uint64, *psync.Barrier) {
	lockAddr := m.Alloc(64)
	counter := m.Alloc(64)
	barrierMem := m.Alloc(64)
	lock := psync.NewLock(lockAddr)
	bar := psync.NewBarrier(barrierMem, procs)
	progs := make([]cpu.Program, procs)
	for i := 0; i < procs; i++ {
		progs[i] = func(c *cpu.Port) {
			var ctx psync.Context
			for k := 0; k < iters; k++ {
				lock.Acquire(c)
				v := c.Load(counter)
				c.Store(counter, v+1)
				lock.Release(c)
			}
			bar.Wait(c, &ctx)
		}
	}
	return progs, counter, bar
}

func TestBaselineCounterCorrect(t *testing.T) {
	const procs, iters = 4, 100
	m := New(smallConfig(procs, SecurityOff))
	progs, counter, _ := counterProgram(m, procs, iters)
	run, err := m.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.ReadWord(counter); got != procs*iters {
		t.Errorf("counter = %d, want %d", got, procs*iters)
	}
	if run.Cycles == 0 || run.BusTotal == 0 || run.C2C == 0 {
		t.Errorf("implausible stats: %+v", run)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSenssModePreservesResultsAndCosts(t *testing.T) {
	const procs, iters = 4, 100
	base := New(smallConfig(procs, SecurityOff))
	bProgs, bCounter, _ := counterProgram(base, procs, iters)
	baseRun, err := base.Run(bProgs)
	if err != nil {
		t.Fatal(err)
	}

	cfg := smallConfig(procs, SecurityBus)
	cfg.Security.Senss.AuthInterval = 10
	sec := New(cfg)
	sProgs, sCounter, _ := counterProgram(sec, procs, iters)
	secRun, err := sec.Run(sProgs)
	if err != nil {
		t.Fatal(err)
	}

	if got := sec.ReadWord(sCounter); got != procs*iters {
		t.Errorf("secure counter = %d, want %d", got, procs*iters)
	}
	if got := base.ReadWord(bCounter); got != procs*iters {
		t.Errorf("base counter = %d, want %d", got, procs*iters)
	}
	if secRun.Cycles < baseRun.Cycles {
		t.Errorf("secure run faster than base: %d < %d", secRun.Cycles, baseRun.Cycles)
	}
	if secRun.AuthMsgs == 0 {
		t.Error("no authentication messages issued")
	}
	if halted, why := sec.Halted(); halted {
		t.Errorf("false alarm: %s", why)
	}
	if err := sec.CheckInvariants(); err != nil {
		t.Error(err)
	}
	slow := stats.SlowdownPct(baseRun, secRun)
	if slow < 0 || slow > 50 {
		t.Errorf("implausible slowdown %.2f%%", slow)
	}
}

func TestFullProtectionPreservesResults(t *testing.T) {
	const procs, iters = 2, 60
	cfg := smallConfig(procs, SecurityBusMem)
	cfg.Security.Integrity = true
	cfg.Coherence.L2Size = 4 << 10
	m := New(cfg)
	progs, counter, _ := counterProgram(m, procs, iters)
	// Add an eviction-heavy sweep on processor 0 so writebacks (and with
	// them pad invalidations and hash updates) certainly occur.
	sweep := m.Alloc(16 << 10)
	inner := progs[0]
	progs[0] = func(c *cpu.Port) {
		for i := uint64(0); i < (16<<10)/8; i++ {
			c.Store(sweep+i*8, i)
		}
		inner(c)
	}
	run, err := m.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	if halted, why := m.Halted(); halted {
		t.Fatalf("false alarm under full protection: %s", why)
	}
	if got := m.ReadWord(counter); got != procs*iters {
		t.Errorf("counter = %d, want %d", got, procs*iters)
	}
	if run.PadMsgs == 0 {
		t.Error("no pad-coherence messages with memory encryption on")
	}
	if run.HashOps == 0 {
		t.Error("no hash computations with integrity on")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestMemoryHoldsCiphertext verifies the §2.1 property: with memsec on,
// DRAM contents differ from the plaintext the processors see.
func TestMemoryHoldsCiphertext(t *testing.T) {
	cfg := smallConfig(1, SecurityBusMem)
	m := New(cfg)
	addr := m.Alloc(64)
	m.InitWord(addr, 0x1122334455667788)
	if _, err := m.Run([]cpu.Program{func(c *cpu.Port) {
		c.Load(addr)
	}}); err != nil {
		t.Fatal(err)
	}
	raw := m.Store.ReadWord(addr)
	if raw == 0x1122334455667788 {
		t.Error("memory holds plaintext despite encryption")
	}
	if got := m.Memsec.ReadWordDecrypted(addr); got != 0x1122334455667788 {
		t.Errorf("decrypted view = %#x", got)
	}
}

// TestMemoryTamperDetected flips a bit in DRAM behind the processors'
// backs; the CHash tree must halt the machine when the line is refetched.
func TestMemoryTamperDetected(t *testing.T) {
	cfg := smallConfig(1, SecurityBusMem)
	cfg.Security.Integrity = true
	cfg.Coherence.L2Size = 4 << 10 // tiny L2 so the array is evicted
	m := New(cfg)

	const words = 4096 // 32 KiB, 8x the L2
	arr := m.Alloc(words * 8)
	victim := arr // first line: certainly evicted after the sweep

	tampered := false
	prog := func(c *cpu.Port) {
		for i := uint64(0); i < words; i++ {
			c.Store(arr+i*8, i)
		}
		// By now the first lines were written back. Tamper memory directly
		// (the adversary does not advance simulated time).
		m.Store.Tamper(victim, 0x40)
		tampered = true
		c.Load(victim) // refetch: integrity must catch it
	}
	if _, err := m.Run([]cpu.Program{prog}); err != nil {
		t.Fatal(err)
	}
	halted, why := m.Halted()
	if !tampered {
		t.Fatal("test never tampered")
	}
	if !halted || !strings.Contains(why, "integrity") {
		t.Fatalf("tampering not detected (halted=%v, why=%q)", halted, why)
	}
}

func TestConfigValidate(t *testing.T) {
	good := smallConfig(4, SecurityBus)
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero procs", func(c *Config) { c.Procs = 0 }},
		{"too many procs", func(c *Config) { c.Procs = 64 }},
		{"line mismatch", func(c *Config) { c.Coherence.L2Line = 128 }},
		{"l1 not dividing l2", func(c *Config) { c.Coherence.L1Line = 48 }},
		{"no bus timing", func(c *Config) { c.Bus.BusCycle = 0 }},
		{"naive without bus mode", func(c *Config) { c.Security.Naive = true; c.Security.Mode = SecurityOff }},
		{"bad mask count", func(c *Config) { c.Security.Senss.Masks = 3 }},
	}
	for _, c := range cases {
		cfg := smallConfig(4, SecurityOff)
		c.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// TestNaiveBaselineCorrectButSlow: the §7.3 strawman must still compute
// correct results (its crypto round-trips) while costing far more than
// SENSS on the same workload.
func TestNaiveBaselineCorrectButSlow(t *testing.T) {
	const procs, iters = 4, 100
	senssCfg := smallConfig(procs, SecurityBus)
	senssCfg.Security.Senss.Perfect = true
	sm := New(senssCfg)
	sProgs, sCounter, _ := counterProgram(sm, procs, iters)
	senssRun, err := sm.Run(sProgs)
	if err != nil {
		t.Fatal(err)
	}

	naiveCfg := smallConfig(procs, SecurityBus)
	naiveCfg.Security.Naive = true
	nm := New(naiveCfg)
	nProgs, nCounter, _ := counterProgram(nm, procs, iters)
	naiveRun, err := nm.Run(nProgs)
	if err != nil {
		t.Fatal(err)
	}
	if got := nm.ReadWord(nCounter); got != procs*iters {
		t.Errorf("naive counter = %d", got)
	}
	if got := sm.ReadWord(sCounter); got != procs*iters {
		t.Errorf("senss counter = %d", got)
	}
	if naiveRun.Cycles <= senssRun.Cycles {
		t.Errorf("naive (%d cycles) not slower than SENSS (%d) — the §7.3 penalty vanished",
			naiveRun.Cycles, senssRun.Cycles)
	}
	if naiveRun.Label != "naive" {
		t.Errorf("label = %q", naiveRun.Label)
	}
}

// TestLazyIntegrityFasterButStillDetects reproduces the paper's remark
// that LHash-style lazy checking outperforms CHash while keeping the
// detection guarantee.
func TestLazyIntegrityFasterButStillDetects(t *testing.T) {
	build := func(lazy bool) (*Machine, uint64, []cpu.Program) {
		cfg := smallConfig(1, SecurityBusMem)
		cfg.Security.Integrity = true
		cfg.Security.Tree.Lazy = lazy
		cfg.Coherence.L2Size = 4 << 10
		m := New(cfg)
		const words = 4096
		arr := m.Alloc(words * 8)
		prog := func(c *cpu.Port) {
			for i := uint64(0); i < words; i++ {
				c.Store(arr+i*8, i)
			}
			for i := uint64(0); i < words; i += 8 {
				c.Load(arr + i*8)
			}
		}
		return m, arr, []cpu.Program{prog}
	}

	eager, _, progsE := build(false)
	eagerRun, err := eager.Run(progsE)
	if err != nil {
		t.Fatal(err)
	}
	lazy, _, progsL := build(true)
	lazyRun, err := lazy.Run(progsL)
	if err != nil {
		t.Fatal(err)
	}
	if h, why := lazy.Halted(); h {
		t.Fatalf("lazy false alarm: %s", why)
	}
	if lazyRun.Cycles >= eagerRun.Cycles {
		t.Errorf("lazy (%d cycles) not faster than eager CHash (%d)", lazyRun.Cycles, eagerRun.Cycles)
	}
	if lazyRun.HashOps == 0 {
		t.Error("lazy mode did no background hashing")
	}

	// Detection: tamper memory mid-run under lazy mode.
	m, arr, _ := build(true)
	const words = 4096
	prog := func(c *cpu.Port) {
		for i := uint64(0); i < words; i++ {
			c.Store(arr+i*8, i)
		}
		m.Store.Tamper(arr, 0x08)
		c.Load(arr)
	}
	if _, err := m.Run([]cpu.Program{prog}); err != nil {
		t.Fatal(err)
	}
	if halted, why := m.Halted(); !halted || !strings.Contains(why, "integrity") {
		t.Fatalf("lazy mode missed the tamper (halted=%v, %q)", halted, why)
	}
}

// TestBusTamperHaltsMachine wires a dropping adversary into a full machine
// and checks the SENSS alarm freezes it.
func TestBusTamperHaltsMachine(t *testing.T) {
	cfg := smallConfig(2, SecurityBus)
	cfg.Security.Senss.AuthInterval = 5
	m := New(cfg)
	progs, _, _ := counterProgram(m, 2, 200)
	m.Load()
	m.SetTamperer(&dropOnce{victim: 1, at: 3})
	run, err := m.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	if !run.Halted {
		t.Fatal("bus tampering did not halt the machine")
	}
	if !strings.Contains(run.HaltReason, "senss") {
		t.Errorf("unexpected halt reason %q", run.HaltReason)
	}
}

// dropOnce drops the first droppable message at or after sequence `at`
// for one victim.
type dropOnce struct {
	victim int
	at     uint64
	done   bool
}

func (d *dropOnce) Tamper(seq uint64, sender int, cipher []aes.Block) map[int][]core.Observed {
	if d.done || seq < d.at || sender == d.victim {
		return nil
	}
	d.done = true
	return map[int][]core.Observed{d.victim: nil}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() uint64 {
		m := New(smallConfig(4, SecurityBus))
		progs, _, _ := counterProgram(m, 4, 50)
		r, err := m.Run(progs)
		if err != nil {
			t.Fatal(err)
		}
		return r.Cycles
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nondeterministic: %d vs %d", a, b)
	}
}

func TestPerturbationChangesTiming(t *testing.T) {
	run := func(seed uint64) uint64 {
		cfg := smallConfig(4, SecurityOff)
		cfg.PerturbMax = 3
		cfg.PerturbSeed = seed
		m := New(cfg)
		progs, _, _ := counterProgram(m, 4, 50)
		r, err := m.Run(progs)
		if err != nil {
			t.Fatal(err)
		}
		return r.Cycles
	}
	if a, b := run(1), run(2); a == b {
		t.Error("perturbation seeds produced identical timing (variability study would be vacuous)")
	}
}

func TestMaskScarcityCostsCycles(t *testing.T) {
	run := func(masks int, perfect bool) stats.Run {
		cfg := smallConfig(4, SecurityBus)
		cfg.Security.Senss.Masks = masks
		cfg.Security.Senss.Perfect = perfect
		m := New(cfg)
		progs, _, _ := counterProgram(m, 4, 150)
		r, err := m.Run(progs)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	perfect := run(8, true)
	one := run(1, false)
	if one.MaskStalls == 0 {
		t.Error("single mask bank produced no stalls under contention")
	}
	if one.Cycles < perfect.Cycles {
		t.Errorf("1-mask run faster than perfect: %d < %d", one.Cycles, perfect.Cycles)
	}
}

// TestBarrierSynchronizes checks that no thread passes the barrier before
// all arrive.
func TestBarrierSynchronizes(t *testing.T) {
	const procs = 4
	m := New(smallConfig(procs, SecurityOff))
	barrierMem := m.Alloc(64)
	flag := m.Alloc(64)
	bar := psync.NewBarrier(barrierMem, procs)
	arrivals := make([]uint64, procs)
	departures := make([]uint64, procs)
	progs := make([]cpu.Program, procs)
	for i := 0; i < procs; i++ {
		i := i
		progs[i] = func(c *cpu.Port) {
			var ctx psync.Context
			c.Think(uint64(i) * 5000) // staggered arrivals
			arrivals[i] = c.Now()
			bar.Wait(c, &ctx)
			departures[i] = c.Now()
			c.Store(flag, 1)
		}
	}
	if _, err := m.Run(progs); err != nil {
		t.Fatal(err)
	}
	var lastArrival uint64
	for _, a := range arrivals {
		if a > lastArrival {
			lastArrival = a
		}
	}
	for i, d := range departures {
		if d < lastArrival {
			t.Errorf("thread %d left the barrier at %d before the last arrival at %d", i, d, lastArrival)
		}
	}
}

// TestEngineProcAttackerInterleaving: a raw engine proc (not a CPU) can
// coexist with program procs — used by attack scenarios.
func TestEngineProcCoexists(t *testing.T) {
	m := New(smallConfig(1, SecurityOff))
	addr := m.Alloc(64)
	observed := uint64(0)
	m.Load()
	m.Engine.Spawn("observer", func(p *sim.Proc) {
		p.Sleep(100_000)
		observed = m.ReadWord(addr)
	})
	if _, err := m.Run([]cpu.Program{func(c *cpu.Port) {
		c.Store(addr, 123)
		c.Think(200_000)
	}}); err != nil {
		t.Fatal(err)
	}
	if observed != 123 {
		t.Errorf("observer saw %d", observed)
	}
}
