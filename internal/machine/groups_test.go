package machine

import (
	"senss/internal/core"
	"testing"

	"senss/internal/cpu"
	"senss/internal/psync"
)

// TestTwoGroupsRunIsolated is the paper's Figure 1 scenario: two
// applications on disjoint processor subsets of one machine, each under
// its own SENSS group, both protected and both correct.
func TestTwoGroupsRunIsolated(t *testing.T) {
	cfg := smallConfig(4, SecurityBus)
	cfg.Security.Senss.AuthInterval = 10
	m := New(cfg)
	m.PlanGroup([]int{0, 1})
	m.PlanGroup([]int{2, 3})

	// Two independent lock-counter applications.
	mkApp := func() (progs [2]cpu.Program, counter uint64) {
		lock := psync.NewLock(m.Alloc(64))
		counter = m.Alloc(64)
		barrier := psync.NewBarrier(m.Alloc(64), 2)
		for i := 0; i < 2; i++ {
			progs[i] = func(c *cpu.Port) {
				var ctx psync.Context
				for k := 0; k < 80; k++ {
					lock.Acquire(c)
					c.Store(counter, c.Load(counter)+1)
					lock.Release(c)
				}
				barrier.Wait(c, &ctx)
			}
		}
		return progs, counter
	}
	appA, counterA := mkApp()
	appB, counterB := mkApp()

	run, err := m.Run([]cpu.Program{appA[0], appA[1], appB[0], appB[1]})
	if err != nil {
		t.Fatal(err)
	}
	if halted, why := m.Halted(); halted {
		t.Fatalf("false alarm with two groups: %s", why)
	}
	if got := m.ReadWord(counterA); got != 160 {
		t.Errorf("app A counter = %d, want 160", got)
	}
	if got := m.ReadWord(counterB); got != 160 {
		t.Errorf("app B counter = %d, want 160", got)
	}
	if run.AuthMsgs == 0 {
		t.Error("no authentication traffic")
	}

	// The two groups exist with disjoint membership, and non-members know
	// nothing about the other group (all-zero matrix rows).
	gidA := m.Nodes[0].GID
	gidB := m.Nodes[2].GID
	if gidA == gidB {
		t.Fatal("both applications share a GID")
	}
	if m.Senss.SHU(0).Members(gidB) != 0 || m.Senss.SHU(2).Members(gidA) != 0 {
		t.Error("bit matrix leaks cross-group membership")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestFullDispatchEstablishment runs the complete §4.1 handshake path:
// RSA key pairs per processor, session key wrapped per member, image MAC
// verified, IVs broadcast — then an actual protected run on top.
func TestFullDispatchEstablishment(t *testing.T) {
	if testing.Short() {
		t.Skip("RSA keygen in short mode")
	}
	cfg := smallConfig(2, SecurityBus)
	cfg.Security.FullDispatch = true
	cfg.Security.Senss.AuthInterval = 10
	m := New(cfg)
	progs, counter, _ := counterProgram(m, 2, 60)
	run, err := m.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	if halted, why := m.Halted(); halted {
		t.Fatalf("false alarm after dispatch: %s", why)
	}
	if got := m.ReadWord(counter); got != 120 {
		t.Errorf("counter = %d", got)
	}
	if run.AuthMsgs == 0 {
		t.Error("no authentication after dispatched establishment")
	}
}

// TestPlanGroupRejectsOverlap verifies the one-application-per-processor
// restriction.
func TestPlanGroupRejectsOverlap(t *testing.T) {
	m := New(smallConfig(4, SecurityBus))
	m.PlanGroup([]int{0, 1})
	defer func() {
		if recover() == nil {
			t.Error("overlapping group accepted")
		}
	}()
	m.PlanGroup([]int{1, 2})
}

// TestPlanGroupRequiresSenss verifies the guard on unprotected machines.
func TestPlanGroupRequiresSenss(t *testing.T) {
	m := New(smallConfig(2, SecurityOff))
	defer func() {
		if recover() == nil {
			t.Error("PlanGroup without SENSS accepted")
		}
	}()
	m.PlanGroup([]int{0})
}

// TestShutdownReclaimsGIDs: after a run, Shutdown must free every GID and
// clear the member matrices (§5.2 reclamation).
func TestShutdownReclaimsGIDs(t *testing.T) {
	cfg := smallConfig(4, SecurityBus)
	m := New(cfg)
	m.PlanGroup([]int{0, 1})
	m.PlanGroup([]int{2, 3})
	progs, _, _ := counterProgram(m, 4, 20)
	if _, err := m.Run(progs); err != nil {
		t.Fatal(err)
	}
	gidA := m.Nodes[0].GID
	if !m.Groups.Occupied(gidA) {
		t.Fatal("group not allocated during run")
	}
	m.Shutdown()
	if m.Groups.Free() != core.MaxGroups {
		t.Errorf("free GIDs = %d, want all %d reclaimed", m.Groups.Free(), core.MaxGroups)
	}
	if m.Senss.SHU(0).Members(gidA) != 0 {
		t.Error("matrix row survives shutdown")
	}
	if m.Nodes[0].GID != -1 {
		t.Error("node still tagged with a GID")
	}
	// Shutdown is idempotent.
	m.Shutdown()
}

// TestGroupsGetSeparateTextRegions guards the fix for cross-group code
// sharing: with two groups, the per-processor code bases must differ
// between groups and match within one.
func TestGroupsGetSeparateTextRegions(t *testing.T) {
	cfg := smallConfig(4, SecurityBus)
	m := New(cfg)
	m.PlanGroup([]int{0, 1})
	m.PlanGroup([]int{2, 3})
	m.Load()
	if m.nodeCode[0] != m.nodeCode[1] || m.nodeCode[2] != m.nodeCode[3] {
		t.Error("group members do not share text")
	}
	if m.nodeCode[0] == m.nodeCode[2] {
		t.Error("different groups share a text region")
	}
}
