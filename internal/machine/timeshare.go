package machine

import (
	"fmt"

	"senss/internal/core"
	"senss/internal/cpu"
	"senss/internal/sim"
	"senss/internal/stats"
)

// Time-sharing (paper §4.2): two applications share the same processors,
// alternating by quantum. At every switch the outgoing group is quiesced
// at operation boundaries, each member SHU's session context is encrypted
// and "written out" (Suspend), the incoming group's contexts are restored
// (Resume), and the bus tags flip to the incoming GID. The OS drives the
// schedule but only ever handles opaque encrypted contexts.

// timeSharedGroup is the scheduler's view of one application.
type timeSharedGroup struct {
	gid      int
	programs []cpu.Program
	gate     *cpu.Gate
	running  int
	saved    []*core.SavedContext // non-nil while swapped out
	seed     uint64
}

// RunTimeShared runs appA and appB on the same processors under SENSS,
// alternating every quantum cycles. Both applications must have at most
// Procs programs. Requires SecurityBus (or higher) and must be the
// machine's only Run call.
func (m *Machine) RunTimeShared(appA, appB []cpu.Program, quantum uint64) (stats.Run, error) {
	if m.Senss == nil {
		return stats.Run{}, fmt.Errorf("machine: time-sharing requires SENSS")
	}
	if len(appA) > m.Config.Procs || len(appB) > m.Config.Procs {
		return stats.Run{}, fmt.Errorf("machine: too many programs for %d processors", m.Config.Procs)
	}
	if quantum == 0 {
		return stats.Run{}, fmt.Errorf("machine: zero quantum")
	}
	m.Load() // establishes the default group over all processors → group A

	all := make([]int, m.Config.Procs)
	for i := range all {
		all[i] = i
	}
	a := &timeSharedGroup{gid: m.GID, programs: appA, gate: &cpu.Gate{}, seed: 101}
	b := &timeSharedGroup{gid: m.establishGroup(all), programs: appB, gate: &cpu.Gate{}, seed: 202}
	m.planned = append(m.planned, all) // so Shutdown reclaims group B too

	// Group A starts active; B's programs park at their first operation.
	for _, pid := range all {
		m.Nodes[pid].GID = a.gid
	}
	b.gate.Close()

	spawn := func(g *timeSharedGroup) {
		for i, prog := range g.programs {
			if prog == nil {
				continue
			}
			g.running++
			node := m.Nodes[i]
			prog := prog
			params := m.Config.CPU
			params.CodeBase = m.nodeCode[i]
			params.Gate = g.gate
			m.Engine.Spawn(fmt.Sprintf("cpu%d-g%d", i, g.gid), func(p *sim.Proc) {
				port := cpu.NewPort(p, node, params)
				prog(port)
				port.Done = true
				g.running--
				g.gate.NoteExit(m.Engine)
			})
		}
	}
	spawn(a)
	spawn(b)

	m.Engine.Spawn("scheduler", func(p *sim.Proc) {
		active, other := a, b
		for a.running > 0 || b.running > 0 {
			p.Sleep(quantum)
			if halted, _ := m.Engine.Halted(); halted {
				return
			}
			if other.running == 0 {
				if active.running == 0 {
					return
				}
				continue // nothing to switch to
			}
			m.swapGroups(p, active, other)
			active, other = other, active
		}
	})

	err := m.Engine.Run()
	run := m.Collect()
	if err != nil {
		return run, err
	}
	return run, nil
}

// swapGroups quiesces `from`, suspends its SHU contexts, restores `to`,
// and flips the bus tags — one §4.2 context switch.
func (m *Machine) swapGroups(p *sim.Proc, from, to *timeSharedGroup) {
	m.SwapCount++
	from.gate.Close()
	from.gate.WaitQuiesce(p, func() int { return from.running })

	// Encrypt the outgoing group's contexts (they leave the chip).
	if from.running > 0 || from.saved == nil {
		from.seed++
		from.saved = make([]*core.SavedContext, m.Config.Procs)
		for pid := 0; pid < m.Config.Procs; pid++ {
			saved, err := m.Senss.SHU(pid).Suspend(from.gid, from.seed)
			if err != nil {
				panic(fmt.Sprintf("machine: suspend group %d on cpu%d: %v", from.gid, pid, err))
			}
			from.saved[pid] = saved
		}
	}

	// Restore the incoming group's contexts, if it was ever swapped out.
	if to.saved != nil {
		key := m.groupKeys[to.gid]
		for pid := 0; pid < m.Config.Procs; pid++ {
			if err := m.Senss.SHU(pid).Resume(to.saved[pid], key); err != nil {
				m.Engine.Halt(fmt.Sprintf("senss: context swap-in rejected: %v", err))
				return
			}
		}
		to.saved = nil
	}

	for pid := 0; pid < m.Config.Procs; pid++ {
		m.Nodes[pid].GID = to.gid
	}
	to.gate.Open(m.Engine)
}
