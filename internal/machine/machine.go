// Package machine assembles the full simulated SMP — processors, caches,
// snooping bus, memory — together with the SENSS security layer and the
// cache-to-memory protection (memsec pads, CHash integrity tree), from a
// single Config mirroring the paper's Figure 5.
package machine

import (
	"fmt"

	"senss/internal/bus"
	"senss/internal/cache"
	"senss/internal/coherence"
	"senss/internal/core"
	"senss/internal/cpu"
	"senss/internal/crypto"
	"senss/internal/crypto/aes"
	"senss/internal/integrity"
	"senss/internal/mem"
	"senss/internal/memsec"
	"senss/internal/oracle"
	"senss/internal/rng"
	"senss/internal/sim"
	"senss/internal/stats"
	"senss/internal/trace"
)

// SecurityMode selects which protection layers are active.
type SecurityMode int

// Security modes.
const (
	// SecurityOff is the unprotected baseline SMP.
	SecurityOff SecurityMode = iota
	// SecurityBus enables SENSS bus encryption + authentication only
	// (the paper's Figures 6-9 configuration).
	SecurityBus
	// SecurityBusMem adds the cache-to-memory protection: OTP memory
	// encryption and, if Integrity is set, the CHash tree (Figure 10).
	SecurityBusMem
)

// String names the mode.
func (m SecurityMode) String() string {
	switch m {
	case SecurityOff:
		return "base"
	case SecurityBus:
		return "senss"
	case SecurityBusMem:
		return "senss+mem"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// SecurityConfig bundles the protection-layer parameters.
type SecurityConfig struct {
	Mode      SecurityMode
	Senss     core.Params
	Memsec    memsec.Params
	Integrity bool
	Tree      integrity.Params

	// TreeWarmBytes bounds how much of each L2 is pre-loaded with upper
	// hash-tree levels at program load (the paper's steady-state
	// assumption). Zero selects the default, L2 size / 32.
	TreeWarmBytes int

	// Naive replaces the SENSS bus protection with the §7.3 strawman:
	// direct per-transfer encryption + unchained per-message MACs. Only
	// meaningful with Mode == SecurityBus; used by the ablation that
	// quantifies why the paper dismisses it.
	Naive bool

	// FullDispatch establishes every group through the complete §4.1
	// program-dispatch handshake — RSA processor key pairs, session-key
	// wrapping, image MAC, IV broadcast — instead of installing session
	// state directly. Slower to set up (RSA key generation) but exercises
	// the Figure 1 flow end to end.
	FullDispatch bool

	// DispatchKeyBits sizes the RSA processor keys for FullDispatch
	// (default 512 — reproduction scale; see internal/crypto/rsa).
	DispatchKeyBits int
}

// Config describes a machine.
type Config struct {
	Procs     int
	Coherence coherence.Params
	Bus       bus.Timing
	CPU       cpu.Params
	Security  SecurityConfig

	Seed  uint64 // machine randomness (keys, IVs); also the default workload seed
	Limit uint64 // cycle limit guarding against livelock (0 = default)

	// PerturbMax adds a deterministic 0..PerturbMax-cycle jitter to every
	// bus transaction (seeded by PerturbSeed) — the §7.8 variability study.
	PerturbMax  uint64
	PerturbSeed uint64

	// TraceLimit, when non-zero, records up to that many bus transactions
	// into Machine.Trace for offline analysis (cost-free observation).
	TraceLimit int

	// Oracle runs the untimed lockstep reference models (internal/oracle)
	// against every bus transaction and SENSS transfer, halting on the
	// first divergence. The checker charges zero cycles, so cycle counts
	// are identical with it on or off. OracleWindow sizes the replay-trace
	// event ring (0 = default).
	Oracle       bool
	OracleWindow int
}

// DefaultConfig returns the paper's Figure 5 parameters with 4 processors,
// a 1 MB L2, and security off.
func DefaultConfig() Config {
	return Config{
		Procs: 4,
		Coherence: coherence.Params{
			L1Size: 64 << 10, L1Ways: 2, L1Line: 32,
			L2Size: 1 << 20, L2Ways: 4, L2Line: 64,
			L1HitLat: 2, L2HitLat: 10, StoreLat: 2, RMWLat: 4,
		},
		Bus: bus.Timing{
			BusCycle: 10, C2CLat: 120, MemLat: 180,
			BytesPerBusCycle: 32, LineBytes: 64,
		},
		CPU: cpu.Params{
			OpGap:       1,
			CodeBytes:   16 << 10,
			IFetchBytes: 4,
		},
		Security: SecurityConfig{
			Mode:   SecurityOff,
			Senss:  core.DefaultParams(),
			Memsec: memsec.Params{AESLatency: 80, PerfectSNC: true, PadEntries: 8192},
			Tree:   integrity.Params{HashLatency: 160},
		},
		Seed:  1,
		Limit: 20_000_000_000,
	}
}

// Validate checks a configuration for the mistakes New would otherwise
// surface as panics deep inside construction.
func (c Config) Validate() error {
	if c.Procs <= 0 || c.Procs > core.MaxProcs {
		return fmt.Errorf("machine: Procs = %d, must be 1..%d", c.Procs, core.MaxProcs)
	}
	if c.Coherence.L1Line <= 0 || c.Coherence.L2Line <= 0 {
		return fmt.Errorf("machine: non-positive line sizes")
	}
	if c.Coherence.L2Line%c.Coherence.L1Line != 0 {
		return fmt.Errorf("machine: L2 line (%d) must be a multiple of the L1 line (%d)",
			c.Coherence.L2Line, c.Coherence.L1Line)
	}
	if c.Coherence.L2Line != c.Bus.LineBytes {
		return fmt.Errorf("machine: L2 line (%d) must match the bus line size (%d)",
			c.Coherence.L2Line, c.Bus.LineBytes)
	}
	if c.Bus.BusCycle == 0 || c.Bus.BytesPerBusCycle <= 0 {
		return fmt.Errorf("machine: bus timing not configured")
	}
	if c.Security.Naive && c.Security.Mode != SecurityBus {
		return fmt.Errorf("machine: the naive baseline requires Mode == SecurityBus")
	}
	if m := c.Security.Senss.Masks; m != 0 && m != 1 && m != 2 && m != 4 && m != 8 {
		return fmt.Errorf("machine: mask banks = %d, must be 1, 2, 4, or 8", m)
	}
	if b := c.Security.Senss.Backend; !crypto.Known(b) {
		return fmt.Errorf("machine: unknown crypto backend %q (have %v)", b, crypto.Backends())
	}
	return nil
}

// dataBase is where the bump allocator starts. Low memory is left unused
// so address zero stays out of the working set.
const dataBase = uint64(1) << 16

// Machine is an assembled simulated SMP.
type Machine struct {
	Config Config

	Engine *sim.Engine
	Store  *mem.Store
	Bus    *bus.Bus
	Nodes  []*coherence.Node
	Senss  *core.System
	Memsec *memsec.Layer
	Tree   *integrity.Tree
	Groups *core.GroupTable
	Trace  *trace.Recorder // non-nil when Config.TraceLimit > 0
	Oracle *oracle.Checker // non-nil when Config.Oracle is set
	GID    int

	// SwapCount counts §4.2 group context switches (RunTimeShared).
	SwapCount int

	rand      *rng.Rand
	allocNext uint64
	loaded    bool
	started   bool
	planned   [][]int  // processor subsets for planned SENSS groups
	nodeCode  []uint64 // per-processor text region base (per-group text)
	procKeys  map[int]*core.ProcessorKeys
	//senss-lint:secret
	groupKeys map[int]aes.Block // session keys, kept for §4.2 swap-in
	naive     *naiveHook        // §7.3 strawman baseline, when configured
}

// New builds a machine from cfg. Call Alloc/InitWord to lay out the
// workload, then Run.
func New(cfg Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Machine{
		Config:    cfg,
		Engine:    sim.NewEngine(),
		Store:     mem.New(),
		Groups:    core.NewGroupTable(),
		rand:      rng.New(cfg.Seed ^ 0x5e5e5e5e),
		allocNext: dataBase,
		GID:       -1,
	}
	if cfg.Limit > 0 {
		m.Engine.SetLimit(cfg.Limit)
	}

	// Memory port chain: integrity pending-marker → memsec pads → raw.
	var port bus.MemoryPort = &bus.SimpleMemory{Backing: m.Store}
	if cfg.Security.Mode == SecurityBusMem {
		key := aes.Block(m.rand.Block16())
		cipher := crypto.MustBackend(cfg.Security.Senss.Backend, key)
		m.Memsec = memsec.New(m.Store, cipher, cfg.Procs, cfg.Security.Memsec)
		port = m.Memsec
	}
	if cfg.Security.Mode == SecurityBusMem && cfg.Security.Integrity {
		// The tree is sized at Load time; create a placeholder port now.
		port = &integrityPort{m: m, inner: port}
	}
	m.Bus = bus.New(m.Engine, cfg.Bus, port)

	for i := 0; i < cfg.Procs; i++ {
		n := coherence.NewNode(i, cfg.Coherence, m.Bus)
		m.Nodes = append(m.Nodes, n)
	}
	if cfg.Security.Mode >= SecurityBus {
		if cfg.Security.Naive {
			m.naive = newNaiveHook(m.Bus, crypto.MustBackend(cfg.Security.Senss.Backend, aes.Block(m.rand.Block16())), cfg.Security.Senss.AESLatency)
			m.Bus.AttachHook(m.naive)
		} else {
			m.Senss = core.NewSystem(m.Engine, m.Bus, cfg.Procs, cfg.Security.Senss, true)
		}
	}
	if cfg.Oracle {
		// The checker rides the hook chain after the SENSS layer (so it
		// sees the requester's decrypted payload) and before jitter/trace.
		m.Oracle = oracle.New(oracle.Options{
			Procs:  cfg.Procs,
			Window: cfg.OracleWindow,
			Senss:  cfg.Security.Senss,
		})
		m.Oracle.SetEngine(m.Engine)
		m.Oracle.SetNodes(m.Nodes)
		m.Oracle.SetMeta(cfg.Seed, fmt.Sprintf(
			"procs=%d l2=%d line=%d security=%s masks=%d interval=%d",
			cfg.Procs, cfg.Coherence.L2Size, cfg.Coherence.L2Line,
			cfg.Security.Mode, cfg.Security.Senss.Masks, cfg.Security.Senss.AuthInterval))
		if m.Senss != nil {
			m.Senss.SetObserver(m.Oracle)
			m.Oracle.SetAlarm(m.Senss.Detected)
		}
		m.Bus.AttachHook(m.Oracle)
		m.Bus.OnCommitStore = m.Oracle.OnCommitStore
	}
	if cfg.PerturbMax > 0 {
		m.Bus.AttachHook(&jitterHook{r: rng.New(cfg.PerturbSeed), max: cfg.PerturbMax})
	}
	if cfg.TraceLimit > 0 {
		m.Trace = trace.NewRecorder(cfg.TraceLimit)
		m.Bus.AttachHook(m.Trace)
	}
	return m
}

// integrityPort marks writeback commits as in-flight tree updates before
// delegating to the wrapped port.
type integrityPort struct {
	m     *Machine
	inner bus.MemoryPort
}

//senss-lint:hotpath
func (p *integrityPort) Fetch(t *bus.Transaction, dst []byte) uint64 {
	return p.inner.Fetch(t, dst)
}

//senss-lint:hotpath
func (p *integrityPort) Store(t *bus.Transaction, src []byte) uint64 {
	if p.m.Tree != nil {
		p.m.Tree.BeginUpdate(t.Addr)
	}
	return p.inner.Store(t, src)
}

// jitterHook perturbs bus timing for the §7.8 variability study.
type jitterHook struct {
	r   *rng.Rand
	max uint64
}

func (j *jitterHook) OnTransaction(p *sim.Proc, t *bus.Transaction) uint64 {
	return j.r.Uint64n(j.max + 1)
}

// protectionHooks glues memsec pad coherence and the integrity tree into
// the nodes' miss path.
type protectionHooks struct{ m *Machine }

func (h *protectionHooks) AfterMemoryFill(p *sim.Proc, n *coherence.Node, t *bus.Transaction) {
	if h.m.Memsec != nil {
		if addr, ok := h.m.Memsec.TakePendingRequest(n.ID); ok {
			// The SNC missed: fetch the fresh sequence number on the bus.
			n.Signal(p, bus.PadReq, addr)
		}
	}
	if h.m.Tree != nil {
		h.m.Tree.AfterMemoryFill(p, n, t)
	}
}

func (h *protectionHooks) AfterWriteBack(p *sim.Proc, n *coherence.Node, addr uint64, data []byte) {
	if h.m.Memsec != nil {
		// The pad changed: broadcast the invalidate (or, in the §6.1
		// write-update variant, the fresh sequence number).
		h.m.Memsec.NoteInvalidate()
		kind := bus.PadInv
		if h.m.Memsec.WriteUpdate() {
			kind = bus.PadUpd
		}
		n.Signal(p, kind, addr)
	}
	if h.m.Tree != nil {
		h.m.Tree.AfterWriteBack(p, n, addr, data)
	}
}

// Alloc reserves n bytes of simulated memory, line-aligned, and returns
// the base address. Must be called before Load/Run.
func (m *Machine) Alloc(n uint64) uint64 {
	if m.loaded {
		panic("machine: Alloc after Load")
	}
	base := m.allocNext
	n = (n + mem.LineSize - 1) &^ uint64(mem.LineSize-1)
	m.allocNext += n
	return base
}

// InitWord writes an initial (plaintext) value, bypassing timing. Must be
// called before Load/Run.
func (m *Machine) InitWord(addr, v uint64) {
	if m.loaded {
		panic("machine: InitWord after Load")
	}
	m.Store.WriteWord(addr, v)
}

// InitFloat writes an initial float64 value.
func (m *Machine) InitFloat(addr uint64, v float64) {
	m.InitWord(addr, floatBits(v))
}

// Load freezes the memory image: allocates the code region, builds the
// integrity tree, encrypts memory, and establishes the SENSS group. It is
// called automatically by Run.
func (m *Machine) Load() {
	if m.loaded {
		return
	}
	// Text regions for the instruction-fetch model: one per planned group
	// (each application ships its own encrypted program image), or one
	// shared region for the default single-application machine. Cross-
	// group code sharing would otherwise create cache-to-cache transfers
	// no group session could cover.
	m.nodeCode = make([]uint64, m.Config.Procs)
	if m.Config.CPU.CodeBytes > 0 {
		if len(m.planned) > 1 {
			for _, procs := range m.planned {
				base := m.Alloc(m.Config.CPU.CodeBytes)
				for _, pid := range procs {
					m.nodeCode[pid] = base
				}
			}
		} else {
			base := m.Alloc(m.Config.CPU.CodeBytes)
			for i := range m.nodeCode {
				m.nodeCode[i] = base
			}
		}
	}
	m.loaded = true

	dataSize := m.allocNext - dataBase
	if m.Config.Security.Mode == SecurityBusMem && m.Config.Security.Integrity {
		m.Tree = integrity.New(m.Engine, dataBase, dataSize, m.Config.Security.Tree)
		m.Tree.ReadCoherent = m.ReadCoherentLine
		m.Tree.Build(m.Store, func(addr uint64, dst []byte) { m.Store.ReadLine(addr, dst) })
		// Pre-load the upper tree levels into every L2, the paper's
		// steady-state assumption: a node found in L2 is trusted and
		// terminates the verification walk.
		warm := m.Config.Security.TreeWarmBytes
		if warm == 0 {
			warm = m.Config.Coherence.L2Size / 32
		}
		buf := make([]byte, mem.LineSize)
		for _, addr := range m.Tree.WarmLines(warm) {
			m.Store.ReadLine(addr, buf)
			for _, n := range m.Nodes {
				l, _ := n.L2.Insert(addr, cache.Shared)
				copy(l.Data, buf)
			}
		}
	}
	if m.Memsec != nil {
		m.Memsec.EncryptAll()
	}
	if m.Memsec != nil || m.Tree != nil {
		hooks := &protectionHooks{m: m}
		for _, n := range m.Nodes {
			n.Hooks = hooks
		}
	}
	if m.Senss != nil {
		// Default: one group spanning every processor (the usual single-
		// application machine). PlanGroup overrides with explicit subsets.
		if len(m.planned) == 0 {
			all := make([]int, m.Config.Procs)
			for i := range all {
				all[i] = i
			}
			m.planned = [][]int{all}
		}
		for _, procs := range m.planned {
			gid := m.establishGroup(procs)
			if m.GID < 0 {
				m.GID = gid // first group, for single-app convenience
			}
		}
	}
}

// PlanGroup reserves a SENSS group over the given processor subset —
// the paper's Figure 1 scenario of several applications, each trusting
// only its own processors. Must be called before Load; subsets must be
// disjoint (a processor runs one application at a time here).
func (m *Machine) PlanGroup(procs []int) {
	if m.loaded {
		panic("machine: PlanGroup after Load")
	}
	if m.Senss == nil {
		panic("machine: PlanGroup requires SENSS")
	}
	for _, prev := range m.planned {
		for _, a := range prev {
			for _, b := range procs {
				if a == b {
					panic(fmt.Sprintf("machine: processor %d already in a planned group", a))
				}
			}
		}
	}
	m.planned = append(m.planned, append([]int(nil), procs...))
}

// establishGroup allocates a GID and installs the session on the members,
// either directly or through the full §4.1 dispatch handshake.
func (m *Machine) establishGroup(procs []int) int {
	members := core.MemberMask(procs...)
	var gid int
	if m.Config.Security.FullDispatch {
		gid = m.dispatchGroup(procs, members)
	} else {
		var err error
		gid, err = m.Groups.Allocate(members)
		if err != nil {
			panic(err)
		}
		key := aes.Block(m.rand.Block16())
		encIV := aes.Block(m.rand.Block16())
		authIV := aes.Block(m.rand.Block16())
		if err := m.Senss.Establish(gid, key, members, encIV, authIV); err != nil {
			panic(err)
		}
		if m.groupKeys == nil {
			m.groupKeys = make(map[int]aes.Block)
		}
		m.groupKeys[gid] = key
	}
	for _, pid := range procs {
		m.Nodes[pid].GID = gid
	}
	return gid
}

// dispatchGroup runs the complete program-dispatch flow: mint (or reuse)
// each member's sealed RSA key pair, package a program image under a fresh
// session key wrapped per member, unwrap on every member, and establish
// the chains from broadcast IVs.
func (m *Machine) dispatchGroup(procs []int, members uint32) int {
	bits := m.Config.Security.DispatchKeyBits
	if bits == 0 {
		bits = 512
	}
	if m.procKeys == nil {
		m.procKeys = make(map[int]*core.ProcessorKeys)
	}
	dist := core.NewDistributor(m.rand.Uint64())
	for _, pid := range procs {
		pk, ok := m.procKeys[pid]
		if !ok {
			var err error
			pk, err = core.GenerateProcessorKeys(m.rand, bits)
			if err != nil {
				panic(err)
			}
			m.procKeys[pid] = pk
		}
		dist.RegisterProcessor(pid, pk.Public)
	}
	image := []byte(fmt.Sprintf("senss program image for processors %v", procs))
	pkg, _, err := dist.Dispatch(image, members)
	if err != nil {
		panic(err)
	}
	gid, err := core.NewDispatcher(m.rand.Uint64()).Install(m.Senss, m.Groups, pkg, m.procKeys)
	if err != nil {
		panic(err)
	}
	return gid
}

// Run executes one program per processor (len(programs) ≤ Procs) to
// completion and returns the measurements.
func (m *Machine) Run(programs []cpu.Program) (stats.Run, error) {
	if err := m.Start(programs); err != nil {
		return stats.Run{}, err
	}
	err := m.Engine.Run()
	run := m.Collect()
	if err != nil {
		return run, err
	}
	return run, nil
}

// Start loads the memory image and spawns one program per processor
// (len(programs) ≤ Procs) without running the simulation: the caller
// drives execution through Step (or Engine.Run). Run is exactly
// Start + Engine.Run, so a stepped machine retires the identical event
// sequence a monolithic run would.
func (m *Machine) Start(programs []cpu.Program) error {
	if m.started {
		return fmt.Errorf("machine: Start called twice")
	}
	if len(programs) > m.Config.Procs {
		return fmt.Errorf("machine: %d programs for %d processors", len(programs), m.Config.Procs)
	}
	m.started = true
	m.Load()
	for i, prog := range programs {
		if prog == nil {
			continue
		}
		node := m.Nodes[i]
		prog := prog
		params := m.Config.CPU
		params.CodeBase = m.nodeCode[i]
		m.Engine.Spawn(fmt.Sprintf("cpu%d", i), func(p *sim.Proc) {
			port := cpu.NewPort(p, node, params)
			prog(port)
			port.Done = true
		})
	}
	return nil
}

// Step advances a started machine by at most maxCycles simulated cycles,
// reporting whether the simulation completed. Slice boundaries never
// change what the simulation computes (sim.Engine.RunUntil).
func (m *Machine) Step(maxCycles uint64) (done bool, err error) {
	deadline := m.Engine.Now() + maxCycles
	if deadline < m.Engine.Now() { // overflow: run to completion
		deadline = ^uint64(0)
	}
	return m.Engine.RunUntil(deadline)
}

// Abort tears down a partially executed machine: every simulated
// processor is unwound, pending events are dropped, and Shutdown
// reclaims and zeroizes the SENSS group sessions. Counters stay readable
// (Collect); the machine cannot run again.
func (m *Machine) Abort() {
	m.Engine.Abort()
	m.Shutdown()
}

// Collect gathers the current counters into a stats.Run.
func (m *Machine) Collect() stats.Run {
	r := stats.Run{
		Procs:      m.Config.Procs,
		Label:      m.Config.Security.Mode.String(),
		Cycles:     m.Engine.Now(),
		BusTotal:   m.Bus.Stats.Total(),
		BusByKind:  make(map[string]uint64),
		C2C:        m.Bus.Stats.C2CCount,
		MemFills:   m.Bus.Stats.MemCount,
		BusBusy:    m.Bus.Stats.BusyCycles,
		BusData:    m.Bus.Stats.DataBytes,
		ExtraBus:   m.Bus.Stats.ExtraCycles,
		ArbWaits:   m.Bus.Stats.ArbWaits,
		ArbWaitCyc: m.Bus.Stats.ArbWaitCycles,
		ArbWaitMax: m.Bus.Stats.ArbWaitMax,
	}
	for k := 0; k < bus.NumKinds; k++ {
		if c := m.Bus.Stats.Count[k]; c > 0 {
			r.BusByKind[bus.Kind(k).String()] = c
		}
	}
	for _, n := range m.Nodes {
		r.L1DHits += n.L1D.Hits
		r.L1DMisses += n.L1D.Misses
		r.L1IHits += n.L1I.Hits
		r.L1IMisses += n.L1I.Misses
		r.L2Hits += n.L2.Hits
		r.L2Misses += n.L2.Misses
		r.Loads += n.Stats.Loads
		r.Stores += n.Stats.Stores
		r.RMWs += n.Stats.RMWs
	}
	if m.Senss != nil {
		r.AuthMsgs = m.Senss.Stats.AuthMsgs
		r.MaskStalls = m.Senss.Stats.MaskStalls
		r.AuthUps = m.Senss.Stats.IntervalUps
		r.AuthDowns = m.Senss.Stats.IntervalDowns
	}
	if m.naive != nil {
		r.Label = "naive"
		r.AuthMsgs = m.naive.Transfers // one per-message MAC per transfer
	}
	if m.Memsec != nil {
		r.PadMsgs = m.Memsec.Stats.Invalidates + m.Memsec.Stats.Requests
		r.PadHits = m.Memsec.Stats.PadHits
		r.PadMisses = m.Memsec.Stats.PadMisses
	}
	if m.Tree != nil {
		r.HashOps = m.Tree.Stats.HashOps
	}
	if halted, why := m.Engine.Halted(); halted {
		r.Halted = true
		r.HaltReason = why
	}
	return r
}

// ReadWord returns the current value of an aligned word, preferring cached
// copies (which may be dirty) over memory, decrypting as needed — for
// workload validation after a run.
func (m *Machine) ReadWord(addr uint64) uint64 {
	for _, n := range m.Nodes {
		if v, ok := n.PeekWord(addr); ok {
			return v
		}
	}
	if m.Memsec != nil {
		return m.Memsec.ReadWordDecrypted(addr)
	}
	return m.Store.ReadWord(addr)
}

// ReadFloat returns the float64 at addr.
func (m *Machine) ReadFloat(addr uint64) float64 {
	return floatFromBits(m.ReadWord(addr))
}

// ReadCoherentLine reads the current coherent value of a line — a dirty
// cached copy when one exists, else decrypted memory — without timing.
// The lazy integrity verifier and validation tooling use it.
func (m *Machine) ReadCoherentLine(addr uint64, dst []byte) {
	for _, n := range m.Nodes {
		if l := n.L2.Peek(addr); l != nil {
			copy(dst, l.Data)
			return
		}
	}
	m.ReadMemLine(addr, dst)
}

// ReadMemLine reads the decrypted memory image of a line (NOT looking at
// caches) — the view the invariant checker needs.
func (m *Machine) ReadMemLine(addr uint64, dst []byte) {
	if m.Memsec != nil {
		m.Memsec.ReadLineDecrypted(addr, dst)
		return
	}
	m.Store.ReadLine(addr, dst)
}

// CheckInvariants verifies the MOESI invariants of the current state.
func (m *Machine) CheckInvariants() error {
	return coherence.CheckInvariants(m.Nodes, m.ReadMemLine)
}

// Halted reports whether a security alarm froze the machine.
func (m *Machine) Halted() (bool, string) { return m.Engine.Halted() }

// Shutdown reclaims every SENSS group (paper §5.2: GIDs return to the
// table on program completion; queued applications would receive them).
// The machine's measurements remain readable afterwards.
func (m *Machine) Shutdown() {
	if m.Senss == nil {
		return
	}
	for _, procs := range m.planned {
		if len(procs) == 0 {
			continue
		}
		gid := m.Nodes[procs[0]].GID
		if gid < 0 || !m.Groups.Occupied(gid) {
			continue
		}
		for _, pid := range procs {
			m.Senss.SHU(pid).Leave(gid)
			m.Nodes[pid].GID = -1
		}
		m.Groups.Release(gid)
	}
	m.GID = -1
}

// SetTamperer installs a bus adversary (requires SecurityBus or higher).
func (m *Machine) SetTamperer(t core.Tamperer) {
	if m.Senss == nil {
		panic("machine: tamperer requires SENSS")
	}
	m.Senss.SetTamperer(t)
}

// Rand exposes the machine's deterministic random stream for workload
// setup.
func (m *Machine) Rand() *rng.Rand { return m.rand }
