package machine

import (
	"senss/internal/bus"
	"senss/internal/core"
	"senss/internal/crypto"
	"senss/internal/sim"
)

// naiveHook wires the §7.3 "naive" baseline into the bus: direct
// encryption and per-message MAC authentication of every cache-to-cache
// transfer. The block cipher sits on the critical path at both ends
// (2 × AES latency per transfer) and the MAC tag consumes a bus slot —
// the performance penalty the paper cites for dismissing this design.
// Its security blind spots (drops, replays, reordering pass unnoticed)
// are demonstrated at protocol level in internal/core's tests.
type naiveHook struct {
	bus     *bus.Bus
	channel *core.NaiveChannel
	aesLat  uint64
	seq     uint64

	Transfers uint64
}

func newNaiveHook(b *bus.Bus, cipher crypto.BlockCipher, aesLat uint64) *naiveHook {
	return &naiveHook{bus: b, channel: core.NewNaiveChannel(cipher), aesLat: aesLat}
}

// OnTransaction implements bus.SecurityHook.
//
//senss-lint:ignore cycleacct non-cache-to-cache transactions pass the naive channel uncharged by design
func (h *naiveHook) OnTransaction(p *sim.Proc, t *bus.Transaction) uint64 {
	if !t.CacheToCache() {
		return 0
	}
	h.Transfers++
	// Real crypto round trip: encrypt at the supplier, verify+decrypt at
	// the requester.
	msg := h.channel.Send(h.seq, core.LineToBlocks(t.Data))
	h.seq++
	plain, err := h.channel.Receive(msg)
	if err != nil {
		// A per-message MAC failure would be an immediate alarm; on a
		// clean (untampered) bus it indicates a simulator bug.
		panic("machine: naive baseline MAC failure on a clean bus")
	}
	core.BlocksToLine(plain, t.Data)

	// Timing: serialized encrypt + decrypt, plus the tag's bus slot.
	extra := 2 * h.aesLat
	if h.bus != nil {
		extra += h.bus.RecordInjected(bus.Auth)
	}
	return extra
}
