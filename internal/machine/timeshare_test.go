package machine

import (
	"testing"

	"senss/internal/cpu"
)

// tsApp builds a per-processor increment loop over its own counter line,
// suitable for time-sharing (no cross-app state).
func tsApp(m *Machine, procs, iters int) ([]cpu.Program, []uint64) {
	counters := make([]uint64, procs)
	progs := make([]cpu.Program, procs)
	for i := 0; i < procs; i++ {
		counters[i] = m.Alloc(64)
		addr := counters[i]
		progs[i] = func(c *cpu.Port) {
			for k := 0; k < iters; k++ {
				c.Store(addr, c.Load(addr)+1)
				c.Think(20)
			}
		}
	}
	return progs, counters
}

func TestTimeSharedSwapsAndComputesCorrectly(t *testing.T) {
	cfg := smallConfig(2, SecurityBus)
	cfg.Security.Senss.AuthInterval = 10
	m := New(cfg)
	const iters = 300
	appA, countersA := tsApp(m, 2, iters)
	appB, countersB := tsApp(m, 2, iters)

	run, err := m.RunTimeShared(appA, appB, 2_000)
	if err != nil {
		t.Fatal(err)
	}
	if halted, why := m.Halted(); halted {
		t.Fatalf("false alarm during time-sharing: %s", why)
	}
	if m.SwapCount < 2 {
		t.Errorf("only %d context switches — quantum too coarse for the test", m.SwapCount)
	}
	for i, addr := range countersA {
		if got := m.ReadWord(addr); got != iters {
			t.Errorf("app A counter %d = %d, want %d", i, got, iters)
		}
	}
	for i, addr := range countersB {
		if got := m.ReadWord(addr); got != iters {
			t.Errorf("app B counter %d = %d, want %d", i, got, iters)
		}
	}
	if run.AuthMsgs == 0 {
		t.Error("no authentication traffic across the swaps")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestTimeSharedUnequalLengths(t *testing.T) {
	// App A finishes quickly; B keeps running across further quanta.
	cfg := smallConfig(2, SecurityBus)
	m := New(cfg)
	appA, countersA := tsApp(m, 2, 20)
	appB, countersB := tsApp(m, 2, 500)
	if _, err := m.RunTimeShared(appA, appB, 1_500); err != nil {
		t.Fatal(err)
	}
	if got := m.ReadWord(countersA[0]); got != 20 {
		t.Errorf("short app counter = %d", got)
	}
	if got := m.ReadWord(countersB[1]); got != 500 {
		t.Errorf("long app counter = %d", got)
	}
}

func TestTimeSharedRequiresSenss(t *testing.T) {
	m := New(smallConfig(2, SecurityOff))
	if _, err := m.RunTimeShared(nil, nil, 1000); err == nil {
		t.Error("time-sharing without SENSS accepted")
	}
}

func TestTimeSharedRejectsZeroQuantum(t *testing.T) {
	m := New(smallConfig(2, SecurityBus))
	if _, err := m.RunTimeShared(nil, nil, 0); err == nil {
		t.Error("zero quantum accepted")
	}
}
