package lint_test

import (
	"path/filepath"
	"testing"

	"senss/internal/lint"
)

func TestZZProbeDeferredClosureUnlock(t *testing.T) {
	loader := newLoader(t)
	pkg, err := loader.LoadDir(filepath.Join("/tmp", "lockprobe"))
	if err != nil {
		t.Fatal(err)
	}
	a := lint.AnalyzerLockguard()
	a.Scope = nil
	for _, d := range lint.RunAnalyzers([]*lint.Analyzer{a}, []*lint.Package{pkg}) {
		t.Errorf("finding: %s", d)
	}
}
