package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// nameListHas reports whether the comma-split analyzer list names a.
func nameListHas(names []string, a string) bool {
	for _, n := range names {
		if n == a {
			return true
		}
	}
	return false
}

// Suppression directives.
//
//	//senss-lint:ignore <analyzer>[,<analyzer>...] <reason>
//	//senss-lint:file-ignore <analyzer>[,<analyzer>...] <reason>
//
// An ignore directive covers its own line and the next line; when it sits
// in (or immediately above) the doc comment of a top-level declaration it
// covers the whole declaration, so a single audited waiver can cover every
// return path of a deliberately zero-cost function. The analyzer list may
// be "all". The reason is mandatory: a waiver without a written
// justification is itself reported as a finding, a waiver naming an
// analyzer that does not exist is a finding (it silently protects
// nothing), and a taintflow waiver must carry a written reason because it
// locally disables the secret-flow guarantee.
//
// A third directive form,
//
//	//senss-lint:secret
//
// is not a suppression at all: placed on a struct field it marks the field
// as a taint origin for the taintflow analyzer (see taintflow.go), so it
// is accepted here without complaint. Likewise //senss-lint:hotpath (bare)
// and //senss-lint:coldpath <reason> annotate functions for the hotpath
// analyzer (see hotpath.go); coldpath waives the allocation discipline for
// a whole function, so its written reason is mandatory and enforced here.
const directivePrefix = "senss-lint:"

type supEntry struct {
	analyzers []string
	file      string
	from, to  int // line range, inclusive; 0,maxInt for file-wide
}

func (e *supEntry) covers(d Diagnostic) bool {
	if d.Pos.Filename != e.file || d.Pos.Line < e.from || d.Pos.Line > e.to {
		return false
	}
	for _, a := range e.analyzers {
		if a == "all" || a == d.Analyzer {
			return true
		}
	}
	return false
}

type suppressions struct {
	entries  []supEntry
	problems []Diagnostic
}

func (s *suppressions) suppresses(d Diagnostic) bool {
	if d.Analyzer == "lintdirective" {
		return false
	}
	for i := range s.entries {
		if s.entries[i].covers(d) {
			return true
		}
	}
	return false
}

// collectSuppressions scans every comment of the package for directives.
// known is the set of analyzer names a waiver may legitimately reference;
// naming anything else is reported, since such a waiver suppresses nothing
// today and silently rots when analyzers are renamed.
func collectSuppressions(pkg *Package, known map[string]bool) *suppressions {
	s := &suppressions{}
	for _, f := range pkg.Files {
		// declSpan maps a directive line to the span of the top-level
		// declaration it documents.
		declSpan := make(map[int][2]int)
		for _, decl := range f.Decls {
			start := pkg.Fset.Position(decl.Pos()).Line
			end := pkg.Fset.Position(decl.End()).Line
			var doc *ast.CommentGroup
			switch d := decl.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				doc = d.Doc
			}
			if doc != nil {
				for l := pkg.Fset.Position(doc.Pos()).Line; l <= pkg.Fset.Position(doc.End()).Line; l++ {
					declSpan[l] = [2]int{start, end}
				}
			}
			declSpan[start] = [2]int{start, end}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
				text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				body := strings.TrimPrefix(text, directivePrefix)
				// Anything after a nested "//" is commentary on the
				// directive, not part of it.
				if i := strings.Index(body, "//"); i >= 0 {
					body = body[:i]
				}
				fields := strings.Fields(body)
				if len(fields) == 1 && fields[0] == "secret" {
					// A taint-origin annotation, consumed by taintflow.
					continue
				}
				if len(fields) > 0 && fields[0] == "hotpath" {
					// A hot-path annotation, consumed by the hotpath
					// analyzer; trailing words are commentary.
					continue
				}
				if len(fields) > 0 && fields[0] == "coldpath" {
					if len(fields) < 2 {
						// coldpath exempts a whole function from the
						// allocation discipline: the reason is mandatory.
						s.problems = append(s.problems, Diagnostic{
							Analyzer: "lintdirective", Pos: pos,
							Message: "senss-lint:coldpath needs a written reason (why is this function off the hot path?)",
						})
					}
					continue
				}
				if len(fields) > 0 && fields[0] == "guardedby" {
					// A guarded-field annotation, consumed by the lockguard
					// analyzer; the mutex field name is mandatory.
					if len(fields) < 2 {
						s.problems = append(s.problems, Diagnostic{
							Analyzer: "lintdirective", Pos: pos,
							Message: "senss-lint:guardedby needs the name of the mutex field that guards this field",
						})
					}
					continue
				}
				if len(fields) == 0 || (fields[0] != "ignore" && fields[0] != "file-ignore") {
					s.problems = append(s.problems, Diagnostic{
						Analyzer: "lintdirective", Pos: pos,
						Message: "malformed senss-lint directive: want ignore, file-ignore, secret, hotpath, coldpath, or guardedby",
					})
					continue
				}
				if len(fields) < 2 {
					// Bare "//senss-lint:ignore" with no analyzer list:
					// report it rather than indexing past the verb.
					s.problems = append(s.problems, Diagnostic{
						Analyzer: "lintdirective", Pos: pos,
						Message: "senss-lint:" + fields[0] + " needs an analyzer list and a written reason",
					})
					continue
				}
				names := strings.Split(fields[1], ",")
				if len(fields) < 3 {
					msg := "senss-lint:" + fields[0] + " needs an analyzer list and a written reason"
					if nameListHas(names, "taintflow") {
						msg = "senss-lint:" + fields[0] + " of taintflow waives the secret-flow guarantee and must carry a written reason"
					}
					s.problems = append(s.problems, Diagnostic{
						Analyzer: "lintdirective", Pos: pos,
						Message: msg,
					})
					continue
				}
				bad := false
				for _, n := range names {
					if n != "all" && !known[n] {
						s.problems = append(s.problems, Diagnostic{
							Analyzer: "lintdirective", Pos: pos,
							Message: fmt.Sprintf("senss-lint:%s references unknown analyzer %q", fields[0], n),
						})
						bad = true
					}
				}
				if bad {
					continue
				}
				entry := supEntry{
					analyzers: names,
					file:      pos.Filename,
				}
				if fields[0] == "file-ignore" {
					entry.from, entry.to = 1, int(^uint(0)>>1)
				} else if span, ok := declSpan[pos.Line]; ok {
					entry.from, entry.to = span[0], span[1]
				} else {
					entry.from, entry.to = pos.Line, pos.Line+1
				}
				s.entries = append(s.entries, entry)
			}
		}
	}
	return s
}
