package lint

// taintflow is the interprocedural secret-taint analysis: the semantic
// upgrade of the lexical secrets analyzer. SENSS's threat model (paper §2)
// trusts only the processor chips, so the 128-bit session keys, one-time
// pad mask banks, and CBC-MAC chain state must never escape the SHU — yet
// the simulator has many exit ramps (oracle divergence reports, farm cache
// files, trace output, error strings). This analyzer follows the secrets
// through the code instead of pattern-matching their names.
//
// Model (DESIGN.md §12):
//
//   - Origins. Taint enters at struct fields annotated //senss-lint:secret
//     and at the results of functions in the declarative origin table
//     (RSA session plaintext, unwrapped/dispatched session keys). Reads of
//     an annotated field are tainted no matter how the value got there.
//   - Propagation. Assignments, composite literals, slicing, indexing,
//     copy/append, conversions, closures (a FuncLit shares its enclosing
//     environment), and calls. Calls use per-function summaries — which
//     results derive from which parameters, and which parameter referents
//     the callee writes secrets into — computed to a fixpoint over the
//     call graph. Interface calls are resolved against every module type
//     that implements the interface (go/types method sets).
//   - Declassification. Cipher output is public by design: AES encryption
//     and decryption, SHA-256 digests, Block.XOR (the pad-consumption
//     step whose output is ciphertext on the wire), ct.Fingerprint, and
//     the constant-time primitives all cut taint. The persistent stores —
//     keys, schedules, chain state — stay tainted; the datapath that
//     consumes them is clean.
//   - Sinks. Formatting (fmt, log), error construction, JSON marshaling
//     (the oracle divergence report path), file writes (the farm cache),
//     trace records, and panic values. A flow of byte-material taint into
//     any of these is a finding.
//   - Constant time. A ==/!= comparison (or bytes.Equal/Compare,
//     reflect.DeepEqual) whose operand carries secret taint is a finding:
//     use internal/crypto/ct.Equal.
//   - Zeroize on all paths. A function that acquires a secret through an
//     acquire-flagged origin must erase it (ct.Zero, a named wipe helper,
//     or a zeroing loop) on every return path, including error paths,
//     unless the secret itself is returned or stored away.
//
// Waivers follow the usual //senss-lint:ignore taintflow <reason> form and
// are audited: the reason is mandatory (suppress.go enforces it harder for
// this analyzer than for any other).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AnalyzerTaintflow returns the interprocedural secret-taint analyzer.
func AnalyzerTaintflow() *Analyzer {
	a := &Analyzer{
		Name: "taintflow",
		Doc:  "secret taint must not reach output sinks or variable-time compares, and acquired secrets must be zeroized on all return paths",
	}
	a.RunModule = func(mp *ModulePass) {
		newTaintWorld(mp).run()
	}
	return a
}

// originSpec declares one function whose results introduce taint.
type originSpec struct {
	// results lists the tainted result indices.
	results []int
	// acquire additionally subjects the binding of the listed results to
	// the zeroize-on-all-paths rule.
	acquire bool
	// what names the material in diagnostics.
	what string
}

// taintOrigins is the declarative origin table, keyed by
// (*types.Func).FullName. The "taint." entries serve the fixture package
// and double as a regression test of the key format.
var taintOrigins = map[string]originSpec{
	"senss/internal/crypto/rsa.DecryptKey":        {results: []int{0}, acquire: true, what: "RSA session plaintext"},
	"(*senss/internal/core.Package).Unwrap":       {results: []int{0}, what: "unwrapped session key"},
	"(*senss/internal/core.Distributor).Dispatch": {results: []int{1}, what: "dispatched session key"},
	"taint.unwrapSessionKey":                      {results: []int{0}, acquire: true, what: "session key"},
	"taint.padSchedule":                           {results: []int{0}, what: "pad schedule"},
}

// taintDeclassifiers are the sanctioned taint cuts: functions whose output
// is public by design even when their inputs are secret. Block.XOR is the
// one-time-pad consumption boundary — its output is either wire ciphertext
// or recovered line plaintext, both of which the datapath handles freely;
// the protected material is the persistent pad and key stores.
var taintDeclassifiers = map[string]bool{
	"(senss/internal/crypto/aes.Block).XOR": true,
	"senss/internal/crypto/sha256.Sum256":         true,
	"crypto/sha256.Sum256":                        true,
	"senss/internal/crypto/ct.Equal":              true,
	"senss/internal/crypto/ct.Fingerprint":        true,
	"crypto/subtle.ConstantTimeCompare":     true,
	"crypto/hmac.Equal":                     true,
}

// taintDeclassifierIfaces extends the declassifier table to interface
// methods: a call through a listed interface method declassifies, and so
// does a call to any method (on any type, in or out of the module) that
// implements the interface. This is how every crypto.BlockCipher backend's
// Encrypt/Decrypt cuts taint without a per-implementation entry — adding a
// backend to the registry never requires touching this table. The
// "taint.BlockLike" entry serves the fixture package and doubles as a
// regression test of the resolution. Keyed by package path + type name.
var taintDeclassifierIfaces = map[string][]string{
	"senss/internal/crypto.BlockCipher": {"Encrypt", "Decrypt"},
	"taint.BlockLike":                   {"Encrypt"},
}

// declassIface is one resolved entry of taintDeclassifierIfaces.
type declassIface struct {
	iface   *types.Interface
	methods map[string]bool
}

// zeroizerNames are the function names the zeroize-on-all-paths rule
// recognizes as erasure when called with (or on) the tracked secret.
var zeroizerNames = map[string]bool{
	"Zero": true, "Zeroize": true, "zeroize": true, "Wipe": true, "wipe": true,
}

// maxTaintParams bounds the parameter bitmask width of a summary.
const maxTaintParams = 64

// tval is the taint lattice value of one expression or object: a constant
// component (derives from an origin somewhere) and the set of enclosing-
// function parameters it may derive from (for summary building).
type tval struct {
	c  bool
	ps uint64
}

func (v tval) or(w tval) tval { return tval{v.c || w.c, v.ps | w.ps} }
func (v tval) eq(w tval) bool { return v.c == w.c && v.ps == w.ps }
func (v tval) tainted() bool  { return v.c || v.ps != 0 }
func paramBit(i int) uint64 {
	if i >= maxTaintParams {
		i = maxTaintParams - 1
	}
	return 1 << uint(i)
}

// taintSummary is one function's interprocedural behavior: where each
// result's taint comes from, and which parameter referents the function
// writes taint into (out-parameters).
type taintSummary struct {
	resultConst   []bool
	resultFrom    []uint64
	paramOutConst []bool
	paramOutFrom  []uint64
}

// taintFunc is one module function with a body.
type taintFunc struct {
	obj    *types.Func
	decl   *ast.FuncDecl
	pkg    *Package
	params []*types.Var // receiver first, then declared parameters
}

// taintWorld is the whole-module analysis state.
type taintWorld struct {
	mp    *ModulePass
	fset  *token.FileSet
	funcs map[*types.Func]*taintFunc
	order []*taintFunc
	// secretFields holds the //senss-lint:secret annotated fields.
	secretFields map[*types.Var]string
	// named lists every module named type, for interface resolution.
	named     []types.Type
	// declassIfaces holds the resolved taintDeclassifierIfaces entries
	// found among the loaded packages and their imports.
	declassIfaces []declassIface
	implCache     map[*types.Func][]*types.Func
	summaries map[*types.Func]*taintSummary
	extParam  map[*types.Func]uint64
	changed   bool

	reporting bool
	seen      map[string]bool
	diags     []Diagnostic
}

func newTaintWorld(mp *ModulePass) *taintWorld {
	return &taintWorld{
		mp:           mp,
		fset:         mp.Fset,
		funcs:        make(map[*types.Func]*taintFunc),
		secretFields: make(map[*types.Var]string),
		implCache:    make(map[*types.Func][]*types.Func),
		summaries:    make(map[*types.Func]*taintSummary),
		extParam:     make(map[*types.Func]uint64),
		seen:         make(map[string]bool),
	}
}

// taintRounds bounds the global fixpoint. Call chains in this module are
// shallow; the bound only guards against a pathological oscillation, and
// the lattice is monotone so the loop normally exits on no-change first.
const taintRounds = 16

func (w *taintWorld) run() {
	w.build()
	for round := 0; round < taintRounds; round++ {
		w.changed = false
		for _, fn := range w.order {
			w.analyze(fn)
		}
		if !w.changed {
			break
		}
	}
	w.reporting = true
	for _, fn := range w.order {
		w.analyze(fn)
		w.checkZeroize(fn)
	}
	sort.Slice(w.diags, func(i, j int) bool {
		a, b := w.diags[i], w.diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	for _, d := range w.diags {
		w.mp.report(d)
	}
}

// reportf records a deduplicated finding (the reporting pass revisits
// every function, so the same flow would otherwise repeat).
func (w *taintWorld) reportf(pos token.Pos, format string, args ...any) {
	if !w.reporting {
		return
	}
	d := Diagnostic{
		Analyzer: w.mp.Analyzer.Name,
		Pos:      w.fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	}
	key := fmt.Sprintf("%s:%d:%d:%s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message)
	if w.seen[key] {
		return
	}
	w.seen[key] = true
	w.diags = append(w.diags, d)
}

// build indexes every function body, secret-field annotation, and named
// type of the module.
func (w *taintWorld) build() {
	for _, pkg := range w.mp.Pkgs {
		if pkg.Info == nil || pkg.Types == nil {
			continue
		}
		for _, f := range pkg.Files {
			w.collectSecretFields(pkg, f)
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				tf := &taintFunc{obj: obj, decl: fd, pkg: pkg}
				sig := obj.Type().(*types.Signature)
				if r := sig.Recv(); r != nil {
					tf.params = append(tf.params, r)
				}
				for i := 0; i < sig.Params().Len(); i++ {
					tf.params = append(tf.params, sig.Params().At(i))
				}
				w.funcs[obj] = tf
				w.order = append(w.order, tf)
			}
		}
		scope := pkg.Types.Scope()
		names := scope.Names() // already sorted
		for _, name := range names {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
				w.named = append(w.named, tn.Type())
			}
		}
	}
	sort.Slice(w.order, func(i, j int) bool {
		return w.order[i].decl.Pos() < w.order[j].decl.Pos()
	})
	w.resolveDeclassIfaces()
}

// resolveDeclassIfaces looks up every taintDeclassifierIfaces entry among
// the loaded packages and everything they import, so interface-method
// declassification works even when the analyzer runs on a package subset
// that merely imports the interface's package.
func (w *taintWorld) resolveDeclassIfaces() {
	want := make(map[string]map[string][]string) // pkg path → type name → methods
	for key, methods := range taintDeclassifierIfaces {
		dot := strings.LastIndex(key, ".")
		if dot < 0 {
			continue
		}
		path, name := key[:dot], key[dot+1:]
		if want[path] == nil {
			want[path] = make(map[string][]string)
		}
		want[path][name] = methods
	}
	seen := make(map[*types.Package]bool)
	var visit func(p *types.Package)
	visit = func(p *types.Package) {
		if p == nil || seen[p] {
			return
		}
		seen[p] = true
		if types_ := want[p.Path()]; types_ != nil {
			for name, methods := range types_ {
				tn, _ := p.Scope().Lookup(name).(*types.TypeName)
				if tn == nil {
					continue
				}
				iface, _ := tn.Type().Underlying().(*types.Interface)
				if iface == nil {
					continue
				}
				ms := make(map[string]bool, len(methods))
				for _, m := range methods {
					ms[m] = true
				}
				w.declassIfaces = append(w.declassIfaces, declassIface{iface: iface, methods: ms})
			}
		}
		for _, imp := range p.Imports() {
			visit(imp)
		}
	}
	for _, pkg := range w.mp.Pkgs {
		visit(pkg.Types)
	}
}

// isDeclassifier reports whether a call to callee cuts taint: either a
// direct entry in taintDeclassifiers, or a method declared by (or
// implementing) one of the taintDeclassifierIfaces interfaces.
func (w *taintWorld) isDeclassifier(callee *types.Func) bool {
	if taintDeclassifiers[callee.FullName()] {
		return true
	}
	sig, _ := callee.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	for _, di := range w.declassIfaces {
		if !di.methods[callee.Name()] {
			continue
		}
		// An interface receiver implements itself, so both calls through
		// the interface and calls on concrete implementations match.
		if types.Implements(rt, di.iface) || types.Implements(types.NewPointer(rt), di.iface) {
			return true
		}
	}
	return false
}

// collectSecretFields records struct fields annotated //senss-lint:secret
// (in the field's doc comment or line comment).
func (w *taintWorld) collectSecretFields(pkg *Package, f *ast.File) {
	secretDirective := func(cg *ast.CommentGroup) bool {
		if cg == nil {
			return false
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if text == "senss-lint:secret" {
				return true
			}
		}
		return false
	}
	ast.Inspect(f, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok || st.Fields == nil {
			return true
		}
		for _, field := range st.Fields.List {
			if !secretDirective(field.Doc) && !secretDirective(field.Comment) {
				continue
			}
			for _, name := range field.Names {
				if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
					w.secretFields[v] = name.Name
				}
			}
		}
		return true
	})
}

// summaryFor returns (allocating if needed) the callee's summary sized to
// its signature.
func (w *taintWorld) summaryFor(fn *taintFunc) *taintSummary {
	s := w.summaries[fn.obj]
	if s == nil {
		nres := fn.obj.Type().(*types.Signature).Results().Len()
		s = &taintSummary{
			resultConst:   make([]bool, nres),
			resultFrom:    make([]uint64, nres),
			paramOutConst: make([]bool, len(fn.params)),
			paramOutFrom:  make([]uint64, len(fn.params)),
		}
		w.summaries[fn.obj] = s
	}
	return s
}

// addExtParam marks the callee's parameters in bits as carrying secret
// taint from some call site.
func (w *taintWorld) addExtParam(callee *types.Func, bits uint64) {
	if bits == 0 {
		return
	}
	if w.extParam[callee]|bits != w.extParam[callee] {
		w.extParam[callee] |= bits
		w.changed = true
	}
}

// implementations resolves an interface method to every concrete module
// method that can stand behind it.
func (w *taintWorld) implementations(callee *types.Func) []*types.Func {
	if impls, ok := w.implCache[callee]; ok {
		return impls
	}
	var out []*types.Func
	sig, _ := callee.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		w.implCache[callee] = nil
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	if iface == nil {
		w.implCache[callee] = nil
		return nil
	}
	for _, t := range w.named {
		if _, isIface := t.Underlying().(*types.Interface); isIface {
			continue
		}
		pt := types.NewPointer(t)
		if !types.Implements(t, iface) && !types.Implements(pt, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(pt, true, callee.Pkg(), callee.Name())
		if m, ok := obj.(*types.Func); ok {
			if _, known := w.funcs[m]; known {
				out = append(out, m)
			}
		}
	}
	w.implCache[callee] = out
	return out
}

// fstate is the per-function analysis state of one analyze() invocation.
type fstate struct {
	w   *taintWorld
	fn  *taintFunc
	env map[types.Object]tval
	// paramIdx maps the function's own parameters to their bit index.
	paramIdx map[types.Object]int
	changed  bool
}

// analyze runs the flow-insensitive intraprocedural pass over fn to a
// local fixpoint, updating the function's summary and the callees'
// externally-tainted parameter sets.
func (w *taintWorld) analyze(fn *taintFunc) {
	st := &fstate{
		w:        w,
		fn:       fn,
		env:      make(map[types.Object]tval),
		paramIdx: make(map[types.Object]int),
	}
	ext := w.extParam[fn.obj]
	for i, p := range fn.params {
		st.paramIdx[p] = i
		v := tval{ps: paramBit(i)}
		if ext&paramBit(i) != 0 {
			v.c = true
		}
		st.env[p] = v
	}
	// Local fixpoint: loop-carried taint needs another sweep; the
	// environment only grows, so this terminates quickly.
	for iter := 0; iter < 20; iter++ {
		st.changed = false
		st.stmts(fn.decl.Body.List)
		if !st.changed {
			break
		}
	}
}

func (s *fstate) info() *types.Info { return s.fn.pkg.Info }

// merge grows the taint of obj, tracking both local and global change.
func (s *fstate) merge(obj types.Object, v tval) {
	if obj == nil || !v.tainted() {
		return
	}
	old := s.env[obj]
	nv := old.or(v)
	if nv.eq(old) {
		return
	}
	s.env[obj] = nv
	s.changed = true
	// A parameter whose referent was written with taint is an
	// out-parameter: record it in the summary so callers taint their
	// argument. (merge is called for root objects of element writes; plain
	// rebinding of the parameter name itself is also conservatively
	// included, which only over-taints.)
	if i, ok := s.paramIdx[obj]; ok {
		sum := s.w.summaryFor(s.fn)
		if v.c && !sum.paramOutConst[i] {
			sum.paramOutConst[i] = true
			s.w.changed = true
		}
		from := v.ps &^ paramBit(i)
		if sum.paramOutFrom[i]|from != sum.paramOutFrom[i] {
			sum.paramOutFrom[i] |= from
			s.w.changed = true
		}
	}
}

// rootObj resolves the base object a write through e lands in:
// x, x[i], x[i:j], *x, x.f all root at x.
func (s *fstate) rootObj(e ast.Expr) types.Object {
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.SliceExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.SelectorExpr:
			// A qualified identifier (pkg.Var) roots at the package-level
			// var; a field selection roots at the container.
			if id, ok := t.X.(*ast.Ident); ok {
				if _, isPkg := s.info().Uses[id].(*types.PkgName); isPkg {
					return s.info().Uses[t.Sel]
				}
			}
			e = t.X
		case *ast.Ident:
			if obj := s.info().Defs[t]; obj != nil {
				return obj
			}
			return s.info().Uses[t]
		default:
			return nil
		}
	}
}

// calleeOf resolves the called function object, or nil for func values.
func (s *fstate) calleeOf(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := s.info().Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := s.info().Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// recvExpr returns the receiver expression of a method call, or nil.
func (s *fstate) recvExpr(call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if selInfo, ok := s.info().Selections[sel]; ok && selInfo.Kind() == types.MethodVal {
		return sel.X
	}
	return nil
}

// eval computes the taint of e, analyzing side effects (calls, closures)
// along the way.
func (s *fstate) eval(e ast.Expr) tval {
	switch t := e.(type) {
	case nil:
		return tval{}
	case *ast.Ident:
		if obj := s.info().Uses[t]; obj != nil {
			if v, ok := s.secretField(obj); ok {
				return v
			}
			return s.env[obj]
		}
		return tval{}
	case *ast.ParenExpr:
		return s.eval(t.X)
	case *ast.SelectorExpr:
		if obj := s.info().Uses[t.Sel]; obj != nil {
			if v, ok := s.secretField(obj); ok {
				return v
			}
			if _, isField := obj.(*types.Var); isField {
				if id, ok := t.X.(*ast.Ident); ok {
					if _, isPkg := s.info().Uses[id].(*types.PkgName); isPkg {
						return s.env[obj] // package-level var
					}
				}
				// Unannotated field read: clean. Struct containers do not
				// smear taint across their fields — the //senss-lint:secret
				// annotation is the declared boundary, and container
				// propagation here floods generic plumbing (a tainted MAC
				// tag stored in a bus transaction would taint every enum
				// field of every transaction). Sinks still see through
				// structs via the argument subtree scan.
				s.eval(t.X)
				return tval{}
			}
		}
		return tval{}
	case *ast.IndexExpr:
		s.eval(t.Index)
		return s.eval(t.X)
	case *ast.SliceExpr:
		return s.eval(t.X)
	case *ast.StarExpr:
		return s.eval(t.X)
	case *ast.UnaryExpr:
		return s.eval(t.X)
	case *ast.CompositeLit:
		// Element taint is absorbed by data containers (arrays, slices,
		// maps) but not by struct literals: mirroring the field-read rule,
		// a struct does not become secret because one field holds secret
		// material. Elements are still evaluated for side effects, and a
		// struct literal wrapped straight around a secret at a sink is
		// caught by the sink's subtree scan.
		var v tval
		for _, el := range t.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = v.or(s.eval(kv.Value))
			} else {
				v = v.or(s.eval(el))
			}
		}
		if ct := s.info().TypeOf(t); ct != nil {
			if _, isStruct := ct.Underlying().(*types.Struct); isStruct {
				return tval{}
			}
		}
		return v
	case *ast.BinaryExpr:
		x, y := s.eval(t.X), s.eval(t.Y)
		switch t.Op {
		case token.EQL, token.NEQ:
			s.checkCompare(t, x, y)
			return tval{}
		case token.LSS, token.GTR, token.LEQ, token.GEQ,
			token.LAND, token.LOR:
			return tval{}
		}
		return x.or(y)
	case *ast.TypeAssertExpr:
		return s.eval(t.X)
	case *ast.FuncLit:
		// The closure body runs in (a superset of) this environment:
		// analyze it inline so captured secrets keep flowing. The closure
		// value itself is not taint.
		s.stmts(t.Body.List)
		return tval{}
	case *ast.CallExpr:
		return s.call(t)
	case *ast.KeyValueExpr:
		return s.eval(t.Value)
	}
	return tval{}
}

// secretField reports whether obj is an annotated secret field.
func (s *fstate) secretField(obj types.Object) (tval, bool) {
	if v, ok := obj.(*types.Var); ok {
		if _, secret := s.w.secretFields[v]; secret {
			return tval{c: true}, true
		}
	}
	return tval{}, false
}

// call models one call expression: declassifiers, origins, sinks,
// summaries, interface resolution, and the builtin special cases.
func (s *fstate) call(call *ast.CallExpr) tval {
	info := s.info()
	// Conversions: T(x) keeps x's taint.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return s.eval(call.Args[0])
		}
		return tval{}
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			return s.builtin(call, b.Name())
		}
	}

	callee := s.calleeOf(call)

	// Argument taints: receiver first (mirroring summary parameter order).
	var args []ast.Expr
	if recv := s.recvExpr(call); recv != nil {
		args = append(args, recv)
	}
	args = append(args, call.Args...)
	avals := make([]tval, len(args))
	for i, a := range args {
		avals[i] = s.eval(a)
	}

	if callee == nil {
		// Indirect call through a func value: no summary; conservatively
		// join the arguments into the result.
		var v tval
		for _, av := range avals {
			v = v.or(av)
		}
		return v
	}

	full := callee.FullName()
	if s.w.isDeclassifier(callee) {
		return tval{}
	}
	if w, sunk := taintSinkOf(callee); sunk {
		for i, a := range args {
			if i == 0 && len(args) > len(call.Args) {
				continue // the receiver of a sink method is the writer, not data
			}
			s.checkSinkArg(call, a, w)
		}
	}
	if isCompareCall(callee) {
		for i, a := range args {
			if avals[i].c && materialTaintType(info.TypeOf(a)) {
				s.w.reportf(call.Pos(), "secret material compared with %s; use ct.Equal (constant time)", callee.Name())
				break
			}
		}
		return tval{}
	}

	// Resolve targets: the static callee, or every implementation of an
	// interface method.
	targets := []*types.Func{callee}
	if _, isModule := s.w.funcs[callee]; !isModule {
		if impls := s.w.implementations(callee); len(impls) > 0 {
			targets = impls
		}
	}

	var out tval
	anyModule := false
	for _, target := range targets {
		tf, isModule := s.w.funcs[target]
		if !isModule {
			continue
		}
		anyModule = true
		sum := s.w.summaryFor(tf)
		// Push caller taint into the callee's parameter set.
		var bits uint64
		for i, av := range avals {
			if av.c && i < len(tf.params) {
				bits |= paramBit(i)
			}
		}
		// Variadic overflow arguments land in the last parameter.
		if len(avals) > len(tf.params) && len(tf.params) > 0 {
			for i := len(tf.params); i < len(avals); i++ {
				if avals[i].c {
					bits |= paramBit(len(tf.params) - 1)
				}
			}
		}
		s.w.addExtParam(target, bits)
		// Out-parameters: taint the caller's argument roots.
		for i := 0; i < len(tf.params) && i < len(args); i++ {
			o := tval{c: sum.paramOutConst[i]}
			for j := 0; j < len(tf.params) && j < len(avals); j++ {
				if sum.paramOutFrom[i]&paramBit(j) != 0 {
					o = o.or(avals[j])
				}
			}
			if o.tainted() {
				s.merge(s.rootObj(args[i]), o)
			}
		}
		// Results (expression position uses index 0; multi-assign is
		// handled by the caller through callResults).
		out = out.or(s.callResult(sum, avals, tf, 0))
	}
	if orig, ok := taintOrigins[full]; ok {
		for _, r := range orig.results {
			if r == 0 {
				out.c = true
			}
		}
		return out
	}
	if !anyModule {
		// Unsummarized (standard library) call: taint in, taint out.
		for _, av := range avals {
			out = out.or(av)
		}
	}
	return out
}

// callResult translates a callee summary result into the caller's frame.
func (s *fstate) callResult(sum *taintSummary, avals []tval, tf *taintFunc, idx int) tval {
	if idx >= len(sum.resultConst) {
		return tval{}
	}
	v := tval{c: sum.resultConst[idx]}
	for j := 0; j < len(tf.params) && j < len(avals); j++ {
		if sum.resultFrom[idx]&paramBit(j) != 0 {
			v = v.or(avals[j])
		}
	}
	return v
}

// callResults computes the taint of every result of a multi-value call.
func (s *fstate) callResults(call *ast.CallExpr, n int) []tval {
	out := make([]tval, n)
	base := s.eval(call) // side effects + result 0 under the single-value path
	if n > 0 {
		out[0] = base
	}
	callee := s.calleeOf(call)
	if callee == nil {
		for i := range out {
			out[i] = base
		}
		return out
	}
	full := callee.FullName()
	if s.w.isDeclassifier(callee) {
		return out
	}
	var args []ast.Expr
	if recv := s.recvExpr(call); recv != nil {
		args = append(args, recv)
	}
	args = append(args, call.Args...)
	avals := make([]tval, len(args))
	for i, a := range args {
		avals[i] = s.eval(a)
	}
	targets := []*types.Func{callee}
	if _, isModule := s.w.funcs[callee]; !isModule {
		if impls := s.w.implementations(callee); len(impls) > 0 {
			targets = impls
		}
	}
	anyModule := false
	for _, target := range targets {
		tf, isModule := s.w.funcs[target]
		if !isModule {
			continue
		}
		anyModule = true
		sum := s.w.summaryFor(tf)
		for i := 0; i < n; i++ {
			out[i] = out[i].or(s.callResult(sum, avals, tf, i))
		}
	}
	if orig, ok := taintOrigins[full]; ok {
		for _, r := range orig.results {
			if r < n {
				out[r].c = true
			}
		}
	} else if !anyModule {
		var join tval
		for _, av := range avals {
			join = join.or(av)
		}
		for i := range out {
			out[i] = out[i].or(join)
		}
	}
	return out
}

// builtin models the handful of builtins that move or create data.
func (s *fstate) builtin(call *ast.CallExpr, name string) tval {
	switch name {
	case "append":
		var v tval
		for _, a := range call.Args {
			v = v.or(s.eval(a))
		}
		return v
	case "copy":
		if len(call.Args) == 2 {
			src := s.eval(call.Args[1])
			s.eval(call.Args[0])
			if !s.throughField(ast.Unparen(call.Args[0])) {
				s.merge(s.rootObj(call.Args[0]), src)
			}
		}
		return tval{}
	case "panic":
		if len(call.Args) == 1 {
			s.checkSinkArg(call, call.Args[0], "panic")
		}
		return tval{}
	case "min", "max":
		var v tval
		for _, a := range call.Args {
			v = v.or(s.eval(a))
		}
		return v
	default:
		// len, cap, make, new, delete, clear, print... — evaluate the
		// arguments for their side effects; the result carries no taint
		// (len/cap of a secret are public metadata).
		for _, a := range call.Args {
			s.eval(a)
		}
		return tval{}
	}
}

// checkCompare reports a variable-time comparison of secret material.
func (s *fstate) checkCompare(b *ast.BinaryExpr, x, y tval) {
	if !s.reportingOn() {
		return
	}
	info := s.info()
	if (x.c && materialTaintType(info.TypeOf(b.X))) || (y.c && materialTaintType(info.TypeOf(b.Y))) {
		s.w.reportf(b.OpPos, "secret material compared with %s; use ct.Equal (constant time)", b.Op)
	}
}

func (s *fstate) reportingOn() bool { return s.w.reporting }

// checkSinkArg reports secret byte material anywhere inside a sink
// argument (the value may be wrapped in a composite literal or
// conversion, so the whole subtree is scanned).
func (s *fstate) checkSinkArg(call *ast.CallExpr, arg ast.Expr, sink string) {
	if !s.reportingOn() {
		return
	}
	info := s.info()
	found := false
	ast.Inspect(arg, func(n ast.Node) bool {
		if found {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if _, isLit := e.(*ast.FuncLit); isLit {
			return false // closure bodies are analyzed separately
		}
		if v := s.eval(e); v.c && materialTaintType(info.TypeOf(e)) {
			found = true
			return false
		}
		if _, isCall := e.(*ast.CallExpr); isCall {
			// A call is atomic here: what flows to the sink is the call's
			// result, already checked above — len(secret) is clean
			// metadata, while an unsanctioned transform stays tainted.
			return false
		}
		return true
	})
	if found {
		s.w.reportf(call.Pos(), "secret material flows into %s; redact it (ct.Fingerprint) or drop it", sink)
	}
}

// taintSinkOf classifies output sinks by callee package and name.
func taintSinkOf(fn *types.Func) (string, bool) {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	name := fn.Name()
	switch pkg {
	case "fmt":
		if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Sprint") ||
			strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Append") ||
			name == "Errorf" {
			return "fmt." + name, true
		}
	case "log":
		return "log." + name, true
	case "errors":
		if name == "New" {
			return "errors.New", true
		}
	case "encoding/json":
		if name == "Marshal" || name == "MarshalIndent" || name == "Encode" {
			return "encoding/json." + name, true
		}
	case "os":
		if name == "WriteFile" || name == "Write" || name == "WriteString" {
			return "os." + name, true
		}
	case "net/http":
		// HTTP responses are the serving layer's wire: ResponseWriter.Write
		// (an interface method, so it also catches every concrete writer
		// resolved through it) and http.Error both publish their argument
		// bytes to a remote client. Secret material must be reduced to a
		// SessionFP fingerprint (ct.Fingerprint / sha256) before it may
		// appear in a response body.
		if name == "Write" || name == "Error" {
			return "net/http." + name, true
		}
	case "senss/internal/trace":
		return "trace." + name, true
	}
	return "", false
}

// isCompareCall reports the variable-time comparison helpers.
func isCompareCall(fn *types.Func) bool {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	name := fn.Name()
	switch pkg {
	case "bytes":
		return name == "Equal" || name == "Compare"
	case "reflect":
		return name == "DeepEqual"
	case "strings":
		return name == "EqualFold"
	}
	return false
}

// materialTaintType reports whether t is byte material whose comparison or
// output genuinely leaks secret bytes: strings, bytes, and (nested) byte
// arrays/slices. Integers and structs are excluded — taint rides through
// them, but lengths, counters, and wrappers are not the leak itself.
func materialTaintType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() == types.String || u.Kind() == types.Uint8 || u.Kind() == types.UntypedString
	case *types.Slice:
		return materialTaintType(u.Elem())
	case *types.Array:
		return materialTaintType(u.Elem())
	case *types.Pointer:
		return materialTaintType(u.Elem())
	}
	return false
}

// --- statement walking ---

func (s *fstate) stmts(list []ast.Stmt) {
	for _, st := range list {
		s.stmt(st)
	}
}

func (s *fstate) stmt(st ast.Stmt) {
	switch t := st.(type) {
	case nil:
	case *ast.AssignStmt:
		s.assign(t)
	case *ast.DeclStmt:
		if gd, ok := t.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if len(vs.Values) == 1 && len(vs.Names) > 1 {
					if call, ok := vs.Values[0].(*ast.CallExpr); ok {
						vals := s.callResults(call, len(vs.Names))
						for i, name := range vs.Names {
							s.merge(s.info().Defs[name], vals[i])
						}
						return
					}
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						s.merge(s.info().Defs[name], s.eval(vs.Values[i]))
					}
				}
			}
		}
	case *ast.ExprStmt:
		s.eval(t.X)
	case *ast.IfStmt:
		s.stmt(t.Init)
		s.eval(t.Cond)
		s.stmts(t.Body.List)
		s.stmt(t.Else)
	case *ast.BlockStmt:
		s.stmts(t.List)
	case *ast.ForStmt:
		s.stmt(t.Init)
		s.eval(t.Cond)
		s.stmt(t.Post)
		s.stmts(t.Body.List)
	case *ast.RangeStmt:
		v := s.eval(t.X)
		if t.Key != nil {
			s.assignExpr(t.Key, v)
		}
		if t.Value != nil {
			s.assignExpr(t.Value, v)
		}
		s.stmts(t.Body.List)
	case *ast.ReturnStmt:
		s.recordReturn(t)
	case *ast.SwitchStmt:
		s.stmt(t.Init)
		s.eval(t.Tag)
		for _, c := range t.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					// A case clause against a switch tag is a comparison.
					if tag := t.Tag; tag != nil {
						s.checkCaseCompare(tag, e)
					}
					s.eval(e)
				}
				s.stmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		s.stmt(t.Init)
		s.stmt(t.Assign)
		for _, c := range t.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.stmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range t.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				s.stmt(cc.Comm)
				s.stmts(cc.Body)
			}
		}
	case *ast.DeferStmt:
		s.eval(t.Call)
	case *ast.GoStmt:
		s.eval(t.Call)
	case *ast.SendStmt:
		s.eval(t.Chan)
		s.eval(t.Value)
	case *ast.LabeledStmt:
		s.stmt(t.Stmt)
	case *ast.IncDecStmt:
		s.eval(t.X)
	}
}

// checkCaseCompare treats `switch tag { case e }` as tag == e.
func (s *fstate) checkCaseCompare(tag, e ast.Expr) {
	if !s.reportingOn() {
		return
	}
	info := s.info()
	tv, ev := s.eval(tag), s.eval(e)
	if (tv.c && materialTaintType(info.TypeOf(tag))) || (ev.c && materialTaintType(info.TypeOf(e))) {
		s.w.reportf(e.Pos(), "secret material compared with case clause; use ct.Equal (constant time)")
	}
}

// assign handles every AssignStmt shape: parallel, multi-value call,
// two-value map/type-assert reads.
func (s *fstate) assign(t *ast.AssignStmt) {
	if len(t.Lhs) > 1 && len(t.Rhs) == 1 {
		var vals []tval
		switch r := ast.Unparen(t.Rhs[0]).(type) {
		case *ast.CallExpr:
			vals = s.callResults(r, len(t.Lhs))
		default:
			v := s.eval(t.Rhs[0])
			vals = make([]tval, len(t.Lhs))
			vals[0] = v // map read / type assert: the ok bool is clean
		}
		for i, lhs := range t.Lhs {
			s.assignExpr(lhs, vals[i])
		}
		return
	}
	for i, lhs := range t.Lhs {
		if i >= len(t.Rhs) {
			break
		}
		v := s.eval(t.Rhs[i])
		if t.Tok != token.ASSIGN && t.Tok != token.DEFINE {
			// Compound assignment (^=, +=, |=, ...) folds the old value in.
			v = v.or(s.eval(lhs))
		}
		s.assignExpr(lhs, v)
	}
}

// assignExpr merges v into the object behind lhs (the root container for
// element and pointer writes). Writes that pass through a struct-field
// selector do not taint the container, matching the field-read rule:
// annotated fields carry their own taint, and tainting the whole struct
// for one field write floods everything the struct later touches.
func (s *fstate) assignExpr(lhs ast.Expr, v tval) {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		if obj := s.info().Defs[id]; obj != nil {
			s.merge(obj, v)
			return
		}
		s.merge(s.info().Uses[id], v)
		return
	}
	if s.throughField(lhs) {
		return
	}
	s.merge(s.rootObj(lhs), v)
}

// throughField reports whether lhs reaches its root object through a
// struct-field selection (x.f = v, x.f[i] = v, ...). Package-qualified
// identifiers (pkg.Var) are not field selections.
func (s *fstate) throughField(lhs ast.Expr) bool {
	for {
		switch t := lhs.(type) {
		case *ast.ParenExpr:
			lhs = t.X
		case *ast.IndexExpr:
			lhs = t.X
		case *ast.SliceExpr:
			lhs = t.X
		case *ast.StarExpr:
			lhs = t.X
		case *ast.SelectorExpr:
			if id, ok := t.X.(*ast.Ident); ok {
				if _, isPkg := s.info().Uses[id].(*types.PkgName); isPkg {
					return false
				}
			}
			return true
		default:
			return false
		}
	}
}

// recordReturn folds return-value taints into the function's summary.
func (s *fstate) recordReturn(ret *ast.ReturnStmt) {
	sum := s.w.summaryFor(s.fn)
	sig := s.fn.obj.Type().(*types.Signature)
	var vals []tval
	switch {
	case len(ret.Results) == 0 && sig.Results().Len() > 0:
		// Naked return: read the named result objects.
		for i := 0; i < sig.Results().Len(); i++ {
			vals = append(vals, s.env[sig.Results().At(i)])
		}
	case len(ret.Results) == 1 && sig.Results().Len() > 1:
		if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
			vals = s.callResults(call, sig.Results().Len())
		} else {
			vals = make([]tval, sig.Results().Len())
		}
	default:
		for _, r := range ret.Results {
			vals = append(vals, s.eval(r))
		}
	}
	for i, v := range vals {
		if i >= len(sum.resultConst) {
			break
		}
		if v.c && !sum.resultConst[i] {
			sum.resultConst[i] = true
			s.w.changed = true
		}
		if sum.resultFrom[i]|v.ps != sum.resultFrom[i] {
			sum.resultFrom[i] |= v.ps
			s.w.changed = true
		}
	}
}
