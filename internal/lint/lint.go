// Package lint is senss-lint: a domain-specific static-analysis suite for
// this repository, built only on the standard library's go/parser, go/ast
// and go/types (the module is developed offline, so no x/tools).
//
// The simulator depends on two properties the Go compiler cannot check:
//
//   - Determinism. DESIGN.md §6 requires bit-reproducible runs for a fixed
//     seed: the sim engine hands out a single run token, so the only ways
//     nondeterminism can creep in are map iteration order reaching
//     scheduling/stats/trace output, host time, global math/rand, sync.Map,
//     or goroutines created outside the engine.
//   - Secret hygiene. Group session keys, bus masks, and memory pads (§4 of
//     the paper) must never flow into logs, traces, or error strings — the
//     classic implementation pitfall of pad-based schemes.
//
// Each Analyzer encodes one such property. The cmd/senss-lint driver runs
// the registry over every package in the module; deliberate exceptions are
// annotated in source with senss-lint:ignore directives that require a
// written reason, so every waiver is an audited decision.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one check in the registry.
type Analyzer struct {
	// Name is the identifier used in reports and ignore directives.
	Name string
	// Doc is a one-line description for -list output.
	Doc string
	// Scope restricts the analyzer to packages whose module-relative path
	// has one of these prefixes ("" matches the module root package, "cmd"
	// matches every command). A nil scope applies everywhere.
	Scope []string
	// Run inspects one package and reports findings through the pass.
	// Exactly one of Run and RunModule is set.
	Run func(*Pass)
	// RunModule inspects every package at once — the shape interprocedural
	// analyses need, since a flow can enter in one package and sink in
	// another. Scope still filters which packages' findings are kept.
	RunModule func(*ModulePass)
}

// applies reports whether the analyzer covers the package at relPath.
func (a *Analyzer) applies(relPath string) bool {
	if a.Scope == nil {
		return true
	}
	for _, p := range a.Scope {
		if relPath == p || strings.HasPrefix(relPath, p+"/") {
			return true
		}
	}
	return false
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	report   func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when type information is missing
// (analyzers degrade gracefully on packages with type errors).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Pkg.Info == nil {
		return nil
	}
	return p.Pkg.Info.TypeOf(e)
}

// PkgNameOf resolves an identifier to the import path of the package it
// names ("" when it is not a package name). This is how analyzers tell a
// genuine fmt.Errorf from a local variable that happens to be called fmt.
func (p *Pass) PkgNameOf(id *ast.Ident) string {
	if p.Pkg.Info == nil {
		return ""
	}
	if pn, ok := p.Pkg.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// CalleePkgPath resolves the import path of the package a call's callee
// belongs to, handling both pkg.Func selectors and method values with
// declared package-level receivers. Returns "" when unresolvable.
func (p *Pass) CalleePkgPath(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if path := p.PkgNameOf(id); path != "" {
			return path
		}
	}
	if p.Pkg.Info != nil {
		if obj := p.Pkg.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil {
			return obj.Pkg().Path()
		}
	}
	return ""
}

// ModulePass carries one (analyzer, whole module) unit of work for
// analyzers that need the cross-package view.
type ModulePass struct {
	Analyzer *Analyzer
	// Pkgs is every loaded package, sorted by import path, sharing one
	// token.FileSet and one type-checked object space (a *types.Var seen
	// from two packages is the same pointer).
	Pkgs   []*Package
	Fset   *token.FileSet
	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Registry returns the default analyzer suite, in reporting order.
func Registry() []*Analyzer {
	return []*Analyzer{
		AnalyzerDeterminism(),
		AnalyzerNondeterm(),
		AnalyzerSecrets(),
		AnalyzerCycleAcct(),
		AnalyzerDroppedErr(),
		AnalyzerTaintflow(),
		AnalyzerHotpath(),
		AnalyzerLockguard(),
	}
}

// RegistryNames returns the analyzer names of the default suite — the
// namespace senss-lint:ignore directives are validated against.
func RegistryNames() map[string]bool {
	names := make(map[string]bool)
	for _, a := range Registry() {
		names[a.Name] = true
	}
	return names
}

// RunAnalyzers executes every applicable analyzer over the packages,
// filters findings through senss-lint:ignore directives, and appends a
// diagnostic for each malformed or reason-less directive. The result is
// sorted by position for reproducible output.
func RunAnalyzers(analyzers []*Analyzer, pkgs []*Package) []Diagnostic {
	// Waiver directives may name any analyzer of the default suite plus
	// whatever extra analyzers this run carries (fixture tests construct
	// ad-hoc ones).
	known := RegistryNames()
	for _, a := range analyzers {
		known[a.Name] = true
	}
	sups := make([]*suppressions, len(pkgs))
	for i, pkg := range pkgs {
		sups[i] = collectSuppressions(pkg, known)
	}
	// suppressed consults every package's waivers: module-level analyzers
	// report into files of any package, and supEntry.covers matches on the
	// diagnostic's filename, so scanning all sets is exact.
	suppressed := func(d Diagnostic) bool {
		for _, sup := range sups {
			if sup.suppresses(d) {
				return true
			}
		}
		return false
	}
	var out []Diagnostic
	for i, pkg := range pkgs {
		sup := sups[i]
		for _, a := range analyzers {
			if a.Run == nil || !a.applies(pkg.RelPath) {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, report: func(d Diagnostic) {
				if !sup.suppresses(d) {
					out = append(out, d)
				}
			}}
			a.Run(pass)
		}
		out = append(out, sup.problems...)
	}
	if len(pkgs) > 0 {
		// scoped filters the module view down to the packages the analyzer
		// covers, so Scope keeps meaning the same thing in both modes.
		for _, a := range analyzers {
			if a.RunModule == nil {
				continue
			}
			var scoped []*Package
			for _, pkg := range pkgs {
				if a.applies(pkg.RelPath) {
					scoped = append(scoped, pkg)
				}
			}
			if len(scoped) == 0 {
				continue
			}
			mp := &ModulePass{Analyzer: a, Pkgs: scoped, Fset: scoped[0].Fset,
				report: func(d Diagnostic) {
					if !suppressed(d) {
						out = append(out, d)
					}
				}}
			a.RunModule(mp)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}
