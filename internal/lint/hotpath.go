package lint

// hotpath is the allocation-and-escape discipline analyzer for the
// simulator inner loop (DESIGN.md §13). ROADMAP item 3 requires the
// per-cycle paths — the sim event loop, bus transactions, coherence
// snoops, cache probes, and the memsec pad datapath — to run without
// steady-state heap allocation, because a stray make([]byte) per bus
// transaction silently regresses the throughput that makes paper-scale
// sweeps affordable. The Go compiler cannot enforce "this function does
// not allocate"; this analyzer encodes it.
//
// Annotation grammar:
//
//	//senss-lint:hotpath
//	    in a function's doc comment marks it hot: its body is checked
//	    and every module function it calls must itself be hot or cold.
//	//senss-lint:coldpath <reason>
//	    marks a function as a sanctioned exit from hot code —
//	    init/teardown, first-touch growth, failure diagnostics. The
//	    written reason is mandatory (suppress.go enforces it); the body
//	    is not checked.
//
// Rules inside a hot function:
//
//   - Callee discipline. A call to a module function must target a hot
//     or coldpath-annotated function. Interface method calls are
//     resolved against every module type implementing the interface
//     (go/types method sets), and each unannotated implementation is a
//     finding. Calls through func values (commit callbacks, OnData) are
//     allowed — the closure's creation site is where the discipline
//     bites. External (standard library) calls are limited to a small
//     allowlist; fmt calls are flagged specially since they both
//     allocate and convert every operand to an interface.
//   - No steady-state allocation: make/new, &composite and slice/map
//     literals, growing append, string concatenation and string<->[]byte
//     conversions, func literals (closure headers), boxing at interface
//     conversions (call arguments, assignments, returns), go statements,
//     and defer inside a loop. Map iteration is also flagged: it is the
//     snoop-loop hazard the determinism analyzer fights, and its
//     per-iteration overhead has no place on a per-cycle path.
//   - Failure paths are free. The entire argument subtree of a panic
//     call is exempt — panic(fmt.Sprintf(...)) is the idiom for
//     invariant violations and the simulator is already dead.
//
// Deliberate exceptions use the ordinary audited-waiver protocol:
// //senss-lint:ignore hotpath <reason>. Every waiver in the tree is a
// written decision (first-touch growth, amortized slice append,
// per-miss transaction construction deferred to the ROADMAP-3 pooling
// rewrite).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AnalyzerHotpath returns the hot-path allocation discipline analyzer.
func AnalyzerHotpath() *Analyzer {
	a := &Analyzer{
		Name: "hotpath",
		Doc:  "functions marked //senss-lint:hotpath must not allocate and may only call hot, coldpath, or allowlisted callees",
	}
	a.RunModule = func(mp *ModulePass) {
		newHotWorld(mp).run()
	}
	return a
}

// hotAllowedPkgs are the external packages hot code may call: all are
// alloc-free in the forms the simulator uses (the event heap, word
// packing, bit twiddling).
var hotAllowedPkgs = map[string]bool{
	"container/heap":  true,
	"encoding/binary": true,
	"math/bits":       true,
}

// hotFunc is one module function with a body, plus its annotation state.
type hotFunc struct {
	obj  *types.Func
	decl *ast.FuncDecl
	pkg  *Package
	hot  bool
	cold bool
}

// hotWorld is the whole-module analysis state.
type hotWorld struct {
	mp    *ModulePass
	fset  *token.FileSet
	funcs map[*types.Func]*hotFunc
	order []*hotFunc
	// named lists every module named type, for interface resolution.
	named     []types.Type
	implCache map[*types.Func][]*types.Func
	diags     []Diagnostic
	// loaded is the set of import paths in this pass, and modulePath the
	// module they belong to: on a scoped run (senss-lint ./internal/bus)
	// module packages outside the scope are type-checked without their
	// comments, so their annotations are invisible and calls into them
	// must not be judged. The ./... run remains the authority.
	loaded     map[string]bool
	modulePath string
}

func newHotWorld(mp *ModulePass) *hotWorld {
	w := &hotWorld{
		mp:        mp,
		fset:      mp.Fset,
		funcs:     make(map[*types.Func]*hotFunc),
		implCache: make(map[*types.Func][]*types.Func),
		loaded:    make(map[string]bool),
	}
	for _, pkg := range mp.Pkgs {
		w.loaded[pkg.ImportPath] = true
		if w.modulePath == "" {
			w.modulePath = strings.TrimSuffix(strings.TrimSuffix(pkg.ImportPath, pkg.RelPath), "/")
		}
	}
	return w
}

// unloadedModulePkg reports whether pkgPath is a module package outside
// this pass's scope — annotated or not, we cannot tell.
func (w *hotWorld) unloadedModulePkg(pkgPath string) bool {
	if w.loaded[pkgPath] || w.modulePath == "" {
		return false
	}
	return pkgPath == w.modulePath || strings.HasPrefix(pkgPath, w.modulePath+"/")
}

func (w *hotWorld) run() {
	w.build()
	for _, fn := range w.order {
		if fn.hot {
			(&hotChecker{w: w, fn: fn}).check()
		}
	}
	sort.Slice(w.diags, func(i, j int) bool {
		a, b := w.diags[i], w.diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	for _, d := range w.diags {
		w.mp.report(d)
	}
}

func (w *hotWorld) reportf(pos token.Pos, format string, args ...any) {
	w.diags = append(w.diags, Diagnostic{
		Analyzer: w.mp.Analyzer.Name,
		Pos:      w.fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// hotDirective classifies a doc comment: hot, cold, or neither.
func hotDirective(doc *ast.CommentGroup) (hot, cold bool) {
	if doc == nil {
		return false, false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == "senss-lint:hotpath" {
			hot = true
		}
		if strings.HasPrefix(text, "senss-lint:coldpath") {
			cold = true
		}
	}
	return hot, cold
}

// build indexes every function body and named type of the module.
func (w *hotWorld) build() {
	for _, pkg := range w.mp.Pkgs {
		if pkg.Info == nil || pkg.Types == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				hf := &hotFunc{obj: obj, decl: fd, pkg: pkg}
				hf.hot, hf.cold = hotDirective(fd.Doc)
				if hf.hot && hf.cold {
					w.reportf(fd.Pos(), "%s is marked both hotpath and coldpath; pick one", obj.Name())
					hf.cold = false
				}
				w.funcs[obj] = hf
				w.order = append(w.order, hf)
			}
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // already sorted
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
				w.named = append(w.named, tn.Type())
			}
		}
	}
	sort.Slice(w.order, func(i, j int) bool {
		return w.order[i].decl.Pos() < w.order[j].decl.Pos()
	})
}

// implementations resolves an interface method to every concrete module
// method that can stand behind it (mirrors taintflow's resolution).
func (w *hotWorld) implementations(callee *types.Func) []*types.Func {
	if impls, ok := w.implCache[callee]; ok {
		return impls
	}
	var out []*types.Func
	sig, _ := callee.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		w.implCache[callee] = nil
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	if iface == nil {
		w.implCache[callee] = nil
		return nil
	}
	for _, t := range w.named {
		if _, isIface := t.Underlying().(*types.Interface); isIface {
			continue
		}
		pt := types.NewPointer(t)
		if !types.Implements(t, iface) && !types.Implements(pt, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(pt, true, callee.Pkg(), callee.Name())
		if m, ok := obj.(*types.Func); ok {
			if _, known := w.funcs[m]; known {
				out = append(out, m)
			}
		}
	}
	w.implCache[callee] = out
	return out
}

// hotChecker walks one hot function body.
type hotChecker struct {
	w         *hotWorld
	fn        *hotFunc
	loopDepth int
}

func (c *hotChecker) info() *types.Info { return c.fn.pkg.Info }

func (c *hotChecker) check() {
	c.stmts(c.fn.decl.Body.List)
}

func (c *hotChecker) stmts(list []ast.Stmt) {
	for _, s := range list {
		c.stmt(s)
	}
}

func (c *hotChecker) stmt(s ast.Stmt) {
	switch t := s.(type) {
	case nil:
	case *ast.AssignStmt:
		for _, r := range t.Rhs {
			c.expr(r)
		}
		for _, l := range t.Lhs {
			c.expr(l)
		}
		// Boxing at assignment: storing a non-pointer concrete value into
		// an interface-typed location allocates the interface payload.
		if len(t.Lhs) == len(t.Rhs) {
			for i := range t.Lhs {
				if boxes(c.info().TypeOf(t.Lhs[i]), c.info().TypeOf(t.Rhs[i])) {
					c.w.reportf(t.Rhs[i].Pos(), "interface conversion boxes %s in hot code",
						typeName(c.info().TypeOf(t.Rhs[i])))
				}
			}
		}
	case *ast.DeclStmt:
		if gd, ok := t.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, v := range vs.Values {
					c.expr(v)
					if i < len(vs.Names) {
						if obj := c.info().Defs[vs.Names[i]]; obj != nil {
							if boxes(obj.Type(), c.info().TypeOf(v)) {
								c.w.reportf(v.Pos(), "interface conversion boxes %s in hot code",
									typeName(c.info().TypeOf(v)))
							}
						}
					}
				}
			}
		}
	case *ast.ExprStmt:
		c.expr(t.X)
	case *ast.IfStmt:
		c.stmt(t.Init)
		c.expr(t.Cond)
		c.stmts(t.Body.List)
		c.stmt(t.Else)
	case *ast.BlockStmt:
		c.stmts(t.List)
	case *ast.ForStmt:
		c.stmt(t.Init)
		c.expr(t.Cond)
		c.stmt(t.Post)
		c.loopDepth++
		c.stmts(t.Body.List)
		c.loopDepth--
	case *ast.RangeStmt:
		if tx := c.info().TypeOf(t.X); tx != nil {
			if _, isMap := tx.Underlying().(*types.Map); isMap {
				c.w.reportf(t.For, "map iteration in hot code; use a slice or flat array")
			}
		}
		c.expr(t.X)
		c.loopDepth++
		c.stmts(t.Body.List)
		c.loopDepth--
	case *ast.ReturnStmt:
		sig, _ := c.fn.obj.Type().(*types.Signature)
		for i, r := range t.Results {
			c.expr(r)
			if sig != nil && len(t.Results) == sig.Results().Len() && i < sig.Results().Len() {
				if boxes(sig.Results().At(i).Type(), c.info().TypeOf(r)) {
					c.w.reportf(r.Pos(), "interface conversion boxes %s in hot code",
						typeName(c.info().TypeOf(r)))
				}
			}
		}
	case *ast.SwitchStmt:
		c.stmt(t.Init)
		c.expr(t.Tag)
		for _, cl := range t.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					c.expr(e)
				}
				c.stmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		c.stmt(t.Init)
		c.stmt(t.Assign)
		for _, cl := range t.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				c.stmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, cl := range t.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				c.stmt(cc.Comm)
				c.stmts(cc.Body)
			}
		}
	case *ast.DeferStmt:
		if c.loopDepth > 0 {
			c.w.reportf(t.Defer, "defer inside a loop allocates per iteration in hot code")
		}
		c.call(t.Call)
	case *ast.GoStmt:
		c.w.reportf(t.Go, "go statement in hot code; the sim engine owns all concurrency")
		c.call(t.Call)
	case *ast.SendStmt:
		c.expr(t.Chan)
		c.expr(t.Value)
		if ch, ok := c.info().TypeOf(t.Chan).Underlying().(*types.Chan); ok {
			if boxes(ch.Elem(), c.info().TypeOf(t.Value)) {
				c.w.reportf(t.Value.Pos(), "interface conversion boxes %s in hot code",
					typeName(c.info().TypeOf(t.Value)))
			}
		}
	case *ast.LabeledStmt:
		c.stmt(t.Stmt)
	case *ast.IncDecStmt:
		c.expr(t.X)
	}
}

func (c *hotChecker) expr(e ast.Expr) {
	switch t := e.(type) {
	case nil:
	case *ast.ParenExpr:
		c.expr(t.X)
	case *ast.UnaryExpr:
		if t.Op == token.AND {
			if cl, ok := t.X.(*ast.CompositeLit); ok {
				c.w.reportf(t.Pos(), "heap allocation in hot code: &%s composite literal escapes",
					typeName(c.info().TypeOf(cl)))
				c.compositeElts(cl)
				return
			}
		}
		c.expr(t.X)
	case *ast.CompositeLit:
		if ct := c.info().TypeOf(t); ct != nil {
			switch ct.Underlying().(type) {
			case *types.Slice:
				c.w.reportf(t.Pos(), "heap allocation in hot code: slice literal")
			case *types.Map:
				c.w.reportf(t.Pos(), "heap allocation in hot code: map literal")
			}
		}
		c.compositeElts(t)
	case *ast.FuncLit:
		c.w.reportf(t.Pos(), "closure (func literal) allocates in hot code; hoist it or restructure")
		// The closure runs from hot code: its body is held to the same
		// discipline.
		inner := &hotChecker{w: c.w, fn: c.fn}
		inner.stmts(t.Body.List)
	case *ast.BinaryExpr:
		c.expr(t.X)
		c.expr(t.Y)
		if t.Op == token.ADD {
			if bt := c.info().TypeOf(t); bt != nil {
				if b, ok := bt.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					c.w.reportf(t.OpPos, "string concatenation allocates in hot code")
				}
			}
		}
	case *ast.CallExpr:
		c.call(t)
	case *ast.SelectorExpr:
		c.expr(t.X)
	case *ast.IndexExpr:
		c.expr(t.X)
		c.expr(t.Index)
	case *ast.SliceExpr:
		c.expr(t.X)
		c.expr(t.Low)
		c.expr(t.High)
		c.expr(t.Max)
	case *ast.StarExpr:
		c.expr(t.X)
	case *ast.TypeAssertExpr:
		c.expr(t.X)
	case *ast.KeyValueExpr:
		c.expr(t.Value)
	}
}

func (c *hotChecker) compositeElts(cl *ast.CompositeLit) {
	for _, el := range cl.Elts {
		c.expr(el)
	}
}

// call classifies one call expression: conversion, builtin, module
// callee, interface dispatch, or external.
func (c *hotChecker) call(call *ast.CallExpr) {
	info := c.info()

	// Conversions: T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			c.checkConversion(call, tv.Type, info.TypeOf(call.Args[0]))
			c.expr(call.Args[0])
		}
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				c.w.reportf(call.Pos(), "make allocates in hot code")
			case "new":
				c.w.reportf(call.Pos(), "new allocates in hot code")
			case "append":
				c.w.reportf(call.Pos(), "append may allocate (slice growth) in hot code")
			case "panic":
				// Failure path: the whole argument subtree is exempt.
				return
			}
			for _, a := range call.Args {
				c.expr(a)
			}
			return
		}
	}

	callee := staticCallee(info, call)
	reported := false
	if callee != nil {
		if tf, isModule := c.w.funcs[callee]; isModule {
			if !tf.hot && !tf.cold {
				c.w.reportf(call.Pos(),
					"hot function %s calls %s, which is not marked //senss-lint:hotpath (or coldpath)",
					c.fn.obj.Name(), callee.Name())
				reported = true
			}
		} else if isInterfaceMethod(callee) {
			var badNames []string
			for _, impl := range c.w.implementations(callee) {
				hf := c.w.funcs[impl]
				if hf != nil && !hf.hot && !hf.cold {
					badNames = append(badNames, methodName(impl))
				}
			}
			if len(badNames) > 0 {
				sort.Strings(badNames)
				c.w.reportf(call.Pos(),
					"interface call %s resolves to unannotated implementation(s): %s",
					callee.Name(), strings.Join(badNames, ", "))
				reported = true
			}
		} else {
			pkgPath := ""
			if callee.Pkg() != nil {
				pkgPath = callee.Pkg().Path()
			}
			switch {
			case pkgPath == "" || hotAllowedPkgs[pkgPath]:
				// Universe-scope (error.Error) or allowlisted package.
			case c.w.unloadedModulePkg(pkgPath):
				// Module code outside a scoped run: its annotations are
				// not visible here; the ./... run judges this call.
			case pkgPath == "fmt":
				c.w.reportf(call.Pos(), "fmt.%s allocates in hot code (formatting state and boxed operands)", callee.Name())
				reported = true
			default:
				c.w.reportf(call.Pos(), "hot function %s calls %s.%s, outside the hot-path allowlist",
					c.fn.obj.Name(), pkgPath, callee.Name())
				reported = true
			}
		}
	}

	// Boxing at call arguments (skipped when the call itself was already
	// reported — one finding per site keeps waivers readable).
	if !reported {
		if sig, ok := info.TypeOf(call.Fun).(*types.Signature); ok && sig != nil {
			c.checkArgBoxing(call, sig)
		}
	}

	c.expr(call.Fun)
	for _, a := range call.Args {
		c.expr(a)
	}
}

// checkConversion flags string<->bytes conversions and explicit boxing.
func (c *hotChecker) checkConversion(call *ast.CallExpr, dst, src types.Type) {
	if dst == nil || src == nil {
		return
	}
	du, su := dst.Underlying(), src.Underlying()
	if b, ok := du.(*types.Basic); ok && b.Info()&types.IsString != 0 {
		if _, fromSlice := su.(*types.Slice); fromSlice {
			c.w.reportf(call.Pos(), "string conversion allocates in hot code")
			return
		}
	}
	if ds, ok := du.(*types.Slice); ok {
		if el, ok := ds.Elem().Underlying().(*types.Basic); ok &&
			(el.Kind() == types.Uint8 || el.Kind() == types.Int32) {
			if b, ok := su.(*types.Basic); ok && b.Info()&types.IsString != 0 {
				c.w.reportf(call.Pos(), "string conversion allocates in hot code")
				return
			}
		}
	}
	if boxes(dst, src) {
		c.w.reportf(call.Pos(), "interface conversion boxes %s in hot code", typeName(src))
	}
}

// checkArgBoxing flags non-pointer concrete arguments passed to
// interface-typed parameters (including variadic ...any).
func (c *hotChecker) checkArgBoxing(call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	n := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= n-1:
			if call.Ellipsis != token.NoPos {
				continue // xs... passes the slice through
			}
			if sl, ok := params.At(n - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < n:
			pt = params.At(i).Type()
		}
		if boxes(pt, c.info().TypeOf(arg)) {
			c.w.reportf(arg.Pos(), "interface conversion boxes %s in hot code",
				typeName(c.info().TypeOf(arg)))
		}
	}
}

// staticCallee resolves the called *types.Func, or nil for func values.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isInterfaceMethod reports whether fn is declared on an interface.
func isInterfaceMethod(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	_, ok := sig.Recv().Type().Underlying().(*types.Interface)
	return ok
}

// methodName renders Type.Method for diagnostics.
func methodName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return n.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

// boxes reports whether assigning a src-typed value to a dst-typed
// location allocates an interface payload: dst is an interface, src is
// concrete, and src's representation does not fit the interface data
// word (pointers, channels, maps, funcs, and unsafe pointers do).
func boxes(dst, src types.Type) bool {
	if dst == nil || src == nil {
		return false
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return false
	}
	if _, ok := src.Underlying().(*types.Interface); ok {
		return false
	}
	switch u := src.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		if u.Kind() == types.UnsafePointer || u.Kind() == types.UntypedNil {
			return false
		}
	}
	return true
}

// typeName renders a type tersely for diagnostics.
func typeName(t types.Type) string {
	if t == nil {
		return "value"
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
