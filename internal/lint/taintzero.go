package lint

// taintzero implements the path-sensitive half of the taintflow analyzer:
// every function that acquires a secret through an acquire-flagged origin
// (taintOrigins) must erase it on every return path — including the error
// paths a happy-path zeroize wipe misses. The check is deliberately
// syntactic: it walks the statement tree with a tiny abstract state
// (acquired / zeroized / escaped) and merges branches conservatively, so
// a finding always names a concrete return that can leave the secret live
// in memory.
//
// Recognized erasures:
//
//   - a call to a function named Zero/Zeroize/zeroize/Wipe/wipe with the
//     secret as an argument or receiver (ct.Zero and the tree's existing
//     zeroize helpers both match);
//   - the clear(secret) builtin (Go 1.21+), which zeroes every element;
//   - copy(secret, zeroSrc) from a full-length zero source: either
//     make([]T, len(secret)) — freshly zeroed at exactly the right
//     length — or a buffer following the zero-naming convention
//     (an identifier or field containing "zero"), whose sizing the
//     surrounding code owns;
//   - `for i := range secret { secret[i] = 0 }`;
//   - the counted form, `for i := 0; i < len(secret); i++ { secret[i] = 0 }`;
//   - assignment of an empty composite literal (secret = T{});
//   - the deferred form of the call, which covers every later return.
//
// Exemptions: a return whose expressions mention the secret transfers
// ownership to the caller (which becomes the acquiring function in the
// caller's own analysis when listed in the origin table), and a store of
// the secret into a field, map, or slice element escapes it to a longer-
// lived owner whose lifecycle this function cannot end.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// acquiredSecret is one tracked (object, origin) pair in a function body.
type acquiredSecret struct {
	obj  types.Object
	stmt ast.Stmt // the acquiring assignment
	what string
}

// zstate is the abstract state of one control-flow path.
type zstate struct {
	acq bool // the acquisition site has executed
	z   bool // the secret has been erased (or a deferred erase is armed)
	esc bool // the secret escaped to longer-lived storage
}

// checkZeroize enforces zeroize-on-all-paths for every acquire-flagged
// origin binding in fn. Runs only during the reporting pass.
func (w *taintWorld) checkZeroize(fn *taintFunc) {
	if !w.reporting {
		return
	}
	secrets := w.findAcquisitions(fn)
	for _, sec := range secrets {
		zw := &zeroWalker{w: w, fn: fn, sec: sec}
		st, falls := zw.stmts(fn.decl.Body.List, zstate{})
		if falls && st.acq && !st.z && !st.esc {
			w.reportf(fn.decl.Body.Rbrace,
				"%s %q is not zeroized before the function returns; call ct.Zero on every path",
				sec.what, objName(sec.obj))
		}
	}
}

// findAcquisitions locates assignments binding an acquire-origin result to
// a local identifier.
func (w *taintWorld) findAcquisitions(fn *taintFunc) []acquiredSecret {
	info := fn.pkg.Info
	var out []acquiredSecret
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		var callee *types.Func
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			callee, _ = info.Uses[fun].(*types.Func)
		case *ast.SelectorExpr:
			callee, _ = info.Uses[fun.Sel].(*types.Func)
		}
		if callee == nil {
			return true
		}
		orig, ok := taintOrigins[callee.FullName()]
		if !ok || !orig.acquire {
			return true
		}
		for _, r := range orig.results {
			if r >= len(as.Lhs) {
				continue
			}
			id, ok := as.Lhs[r].(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj != nil {
				out = append(out, acquiredSecret{obj: obj, stmt: as, what: orig.what})
			}
		}
		return true
	})
	return out
}

func objName(obj types.Object) string {
	if obj == nil {
		return "?"
	}
	return obj.Name()
}

// zeroWalker carries one (function, secret) path walk.
type zeroWalker struct {
	w   *taintWorld
	fn  *taintFunc
	sec acquiredSecret
}

func (zw *zeroWalker) info() *types.Info { return zw.fn.pkg.Info }

// mentions reports whether e references the tracked secret object.
func (zw *zeroWalker) mentions(e ast.Node) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if zw.info().Uses[id] == zw.sec.obj || zw.info().Defs[id] == zw.sec.obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// isZeroizeCall recognizes a call erasing the secret: a function named
// like an eraser whose receiver or arguments mention the secret, or one
// of the builtin erasure forms (clear, full-length copy from zeros).
func (zw *zeroWalker) isZeroizeCall(call *ast.CallExpr) bool {
	var name string
	var recv ast.Expr
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := zw.info().Uses[fun].(*types.Builtin); ok {
			return zw.isBuiltinErase(b.Name(), call)
		}
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
		recv = fun.X
	default:
		return false
	}
	if !zeroizerNames[name] {
		return false
	}
	if recv != nil && zw.mentions(recv) {
		return true
	}
	for _, a := range call.Args {
		if zw.mentions(a) {
			return true
		}
	}
	return false
}

// isBuiltinErase recognizes the builtin erasure forms: clear(secret),
// which zeroes every element in place, and copy(secret, src) with a
// full-length zero source. A copy from anything else — including the
// secret itself (copy(secret, secret[8:])) — is data movement, not
// erasure, and isZeroSource rejects it.
func (zw *zeroWalker) isBuiltinErase(name string, call *ast.CallExpr) bool {
	switch name {
	case "clear":
		return len(call.Args) == 1 && zw.mentions(call.Args[0])
	case "copy":
		return len(call.Args) == 2 && zw.mentions(call.Args[0]) && zw.isZeroSource(call.Args[1])
	}
	return false
}

// isZeroSource reports whether e is demonstrably an all-zero source for
// the secret's full length: make([]T, len(secret)) is structurally both,
// and a buffer following the zero-naming convention (an identifier or
// field whose name contains "zero") is accepted with sizing owned by the
// surrounding code.
func (zw *zeroWalker) isZeroSource(e ast.Expr) bool {
	switch src := ast.Unparen(e).(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(src.Name), "zero")
	case *ast.SelectorExpr:
		return strings.Contains(strings.ToLower(src.Sel.Name), "zero")
	case *ast.SliceExpr:
		return zw.isZeroSource(src.X)
	case *ast.CallExpr:
		fn, ok := ast.Unparen(src.Fun).(*ast.Ident)
		if !ok || fn.Name != "make" || len(src.Args) < 2 {
			return false
		}
		ln, ok := ast.Unparen(src.Args[1]).(*ast.CallExpr)
		if !ok || len(ln.Args) != 1 || !zw.mentions(ln.Args[0]) {
			return false
		}
		lf, ok := ast.Unparen(ln.Fun).(*ast.Ident)
		return ok && lf.Name == "len"
	}
	return false
}

// isZeroRange recognizes `for i := range secret { secret[i] = 0 }`.
func (zw *zeroWalker) isZeroRange(r *ast.RangeStmt) bool {
	if !zw.mentions(r.X) || len(r.Body.List) != 1 {
		return false
	}
	as, ok := r.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	idx, ok := as.Lhs[0].(*ast.IndexExpr)
	if !ok || !zw.mentions(idx.X) {
		return false
	}
	if lit, ok := as.Rhs[0].(*ast.BasicLit); ok && lit.Value == "0" {
		return true
	}
	return false
}

// isZeroFor recognizes the counted zeroing idiom,
// `for i := 0; i < len(secret); i++ { secret[i] = 0 }`: index declared
// zero, bounded by the secret's length, incremented by one, with a single
// body statement storing zero through that index. (An empty secret skips
// the body, but then there is nothing left to erase, so the loop is still
// a complete erasure.)
func (zw *zeroWalker) isZeroFor(f *ast.ForStmt) bool {
	init, ok := f.Init.(*ast.AssignStmt)
	if !ok || init.Tok != token.DEFINE || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
		return false
	}
	iv, ok := init.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	if lit, ok := init.Rhs[0].(*ast.BasicLit); !ok || lit.Value != "0" {
		return false
	}
	cond, ok := f.Cond.(*ast.BinaryExpr)
	if !ok || cond.Op != token.LSS || !isIdentNamed(cond.X, iv.Name) {
		return false
	}
	bound, ok := ast.Unparen(cond.Y).(*ast.CallExpr)
	if !ok || len(bound.Args) != 1 || !zw.mentions(bound.Args[0]) {
		return false
	}
	if fn, ok := ast.Unparen(bound.Fun).(*ast.Ident); !ok || fn.Name != "len" {
		return false
	}
	inc, ok := f.Post.(*ast.IncDecStmt)
	if !ok || inc.Tok != token.INC || !isIdentNamed(inc.X, iv.Name) {
		return false
	}
	if f.Body == nil || len(f.Body.List) != 1 {
		return false
	}
	as, ok := f.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	idx, ok := as.Lhs[0].(*ast.IndexExpr)
	if !ok || !zw.mentions(idx.X) || !isIdentNamed(idx.Index, iv.Name) {
		return false
	}
	lit, ok := as.Rhs[0].(*ast.BasicLit)
	return ok && lit.Value == "0"
}

// isIdentNamed reports whether e is (possibly parenthesized) the bare
// identifier name.
func isIdentNamed(e ast.Expr, name string) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == name
}

// stmts walks a statement list, returning the outgoing state and whether
// control can fall off the end.
func (zw *zeroWalker) stmts(list []ast.Stmt, st zstate) (zstate, bool) {
	for _, s := range list {
		var falls bool
		st, falls = zw.stmt(s, st)
		if !falls {
			return st, false
		}
	}
	return st, true
}

// merge joins two fall-through branch states.
func merge(a, b zstate) zstate {
	return zstate{
		acq: a.acq || b.acq,
		z:   a.z && b.z,
		esc: a.esc && b.esc,
	}
}

func (zw *zeroWalker) stmt(s ast.Stmt, st zstate) (zstate, bool) {
	switch t := s.(type) {
	case nil:
		return st, true
	case *ast.AssignStmt:
		if t == zw.sec.stmt {
			st.acq, st.z, st.esc = true, false, false
			return st, true
		}
		// A store of the secret into a field, map entry, or element
		// escapes it; rebinding the name to something fresh is ignored
		// (aliases are not tracked).
		for i, lhs := range t.Lhs {
			if i < len(t.Rhs) && zw.mentions(t.Rhs[i]) || len(t.Rhs) == 1 && zw.mentions(t.Rhs[0]) {
				switch ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					st.esc = true
				}
			}
		}
		// secret = T{} (empty composite) counts as erasure.
		if len(t.Lhs) == 1 && len(t.Rhs) == 1 {
			if id, ok := ast.Unparen(t.Lhs[0]).(*ast.Ident); ok && zw.mentions(id) {
				if cl, ok := t.Rhs[0].(*ast.CompositeLit); ok && len(cl.Elts) == 0 {
					st.z = true
				}
			}
		}
		return st, true
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(t.X).(*ast.CallExpr); ok && zw.isZeroizeCall(call) {
			st.z = true
		}
		return st, true
	case *ast.DeferStmt:
		if zw.isZeroizeCall(t.Call) {
			st.z = true
		}
		return st, true
	case *ast.ReturnStmt:
		if st.acq && !st.z && !st.esc && !zw.returnsSecret(t) {
			zw.w.reportf(t.Pos(),
				"%s %q is not zeroized on this return path; call ct.Zero before returning (error paths too)",
				zw.sec.what, objName(zw.sec.obj))
		}
		return st, false
	case *ast.BlockStmt:
		return zw.stmts(t.List, st)
	case *ast.IfStmt:
		st, _ = zw.stmt(t.Init, st)
		bodySt, bodyFalls := zw.stmts(t.Body.List, st)
		elseSt, elseFalls := st, true
		if t.Else != nil {
			elseSt, elseFalls = zw.stmt(t.Else, st)
		}
		switch {
		case bodyFalls && elseFalls:
			return merge(bodySt, elseSt), true
		case bodyFalls:
			return bodySt, true
		case elseFalls:
			return elseSt, true
		default:
			return st, false
		}
	case *ast.ForStmt:
		if zw.isZeroFor(t) {
			st.z = true
			return st, true
		}
		st, _ = zw.stmt(t.Init, st)
		// The body may run zero times: its erasures do not count after
		// the loop, but its returns are still checked.
		zw.stmts(t.Body.List, st)
		return st, true
	case *ast.RangeStmt:
		if zw.isZeroRange(t) {
			st.z = true
			return st, true
		}
		zw.stmts(t.Body.List, st)
		return st, true
	case *ast.SwitchStmt:
		return zw.caseBodies(t.Body, st, t.Body != nil && hasDefault(t.Body))
	case *ast.TypeSwitchStmt:
		return zw.caseBodies(t.Body, st, t.Body != nil && hasDefault(t.Body))
	case *ast.SelectStmt:
		return zw.caseBodies(t.Body, st, true)
	case *ast.LabeledStmt:
		return zw.stmt(t.Stmt, st)
	case *ast.BranchStmt:
		// break/continue/goto leave this straight-line path; the loop or
		// label context re-checks from the conservative pre-state.
		return st, false
	default:
		return st, true
	}
}

// caseBodies merges the states of every case clause. Without a default
// the switch may match nothing, so the incoming state joins the merge.
func (zw *zeroWalker) caseBodies(body *ast.BlockStmt, st zstate, exhaustive bool) (zstate, bool) {
	if body == nil {
		return st, true
	}
	merged := st
	haveMerged := !exhaustive
	anyFalls := !exhaustive
	for _, c := range body.List {
		var caseBody []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			caseBody = cc.Body
		case *ast.CommClause:
			caseBody = cc.Body
		default:
			continue
		}
		cs, falls := zw.stmts(caseBody, st)
		if !falls {
			continue
		}
		anyFalls = true
		if !haveMerged {
			merged, haveMerged = cs, true
		} else {
			merged = merge(merged, cs)
		}
	}
	if !anyFalls {
		return st, false
	}
	return merged, true
}

// hasDefault reports whether a switch body carries a default clause.
func hasDefault(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// returnsSecret reports whether the return transfers the secret to the
// caller (any mention in a result expression counts as ownership moving).
func (zw *zeroWalker) returnsSecret(ret *ast.ReturnStmt) bool {
	for _, r := range ret.Results {
		if zw.mentions(r) {
			return true
		}
	}
	return false
}
