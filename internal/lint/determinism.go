package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerDeterminism flags range loops over maps whose iteration order can
// escape into scheduling, statistics, trace output, or error reporting.
// DESIGN.md §6 requires bit-reproducible simulation for a fixed seed; a
// single map-ordered loop feeding any observable output silently breaks it.
//
// A map range loop is accepted without a waiver when its body is provably
// order-insensitive:
//
//   - commutative accumulation (x += v, x |= v, x ^= v, x &= v, x *= v,
//     counters via ++/--, delete(m, k), writes keyed by the loop key);
//   - the single-accumulator min/max pattern `if v < acc { acc = v }`;
//   - collect-then-sort: the loop only appends to slices that are passed to
//     sort.* or slices.Sort* later in the same block.
//
// Anything else — early exits, calls, sends, returns, multi-variable
// tie-breaks — needs either a restructure (sort the keys first) or an
// audited `senss-lint:ignore determinism <reason>` waiver.
func AnalyzerDeterminism() *Analyzer {
	a := &Analyzer{
		Name: "determinism",
		Doc:  "map iteration order must not reach scheduling, stats, traces, or errors",
		Scope: []string{
			"internal/sim", "internal/coherence", "internal/bus",
			"internal/machine", "internal/memsec", "internal/trace",
			"internal/mem", "internal/stats", "internal/core",
			"internal/integrity", "cmd",
		},
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				block, ok := n.(*ast.BlockStmt)
				if !ok {
					return true
				}
				for i, stmt := range block.List {
					rs, ok := stmt.(*ast.RangeStmt)
					if !ok {
						continue
					}
					checkMapRange(pass, rs, block.List[i+1:])
				}
				return true
			})
		}
	}
	return a
}

// checkMapRange reports rs when it iterates a map with an order-sensitive
// body. rest is the statement tail of the enclosing block, consulted for
// the collect-then-sort pattern.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	t := pass.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	ins := &insensitivity{keyVar: identName(rs.Key)}
	ins.checkStmt(rs.Body)
	if ins.ok {
		for _, appended := range ins.appends {
			if !sortedAfter(pass, rest, appended) {
				pass.Reportf(rs.For, "map iteration appends to %q which is never sorted afterwards; iteration order leaks into its element order", appended)
				return
			}
		}
		return
	}
	pass.Reportf(rs.For, "order-sensitive iteration over map %s: sort the keys first, restructure, or waive with senss-lint:ignore determinism <reason>", typeLabel(t))
}

// typeLabel renders a short label for a map type.
func typeLabel(t types.Type) string {
	s := t.String()
	if len(s) > 48 {
		s = s[:45] + "..."
	}
	return s
}

// identName returns the name of an identifier expression, "" otherwise.
func identName(e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// insensitivity is the conservative order-insensitive body checker. ok
// starts true and is cleared by any statement outside the allowed forms;
// appends collects slice variables grown inside the loop, which the caller
// must find sorted after the loop.
type insensitivity struct {
	keyVar  string
	ok      bool
	started bool
	appends []string
}

func (c *insensitivity) fail() { c.ok = false }

func (c *insensitivity) checkStmt(s ast.Stmt) {
	if !c.started {
		c.started = true
		c.ok = true
	}
	if !c.ok {
		return
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			c.checkStmt(st)
		}
	case *ast.IncDecStmt:
		// Counter bumps commute.
	case *ast.AssignStmt:
		c.checkAssign(s)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && identName(call.Fun) == "delete" {
			return // delete(m, k) over distinct keys commutes
		}
		c.fail()
	case *ast.IfStmt:
		c.checkIf(s)
	case *ast.RangeStmt:
		// A nested loop is fine as long as its own body is.
		c.checkStmt(s.Body)
	case *ast.ForStmt:
		c.checkStmt(s.Body)
	case *ast.BranchStmt:
		if s.Tok != token.CONTINUE {
			c.fail() // break/goto make the outcome depend on visit order
		}
	case *ast.DeclStmt:
		// Local declarations are per-iteration scratch.
	default:
		c.fail()
	}
}

// checkAssign admits commutative compound assignments, appends (recorded
// for the sorted-after check), and writes keyed by the loop key variable.
func (c *insensitivity) checkAssign(s *ast.AssignStmt) {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN,
		token.AND_ASSIGN, token.MUL_ASSIGN:
		return
	case token.ASSIGN, token.DEFINE:
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			// x = append(x, ...) — deferred to the sorted-after check.
			if call, ok := s.Rhs[0].(*ast.CallExpr); ok && identName(call.Fun) == "append" && len(call.Args) > 0 {
				lhs, arg0 := identName(s.Lhs[0]), identName(call.Args[0])
				if lhs != "" && lhs == arg0 {
					c.appends = append(c.appends, lhs)
					return
				}
			}
			// m2[k] = v — distinct keys write distinct slots.
			if idx, ok := s.Lhs[0].(*ast.IndexExpr); ok && c.keyVar != "" && identName(idx.Index) == c.keyVar {
				return
			}
		}
		c.fail()
	default:
		c.fail()
	}
}

// checkIf admits the single-accumulator min/max pattern
// `if v < acc { acc = v }` (any comparison direction, no else), and plain
// guards whose condition is call-free with an order-insensitive body.
func (c *insensitivity) checkIf(s *ast.IfStmt) {
	if s.Init != nil || s.Else != nil || hasCall(s.Cond) {
		c.fail()
		return
	}
	if cmp, ok := s.Cond.(*ast.BinaryExpr); ok && isComparison(cmp.Op) && len(s.Body.List) == 1 {
		if asg, ok := s.Body.List[0].(*ast.AssignStmt); ok && asg.Tok == token.ASSIGN {
			condIdents := identSet(cmp)
			all := true
			for _, lhs := range asg.Lhs {
				if name := identName(lhs); name == "" || !condIdents[name] {
					all = false
					break
				}
			}
			if all {
				return // pure min/max accumulation commutes
			}
			// A tie-broken multi-variable update (e.g. LRU victim choice)
			// does NOT commute: fall through to the general rule.
		}
	}
	c.checkStmt(s.Body)
}

func isComparison(op token.Token) bool {
	switch op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
		return true
	}
	return false
}

// identSet collects every identifier name mentioned in e.
func identSet(e ast.Expr) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			out[id.Name] = true
		}
		return true
	})
	return out
}

// hasCall reports whether e contains any function call (len and cap are
// harmless and admitted).
func hasCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if name := identName(call.Fun); name == "len" || name == "cap" {
				return true
			}
			found = true
			return false
		}
		return true
	})
	return found
}

// sortedAfter reports whether some statement in rest passes the named slice
// to a sort.* or slices.* call.
func sortedAfter(pass *Pass, rest []ast.Stmt, name string) bool {
	for _, s := range rest {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok {
				switch pass.PkgNameOf(id) {
				case "sort", "slices":
					for _, arg := range call.Args {
						if identName(arg) == name {
							found = true
							return false
						}
					}
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
