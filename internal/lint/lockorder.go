package lint

// lockorder holds lockguard's engine: the per-function blocking and
// acquisition summaries, their propagation to a module fixpoint, and the
// path-sensitive lock-set walk that checks guarded accesses, unlock
// discipline, ordering edges, and blocking hygiene (DESIGN.md §17).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// blockingExternalFuncs are external calls lockguard treats as blocking:
// holding an annotated mutex across any of them couples the critical
// section to scheduler or peer progress. Keyed by types.Func.FullName.
var blockingExternalFuncs = map[string]bool{
	"time.Sleep":                      true,
	"(*sync.WaitGroup).Wait":          true,
	"(*sync.Cond).Wait":               true,
	"net/http.Error":                  true,
	"(net/http.ResponseWriter).Write": true,
	"(net/http.Flusher).Flush":        true,
}

// terminatingFuncs end the goroutine: paths through them need no
// release check. Keyed by types.Func.FullName.
var terminatingFuncs = map[string]bool{
	"os.Exit":     true,
	"log.Fatal":   true,
	"log.Fatalf":  true,
	"log.Fatalln": true,
}

// staticCallee resolves a call to the *types.Func it names, or nil for
// func values, conversions, and builtins.
func lockStaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

func lockIsInterfaceMethod(f *types.Func) bool {
	sig, _ := f.Type().(*types.Signature)
	return sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type())
}

// funcDisplay renders a callee for messages: Type.method or pkg.func.
func funcDisplay(f *types.Func) string {
	if sig, _ := f.Type().(*types.Signature); sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return n.Obj().Name() + "." + f.Name()
		}
	}
	if f.Pkg() != nil {
		return f.Pkg().Name() + "." + f.Name()
	}
	return f.Name()
}

// computeSummaries records, for every module function, whether its own
// statements (excluding go statements and func-literal bodies, which the
// walk models at their use sites) can block, and which annotated lock
// classes they acquire; both propagate transitively over the module call
// graph, with interface calls resolved to every module implementation.
func (w *lockWorld) computeSummaries() {
	callees := make(map[*types.Func]map[*types.Func]bool)
	for _, fn := range w.order {
		info := fn.pkg.Info
		acq := make(map[string]bool)
		cl := make(map[*types.Func]bool)
		blocking := false
		var scan func(n ast.Node) bool
		scan = func(n ast.Node) bool {
			switch t := n.(type) {
			case *ast.GoStmt, *ast.FuncLit:
				// A goroutine's blocking does not block its creator; a
				// literal's body blocks only when invoked, which the walk
				// models in place.
				return false
			case *ast.SelectStmt:
				hasDefault := false
				for _, c := range t.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
						hasDefault = true
					}
				}
				if !hasDefault {
					blocking = true
				}
				// Comm clauses' channel ops are governed by the select;
				// only their bodies are scanned independently.
				for _, c := range t.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						for _, s := range cc.Body {
							ast.Inspect(s, scan)
						}
					}
				}
				return false
			case *ast.SendStmt:
				blocking = true
			case *ast.UnaryExpr:
				if t.Op == token.ARROW {
					blocking = true
				}
			case *ast.RangeStmt:
				if typ := info.TypeOf(t.X); typ != nil {
					if _, isCh := typ.Underlying().(*types.Chan); isCh {
						blocking = true
					}
				}
			case *ast.CallExpr:
				if op, ok := w.asMutexOp(info, t); ok {
					if (op.method == "Lock" || op.method == "RLock") && op.class != "" {
						acq[op.class] = true
					}
					return true
				}
				callee := lockStaticCallee(info, t)
				if callee == nil {
					return true
				}
				if _, inMod := w.funcs[callee]; inMod {
					cl[callee] = true
				} else if lockIsInterfaceMethod(callee) {
					if blockingExternalFuncs[callee.FullName()] {
						blocking = true
					}
					for _, impl := range w.implementations(callee) {
						cl[impl] = true
					}
				} else if blockingExternalFuncs[callee.FullName()] {
					blocking = true
				}
			}
			return true
		}
		ast.Inspect(fn.decl.Body, scan)
		w.blocking[fn.obj] = blocking
		w.acquires[fn.obj] = acq
		callees[fn.obj] = cl
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range w.order {
			for c := range callees[fn.obj] {
				if w.blocking[c] && !w.blocking[fn.obj] {
					w.blocking[fn.obj] = true
					changed = true
				}
				for class := range w.acquires[c] {
					if !w.acquires[fn.obj][class] {
						w.acquires[fn.obj][class] = true
						changed = true
					}
				}
			}
		}
	}
}

// heldLock is one mutex held on a path.
type heldLock struct {
	key   string // canonical receiver path
	disp  string // source form for messages ("h.mu")
	class string // annotated lock-order class ("" unannotated)
	kind  lockKind
	pos   token.Pos // acquisition site
}

// defUnlock is one scheduled deferred release.
type defUnlock struct {
	key  string
	kind lockKind
}

// lockState is the lock set along one abstract path.
type lockState struct {
	held     []heldLock
	deferred []defUnlock
}

func (s *lockState) holds(key string) *heldLock {
	for i := range s.held {
		if s.held[i].key == key {
			return &s.held[i]
		}
	}
	return nil
}

func (s *lockState) hasDeferred(key string) bool {
	for _, d := range s.deferred {
		if d.key == key {
			return true
		}
	}
	return false
}

func (s *lockState) clone() *lockState {
	c := &lockState{}
	c.held = append(c.held, s.held...)
	c.deferred = append(c.deferred, s.deferred...)
	return c
}

func (s *lockState) sig() string {
	var parts []string
	for _, h := range s.held {
		parts = append(parts, "h:"+h.key+":"+h.kind.String())
	}
	for _, d := range s.deferred {
		parts = append(parts, "d:"+d.key+":"+d.kind.String())
	}
	sort.Strings(parts)
	return strings.Join(parts, "|")
}

// maxLockStates bounds the per-point path explosion; beyond it the walk
// keeps the first distinct states (the module's functions stay far
// below this).
const maxLockStates = 12

func cloneStates(states []*lockState) []*lockState {
	out := make([]*lockState, 0, len(states))
	for _, s := range states {
		out = append(out, s.clone())
	}
	return out
}

func unionStates(groups ...[]*lockState) []*lockState {
	var out []*lockState
	seen := make(map[string]bool)
	for _, g := range groups {
		for _, s := range g {
			sig := s.sig()
			if seen[sig] {
				continue
			}
			seen[sig] = true
			// Clone, never alias: the walk mutates states in place, and a
			// kept pointer shared with a saved snapshot (a loop's entry
			// states, a branch join) would smear later mutations into it.
			out = append(out, s.clone())
			if len(out) == maxLockStates {
				return out
			}
		}
	}
	return out
}

// breakFrame collects the states flowing out of break/continue for the
// innermost breakable construct.
type breakFrame struct {
	isLoop    bool
	breaks    []*lockState
	continues []*lockState
}

// lockWalker runs the path-sensitive walk over one function (or one
// func-literal body, in capture or inherit mode).
type lockWalker struct {
	w    *lockWorld
	fn   *lockFunc // enclosing declared function (requirement hoist root)
	pkg  *Package
	info *types.Info
	// states is the live set of abstract lock states; nil means the
	// current point is unreachable (all paths returned or died).
	states []*lockState
	// baseline keys were held when this walker started: literal bodies
	// inherit them and must not be blamed for releasing at their returns.
	baseline map[string]bool
	// capture names the escape context ("a go statement", "an escaping
	// func literal") — guarded accesses there cannot rely on the
	// creator's locks and requirement hoisting is disabled.
	capture string
	// noBlock suppresses blocking checks for the channel op of a select
	// comm clause (the select itself is judged instead).
	noBlock bool
	frames  []*breakFrame
}

// analyze runs the walk over fn's body.
func (w *lockWorld) analyze(fn *lockFunc) {
	lw := &lockWalker{
		w:        w,
		fn:       fn,
		pkg:      fn.pkg,
		info:     fn.pkg.Info,
		states:   []*lockState{{}},
		baseline: make(map[string]bool),
	}
	lw.walkBody(fn.decl.Body, fn.decl.Body.Rbrace)
}

// subWalker builds a walker for a func-literal body.
func (lw *lockWalker) subWalker(states []*lockState, capture string) *lockWalker {
	base := make(map[string]bool)
	for _, s := range states {
		for _, h := range s.held {
			base[h.key] = true
		}
	}
	return &lockWalker{
		w: lw.w, fn: lw.fn, pkg: lw.pkg, info: lw.info,
		states: states, baseline: base, capture: capture,
	}
}

// walkBody walks a function body and release-checks live fall-through
// states at endPos (the implicit return of void functions).
func (lw *lockWalker) walkBody(body *ast.BlockStmt, endPos token.Pos) {
	lw.walkStmt(body)
	lw.releaseCheck(endPos)
}

// releaseCheck reports held, non-deferred, non-baseline locks at a
// function exit point.
func (lw *lockWalker) releaseCheck(pos token.Pos) {
	for _, s := range lw.states {
		for _, h := range s.held {
			if lw.baseline[h.key] || s.hasDeferred(h.key) {
				continue
			}
			lw.w.reportf(pos, "%s is locked but not released on this return path (%s at %s)",
				h.disp, h.kind, lw.w.fset.Position(h.pos))
		}
	}
}

func (lw *lockWalker) walkStmt(stmt ast.Stmt) {
	if stmt == nil || lw.states == nil {
		return
	}
	switch t := stmt.(type) {
	case *ast.BlockStmt:
		for _, s := range t.List {
			lw.walkStmt(s)
		}
	case *ast.ExprStmt:
		lw.walkExpr(t.X)
	case *ast.AssignStmt:
		for _, r := range t.Rhs {
			lw.walkExpr(r)
		}
		if t.Tok != token.DEFINE {
			for _, l := range t.Lhs {
				lw.walkLHS(l)
			}
		}
	case *ast.IncDecStmt:
		lw.walkLHS(t.X)
	case *ast.DeclStmt:
		if gd, ok := t.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						lw.walkExpr(v)
					}
				}
			}
		}
	case *ast.SendStmt:
		lw.walkExpr(t.Chan)
		lw.walkExpr(t.Value)
		lw.checkBlocking(t.Pos(), "a blocking channel send")
	case *ast.DeferStmt:
		lw.walkDefer(t)
	case *ast.GoStmt:
		lw.walkGo(t)
	case *ast.ReturnStmt:
		for _, r := range t.Results {
			lw.walkExpr(r)
		}
		lw.releaseCheck(t.Pos())
		lw.states = nil
	case *ast.IfStmt:
		lw.walkStmt(t.Init)
		lw.walkExpr(t.Cond)
		entry := lw.states
		thenOut := lw.withStates(cloneStates(entry), func() { lw.walkStmt(t.Body) })
		elseStates := cloneStates(entry)
		elseOut := elseStates
		if t.Else != nil {
			elseOut = lw.withStates(elseStates, func() { lw.walkStmt(t.Else) })
		}
		lw.states = unionStates(thenOut, elseOut)
	case *ast.ForStmt:
		lw.walkStmt(t.Init)
		lw.walkLoop(t.Cond, t.Body, t.Post, t.Cond == nil)
	case *ast.RangeStmt:
		lw.walkExpr(t.X)
		if typ := lw.info.TypeOf(t.X); typ != nil {
			if _, isCh := typ.Underlying().(*types.Chan); isCh {
				lw.checkBlocking(t.Pos(), "a range over a channel")
			}
		}
		lw.walkLoop(nil, t.Body, nil, false)
	case *ast.SwitchStmt:
		lw.walkStmt(t.Init)
		lw.walkExpr(t.Tag)
		lw.walkCases(t.Body, false)
	case *ast.TypeSwitchStmt:
		lw.walkStmt(t.Init)
		lw.walkStmt(t.Assign)
		lw.walkCases(t.Body, false)
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range t.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			lw.checkBlocking(t.Pos(), "a blocking select")
		}
		lw.walkSelect(t)
	case *ast.BranchStmt:
		lw.walkBranch(t)
	case *ast.LabeledStmt:
		lw.walkStmt(t.Stmt)
	case *ast.EmptyStmt:
	}
}

// withStates runs f with the given states installed and returns the
// states f left behind.
func (lw *lockWalker) withStates(states []*lockState, f func()) []*lockState {
	save := lw.states
	lw.states = states
	f()
	out := lw.states
	lw.states = save
	return out
}

// walkLoop walks a loop body twice — the second pass, entered with the
// union of entry and first-iteration exit, is what catches a Lock that
// survives into the next iteration — then joins entry, body-exit, and
// break states. Infinite loops (no condition) exit only through breaks.
func (lw *lockWalker) walkLoop(cond ast.Expr, body *ast.BlockStmt, post ast.Stmt, infinite bool) {
	frame := &breakFrame{isLoop: true}
	lw.frames = append(lw.frames, frame)
	if cond != nil {
		lw.walkExpr(cond)
	}
	entry := cloneStates(lw.states)
	for pass := 0; pass < 2; pass++ {
		lw.walkStmt(body)
		lw.states = unionStates(lw.states, frame.continues)
		frame.continues = nil
		lw.walkStmt(post)
		if pass == 0 {
			lw.states = unionStates(entry, lw.states)
			if cond != nil {
				lw.walkExpr(cond)
			}
		}
	}
	if infinite {
		lw.states = frame.breaks
	} else {
		lw.states = unionStates(entry, lw.states, frame.breaks)
	}
	lw.frames = lw.frames[:len(lw.frames)-1]
}

// walkCases walks switch/type-switch clauses, each from the shared
// entry, and joins their exits (plus the entry when no default exists).
func (lw *lockWalker) walkCases(body *ast.BlockStmt, _ bool) {
	frame := &breakFrame{}
	lw.frames = append(lw.frames, frame)
	entry := lw.states
	hasDefault := false
	var outs [][]*lockState
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		out := lw.withStates(cloneStates(entry), func() {
			for _, e := range cc.List {
				lw.walkExpr(e)
			}
			for _, s := range cc.Body {
				lw.walkStmt(s)
			}
		})
		outs = append(outs, out)
	}
	lw.frames = lw.frames[:len(lw.frames)-1]
	joined := frame.breaks
	for _, o := range outs {
		joined = unionStates(joined, o)
	}
	if !hasDefault {
		joined = unionStates(joined, entry)
	}
	lw.states = joined
}

// walkSelect walks each comm clause from the shared entry; the clause's
// channel op itself is exempt from blocking checks (the select was
// already judged) and the exits are joined.
func (lw *lockWalker) walkSelect(sel *ast.SelectStmt) {
	frame := &breakFrame{}
	lw.frames = append(lw.frames, frame)
	entry := lw.states
	var outs [][]*lockState
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		out := lw.withStates(cloneStates(entry), func() {
			save := lw.noBlock
			lw.noBlock = true
			lw.walkStmt(cc.Comm)
			lw.noBlock = save
			for _, s := range cc.Body {
				lw.walkStmt(s)
			}
		})
		outs = append(outs, out)
	}
	lw.frames = lw.frames[:len(lw.frames)-1]
	joined := frame.breaks
	for _, o := range outs {
		joined = unionStates(joined, o)
	}
	lw.states = joined
}

func (lw *lockWalker) walkBranch(t *ast.BranchStmt) {
	switch t.Tok {
	case token.BREAK:
		for i := len(lw.frames) - 1; i >= 0; i-- {
			lw.frames[i].breaks = append(lw.frames[i].breaks, cloneStates(lw.states)...)
			break
		}
		lw.states = nil
	case token.CONTINUE:
		for i := len(lw.frames) - 1; i >= 0; i-- {
			if lw.frames[i].isLoop {
				lw.frames[i].continues = append(lw.frames[i].continues, cloneStates(lw.states)...)
				break
			}
		}
		lw.states = nil
	case token.GOTO, token.FALLTHROUGH:
		// Neither appears in the analyzed layers; keep states flowing.
	}
}

// walkDefer handles defer statements: mutex unlocks register as
// scheduled releases; literal bodies are scanned for direct unlocks and
// then walked (state changes discarded) so guarded accesses inside
// cleanup closures are still checked.
func (lw *lockWalker) walkDefer(t *ast.DeferStmt) {
	if op, ok := lw.w.asMutexOp(lw.info, t.Call); ok {
		if op.method == "Unlock" || op.method == "RUnlock" {
			kind := lockWrite
			if op.method == "RUnlock" {
				kind = lockRead
			}
			for _, s := range lw.states {
				s.deferred = append(s.deferred, defUnlock{key: op.key, kind: kind})
			}
		}
		return
	}
	if lit, ok := ast.Unparen(t.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			if op, isOp := lw.w.asMutexOp(lw.info, call); isOp && (op.method == "Unlock" || op.method == "RUnlock") {
				kind := lockWrite
				if op.method == "RUnlock" {
					kind = lockRead
				}
				for _, s := range lw.states {
					s.deferred = append(s.deferred, defUnlock{key: op.key, kind: kind})
				}
			}
			return true
		})
		sub := lw.subWalker(cloneStates(lw.states), lw.capture)
		sub.frames = nil
		sub.walkStmt(lit.Body)
		return
	}
	// Deferred plain call: arguments are evaluated now; the call itself
	// runs at exit under unknowable lock state, so only the operands are
	// checked.
	if fun, ok := ast.Unparen(t.Call.Fun).(*ast.SelectorExpr); ok {
		lw.walkExpr(fun.X)
	}
	for _, a := range t.Call.Args {
		lw.walkExpr(a)
	}
}

// walkGo handles go statements: literal bodies run with an empty lock
// set in capture context; named callees with lock requirements cannot
// have them satisfied across the goroutine boundary.
func (lw *lockWalker) walkGo(t *ast.GoStmt) {
	if lit, ok := ast.Unparen(t.Call.Fun).(*ast.FuncLit); ok {
		for _, a := range t.Call.Args {
			lw.walkExpr(a)
		}
		sub := lw.subWalker([]*lockState{{}}, "a go statement")
		sub.walkBody(lit.Body, lit.Body.Rbrace)
		return
	}
	if fun, ok := ast.Unparen(t.Call.Fun).(*ast.SelectorExpr); ok {
		lw.walkExpr(fun.X)
	}
	for _, a := range t.Call.Args {
		lw.walkExpr(a)
	}
	if callee := lockStaticCallee(lw.info, t.Call); callee != nil {
		reqs := sortedRequires(lw.w.requires[callee])
		for _, req := range reqs {
			arg := lw.requireArg(t.Call, req)
			if arg == nil {
				continue
			}
			_, disp, _, _, ok := lw.w.canonExpr(lw.info, arg)
			if !ok {
				continue
			}
			lw.w.reportf(t.Pos(), "call to %s in a go statement requires %s.%s to be held (it guards %s), which cannot cross a goroutine boundary",
				funcDisplay(callee), disp, req.guard, req.field)
		}
	}
}

// walkLHS checks a write target; guarded fields need the write lock.
func (lw *lockWalker) walkLHS(e ast.Expr) {
	switch t := ast.Unparen(e).(type) {
	case *ast.Ident:
	case *ast.SelectorExpr:
		if g := lw.guardOf(t); g != nil {
			lw.checkGuarded(t, g, true)
			return
		}
		lw.walkExpr(t.X)
	case *ast.IndexExpr:
		// Writing an element of a guarded map/slice mutates the guarded
		// field: m.byTenant[k] = v needs the write lock on m.mu.
		if sel, ok := ast.Unparen(t.X).(*ast.SelectorExpr); ok {
			if g := lw.guardOf(sel); g != nil {
				lw.checkGuarded(sel, g, true)
				lw.walkExpr(t.Index)
				return
			}
		}
		lw.walkExpr(t.X)
		lw.walkExpr(t.Index)
	case *ast.StarExpr:
		lw.walkExpr(t.X)
	default:
		lw.walkExpr(e)
	}
}

// guardOf resolves a selector to its guardedby annotation, if any.
func (lw *lockWalker) guardOf(sel *ast.SelectorExpr) *guardInfo {
	v, ok := lw.info.Uses[sel.Sel].(*types.Var)
	if !ok {
		return nil
	}
	return lw.w.guards[v]
}

func (lw *lockWalker) walkExpr(e ast.Expr) {
	if e == nil || lw.states == nil {
		return
	}
	switch t := e.(type) {
	case *ast.ParenExpr:
		lw.walkExpr(t.X)
	case *ast.Ident, *ast.BasicLit:
	case *ast.SelectorExpr:
		if g := lw.guardOf(t); g != nil {
			lw.checkGuarded(t, g, false)
		}
		lw.walkExpr(t.X)
	case *ast.CallExpr:
		lw.handleCall(t)
	case *ast.UnaryExpr:
		if t.Op == token.ARROW {
			lw.walkExpr(t.X)
			lw.checkBlocking(t.Pos(), "a blocking channel receive")
			return
		}
		if t.Op == token.AND {
			// Taking the address of a guarded field lets it escape the
			// critical section; require the write lock at the site.
			if sel, ok := ast.Unparen(t.X).(*ast.SelectorExpr); ok {
				if g := lw.guardOf(sel); g != nil {
					lw.checkGuarded(sel, g, true)
					return
				}
			}
		}
		lw.walkExpr(t.X)
	case *ast.BinaryExpr:
		lw.walkExpr(t.X)
		lw.walkExpr(t.Y)
	case *ast.IndexExpr:
		lw.walkExpr(t.X)
		lw.walkExpr(t.Index)
	case *ast.SliceExpr:
		lw.walkExpr(t.X)
		lw.walkExpr(t.Low)
		lw.walkExpr(t.High)
		lw.walkExpr(t.Max)
	case *ast.StarExpr:
		lw.walkExpr(t.X)
	case *ast.TypeAssertExpr:
		lw.walkExpr(t.X)
	case *ast.CompositeLit:
		for _, el := range t.Elts {
			lw.walkExpr(el)
		}
	case *ast.KeyValueExpr:
		lw.walkExpr(t.Key)
		lw.walkExpr(t.Value)
	case *ast.FuncLit:
		// A literal reaching here is stored, returned, or otherwise
		// escapes: its body runs outside this critical section.
		sub := lw.subWalker([]*lockState{{}}, "an escaping func literal")
		sub.walkBody(t.Body, t.Body.Rbrace)
	}
}

// checkGuarded enforces rule 1 at one guarded-field access.
func (lw *lockWalker) checkGuarded(sel *ast.SelectorExpr, g *guardInfo, write bool) {
	lw.walkExpr(sel.X)
	if lw.states == nil {
		return
	}
	key, disp, root, simple, ok := lw.w.canonExpr(lw.info, sel.X)
	if !ok {
		return
	}
	reqKey := key + "." + g.name
	fieldDisp := disp + "." + sel.Sel.Name
	lockDisp := disp + "." + g.name
	heldAll, heldAny, readOnly := true, false, false
	for _, s := range lw.states {
		h := s.holds(reqKey)
		if h == nil {
			heldAll = false
			continue
		}
		heldAny = true
		if h.kind != lockWrite {
			readOnly = true
		}
	}
	verb, noun := "read", "read"
	if write {
		verb, noun = "written", "write"
	}
	if lw.capture != "" {
		if !heldAll {
			lw.w.reportf(sel.Sel.Pos(), "%s is guarded by %q but captured in %s without %s held",
				fieldDisp, g.name, lw.capture, lockDisp)
		}
		return
	}
	if heldAll {
		if write && readOnly {
			lw.w.reportf(sel.Sel.Pos(), "%s is guarded by %q but written with only RLock held (Lock required)",
				fieldDisp, g.name)
		}
		return
	}
	if !heldAny && simple && lw.callerIndex(root) != -2 {
		lw.w.addRequire(lw.fn.obj, lockReq{
			index: lw.callerIndex(root),
			guard: g.name,
			write: write,
			field: g.owner + "." + sel.Sel.Name,
			rw:    g.rw,
		})
		return
	}
	if heldAny {
		lw.w.reportf(sel.Sel.Pos(), "%s is guarded by %q but not locked on every path to this %s (%s may be unlocked here)",
			fieldDisp, g.name, noun, lockDisp)
		return
	}
	lw.w.reportf(sel.Sel.Pos(), "%s is guarded by %q but %s without %s held",
		fieldDisp, g.name, verb, lockDisp)
}

// callerIndex maps a variable to this function's requirement index:
// -1 for the receiver, the parameter position otherwise, -2 for
// variables that are neither (no hoist possible).
func (lw *lockWalker) callerIndex(v *types.Var) int {
	if v == nil {
		return -2
	}
	if lw.fn.recv != nil && v == lw.fn.recv {
		return -1
	}
	for i, p := range lw.fn.params {
		if v == p {
			return i
		}
	}
	return -2
}

// checkBlocking enforces rule 4 at one blocking point: no annotated
// mutex may be held across it.
func (lw *lockWalker) checkBlocking(pos token.Pos, what string) {
	if lw.noBlock {
		return
	}
	for _, s := range lw.states {
		for _, h := range s.held {
			if h.class == "" {
				continue
			}
			lw.w.reportf(pos, "%s is held across %s", h.disp, what)
		}
	}
}

// sortedRequires orders a requirement set deterministically.
func sortedRequires(m map[string]lockReq) []lockReq {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]lockReq, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// requireArg maps a requirement index to the call operand it names.
func (lw *lockWalker) requireArg(call *ast.CallExpr, req lockReq) ast.Expr {
	if req.index == -1 {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return sel.X
		}
		return nil
	}
	if req.index >= 0 && req.index < len(call.Args) {
		return call.Args[req.index]
	}
	return nil
}

func (lw *lockWalker) handleCall(call *ast.CallExpr) {
	if op, ok := lw.w.asMutexOp(lw.info, call); ok {
		lw.applyMutexOp(op, call.Pos())
		return
	}
	// panic ends the path without a release check: the goroutine is dead
	// and deferred unlocks run during unwinding anyway.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isB := lw.info.Uses[id].(*types.Builtin); isB && b.Name() == "panic" {
			for _, a := range call.Args {
				lw.walkExpr(a)
			}
			lw.states = nil
			return
		}
	}
	if fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		lw.walkExpr(fun.X)
	}
	for _, a := range call.Args {
		if lit, isLit := ast.Unparen(a).(*ast.FuncLit); isLit {
			// A literal passed to a call is treated as a synchronous
			// callback: it inherits the current lock set (state changes
			// discarded). Goroutine hand-offs are modeled at go
			// statements and stored literals.
			sub := lw.subWalker(cloneStates(lw.states), lw.capture)
			sub.walkBody(lit.Body, lit.Body.Rbrace)
			continue
		}
		lw.walkExpr(a)
	}
	callee := lockStaticCallee(lw.info, call)
	if callee == nil {
		return
	}
	if terminatingFuncs[callee.FullName()] {
		lw.states = nil
		return
	}
	var blocking bool
	acquired := make(map[string]bool)
	if _, inMod := lw.w.funcs[callee]; inMod {
		lw.checkRequirements(call, callee)
		blocking = lw.w.blocking[callee]
		for c := range lw.w.acquires[callee] {
			acquired[c] = true
		}
	} else if lockIsInterfaceMethod(callee) {
		if blockingExternalFuncs[callee.FullName()] {
			blocking = true
		}
		for _, impl := range lw.w.implementations(callee) {
			if lw.w.blocking[impl] {
				blocking = true
			}
			for c := range lw.w.acquires[impl] {
				acquired[c] = true
			}
		}
	} else if blockingExternalFuncs[callee.FullName()] {
		blocking = true
	}
	if blocking {
		lw.checkBlocking(call.Pos(), fmt.Sprintf("a call to %s, which blocks", funcDisplay(callee)))
	}
	if len(acquired) > 0 {
		var classes []string
		for c := range acquired {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		for _, s := range lw.states {
			for _, h := range s.held {
				if h.class == "" {
					continue
				}
				for _, c := range classes {
					lw.w.addEdge(h.class, c, call.Pos())
				}
			}
		}
	}
}

// checkRequirements enforces a module callee's requires-lock summary at
// this call site, hoisting to the caller's own summary when the operand
// is itself a caller parameter.
func (lw *lockWalker) checkRequirements(call *ast.CallExpr, callee *types.Func) {
	reqs := sortedRequires(lw.w.requires[callee])
	for _, req := range reqs {
		arg := lw.requireArg(call, req)
		if arg == nil {
			continue
		}
		key, disp, root, simple, ok := lw.w.canonExpr(lw.info, arg)
		if !ok {
			continue
		}
		reqKey := key + "." + req.guard
		heldAll, heldAny, readOnly := true, false, false
		for _, s := range lw.states {
			h := s.holds(reqKey)
			if h == nil {
				heldAll = false
				continue
			}
			heldAny = true
			if h.kind != lockWrite {
				readOnly = true
			}
		}
		if heldAll && (!req.write || !readOnly) {
			continue
		}
		if heldAll && req.write && readOnly {
			lw.w.reportf(call.Pos(), "call to %s requires the write lock on %s.%s (it writes %s), but only RLock is held",
				funcDisplay(callee), disp, req.guard, req.field)
			continue
		}
		if !heldAny && simple && lw.capture == "" && lw.callerIndex(root) != -2 {
			lw.w.addRequire(lw.fn.obj, lockReq{
				index: lw.callerIndex(root),
				guard: req.guard,
				write: req.write,
				field: req.field,
				rw:    req.rw,
			})
			continue
		}
		lw.w.reportf(call.Pos(), "call to %s requires %s.%s to be held (it guards %s)",
			funcDisplay(callee), disp, req.guard, req.field)
	}
}

// applyMutexOp enforces rule 2 (unlock discipline) at one mutex call and
// records direct lock-order edges (rule 3).
func (lw *lockWalker) applyMutexOp(op mutexOp, pos token.Pos) {
	switch op.method {
	case "Lock", "RLock":
		kind := lockWrite
		if op.method == "RLock" {
			kind = lockRead
		}
		for _, s := range lw.states {
			if s.holds(op.key) != nil {
				lw.w.reportf(pos, "second %s of %s on this path would deadlock", op.method, op.disp)
				continue
			}
			if op.class != "" {
				for _, h := range s.held {
					if h.class != "" {
						lw.w.addEdge(h.class, op.class, pos)
					}
				}
			}
			s.held = append(s.held, heldLock{key: op.key, disp: op.disp, class: op.class, kind: kind, pos: pos})
		}
	case "Unlock", "RUnlock":
		need := lockWrite
		if op.method == "RUnlock" {
			need = lockRead
		}
		for _, s := range lw.states {
			h := s.holds(op.key)
			if h == nil {
				lw.w.reportf(pos, "%s of %s but it is not locked on this path", op.method, op.disp)
				continue
			}
			if h.kind != need {
				if need == lockWrite {
					lw.w.reportf(pos, "Unlock of %s but only RLock is held (RUnlock required)", op.disp)
				} else {
					lw.w.reportf(pos, "RUnlock of %s but Lock is held (Unlock required)", op.disp)
				}
			}
			if s.hasDeferred(op.key) {
				lw.w.reportf(pos, "%s of %s but a deferred release is already scheduled (double unlock)", op.method, op.disp)
			}
			for i := range s.held {
				if s.held[i].key == op.key {
					s.held = append(s.held[:i], s.held[i+1:]...)
					break
				}
			}
		}
	}
}
