package lint

import (
	"go/ast"
)

// AnalyzerCycleAcct guards the timing model: every function on the bus or
// memory path that holds the run token (a *sim.Proc parameter) or reports
// extra cycles (the bus.SecurityHook / bus.MemoryPort shapes) must actually
// account for time.
//
// Two rules:
//
//   - A timed-shape method (OnTransaction / Fetch / Store returning uint64
//     extra cycles) that returns the literal 0 is flagged: either the cost
//     is genuinely overlapped by the architecture — then the function
//     carries an audited `senss-lint:ignore cycleacct <why>` on its
//     declaration — or a latency charge was forgotten.
//   - A function holding a *Proc that never calls a timing method on it
//     (Sleep/Park/...), never passes it on, and never returns a nonzero
//     charge is flagged: it occupies the run token without accounting.
//
// Reads like p.Now() do not count as charging.
func AnalyzerCycleAcct() *Analyzer {
	a := &Analyzer{
		Name: "cycleacct",
		Doc:  "bus/memory-path methods must charge or explicitly waive latency",
		Scope: []string{
			"internal/bus", "internal/memsec", "internal/trace",
			"internal/core", "internal/attack", "internal/machine",
			"internal/coherence", "internal/integrity",
		},
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkTimedFunc(pass, fd)
			}
		}
	}
	return a
}

// checkTimedFunc applies both cycle-accounting rules to one declaration.
func checkTimedFunc(pass *Pass, fd *ast.FuncDecl) {
	procName := procParamName(fd)
	timed := isTimedShape(fd)

	var zeroReturns []*ast.ReturnStmt
	returnsCharge := false
	procCharges := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			if len(n.Results) == 1 {
				if isLiteralZero(n.Results[0]) {
					zeroReturns = append(zeroReturns, n)
				} else {
					returnsCharge = true
				}
			}
		case *ast.CallExpr:
			if procName == "" {
				return true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if identName(sel.X) == procName && !isProcRead(sel.Sel.Name) {
					procCharges = true // p.Sleep, p.Park, ...
				}
			}
			for _, arg := range n.Args {
				if identName(arg) == procName {
					procCharges = true // delegation: callee charges on our behalf
				}
			}
		}
		return true
	})

	if timed {
		for _, r := range zeroReturns {
			pass.Reportf(r.Pos(), "timed path %s returns literal 0 cycles; charge the latency or waive with senss-lint:ignore cycleacct <why overlapped>", fd.Name.Name)
		}
	}
	if procName != "" && !procCharges && !(timed && returnsCharge) {
		pass.Reportf(fd.Pos(), "%s holds the run token (%s *Proc) but never charges, parks, or delegates cycles", fd.Name.Name, procName)
	}
}

// procParamName returns the name of a *Proc parameter, "" if none.
func procParamName(fd *ast.FuncDecl) string {
	if fd.Type.Params == nil {
		return ""
	}
	for _, field := range fd.Type.Params.List {
		if typeNameOf(field.Type) == "Proc" && len(field.Names) > 0 {
			return field.Names[0].Name
		}
	}
	return ""
}

// isTimedShape matches the bus.SecurityHook and bus.MemoryPort method
// shapes: OnTransaction(*Proc, ...) uint64, or Fetch/Store(*Transaction,
// ...) uint64.
func isTimedShape(fd *ast.FuncDecl) bool {
	res := fd.Type.Results
	if res == nil || len(res.List) != 1 || len(res.List[0].Names) > 1 {
		return false
	}
	if identName(res.List[0].Type) != "uint64" {
		return false
	}
	switch fd.Name.Name {
	case "OnTransaction":
		return procParamName(fd) != ""
	case "Fetch", "Store":
		params := fd.Type.Params
		return params != nil && len(params.List) > 0 && typeNameOf(params.List[0].Type) == "Transaction"
	}
	return false
}

// typeNameOf extracts the base type name of *T, pkg.T, or *pkg.T.
func typeNameOf(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return typeNameOf(e.X)
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.Ident:
		return e.Name
	}
	return ""
}

// isProcRead lists Proc methods that observe without charging.
func isProcRead(name string) bool {
	switch name {
	case "Now", "Name", "Engine":
		return true
	}
	return false
}

// isLiteralZero matches the untyped constant 0.
func isLiteralZero(e ast.Expr) bool {
	if p, ok := e.(*ast.ParenExpr); ok {
		return isLiteralZero(p.X)
	}
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Value == "0"
}
