package lint_test

import (
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"senss/internal/lint"
)

// newLoader builds a loader rooted at the module (two levels up from this
// package's directory).
func newLoader(t *testing.T) *lint.Loader {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	l, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// wantRe matches the two expected-diagnostic golden forms:
//
//	// want "substring"
//	// want `substring`
var wantRe = regexp.MustCompile("want (?:\"([^\"]+)\"|`([^`]+)`)")

// expectation is one // want comment, consumed as diagnostics match it.
type expectation struct {
	file     string
	line     int
	substr   string
	consumed bool
}

// collectWants scans every comment of the fixture package.
func collectWants(pkg *lint.Package) []*expectation {
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					substr := m[1]
					if substr == "" {
						substr = m[2]
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, substr: substr})
				}
			}
		}
	}
	return out
}

// runFixture loads testdata/<dir>, runs the analyzer with its package
// scope lifted, and matches diagnostics against the want comments.
func runFixture(t *testing.T, loader *lint.Loader, a *lint.Analyzer, dir string) {
	t.Helper()
	pkg, err := loader.LoadDir(filepath.Join("testdata", dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s does not type-check: %v", dir, terr)
	}
	a.Scope = nil // fixtures live outside the analyzer's default scope
	diags := lint.RunAnalyzers([]*lint.Analyzer{a}, []*lint.Package{pkg})

	wants := collectWants(pkg)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", dir)
	}
	var matched int
outer:
	for _, d := range diags {
		for _, w := range wants {
			if !w.consumed && w.file == d.Pos.Filename && w.line == d.Pos.Line && strings.Contains(d.Message, w.substr) {
				w.consumed = true
				matched++
				continue outer
			}
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, w := range wants {
		if !w.consumed {
			t.Errorf("missing diagnostic at %s:%d containing %q", w.file, w.line, w.substr)
		}
	}
	if t.Failed() {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
	} else if matched == 0 {
		t.Errorf("fixture %s matched no diagnostics", dir)
	}
}

// TestAnalyzerFixtures drives every analyzer over its seeded-violation
// fixture package (the expected-diagnostic golden format).
func TestAnalyzerFixtures(t *testing.T) {
	loader := newLoader(t)
	cases := []struct {
		dir      string
		analyzer *lint.Analyzer
	}{
		{"determ", lint.AnalyzerDeterminism()},
		{"nondet", lint.AnalyzerNondeterm()},
		{"orchfix", lint.AnalyzerNondeterm()},
		{"secrets", lint.AnalyzerSecrets()},
		{"cycle", lint.AnalyzerCycleAcct()},
		{"dropped", lint.AnalyzerDroppedErr()},
		{"suppress", lint.AnalyzerDroppedErr()},
		{"taint", lint.AnalyzerTaintflow()},
		{"hotpath", lint.AnalyzerHotpath()},
		{"lockguard", lint.AnalyzerLockguard()},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			runFixture(t, loader, tc.analyzer, tc.dir)
		})
	}
}

// TestRegistryNamesUnique guards the ignore-directive namespace.
func TestRegistryNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range lint.Registry() {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %+v missing name or doc", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}

// TestModuleClean runs the full registry over the real module and demands
// zero findings — the same gate cmd/senss-lint enforces, kept green by the
// ordinary test suite.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	loader := newLoader(t)
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	var checked int
	for _, pkg := range pkgs {
		if strings.Contains(pkg.RelPath, "lint/testdata") {
			continue
		}
		checked++
	}
	if checked < 20 {
		t.Fatalf("loaded only %d packages; loader lost the module", checked)
	}
	diags := lint.RunAnalyzers(lint.Registry(), pkgs)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("senss-lint found %d issue(s); the tree must stay lint-clean", len(diags))
	}
}

// TestModuleLockOrder pins the module's annotated lock-acquisition graph
// against a checked-in golden. The sanctioned graph has every guard class
// and no edges at all — the serving and orchestration layers never nest
// annotated locks — so any future nesting (a deadlock precursor) fails
// this test and must be reviewed into the golden deliberately.
func TestModuleLockOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	loader := newLoader(t)
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	classes, edges := lint.LockOrderGraph(pkgs)
	got := struct {
		Classes []string            `json:"classes"`
		Edges   map[string][]string `json:"edges"`
	}{Classes: classes, Edges: edges}
	gotJSON, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	gotJSON = append(gotJSON, '\n')
	golden := filepath.Join("testdata", "lockorder_module.json")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(want) {
		t.Errorf("module lock-order graph drifted from %s\n--- got ---\n%s--- want ---\n%s", golden, gotJSON, want)
	}
}

// TestLockguardPlantedUnlock is the planted-regression gate: the
// lockserve fixture (a stdlib-only mirror of serve's lock-striped table)
// is clean as checked in, and removing the one marked Unlock from
// Table.Delete must produce the missing-release finding.
func TestLockguardPlantedUnlock(t *testing.T) {
	loader := newLoader(t)
	clean, err := loader.LoadDir(filepath.Join("testdata", "lockserve"))
	if err != nil {
		t.Fatal(err)
	}
	for _, terr := range clean.TypeErrors {
		t.Errorf("lockserve fixture does not type-check: %v", terr)
	}
	a := lint.AnalyzerLockguard()
	a.Scope = nil
	if diags := lint.RunAnalyzers([]*lint.Analyzer{a}, []*lint.Package{clean}); len(diags) != 0 {
		for _, d := range diags {
			t.Errorf("clean lockserve fixture: %s", d)
		}
		t.Fatal("lockserve fixture must be lint-clean before mutation")
	}

	src, err := os.ReadFile(filepath.Join("testdata", "lockserve", "table.go"))
	if err != nil {
		t.Fatal(err)
	}
	marker := "s.mu.Unlock() // planted-unlock"
	if !strings.Contains(string(src), marker) {
		t.Fatalf("lockserve fixture lost its planted-unlock marker")
	}
	mutated := strings.Replace(string(src), marker, "// planted-unlock removed", 1)
	dir := filepath.Join(t.TempDir(), "lockserve")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "table.go"), []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	b := lint.AnalyzerLockguard()
	b.Scope = nil
	diags := lint.RunAnalyzers([]*lint.Analyzer{b}, []*lint.Package{pkg})
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "not released on this return path") {
			found = true
		}
	}
	if !found {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
		t.Error("removing the Unlock from Table.Delete was not caught")
	}
}

// TestNoVariableTimeCompareHelpers asserts the remediation of this
// analyzer's findings sticks at the source level: the packages that
// handle MACs, tags, and keys contain no bytes.Equal / reflect.DeepEqual
// calls and no local byte-loop equality helpers — every comparison of
// secret-adjacent material goes through internal/crypto/ct.Equal. The
// semantic version of this guarantee (no ==/!= on tainted material
// either) is enforced by taintflow via TestModuleClean; this textual
// check catches a helper being reintroduced in a form the taint engine
// might not see as secret.
func TestNoVariableTimeCompareHelpers(t *testing.T) {
	banned := []string{"bytes.Equal(", "reflect.DeepEqual(", "func bytesEqual(", "func equalBytes("}
	for _, dir := range []string{"core", "integrity", "memsec", "machine", "oracle", "crypto"} {
		root, err := filepath.Abs(filepath.Join("../..", "internal", dir))
		if err != nil {
			t.Fatal(err)
		}
		err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return err
			}
			src, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			for _, b := range banned {
				if strings.Contains(string(src), b) {
					t.Errorf("%s contains %q; compare secret material with ct.Equal", path, strings.TrimSuffix(b, "("))
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestContentHash pins the -json envelope's caching contract: the hash is
// stable across runs over identical inputs, sensitive to the analyzer
// set, and insensitive to analyzer-name order.
func TestContentHash(t *testing.T) {
	loader := newLoader(t)
	pkg, err := loader.LoadDir(filepath.Join("testdata", "taint"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs := []*lint.Package{pkg}
	h1, err := lint.ContentHash([]string{"taintflow", "secrets"}, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := lint.ContentHash([]string{"secrets", "taintflow"}, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Errorf("hash depends on analyzer order: %s vs %s", h1, h2)
	}
	if !strings.HasPrefix(h1, "sha256:") || len(h1) != len("sha256:")+64 {
		t.Errorf("malformed hash %q", h1)
	}
	h3, err := lint.ContentHash([]string{"taintflow"}, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Error("hash ignores the analyzer set")
	}

	// The senss-farm lint cache keys on the registry names, so every
	// analyzer added since (hotpath in PR 6, lockguard in this PR) must
	// invalidate old cache entries: the registry must carry the name, and
	// a hash over the full registry must differ from one missing it —
	// that difference is exactly what retires stale 7-analyzer verdicts.
	var names []string
	for _, a := range lint.Registry() {
		names = append(names, a.Name)
	}
	for _, added := range []string{"hotpath", "lockguard"} {
		present := false
		for _, n := range names {
			if n == added {
				present = true
			}
		}
		if !present {
			t.Fatalf("registry does not include %s; farm lint caching would miss it", added)
		}
		hFull, err := lint.ContentHash(names, pkgs)
		if err != nil {
			t.Fatal(err)
		}
		var without []string
		for _, n := range names {
			if n != added {
				without = append(without, n)
			}
		}
		hWithout, err := lint.ContentHash(without, pkgs)
		if err != nil {
			t.Fatal(err)
		}
		if hFull == hWithout {
			t.Errorf("hash insensitive to the %s analyzer; stale farm cache entries would be reused", added)
		}
	}
}

// TestContentHashRelocatable pins the cache-sharing half of the contract:
// the hash digests module-relative paths, so the same tree checked out at
// two different absolute locations produces the same hash.
func TestContentHashRelocatable(t *testing.T) {
	loader := newLoader(t)
	src, err := filepath.Abs(filepath.Join("testdata", "taint"))
	if err != nil {
		t.Fatal(err)
	}
	var hashes []string
	for _, parent := range []string{"checkout-a", "checkout-b/nested"} {
		dir := filepath.Join(t.TempDir(), parent, "taint")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		entries, err := os.ReadDir(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join(src, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, e.Name()), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		h, err := lint.ContentHash([]string{"taintflow"}, []*lint.Package{pkg})
		if err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, h)
	}
	if hashes[0] != hashes[1] {
		t.Errorf("hash depends on the checkout path: %s vs %s", hashes[0], hashes[1])
	}
}

// TestDiagnosticString pins the report format the driver prints.
func TestDiagnosticString(t *testing.T) {
	d := lint.Diagnostic{Analyzer: "determinism", Message: "boom"}
	d.Pos.Filename = "a/b.go"
	d.Pos.Line = 3
	d.Pos.Column = 7
	got := d.String()
	want := "a/b.go:3:7: [determinism] boom"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	if fmt.Sprint(d) != want {
		t.Fatalf("Sprint mismatch")
	}
}
