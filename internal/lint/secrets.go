package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerSecrets enforces the §4 secret-hygiene discipline: group session
// keys, one-time-pad mask banks, memory pads, and IVs must never flow into
// format/print calls, log output, error strings, panics, or the trace
// emitters. The bus-encryption literature singles this out as the main
// implementation pitfall of pad-based schemes — one fmt.Errorf("%x", key)
// undoes the hardware design.
//
// A finding requires both signals: the identifier *name* matches a secret
// pattern (key/secret/mask/pad/session/iv) and its *type* carries byte
// material (byte slices/arrays such as aes.Block, or containers thereof).
// Plain counters like Stats.PadHits (uint64) never match.
func AnalyzerSecrets() *Analyzer {
	a := &Analyzer{
		Name: "secrets",
		Doc:  "key/pad/mask/IV material must not reach prints, logs, errors, panics, or traces",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sink := sinkName(pass, call)
				if sink == "" {
					return true
				}
				seen := map[string]bool{}
				for _, arg := range call.Args {
					ast.Inspect(arg, func(m ast.Node) bool {
						// Sizes and capacities of secret containers are
						// metadata, not material.
						if inner, ok := m.(*ast.CallExpr); ok {
							if name := identName(inner.Fun); name == "len" || name == "cap" {
								return false
							}
						}
						id, ok := m.(*ast.Ident)
						if !ok || seen[id.Name] {
							return true
						}
						if secretName(id.Name) && secretType(pass.TypeOf(id), 0) {
							seen[id.Name] = true
							pass.Reportf(id.Pos(), "secret material %q flows into %s; secrets must never reach logs, traces, or error strings", id.Name, sink)
						}
						return true
					})
				}
				return false
			})
		}
	}
	return a
}

// sinkName classifies a call as a secret sink, returning a label for the
// report ("" when it is not a sink).
func sinkName(pass *Pass, call *ast.CallExpr) string {
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
		return "panic"
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch path := pass.CalleePkgPath(call); {
	case path == "fmt":
		name := sel.Sel.Name
		for _, p := range []string{"Print", "Sprint", "Fprint", "Append", "Error"} {
			if strings.HasPrefix(name, p) {
				return "fmt." + name
			}
		}
	case path == "log":
		return "log." + sel.Sel.Name
	case path == "errors":
		return "errors." + sel.Sel.Name
	case strings.HasSuffix(path, "internal/trace"):
		return "trace." + sel.Sel.Name
	}
	return ""
}

// secretName matches identifiers that plausibly hold secret material.
func secretName(name string) bool {
	l := strings.ToLower(name)
	for _, w := range []string{"key", "secret", "mask", "pad", "session"} {
		if strings.Contains(l, w) {
			return true
		}
	}
	return l == "iv" || strings.HasSuffix(l, "iv")
}

// secretType reports whether t carries byte material: a byte slice or
// array (aes.Block is [16]byte), a container of such, or a struct with such
// a field. Scalars and counters do not match.
func secretType(t types.Type, depth int) bool {
	if t == nil || depth > 4 {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return isByte(u.Elem()) || secretType(u.Elem(), depth+1)
	case *types.Array:
		return isByte(u.Elem()) || secretType(u.Elem(), depth+1)
	case *types.Pointer:
		return secretType(u.Elem(), depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if secretType(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	}
	return false
}

func isByte(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8)
}
