// Package orchfix pins the nondeterm analyzer's orchestration-package
// allowlist: this package name is registered in orchestrationPkgs, so
// goroutine creation, sync primitives, and wall-clock reads are accepted
// here (worker pools and progress ETAs are load-bearing in
// orchestration), while the global math/rand stream and sync.Map remain
// banned everywhere. The companion nondet fixture pins the full ban for
// simulator packages.
package orchfix

import (
	"math/rand" // want "use senss/internal/rng"
	"sync"
	"time"
)

// Fan fans work out over a bounded pool: accepted in orchestration.
func Fan(workers int, jobs []func()) {
	ch := make(chan func())
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range ch {
				job()
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
}

// Start reads the host clock for progress reporting: accepted here.
func Start() time.Time { return time.Now() }

// Elapsed measures host wall time: accepted here.
func Elapsed(start time.Time) time.Duration { return time.Since(start) }

// Draw consumes the global math/rand stream: still banned (the import
// above is the finding) — orchestration gets no randomness waiver.
func Draw() int { return rand.Intn(6) }

// Registry would iterate nondeterministically: still banned even in
// orchestration packages; results must be keyed and ordered explicitly.
var Registry sync.Map // want "sync.Map iteration order is nondeterministic"
