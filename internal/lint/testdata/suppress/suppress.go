// Package suppress exercises the directive machinery itself: line and
// declaration coverage, the mandatory written reason, and malformed
// directives being findings in their own right.
package suppress

import "errors"

func mayFail() error { return errors.New("boom") }

// Preceding-line directive covers the next line.
func Covered() {
	//senss-lint:ignore droppederr fixture: waiver on the preceding line
	mayFail()
}

// Inline directive covers its own line.
func Inline() {
	mayFail() //senss-lint:ignore droppederr fixture: inline waiver
}

// A reason-less directive suppresses nothing and is itself a finding.
func NoReason() {
	//senss-lint:ignore droppederr // want "needs an analyzer list and a written reason"
	mayFail() // want "error result of mayFail is dropped"
}

// A bare directive with no analyzer list at all (everything after the
// nested "//" is commentary, so the scanner sees only the verb) must be
// reported as malformed, not crash the directive scanner.
func Bare() {
	//senss-lint:ignore // want "needs an analyzer list and a written reason"
	mayFail() // want "error result of mayFail is dropped"
}

// A directive in the doc comment covers the whole declaration.
//
//senss-lint:ignore droppederr fixture: declaration-wide waiver
func DeclWide() {
	mayFail()
	mayFail()
}

// An unknown verb is malformed.
//
//senss-lint:suppress droppederr oops // want "malformed senss-lint directive"
func Malformed() {
	mayFail() // want "error result of mayFail is dropped"
}

// A waiver naming an analyzer that does not exist protects nothing and is
// itself a finding.
func UnknownAnalyzer() {
	//senss-lint:ignore nosuchanalyzer fixture: typo in the analyzer name // want `references unknown analyzer "nosuchanalyzer"`
	mayFail() // want "error result of mayFail is dropped"
}

// A taintflow waiver without a reason gets the stricter message: it
// locally disables the secret-flow guarantee.
func TaintflowNoReason() {
	//senss-lint:ignore taintflow // want "must carry a written reason"
	mayFail() // want "error result of mayFail is dropped"
}
