// Package hotfix is the hotpath fixture: planted violations of the
// allocation-and-escape discipline at golden positions, next to clean
// twins that must stay unreported. The package imports only the standard
// library so the fixture harness can type-check it in isolation; the
// allowlisted imports (encoding/binary, math/bits) double as a pin on
// the analyzer's external-call allowlist.
package hotfix

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// stats is plain value state shared by the fixtures.
type stats struct {
	hits, misses uint64
}

//senss-lint:hotpath
func (s *stats) bump() { s.hits++ }

// port mirrors the bus.MemoryPort shape: one interface, two
// implementations, only one of them annotated.
type port interface {
	fetch(addr uint64) uint64
}

// fastPort is the annotated implementation.
type fastPort struct{ base uint64 }

//senss-lint:hotpath
func (p *fastPort) fetch(addr uint64) uint64 { return p.base + addr }

// slowPort is deliberately unannotated: interface dispatch from hot code
// must name it.
type slowPort struct{ lines map[uint64]uint64 }

func (p *slowPort) fetch(addr uint64) uint64 { return p.lines[addr] }

// helper is unannotated module code: hot functions may not call it.
func helper(x uint64) uint64 { return x * 2 }

//senss-lint:hotpath
func hotHelper(x uint64) uint64 { return x + 1 }

//senss-lint:hotpath
func sink(v any) {}

// coldGrow is the sanctioned exit: first-touch growth with a written
// reason. Its body is not checked.
//
//senss-lint:coldpath first-touch growth happens once per line, off the steady state
func coldGrow(buf []byte) []byte { return append(buf, 0) }

// --- clean twins -----------------------------------------------------

// cleanSteady is the clean twin: flat state updates, annotated callees,
// allowlisted externals, value composite literals, and an exempt panic
// path keep the steady state allocation-free.
//
//senss-lint:hotpath
func cleanSteady(p *fastPort, s *stats, buf []byte) uint64 {
	v := binary.LittleEndian.Uint64(buf)
	v = bits.RotateLeft64(v, 8)
	v += hotHelper(p.fetch(v & 63))
	s.bump()
	local := stats{hits: v}
	if local.hits == 0 {
		panic(fmt.Sprintf("impossible rotation of %d", v))
	}
	return local.hits
}

// cleanColdCall exits through the coldpath hatch.
//
//senss-lint:hotpath
func cleanColdCall(buf []byte) []byte {
	return coldGrow(buf)
}

// cleanWaiver shows the audited-waiver protocol: a deliberate exception
// with a written reason is not reported.
//
//senss-lint:hotpath
func cleanWaiver(s *stats, xs []uint64) []uint64 {
	//senss-lint:ignore hotpath amortized growth: the slice reaches steady-state capacity after warmup
	xs = append(xs, s.hits)
	return xs
}

// --- planted violations ----------------------------------------------

//senss-lint:hotpath
func dirtyAllocs(n int) []byte {
	buf := make([]byte, n) // want "make allocates in hot code"
	p := new(stats)        // want "new allocates in hot code"
	p.bump()
	buf = append(buf, 1) // want "append may allocate"
	return buf
}

//senss-lint:hotpath
func dirtyCalls(s *stats) uint64 {
	v := helper(s.hits) // want "calls helper, which is not marked"
	fmt.Println(v)      // want "fmt.Println allocates in hot code"
	return v
}

//senss-lint:hotpath
func dirtyStrings(tag string, raw []byte) string {
	s := tag + "!"   // want "string concatenation allocates"
	b := string(raw) // want "string conversion allocates"
	return s + b     // want "string concatenation allocates"
}

//senss-lint:hotpath
func dirtyEscape() *stats {
	return &stats{hits: 1} // want "composite literal escapes"
}

//senss-lint:hotpath
func dirtyLiterals() {
	_ = []uint64{1, 2}      // want "slice literal"
	_ = map[uint64]uint64{} // want "map literal"
}

//senss-lint:hotpath
func dirtyClosure(n uint64) func() uint64 {
	f := func() uint64 { return helper(n) } // want "closure (func literal) allocates" want "calls helper"
	return f
}

//senss-lint:hotpath
func dirtyDeferLoop(s *stats) {
	for i := 0; i < 4; i++ {
		defer s.bump() // want "defer inside a loop allocates per iteration"
	}
}

//senss-lint:hotpath
func dirtyBoxing(s stats) any {
	var sunk any = s // want "interface conversion boxes"
	_ = sunk
	return s // want "interface conversion boxes"
}

//senss-lint:hotpath
func dirtyArgBoxing(s stats) {
	sink(s) // want "interface conversion boxes"
}

//senss-lint:hotpath
func dirtyIface(p port, addr uint64) uint64 {
	return p.fetch(addr) // want "resolves to unannotated implementation(s): slowPort.fetch"
}

//senss-lint:hotpath
func dirtyMapRange(m map[uint64]uint64) uint64 {
	var sum uint64
	for _, v := range m { // want "map iteration in hot code"
		sum += v
	}
	return sum
}

//senss-lint:hotpath
func dirtyGo() {
	go hotHelper(1) // want "go statement in hot code"
}

//senss-lint:hotpath
//senss-lint:coldpath a reason does not legitimize the double annotation
func dirtyBoth() {} // want "marked both hotpath and coldpath"

//senss-lint:coldpath // want `senss-lint:coldpath needs a written reason`
func coldNoReason() {}
