// Package lockserve is a stdlib-only mirror of internal/serve's
// lock-striped session table, kept lint-clean: TestLockguardPlantedUnlock
// loads it twice, once verbatim (expecting zero findings) and once with
// one Unlock textually removed (expecting the missing-release finding).
// This pins the property the acceptance gate cares about: the analyzer
// does not merely pass on today's tree, it demonstrably catches the
// regression that matters.
package lockserve

import "sync"

// Hosted stands in for the serving layer's per-session record.
type Hosted struct {
	ID string

	mu sync.Mutex
	//senss-lint:guardedby mu
	steps uint64
}

// Step mirrors the per-session critical section.
func (h *Hosted) Step() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.steps++
	return h.steps
}

// Table mirrors the lock-striped registry shape.
type Table struct {
	shards []tableShard
}

type tableShard struct {
	mu sync.Mutex
	//senss-lint:guardedby mu
	m map[string]*Hosted
}

// NewTable seeds the shard maps before the table escapes.
//
//senss-lint:ignore lockguard construction: the table has not escaped NewTable yet
func NewTable(n int) *Table {
	if n <= 0 {
		n = 4
	}
	t := &Table{shards: make([]tableShard, n)}
	for i := range t.shards {
		t.shards[i].m = make(map[string]*Hosted)
	}
	return t
}

func (t *Table) shardFor(id string) *tableShard {
	sum := 0
	for i := 0; i < len(id); i++ {
		sum += int(id[i])
	}
	return &t.shards[sum%len(t.shards)]
}

// Put registers a session under its ID.
func (t *Table) Put(h *Hosted) {
	s := t.shardFor(h.ID)
	s.mu.Lock()
	s.m[h.ID] = h
	s.mu.Unlock()
}

// Get returns the session with the given ID.
func (t *Table) Get(id string) (*Hosted, bool) {
	s := t.shardFor(id)
	s.mu.Lock()
	h, ok := s.m[id]
	s.mu.Unlock()
	return h, ok
}

// Delete removes and returns the session with the given ID. The Unlock
// below is the mutation target: the planted-regression test removes the
// line carrying the "planted-unlock" marker and expects lockguard to
// report the leaked lock on the return path.
func (t *Table) Delete(id string) (*Hosted, bool) {
	s := t.shardFor(id)
	s.mu.Lock()
	h, ok := s.m[id]
	if ok {
		delete(s.m, id)
	}
	s.mu.Unlock() // planted-unlock
	return h, ok
}

// Snapshot copies every session out, one shard lock at a time.
func (t *Table) Snapshot() []*Hosted {
	var out []*Hosted
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for _, h := range s.m {
			out = append(out, h)
		}
		s.mu.Unlock()
	}
	return out
}
