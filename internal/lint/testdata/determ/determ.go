// Package determ seeds determinism-analyzer fixtures: map range loops
// whose iteration order escapes (flagged) next to provably
// order-insensitive forms (accepted).
package determ

import "sort"

// Keys leaks map order into the returned slice.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want "never sorted afterwards"
		out = append(out, k)
	}
	return out
}

// KeysSorted collects then sorts: accepted.
func KeysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Total is commutative accumulation: accepted.
func Total(m map[string]uint64) uint64 {
	var total uint64
	for _, v := range m {
		total += v
	}
	return total
}

// Max is the single-accumulator max pattern: accepted.
func Max(m map[int]int) int {
	best := 0
	for v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// Victim breaks ties by visit order — a multi-variable update whose result
// depends on iteration order.
func Victim(m map[uint64]uint64) uint64 {
	var victim uint64
	oldest := ^uint64(0)
	for a, tick := range m { // want "order-sensitive iteration"
		if tick < oldest {
			oldest, victim = tick, a
		}
	}
	return victim
}

// First exits early: whichever key happens to be visited first wins.
func First(m map[string]int) string {
	for k := range m { // want "order-sensitive iteration"
		return k
	}
	return ""
}

// Emit calls out of the loop in map order.
func Emit(m map[string]int, sink func(string)) {
	for k := range m { // want "order-sensitive iteration"
		sink(k)
	}
}

// Prune deletes while iterating: accepted (distinct keys commute).
func Prune(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// Project writes slots keyed by the loop key: accepted.
func Project(src map[string]int, dst map[string]int) {
	for k, v := range src {
		dst[k] = v * 2
	}
}

// Waived is order-sensitive but carries an audited reason.
func Waived(m map[string]int, sink func(string)) {
	//senss-lint:ignore determinism fixture: demonstrating an audited waiver
	for k := range m {
		sink(k)
	}
}
