// Package cycle seeds cycle-accounting fixtures: timed-shape methods and
// run-token holders that forget to charge latency (flagged) next to
// charging, delegating, and explicitly waived forms (accepted).
package cycle

// Proc mirrors sim.Proc.
type Proc struct{}

// Sleep charges simulated cycles.
func (p *Proc) Sleep(d uint64) {}

// Park suspends the proc.
func (p *Proc) Park() {}

// Now observes the clock without charging.
func (p *Proc) Now() uint64 { return 0 }

// Transaction mirrors bus.Transaction.
type Transaction struct{ C2C bool }

type silentHook struct{}

// OnTransaction never charges and never waives.
func (h *silentHook) OnTransaction(p *Proc, t *Transaction) uint64 { // want "holds the run token"
	if !t.C2C {
		return 0 // want "returns literal 0 cycles"
	}
	return 0 // want "returns literal 0 cycles"
}

type port struct{ lat uint64 }

// Fetch forgets the fast-path charge.
func (m *port) Fetch(t *Transaction, dst []byte) uint64 {
	if t.C2C {
		return 0 // want "returns literal 0 cycles"
	}
	return m.lat
}

// Store charges on every path: accepted.
func (m *port) Store(t *Transaction, src []byte) uint64 {
	return m.lat
}

// Run charges via Sleep: accepted.
func Run(p *Proc) {
	p.Sleep(3)
}

// Chain delegates the token: accepted.
func Chain(p *Proc) {
	Run(p)
}

// Idle holds the token and only reads the clock.
func Idle(p *Proc) uint64 { // want "holds the run token"
	return p.Now()
}

// Observe is zero-cost by contract and carries the audit note: accepted.
//
//senss-lint:ignore cycleacct fixture: observation is cost-free by contract
func (h *silentHook) Observe(p *Proc, t *Transaction) uint64 {
	if t.C2C {
		return 0
	}
	return 0
}
