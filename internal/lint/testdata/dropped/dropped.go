// Package dropped seeds error-discipline fixtures: silently discarded
// error returns (flagged) next to handled, explicitly ignored, and
// best-effort forms (accepted).
package dropped

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

// Drop discards errors in statement position.
func Drop() {
	mayFail() // want "error result of mayFail is dropped"
	pair()    // want "error result of pair is dropped"
}

// DropDefer discards an error in a deferred call.
func DropDefer() {
	defer os.Remove("scratch") // want "error result of os.Remove is dropped"
}

// Handle checks: accepted.
func Handle() error {
	if err := mayFail(); err != nil {
		return err
	}
	return nil
}

// Conscious ignores explicitly: accepted.
func Conscious() {
	_ = mayFail()
}

// BestEffort writers are excluded: accepted.
func BestEffort(sb *strings.Builder) {
	fmt.Println("status")
	sb.WriteString("ok")
}
