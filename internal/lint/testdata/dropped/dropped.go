// Package dropped seeds error-discipline fixtures: silently discarded
// error returns (flagged) next to handled, explicitly ignored, and
// best-effort forms (accepted).
package dropped

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

// Drop discards errors in statement position.
func Drop() {
	mayFail() // want "error result of mayFail is dropped"
	pair()    // want "error result of pair is dropped"
}

// DropDefer discards an error in a deferred call.
func DropDefer() {
	defer os.Remove("scratch") // want "error result of os.Remove is dropped"
}

// Handle checks: accepted.
func Handle() error {
	if err := mayFail(); err != nil {
		return err
	}
	return nil
}

// Conscious ignores explicitly: accepted.
func Conscious() {
	_ = mayFail()
}

// BestEffort writers are excluded: accepted.
func BestEffort(sb *strings.Builder) {
	fmt.Println("status")
	sb.WriteString("ok")
}

// DeferBlank hides a cleanup failure inside a deferred closure: flagged.
func DeferBlank(f *os.File) {
	defer func() {
		_ = f.Close() // want "error result of f.Close is blanked in deferred cleanup"
	}()
}

// DeferLogged reports the cleanup failure: accepted.
func DeferLogged(f *os.File) {
	defer func() {
		if err := f.Close(); err != nil {
			fmt.Println("close:", err)
		}
	}()
}

// DeferJoined folds the cleanup failure into the named return: accepted.
func DeferJoined(f *os.File) (err error) {
	defer func() {
		err = errors.Join(err, f.Close())
	}()
	return nil
}

// PartialBlank uses the value but blanks the error: flagged.
func PartialBlank() int {
	n, _ := pair() // want "error result of pair is blanked while its other results are used"
	return n
}

// PairedBlank blanks only the error position of a paired assignment: flagged.
func PairedBlank() int {
	n, _ := 1, mayFail() // want "error result of mayFail is blanked while its other results are used"
	return n
}

// AllBlank discards every result explicitly: accepted.
func AllBlank() {
	_, _ = pair()
}
