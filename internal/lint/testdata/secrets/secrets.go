// Package secrets seeds secret-hygiene fixtures: key/pad/mask/IV material
// reaching prints, logs, errors, and panics (flagged) next to innocuous
// counters that share the vocabulary (accepted).
package secrets

import (
	"fmt"
	"log"
)

// Block mirrors the shape of aes.Block.
type Block [16]byte

// Group mirrors a group-information-table entry: its fields are secret
// byte material.
type Group struct {
	SessionKey Block
	MaskBanks  [][]Block
}

// LeakPrintf formats a session key.
func LeakPrintf(sessionKey Block) {
	fmt.Printf("installing key %x\n", sessionKey) // want `secret material "sessionKey" flows into fmt.Printf`
}

// LeakError folds pad bytes into an error string.
func LeakError(pad []byte) error {
	return fmt.Errorf("stale pad %x", pad) // want `secret material "pad" flows into fmt.Errorf`
}

// LeakLog logs a mask bank.
func LeakLog(maskBank []Block) {
	log.Println("bank", maskBank) // want `secret material "maskBank" flows into log.Println`
}

// LeakPanic panics with IV material.
func LeakPanic(encIV Block) {
	panic(fmt.Sprintf("bad IV %v", encIV)) // want `secret material "encIV" flows into panic`
}

// LeakStruct prints a struct carrying secret fields.
func LeakStruct(keyTable *Group) {
	fmt.Println(keyTable) // want `secret material "keyTable" flows into fmt.Println`
}

// LeakSlice leaks through a subexpression.
func LeakSlice(sessionKey Block) string {
	return fmt.Sprintf("%x", sessionKey[:4]) // want `secret material "sessionKey" flows into fmt.Sprintf`
}

// Counters shares the vocabulary but carries no byte material: accepted.
func Counters(padHits, padMisses uint64, keyCount int) {
	fmt.Printf("pad hits %d misses %d keys %d\n", padHits, padMisses, keyCount)
}

// Metadata about secrets (sizes, indices) is fine: accepted.
func Metadata(maskBank []Block) {
	fmt.Printf("bank of %d masks\n", len(maskBank))
}
