// Package lockfix seeds every lockguard finding class next to a clean
// twin, in the expected-diagnostic golden format: each planted
// violation carries a // want comment with a substring of the expected
// message, and the clean twin right beside it must stay silent.
package lockfix

import (
	"sync"
	"time"
)

// Counter is the plain-Mutex shape: one guard, one guarded field.
type Counter struct {
	mu sync.Mutex
	//senss-lint:guardedby mu
	n int
}

// IncClean is the canonical critical section.
func (c *Counter) IncClean() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// addOne and bump are *Locked-style helpers: they touch the guarded
// field without locking, so lockguard gives them a requires-lock
// summary instead of a finding, and judges their call sites.
func (c *Counter) addOne() { c.n++ }

func (c *Counter) bump() { c.n++ }

// BumpClean satisfies bump's hoisted requirement.
func (c *Counter) BumpClean() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bump()
}

// middle hoists addOne's requirement one more level: the operand is
// middle's own parameter, so the precondition becomes middle's.
func middle(c *Counter) {
	c.addOne()
}

// topClean discharges the transitively hoisted requirement.
func topClean() {
	var c Counter
	c.mu.Lock()
	middle(&c)
	c.mu.Unlock()
}

// topBad calls through the same chain without the lock; the operand is
// a local, so the requirement can hoist no further and is reported.
func topBad() {
	var c Counter
	middle(&c) // want "requires c.mu to be held"
}

// bumpLocal is the single-hop version of the same finding.
func bumpLocal() {
	var c Counter
	c.bump() // want "requires c.mu to be held"
}

// maybeBad locks on only one branch: the access is reachable unlocked.
func (c *Counter) maybeBad(flag bool) {
	if flag {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	c.n++ // want "not locked on every path"
}

//senss-lint:ignore lockguard constructor: the Counter has not escaped yet, no other goroutine can observe the write
func newCounter() *Counter {
	c := &Counter{}
	c.n = 42
	return c
}

// lockLeak takes the lock but an early return path never releases it.
func lockLeak(c *Counter) {
	c.mu.Lock()
	if c.n > 0 {
		return // want "not released on this return path"
	}
	c.mu.Unlock()
}

// lockLeakClean releases on every path via defer.
func lockLeakClean(c *Counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.n > 0 {
		return
	}
	c.n--
}

// doubleLock re-acquires a mutex the path already holds.
func doubleLock(c *Counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mu.Lock() // want "second Lock of c.mu on this path would deadlock"
}

// unlockNotHeld releases a mutex no path has acquired.
func unlockNotHeld(c *Counter) {
	c.mu.Unlock() // want "not locked on this path"
}

// doubleUnlock releases explicitly with a deferred release scheduled.
func doubleUnlock(c *Counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = 1
	c.mu.Unlock() // want "deferred release is already scheduled"
}

// Stats is the RWMutex shape.
type Stats struct {
	mu sync.RWMutex
	//senss-lint:guardedby mu
	hits int
}

// ReadClean reads under the read side.
func (s *Stats) ReadClean() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.hits
}

// WriteClean writes under the write side.
func (s *Stats) WriteClean() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hits++
}

// writeUnderRLock mutates with only the read side held.
func (s *Stats) writeUnderRLock() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.hits++ // want "written with only RLock held"
}

// wrongUnlock releases the write side of a read-side acquisition.
func (s *Stats) wrongUnlock() {
	s.mu.RLock()
	s.mu.Unlock() // want "only RLock is held"
}

// A and B give the lock-order graph two annotated classes.
type A struct {
	mu sync.Mutex
	//senss-lint:guardedby mu
	x int
}

type B struct {
	mu sync.Mutex
	//senss-lint:guardedby mu
	y int
}

// abOrder nests B inside A; baOrder nests A inside B. Together they
// close a cycle in the module lock-order graph, reported once at the
// earliest edge of the cycle — the acquisition below.
func abOrder(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want "lock-order cycle (deadlock candidate)"
	b.y = 1
	a.x = 1
	b.mu.Unlock()
	a.mu.Unlock()
}

func baOrder(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock()
	a.x = 2
	b.y = 2
	a.mu.Unlock()
	b.mu.Unlock()
}

// C demonstrates the self-edge case: nesting two instances of the same
// class is a deadlock candidate the moment two goroutines pick opposite
// orders.
type C struct {
	mu sync.Mutex
	//senss-lint:guardedby mu
	q int
}

func nestSame(u, v *C) {
	u.mu.Lock()
	v.mu.Lock() // want "lock-order cycle (deadlock candidate)"
	u.q = 1
	v.q = 1
	v.mu.Unlock()
	u.mu.Unlock()
}

// spawnClean: the goroutine takes the lock itself.
func (c *Counter) spawnClean() {
	go func() {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}()
}

// spawnBad: the creator's critical section does not extend into the
// goroutine.
func (c *Counter) spawnBad() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want "captured in a go statement without c.mu held"
	}()
}

// spawnRequireBad hands a requires-lock helper to a goroutine; the
// precondition cannot be satisfied across the boundary.
func (c *Counter) spawnRequireBad() {
	go c.addOne() // want "cannot cross a goroutine boundary"
}

// handlerClean returns a closure that locks for itself.
func (c *Counter) handlerClean() func() {
	return func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.n++
	}
}

// handlerBad returns a closure that relies on a lock it never takes.
func (c *Counter) handlerBad() func() {
	return func() {
		c.n++ // want "captured in an escaping func literal without c.mu held"
	}
}

// Queue mixes a guarded counter with an unguarded channel.
type Queue struct {
	mu sync.Mutex
	//senss-lint:guardedby mu
	pending int
	ch      chan int
}

// SendClean leaves the critical section before the channel op.
func (q *Queue) SendClean(v int) {
	q.mu.Lock()
	q.pending++
	q.mu.Unlock()
	q.ch <- v
}

// sendBad holds the annotated mutex across a blocking send.
func (q *Queue) sendBad(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.pending++
	q.ch <- v // want "q.mu is held across a blocking channel send"
}

// recvBad holds it across a blocking receive.
func (q *Queue) recvBad() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return <-q.ch // want "held across a blocking channel receive"
}

// pollClean: select with a default never blocks, and the comm clause's
// receive is governed by the select, not judged on its own.
func (q *Queue) pollClean() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case v := <-q.ch:
		return v
	default:
		return 0
	}
}

// wait blocks via an external callee; the summary propagates.
func (q *Queue) wait() {
	time.Sleep(time.Millisecond)
}

// waitBad holds the mutex across the transitively blocking call.
func (q *Queue) waitBad() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.wait() // want "q.mu is held across a call to Queue.wait, which blocks"
}

// waitClean releases before blocking.
func (q *Queue) waitClean() {
	q.mu.Lock()
	q.pending = 0
	q.mu.Unlock()
	q.wait()
}

// Bad's annotation names a field that is not a mutex: the annotation
// itself is the finding.
type Bad struct {
	mu sync.Mutex
	//senss-lint:guardedby lock — want "names no sync.Mutex or sync.RWMutex field"
	z int
}

// use keeps every planted shape referenced so the fixture type-checks
// without unused-symbol errors.
func use() {
	c := newCounter()
	c.IncClean()
	c.BumpClean()
	topClean()
	topBad()
	bumpLocal()
	c.maybeBad(true)
	lockLeak(c)
	lockLeakClean(c)
	doubleLock(c)
	unlockNotHeld(c)
	doubleUnlock(c)
	s := &Stats{}
	_ = s.ReadClean()
	s.WriteClean()
	s.writeUnderRLock()
	s.wrongUnlock()
	abOrder(&A{}, &B{})
	baOrder(&A{}, &B{})
	nestSame(&C{}, &C{})
	c.spawnClean()
	c.spawnBad()
	c.spawnRequireBad()
	c.handlerClean()()
	c.handlerBad()()
	q := &Queue{ch: make(chan int, 1)}
	q.SendClean(1)
	q.sendBad(1)
	_ = q.recvBad()
	_ = q.pollClean()
	q.waitBad()
	q.waitClean()
	_ = Bad{}.z
	_ = Bad{}.mu
}
