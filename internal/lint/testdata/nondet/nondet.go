// Package nondet seeds nondeterm-analyzer fixtures: host time, global
// math/rand, sync.Map, and goroutine creation outside the sim engine.
package nondet

import (
	"math/rand" // want "use senss/internal/rng"
	"sync"
	"time"
)

// Stamp reads the host clock.
func Stamp() uint64 {
	return uint64(time.Now().UnixNano()) // want "time.Now reads host state"
}

// Wait sleeps host time.
func Wait() {
	time.Sleep(time.Millisecond) // want "time.Sleep reads host state"
}

// Draw consumes the global math/rand stream (the import is the finding).
func Draw() int {
	return rand.Intn(6)
}

// Shared iterates nondeterministically even single-threaded.
var Shared sync.Map // want "sync.Map iteration order is nondeterministic"

// Race spawns a goroutine outside the engine's run-token loop.
func Race(fn func()) {
	go fn() // want "goroutine outside the sim engine"
}

// Dur is a pure conversion: accepted.
func Dur(cycles uint64) time.Duration {
	return time.Duration(cycles) * time.Nanosecond
}
