package taint

import "fmt"

// BlockLike mirrors the module's crypto.BlockCipher: its Encrypt is wired
// into the analyzer's taintDeclassifierIfaces table, so calls through the
// interface AND calls on implementing concrete types must both cut taint
// — while an Encrypt method on a non-implementing type must not.
type BlockLike interface {
	Encrypt(src [16]byte) [16]byte
}

// xorEngine implements BlockLike.
type xorEngine struct {
	//senss-lint:secret
	pad [16]byte
}

func (e *xorEngine) Encrypt(src [16]byte) [16]byte {
	var out [16]byte
	for i := range src {
		out[i] = src[i] ^ e.pad[i]
	}
	return out
}

// CleanIfaceEncrypt prints cipher output obtained through the interface:
// declassified, no finding.
func CleanIfaceEncrypt(c BlockLike, src [16]byte) {
	ct := c.Encrypt(src)
	fmt.Printf("wire block %x\n", ct)
}

// CleanConcreteEncrypt prints cipher output from the concrete
// implementation directly: resolved via types.Implements, no finding.
func CleanConcreteEncrypt(src [16]byte) {
	e := &xorEngine{}
	ct := e.Encrypt(src)
	fmt.Printf("wire block %x\n", ct)
}

// mislabeled has an Encrypt method but does NOT implement BlockLike (the
// signature differs), so the interface entry must not declassify it.
type mislabeled struct {
	//senss-lint:secret
	key []byte
}

func (m *mislabeled) Encrypt() []byte { return m.key }

// LeakFakeEncrypt prints the result of the non-implementing Encrypt: the
// secret flows through untouched.
func LeakFakeEncrypt(m *mislabeled) {
	fmt.Printf("key = %x\n", m.Encrypt()) // want `flows into fmt.Printf`
}
