// Package taint is the taintflow fixture: the five planted leak classes
// (print, error-string, json-marshal, variable-time compare, missing
// zeroize on an error path) at golden positions, next to clean twins that
// must stay unreported. The package imports only the standard library so
// the fixture harness can type-check it in isolation; unwrapSessionKey
// and padSchedule are wired into the analyzer's origin table, which also
// pins the table's FullName key format.
package taint

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Vault models a group-info table entry; Key is declared secret the same
// way the real tree annotates session state.
type Vault struct {
	//senss-lint:secret
	Key  []byte
	Name string
}

// unwrapSessionKey models RSA-unwrapping a session key (an acquire-flagged
// origin-table entry: the caller owns erasure).
func unwrapSessionKey() []byte {
	return make([]byte, 16)
}

// padSchedule models deriving the one-time-pad schedule (origin, not
// acquire-flagged).
func padSchedule() []byte {
	return make([]byte, 64)
}

// LeakPrint formats a secret: taint through a plain assignment.
func LeakPrint(v *Vault) {
	k := v.Key
	fmt.Printf("group key = %x\n", k) // want `flows into fmt.Printf`
}

// LeakError folds a secret into an error string: taint through copy()
// into a fresh buffer.
func LeakError(v *Vault) error {
	buf := make([]byte, len(v.Key))
	copy(buf, v.Key)
	return fmt.Errorf("rejected key %x", buf) // want `flows into fmt.Errorf`
}

// leakReport wraps the material the way the oracle's divergence report
// used to before redaction.
type leakReport struct {
	Blob []byte `json:"blob"`
}

// LeakJSON marshals a secret: taint through re-slicing and a composite
// literal.
func LeakJSON(v *Vault) ([]byte, error) {
	blob := v.Key[2:8]
	return json.Marshal(leakReport{Blob: blob}) // want `flows into encoding/json.Marshal`
}

// LeakCompare compares a secret in variable time.
func LeakCompare(v *Vault, guess []byte) bool {
	return bytes.Equal(v.Key, guess) // want `use ct.Equal`
}

// seal stands in for any fallible consumer of the key.
func seal(data, key []byte) ([]byte, error) {
	if len(key) == 0 {
		return nil, fmt.Errorf("empty key")
	}
	out := make([]byte, len(data))
	for i := range data {
		out[i] = data[i] ^ key[i%len(key)]
	}
	return out, nil
}

// wipe erases b (recognized by the zeroize rule by name).
func wipe(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// LeakZeroize erases the acquired key on the happy path but forgets the
// error path.
func LeakZeroize(data []byte) ([]byte, error) {
	key := unwrapSessionKey()
	out, err := seal(data, key)
	if err != nil {
		return nil, err // want `not zeroized on this return path`
	}
	wipe(key)
	return out, nil
}

// CleanCountedZeroize erases the key with the counted-loop idiom on both
// paths; the plain `for i := 0; i < len(key); i++` form must count as
// erasure just like a range-zero loop, with no waiver needed.
func CleanCountedZeroize(data []byte) ([]byte, error) {
	key := unwrapSessionKey()
	out, err := seal(data, key)
	if err != nil {
		for i := 0; i < len(key); i++ {
			key[i] = 0
		}
		return nil, err
	}
	for i := 0; i < len(key); i++ {
		key[i] = 0
	}
	return out, nil
}

// CleanZeroize is the fixed twin: a deferred wipe covers every path.
func CleanZeroize(data []byte) ([]byte, error) {
	key := unwrapSessionKey()
	defer wipe(key)
	out, err := seal(data, key)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CleanClearZeroize erases with the clear builtin on both paths; the
// Go 1.21 idiom must count as erasure just like a named wipe helper.
func CleanClearZeroize(data []byte) ([]byte, error) {
	key := unwrapSessionKey()
	out, err := seal(data, key)
	if err != nil {
		clear(key)
		return nil, err
	}
	clear(key)
	return out, nil
}

// zeroLine is the conventional all-zero copy source; the name is what
// the copy-erasure rule keys on.
var zeroLine [64]byte

// CleanCopyZeroize erases by full-length copy from a zero source: the
// error path uses the structural make([]T, len(key)) form, the happy
// path the named zero-buffer convention.
func CleanCopyZeroize(data []byte) ([]byte, error) {
	key := unwrapSessionKey()
	out, err := seal(data, key)
	if err != nil {
		copy(key, make([]byte, len(key)))
		return nil, err
	}
	copy(key, zeroLine[:])
	return out, nil
}

// LeakCopyNotZero clears the happy path but "erases" the error path by
// copying from a live scratch buffer — data movement, not erasure.
func LeakCopyNotZero(data, scratch []byte) ([]byte, error) {
	key := unwrapSessionKey()
	out, err := seal(data, key)
	if err != nil {
		copy(key, scratch)
		return nil, err // want `not zeroized on this return path`
	}
	clear(key)
	return out, nil
}
