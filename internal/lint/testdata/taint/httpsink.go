package taint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net/http"
)

// This file plants the serving-layer leak class: a mislabeled HTTP
// handler that writes session-key material into a response body. The
// net/http sinks (ResponseWriter.Write resolved through the interface,
// and http.Error) must flag raw material, while the sanctioned
// fingerprint reduction stays unreported — the only shape a served
// divergence report may take.

// LeakHandlerWrite streams the raw group key to a remote client.
func LeakHandlerWrite(w http.ResponseWriter, v *Vault) {
	k := v.Key
	w.Write(k) // want `flows into net/http.Write`
}

// LeakHandlerError folds the key into an HTTP error body: taint through
// a string conversion.
func LeakHandlerError(w http.ResponseWriter, v *Vault) {
	http.Error(w, string(v.Key), http.StatusForbidden) // want `flows into net/http.Error`
}

// keyReport mimics a divergence report that forgot redaction.
type keyReport struct {
	Material []byte `json:"material"`
}

// LeakHandlerJSON serializes the key straight onto the response: the
// encoder sink catches JSON-to-HTTP even though the writer itself is
// the receiver.
func LeakHandlerJSON(w http.ResponseWriter, v *Vault) error {
	return json.NewEncoder(w).Encode(keyReport{Material: v.Key}) // want `flows into encoding/json.Encode`
}

// CleanHandlerFingerprint serves the sha256 session fingerprint — the
// declassified form a real report carries — and must stay unreported.
func CleanHandlerFingerprint(w http.ResponseWriter, v *Vault) {
	fp := sha256.Sum256(v.Key)
	fmt.Fprintf(w, "session %x\n", fp[:8])
	w.Write(fp[:])
}
