package taint

// corners.go exercises the propagation corner cases the issue calls out:
// slice re-slicing, copy() into a fresh buffer reaching a file write,
// closure capture, interface method pass-through, interprocedural helper
// flow — and the false-positive guards (fingerprint and constant-time
// comparison of a secret are clean, as is length metadata).

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"fmt"
	"os"
)

// Reslice re-slices the key before leaking it.
func Reslice(v *Vault) {
	window := v.Key[4:12]
	fmt.Println(window) // want `flows into fmt.Println`
}

// WriteCache models the farm's content-addressed cache write path: the
// copy into a fresh buffer must not launder the taint.
func WriteCache(v *Vault, path string) error {
	buf := make([]byte, len(v.Key))
	copy(buf, v.Key)
	return os.WriteFile(path, buf, 0o600) // want `flows into os.WriteFile`
}

// Closure captures a secret and leaks it later.
func Closure(v *Vault) func() {
	k := v.Key
	return func() {
		fmt.Println("captured:", k) // want `flows into fmt.Println`
	}
}

// consumer is the interface the secret passes through.
type consumer interface {
	Consume(b []byte)
}

// logSink is the concrete implementation behind the interface call.
type logSink struct{}

func (logSink) Consume(b []byte) {
	fmt.Printf("consumed %x\n", b) // want `flows into fmt.Printf`
}

// ViaInterface hands the secret to an interface method; the analyzer must
// resolve the call to logSink.Consume through the method set.
func ViaInterface(v *Vault, c consumer) {
	c.Consume(v.Key)
}

// helperTag derives a tag from the schedule — an interprocedural summary:
// the result carries the parameter's taint.
func helperTag(schedule []byte) [16]byte {
	var tag [16]byte
	copy(tag[:], schedule)
	return tag
}

// ArrayCompare compares a derived tag with ==: the taint rides through
// the helper's summary and the array copy.
func ArrayCompare() bool {
	tag := helperTag(padSchedule())
	var zero [16]byte
	return tag == zero // want `use ct.Equal`
}

// FingerprintClean is the false-positive guard: a SHA-256 digest of the
// secret is the sanctioned declassified form.
func FingerprintClean(v *Vault) string {
	sum := sha256.Sum256(v.Key)
	return hex.EncodeToString(sum[:4]) // no finding: hash output is clean
}

// ConstantTimeClean compares through the constant-time primitive.
func ConstantTimeClean(v *Vault, guess []byte) bool {
	return subtle.ConstantTimeCompare(v.Key, guess) == 1 // no finding
}

// LenClean leaks only public metadata.
func LenClean(v *Vault) error {
	return fmt.Errorf("key has %d bytes", len(v.Key)) // no finding: length is public
}
