package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerDroppedErr flags calls whose error result is silently discarded
// in non-test code (the loader never parses _test.go files). A dropped
// error in the simulator typically swallows a coherence-invariant
// violation or an I/O failure in a report writer.
//
// Best-effort writers are excluded: the fmt print family and writes to
// in-memory sinks (bytes.Buffer, strings.Builder) conventionally never
// fail in ways the caller can act on. An explicit `_ =` assignment is a
// conscious decision and is not flagged.
func AnalyzerDroppedErr() *Analyzer {
	a := &Analyzer{
		Name: "droppederr",
		Doc:  "no silently dropped error returns in non-test code",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var call *ast.CallExpr
				switch n := n.(type) {
				case *ast.ExprStmt:
					call, _ = n.X.(*ast.CallExpr)
				case *ast.DeferStmt:
					call = n.Call
				}
				if call == nil || !returnsError(pass, call) || excludedSink(pass, call) {
					return true
				}
				pass.Reportf(call.Pos(), "error result of %s is dropped; handle it or assign it to _ explicitly", calleeLabel(call))
				return true
			})
		}
	}
	return a
}

// returnsError reports whether any result of the call is an error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	switch t := t.(type) {
	case nil:
		return false
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}

// excludedSink matches conventionally best-effort calls.
func excludedSink(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if pass.CalleePkgPath(call) == "fmt" {
		return true
	}
	if recv := pass.TypeOf(sel.X); recv != nil {
		s := recv.String()
		if strings.HasSuffix(s, "bytes.Buffer") || strings.HasSuffix(s, "strings.Builder") {
			return true
		}
	}
	return false
}

// calleeLabel renders the callee for the report message.
func calleeLabel(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x := identName(fun.X); x != "" {
			return x + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
