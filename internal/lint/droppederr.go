package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerDroppedErr flags calls whose error result is silently discarded
// in non-test code (the loader never parses _test.go files). A dropped
// error in the simulator typically swallows a coherence-invariant
// violation or an I/O failure in a report writer.
//
// Best-effort writers are excluded: the fmt print family and writes to
// in-memory sinks (bytes.Buffer, strings.Builder) conventionally never
// fail in ways the caller can act on. An explicit `_ =` assignment is a
// conscious decision and is not flagged — with two exceptions closing the
// cleanup-path blind spot:
//
//   - `_ = f.Close()` inside a deferred func literal. Wrapping a discard
//     in `defer func() { ... }()` is exactly where Close errors vanish
//     (flush failures on writers, zeroize failures on teardown); the
//     cleanup error must be logged or folded into the surrounding
//     function's error with errors.Join.
//   - A multi-value assignment that blanks only the error while binding
//     the other results (`n, _ := f.Write(p)`): the caller demonstrably
//     cares about the outcome yet discards the failure. Blanking every
//     result (`_, _ =`) remains the conscious all-or-nothing form.
func AnalyzerDroppedErr() *Analyzer {
	a := &Analyzer{
		Name: "droppederr",
		Doc:  "no silently dropped error returns in non-test code",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ExprStmt:
					if call, ok := n.X.(*ast.CallExpr); ok {
						checkDroppedCall(pass, call)
					}
				case *ast.DeferStmt:
					if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
						checkDeferredCleanup(pass, lit.Body)
					} else {
						checkDroppedCall(pass, n.Call)
					}
				case *ast.AssignStmt:
					checkPartialBlank(pass, n)
				}
				return true
			})
		}
	}
	return a
}

// checkDroppedCall flags a statement-position call discarding an error.
func checkDroppedCall(pass *Pass, call *ast.CallExpr) {
	if !returnsError(pass, call) || excludedSink(pass, call) {
		return
	}
	pass.Reportf(call.Pos(), "error result of %s is dropped; handle it or assign it to _ explicitly", calleeLabel(call))
}

// checkDeferredCleanup flags `_ = call()` blank discards in the body of a
// deferred func literal. Nested func literals get their own visit from
// the outer walk (and a non-deferred closure is not a cleanup path), so
// the scan stops at them.
func checkDeferredCleanup(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || !isBlank(as.Lhs[0]) {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !returnsError(pass, call) || excludedSink(pass, call) {
			return true
		}
		pass.Reportf(as.Pos(), "error result of %s is blanked in deferred cleanup; log it or join it into the function's error with errors.Join", calleeLabel(call))
		return true
	})
}

// checkPartialBlank flags assignments that blank only the error position
// of a call while binding its other results.
func checkPartialBlank(pass *Pass, as *ast.AssignStmt) {
	if len(as.Lhs) < 2 {
		return
	}
	someBound := false
	for _, l := range as.Lhs {
		if !isBlank(l) {
			someBound = true
		}
	}
	if !someBound {
		return
	}
	if len(as.Rhs) == 1 {
		// Tuple form: x, _ := call().
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || excludedSink(pass, call) {
			return
		}
		tup, ok := pass.TypeOf(call).(*types.Tuple)
		if !ok || tup.Len() != len(as.Lhs) {
			return
		}
		for i := 0; i < tup.Len(); i++ {
			if isBlank(as.Lhs[i]) && isErrorType(tup.At(i).Type()) {
				pass.Reportf(as.Pos(), "error result of %s is blanked while its other results are used; handle it or discard every result", calleeLabel(call))
				return
			}
		}
		return
	}
	// Paired form: a, _ = f(), mayFail().
	if len(as.Rhs) != len(as.Lhs) {
		return
	}
	for i, r := range as.Rhs {
		if !isBlank(as.Lhs[i]) {
			continue
		}
		call, ok := r.(*ast.CallExpr)
		if !ok || excludedSink(pass, call) {
			continue
		}
		if t := pass.TypeOf(call); t != nil && isErrorType(t) {
			pass.Reportf(as.Pos(), "error result of %s is blanked while its other results are used; handle it or discard every result", calleeLabel(call))
		}
	}
}

// isBlank reports whether the expression is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// returnsError reports whether any result of the call is an error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	switch t := t.(type) {
	case nil:
		return false
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}

// excludedSink matches conventionally best-effort calls.
func excludedSink(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if pass.CalleePkgPath(call) == "fmt" {
		return true
	}
	if recv := pass.TypeOf(sel.X); recv != nil {
		s := recv.String()
		if strings.HasSuffix(s, "bytes.Buffer") || strings.HasSuffix(s, "strings.Builder") {
			return true
		}
	}
	return false
}

// calleeLabel renders the callee for the report message.
func calleeLabel(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x := identName(fun.X); x != "" {
			return x + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
