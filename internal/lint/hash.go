package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path"
	"path/filepath"
	"sort"
)

// ContentHash computes a deterministic digest of a lint run's inputs: the
// sorted analyzer names plus the path and contents of every source file of
// every package, in sorted order. File paths are digested relative to the
// module root (slash-separated), so identical trees checked out at
// different absolute paths — or on different machines — hash identically
// and the farm's content-addressed lint cache stays shareable. Two runs
// with the same hash are guaranteed to produce the same findings, which is
// what lets the farm cache lint results content-addressed exactly like
// experiment outputs.
func ContentHash(analyzers []string, pkgs []*Package) (string, error) {
	h := sha256.New()
	names := append([]string(nil), analyzers...)
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(h, "analyzer\x00%s\x00", n)
	}
	type hashFile struct {
		rel, abs string
	}
	var files []hashFile
	seen := make(map[string]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			abs := pkg.Fset.Position(f.Pos()).Filename
			if abs == "" || seen[abs] {
				continue
			}
			seen[abs] = true
			rel := path.Join(filepath.ToSlash(pkg.RelPath), filepath.Base(abs))
			files = append(files, hashFile{rel: rel, abs: abs})
		}
	}
	sort.Slice(files, func(i, j int) bool {
		if files[i].rel != files[j].rel {
			return files[i].rel < files[j].rel
		}
		return files[i].abs < files[j].abs
	})
	for _, fl := range files {
		fmt.Fprintf(h, "file\x00%s\x00", fl.rel)
		src, err := os.ReadFile(fl.abs)
		if err != nil {
			return "", fmt.Errorf("lint: hashing %s: %w", fl.rel, err)
		}
		_, _ = h.Write(src) // sha256.Write never fails
		_, _ = h.Write([]byte{0})
	}
	return "sha256:" + hex.EncodeToString(h.Sum(nil)), nil
}
