package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"sort"
)

// ContentHash computes a deterministic digest of a lint run's inputs: the
// sorted analyzer names plus the path and contents of every source file of
// every package, in sorted order. Two runs with the same hash are
// guaranteed to produce the same findings, which is what lets the farm
// cache lint results content-addressed exactly like experiment outputs.
func ContentHash(analyzers []string, pkgs []*Package) (string, error) {
	h := sha256.New()
	names := append([]string(nil), analyzers...)
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(h, "analyzer\x00%s\x00", n)
	}
	var files []string
	seen := make(map[string]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			if name != "" && !seen[name] {
				seen[name] = true
				files = append(files, name)
			}
		}
	}
	sort.Strings(files)
	for _, name := range files {
		fmt.Fprintf(h, "file\x00%s\x00", name)
		src, err := os.ReadFile(name)
		if err != nil {
			return "", fmt.Errorf("lint: hashing %s: %w", name, err)
		}
		_, _ = h.Write(src) // sha256.Write never fails
		_, _ = h.Write([]byte{0})
	}
	return "sha256:" + hex.EncodeToString(h.Sum(nil)), nil
}
