package lint

import (
	"go/ast"
)

// orchestrationPkgs is the explicit allowlist of host-side
// fleet-coordination packages, where goroutine creation and wall-clock
// reads are load-bearing (worker pools, progress ETAs). A package is
// either simulation — deterministic, single-goroutine, banned from host
// state — or orchestration: concurrent, but structurally prevented from
// influencing simulated results (internal/farm keys and orders
// everything observable by job hash). Global math/rand and sync.Map stay
// banned even here.
//
// The "orchfix" entry is the lint_test fixture package (LoadDir surfaces
// fixtures under their base directory name); it pins both the allowance
// and the bans that survive it.
var orchestrationPkgs = map[string]bool{
	"internal/farm": true,
	"orchfix":       true,

	// internal/fuzzing replays fuzz corpus entries for cmd/senss-fuzz and
	// reports host wall time per entry (ReplayCorpus). Audited 2026-08:
	// the wall-clock read exists only for operator-facing progress
	// output; every runner (RunSchedule/RunAdversary/RunConfig) is a pure
	// function of its input bytes with fixed seeds, so timing can never
	// feed back into simulated results.
	"internal/fuzzing": true,

	// internal/serve hosts simulations behind HTTP: goroutines carry the
	// eviction janitor and request handlers, and wall-clock reads drive
	// idle-session eviction, Retry-After hints, and bench latency
	// percentiles. Audited 2026-08: every simulation advances only
	// through driver.Session.Step under the per-session Hosted mutex,
	// and a step's slice boundary cannot change results —
	// sim.Engine.RunUntil retires the identical event sequence a
	// monolithic Run would (pinned byte-identical by
	// TestServeConcurrentSessionsMatchSerial). The clock decides only
	// *whether* a session is stepped or evicted, never what the
	// simulation computes; internal/sim and internal/core stay fully
	// deterministic.
	"internal/serve": true,
}

// AnalyzerNondeterm bans host-nondeterminism primitives from the simulator
// proper (internal/...): wall-clock time, the global math/rand stream,
// sync.Map (whose range order is nondeterministic even under a single
// goroutine), and goroutine creation anywhere but the sim engine — the
// engine's single run token is the sole legitimate source of concurrency,
// and every simulated actor must receive it through Engine.Spawn.
//
// Two kinds of package are exempt from parts of the rule: the sim engine
// itself (goroutines), and the orchestration packages listed in
// orchestrationPkgs (goroutines and wall-clock reads). Host-side drivers
// under cmd/ may measure wall time; they are out of scope.
func AnalyzerNondeterm() *Analyzer {
	a := &Analyzer{
		Name:  "nondeterm",
		Doc:   "no wall-clock, global math/rand, sync.Map, or goroutines outside the sim engine and orchestration packages",
		Scope: []string{"internal"},
	}
	// bannedTime are time package functions that read host state; pure
	// conversions and constants (time.Duration, time.Millisecond) are fine.
	bannedTime := map[string]bool{
		"Now": true, "Since": true, "Until": true, "After": true,
		"AfterFunc": true, "Tick": true, "NewTimer": true, "NewTicker": true,
		"Sleep": true,
	}
	a.Run = func(pass *Pass) {
		inSim := pass.Pkg.RelPath == "internal/sim"
		orch := orchestrationPkgs[pass.Pkg.RelPath]
		for _, f := range pass.Pkg.Files {
			for _, imp := range f.Imports {
				switch imp.Path.Value {
				case `"math/rand"`, `"math/rand/v2"`:
					pass.Reportf(imp.Pos(), "import of %s: runs must be reproducible for a fixed seed; use senss/internal/rng", imp.Path.Value)
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					if !inSim && !orch {
						pass.Reportf(n.Pos(), "goroutine outside the sim engine: concurrency must flow through Engine.Spawn's run token to stay deterministic (orchestration packages are allowlisted in nondeterm.go)")
					}
				case *ast.SelectorExpr:
					id, ok := n.X.(*ast.Ident)
					if !ok {
						return true
					}
					switch pass.PkgNameOf(id) {
					case "time":
						if bannedTime[n.Sel.Name] && !orch {
							pass.Reportf(n.Pos(), "time.%s reads host state; simulated time comes from the engine (Proc.Now / Engine.Now)", n.Sel.Name)
						}
					case "sync":
						if n.Sel.Name == "Map" {
							pass.Reportf(n.Pos(), "sync.Map iteration order is nondeterministic; use a plain map with sorted keys")
						}
					}
				}
				return true
			})
		}
	}
	return a
}
