package lint

// lockguard is the interprocedural lock-discipline and goroutine-safety
// analyzer for the host-side concurrent layers (DESIGN.md §17). PR 8's
// serving layer and PR 2's farm coordinate goroutines through mutexes
// that only the dynamic -race gates exercise, and -race only catches
// interleavings a test happens to hit. lockguard turns the locking
// contracts into build-time failures, the same way taintflow does for
// secret flows and hotpath for allocation.
//
// Annotation grammar:
//
//	//senss-lint:guardedby <mu>
//	    on a struct field marks it as protected by the sibling mutex
//	    field <mu> (sync.Mutex or sync.RWMutex; a dotted path names a
//	    nested field). The annotated field may only be read while the
//	    mutex is statically held (read or write side) and only written
//	    under the write side.
//
// Rules (each is one finding class):
//
//  1. Guarded access. Every read/write of an annotated field must occur
//     with the guard held on the same base expression: h.state needs
//     h.mu. Lock sets are tracked path-sensitively through
//     Lock/Unlock/RLock/RUnlock and defer Unlock. Helper functions that
//     touch guarded fields of their receiver or parameters without
//     locking internally (the *Locked idiom) get a requires-lock
//     summary; the requirement is checked at every call site and hoisted
//     transitively when the argument is itself a parameter, so a shard
//     lookup three calls deep is still checked where the lock decision
//     is actually made.
//  2. Unlock discipline. Every Lock() is released on all return paths
//     (explicitly or by a deferred Unlock), no path unlocks a mutex it
//     does not hold, no path acquires the same mutex twice, and an
//     explicit Unlock with a deferred Unlock already scheduled is a
//     double unlock.
//  3. Lock ordering. Acquisitions are classified by the annotated guard
//     field they resolve to (pkg.Type.field); acquiring class B while
//     holding class A — directly or through any module call, interface
//     calls resolved over the module method sets — records the edge
//     A → B in a module-wide graph. Any cycle (including a self edge:
//     two instances of one class nested) is reported as a deadlock
//     candidate. The sanctioned module graph is pinned by
//     TestModuleLockOrder against testdata/lockorder_module.json.
//  4. Goroutine and blocking hygiene. A go statement or an escaping
//     func literal that touches a guarded field runs outside the
//     caller's critical section, so its body is analyzed with an empty
//     lock set: guarded accesses there need their own locking.
//     Holding an annotated mutex across a blocking operation — channel
//     send/receive/select without default, or a call whose transitive
//     body performs one (Pool.Do submission, driver.Session.Step down
//     to the engine's token handoff), or a listed external such as
//     (net/http.ResponseWriter).Write — is reported: it turns a
//     private critical section into a system-wide stall point.
//
// Deliberate exceptions use the audited-waiver protocol
// (//senss-lint:ignore lockguard <reason>): the per-session mutex that
// intentionally serializes simulation slices, and constructor writes
// before the value escapes, are written decisions in the tree.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AnalyzerLockguard returns the lock-discipline analyzer.
func AnalyzerLockguard() *Analyzer {
	a := &Analyzer{
		Name: "lockguard",
		Doc:  "fields marked //senss-lint:guardedby are only touched under their mutex; locks are balanced, ordered, and never held across blocking calls",
	}
	a.RunModule = func(mp *ModulePass) {
		w := newLockWorld(mp.Pkgs, mp.Fset)
		w.run()
		for _, d := range w.diags {
			d.Analyzer = mp.Analyzer.Name
			mp.report(d)
		}
	}
	return a
}

// LockOrderGraph builds the module's annotated-mutex acquisition graph
// without reporting diagnostics: the sorted class names (every annotated
// guard) and the sorted adjacency recorded by the lockguard walk. Tests
// pin this against a checked-in golden, so any future nesting of the
// serving/orchestration locks is a conscious, reviewed decision.
func LockOrderGraph(pkgs []*Package) (classes []string, edges map[string][]string) {
	var fset *token.FileSet
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	}
	w := newLockWorld(pkgs, fset)
	w.run()
	seen := map[string]bool{}
	for _, g := range w.guards {
		if !seen[g.class] {
			seen[g.class] = true
			classes = append(classes, g.class)
		}
	}
	sort.Strings(classes)
	edges = make(map[string][]string)
	for from, tos := range w.edges {
		var out []string
		for to := range tos {
			out = append(out, to)
		}
		sort.Strings(out)
		edges[from] = out
	}
	return classes, edges
}

// lockKind distinguishes the write and read sides of an RWMutex.
type lockKind int

const (
	lockWrite lockKind = iota
	lockRead
)

func (k lockKind) String() string {
	if k == lockRead {
		return "RLock"
	}
	return "Lock"
}

// guardInfo is one //senss-lint:guardedby annotation, resolved.
type guardInfo struct {
	field *types.Var // the guarded field
	guard *types.Var // the mutex field protecting it
	name  string     // guard path as written ("mu")
	owner string     // "pkg.Type" for messages
	class string     // "pkg.Type.mu" — the lock-order node
	rw    bool       // guard is a sync.RWMutex
}

// lockFunc is one module function body.
type lockFunc struct {
	obj  *types.Func
	decl *ast.FuncDecl
	pkg  *Package
	// params[i] is the i-th parameter object; recv is the receiver (nil
	// for plain functions). Requirement indices: -1 = receiver, 0.. =
	// params.
	recv   *types.Var
	params []*types.Var
}

// lockReq is one requires-lock precondition in a function summary: the
// guard field must be held on the argument at the given index.
type lockReq struct {
	index int    // -1 receiver, else parameter position
	guard string // guard field path to append to the argument
	write bool   // a write-side lock is needed
	field string // "Type.field" of the guarded access, for messages
	rw    bool   // guard is an RWMutex (read side satisfies reads)
}

func (r lockReq) key() string {
	return fmt.Sprintf("%d:%s:%t", r.index, r.guard, r.write)
}

// lockWorld is the whole-module analysis state.
type lockWorld struct {
	pkgs []*Package
	fset *token.FileSet

	funcs map[*types.Func]*lockFunc
	order []*lockFunc
	// guards maps every annotated field to its resolved guard; guardClass
	// maps a guard (mutex) field to its lock-order class.
	guards     map[*types.Var]*guardInfo
	guardClass map[*types.Var]string

	named     []types.Type
	implCache map[*types.Func][]*types.Func

	// Summaries, computed to fixpoint before the emit pass.
	requires map[*types.Func]map[string]lockReq
	blocking map[*types.Func]bool
	acquires map[*types.Func]map[string]bool // transitive annotated classes

	// edges is the annotated lock-order graph: class -> class -> first
	// position that recorded the edge.
	edges map[string]map[string]token.Pos

	varIDs map[types.Object]int

	diags    []Diagnostic
	diagSeen map[string]bool
	// emit gates diagnostic recording: the requirement fixpoint runs the
	// same walk with emit off.
	emit bool
	// reqChanged tracks fixpoint progress.
	reqChanged bool
}

func newLockWorld(pkgs []*Package, fset *token.FileSet) *lockWorld {
	return &lockWorld{
		pkgs:       pkgs,
		fset:       fset,
		funcs:      make(map[*types.Func]*lockFunc),
		guards:     make(map[*types.Var]*guardInfo),
		guardClass: make(map[*types.Var]string),
		implCache:  make(map[*types.Func][]*types.Func),
		requires:   make(map[*types.Func]map[string]lockReq),
		blocking:   make(map[*types.Func]bool),
		acquires:   make(map[*types.Func]map[string]bool),
		edges:      make(map[string]map[string]token.Pos),
		varIDs:     make(map[types.Object]int),
		diagSeen:   make(map[string]bool),
	}
}

func (w *lockWorld) run() {
	w.build()
	w.collectGuards()
	w.computeSummaries()

	// Requirement fixpoint: the walk records requires-lock summaries for
	// guarded accesses (and unsatisfiable callee requirements) rooted at
	// parameters; repeat until no summary grows. Bounded: each round can
	// only add (function, param, guard) triples.
	w.emit = false
	for round := 0; round < 10; round++ {
		w.reqChanged = false
		for _, fn := range w.order {
			w.analyze(fn)
		}
		if !w.reqChanged {
			break
		}
	}

	w.emit = true
	for _, fn := range w.order {
		w.analyze(fn)
	}
	w.reportCycles()

	sort.Slice(w.diags, func(i, j int) bool {
		a, b := w.diags[i], w.diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}

func (w *lockWorld) reportf(pos token.Pos, format string, args ...any) {
	if !w.emit {
		return
	}
	d := Diagnostic{
		Analyzer: "lockguard",
		Pos:      w.fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	}
	key := fmt.Sprintf("%s:%d:%d:%s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message)
	if w.diagSeen[key] {
		return
	}
	w.diagSeen[key] = true
	w.diags = append(w.diags, d)
}

// build indexes every function body and named type of the module.
func (w *lockWorld) build() {
	for _, pkg := range w.pkgs {
		if pkg.Info == nil || pkg.Types == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				lf := &lockFunc{obj: obj, decl: fd, pkg: pkg}
				if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
					lf.recv, _ = pkg.Info.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
				}
				if fd.Type.Params != nil {
					for _, field := range fd.Type.Params.List {
						for _, name := range field.Names {
							v, _ := pkg.Info.Defs[name].(*types.Var)
							lf.params = append(lf.params, v)
						}
					}
				}
				w.funcs[obj] = lf
				w.order = append(w.order, lf)
			}
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // already sorted
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
				w.named = append(w.named, tn.Type())
			}
		}
	}
	sort.Slice(w.order, func(i, j int) bool {
		return w.order[i].decl.Pos() < w.order[j].decl.Pos()
	})
}

// guardedbyDirective extracts the mutex path from a field's comments.
func guardedbyDirective(groups ...*ast.CommentGroup) (string, token.Pos, bool) {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, ok := strings.CutPrefix(text, "senss-lint:guardedby")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				return "", c.Pos(), true // malformed: reported by suppress.go
			}
			return fields[0], c.Pos(), true
		}
	}
	return "", token.NoPos, false
}

// collectGuards scans every struct declaration for guardedby annotations
// and resolves each to its sibling mutex field.
func (w *lockWorld) collectGuards() {
	for _, pkg := range w.pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					w.collectStructGuards(pkg, ts, st)
				}
			}
		}
	}
}

func (w *lockWorld) collectStructGuards(pkg *Package, ts *ast.TypeSpec, st *ast.StructType) {
	owner := pkg.Types.Name() + "." + ts.Name.Name
	for _, field := range st.Fields.List {
		guardName, pos, found := guardedbyDirective(field.Doc, field.Comment)
		if !found {
			continue
		}
		if guardName == "" {
			continue // bare directive: suppress.go reports it
		}
		guard, rw, ok := w.resolveGuard(pkg, st, guardName)
		if !ok {
			w.diags = append(w.diags, Diagnostic{
				Analyzer: "lockguard",
				Pos:      w.fset.Position(pos),
				Message:  fmt.Sprintf("guardedby %q names no sync.Mutex or sync.RWMutex field in %s", guardName, owner),
			})
			continue
		}
		class := owner + "." + guardName
		w.guardClass[guard] = class
		for _, name := range field.Names {
			if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
				w.guards[v] = &guardInfo{
					field: v,
					guard: guard,
					name:  guardName,
					owner: owner,
					class: class,
					rw:    rw,
				}
			}
		}
	}
}

// resolveGuard finds the (possibly dotted) mutex field path inside the
// struct and reports whether it is an RWMutex. The first segment is
// resolved on the declaration's AST (so the guard var is the same
// object use sites resolve to); nested segments walk the type.
func (w *lockWorld) resolveGuard(pkg *Package, st *ast.StructType, path string) (*types.Var, bool, bool) {
	segs := strings.Split(path, ".")
	var v *types.Var
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if name.Name == segs[0] {
				v, _ = pkg.Info.Defs[name].(*types.Var)
			}
		}
	}
	if v == nil {
		return nil, false, false
	}
	if len(segs) == 1 {
		rw, ok := isMutexType(v.Type())
		return v, rw, ok
	}
	return w.resolveGuardType(v.Type(), segs[1:])
}

// resolveGuardType walks the remaining path segments on the type level.
func (w *lockWorld) resolveGuardType(t types.Type, segs []string) (*types.Var, bool, bool) {
	var v *types.Var
	for _, seg := range segs {
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return nil, false, false
		}
		v = nil
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i).Name() == seg {
				v = st.Field(i)
				break
			}
		}
		if v == nil {
			return nil, false, false
		}
		t = v.Type()
	}
	rw, ok := isMutexType(t)
	return v, rw, ok
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer), and whether it is the RW variant.
func isMutexType(t types.Type) (rw, ok bool) {
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	n, isNamed := t.(*types.Named)
	if !isNamed || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
		return false, false
	}
	switch n.Obj().Name() {
	case "Mutex":
		return false, true
	case "RWMutex":
		return true, true
	}
	return false, false
}

// implementations resolves an interface method to every concrete module
// method that can stand behind it (mirrors hotpath's resolution).
func (w *lockWorld) implementations(callee *types.Func) []*types.Func {
	if impls, ok := w.implCache[callee]; ok {
		return impls
	}
	var out []*types.Func
	sig, _ := callee.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if iface, _ := sig.Recv().Type().Underlying().(*types.Interface); iface != nil {
			for _, t := range w.named {
				if _, isIface := t.Underlying().(*types.Interface); isIface {
					continue
				}
				pt := types.NewPointer(t)
				if !types.Implements(t, iface) && !types.Implements(pt, iface) {
					continue
				}
				obj, _, _ := types.LookupFieldOrMethod(pt, true, callee.Pkg(), callee.Name())
				if m, ok := obj.(*types.Func); ok {
					if _, known := w.funcs[m]; known {
						out = append(out, m)
					}
				}
			}
		}
	}
	w.implCache[callee] = out
	return out
}

// varID assigns a stable per-run identifier to a variable object, so
// lock-set keys survive shadowing and renaming.
func (w *lockWorld) varID(obj types.Object) int {
	if id, ok := w.varIDs[obj]; ok {
		return id
	}
	id := len(w.varIDs) + 1
	w.varIDs[obj] = id
	return id
}

// canonExpr canonicalizes a base expression to a lock-set key. disp is
// the human-readable form, root the variable the path is rooted at, and
// simple reports a bare identifier (the hoistable case).
func (w *lockWorld) canonExpr(info *types.Info, e ast.Expr) (key, disp string, root *types.Var, simple, ok bool) {
	switch t := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[t]
		if obj == nil {
			obj = info.Defs[t]
		}
		v, isVar := obj.(*types.Var)
		if !isVar {
			return "", "", nil, false, false
		}
		return fmt.Sprintf("v%d", w.varID(v)), t.Name, v, true, true
	case *ast.SelectorExpr:
		// pkg.Var selectors root at the package-level variable.
		if id, isIdent := t.X.(*ast.Ident); isIdent {
			if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
				if v, isVar := info.Uses[t.Sel].(*types.Var); isVar {
					return fmt.Sprintf("v%d", w.varID(v)), id.Name + "." + t.Sel.Name, v, false, true
				}
				return "", "", nil, false, false
			}
		}
		k, d, r, _, okx := w.canonExpr(info, t.X)
		if !okx {
			return "", "", nil, false, false
		}
		return k + "." + t.Sel.Name, d + "." + t.Sel.Name, r, false, true
	case *ast.IndexExpr:
		k, d, r, _, okx := w.canonExpr(info, t.X)
		if !okx {
			return "", "", nil, false, false
		}
		switch idx := ast.Unparen(t.Index).(type) {
		case *ast.Ident:
			if v, isVar := info.Uses[idx].(*types.Var); isVar {
				return fmt.Sprintf("%s[v%d]", k, w.varID(v)), d + "[" + idx.Name + "]", r, false, true
			}
			return "", "", nil, false, false
		case *ast.BasicLit:
			return k + "[" + idx.Value + "]", d + "[" + idx.Value + "]", r, false, true
		}
		return "", "", nil, false, false
	case *ast.StarExpr:
		return w.canonExpr(info, t.X)
	case *ast.UnaryExpr:
		if t.Op == token.AND {
			return w.canonExpr(info, t.X)
		}
	}
	return "", "", nil, false, false
}

// mutexOp classifies a call as a mutex operation on a canonicalizable
// receiver: x.mu.Lock() and friends.
type mutexOp struct {
	method string // Lock, Unlock, RLock, RUnlock
	key    string
	disp   string
	class  string // annotated lock-order class ("" for unannotated)
	rw     bool
}

func (w *lockWorld) asMutexOp(info *types.Info, call *ast.CallExpr) (mutexOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return mutexOp{}, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return mutexOp{}, false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return mutexOp{}, false
	}
	rw, isMutex := isMutexType(sig.Recv().Type())
	if !isMutex {
		return mutexOp{}, false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return mutexOp{}, false // TryLock and friends are not modeled
	}
	key, disp, _, _, okc := w.canonExpr(info, sel.X)
	if !okc {
		return mutexOp{}, false
	}
	op := mutexOp{method: fn.Name(), key: key, disp: disp, rw: rw}
	// Class: the final field of the receiver path, when it is an
	// annotated guard.
	if recvSel, isSel := ast.Unparen(sel.X).(*ast.SelectorExpr); isSel {
		if v, isVar := info.Uses[recvSel.Sel].(*types.Var); isVar {
			if class, annotated := w.guardClass[v]; annotated {
				op.class = class
			}
		}
	}
	return op, true
}

// requireKeyOf renders the lock requirement key for a guarded access:
// canonical base + "." + guard path.
func requireKeyOf(baseKey, guard string) string { return baseKey + "." + guard }

// addRequire grows fn's requires-lock summary.
func (w *lockWorld) addRequire(fn *types.Func, req lockReq) {
	m := w.requires[fn]
	if m == nil {
		m = make(map[string]lockReq)
		w.requires[fn] = m
	}
	if _, ok := m[req.key()]; !ok {
		m[req.key()] = req
		w.reqChanged = true
	}
}

// addEdge records a lock-order edge between annotated classes.
func (w *lockWorld) addEdge(from, to string, pos token.Pos) {
	if from == "" || to == "" {
		return
	}
	m := w.edges[from]
	if m == nil {
		m = make(map[string]token.Pos)
		w.edges[from] = m
	}
	if _, ok := m[to]; !ok {
		m[to] = pos
	}
}

// reportCycles finds strongly connected components of the annotated
// lock-order graph and reports each cycle once, anchored at its
// earliest recorded edge.
func (w *lockWorld) reportCycles() {
	// Tarjan over sorted class names for determinism.
	var classes []string
	seen := map[string]bool{}
	for from, tos := range w.edges {
		if !seen[from] {
			seen[from] = true
			classes = append(classes, from)
		}
		for to := range tos {
			if !seen[to] {
				seen[to] = true
				classes = append(classes, to)
			}
		}
	}
	sort.Strings(classes)

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	var sccs [][]string

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		var succs []string
		for to := range w.edges[v] {
			succs = append(succs, to)
		}
		sort.Strings(succs)
		for _, to := range succs {
			if _, visited := index[to]; !visited {
				strongconnect(to)
				if low[to] < low[v] {
					low[v] = low[to]
				}
			} else if onStack[to] && index[to] < low[v] {
				low[v] = index[to]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				n := len(stack) - 1
				u := stack[n]
				stack = stack[:n]
				onStack[u] = false
				scc = append(scc, u)
				if u == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, c := range classes {
		if _, visited := index[c]; !visited {
			strongconnect(c)
		}
	}

	for _, scc := range sccs {
		if len(scc) == 1 {
			if _, hasSelf := w.edges[scc[0]][scc[0]]; !hasSelf {
				continue
			}
		}
		sort.Strings(scc)
		// Anchor: the earliest edge position inside the component.
		pos := token.NoPos
		inSCC := map[string]bool{}
		for _, c := range scc {
			inSCC[c] = true
		}
		for _, from := range scc {
			for to, p := range w.edges[from] {
				if inSCC[to] && (pos == token.NoPos || p < pos) {
					pos = p
				}
			}
		}
		cycle := strings.Join(append(append([]string{}, scc...), scc[0]), " -> ")
		w.reportf(pos, "lock-order cycle (deadlock candidate): %s", cycle)
	}
}
