package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package of the module.
type Package struct {
	ImportPath string
	RelPath    string // path relative to the module root ("" for the root package)
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors collects non-fatal type-checking problems. Analysis
	// proceeds with partial type information.
	TypeErrors []error
}

// Loader parses and type-checks every package of a module without any
// go/packages dependency: module-local imports are resolved recursively by
// directory, standard-library imports through the go/types source importer
// (which reads GOROOT/src, so it works offline).
type Loader struct {
	Root       string // module root directory (contains go.mod)
	ModulePath string
	Fset       *token.FileSet

	std  types.ImporterFrom
	pkgs map[string]*Package // by import path
	busy map[string]bool     // cycle guard
}

// NewLoader prepares a loader for the module rooted at dir (the directory
// containing go.mod).
func NewLoader(root string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: reading go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not support ImportFrom")
	}
	return &Loader{
		Root:       root,
		ModulePath: modPath,
		Fset:       fset,
		std:        std,
		pkgs:       make(map[string]*Package),
		busy:       make(map[string]bool),
	}, nil
}

// LoadModule discovers and loads every package under the module root,
// skipping testdata and hidden directories. Packages are returned in
// deterministic (import path) order.
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.Root, dir)
		if err != nil {
			return nil, err
		}
		importPath := l.ModulePath
		if rel != "." {
			importPath = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(importPath)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// load parses and type-checks the package at importPath (module-local),
// memoized.
func (l *Loader) load(importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.busy[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.busy[importPath] = true
	defer delete(l.busy, importPath)

	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.ModulePath), "/")
	dir := filepath.Join(l.Root, filepath.FromSlash(rel))
	pkg, err := l.loadDir(dir, importPath, rel)
	if err != nil {
		return nil, err
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// loadDir parses and type-checks a single directory as one package.
func (l *Loader) loadDir(dir, importPath, relPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	pkg := &Package{
		ImportPath: importPath,
		RelPath:    relPath,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: &moduleImporter{l},
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// The returned error duplicates the first entry of TypeErrors; analysis
	// is best-effort over whatever type information survived.
	//
	//senss-lint:ignore droppederr the Error hook above already captured every type error; Check's return duplicates the first one
	tpkg, _ := conf.Check(importPath, l.Fset, files, info)
	pkg.Types = tpkg
	pkg.Info = info
	return pkg, nil
}

// LoadDir loads a standalone directory (the fixture harness) whose imports
// are standard-library only.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.loadDir(abs, filepath.Base(abs), filepath.Base(abs))
}

// moduleImporter resolves module-local imports through the loader and
// everything else through the stdlib source importer.
type moduleImporter struct{ l *Loader }

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == m.l.ModulePath || strings.HasPrefix(path, m.l.ModulePath+"/") {
		pkg, err := m.l.load(path)
		if err != nil {
			return nil, err
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("lint: %s failed to type-check", path)
		}
		return pkg.Types, nil
	}
	return m.l.std.ImportFrom(path, dir, mode)
}
