package coherence

import (
	"errors"
	"testing"

	"senss/internal/cache"
)

// sentinels is every invariant-violation class; tests assert that a
// fabricated violation triggers exactly one of them.
var sentinels = []error{
	ErrExclusivity, ErrOwnedDirty, ErrMultipleOwners,
	ErrDivergentCopies, ErrStaleMemory, ErrInclusion,
}

// fabricate plants a line directly in node n's L2 — bypassing the
// protocol — with the given state, every data byte set to fill.
func fabricate(t *testing.T, n *Node, addr uint64, st cache.State, fill byte) {
	t.Helper()
	l, v := n.L2.Insert(addr, st)
	if v != nil {
		t.Fatalf("unexpected eviction fabricating %#x", addr)
	}
	for i := range l.Data {
		l.Data[i] = fill
	}
}

// checkViolation runs CheckInvariants and asserts the error wraps want and
// no other sentinel, so every violation class stays distinguishable.
func checkViolation(t *testing.T, s *system, want error) {
	t.Helper()
	reader := func(addr uint64, dst []byte) { s.store.ReadLine(addr, dst) }
	err := CheckInvariants(s.nodes, reader)
	if err == nil {
		t.Fatalf("violation not detected, want %v", want)
	}
	if !errors.Is(err, want) {
		t.Fatalf("got %v, want %v", err, want)
	}
	for _, other := range sentinels {
		if other != want && errors.Is(err, other) {
			t.Errorf("error %v also matches %v; classes must stay distinct", err, other)
		}
	}
}

func TestInvariantCleanStatePasses(t *testing.T) {
	s := newSystem(t, 2, 1024)
	// Two Shared copies agreeing with (zeroed) memory: legal.
	fabricate(t, s.nodes[0], 0x1000, cache.Shared, 0)
	fabricate(t, s.nodes[1], 0x1000, cache.Shared, 0)
	reader := func(addr uint64, dst []byte) { s.store.ReadLine(addr, dst) }
	if err := CheckInvariants(s.nodes, reader); err != nil {
		t.Fatalf("legal state rejected: %v", err)
	}
}

func TestInvariantExclusivityTwoDirty(t *testing.T) {
	s := newSystem(t, 2, 1024)
	fabricate(t, s.nodes[0], 0x1000, cache.Modified, 1)
	fabricate(t, s.nodes[1], 0x1000, cache.Modified, 1)
	checkViolation(t, s, ErrExclusivity)
}

func TestInvariantExclusivityWithSharer(t *testing.T) {
	s := newSystem(t, 2, 1024)
	// One Exclusive holder is fine alone, but not next to a Shared copy.
	fabricate(t, s.nodes[0], 0x1000, cache.Exclusive, 1)
	fabricate(t, s.nodes[1], 0x1000, cache.Shared, 1)
	checkViolation(t, s, ErrExclusivity)
}

func TestInvariantOwnedDirtyCoHolder(t *testing.T) {
	s := newSystem(t, 2, 1024)
	fabricate(t, s.nodes[0], 0x1000, cache.Owned, 1)
	fabricate(t, s.nodes[1], 0x1000, cache.Modified, 1)
	checkViolation(t, s, ErrOwnedDirty)
}

func TestInvariantMultipleOwners(t *testing.T) {
	s := newSystem(t, 2, 1024)
	fabricate(t, s.nodes[0], 0x1000, cache.Owned, 1)
	fabricate(t, s.nodes[1], 0x1000, cache.Owned, 1)
	checkViolation(t, s, ErrMultipleOwners)
}

func TestInvariantDivergentCopies(t *testing.T) {
	s := newSystem(t, 2, 1024)
	// Owner and sharer disagree on the bytes.
	fabricate(t, s.nodes[0], 0x1000, cache.Owned, 1)
	fabricate(t, s.nodes[1], 0x1000, cache.Shared, 2)
	checkViolation(t, s, ErrDivergentCopies)
}

func TestInvariantStaleMemory(t *testing.T) {
	s := newSystem(t, 2, 1024)
	// A lone clean copy whose bytes differ from (zeroed) memory: somebody
	// lost a writeback.
	fabricate(t, s.nodes[0], 0x1000, cache.Shared, 5)
	checkViolation(t, s, ErrStaleMemory)
}

func TestInvariantInclusion(t *testing.T) {
	s := newSystem(t, 1, 1024)
	// An L1D line with no backing L2 line.
	if l, v := s.nodes[0].L1D.Insert(0x1000, cache.Shared); l == nil || v != nil {
		t.Fatal("could not fabricate L1 line")
	}
	checkViolation(t, s, ErrInclusion)
}

// TestInvariantFirstViolationDeterministic pins the ascending-address visit
// order: with violations on two lines, the lower address is always the one
// reported (DESIGN.md §6, reproducible output).
func TestInvariantFirstViolationDeterministic(t *testing.T) {
	for i := 0; i < 8; i++ {
		s := newSystem(t, 2, 1024)
		fabricate(t, s.nodes[0], 0x2000, cache.Owned, 1)
		fabricate(t, s.nodes[1], 0x2000, cache.Owned, 1)
		fabricate(t, s.nodes[0], 0x1000, cache.Modified, 1)
		fabricate(t, s.nodes[1], 0x1000, cache.Modified, 1)
		checkViolation(t, s, ErrExclusivity) // 0x1000's class, never 0x2000's
	}
}
