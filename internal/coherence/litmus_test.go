package coherence

import (
	"fmt"
	"testing"

	"senss/internal/sim"
)

// Memory-consistency litmus tests. The simulated SMP implements sequential
// consistency (atomic bus, in-order processors, state committed at the
// coherence point), so the classic forbidden outcomes must never appear.
// Each test sweeps relative thread timings to explore many interleavings.

const (
	litX = uint64(0x4000)
	litY = uint64(0x4040) // separate lines
)

// sweepOffsets runs body under a grid of per-thread start offsets.
func sweepOffsets(t *testing.T, body func(t *testing.T, d0, d1 uint64)) {
	t.Helper()
	offsets := []uint64{0, 1, 2, 5, 13, 40, 111, 130, 200}
	for _, d0 := range offsets {
		for _, d1 := range offsets {
			body(t, d0, d1)
		}
	}
}

// TestLitmusMessagePassing: MP. T0: x=1; y=1. T1: r1=y; r2=x.
// SC forbids r1=1 ∧ r2=0.
func TestLitmusMessagePassing(t *testing.T) {
	sweepOffsets(t, func(t *testing.T, d0, d1 uint64) {
		s := newSystem(t, 2, 4<<10)
		var r1, r2 uint64
		s.engine.Spawn("w", func(p *sim.Proc) {
			p.Sleep(d0)
			s.nodes[0].Store(p, litX, 1)
			s.nodes[0].Store(p, litY, 1)
		})
		s.engine.Spawn("r", func(p *sim.Proc) {
			p.Sleep(d1)
			r1 = s.nodes[1].Load(p, litY)
			r2 = s.nodes[1].Load(p, litX)
		})
		s.run(t)
		if r1 == 1 && r2 == 0 {
			t.Fatalf("MP violation at offsets (%d,%d): saw y=1 but x=0", d0, d1)
		}
	})
}

// TestLitmusStoreBuffering: SB. T0: x=1; r1=y. T1: y=1; r2=x.
// SC forbids r1=0 ∧ r2=0.
func TestLitmusStoreBuffering(t *testing.T) {
	sweepOffsets(t, func(t *testing.T, d0, d1 uint64) {
		s := newSystem(t, 2, 4<<10)
		var r1, r2 uint64
		s.engine.Spawn("t0", func(p *sim.Proc) {
			p.Sleep(d0)
			s.nodes[0].Store(p, litX, 1)
			r1 = s.nodes[0].Load(p, litY)
		})
		s.engine.Spawn("t1", func(p *sim.Proc) {
			p.Sleep(d1)
			s.nodes[1].Store(p, litY, 1)
			r2 = s.nodes[1].Load(p, litX)
		})
		s.run(t)
		if r1 == 0 && r2 == 0 {
			t.Fatalf("SB violation at offsets (%d,%d): both loads saw 0", d0, d1)
		}
	})
}

// TestLitmusLoadBuffering: LB. T0: r1=x; y=1. T1: r2=y; x=1.
// SC forbids r1=1 ∧ r2=1.
func TestLitmusLoadBuffering(t *testing.T) {
	sweepOffsets(t, func(t *testing.T, d0, d1 uint64) {
		s := newSystem(t, 2, 4<<10)
		var r1, r2 uint64
		s.engine.Spawn("t0", func(p *sim.Proc) {
			p.Sleep(d0)
			r1 = s.nodes[0].Load(p, litX)
			s.nodes[0].Store(p, litY, 1)
		})
		s.engine.Spawn("t1", func(p *sim.Proc) {
			p.Sleep(d1)
			r2 = s.nodes[1].Load(p, litY)
			s.nodes[1].Store(p, litX, 1)
		})
		s.run(t)
		if r1 == 1 && r2 == 1 {
			t.Fatalf("LB violation at offsets (%d,%d): both loads saw the future", d0, d1)
		}
	})
}

// TestLitmusCoherenceRR: CoRR. T0: x=1; x=2. T1: r1=x; r2=x.
// Coherence forbids r1=2 ∧ r2=1 (no going back in time on one location).
func TestLitmusCoherenceRR(t *testing.T) {
	sweepOffsets(t, func(t *testing.T, d0, d1 uint64) {
		s := newSystem(t, 2, 4<<10)
		var r1, r2 uint64
		s.engine.Spawn("w", func(p *sim.Proc) {
			p.Sleep(d0)
			s.nodes[0].Store(p, litX, 1)
			s.nodes[0].Store(p, litX, 2)
		})
		s.engine.Spawn("r", func(p *sim.Proc) {
			p.Sleep(d1)
			r1 = s.nodes[1].Load(p, litX)
			r2 = s.nodes[1].Load(p, litX)
		})
		s.run(t)
		if r1 == 2 && r2 == 1 {
			t.Fatalf("CoRR violation at offsets (%d,%d): value went backwards", d0, d1)
		}
	})
}

// TestLitmusIRIW: independent reads of independent writes. T0: x=1.
// T1: y=1. T2: r1=x; r2=y. T3: r3=y; r4=x.
// SC forbids r1=1,r2=0,r3=1,r4=0 (the two readers disagreeing on order).
func TestLitmusIRIW(t *testing.T) {
	offsets := []uint64{0, 7, 60, 130}
	for _, d2 := range offsets {
		for _, d3 := range offsets {
			s := newSystem(t, 4, 4<<10)
			var r1, r2, r3, r4 uint64
			s.engine.Spawn("w0", func(p *sim.Proc) { s.nodes[0].Store(p, litX, 1) })
			s.engine.Spawn("w1", func(p *sim.Proc) { s.nodes[1].Store(p, litY, 1) })
			s.engine.Spawn("r0", func(p *sim.Proc) {
				p.Sleep(d2)
				r1 = s.nodes[2].Load(p, litX)
				r2 = s.nodes[2].Load(p, litY)
			})
			s.engine.Spawn("r1", func(p *sim.Proc) {
				p.Sleep(d3)
				r3 = s.nodes[3].Load(p, litY)
				r4 = s.nodes[3].Load(p, litX)
			})
			s.run(t)
			if r1 == 1 && r2 == 0 && r3 == 1 && r4 == 0 {
				t.Fatalf("IRIW violation at offsets (%d,%d): readers disagree on write order", d2, d3)
			}
		}
	}
}

// TestLitmusAtomicity: parallel RMWs on one word never lose increments,
// across timing offsets (complements the machine-level counter test).
func TestLitmusAtomicity(t *testing.T) {
	for _, d := range []uint64{0, 3, 59, 121} {
		s := newSystem(t, 2, 4<<10)
		for i := 0; i < 2; i++ {
			i := i
			s.engine.Spawn(fmt.Sprintf("inc%d", i), func(p *sim.Proc) {
				p.Sleep(uint64(i) * d)
				for k := 0; k < 50; k++ {
					s.nodes[i].RMW(p, litX, func(v uint64) uint64 { return v + 1 })
				}
			})
		}
		s.run(t)
		v, ok := s.nodes[0].PeekWord(litX)
		if !ok {
			v, _ = s.nodes[1].PeekWord(litX)
		}
		if v != 100 {
			t.Fatalf("offset %d: counter = %d, want 100", d, v)
		}
	}
}
