package coherence

import (
	"testing"

	"senss/internal/cache"
	"senss/internal/sim"
)

// This file pins the MOESI state machine transition by transition. Each
// case prepares a two- or three-node system so node 0's line is in a known
// initial state, applies one local or remote event, and asserts the
// resulting states on every node. The table doubles as the protocol's
// documentation.

const line = uint64(0x1000)

// prep drives node states: a function run as a setup program.
type step struct {
	node int
	op   string // "load", "store"
}

// runSteps executes the steps sequentially (one proc drives all nodes, so
// ordering is exact), then returns the system for inspection.
func runSteps(t *testing.T, nodes int, steps []step) *system {
	t.Helper()
	s := newSystem(t, nodes, 4<<10)
	s.engine.Spawn("driver", func(p *sim.Proc) {
		for _, st := range steps {
			n := s.nodes[st.node]
			switch st.op {
			case "load":
				n.Load(p, line)
			case "store":
				n.Store(p, line, 1)
			}
		}
	})
	s.run(t)
	return s
}

// stateOf returns node i's state for the line (Invalid if absent).
func stateOf(s *system, i int) cache.State {
	l := s.nodes[i].L2.Peek(line)
	if l == nil {
		return cache.Invalid
	}
	return l.State
}

func TestMOESITransitionTable(t *testing.T) {
	cases := []struct {
		name  string
		steps []step
		want  []cache.State // expected per node
	}{
		// --- reaching each state ---
		{"cold load → E", []step{{0, "load"}}, []cache.State{cache.Exclusive, cache.Invalid}},
		{"cold store → M", []step{{0, "store"}}, []cache.State{cache.Modified, cache.Invalid}},
		{"two loads → S,S", []step{{0, "load"}, {1, "load"}},
			[]cache.State{cache.Shared, cache.Shared}},
		{"store then remote load → O,S", []step{{0, "store"}, {1, "load"}},
			[]cache.State{cache.Owned, cache.Shared}},

		// --- E transitions ---
		{"E + local store → M", []step{{0, "load"}, {0, "store"}},
			[]cache.State{cache.Modified, cache.Invalid}},
		{"E + remote load → S,S", []step{{0, "load"}, {1, "load"}},
			[]cache.State{cache.Shared, cache.Shared}},
		{"E + remote store → I,M", []step{{0, "load"}, {1, "store"}},
			[]cache.State{cache.Invalid, cache.Modified}},

		// --- M transitions ---
		{"M + local load stays M", []step{{0, "store"}, {0, "load"}},
			[]cache.State{cache.Modified, cache.Invalid}},
		{"M + remote store → I,M", []step{{0, "store"}, {1, "store"}},
			[]cache.State{cache.Invalid, cache.Modified}},

		// --- S transitions ---
		{"S + local store → M,I (upgrade)", []step{{0, "load"}, {1, "load"}, {0, "store"}},
			[]cache.State{cache.Modified, cache.Invalid}},
		{"S + remote store → I,M", []step{{0, "load"}, {1, "load"}, {1, "store"}},
			[]cache.State{cache.Invalid, cache.Modified}},

		// --- O transitions ---
		{"O + local store → M,I (upgrade)", []step{{0, "store"}, {1, "load"}, {0, "store"}},
			[]cache.State{cache.Modified, cache.Invalid}},
		{"O + remote store → I,M", []step{{0, "store"}, {1, "load"}, {1, "store"}},
			[]cache.State{cache.Invalid, cache.Modified}},
		{"O + sharer store → I,M (owner data lives on)",
			[]step{{0, "store"}, {1, "load"}, {1, "store"}},
			[]cache.State{cache.Invalid, cache.Modified}},
		{"O supplies further readers", []step{{0, "store"}, {1, "load"}, {2, "load"}},
			[]cache.State{cache.Owned, cache.Shared, cache.Shared}},
		{"O + local load stays O", []step{{0, "store"}, {1, "load"}, {0, "load"}},
			[]cache.State{cache.Owned, cache.Shared}},
	}

	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			s := runSteps(t, len(c.want), c.steps)
			for i, want := range c.want {
				if got := stateOf(s, i); got != want {
					t.Errorf("node %d state %v, want %v", i, got, want)
				}
			}
			s.check(t)
		})
	}
}

// TestMOESISupplierPreference: when an O copy exists it supplies readers
// (cache-to-cache), and memory never serves a stale line.
func TestMOESISupplierPreference(t *testing.T) {
	s := newSystem(t, 3, 4<<10)
	s.engine.Spawn("driver", func(p *sim.Proc) {
		s.nodes[0].Store(p, line, 42) // M, memory stale
		s.nodes[1].Load(p, line)      // O supplies; 0→O, 1→S
		if v := s.nodes[2].Load(p, line); v != 42 {
			t.Errorf("third reader got %d, want 42", v)
		}
	})
	s.run(t)
	if s.bus.Stats.C2CCount != 2 {
		t.Errorf("expected both fills supplied cache-to-cache, got %d", s.bus.Stats.C2CCount)
	}
	s.check(t)
}

// TestMOESIDirtyEvictionFromOwned: evicting an O line writes memory back.
func TestMOESIDirtyEvictionFromOwned(t *testing.T) {
	s := newSystem(t, 2, 512) // 2 sets: conflict-evict easily
	s.engine.Spawn("driver", func(p *sim.Proc) {
		s.nodes[0].Store(p, line, 7) // M
		s.nodes[1].Load(p, line)     // node0 → O
		// Conflict-evict node0's O line: same set = stride 128 with 2 sets.
		for i := uint64(1); i <= 4; i++ {
			s.nodes[0].Load(p, line+i*128)
		}
	})
	s.run(t)
	if got := s.store.ReadWord(line); got != 7 {
		t.Errorf("memory = %d after O eviction, want 7", got)
	}
	s.check(t)
}
