package coherence

import (
	"bytes"
	"fmt"

	"senss/internal/cache"
)

// MemReader reads the current (decrypted) contents of the memory line at
// addr into dst, bypassing timing. The machine supplies a reader that
// applies the memsec pad when memory encryption is on.
type MemReader func(addr uint64, dst []byte)

// CheckInvariants verifies the MOESI invariants across every line cached by
// any node:
//
//   - at most one node holds a line in M or E, and then nobody else holds
//     any valid copy;
//   - at most one node holds a line in O, and co-holders are all S;
//   - every valid copy of a line has identical data;
//   - when no dirty (M/O) copy exists, cached data equals memory.
//
// It is called from tests and (optionally) periodically by the machine.
func CheckInvariants(nodes []*Node, readMem MemReader) error {
	type holder struct {
		node  *Node
		state cache.State
		data  []byte
	}
	byLine := make(map[uint64][]holder)
	for _, n := range nodes {
		n.L2.ForEach(func(addr uint64, l *cache.Line) {
			byLine[addr] = append(byLine[addr], holder{n, l.State, l.Data})
		})
	}
	for addr, hs := range byLine {
		var m, e, o, s int
		for _, h := range hs {
			switch h.state {
			case cache.Modified:
				m++
			case cache.Exclusive:
				e++
			case cache.Owned:
				o++
			case cache.Shared:
				s++
			}
		}
		if m+e > 1 || ((m+e == 1) && len(hs) > 1) {
			return fmt.Errorf("line %#x: exclusive-state violation (M=%d E=%d O=%d S=%d)", addr, m, e, o, s)
		}
		if o > 1 {
			return fmt.Errorf("line %#x: %d Owned copies", addr, o)
		}
		for i := 1; i < len(hs); i++ {
			if !bytes.Equal(hs[i].data, hs[0].data) {
				return fmt.Errorf("line %#x: data mismatch between node %d (%s) and node %d (%s)",
					addr, hs[0].node.ID, hs[0].state, hs[i].node.ID, hs[i].state)
			}
		}
		if m == 0 && o == 0 && readMem != nil {
			memData := make([]byte, len(hs[0].data))
			readMem(addr, memData)
			if !bytes.Equal(memData, hs[0].data) {
				return fmt.Errorf("line %#x: clean copies differ from memory", addr)
			}
		}
		// Inclusion: every L1 line must be backed by a valid L2 line.
	}
	for _, n := range nodes {
		if err := checkInclusion(n); err != nil {
			return err
		}
	}
	return nil
}

func checkInclusion(n *Node) error {
	var err error
	check := func(l1 *cache.Cache, name string) {
		l1.ForEach(func(addr uint64, _ *cache.Line) {
			if err != nil {
				return
			}
			if n.L2.Peek(addr) == nil {
				err = fmt.Errorf("node %d: %s holds %#x not present in L2", n.ID, name, addr)
			}
		})
	}
	check(n.L1I, "L1I")
	check(n.L1D, "L1D")
	return err
}
