package coherence

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"senss/internal/cache"
)

// Each MOESI violation class has a distinct sentinel, so tests and callers
// can assert the exact failure with errors.Is.
var (
	// ErrExclusivity: a line is held M or E while another valid copy
	// exists, or by two dirty-exclusive holders at once.
	ErrExclusivity = errors.New("coherence: M/E exclusivity violation")
	// ErrOwnedDirty: a line is Owned while another node holds it dirty
	// (M/E) — co-holders of an Owned line must all be Shared.
	ErrOwnedDirty = errors.New("coherence: Owned line with dirty co-holder")
	// ErrMultipleOwners: more than one node holds the same line Owned.
	ErrMultipleOwners = errors.New("coherence: multiple Owned copies")
	// ErrDivergentCopies: two valid cached copies of a line differ.
	ErrDivergentCopies = errors.New("coherence: cached copies diverge")
	// ErrStaleMemory: no dirty copy exists, yet cached data differs from
	// memory.
	ErrStaleMemory = errors.New("coherence: clean copies differ from memory")
	// ErrInclusion: an L1 holds a line its L2 does not back.
	ErrInclusion = errors.New("coherence: L1 line not present in L2")
)

// MemReader reads the current (decrypted) contents of the memory line at
// addr into dst, bypassing timing. The machine supplies a reader that
// applies the memsec pad when memory encryption is on.
type MemReader func(addr uint64, dst []byte)

// CheckInvariants verifies the MOESI invariants across every line cached by
// any node:
//
//   - at most one node holds a line in M or E, and then nobody else holds
//     any valid copy;
//   - at most one node holds a line in O, and co-holders are all S;
//   - every valid copy of a line has identical data;
//   - when no dirty (M/O) copy exists, cached data equals memory.
//
// It is called from tests and (optionally) periodically by the machine.
// Lines are visited in ascending address order, so for a given state the
// same violation is reported first on every run (DESIGN.md §6 requires
// reproducible output). The returned error wraps the sentinel of the
// violated class.
func CheckInvariants(nodes []*Node, readMem MemReader) error {
	type holder struct {
		node  *Node
		state cache.State
		data  []byte
	}
	byLine := make(map[uint64][]holder)
	for _, n := range nodes {
		n.L2.ForEach(func(addr uint64, l *cache.Line) {
			byLine[addr] = append(byLine[addr], holder{n, l.State, l.Data})
		})
	}
	addrs := make([]uint64, 0, len(byLine))
	for addr := range byLine {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, addr := range addrs {
		hs := byLine[addr]
		var m, e, o, s int
		for _, h := range hs {
			switch h.state {
			case cache.Modified:
				m++
			case cache.Exclusive:
				e++
			case cache.Owned:
				o++
			case cache.Shared:
				s++
			}
		}
		if o > 0 && m+e > 0 {
			return fmt.Errorf("%w: line %#x (M=%d E=%d O=%d S=%d)", ErrOwnedDirty, addr, m, e, o, s)
		}
		if m+e > 1 || ((m+e == 1) && len(hs) > 1) {
			return fmt.Errorf("%w: line %#x (M=%d E=%d O=%d S=%d)", ErrExclusivity, addr, m, e, o, s)
		}
		if o > 1 {
			return fmt.Errorf("%w: line %#x has %d Owned copies", ErrMultipleOwners, addr, o)
		}
		for i := 1; i < len(hs); i++ {
			if !bytes.Equal(hs[i].data, hs[0].data) {
				return fmt.Errorf("%w: line %#x between node %d (%s) and node %d (%s)",
					ErrDivergentCopies, addr, hs[0].node.ID, hs[0].state, hs[i].node.ID, hs[i].state)
			}
		}
		if m == 0 && o == 0 && readMem != nil {
			memData := make([]byte, len(hs[0].data))
			readMem(addr, memData)
			if !bytes.Equal(memData, hs[0].data) {
				return fmt.Errorf("%w: line %#x", ErrStaleMemory, addr)
			}
		}
	}
	// Inclusion: every L1 line must be backed by a valid L2 line.
	for _, n := range nodes {
		if err := checkInclusion(n); err != nil {
			return err
		}
	}
	return nil
}

func checkInclusion(n *Node) error {
	var err error
	check := func(l1 *cache.Cache, name string) {
		l1.ForEach(func(addr uint64, _ *cache.Line) {
			if err != nil {
				return
			}
			if n.L2.Peek(addr) == nil {
				err = fmt.Errorf("%w: node %d: %s holds %#x", ErrInclusion, n.ID, name, addr)
			}
		})
	}
	check(n.L1I, "L1I")
	check(n.L1D, "L1D")
	return err
}
