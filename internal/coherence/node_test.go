package coherence

import (
	"testing"

	"senss/internal/bus"
	"senss/internal/cache"
	"senss/internal/mem"
	"senss/internal/rng"
	"senss/internal/sim"
)

func testParams(l2Size int) Params {
	return Params{
		L1Size: 256, L1Ways: 2, L1Line: 32,
		L2Size: l2Size, L2Ways: 4, L2Line: 64,
		L1HitLat: 2, L2HitLat: 10, StoreLat: 2, RMWLat: 4,
	}
}

func testTiming() bus.Timing {
	return bus.Timing{BusCycle: 10, C2CLat: 120, MemLat: 180, BytesPerBusCycle: 32, LineBytes: 64}
}

type system struct {
	engine *sim.Engine
	store  *mem.Store
	bus    *bus.Bus
	nodes  []*Node
}

func newSystem(t *testing.T, procs, l2Size int) *system {
	t.Helper()
	s := &system{engine: sim.NewEngine(), store: mem.New()}
	s.bus = bus.New(s.engine, testTiming(), &bus.SimpleMemory{Backing: s.store})
	for i := 0; i < procs; i++ {
		s.nodes = append(s.nodes, NewNode(i, testParams(l2Size), s.bus))
	}
	s.engine.SetLimit(200_000_000)
	return s
}

func (s *system) run(t *testing.T) {
	t.Helper()
	if err := s.engine.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
}

func (s *system) check(t *testing.T) {
	t.Helper()
	reader := func(addr uint64, dst []byte) { s.store.ReadLine(addr, dst) }
	if err := CheckInvariants(s.nodes, reader); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestLoadReturnsMemoryValue(t *testing.T) {
	s := newSystem(t, 1, 1024)
	s.store.WriteWord(0x100, 0xdeadbeef)
	var got uint64
	s.engine.Spawn("p0", func(p *sim.Proc) {
		got = s.nodes[0].Load(p, 0x100)
	})
	s.run(t)
	if got != 0xdeadbeef {
		t.Errorf("Load = %#x", got)
	}
	s.check(t)
}

func TestStoreLoadRoundTrip(t *testing.T) {
	s := newSystem(t, 1, 1024)
	s.engine.Spawn("p0", func(p *sim.Proc) {
		n := s.nodes[0]
		n.Store(p, 0x200, 42)
		n.Store(p, 0x208, 43)
		if v := n.Load(p, 0x200); v != 42 {
			t.Errorf("load after store = %d", v)
		}
		if v := n.Load(p, 0x208); v != 43 {
			t.Errorf("second word = %d", v)
		}
	})
	s.run(t)
	s.check(t)
}

func TestProducerConsumerCacheToCache(t *testing.T) {
	s := newSystem(t, 2, 1024)
	var got uint64
	s.engine.Spawn("producer", func(p *sim.Proc) {
		s.nodes[0].Store(p, 0x300, 77)
	})
	s.engine.Spawn("consumer", func(p *sim.Proc) {
		p.Sleep(2000) // let the producer finish
		got = s.nodes[1].Load(p, 0x300)
	})
	s.run(t)
	if got != 77 {
		t.Errorf("consumer read %d, want 77", got)
	}
	if s.bus.Stats.C2CCount == 0 {
		t.Error("expected a cache-to-cache supply from the M holder")
	}
	// Producer should now hold the line Owned (dirty shared), consumer S.
	if l := s.nodes[0].L2.Peek(0x300); l == nil || l.State != cache.Owned {
		t.Errorf("producer line state = %v, want O", l)
	}
	if l := s.nodes[1].L2.Peek(0x300); l == nil || l.State != cache.Shared {
		t.Errorf("consumer line state = %v, want S", l)
	}
	s.check(t)
}

func TestWriteInvalidatesOtherCopies(t *testing.T) {
	s := newSystem(t, 2, 1024)
	s.engine.Spawn("a", func(p *sim.Proc) {
		s.nodes[0].Store(p, 0x400, 1)
		p.Sleep(5000)
		if v := s.nodes[0].Load(p, 0x400); v != 2 {
			t.Errorf("a reloaded %d, want 2", v)
		}
	})
	s.engine.Spawn("b", func(p *sim.Proc) {
		p.Sleep(1000)
		s.nodes[1].Store(p, 0x400, 2)
	})
	s.run(t)
	s.check(t)
}

func TestExclusiveStateOnSoleReader(t *testing.T) {
	s := newSystem(t, 2, 1024)
	s.engine.Spawn("a", func(p *sim.Proc) {
		s.nodes[0].Load(p, 0x500)
		if l := s.nodes[0].L2.Peek(0x500); l == nil || l.State != cache.Exclusive {
			t.Errorf("sole reader state = %v, want E", l)
		}
	})
	s.run(t)

	// A second reader demotes E to S on both sides.
	s2 := newSystem(t, 2, 1024)
	s2.engine.Spawn("a", func(p *sim.Proc) { s2.nodes[0].Load(p, 0x500) })
	s2.engine.Spawn("b", func(p *sim.Proc) {
		p.Sleep(2000)
		s2.nodes[1].Load(p, 0x500)
	})
	s2.run(t)
	for i, n := range s2.nodes {
		if l := n.L2.Peek(0x500); l == nil || l.State != cache.Shared {
			t.Errorf("node %d state = %v, want S", i, l)
		}
	}
	s2.check(t)
}

func TestSilentStoreUpgradeFromShared(t *testing.T) {
	s := newSystem(t, 2, 1024)
	s.engine.Spawn("a", func(p *sim.Proc) {
		s.nodes[0].Load(p, 0x600) // S after b also reads
		p.Sleep(4000)
		s.nodes[0].Store(p, 0x600, 9) // Upgr path
	})
	s.engine.Spawn("b", func(p *sim.Proc) {
		p.Sleep(2000)
		s.nodes[1].Load(p, 0x600)
	})
	s.run(t)
	if s.bus.Stats.Count[bus.Upgr] == 0 {
		t.Error("expected a BusUpgr transaction")
	}
	if l := s.nodes[1].L2.Peek(0x600); l != nil {
		t.Errorf("b still holds invalidated line in %v", l.State)
	}
	s.check(t)
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	s := newSystem(t, 1, 512) // 512B L2, 4 ways, 64B lines: 8 lines, 2 sets
	const stride = 64 * 2     // same set every time
	s.engine.Spawn("a", func(p *sim.Proc) {
		n := s.nodes[0]
		for i := uint64(0); i < 8; i++ { // 8 lines into a 4-way set: 4 evictions
			n.Store(p, 0x1000+i*stride, 100+i)
		}
	})
	s.run(t)
	if s.bus.Stats.Count[bus.WB] == 0 {
		t.Fatal("expected writebacks")
	}
	for i := uint64(0); i < 8; i++ {
		addr := 0x1000 + i*stride
		want := 100 + i
		if l := s.nodes[0].L2.Peek(addr); l != nil {
			if v, _ := s.nodes[0].PeekWord(addr); v != want {
				t.Errorf("cached %#x = %d, want %d", addr, v, want)
			}
		} else if v := s.store.ReadWord(addr); v != want {
			t.Errorf("memory %#x = %d, want %d", addr, v, want)
		}
	}
	s.check(t)
}

func TestRMWAtomicCounter(t *testing.T) {
	const procs, per = 4, 200
	s := newSystem(t, procs, 1024)
	const counter = 0x2000
	for i := 0; i < procs; i++ {
		n := s.nodes[i]
		s.engine.Spawn("inc", func(p *sim.Proc) {
			for k := 0; k < per; k++ {
				n.RMW(p, counter, func(v uint64) uint64 { return v + 1 })
			}
		})
	}
	s.run(t)
	var final uint64
	found := false
	for _, n := range s.nodes {
		if v, ok := n.PeekWord(counter); ok {
			final, found = v, true
			break
		}
	}
	if !found {
		final = s.store.ReadWord(counter)
	}
	if final != procs*per {
		t.Errorf("counter = %d, want %d", final, procs*per)
	}
	s.check(t)
}

func TestFalseSharingBothWordsSurvive(t *testing.T) {
	s := newSystem(t, 2, 1024)
	const line = 0x3000
	s.engine.Spawn("a", func(p *sim.Proc) {
		for i := uint64(0); i < 50; i++ {
			s.nodes[0].Store(p, line, i)
		}
	})
	s.engine.Spawn("b", func(p *sim.Proc) {
		for i := uint64(0); i < 50; i++ {
			s.nodes[1].Store(p, line+8, 1000+i)
		}
	})
	s.run(t)
	read := func(addr uint64) uint64 {
		for _, n := range s.nodes {
			if v, ok := n.PeekWord(addr); ok {
				return v
			}
		}
		return s.store.ReadWord(addr)
	}
	if v := read(line); v != 49 {
		t.Errorf("word0 = %d, want 49", v)
	}
	if v := read(line + 8); v != 1049 {
		t.Errorf("word1 = %d, want 1049", v)
	}
	s.check(t)
}

func TestIFetchWarmsICache(t *testing.T) {
	s := newSystem(t, 1, 1024)
	s.engine.Spawn("a", func(p *sim.Proc) {
		n := s.nodes[0]
		n.IFetch(p, 0x4000)
		before := n.L1I.Misses
		n.IFetch(p, 0x4000)
		if n.L1I.Misses != before {
			t.Error("second IFetch missed L1I")
		}
	})
	s.run(t)
	s.check(t)
}

// TestRandomStressInvariants drives random loads/stores/RMWs from 4 nodes
// over a small line pool (high contention) and checks the MOESI invariants
// at the end, plus determinism across two identical runs.
func TestRandomStressInvariants(t *testing.T) {
	runOnce := func() (uint64, *system) {
		s := newSystem(t, 4, 512)
		for i := 0; i < 4; i++ {
			n := s.nodes[i]
			r := rng.New(uint64(1000 + i))
			s.engine.Spawn("stress", func(p *sim.Proc) {
				for k := 0; k < 2000; k++ {
					addr := uint64(0x8000) + uint64(r.Intn(32))*8 // 4 lines, word-grain
					switch r.Intn(3) {
					case 0:
						n.Load(p, addr)
					case 1:
						n.Store(p, addr, r.Uint64())
					case 2:
						n.RMW(p, addr, func(v uint64) uint64 { return v ^ 1 })
					}
				}
			})
		}
		if err := s.engine.Run(); err != nil {
			t.Fatalf("engine: %v", err)
		}
		return s.engine.Now(), s
	}
	c1, s1 := runOnce()
	s1.check(t)
	c2, _ := runOnce()
	if c1 != c2 {
		t.Errorf("nondeterministic: %d vs %d cycles", c1, c2)
	}
	if s1.bus.Stats.C2CCount == 0 {
		t.Error("stress produced no cache-to-cache transfers")
	}
}

// TestUpgradeRaceRecovery forces the A-upgrades-while-B-steals interleaving
// through high contention and verifies the machine survives with correct
// invariants (the UpgrRaces counter is best-effort; the data race itself is
// what must stay safe).
func TestUpgradeRaceRecovery(t *testing.T) {
	s := newSystem(t, 4, 1024)
	const addr = 0x9000
	for i := 0; i < 4; i++ {
		n := s.nodes[i]
		s.engine.Spawn("racer", func(p *sim.Proc) {
			for k := 0; k < 500; k++ {
				n.Load(p, addr)             // pull the line to S
				n.Store(p, addr, uint64(k)) // upgrade (racing with 3 others)
			}
		})
	}
	s.run(t)
	s.check(t)
}
