// Package coherence implements a processor node of the snooping SMP: a
// split L1 (instruction/data, write-through) in front of a unified
// write-back L2 kept coherent with the other nodes by a MOESI
// write-invalidate protocol over the shared bus.
//
// All methods are written in blocking style and must be called from a
// sim.Proc; they charge the Figure-5 latencies by sleeping.  Snooping
// happens synchronously inside the requester's bus tenure, and every
// cache-state change commits atomically at the coherence point (an L2 hit
// before any sleep, or the bus grant via Transaction.OnData for misses), so
// in-flight requests can never install stale lines.
package coherence

import (
	"fmt"

	"senss/internal/bus"
	"senss/internal/cache"
	"senss/internal/mem"
	"senss/internal/sim"
)

// Params configures a node's cache hierarchy and hit latencies.
type Params struct {
	L1Size int
	L1Ways int
	L1Line int

	L2Size int
	L2Ways int
	L2Line int

	L1HitLat uint64 // cycles for an L1 hit (loads and instruction fetches)
	L2HitLat uint64 // additional cycles for an L2 hit
	StoreLat uint64 // cycles for a store absorbed by the write buffer
	RMWLat   uint64 // additional cycles for the atomic in an RMW
}

// MissHooks lets the protection layers (memsec pads, CHash integrity)
// interpose on the memory-side events of a node. Hooks may issue their own
// bus transactions and recursive node accesses; they run while the node
// does NOT hold the bus.
type MissHooks interface {
	// AfterMemoryFill runs after a Rd/RdX was supplied by memory (the line
	// is already inserted, but the requesting operation has not returned):
	// pad-coherence requests and integrity verification happen here.
	AfterMemoryFill(p *sim.Proc, n *Node, t *bus.Transaction)
	// AfterWriteBack runs after a dirty line's WB transaction: pad
	// invalidation broadcast and hash-tree update happen here.
	AfterWriteBack(p *sim.Proc, n *Node, addr uint64, data []byte)
}

// NodeStats counts the node's memory operations.
type NodeStats struct {
	Loads     uint64
	Stores    uint64
	RMWs      uint64
	IFetches  uint64
	UpgrRaces uint64 // planned Upgr converted to RdX after losing the line
}

// Node is one processor's cache hierarchy and coherence controller.
type Node struct {
	ID  int
	GID int // SENSS group tag placed on every bus message

	L1I *cache.Cache
	L1D *cache.Cache
	L2  *cache.Cache

	Bus    *bus.Bus
	Params Params
	Hooks  MissHooks // nil when no protection layers are configured

	Stats NodeStats

	// FaultSkipInvalidate plants the deliberate coherence bug used to
	// validate the differential oracle: this node ignores the invalidation
	// side of snooped RdX/Upgr transactions, so a stale copy survives
	// another processor's write. The timed simulator runs on happily (the
	// stale line serves hits locally); only a cross-cache reference check
	// at the writing transaction can see it. Test-only.
	FaultSkipInvalidate bool

	// fillDepth guards against pathological eviction recursion through
	// protection-layer hook accesses.
	fillDepth int

	// fillStates holds one reusable miss-transaction record per fill
	// depth — header, payload buffer, victim record, writeback header, and
	// pre-bound bus callbacks — so the steady state rides the bus with no
	// per-miss allocation at all (hotpath discipline, DESIGN.md §13).
	// Indexing by depth keeps a recursive protection-layer fill (hook
	// accesses inside postFill) from clobbering the outer fill's in-flight
	// state; one extra slot covers the hook running at fillDepth ==
	// maxFillDepth before the recursion guard fires.
	fillStates [maxFillDepth + 1]*fillState

	// l1Victim receives tag-only L1 eviction records, which the node
	// discards (inclusion handles their state via the L2).
	l1Victim cache.Victim

	// sigTxn is the reusable header for address-only protection-layer
	// transactions (Signal). Safe as a single record per node: Signal
	// never nests within itself — nothing snooping or servicing a pad
	// message issues another one on the same node.
	sigTxn bus.Transaction
}

// fillOp selects the commit action a fillState performs at the coherence
// point — the data-driven replacement for per-miss commit closures, which
// Go would heap-allocate on every miss.
type fillOp uint8

const (
	opLoad      fillOp = iota // bind the word, install the L1D subline
	opIFetch                  // install the L1I subline
	opStore                   // store val into the owned line
	opRMW                     // bind the old word, store mut(old)
	opCopyOut                 // copy the whole line into buf (LoadLine)
	opCopyIn                  // copy buf into the line at off (StoreBlock)
)

// fillState is the pooled per-depth state of one miss or upgrade: the bus
// transaction header with its callbacks bound once, the reusable line
// payload, the victim record, and the operation to commit at the
// coherence point.
type fillState struct {
	n    *Node
	t    bus.Transaction
	wb   bus.Transaction // Committed writeback header for the victim
	data []byte          // reusable fill payload

	victim    cache.Victim
	hasVictim bool // victim holds a dirty line needing a timing WB

	// The pending commit action and its operands.
	op   fillOp
	addr uint64              // word (or block) address of the operation
	val  uint64              // opStore operand
	mut  func(uint64) uint64 // opRMW mutator (caller-supplied)
	buf  []byte              // opCopyOut dst / opCopyIn src
	off  uint64              // opCopyIn line offset
	res  uint64              // opLoad / opRMW result
}

// preSnoop revalidates an Upgr after arbitration: a queued RdX may have
// stolen the Shared copy, degrading the upgrade to a full RdX fill.
//
//senss-lint:hotpath
func (fs *fillState) preSnoop(t *bus.Transaction) {
	if t.Kind != bus.Upgr {
		return
	}
	if fs.n.L2.Peek(fs.addr) == nil {
		fs.n.Stats.UpgrRaces++
		t.Kind = bus.RdX
		t.Data = fs.data
	}
}

// onData commits the cache-state change at the coherence point.
//
//senss-lint:hotpath
func (fs *fillState) onData(t *bus.Transaction) {
	if t.Kind == bus.Upgr {
		cur := fs.n.L2.Peek(fs.addr)
		if cur == nil {
			panic("coherence: line vanished between grant and commit")
		}
		cur.State = cache.Modified
		fs.commit(cur)
		return
	}
	fs.n.commitFill(fs)
}

// commit performs the pending operation against the line now owned at the
// coherence point.
//
//senss-lint:hotpath
func (fs *fillState) commit(l2 *cache.Line) {
	n := fs.n
	switch fs.op {
	case opLoad:
		fs.res = n.wordOf(l2, fs.addr)
		n.L1D.InsertVictim(fs.addr, cache.Shared, &n.l1Victim)
	case opIFetch:
		n.L1I.InsertVictim(fs.addr, cache.Shared, &n.l1Victim)
	case opStore:
		n.setWord(l2, fs.addr, fs.val)
	case opRMW:
		fs.res = n.wordOf(l2, fs.addr)
		n.setWord(l2, fs.addr, fs.mut(fs.res))
	case opCopyOut:
		copy(fs.buf, l2.Data)
	case opCopyIn:
		copy(l2.Data[fs.off:], fs.buf)
	}
}

// NewNode builds a node and attaches it to b as a snooper.
func NewNode(id int, params Params, b *bus.Bus) *Node {
	n := &Node{
		ID:     id,
		L1I:    cache.New(params.L1Size, params.L1Ways, params.L1Line, false),
		L1D:    cache.New(params.L1Size, params.L1Ways, params.L1Line, false),
		L2:     cache.New(params.L2Size, params.L2Ways, params.L2Line, true),
		Bus:    b,
		Params: params,
	}
	b.AttachSnooper(n)
	return n
}

//senss-lint:hotpath
func (n *Node) wordOf(l *cache.Line, addr uint64) uint64 {
	return mem.ReadWordFromLine(l.Data, addr%uint64(n.Params.L2Line))
}

//senss-lint:hotpath
func (n *Node) setWord(l *cache.Line, addr uint64, v uint64) {
	mem.WriteWordToLine(l.Data, addr%uint64(n.Params.L2Line), v)
}

// fillState returns the reusable miss state for the current fill depth,
// building it (payload buffer, bound callbacks) on first touch.
//
//senss-lint:hotpath
func (n *Node) fillState() *fillState {
	fs := n.fillStates[n.fillDepth]
	if fs == nil {
		//senss-lint:ignore hotpath first-touch growth: one fill state per depth, reused for the whole run
		fs = &fillState{n: n}
		//senss-lint:ignore hotpath first-touch growth: one payload per depth, reused for the whole run
		fs.data = make([]byte, n.Params.L2Line)
		// Method values bound once here; the steady state reuses them.
		//senss-lint:ignore hotpath first-touch growth: callbacks bound once per depth, reused for the whole run
		fs.t.PreSnoop = fs.preSnoop
		//senss-lint:ignore hotpath first-touch growth: callbacks bound once per depth, reused for the whole run
		fs.t.OnData = fs.onData
		n.fillStates[n.fillDepth] = fs
	}
	return fs
}

// Signal issues an address-only protection-layer transaction (PadReq,
// PadInv, PadUpd) on the node's behalf, reusing one transaction record.
//
//senss-lint:hotpath
func (n *Node) Signal(p *sim.Proc, kind bus.Kind, addr uint64) {
	n.sigTxn = bus.Transaction{Kind: kind, Addr: addr, Src: n.ID, GID: n.GID}
	n.Bus.Transact(p, &n.sigTxn)
}

// invalidateL1 drops every L1 subline of the L2 line at la (inclusion).
// The L1s are tag-only, so Drop (no payload copy) is exact.
//
//senss-lint:hotpath
func (n *Node) invalidateL1(la uint64) {
	for off := 0; off < n.Params.L2Line; off += n.Params.L1Line {
		n.L1I.Drop(la + uint64(off))
		n.L1D.Drop(la + uint64(off))
	}
}

// Load performs a data load of the aligned word at addr.
//
//senss-lint:hotpath
func (n *Node) Load(p *sim.Proc, addr uint64) uint64 {
	n.Stats.Loads++
	if n.L1D.Lookup(addr) != nil {
		l2 := n.L2.Peek(addr)
		if l2 == nil {
			panic(fmt.Sprintf("coherence: inclusion violated at %#x on node %d", addr, n.ID))
		}
		v := n.wordOf(l2, addr) // bind the value at the coherence point
		p.Sleep(n.Params.L1HitLat)
		return v
	}
	if l2 := n.L2.Lookup(addr); l2 != nil {
		v := n.wordOf(l2, addr)
		n.L1D.InsertVictim(addr, cache.Shared, &n.l1Victim)
		p.Sleep(n.Params.L1HitLat + n.Params.L2HitLat)
		return v
	}
	fs := n.fillState()
	fs.op, fs.addr = opLoad, addr
	n.fill(p, addr, bus.Rd, fs)
	p.Sleep(n.Params.L1HitLat + n.Params.L2HitLat) // probes preceding the miss
	return fs.res
}

// IFetch models an instruction fetch at addr. L1I hits are free (overlapped
// with execution); misses go through the normal hierarchy.
//
//senss-lint:hotpath
func (n *Node) IFetch(p *sim.Proc, addr uint64) {
	n.Stats.IFetches++
	if n.L1I.Lookup(addr) != nil {
		return
	}
	if l2 := n.L2.Lookup(addr); l2 != nil {
		n.L1I.InsertVictim(addr, cache.Shared, &n.l1Victim)
		p.Sleep(n.Params.L2HitLat)
		return
	}
	fs := n.fillState()
	fs.op, fs.addr = opIFetch, addr
	n.fill(p, addr, bus.Rd, fs)
	p.Sleep(n.Params.L2HitLat)
}

// Store performs a data store of the aligned word at addr.
//
//senss-lint:hotpath
func (n *Node) Store(p *sim.Proc, addr uint64, val uint64) {
	n.Stats.Stores++
	l2, owned := n.storeLookup(addr)
	if owned {
		n.setWord(l2, addr, val)
	} else {
		fs := n.fillState()
		fs.op, fs.addr, fs.val = opStore, addr, val
		n.acquireModified(p, addr, l2, fs)
	}
	p.Sleep(n.Params.StoreLat)
}

// RMW atomically applies f to the word at addr, returning the old value.
// The mutation commits at the coherence point with the line in M, so it is
// atomic with respect to every other node.
//
//senss-lint:hotpath
func (n *Node) RMW(p *sim.Proc, addr uint64, f func(uint64) uint64) uint64 {
	n.Stats.RMWs++
	l2, owned := n.storeLookup(addr)
	if owned {
		old := n.wordOf(l2, addr)
		n.setWord(l2, addr, f(old))
		p.Sleep(n.Params.StoreLat + n.Params.RMWLat)
		return old
	}
	fs := n.fillState()
	fs.op, fs.addr, fs.mut = opRMW, addr, f
	n.acquireModified(p, addr, l2, fs)
	fs.mut = nil // drop the caller's closure for the GC
	p.Sleep(n.Params.StoreLat + n.Params.RMWLat)
	return fs.res
}

// storeLookup probes the L2 for write ownership, promoting E to M in
// place (silent upgrade). It returns (line, true) when the caller may
// commit directly, (line, false) for a Shared/Owned copy that needs a
// bus upgrade, and (nil, false) on a miss.
//
//senss-lint:hotpath
func (n *Node) storeLookup(addr uint64) (*cache.Line, bool) {
	l2 := n.L2.Lookup(addr)
	if l2 == nil {
		return nil, false
	}
	switch l2.State {
	case cache.Modified:
		return l2, true
	case cache.Exclusive:
		l2.State = cache.Modified
		return l2, true
	case cache.Shared, cache.Owned:
		return l2, false
	default:
		panic("coherence: invalid state in storeLookup")
	}
}

// acquireModified obtains addr's line in Modified state the slow way —
// a full RdX fill on a miss, a BusUpgr for the Shared/Owned copy l2 —
// and commits fs's pending operation at the coherence point.
//
//senss-lint:hotpath
func (n *Node) acquireModified(p *sim.Proc, addr uint64, l2 *cache.Line, fs *fillState) {
	if l2 == nil {
		n.fill(p, addr, bus.RdX, fs)
		p.Sleep(n.Params.L1HitLat + n.Params.L2HitLat)
		return
	}
	n.upgrade(p, addr, fs)
}

// upgrade converts a Shared/Owned copy to Modified with a BusUpgr,
// degrading to a full RdX (fs.preSnoop) if the copy is lost while waiting
// for the bus.
//
//senss-lint:hotpath
func (n *Node) upgrade(p *sim.Proc, addr uint64, fs *fillState) {
	fs.t.Kind = bus.Upgr
	fs.t.Addr = n.L2.LineAddr(addr)
	fs.t.Src, fs.t.GID = n.ID, n.GID
	fs.t.Data = nil
	fs.t.Committed = false
	fs.hasVictim = false
	n.Bus.Transact(p, &fs.t)
	n.postFill(p, fs)
}

// fill acquires the line containing addr with a Rd or RdX, committing the
// insertion and fs's pending operation atomically at the bus grant. The
// payload rides in the state's reusable buffer; commitFill copies it into
// the L2 frame before the transaction returns.
//
//senss-lint:hotpath
func (n *Node) fill(p *sim.Proc, addr uint64, kind bus.Kind, fs *fillState) {
	fs.t.Kind = kind
	fs.t.Addr = n.L2.LineAddr(addr)
	fs.t.Src, fs.t.GID = n.ID, n.GID
	fs.t.Data = fs.data
	fs.t.Committed = false
	fs.hasVictim = false
	n.Bus.Transact(p, &fs.t)
	n.postFill(p, fs)
}

// maxFillDepth bounds eviction recursion through protection-layer hooks.
const maxFillDepth = 24

// commitFill inserts the fetched line (state per MOESI), commits fs's
// pending operation, and commits any dirty victim's bytes to memory. It
// runs at the coherence point (bus held).
//
//senss-lint:hotpath
func (n *Node) commitFill(fs *fillState) {
	t := &fs.t
	state := cache.Modified
	if t.Kind == bus.Rd {
		if t.Shared {
			state = cache.Shared
		} else {
			state = cache.Exclusive
		}
	}
	l2, evicted := n.L2.InsertVictim(t.Addr, state, &fs.victim)
	copy(l2.Data, t.Data)
	if evicted {
		n.invalidateL1(fs.victim.Addr)
		if fs.victim.State.Dirty() {
			n.Bus.CommitStore(n.ID, n.GID, fs.victim.Addr, fs.victim.Data)
			fs.hasVictim = true
		}
	}
	fs.commit(l2)
}

// postFill runs the protection hooks and the victim's timing writeback
// after the fill transaction completed (bus released).
//
//senss-lint:hotpath
func (n *Node) postFill(p *sim.Proc, fs *fillState) {
	if n.fillDepth >= maxFillDepth {
		panic("coherence: fill recursion too deep (protection-layer loop?)")
	}
	// Balanced explicitly at the end rather than by a deferred closure:
	// postFill has no early returns, and a per-call defer has no place on
	// the miss path.
	n.fillDepth++

	t := &fs.t
	if t.SupplierID == bus.MemorySupplier && (t.Kind == bus.Rd || t.Kind == bus.RdX) && n.Hooks != nil {
		//senss-lint:ignore hotpath hook fan-out reaches config-dependent protection rigs; the production layers are hot-annotated where it counts
		n.Hooks.AfterMemoryFill(p, n, t)
	}
	if fs.hasVictim {
		fs.wb = bus.Transaction{
			Kind: bus.WB, Addr: fs.victim.Addr, Src: n.ID, GID: n.GID,
			Data: fs.victim.Data, Committed: true,
		}
		n.Bus.Transact(p, &fs.wb)
		if n.Hooks != nil {
			//senss-lint:ignore hotpath hook fan-out reaches config-dependent protection rigs; the production layers are hot-annotated where it counts
			n.Hooks.AfterWriteBack(p, n, fs.victim.Addr, fs.victim.Data)
		}
	}
	n.fillDepth--
}

// SnoopBus implements bus.Snooper: the MOESI snoop side.
//
//senss-lint:hotpath
func (n *Node) SnoopBus(t *bus.Transaction) {
	if t.Src == n.ID {
		return
	}
	switch t.Kind {
	case bus.Rd:
		l2 := n.L2.Peek(t.Addr)
		if l2 == nil {
			return
		}
		t.Shared = true
		switch l2.State {
		case cache.Modified:
			l2.State = cache.Owned
			n.supply(t, l2)
		case cache.Owned:
			n.supply(t, l2)
		case cache.Exclusive:
			l2.State = cache.Shared
			n.supply(t, l2)
		case cache.Shared:
			// Clean shared copy: memory is current (no M/O exists or it
			// would supply) and provides the data.
		}
	case bus.RdX:
		l2 := n.L2.Peek(t.Addr)
		if l2 == nil {
			return
		}
		if l2.State != cache.Shared {
			n.supply(t, l2)
		}
		if n.FaultSkipInvalidate {
			return
		}
		// Drop, not Invalidate: the requester now owns the only live copy
		// (supplied above when we held it dirty), so the local payload is
		// dead and the defensive copy would be thrown away.
		n.L2.Drop(t.Addr)
		n.invalidateL1(t.Addr)
	case bus.Upgr:
		if n.L2.Peek(t.Addr) == nil {
			return
		}
		if n.FaultSkipInvalidate {
			return
		}
		// The upgrader holds valid data; every other copy dies. Drop
		// discards the local payload without the defensive copy.
		n.L2.Drop(t.Addr)
		n.invalidateL1(t.Addr)
	case bus.WB, bus.Auth, bus.PadInv, bus.PadReq, bus.PadUpd:
		// No cache-state effect; the SENSS and memsec layers observe these
		// through their own hooks.
	}
}

// supply copies the snooped line into the transaction as a cache-to-cache
// transfer. With MOESI at most one M/O/E holder exists, so there is never
// a second supplier.
//
//senss-lint:hotpath
func (n *Node) supply(t *bus.Transaction, l *cache.Line) {
	if t.SupplierID != bus.MemorySupplier {
		panic(fmt.Sprintf("coherence: two suppliers for %#x", t.Addr))
	}
	copy(t.Data, l.Data)
	t.SupplierID = n.ID
}

// LoadLine reads a whole-line copy through the L2 (bypassing L1 — used by
// the integrity layer for hash-tree nodes, which the paper keeps in L2).
//
//senss-lint:hotpath
func (n *Node) LoadLine(p *sim.Proc, addr uint64) []byte {
	la := n.L2.LineAddr(addr)
	//senss-lint:ignore hotpath the returned line copy crosses the API boundary; the integrity layer owns it
	out := make([]byte, n.Params.L2Line)
	if l2 := n.L2.Lookup(la); l2 != nil {
		copy(out, l2.Data)
		p.Sleep(n.Params.L2HitLat)
		return out
	}
	fs := n.fillState()
	fs.op, fs.addr, fs.buf = opCopyOut, la, out
	n.fill(p, la, bus.Rd, fs)
	fs.buf = nil // drop the caller's buffer for the GC
	p.Sleep(n.Params.L2HitLat)
	return out
}

// StoreBlock writes len(data) bytes at addr (contained in one line) under a
// single ownership acquisition — used by the integrity layer to patch a
// child's hash tag inside its parent tree node.
//
//senss-lint:hotpath
func (n *Node) StoreBlock(p *sim.Proc, addr uint64, data []byte) {
	off := addr % uint64(n.Params.L2Line)
	if int(off)+len(data) > n.Params.L2Line {
		panic("coherence: StoreBlock crosses a line boundary")
	}
	n.Stats.Stores++
	l2, owned := n.storeLookup(addr)
	if owned {
		copy(l2.Data[off:], data)
	} else {
		fs := n.fillState()
		fs.op, fs.addr, fs.off, fs.buf = opCopyIn, addr, off, data
		n.acquireModified(p, addr, l2, fs)
		fs.buf = nil // drop the caller's buffer for the GC
	}
	p.Sleep(n.Params.StoreLat)
}

// PeekWord reads the word at addr from this node's L2 without timing, for
// validation and invariant checks. ok is false when the node holds no copy.
func (n *Node) PeekWord(addr uint64) (v uint64, ok bool) {
	l2 := n.L2.Peek(addr)
	if l2 == nil {
		return 0, false
	}
	return n.wordOf(l2, addr), true
}
