// Package integrity implements the CHash-style Merkle hash tree memory
// integrity checking that SENSS integrates for cache-to-memory protection
// (paper §2.2, §6.2, after Gassend et al.).
//
// The tree covers the program's data region with 64-byte nodes holding
// four truncated SHA-256 tags of their children (4-ary).  Tree nodes live
// at reserved physical addresses and are cached through the normal L2 +
// MOESI path — exactly the paper's design, including the resulting L2
// pollution and hash-coherence bus traffic.  The root digest sits in a
// trusted on-chip register updated only when the top node is written back.
//
// A memory-supplied fill is verified bottom-up: hash the fetched line
// (160-cycle modeled latency) and compare with the tag stored in its
// parent, fetching (and recursively verifying) parents until one is found
// in the local L2, which the paper treats as trusted.  A dirty writeback
// updates the tag in its parent, dirtying the parent in turn — ancestors
// update lazily on their own evictions.
package integrity

import (
	"fmt"

	"senss/internal/bus"
	"senss/internal/coherence"
	"senss/internal/crypto/ct"
	"senss/internal/crypto/sha256"
	"senss/internal/mem"
	"senss/internal/sim"
)

// TagBytes is the truncated hash size: 64-byte nodes / 16-byte tags = 4-ary.
const TagBytes = 16

// Arity is the tree fan-out.
const Arity = mem.LineSize / TagBytes

// HashBase is where tree levels live in the simulated physical address
// space, far above any program data.
const HashBase = uint64(1) << 40

// levelStride separates tree levels in the address space.
const levelStride = uint64(1) << 34

// Params configures the layer.
type Params struct {
	HashLatency uint64 // modeled hash-unit latency per computation

	// Lazy selects the LHash-style scheme of Suh et al. that the paper
	// recommends over CHash ("gave much better performance"): fill
	// verification is taken off the critical path and performed by a
	// background engine over batched logs. We model it by checking each
	// fill functionally (same detection power, same alarm) while charging
	// no stall cycles and issuing no critical-path parent fetches;
	// parent-tag maintenance on writebacks remains eager, since our
	// simplified log has no per-line counters to replace the tree.
	Lazy bool
}

// Stats counts integrity work.
type Stats struct {
	HashOps       uint64 // hash computations charged
	Verifies      uint64 // fills checked against the tree
	Updates       uint64 // parent-tag updates on writebacks
	RaceTolerated uint64 // mismatches explained by an in-flight update
	Violations    uint64
	LazyLogged    uint64 // accesses logged in lazy mode
}

// Tag is a truncated line hash.
type Tag [TagBytes]byte

// Tree is the integrity layer shared by all nodes of a machine.
type Tree struct {
	params   Params
	engine   *sim.Engine
	dataBase uint64
	dataSize uint64   // bytes, line-aligned
	levels   int      // number of tree levels (level 0 = parents of data)
	counts   []uint64 // lines per level

	// The root register is the single trusted value the whole tree hangs
	// off; tags compared against it (or against tags it transitively
	// vouches for) are verifier secrets until the compare completes.
	//senss-lint:secret
	root    Tag
	rootSet bool

	// pending marks lines whose memory image was committed but whose
	// parent tag update is still in flight — the simulation's stand-in for
	// the snooped hash-update buffer a hardware implementation needs.
	pending map[uint64]int

	// lazy-mode read/write multiset accumulators (XOR of tag material).
	lazyAcc Tag

	// ReadCoherent, set by the machine, reads the current coherent value
	// of any line (dirty cache copies included) without timing — the view
	// the lazy background verifier uses.
	ReadCoherent func(addr uint64, dst []byte)

	Stats Stats
}

// New creates a tree covering [dataBase, dataBase+dataSize).
func New(engine *sim.Engine, dataBase, dataSize uint64, params Params) *Tree {
	if dataBase%mem.LineSize != 0 {
		panic("integrity: unaligned data base")
	}
	dataSize = (dataSize + mem.LineSize - 1) &^ uint64(mem.LineSize-1)
	if dataSize == 0 {
		dataSize = mem.LineSize
	}
	t := &Tree{
		params:   params,
		engine:   engine,
		dataBase: dataBase,
		dataSize: dataSize,
		pending:  make(map[uint64]int),
	}
	n := dataSize / mem.LineSize
	for n > 1 || t.levels == 0 {
		n = (n + Arity - 1) / Arity
		t.counts = append(t.counts, n)
		t.levels++
		if n == 1 {
			break
		}
	}
	return t
}

// Covers reports whether addr belongs to the protected data region.
//
//senss-lint:hotpath
func (t *Tree) Covers(addr uint64) bool {
	return addr >= t.dataBase && addr < t.dataBase+t.dataSize
}

// levelOf returns which tree level a hash-line address belongs to, or -1
// for data addresses.
//
//senss-lint:hotpath
func (t *Tree) levelOf(addr uint64) int {
	if addr < HashBase {
		return -1
	}
	return int((addr - HashBase) / levelStride)
}

// indexAt returns the line index of addr within its level (-1 = data).
func (t *Tree) indexAt(addr uint64, level int) uint64 {
	if level < 0 {
		return (addr - t.dataBase) / mem.LineSize
	}
	return (addr - HashBase - uint64(level)*levelStride) / mem.LineSize
}

// lineAddr returns the address of line idx at the given level.
func (t *Tree) lineAddr(level int, idx uint64) uint64 {
	if level < 0 {
		return t.dataBase + idx*mem.LineSize
	}
	return HashBase + uint64(level)*levelStride + idx*mem.LineSize
}

// parentOf returns the parent hash line address and the child's tag slot.
func (t *Tree) parentOf(addr uint64) (parent uint64, slot int, top bool) {
	level := t.levelOf(addr)
	idx := t.indexAt(addr, level)
	if level == t.levels-1 {
		return 0, 0, true // the top node's parent is the root register
	}
	return t.lineAddr(level+1, idx/Arity), int(idx % Arity), false
}

// hashLine computes the truncated tag of a 64-byte line.
func (t *Tree) hashLine(data []byte) Tag {
	t.Stats.HashOps++
	sum := sha256.Sum256(data)
	var tag Tag
	copy(tag[:], sum[:TagBytes])
	return tag
}

// Build writes the initial tree into store (plaintext phase, before memory
// encryption) and sets the root register. readLine must return the current
// plaintext of any line.
func (t *Tree) Build(store *mem.Store, readLine func(addr uint64, dst []byte)) {
	buf := make([]byte, mem.LineSize)
	// Level 0 from data, then each level from the one below.
	childCount := t.dataSize / mem.LineSize
	childAddr := func(i uint64) uint64 { return t.dataBase + i*mem.LineSize }
	for level := 0; level < t.levels; level++ {
		node := make([]byte, mem.LineSize)
		for idx := uint64(0); idx < t.counts[level]; idx++ {
			for s := 0; s < Arity; s++ {
				child := idx*Arity + uint64(s)
				var tag Tag
				if child < childCount {
					readLine(childAddr(child), buf)
					sum := sha256.Sum256(buf)
					copy(tag[:], sum[:TagBytes])
				}
				copy(node[s*TagBytes:], tag[:])
			}
			store.WriteLine(t.lineAddr(level, idx), node)
		}
		childCount = t.counts[level]
		lv := level
		childAddr = func(i uint64) uint64 { return t.lineAddr(lv, i) }
	}
	readLine(t.lineAddr(t.levels-1, 0), buf)
	t.root = t.hashLine(buf)
	t.Stats.HashOps-- // construction hashes are not charged to the run
	t.rootSet = true
}

// violation records a detection and freezes the machine.
func (t *Tree) violation(addr uint64, why string) {
	t.Stats.Violations++
	if t.engine != nil {
		t.engine.Halt(fmt.Sprintf("integrity: %s at %#x", why, addr))
	}
}

// AfterMemoryFill implements the verification half of coherence.MissHooks.
func (t *Tree) AfterMemoryFill(p *sim.Proc, n *coherence.Node, txn *bus.Transaction) {
	addr := txn.Addr
	level := t.levelOf(addr)
	if level < 0 && !t.Covers(addr) {
		return
	}
	if t.params.Lazy {
		// LHash-style: log the read and verify in the background (zero
		// critical-path cycles; the hash unit's throughput absorbs it).
		t.lazyLog(addr, txn.Data)
		t.lazyVerify(addr, txn.Data)
		return
	}
	t.verify(p, n, addr, txn.Data)
}

// lazyVerify performs the background check of a logged fill: same
// comparison as the eager path, against the coherent view of the parent,
// with no cycles charged and no cache traffic.
func (t *Tree) lazyVerify(addr uint64, data []byte) {
	if t.ReadCoherent == nil {
		return
	}
	t.Stats.Verifies++
	tag := t.hashLine(data)
	parent, slot, top := t.parentOf(addr)
	var want Tag
	if top {
		if !t.rootSet {
			return
		}
		want = t.root
	} else {
		buf := make([]byte, mem.LineSize)
		t.ReadCoherent(parent, buf)
		copy(want[:], buf[slot*TagBytes:])
	}
	if !ct.Equal(tag[:], want[:]) {
		if t.pending[addr] > 0 {
			t.Stats.RaceTolerated++
			return
		}
		t.violation(addr, "hash mismatch on background (lazy) verification")
	}
}

// verify hashes the fetched line and compares against its parent's tag,
// walking up through cached (trusted) ancestors.
func (t *Tree) verify(p *sim.Proc, n *coherence.Node, addr uint64, data []byte) {
	t.Stats.Verifies++
	tag := t.hashLine(data)
	p.Sleep(t.params.HashLatency)

	parent, slot, top := t.parentOf(addr)
	var want Tag
	if top {
		if !t.rootSet {
			return
		}
		want = t.root
	} else {
		// Fetching the parent through the L2: a hit means it is already
		// trusted; a miss recursively verifies it via this same hook.
		line := n.LoadLine(p, parent)
		copy(want[:], line[slot*TagBytes:])
	}
	if !ct.Equal(tag[:], want[:]) {
		if t.pending[addr] > 0 {
			// An eviction's parent-tag update is still in flight (the
			// hash-update buffer a real SHU must snoop); re-check later
			// would succeed, so tolerate and charge a retry.
			t.Stats.RaceTolerated++
			p.Sleep(t.params.HashLatency)
			return
		}
		t.violation(addr, "hash mismatch on memory fill")
	}
}

// BeginUpdate marks addr as having an in-flight parent update. The memory
// port wrapper calls it at the writeback commit point.
//
//senss-lint:hotpath
func (t *Tree) BeginUpdate(addr uint64) {
	if t.levelOf(addr) >= 0 || t.Covers(addr) {
		t.pending[addr]++
	}
}

// AfterWriteBack implements the update half of coherence.MissHooks: patch
// the child's tag in the parent node (dirtying it in this node's L2), or
// the root register for the top node.
func (t *Tree) AfterWriteBack(p *sim.Proc, n *coherence.Node, addr uint64, data []byte) {
	level := t.levelOf(addr)
	if level < 0 && !t.Covers(addr) {
		return
	}
	defer func() {
		if t.pending[addr] > 0 {
			t.pending[addr]--
			if t.pending[addr] == 0 {
				delete(t.pending, addr)
			}
		}
	}()
	t.Stats.Updates++
	tag := t.hashLine(data)
	if t.params.Lazy {
		// Background hashing: the tag is computed off the critical path,
		// but the parent update itself (a cached store) remains eager so
		// the tree stays current for the batched verifier.
		t.lazyLog(addr, data)
	} else {
		p.Sleep(t.params.HashLatency)
	}
	parent, slot, top := t.parentOf(addr)
	if top {
		t.root = tag
		return
	}
	n.StoreBlock(p, parent+uint64(slot*TagBytes), tag[:])
}

// lazyLog folds an access into the lazy-mode multiset accumulator.
func (t *Tree) lazyLog(addr uint64, data []byte) {
	t.Stats.LazyLogged++
	buf := make([]byte, len(data)+8)
	copy(buf, data)
	for i := 0; i < 8; i++ {
		buf[len(data)+i] = byte(addr >> (8 * i))
	}
	sum := sha256.Sum256(buf)
	for i := 0; i < TagBytes; i++ {
		t.lazyAcc[i] ^= sum[i]
	}
}

// Check performs the end-of-run verification sweep for lazy mode (and is a
// harmless no-op sanity pass otherwise): every covered line's current
// plaintext must hash to the tag recorded in the tree. readLine must
// return current plaintext including dirty cached lines.
func (t *Tree) Check(readLine func(addr uint64, dst []byte)) error {
	buf := make([]byte, mem.LineSize)
	parentBuf := make([]byte, mem.LineSize)
	for i := uint64(0); i < t.dataSize/mem.LineSize; i++ {
		addr := t.lineAddr(-1, i)
		readLine(addr, buf)
		sum := sha256.Sum256(buf)
		parent, slot, _ := t.parentOf(addr)
		readLine(parent, parentBuf)
		var want Tag
		copy(want[:], parentBuf[slot*TagBytes:])
		var got Tag
		copy(got[:], sum[:TagBytes])
		if got != want {
			return fmt.Errorf("integrity: lazy check failed for line %#x", addr)
		}
	}
	return nil
}

// WarmLines enumerates hash-line addresses top-down (highest level first)
// up to the given byte budget — the lines the machine pre-loads into each
// L2 at program load, matching the paper's steady-state assumption that
// the upper tree levels reside on-chip.
func (t *Tree) WarmLines(budget int) []uint64 {
	var out []uint64
	for level := t.levels - 1; level >= 0 && budget > 0; level-- {
		for idx := uint64(0); idx < t.counts[level] && budget > 0; idx++ {
			out = append(out, t.lineAddr(level, idx))
			budget -= mem.LineSize
		}
	}
	return out
}

// Root exposes the root register (tests).
func (t *Tree) Root() Tag { return t.root }

// Levels exposes the tree height (tests).
func (t *Tree) Levels() int { return t.levels }
