package integrity

import (
	"testing"

	"senss/internal/crypto/sha256"
	"senss/internal/mem"
	"senss/internal/rng"
)

func buildTree(t *testing.T, dataLines int) (*Tree, *mem.Store) {
	t.Helper()
	store := mem.New()
	r := rng.New(7)
	buf := make([]byte, mem.LineSize)
	for i := 0; i < dataLines; i++ {
		r.Read(buf)
		store.WriteLine(uint64(i*mem.LineSize), buf)
	}
	tree := New(nil, 0, uint64(dataLines*mem.LineSize), Params{HashLatency: 160})
	tree.Build(store, func(addr uint64, dst []byte) { store.ReadLine(addr, dst) })
	return tree, store
}

func TestTreeGeometry(t *testing.T) {
	cases := []struct {
		dataLines int
		levels    int
	}{
		{1, 1},  // 1 leaf line → 1 parent node (the top)
		{4, 1},  // exactly one node
		{5, 2},  // 2 level-0 nodes → 1 top node
		{16, 2}, // 4 level-0 → 1 top
		{17, 3}, // 5 level-0 → 2 level-1 → 1 top
		{256, 4},
	}
	for _, c := range cases {
		tree := New(nil, 0, uint64(c.dataLines*mem.LineSize), Params{})
		if tree.Levels() != c.levels {
			t.Errorf("%d data lines: levels = %d, want %d", c.dataLines, tree.Levels(), c.levels)
		}
	}
}

func TestCoversRegion(t *testing.T) {
	tree := New(nil, 128, 4*mem.LineSize, Params{})
	if !tree.Covers(128) || !tree.Covers(128+4*64-1) {
		t.Error("region not covered")
	}
	if tree.Covers(0) || tree.Covers(128+4*64) {
		t.Error("outside region covered")
	}
}

func TestBuildProducesVerifiableTags(t *testing.T) {
	tree, store := buildTree(t, 20)
	buf := make([]byte, mem.LineSize)
	parent := make([]byte, mem.LineSize)
	// Every data line's tag must appear in its parent at the right slot.
	for i := 0; i < 20; i++ {
		addr := uint64(i * mem.LineSize)
		store.ReadLine(addr, buf)
		sum := sha256.Sum256(buf)
		p, slot, top := tree.parentOf(addr)
		if top {
			t.Fatal("data line cannot be top")
		}
		store.ReadLine(p, parent)
		for j := 0; j < TagBytes; j++ {
			if parent[slot*TagBytes+j] != sum[j] {
				t.Fatalf("line %d: tag mismatch at parent byte %d", i, j)
			}
		}
	}
	// The root register must equal the hash of the top node.
	top := tree.lineAddr(tree.levels-1, 0)
	store.ReadLine(top, buf)
	sum := sha256.Sum256(buf)
	var want Tag
	copy(want[:], sum[:TagBytes])
	if tree.Root() != want {
		t.Error("root register mismatch")
	}
}

func TestCheckPassesOnCleanMemory(t *testing.T) {
	tree, store := buildTree(t, 20)
	if err := tree.Check(func(addr uint64, dst []byte) { store.ReadLine(addr, dst) }); err != nil {
		t.Errorf("clean check failed: %v", err)
	}
}

func TestCheckCatchesTamper(t *testing.T) {
	tree, store := buildTree(t, 20)
	store.Tamper(5*64+3, 0x10)
	if err := tree.Check(func(addr uint64, dst []byte) { store.ReadLine(addr, dst) }); err == nil {
		t.Error("tampered memory passed the check")
	}
}

func TestWarmLinesTopDown(t *testing.T) {
	tree, _ := buildTree(t, 256) // 4 levels
	lines := tree.WarmLines(3 * mem.LineSize)
	if len(lines) != 3 {
		t.Fatalf("budget of 3 lines returned %d", len(lines))
	}
	// First line must be the single top node.
	if lines[0] != tree.lineAddr(tree.levels-1, 0) {
		t.Error("warm set does not start at the top node")
	}
	// Levels must be non-increasing along the list.
	last := tree.levelOf(lines[0])
	for _, a := range lines[1:] {
		l := tree.levelOf(a)
		if l > last {
			t.Error("warm lines not top-down")
		}
		last = l
	}
}

func TestParentOfChain(t *testing.T) {
	tree, _ := buildTree(t, 64) // levels: 16 L0, 4 L1, 1 L2
	addr := uint64(37 * mem.LineSize)
	p0, slot0, top := tree.parentOf(addr)
	if top {
		t.Fatal("unexpected top")
	}
	if slot0 != 37%4 {
		t.Errorf("slot = %d", slot0)
	}
	p1, _, top := tree.parentOf(p0)
	if top {
		t.Fatal("level-0 node cannot be top here")
	}
	p2, _, top := tree.parentOf(p1)
	if top {
		t.Fatal("level-1 node cannot be top here")
	}
	_, _, top = tree.parentOf(p2)
	if !top {
		t.Error("level-2 node should be the top")
	}
}

func TestPendingCounter(t *testing.T) {
	tree, _ := buildTree(t, 8)
	tree.BeginUpdate(0)
	tree.BeginUpdate(0)
	if tree.pending[0] != 2 {
		t.Errorf("pending = %d", tree.pending[0])
	}
	// Addresses outside the covered region are ignored.
	tree.BeginUpdate(1 << 30)
	if _, ok := tree.pending[1<<30]; ok {
		t.Error("uncovered address marked pending")
	}
}

func TestLazyLogAccumulates(t *testing.T) {
	tree, _ := buildTree(t, 8)
	tree.params.Lazy = true
	data := make([]byte, mem.LineSize)
	before := tree.lazyAcc
	tree.lazyLog(0x40, data)
	if tree.lazyAcc == before {
		t.Error("lazy accumulator unchanged")
	}
	if tree.Stats.LazyLogged != 1 {
		t.Error("lazy log not counted")
	}
	// XOR multiset property: logging the same access twice cancels.
	tree.lazyLog(0x40, data)
	if tree.lazyAcc != before {
		t.Error("double log did not cancel (not a XOR multiset)")
	}
}
