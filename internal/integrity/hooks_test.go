package integrity

import (
	"strings"
	"testing"

	"senss/internal/bus"
	"senss/internal/coherence"
	"senss/internal/mem"
	"senss/internal/rng"
	"senss/internal/sim"
)

// rig assembles an engine + bus + node + built tree over nLines of data,
// with the tree wired in as the node's miss hook.
type rig struct {
	engine *sim.Engine
	store  *mem.Store
	bus    *bus.Bus
	node   *coherence.Node
	tree   *Tree
}

type hookAdapter struct{ t *Tree }

func (h hookAdapter) AfterMemoryFill(p *sim.Proc, n *coherence.Node, txn *bus.Transaction) {
	h.t.AfterMemoryFill(p, n, txn)
}
func (h hookAdapter) AfterWriteBack(p *sim.Proc, n *coherence.Node, addr uint64, data []byte) {
	h.t.AfterWriteBack(p, n, addr, data)
}

// pendingPort mirrors the machine's integrity port wrapper: a writeback
// commit marks the line as having an in-flight parent-tag update.
type pendingPort struct {
	inner bus.MemoryPort
	tree  func() *Tree
}

func (p *pendingPort) Fetch(t *bus.Transaction, dst []byte) uint64 {
	return p.inner.Fetch(t, dst)
}
func (p *pendingPort) Store(t *bus.Transaction, src []byte) uint64 {
	if tr := p.tree(); tr != nil {
		tr.BeginUpdate(t.Addr)
	}
	return p.inner.Store(t, src)
}

func newRig(t *testing.T, nLines int, lazy bool) *rig {
	t.Helper()
	r := &rig{engine: sim.NewEngine(), store: mem.New()}
	r.engine.SetLimit(100_000_000)
	r.bus = bus.New(r.engine, bus.Timing{
		BusCycle: 10, C2CLat: 120, MemLat: 180, BytesPerBusCycle: 32, LineBytes: 64,
	}, &pendingPort{inner: &bus.SimpleMemory{Backing: r.store}, tree: func() *Tree { return r.tree }})
	r.node = coherence.NewNode(0, coherence.Params{
		L1Size: 256, L1Ways: 2, L1Line: 32,
		L2Size: 2 << 10, L2Ways: 4, L2Line: 64,
		L1HitLat: 2, L2HitLat: 10, StoreLat: 2, RMWLat: 4,
	}, r.bus)

	rnd := rng.New(88)
	buf := make([]byte, mem.LineSize)
	for i := 0; i < nLines; i++ {
		rnd.Read(buf)
		r.store.WriteLine(uint64(i*mem.LineSize), buf)
	}
	r.tree = New(r.engine, 0, uint64(nLines*mem.LineSize), Params{HashLatency: 160, Lazy: lazy})
	r.tree.ReadCoherent = func(addr uint64, dst []byte) {
		if l := r.node.L2.Peek(addr); l != nil {
			copy(dst, l.Data)
			return
		}
		r.store.ReadLine(addr, dst)
	}
	r.tree.Build(r.store, func(addr uint64, dst []byte) { r.store.ReadLine(addr, dst) })
	r.node.Hooks = hookAdapter{r.tree}
	return r
}

func (r *rig) run(t *testing.T, prog func(p *sim.Proc)) {
	t.Helper()
	r.engine.Spawn("prog", prog)
	if err := r.engine.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyPassesOnCleanFills(t *testing.T) {
	r := newRig(t, 32, false)
	r.run(t, func(p *sim.Proc) {
		for i := uint64(0); i < 32; i++ {
			r.node.Load(p, i*64)
		}
	})
	if halted, why := r.engine.Halted(); halted {
		t.Fatalf("false alarm: %s", why)
	}
	if r.tree.Stats.Verifies == 0 {
		t.Error("no verifications performed")
	}
}

func TestVerifyCatchesDirectTamper(t *testing.T) {
	r := newRig(t, 32, false)
	r.store.Tamper(5*64+1, 0x80)
	r.run(t, func(p *sim.Proc) {
		r.node.Load(p, 5*64)
	})
	if halted, why := r.engine.Halted(); !halted || !strings.Contains(why, "integrity") {
		t.Fatalf("tamper missed: halted=%v %q", halted, why)
	}
	if r.tree.Stats.Violations == 0 {
		t.Error("violation not counted")
	}
}

func TestVerifyCatchesHashLineTamper(t *testing.T) {
	// Tampering a level-0 tree node must also be caught (the node fails
	// verification against its own parent when fetched).
	r := newRig(t, 32, false)
	hashLine := HashBase // level-0 node 0
	r.store.Tamper(hashLine+3, 0x04)
	r.run(t, func(p *sim.Proc) {
		r.node.Load(p, 0) // fetch data line 0 → fetch its tampered parent
	})
	if halted, _ := r.engine.Halted(); !halted {
		t.Fatal("tampered hash node missed")
	}
}

func TestWriteBackUpdatesParentTag(t *testing.T) {
	r := newRig(t, 64, false) // 64 data lines ≫ 2 KiB L2: eviction guaranteed
	r.run(t, func(p *sim.Proc) {
		r.node.Store(p, 0, 0xBEEF)
		// Sweep far enough to evict line 0 (32-line L2).
		for i := uint64(1); i < 64; i++ {
			r.node.Load(p, i*64)
		}
		// Refetch: must verify against the updated tag.
		if v := r.node.Load(p, 0); v != 0xBEEF {
			t.Errorf("refetched %#x", v)
		}
	})
	if halted, why := r.engine.Halted(); halted {
		t.Fatalf("false alarm after writeback/refetch: %s", why)
	}
	if r.tree.Stats.Updates == 0 {
		t.Error("no parent-tag updates recorded")
	}
}

func TestLazyVerifyDetectsAndIsCheap(t *testing.T) {
	r := newRig(t, 32, true)
	r.store.Tamper(9*64, 0x01)
	var before, after uint64
	r.run(t, func(p *sim.Proc) {
		r.node.Load(p, 8*64) // clean line: no charge beyond the fill
		before = p.Now()
		r.node.Load(p, 10*64)
		after = p.Now()
		r.node.Load(p, 9*64) // tampered line: background check alarms
	})
	if halted, _ := r.engine.Halted(); !halted {
		t.Fatal("lazy mode missed the tamper")
	}
	// The clean lazy fill must not pay the 160-cycle hash latency.
	if after-before > 400 {
		t.Errorf("lazy fill took %d cycles — hash latency leaked onto the critical path", after-before)
	}
	if r.tree.Stats.LazyLogged == 0 {
		t.Error("lazy log empty")
	}
}
