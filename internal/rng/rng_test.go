package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("%d/100 identical draws across seeds", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(4)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	f := func(n uint8) bool {
		p := r.Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadFillsExactly(t *testing.T) {
	r := New(6)
	for _, n := range []int{0, 1, 7, 8, 9, 16, 33} {
		buf := make([]byte, n)
		got, err := r.Read(buf)
		if err != nil || got != n {
			t.Errorf("Read(%d) = %d, %v", n, got, err)
		}
	}
}

func TestReadNonTrivial(t *testing.T) {
	r := New(7)
	buf := make([]byte, 64)
	r.Read(buf)
	zero := 0
	for _, b := range buf {
		if b == 0 {
			zero++
		}
	}
	if zero > 8 {
		t.Errorf("suspiciously many zero bytes: %d/64", zero)
	}
}

func TestUniformityChiSquareish(t *testing.T) {
	// Bucket 100k draws into 16 bins; each should be within 5% of expected.
	r := New(8)
	const draws, bins = 100000, 16
	var count [bins]int
	for i := 0; i < draws; i++ {
		count[r.Uint64()%bins]++
	}
	want := draws / bins
	for i, c := range count {
		if c < want*95/100 || c > want*105/100 {
			t.Errorf("bin %d count %d outside 5%% of %d", i, c, want)
		}
	}
}

func TestSplitMix64KnownSequence(t *testing.T) {
	// Reference values for seed 0 from the splitmix64 reference
	// implementation.
	s := NewSplitMix64(0)
	want := []uint64{0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Errorf("Next()[%d] = %#x, want %#x", i, got, w)
		}
	}
}

func TestBlock16Varies(t *testing.T) {
	r := New(9)
	if r.Block16() == r.Block16() {
		t.Error("consecutive Block16 values identical")
	}
}
