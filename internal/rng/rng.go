// Package rng provides small deterministic pseudo-random generators.
//
// The simulator must be bit-reproducible for a given seed (DESIGN.md §6):
// experiment tables, the variability study of paper §7.8, and the regression
// tests all depend on it.  We therefore use an explicit, seedable generator
// everywhere instead of global sources.
package rng

import "encoding/binary"

// SplitMix64 is the splitmix64 generator (Steele, Lea, Flood 2014).  It is
// used directly for seeding and for cheap value streams.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

// Rand is a xoshiro256** generator with convenience helpers.  The zero
// value is invalid; use New.
type Rand struct {
	s [4]uint64
}

// New returns a generator deterministically seeded from seed.
func New(seed uint64) *Rand {
	sm := NewSplitMix64(seed)
	var r Rand
	for i := range r.s {
		r.s[i] = sm.Next()
	}
	// Guard against the all-zero state, which is a fixed point.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return &r
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64-bit value.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint32 returns the next 32-bit value.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Read fills p with pseudo-random bytes; it never fails, satisfying
// io.Reader so the generator can feed RSA key generation deterministically.
// Callers that do not need the io.Reader shape should use Fill, whose
// signature cannot drop an error.
func (r *Rand) Read(p []byte) (int, error) {
	r.Fill(p)
	return len(p), nil
}

// Fill fills p with pseudo-random bytes.
func (r *Rand) Fill(p []byte) {
	for len(p) >= 8 {
		binary.LittleEndian.PutUint64(p, r.Uint64())
		p = p[8:]
	}
	if len(p) > 0 {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], r.Uint64())
		copy(p, b[:])
	}
}

// Block16 returns 16 pseudo-random bytes, the shape of an AES block.
func (r *Rand) Block16() [16]byte {
	var b [16]byte
	binary.LittleEndian.PutUint64(b[0:8], r.Uint64())
	binary.LittleEndian.PutUint64(b[8:16], r.Uint64())
	return b
}
