package attack

import (
	"fmt"

	"senss/internal/core"
	"senss/internal/crypto"
	"senss/internal/crypto/aes"
	"senss/internal/rng"
)

// Report is the outcome of one attack scenario.
type Report struct {
	Name        string
	Description string
	Attacked    bool
	Detected    bool
	WantDetect  bool // false for the strawman demos, which must NOT detect
	Details     []string
}

// Verdict summarizes whether the scenario behaved as the paper predicts.
func (r Report) Verdict() string {
	ok := r.Detected == r.WantDetect
	switch {
	case ok && r.WantDetect:
		return "DETECTED (as designed)"
	case ok && !r.WantDetect:
		return "UNDETECTED (the strawman's flaw, as the paper argues)"
	case r.WantDetect:
		return "MISSED — SENSS should have caught this"
	default:
		return "UNEXPECTED DETECTION"
	}
}

// OK reports whether the outcome matches the paper's prediction.
func (r Report) OK() bool { return r.Detected == r.WantDetect }

// Scenario is a runnable attack demonstration.
type Scenario struct {
	Name        string
	Description string
	Run         func(seed uint64) Report
}

// protocolRig builds a 4-processor SENSS protocol instance with one group
// and a driver that pushes n cache-to-cache transfers through it.
func protocolRig(seed uint64, params core.Params) (*core.System, int, func(n int)) {
	params.Perfect = true
	sys := core.NewSystem(nil, nil, 4, params, false)
	r := rng.New(seed)
	key := aes.Block(r.Block16())
	encIV := aes.Block(r.Block16())
	authIV := aes.Block(r.Block16())
	members := core.MemberMask(0, 1, 2, 3)
	table := core.NewGroupTable()
	gid, err := table.Allocate(members)
	if err != nil {
		panic(err)
	}
	if err := sys.Establish(gid, key, members, encIV, authIV); err != nil {
		panic(err)
	}
	drive := func(n int) {
		for i := 0; i < n && !sys.Detected(); i++ {
			line := make([]byte, 64)
			r.Fill(line)
			t := c2cTransaction(gid, i%4, (i+1)%4, line)
			sys.OnTransaction(nil, t)
		}
	}
	return sys, gid, drive
}

// Scenarios returns every canned demonstration, in presentation order.
func Scenarios() []Scenario {
	params := core.DefaultParams()
	params.AuthInterval = 10

	return []Scenario{
		{
			Name: "pad-reuse-leak",
			Description: "§3.1 strawman: reusing the memory pad on the bus " +
				"leaks D⊕D' to a passive wiretap",
			Run: func(seed uint64) Report {
				r := rng.New(seed)
				key := aes.Block(r.Block16())
				ch := core.NewPadReuseChannel(crypto.MustBackend(crypto.Ref, key))
				d1 := aes.Block(r.Block16())
				d2 := aes.Block(r.Block16())
				c1 := ch.Encrypt(0x4000, 3, d1)
				c2 := ch.Encrypt(0x4000, 3, d2)
				leak := core.LeakXOR(c1, c2)
				leaked := leak == d1.XOR(d2)
				return Report{
					Name:       "pad-reuse-leak",
					Attacked:   true,
					Detected:   false,
					WantDetect: false,
					Details: []string{
						fmt.Sprintf("ciphertext1 ⊕ ciphertext2 = %s", leak),
						fmt.Sprintf("plaintext1  ⊕ plaintext2  = %s", d1.XOR(d2)),
						fmt.Sprintf("relation exposed to wiretap: %v", leaked),
					},
				}
			},
		},
		{
			Name: "senss-no-leak",
			Description: "the SENSS chained masks never repeat, so the same " +
				"XOR attack yields nothing",
			Run: func(seed uint64) Report {
				sys, gid, _ := protocolRig(seed, params)
				tap := &Wiretap{}
				sys.SetTamperer(tap)
				line := make([]byte, 64)
				for i := range line {
					line[i] = 0x5A
				}
				sys.OnTransaction(nil, c2cTransaction(gid, 0, 1, line))
				sys.OnTransaction(nil, c2cTransaction(gid, 0, 1, line))
				x := tap.Ciphers[0][0].XOR(tap.Ciphers[1][0])
				return Report{
					Name:       "senss-no-leak",
					Attacked:   true,
					Detected:   false,
					WantDetect: false,
					Details: []string{
						fmt.Sprintf("same plaintext sent twice; ciphertext XOR = %s", x),
						fmt.Sprintf("zero would mean a leak: %v (must be false)", x.IsZero()),
					},
				}
			},
		},
		{
			Name:        "type1-drop",
			Description: "Type 1: a broadcast is blocked from two processors",
			Run: func(seed uint64) Report {
				sys, _, drive := protocolRig(seed, params)
				d := &Dropper{Victims: []int{2, 3}, FromSeq: 3}
				sys.SetTamperer(d)
				drive(25)
				return report("type1-drop", sys, true,
					fmt.Sprintf("dropped %d broadcast(s) for processors 2 and 3", d.Dropped()))
			},
		},
		{
			Name:        "type2-reorder",
			Description: "Type 2: two adjacent broadcasts are swapped on the wire",
			Run: func(seed uint64) Report {
				sys, _, drive := protocolRig(seed, params)
				sys.SetTamperer(&Swapper{AtSeq: 2, Procs: 4})
				drive(25)
				return report("type2-reorder", sys, true, "swapped broadcasts 2 and 3")
			},
		},
		{
			Name: "type2-strawman-recovers",
			Description: "§4.3 strawman: using the masks as integrity evidence " +
				"re-converges after a swap, so nothing is detected",
			Run: func(seed uint64) Report {
				r := rng.New(seed)
				key := aes.Block(r.Block16())
				iv := aes.Block(r.Block16())
				send := core.NewMaskChainAuth(crypto.MustBackend(crypto.Ref, key), iv)
				recv := core.NewMaskChainAuth(crypto.MustBackend(crypto.Ref, key), iv)
				c1, c2, c3 := aes.Block(r.Block16()), aes.Block(r.Block16()), aes.Block(r.Block16())
				send.ObserveCipher(c1)
				send.ObserveCipher(c2)
				send.ObserveCipher(c3)
				recv.ObserveCipher(c2) // swapped...
				recv.ObserveCipher(c1)
				recv.ObserveCipher(c3) // ...but the chain depends only on the last cipher
				same := send.Evidence() == recv.Evidence()
				return Report{
					Name:       "type2-strawman-recovers",
					Attacked:   true,
					Detected:   !same,
					WantDetect: false,
					Details: []string{
						fmt.Sprintf("checkpoint evidence equal after swap: %v", same),
						"the separate-IV CBC-MAC chain of SENSS keeps the divergence instead",
					},
				}
			},
		},
		{
			Name:        "type3-spoof-targeted",
			Description: "Type 3: a fabricated message with a valid GID/PID is fed to one victim",
			Run: func(seed uint64) Report {
				sys, _, drive := protocolRig(seed, params)
				r := rng.New(seed + 99)
				payload := make([]byte, 64)
				r.Fill(payload)
				sys.SetTamperer(&Spoofer{AtSeq: 1, Victim: 3, ClaimedPID: 2,
					Payload: core.LineToBlocks(payload)})
				drive(25)
				return report("type3-spoof-targeted", sys, true,
					"spoofed message claiming PID 2 delivered to processor 3 only")
			},
		},
		{
			Name:        "type3-spoof-self-snoop",
			Description: "Type 3: the spoof reaches the processor whose PID it claims — instant alarm",
			Run: func(seed uint64) Report {
				sys, _, drive := protocolRig(seed, params)
				r := rng.New(seed + 100)
				payload := make([]byte, 64)
				r.Fill(payload)
				sys.SetTamperer(&Spoofer{AtSeq: 0, Victim: 2, ClaimedPID: 2,
					Payload: core.LineToBlocks(payload)})
				drive(5)
				return report("type3-spoof-self-snoop", sys, true,
					"processor 2 snooped a message claiming its own PID")
			},
		},
		{
			Name:        "replay",
			Description: "Type 3 variant: an old broadcast is replayed to one victim",
			Run: func(seed uint64) Report {
				sys, _, drive := protocolRig(seed, params)
				sys.SetTamperer(&Replayer{CaptureSeq: 1, ReplaySeq: 5, Victim: 1})
				drive(25)
				return report("replay", sys, true, "broadcast 1 replayed to processor 1 after broadcast 5")
			},
		},
		{
			Name:        "wire-corruption",
			Description: "bit flips injected into one broadcast for one receiver",
			Run: func(seed uint64) Report {
				sys, _, drive := protocolRig(seed, params)
				sys.SetTamperer(&Corruptor{AtSeq: 4, Victims: []int{1}, Mask: 0x20})
				drive(25)
				return report("wire-corruption", sys, true, "flipped one ciphertext bit for processor 1")
			},
		},
	}
}

func report(name string, sys *core.System, want bool, details ...string) Report {
	r := Report{
		Name:       name,
		Attacked:   true,
		Detected:   sys.Detected(),
		WantDetect: want,
		Details:    details,
	}
	r.Details = append(r.Details, sys.Stats.Detections...)
	return r
}
