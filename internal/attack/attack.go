// Package attack implements the physical bus adversaries of paper §3.2 —
// message dropping (Type 1), reordering (Type 2), spoofing/replay
// (Type 3) — as core.Tamperer interposers, plus canned end-to-end
// scenarios that demonstrate detection (or, for the strawman schemes, the
// lack of it). cmd/senss-attack and examples/attack-detection drive them.
package attack

import (
	"senss/internal/core"
	"senss/internal/crypto/aes"
)

// Wiretap passively records every ciphertext on the bus — the baseline
// adversary capability every other attack builds on.
type Wiretap struct {
	Ciphers [][]aes.Block
	Senders []int
}

// Tamper implements core.Tamperer (observation only).
func (w *Wiretap) Tamper(seq uint64, sender int, cipher []aes.Block) map[int][]core.Observed {
	cp := make([]aes.Block, len(cipher))
	copy(cp, cipher)
	w.Ciphers = append(w.Ciphers, cp)
	w.Senders = append(w.Senders, sender)
	return nil
}

// Dropper blocks messages destined to the victim processors: the first
// FromSeq-th eligible broadcast never reaches them (Type 1).
type Dropper struct {
	Victims []int
	FromSeq uint64
	Count   int // how many messages to drop (0 = one)

	dropped int
	// LandedSeq is the sequence number of the first drop (-1 until then).
	LandedSeq int64
}

// Dropped reports how many messages were suppressed.
func (d *Dropper) Dropped() int { return d.dropped }

// Tamper implements core.Tamperer.
func (d *Dropper) Tamper(seq uint64, sender int, cipher []aes.Block) map[int][]core.Observed {
	limit := d.Count
	if limit == 0 {
		limit = 1
	}
	if d.dropped >= limit || seq < d.FromSeq {
		return nil
	}
	m := make(map[int][]core.Observed)
	hit := false
	for _, v := range d.Victims {
		if v == sender {
			continue // a sender never receives its own broadcast anyway
		}
		m[v] = nil
		hit = true
	}
	if !hit {
		return nil
	}
	if d.dropped == 0 {
		d.LandedSeq = int64(seq)
	}
	d.dropped++
	return m
}

// Swapper holds one broadcast back and delivers it after the next one, to
// every receiver — the Type 2 adjacent-swap reordering of §4.3.
type Swapper struct {
	AtSeq uint64
	Procs int

	held *core.Observed
	done bool
}

// Tamper implements core.Tamperer.
func (s *Swapper) Tamper(seq uint64, sender int, cipher []aes.Block) map[int][]core.Observed {
	cp := make([]aes.Block, len(cipher))
	copy(cp, cipher)
	if !s.done && seq == s.AtSeq {
		s.held = &core.Observed{Cipher: cp, Sender: sender}
		m := make(map[int][]core.Observed)
		for pid := 0; pid < s.Procs; pid++ {
			m[pid] = nil // held: nobody sees it this round
		}
		return m
	}
	if s.held != nil {
		held := *s.held
		s.held = nil
		s.done = true
		m := make(map[int][]core.Observed)
		for pid := 0; pid < s.Procs; pid++ {
			m[pid] = []core.Observed{{Cipher: cp, Sender: sender}, held}
		}
		return m
	}
	return nil
}

// Spoofer injects a fabricated message claiming ClaimedPID, delivered only
// to the victim, right after broadcast AtSeq (Type 3).
type Spoofer struct {
	AtSeq      uint64
	Victim     int
	ClaimedPID int
	Payload    []aes.Block

	done bool
}

// Tamper implements core.Tamperer.
func (s *Spoofer) Tamper(seq uint64, sender int, cipher []aes.Block) map[int][]core.Observed {
	cp := make([]aes.Block, len(cipher))
	copy(cp, cipher)
	if s.done || seq != s.AtSeq {
		return nil
	}
	s.done = true
	return map[int][]core.Observed{
		s.Victim: {
			{Cipher: cp, Sender: sender},
			{Cipher: s.Payload, Sender: s.ClaimedPID},
		},
	}
}

// Replayer captures broadcast CaptureSeq and re-delivers it to the victim
// after broadcast ReplaySeq (a Type 3 replay).
type Replayer struct {
	CaptureSeq uint64
	ReplaySeq  uint64
	Victim     int

	captured *core.Observed
	done     bool
}

// Tamper implements core.Tamperer.
func (r *Replayer) Tamper(seq uint64, sender int, cipher []aes.Block) map[int][]core.Observed {
	cp := make([]aes.Block, len(cipher))
	copy(cp, cipher)
	if seq == r.CaptureSeq {
		r.captured = &core.Observed{Cipher: cp, Sender: sender}
		return nil
	}
	if !r.done && seq >= r.ReplaySeq && r.captured != nil && sender != r.Victim {
		r.done = true
		return map[int][]core.Observed{
			r.Victim: {{Cipher: cp, Sender: sender}, *r.captured},
		}
	}
	return nil
}

// Corruptor flips bits in one broadcast for the victim receivers (a
// direct data-integrity attack on the wire).
type Corruptor struct {
	AtSeq   uint64
	Victims []int
	Mask    byte

	done bool
}

// Tamper implements core.Tamperer.
func (c *Corruptor) Tamper(seq uint64, sender int, cipher []aes.Block) map[int][]core.Observed {
	if c.done || seq != c.AtSeq {
		return nil
	}
	c.done = true
	bad := make([]aes.Block, len(cipher))
	copy(bad, cipher)
	bad[0][0] ^= c.Mask
	m := make(map[int][]core.Observed)
	for _, v := range c.Victims {
		m[v] = []core.Observed{{Cipher: bad, Sender: sender}}
	}
	return m
}
