package attack

import "testing"

// TestAllScenariosMatchPaperPredictions runs every canned attack and
// requires the outcome the paper argues for: SENSS detects the real
// attacks, and the strawman demonstrations show their documented flaws.
func TestAllScenariosMatchPaperPredictions(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			rep := sc.Run(12345)
			if !rep.Attacked {
				t.Fatalf("%s never attacked", sc.Name)
			}
			if !rep.OK() {
				t.Errorf("%s: detected=%v want=%v (%s)\ndetails: %v",
					sc.Name, rep.Detected, rep.WantDetect, rep.Verdict(), rep.Details)
			}
		})
	}
}

// TestScenariosAreSeedRobust re-runs everything under different seeds.
func TestScenariosAreSeedRobust(t *testing.T) {
	for _, seed := range []uint64{1, 7, 999} {
		for _, sc := range Scenarios() {
			rep := sc.Run(seed)
			if !rep.OK() {
				t.Errorf("seed %d, %s: detected=%v want=%v", seed, sc.Name, rep.Detected, rep.WantDetect)
			}
		}
	}
}

func TestDropperSkipsSender(t *testing.T) {
	d := &Dropper{Victims: []int{0}, FromSeq: 0}
	// Sender 0 equals the only victim: nothing to drop.
	if m := d.Tamper(0, 0, nil); m != nil {
		t.Error("dropped the sender's own view")
	}
	if d.Dropped() != 0 {
		t.Error("counted a non-drop")
	}
	if m := d.Tamper(1, 2, nil); m == nil {
		t.Error("failed to drop for a real victim")
	}
}

func TestReportVerdictStrings(t *testing.T) {
	cases := []struct {
		rep  Report
		want string
	}{
		{Report{Detected: true, WantDetect: true}, "DETECTED (as designed)"},
		{Report{Detected: false, WantDetect: false}, "UNDETECTED (the strawman's flaw, as the paper argues)"},
		{Report{Detected: false, WantDetect: true}, "MISSED — SENSS should have caught this"},
		{Report{Detected: true, WantDetect: false}, "UNEXPECTED DETECTION"},
	}
	for _, c := range cases {
		if got := c.rep.Verdict(); got != c.want {
			t.Errorf("Verdict() = %q, want %q", got, c.want)
		}
	}
}
