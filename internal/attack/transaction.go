package attack

import "senss/internal/bus"

// c2cTransaction fabricates a synthetic cache-to-cache bus transfer for
// protocol-level scenario drives (no simulated machine involved).
func c2cTransaction(gid, sender, requester int, line []byte) *bus.Transaction {
	data := append([]byte(nil), line...)
	t := &bus.Transaction{Kind: bus.Rd, Addr: 0x1000, Src: requester, GID: gid, Data: data}
	t.SupplierID = sender
	return t
}
