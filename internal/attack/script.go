package attack

// A Script is a programmable bus adversary: an ordered list of per-message
// steps (drop, corrupt, delay/reorder, replay, spoof) applied to chosen
// receivers at chosen sequence numbers. It generalizes the canned
// single-purpose tamperers of this package into the form the fuzzer
// needs — an arbitrary byte string decodes into a Script, and the
// security property under test is a ground-truth comparison: the script
// DEVIATED some receiver's observation stream if and only if the SENSS
// layer must detect it.

import (
	"senss/internal/core"
	"senss/internal/crypto/aes"
)

// Step actions.
const (
	// ActDrop suppresses the message for the victim (Type 1).
	ActDrop = iota
	// ActCorrupt flips one ciphertext bit in the victim's copy.
	ActCorrupt
	// ActDelay withholds the message and releases it after the victim's
	// next observed message — a pairwise reorder (Type 2) when applied
	// once, arbitrary reorders when chained.
	ActDelay
	// ActReplay captures the message on first use and appends the captured
	// copy to a later delivery (Type 3 replay). The first matching step
	// captures; subsequent ones inject.
	ActReplay
	// ActSpoof appends a forged message claiming PID Arg (Type 3 spoof;
	// claiming the victim's own PID trips the self-snoop alarm).
	ActSpoof
	// ActCount bounds the action space (decoders reduce modulo it).
	ActCount
)

// Step is one scripted manipulation: at transfer Seq, reshape what
// receiver Victim observes. Arg parameterizes the action (bit position for
// corrupt, claimed PID for spoof).
type Step struct {
	Seq    uint64
	Action int
	Victim int
	Arg    int
}

// Script is a deterministic, stateful core.Tamperer executing Steps. It
// records the original and the delivered observation stream per receiver;
// Deviated compares them after the run, so steps that cancel out (or never
// land) do not count as an attack.
type Script struct {
	Procs int
	Steps []Step

	held     [][]core.Observed // per-victim delayed messages awaiting release
	captured []*core.Observed  // per-victim replay capture
	want     [][]core.Observed // per-victim stream as sent
	got      [][]core.Observed // per-victim stream as delivered
}

// NewScript creates a script adversary over nprocs receivers.
func NewScript(nprocs int, steps []Step) *Script {
	return &Script{
		Procs:    nprocs,
		Steps:    steps,
		held:     make([][]core.Observed, nprocs),
		captured: make([]*core.Observed, nprocs),
		want:     make([][]core.Observed, nprocs),
		got:      make([][]core.Observed, nprocs),
	}
}

func cloneCipherBlocks(cipher []aes.Block) []aes.Block {
	out := make([]aes.Block, len(cipher))
	copy(out, cipher)
	return out
}

// Tamper implements core.Tamperer.
func (s *Script) Tamper(seq uint64, sender int, cipher []aes.Block) map[int][]core.Observed {
	out := make(map[int][]core.Observed, s.Procs)
	for pid := 0; pid < s.Procs; pid++ {
		if pid == sender {
			continue
		}
		orig := core.Observed{Cipher: cloneCipherBlocks(cipher), Sender: sender}
		s.want[pid] = append(s.want[pid], orig)

		delivery := []core.Observed{orig}
		for _, st := range s.Steps {
			if st.Seq != seq || st.Victim != pid {
				continue
			}
			switch st.Action {
			case ActDrop:
				delivery = nil
			case ActCorrupt:
				if len(delivery) > 0 {
					c := cloneCipherBlocks(delivery[len(delivery)-1].Cipher)
					if len(c) > 0 {
						bit := st.Arg % (len(c) * aes.BlockSize * 8)
						c[bit/(aes.BlockSize*8)][(bit/8)%aes.BlockSize] ^= 1 << (bit % 8)
					}
					delivery[len(delivery)-1].Cipher = c
				}
			case ActDelay:
				s.held[pid] = append(s.held[pid], delivery...)
				delivery = nil
			case ActReplay:
				if cap := s.captured[pid]; cap != nil {
					delivery = append(delivery, *cap)
				} else {
					cp := orig
					s.captured[pid] = &cp
				}
			case ActSpoof:
				forged := core.Observed{
					Cipher: cloneCipherBlocks(cipher),
					Sender: ((st.Arg % s.Procs) + s.Procs) % s.Procs,
				}
				delivery = append(delivery, forged)
			}
		}
		// Release any delayed messages behind this sequence's delivery —
		// the reorder lands as soon as the victim observes something again.
		if len(delivery) > 0 && len(s.held[pid]) > 0 {
			delivery = append(delivery, s.held[pid]...)
			s.held[pid] = nil
		}
		s.got[pid] = append(s.got[pid], delivery...)
		out[pid] = delivery
	}
	return out
}

// Deviated reports whether any receiver's delivered stream differs from
// the stream as sent — the ground truth the detection property is checked
// against. Messages still held at the end of the run count as dropped.
func (s *Script) Deviated() bool {
	for pid := 0; pid < s.Procs; pid++ {
		if len(s.held[pid]) > 0 {
			return true
		}
		if len(s.want[pid]) != len(s.got[pid]) {
			return true
		}
		for i := range s.want[pid] {
			if !observedEqual(s.want[pid][i], s.got[pid][i]) {
				return true
			}
		}
	}
	return false
}

func observedEqual(a, b core.Observed) bool {
	if a.Sender != b.Sender || len(a.Cipher) != len(b.Cipher) {
		return false
	}
	for i := range a.Cipher {
		if a.Cipher[i] != b.Cipher[i] {
			return false
		}
	}
	return true
}
