package farm

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Job statuses recorded in sweep manifests.
const (
	StatusPending = "pending"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// Manifest records one sweep: the deduplicated job set with per-job
// status. It is rewritten atomically after every completion, so an
// interrupted sweep resumes from its completed jobs: on the next run,
// entries recorded done whose cache entry is still live are served
// without re-simulating.
//
// Manifests are the sweep's determinism proof: entries are sorted by job
// hash and carry no timestamps, durations, worker counts, or
// cache-temperature bits, so the same sweep produces byte-identical
// manifests whether it ran on one worker or eight, cold or warm.
type Manifest struct {
	Sweep   string          `json:"sweep"`
	Version string          `json:"version"`
	Jobs    []ManifestEntry `json:"jobs"`
}

// ManifestEntry is one job of the sweep.
type ManifestEntry struct {
	Hash     string `json:"hash"`
	Workload string `json:"workload"`
	Figure   string `json:"figure,omitempty"`
	Procs    int    `json:"procs"`
	L2Bytes  int    `json:"l2_bytes"`
	Status   string `json:"status"`
	Error    string `json:"error,omitempty"`
}

// newManifest builds a pending manifest over the (already deduplicated)
// jobs, sorted by hash.
func newManifest(sweep string, jobs []Job, hashes []string) *Manifest {
	m := &Manifest{Sweep: sweep, Version: CacheVersion}
	for i, j := range jobs {
		m.Jobs = append(m.Jobs, ManifestEntry{
			Hash:     hashes[i],
			Workload: j.Workload,
			Figure:   j.Figure,
			Procs:    j.Config.Procs,
			L2Bytes:  j.Config.Coherence.L2Size,
			Status:   StatusPending,
		})
	}
	sort.Slice(m.Jobs, func(a, b int) bool { return m.Jobs[a].Hash < m.Jobs[b].Hash })
	return m
}

// setStatus updates the entry for hash.
func (m *Manifest) setStatus(hash, status, errMsg string) {
	for i := range m.Jobs {
		if m.Jobs[i].Hash == hash {
			m.Jobs[i].Status = status
			m.Jobs[i].Error = errMsg
			return
		}
	}
}

// Counts tallies entries per status.
func (m *Manifest) Counts() (done, failed, pending int) {
	for _, e := range m.Jobs {
		switch e.Status {
		case StatusDone:
			done++
		case StatusFailed:
			failed++
		default:
			pending++
		}
	}
	return done, failed, pending
}

// Encode renders the manifest in its canonical byte form.
func (m *Manifest) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("farm: encoding manifest: %w", err)
	}
	return append(data, '\n'), nil
}

// write persists the manifest atomically into dir.
func (m *Manifest) write(dir string) error {
	data, err := m.Encode()
	if err != nil {
		return err
	}
	return atomicWrite(ManifestPath(dir, m.Sweep), data)
}

// ManifestPath is the manifest file for a sweep name within a cache
// directory. Sweep names are sanitized into the filename alphabet.
func ManifestPath(dir, sweep string) string {
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '-'
	}, sweep)
	return filepath.Join(dir, "manifest-"+clean+".json")
}

// LoadManifest reads a sweep's manifest from dir. A missing, unreadable,
// or version-stale manifest returns (nil, nil): resumption is
// best-effort and corruption means starting the sweep's bookkeeping
// fresh, never failing it.
func LoadManifest(dir, sweep string) (*Manifest, error) {
	if dir == "" {
		return nil, nil
	}
	data, err := os.ReadFile(ManifestPath(dir, sweep))
	if err != nil {
		return nil, nil
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil || m.Version != CacheVersion {
		return nil, nil
	}
	return &m, nil
}

// Manifests lists every readable sweep manifest in dir, sorted by sweep
// name.
func Manifests(dir string) ([]*Manifest, error) {
	if dir == "" {
		return nil, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []*Manifest
	for _, de := range ents {
		name := de.Name()
		if de.IsDir() || !strings.HasPrefix(name, "manifest-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		var m Manifest
		if err := json.Unmarshal(data, &m); err != nil {
			continue
		}
		out = append(out, &m)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Sweep < out[b].Sweep })
	return out, nil
}
