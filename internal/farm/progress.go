package farm

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Reporter prints live fleet progress with an ETA. It reads the host
// wall clock and therefore lives strictly on the host side of the
// determinism boundary: nothing it produces feeds back into results,
// caches, or manifests. All methods are safe on a nil receiver, so farm
// internals call it unconditionally.
type Reporter struct {
	w io.Writer

	mu sync.Mutex
	//senss-lint:guardedby mu
	total int
	//senss-lint:guardedby mu
	done int
	//senss-lint:guardedby mu
	cached int
	//senss-lint:guardedby mu
	failed int
	//senss-lint:guardedby mu
	start time.Time
}

// NewReporter builds a reporter writing carriage-return progress lines
// to w (conventionally os.Stderr).
func NewReporter(w io.Writer) *Reporter { return &Reporter{w: w} }

// Start begins a fleet of total jobs, cached of which are already
// served.
func (r *Reporter) Start(total, cached int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total, r.done, r.cached, r.failed = total, cached, cached, 0
	r.start = time.Now()
	r.line()
}

// JobDone records one completed simulation.
func (r *Reporter) JobDone(ok bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.done++
	if !ok {
		r.failed++
	}
	r.line()
}

// Finish terminates the progress line.
func (r *Reporter) Finish() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total == 0 {
		return
	}
	fmt.Fprintf(r.w, "\rfarm: %d/%d jobs done (%d cached, %d failed) in %s%s\n",
		r.done, r.total, r.cached, r.failed,
		time.Since(r.start).Round(time.Millisecond), clearEOL)
}

// clearEOL pads over residue of a longer previous line.
const clearEOL = "          "

// line rewrites the in-place progress line; the ETA extrapolates the
// mean wall time of the simulations completed so far.
func (r *Reporter) line() {
	computed := r.done - r.cached
	eta := ""
	if computed > 0 && r.done < r.total {
		per := time.Since(r.start) / time.Duration(computed)
		eta = fmt.Sprintf(" eta %s", (time.Duration(r.total-r.done) * per).Round(100*time.Millisecond))
	}
	fmt.Fprintf(r.w, "\rfarm: %d/%d jobs (%d cached, %d failed)%s%s",
		r.done, r.total, r.cached, r.failed, eta, clearEOL)
}
