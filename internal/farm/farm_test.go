package farm

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"senss/internal/machine"
	"senss/internal/stats"
	"senss/internal/workload"
)

// testJob builds a distinct job by varying the machine seed.
func testJob(seed uint64) Job {
	cfg := machine.DefaultConfig()
	cfg.Seed = seed
	return Job{Workload: "falseshare", Size: workload.SizeTest, Config: cfg, Figure: "test"}
}

// countingRunner returns a fake runner that tallies executions per job
// hash and synthesizes a deterministic Run from the seed.
func countingRunner(calls *sync.Map) RunFunc {
	return func(j Job) (stats.Run, error) {
		c, _ := calls.LoadOrStore(j.Hash(), new(atomic.Int64))
		c.(*atomic.Int64).Add(1)
		return stats.Run{Workload: j.Workload, Cycles: j.Config.Seed * 1000}, nil
	}
}

func callCount(calls *sync.Map, hash string) int64 {
	c, ok := calls.Load(hash)
	if !ok {
		return 0
	}
	return c.(*atomic.Int64).Load()
}

func TestHashStableAndDiscriminating(t *testing.T) {
	a, b := testJob(1), testJob(1)
	if a.Hash() != b.Hash() {
		t.Fatalf("equal jobs hash differently: %s vs %s", a.Hash(), b.Hash())
	}
	if len(a.Hash()) != 32 {
		t.Fatalf("hash length = %d, want 32", len(a.Hash()))
	}
	c := testJob(2)
	if a.Hash() == c.Hash() {
		t.Fatal("distinct seeds collide")
	}
	d := a
	d.Figure = "other"
	if a.Hash() != d.Hash() {
		t.Fatal("figure tag must not enter the hash (it is provenance only)")
	}
	e := a
	e.Config.Security.Mode = machine.SecurityBus
	if a.Hash() == e.Hash() {
		t.Fatal("security mode must enter the hash")
	}
}

func TestRunDedupesAndCaches(t *testing.T) {
	f := NewMem(4)
	var calls sync.Map
	f.SetRunner(countingRunner(&calls))

	jobs := []Job{testJob(1), testJob(2), testJob(1), testJob(2), testJob(1)}
	results, err := f.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2 (deduplicated)", len(results))
	}
	for _, j := range []Job{testJob(1), testJob(2)} {
		if n := callCount(&calls, j.Hash()); n != 1 {
			t.Errorf("job %s simulated %d times, want exactly 1", j, n)
		}
	}

	// A second fleet over the same configs is served from cache.
	results2, err := f.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for h, r := range results2 {
		if !r.Cached {
			t.Errorf("second run of %s not served from cache", h)
		}
		if r.Run.Cycles != results[h].Run.Cycles {
			t.Errorf("cached result diverged for %s", h)
		}
	}
}

func TestPanicIsolationAndRetry(t *testing.T) {
	f := NewMem(2)
	var firstAttempt sync.Map
	flaky := testJob(7)
	f.SetRunner(func(j Job) (stats.Run, error) {
		if j.Hash() == flaky.Hash() {
			if _, loaded := firstAttempt.LoadOrStore(j.Hash(), true); !loaded {
				panic("transient explosion")
			}
		}
		return stats.Run{Cycles: 42}, nil
	})
	results, err := f.Run([]Job{flaky, testJob(8)})
	if err != nil {
		t.Fatalf("retry should have recovered the panicking job: %v", err)
	}
	res := results[flaky.Hash()]
	if res.Attempts != 2 {
		t.Errorf("flaky job attempts = %d, want 2", res.Attempts)
	}
	if res.Run.Cycles != 42 {
		t.Errorf("flaky job result = %d, want 42", res.Run.Cycles)
	}
}

func TestPersistentFailureConfined(t *testing.T) {
	f := NewMem(2)
	bad := testJob(9)
	f.SetRunner(func(j Job) (stats.Run, error) {
		if j.Hash() == bad.Hash() {
			panic("deterministic explosion")
		}
		return stats.Run{Cycles: 1}, nil
	})
	results, err := f.Run([]Job{bad, testJob(10), testJob(11)})
	if err == nil {
		t.Fatal("want aggregate error for the failing job")
	}
	if !strings.Contains(err.Error(), "1 of 3 jobs failed") {
		t.Errorf("aggregate error = %q", err)
	}
	if !strings.Contains(results[bad.Hash()].Err, "panicked") {
		t.Errorf("failure not recorded as panic: %q", results[bad.Hash()].Err)
	}
	for _, good := range []Job{testJob(10), testJob(11)} {
		if results[good.Hash()].Err != "" {
			t.Errorf("healthy job %s infected by neighbour's panic", good)
		}
	}
}

func TestErrorRetrySkippedWhenDisabled(t *testing.T) {
	f, err := New(Options{Workers: 1, Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	var calls sync.Map
	f.SetRunner(func(j Job) (stats.Run, error) {
		c, _ := calls.LoadOrStore(j.Hash(), new(atomic.Int64))
		c.(*atomic.Int64).Add(1)
		return stats.Run{}, fmt.Errorf("boom")
	})
	j := testJob(3)
	if _, err := f.Run([]Job{j}); err == nil {
		t.Fatal("want error")
	}
	if n := callCount(&calls, j.Hash()); n != 1 {
		t.Fatalf("Retries:-1 ran job %d times, want 1", n)
	}
}

func TestGetComputesOnceThenHits(t *testing.T) {
	f := NewMem(1)
	var calls sync.Map
	f.SetRunner(countingRunner(&calls))
	j := testJob(5)
	for i := 0; i < 3; i++ {
		run, err := f.Get(j)
		if err != nil {
			t.Fatal(err)
		}
		if run.Cycles != 5000 {
			t.Fatalf("Get result = %d, want 5000", run.Cycles)
		}
	}
	if n := callCount(&calls, j.Hash()); n != 1 {
		t.Fatalf("Get simulated %d times, want 1", n)
	}
}

func TestRunSweepManifestAndResume(t *testing.T) {
	dir := t.TempDir()
	f, err := New(Options{Workers: 2, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var calls sync.Map
	f.SetRunner(countingRunner(&calls))

	jobs := []Job{testJob(1), testJob(2), testJob(3)}
	m, results, err := f.RunSweep("resume-test", jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 || len(m.Jobs) != 3 {
		t.Fatalf("results=%d manifest=%d, want 3", len(results), len(m.Jobs))
	}
	if done, failed, pending := m.Counts(); done != 3 || failed != 0 || pending != 0 {
		t.Fatalf("counts = %d/%d/%d, want 3/0/0", done, failed, pending)
	}

	// A fresh farm over the same directory resumes: nothing re-simulates.
	f2, err := New(Options{Workers: 2, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var calls2 sync.Map
	f2.SetRunner(countingRunner(&calls2))
	m2, results2, err := f2.RunSweep("resume-test", jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if n := callCount(&calls2, j.Hash()); n != 0 {
			t.Errorf("resumed sweep re-simulated %s %d times", j, n)
		}
		if !results2[j.Hash()].Cached {
			t.Errorf("resumed job %s not marked cached", j)
		}
	}

	// Manifests from the cold and resumed runs are byte-identical.
	b1, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := m2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Errorf("cold and resumed manifests differ:\n%s\nvs\n%s", b1, b2)
	}

	// The on-disk manifest round-trips.
	loaded, err := LoadManifest(dir, "resume-test")
	if err != nil || loaded == nil {
		t.Fatalf("LoadManifest: %v, %v", loaded, err)
	}
	if len(loaded.Jobs) != 3 {
		t.Fatalf("loaded manifest has %d jobs", len(loaded.Jobs))
	}
}

func TestManifestIdenticalAcrossWorkerCounts(t *testing.T) {
	jobs := make([]Job, 0, 12)
	for seed := uint64(1); seed <= 12; seed++ {
		jobs = append(jobs, testJob(seed))
	}
	var encodings []string
	for _, workers := range []int{1, 8} {
		dir := t.TempDir()
		f, err := New(Options{Workers: workers, CacheDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		var calls sync.Map
		f.SetRunner(countingRunner(&calls))
		m, _, err := f.RunSweep("det", jobs)
		if err != nil {
			t.Fatal(err)
		}
		b, err := m.Encode()
		if err != nil {
			t.Fatal(err)
		}
		encodings = append(encodings, string(b))
	}
	if encodings[0] != encodings[1] {
		t.Errorf("manifests differ between workers=1 and workers=8:\n%s\nvs\n%s",
			encodings[0], encodings[1])
	}
}

// TestDefaultRunnerRealSimulation exercises the driver-backed default
// runner end to end on one small real job.
func TestDefaultRunnerRealSimulation(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Procs = 2
	cfg.Coherence.L1Size = 4 << 10
	cfg.Coherence.L2Size = 16 << 10
	cfg.CPU.CodeBytes = 2 << 10
	f := NewMem(1)
	run, err := f.Get(Job{Workload: "falseshare", Size: workload.SizeTest, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if run.Cycles == 0 || run.BusTotal == 0 {
		t.Fatalf("implausible run: %+v", run)
	}
}
