package farm

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"senss/internal/driver"
	"senss/internal/stats"
)

// RunFunc executes one job. The default runner is driver.Run — the same
// implementation behind the public senss.RunWorkload facade; tests
// substitute instrumented runners.
type RunFunc func(Job) (stats.Run, error)

// Options configure a Farm. The zero value is a sensible default:
// GOMAXPROCS workers, memory-only cache, one retry after a panic.
type Options struct {
	// Workers bounds how many simulations run concurrently; <= 0 selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// CacheDir is the on-disk result cache directory; "" keeps results
	// in memory only (no files are ever written).
	CacheDir string
	// Retries is the number of extra attempts after a panicking or
	// failing job; 0 selects the default of 1, negative disables retry.
	Retries int
	// Progress, when non-nil, receives live fleet progress and ETA.
	Progress *Reporter
}

// Farm runs fleets of jobs through a bounded worker pool over a shared
// result cache.
type Farm struct {
	workers  int
	retries  int
	cache    *Cache
	progress *Reporter
	run      RunFunc
}

// New builds a farm; it fails only when the cache directory cannot be
// created.
func New(opts Options) (*Farm, error) {
	cache, err := NewCache(opts.CacheDir)
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	retries := opts.Retries
	if retries == 0 {
		retries = 1
	} else if retries < 0 {
		retries = 0
	}
	return &Farm{
		workers:  workers,
		retries:  retries,
		cache:    cache,
		progress: opts.Progress,
		run:      func(j Job) (stats.Run, error) { return driver.Run(j.Workload, j.Size, j.Config) },
	}, nil
}

// NewMem returns a memory-only farm; workers <= 0 selects GOMAXPROCS.
func NewMem(workers int) *Farm {
	f, err := New(Options{Workers: workers})
	if err != nil {
		// NewCache("") cannot fail.
		panic(err)
	}
	return f
}

// SetRunner substitutes the job execution function (tests).
func (f *Farm) SetRunner(fn RunFunc) { f.run = fn }

// Cache exposes the underlying result cache (status and gc tooling).
func (f *Farm) Cache() *Cache { return f.cache }

// Workers returns the pool bound.
func (f *Farm) Workers() int { return f.workers }

// Result is the outcome of one job.
type Result struct {
	Job      Job
	Hash     string
	Run      stats.Run
	Cached   bool // served from the cache without simulating
	Attempts int  // simulation attempts (0 when cached)
	Err      string
}

// Run executes the jobs — deduplicated by content hash, cache consulted
// first, misses fanned out across the worker pool — and returns every
// result keyed by job hash. Individual job failures do not abort the
// fleet; they are recorded per-result and folded into one deterministic
// aggregate error.
func (f *Farm) Run(jobs []Job) (map[string]Result, error) {
	results, _ := f.runAll(jobs, nil)
	return results, failureError(results)
}

// Warm ensures every job is computed and cached, discarding the results.
func (f *Farm) Warm(jobs []Job) error {
	_, err := f.Run(jobs)
	return err
}

// Get returns the result of a single job, computing and caching it if
// absent. Single-job lookups bypass the pool and the progress reporter.
func (f *Farm) Get(j Job) (stats.Run, error) {
	h := j.Hash()
	if run, ok := f.cache.Get(h); ok {
		return run, nil
	}
	res := f.runOne(j, h)
	if res.Err != "" {
		return res.Run, errors.New(res.Err)
	}
	return res.Run, nil
}

// RunSweep executes the jobs as a named, resumable sweep: a manifest in
// the cache directory tracks per-job status and is rewritten atomically
// after every completion. Re-running an interrupted sweep re-enumerates
// the same jobs; those recorded done with live cache entries are served
// without simulating. The returned manifest is in its final, canonical
// (hash-sorted) form.
func (f *Farm) RunSweep(sweep string, jobs []Job) (*Manifest, map[string]Result, error) {
	unique, hashes := dedupe(jobs)
	m := newManifest(sweep, unique, hashes)
	dir := f.cache.Dir()

	// Adopt completed work from a previous interrupted attempt. This is
	// bookkeeping only — the content-addressed cache is what actually
	// short-circuits the recompute — but it preserves failure records.
	if prev, err := LoadManifest(dir, sweep); err == nil && prev != nil {
		for _, pe := range prev.Jobs {
			if pe.Status == StatusDone && f.cache.Has(pe.Hash) {
				m.setStatus(pe.Hash, StatusDone, "")
			}
		}
	}

	var mu sync.Mutex
	persist := func() {
		if dir == "" {
			return
		}
		// Incremental persistence is best-effort; the final write below
		// is the one whose error is surfaced.
		_ = m.write(dir)
	}
	persist()

	results, _ := f.runAll(unique, func(res Result) {
		mu.Lock()
		if res.Err == "" {
			m.setStatus(res.Hash, StatusDone, "")
		} else {
			m.setStatus(res.Hash, StatusFailed, res.Err)
		}
		persist()
		mu.Unlock()
	})

	// Canonical final state (also covers cached results, which the
	// callback path already marked done).
	for h, res := range results {
		if res.Err == "" {
			m.setStatus(h, StatusDone, "")
		} else {
			m.setStatus(h, StatusFailed, res.Err)
		}
	}
	if dir != "" {
		if err := m.write(dir); err != nil {
			return m, results, err
		}
	}
	return m, results, failureError(results)
}

// runAll is the pool core: dedupe, cache check, bounded fan-out. onDone,
// when non-nil, observes every result (cached ones immediately, computed
// ones as they finish, from worker goroutines).
func (f *Farm) runAll(jobs []Job, onDone func(Result)) (map[string]Result, []Job) {
	unique, hashes := dedupe(jobs)
	results := make(map[string]Result, len(unique))
	var todo []Job
	var todoHashes []string
	for i, j := range unique {
		h := hashes[i]
		if run, ok := f.cache.Get(h); ok {
			res := Result{Job: j, Hash: h, Run: run, Cached: true}
			results[h] = res
			if onDone != nil {
				onDone(res)
			}
		} else {
			todo = append(todo, j)
			todoHashes = append(todoHashes, h)
		}
	}
	f.progress.Start(len(unique), len(unique)-len(todo))
	if len(todo) > 0 {
		var mu sync.Mutex
		type task struct {
			job  Job
			hash string
		}
		ch := make(chan task)
		var wg sync.WaitGroup
		workers := f.workers
		if workers > len(todo) {
			workers = len(todo)
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for t := range ch {
					res := f.runOne(t.job, t.hash)
					mu.Lock()
					results[t.hash] = res
					mu.Unlock()
					if onDone != nil {
						onDone(res)
					}
					f.progress.JobDone(res.Err == "")
				}
			}()
		}
		for i, j := range todo {
			ch <- task{job: j, hash: todoHashes[i]}
		}
		close(ch)
		wg.Wait()
	}
	f.progress.Finish()
	return results, todo
}

// runOne executes one job with panic isolation and retry, caching the
// result on success.
func (f *Farm) runOne(j Job, hash string) Result {
	res := Result{Job: j, Hash: hash}
	var err error
	for attempt := 0; attempt <= f.retries; attempt++ {
		res.Attempts = attempt + 1
		var run stats.Run
		run, err = f.exec(j)
		if err == nil {
			err = f.cache.Put(j, hash, run)
		}
		if err == nil {
			res.Run = run
			return res
		}
	}
	res.Err = err.Error()
	return res
}

// exec invokes the runner with panic isolation: a panicking simulation
// (or a runner bug) becomes an error confined to its job, so one bad
// configuration cannot take down a whole sweep.
func (f *Farm) exec(j Job) (run stats.Run, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("farm: job %s (%s) panicked: %v", j.Hash(), j, r)
		}
	}()
	return f.run(j)
}

// failureError folds failed results into one deterministic error
// (ordered by hash), or nil when every job succeeded.
func failureError(results map[string]Result) error {
	var failed []string
	for h, r := range results {
		if r.Err != "" {
			failed = append(failed, h)
		}
	}
	if len(failed) == 0 {
		return nil
	}
	sort.Strings(failed)
	first := results[failed[0]]
	return fmt.Errorf("farm: %d of %d jobs failed; first (%s, job %s): %s",
		len(failed), len(results), first.Hash, first.Job, first.Err)
}
