package farm

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"senss/internal/stats"
)

// CacheVersion stamps every on-disk entry and every manifest. It must
// change whenever a cached result could disagree with what the current
// build would compute: bump the golden suffix when the timing model
// moves (the pinned cycle counts in golden_test.go change) or when the
// stats.Run schema changes shape. Entries carrying any other version are
// treated as misses and swept by GC.
const CacheVersion = "farm-v1/golden-50895"

// entry is the on-disk representation of one cached result.
type entry struct {
	Version  string    `json:"version"`
	Hash     string    `json:"hash"`
	Workload string    `json:"workload"`
	Figure   string    `json:"figure,omitempty"`
	Run      stats.Run `json:"run"`
}

// CacheStats counts outcomes over the life of a Cache.
type CacheStats struct {
	Hits     uint64 `json:"hits"`      // served without simulating (either layer)
	DiskHits uint64 `json:"disk_hits"` // subset of Hits that came off disk
	Misses   uint64 `json:"misses"`
	Corrupt  uint64 `json:"corrupt"` // unreadable or version-stale entries (counted as misses)
}

// Cache is the two-layer result store: an in-memory map in front of an
// optional content-addressed directory of JSON files, one file per job
// hash. An empty directory name keeps results in memory only.
type Cache struct {
	dir string

	mu sync.Mutex
	//senss-lint:guardedby mu
	mem map[string]stats.Run
	//senss-lint:guardedby mu
	cnts CacheStats
}

// NewCache opens (creating if needed) the cache directory; dir == ""
// selects a memory-only cache and cannot fail.
func NewCache(dir string) (*Cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("farm: creating cache dir: %w", err)
		}
	}
	return &Cache{dir: dir, mem: make(map[string]stats.Run)}, nil
}

// Dir returns the backing directory ("" when memory-only).
func (c *Cache) Dir() string { return c.dir }

// path is the entry file for a job hash.
func (c *Cache) path(hash string) string { return filepath.Join(c.dir, hash+".json") }

// Get returns the cached run for hash. A disk entry that is truncated,
// garbled, mis-addressed, or stamped with a different CacheVersion is a
// miss — the job recomputes and the entry is rewritten — never an error.
func (c *Cache) Get(hash string) (stats.Run, bool) {
	c.mu.Lock()
	if run, ok := c.mem[hash]; ok {
		c.cnts.Hits++
		c.mu.Unlock()
		return run, true
	}
	c.mu.Unlock()

	if c.dir != "" {
		if e, ok := c.readEntry(c.path(hash), hash); ok {
			c.mu.Lock()
			c.mem[hash] = e.Run
			c.cnts.Hits++
			c.cnts.DiskHits++
			c.mu.Unlock()
			return e.Run, true
		}
	}
	c.mu.Lock()
	c.cnts.Misses++
	c.mu.Unlock()
	return stats.Run{}, false
}

// readEntry loads and validates one entry file; corruption of any kind
// is tolerated by reporting !ok (and counting it when the file existed).
func (c *Cache) readEntry(path, wantHash string) (entry, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return entry{}, false
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil || e.Version != CacheVersion || (wantHash != "" && e.Hash != wantHash) {
		c.mu.Lock()
		c.cnts.Corrupt++
		c.mu.Unlock()
		return entry{}, false
	}
	return e, true
}

// Put stores a result in both layers. The disk write goes through a
// temp file and an atomic rename, so concurrent readers and a crash
// mid-write can never observe a partial entry.
func (c *Cache) Put(j Job, hash string, run stats.Run) error {
	c.mu.Lock()
	c.mem[hash] = run
	c.mu.Unlock()
	if c.dir == "" {
		return nil
	}
	e := entry{Version: CacheVersion, Hash: hash, Workload: j.Workload, Figure: j.Figure, Run: run}
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return fmt.Errorf("farm: encoding cache entry: %w", err)
	}
	return atomicWrite(c.path(hash), append(data, '\n'))
}

// Has reports whether hash is resident in either layer (without
// promoting disk entries or touching the counters).
func (c *Cache) Has(hash string) bool {
	c.mu.Lock()
	_, ok := c.mem[hash]
	c.mu.Unlock()
	if ok {
		return true
	}
	if c.dir == "" {
		return false
	}
	_, ok = c.readEntry(c.path(hash), hash)
	return ok
}

// Stats returns a snapshot of the hit/miss counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cnts
}

// DiskEntries returns the hashes of the valid on-disk entries, in sorted
// (directory) order, plus how many files were skipped as invalid.
func (c *Cache) DiskEntries() (hashes []string, invalid int, err error) {
	if c.dir == "" {
		return nil, 0, nil
	}
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		return nil, 0, err
	}
	for _, de := range ents {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasPrefix(name, "manifest-") {
			continue
		}
		hash := strings.TrimSuffix(name, ".json")
		if _, ok := c.readEntry(filepath.Join(c.dir, name), hash); ok {
			hashes = append(hashes, hash)
		} else {
			invalid++
		}
	}
	return hashes, invalid, nil
}

// GC sweeps the cache directory: temp-file leftovers and invalid or
// version-stale entries are always removed; all == true additionally
// removes every valid entry and every sweep manifest. It returns how
// many files were removed.
func (c *Cache) GC(all bool) (removed int, err error) {
	if c.dir == "" {
		c.mu.Lock()
		if all {
			removed = len(c.mem)
			c.mem = make(map[string]stats.Run)
		}
		c.mu.Unlock()
		return removed, nil
	}
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		return 0, err
	}
	for _, de := range ents {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		path := filepath.Join(c.dir, name)
		drop := false
		switch {
		case strings.Contains(name, ".tmp"):
			drop = true // interrupted atomic write
		case strings.HasPrefix(name, "manifest-") && strings.HasSuffix(name, ".json"):
			drop = all
		case strings.HasSuffix(name, ".json"):
			hash := strings.TrimSuffix(name, ".json")
			_, valid := c.readEntry(path, hash)
			drop = all || !valid
		}
		if !drop {
			continue
		}
		if err := os.Remove(path); err != nil {
			return removed, err
		}
		removed++
	}
	if all {
		c.mu.Lock()
		c.mem = make(map[string]stats.Run)
		c.mu.Unlock()
	}
	return removed, nil
}

// atomicWrite writes data to path via a sibling temp file and rename.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("farm: cache write: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		if werr != nil {
			return fmt.Errorf("farm: cache write: %w", werr)
		}
		return fmt.Errorf("farm: cache write: %w", cerr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("farm: cache write: %w", err)
	}
	return nil
}
