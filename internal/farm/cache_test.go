package farm

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"senss/internal/stats"
)

func TestCacheDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	j := testJob(1)
	h := j.Hash()
	want := stats.Run{Workload: "falseshare", Cycles: 12345, BusByKind: map[string]uint64{"read": 7}}
	if err := c1.Put(j, h, want); err != nil {
		t.Fatal(err)
	}

	// A fresh cache over the same directory serves the entry from disk.
	c2, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(h)
	if !ok {
		t.Fatal("disk entry not found")
	}
	if got.Cycles != want.Cycles || got.BusByKind["read"] != 7 {
		t.Fatalf("round trip mangled the run: %+v", got)
	}
	st := c2.Stats()
	if st.DiskHits != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want one disk hit", st)
	}

	// Second lookup is a memory hit.
	if _, ok := c2.Get(h); !ok {
		t.Fatal("promoted entry lost")
	}
	if st := c2.Stats(); st.Hits != 2 || st.DiskHits != 1 {
		t.Errorf("stats after promotion = %+v", st)
	}
}

// TestCachePoisoningFallsBackToRecompute seeds every corruption class
// the cache must tolerate: a truncated entry, garbage bytes, a stale
// version stamp, and an entry filed under the wrong hash. Each must read
// as a miss (recompute), never an error or a crash.
func TestCachePoisoningFallsBackToRecompute(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	j := testJob(1)
	h := j.Hash()
	if err := c.Put(j, h, stats.Run{Cycles: 99}); err != nil {
		t.Fatal(err)
	}
	valid, err := os.ReadFile(filepath.Join(dir, h+".json"))
	if err != nil {
		t.Fatal(err)
	}

	poison := map[string][]byte{
		"truncated":     valid[:len(valid)/2],
		"garbage":       []byte("\x00\xff not json at all"),
		"empty":         {},
		"stale-version": []byte(strings.Replace(string(valid), CacheVersion, "farm-v0/ancient", 1)),
	}
	for name, data := range poison {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(filepath.Join(dir, h+".json"), data, 0o644); err != nil {
				t.Fatal(err)
			}
			fresh, err := NewCache(dir)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := fresh.Get(h); ok {
				t.Fatal("poisoned entry served as a hit")
			}
			if st := fresh.Stats(); st.Misses != 1 {
				t.Errorf("stats = %+v, want one miss", st)
			}
			// The recompute path rewrites the entry and recovers.
			if err := fresh.Put(j, h, stats.Run{Cycles: 99}); err != nil {
				t.Fatal(err)
			}
			again, err := NewCache(dir)
			if err != nil {
				t.Fatal(err)
			}
			if run, ok := again.Get(h); !ok || run.Cycles != 99 {
				t.Fatalf("rewritten entry not served: ok=%v run=%+v", ok, run)
			}
		})
	}

	// Mis-addressed entry: valid JSON, wrong content address.
	other := filepath.Join(dir, strings.Repeat("ab", 16)+".json")
	if err := os.WriteFile(other, valid, 0o644); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fresh.Get(strings.Repeat("ab", 16)); ok {
		t.Fatal("mis-addressed entry served as a hit")
	}
}

// TestFarmRecomputesThroughPoisonedCache is the end-to-end satellite
// proof: a sweep whose disk cache has been truncated mid-entry recomputes
// the damaged job and completes, with no error surfaced.
func TestFarmRecomputesThroughPoisonedCache(t *testing.T) {
	dir := t.TempDir()
	f, err := New(Options{Workers: 2, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var calls sync.Map
	f.SetRunner(countingRunner(&calls))
	jobs := []Job{testJob(1), testJob(2)}
	if _, err := f.Run(jobs); err != nil {
		t.Fatal(err)
	}

	// Truncate one entry on disk.
	h := jobs[0].Hash()
	path := filepath.Join(dir, h+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:10], 0o644); err != nil {
		t.Fatal(err)
	}

	f2, err := New(Options{Workers: 2, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var calls2 sync.Map
	f2.SetRunner(countingRunner(&calls2))
	results, err := f2.Run(jobs)
	if err != nil {
		t.Fatalf("poisoned cache must recompute, not fail: %v", err)
	}
	if n := callCount(&calls2, h); n != 1 {
		t.Errorf("damaged job recomputed %d times, want 1", n)
	}
	if n := callCount(&calls2, jobs[1].Hash()); n != 0 {
		t.Errorf("intact job recomputed %d times, want 0", n)
	}
	if results[h].Run.Cycles != 1000 {
		t.Errorf("recomputed result = %+v", results[h].Run)
	}
	if st := f2.Cache().Stats(); st.Corrupt == 0 {
		t.Errorf("corruption not counted: %+v", st)
	}
}

func TestGCSweepsStaleAndTemp(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	j := testJob(1)
	if err := c.Put(j, j.Hash(), stats.Run{Cycles: 1}); err != nil {
		t.Fatal(err)
	}
	// Seed debris: an interrupted temp file, garbage, a stale manifest.
	for name, data := range map[string]string{
		"deadbeef.json.tmp123":                  "partial",
		"0123456789abcdef0123456789abcdef.json": "garbage",
		"manifest-old.json":                     `{"sweep":"old"}`,
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := c.GC(false)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Errorf("gc removed %d files, want 2 (temp + garbage; manifests kept)", removed)
	}
	if _, ok := c.Get(j.Hash()); !ok {
		t.Fatal("gc destroyed a valid entry")
	}

	removed, err = c.GC(true)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Errorf("gc -all removed %d files, want 2 (entry + manifest)", removed)
	}
	c2, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(j.Hash()); ok {
		t.Fatal("entry survived gc -all")
	}
}

func TestMemoryOnlyCacheWritesNothing(t *testing.T) {
	c, err := NewCache("")
	if err != nil {
		t.Fatal(err)
	}
	j := testJob(1)
	if err := c.Put(j, j.Hash(), stats.Run{Cycles: 5}); err != nil {
		t.Fatal(err)
	}
	if run, ok := c.Get(j.Hash()); !ok || run.Cycles != 5 {
		t.Fatalf("memory cache miss: ok=%v run=%+v", ok, run)
	}
	if hashes, invalid, err := c.DiskEntries(); err != nil || hashes != nil || invalid != 0 {
		t.Fatalf("memory-only cache reports disk entries: %v %d %v", hashes, invalid, err)
	}
}
