// Package farm orchestrates fleets of simulator runs: content-addressed
// jobs deduplicated by configuration hash, a bounded worker pool (only
// the fleet is concurrent — each simulation stays single-goroutine
// deterministic), a two-layer result cache (in-memory map in front of an
// on-disk directory with atomic writes and corruption-tolerant reads),
// resumable sweep manifests, per-job panic isolation with retry, and a
// progress/ETA reporter.
//
// farm is an orchestration package: it sits on the nondeterm lint
// allowlist (internal/lint/nondeterm.go), so goroutines, sync
// primitives, and wall-clock reads are permitted here while remaining
// banned in the simulator proper. The determinism boundary is enforced
// structurally instead: everything observable — result maps, manifests,
// the tables assembled from them — is keyed and ordered by job hash, so
// sweep outputs are byte-identical regardless of worker count,
// completion order, or cache temperature.
package farm

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"senss/internal/crypto"
	"senss/internal/machine"
	"senss/internal/workload"
)

// Job is one simulator run: a workload at a problem scale under a
// machine configuration. Figure tags the sweep that requested the job
// (provenance only — it does not enter the hash, so identical
// configurations requested by different figures deduplicate to one run).
type Job struct {
	Workload string
	Size     workload.Size
	Config   machine.Config
	Figure   string
}

// Hash returns the job's content address: hex SHA-256, truncated to 32
// characters, over the canonical JSON encoding of (workload, size,
// config). machine.Config is a tree of plain value structs — no maps, no
// pointers — so encoding/json is canonical: field order is declaration
// order and equal configs encode to equal bytes. A change to the config
// schema changes hashes, which only invalidates cache entries; stale
// results are additionally fenced by the CacheVersion stamp.
func (j Job) Hash() string {
	cfg := j.Config
	// The crypto backend is part of the job identity (it names which
	// cipher implementation ran, so provenance stays honest), but "" and
	// the default name are the same backend and must share a cache entry.
	cfg.Security.Senss.Backend = crypto.Canonical(cfg.Security.Senss.Backend)
	payload, err := json.Marshal(struct {
		Workload string
		Size     workload.Size
		Config   machine.Config
	}{j.Workload, j.Size, cfg})
	if err != nil {
		// Config is a static value-struct tree; Marshal cannot fail on it.
		panic(fmt.Sprintf("farm: hashing job: %v", err))
	}
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:16])
}

// String labels the job for progress lines and error messages.
func (j Job) String() string {
	sec := "base"
	if j.Config.Security.Mode != machine.SecurityOff {
		sec = "secured"
	}
	return fmt.Sprintf("%s/%dP/%dB/%s", j.Workload, j.Config.Procs, j.Config.Coherence.L2Size, sec)
}

// Dedupe returns the jobs with duplicate content hashes removed,
// preserving first-occurrence order.
func Dedupe(jobs []Job) ([]Job, []string) { return dedupe(jobs) }

// dedupe returns the jobs with duplicate hashes removed, preserving
// first-occurrence order, paired with each survivor's hash.
func dedupe(jobs []Job) ([]Job, []string) {
	seen := make(map[string]bool, len(jobs))
	unique := make([]Job, 0, len(jobs))
	hashes := make([]string, 0, len(jobs))
	for _, j := range jobs {
		h := j.Hash()
		if seen[h] {
			continue
		}
		seen[h] = true
		unique = append(unique, j)
		hashes = append(hashes, h)
	}
	return unique, hashes
}
