package farm

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"senss/internal/stats"
)

// TestGCTable pins the full GC decision matrix over one directory
// population: which file classes survive a conservative sweep, which
// survive -all, and what the removal count reports.
func TestGCTable(t *testing.T) {
	staleEntry := func(hash string) string {
		data, _ := json.Marshal(entry{Version: "farm-v0/obsolete", Hash: hash})
		return string(data)
	}
	cases := []struct {
		name        string
		all         bool
		debris      map[string]string // extra files written verbatim
		putValid    bool              // also Put one valid entry
		wantRemoved int
		wantKept    []string
		wantGone    []string
	}{
		{
			name: "empty directory is a no-op",
		},
		{
			name: "temp debris always removed",
			debris: map[string]string{
				"deadbeef.json.tmp42": "partial write",
				"other.tmp":           "also partial",
			},
			wantRemoved: 2,
			wantGone:    []string{"deadbeef.json.tmp42", "other.tmp"},
		},
		{
			name: "garbage and stale-version entries removed, valid kept",
			debris: map[string]string{
				"0123456789abcdef0123456789abcdef.json": "not json at all",
				"fedcba9876543210fedcba9876543210.json": staleEntry("fedcba9876543210fedcba9876543210"),
			},
			putValid:    true,
			wantRemoved: 2,
			wantGone: []string{
				"0123456789abcdef0123456789abcdef.json",
				"fedcba9876543210fedcba9876543210.json",
			},
		},
		{
			name: "manifests and bystanders survive a conservative sweep",
			debris: map[string]string{
				"manifest-fig6-test.json": `{"sweep":"fig6-test"}`,
				"README":                  "not cache data",
			},
			putValid: true,
			wantKept: []string{"manifest-fig6-test.json", "README"},
		},
		{
			name: "all removes entries and manifests but not bystanders",
			all:  true,
			debris: map[string]string{
				"manifest-fig6-test.json": `{"sweep":"fig6-test"}`,
				"README":                  "not cache data",
			},
			putValid:    true,
			wantRemoved: 1, // the manifest; the valid entry is counted below
			wantKept:    []string{"README"},
			wantGone:    []string{"manifest-fig6-test.json"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			c, err := NewCache(dir)
			if err != nil {
				t.Fatal(err)
			}
			j := testJob(1)
			if tc.putValid {
				if err := c.Put(j, j.Hash(), stats.Run{Cycles: 1}); err != nil {
					t.Fatal(err)
				}
			}
			for name, data := range tc.debris {
				if err := os.WriteFile(filepath.Join(dir, name), []byte(data), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			removed, err := c.GC(tc.all)
			if err != nil {
				t.Fatal(err)
			}
			want := tc.wantRemoved
			if tc.putValid && tc.all {
				want++ // the valid entry goes too
			}
			if removed != want {
				t.Errorf("GC(all=%v) removed %d files, want %d", tc.all, removed, want)
			}
			for _, name := range tc.wantKept {
				if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
					t.Errorf("%s should have survived: %v", name, err)
				}
			}
			for _, name := range tc.wantGone {
				if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
					t.Errorf("%s should have been removed", name)
				}
			}
			if tc.putValid {
				fresh, err := NewCache(dir) // bypass the memory layer
				if err != nil {
					t.Fatal(err)
				}
				if _, ok := fresh.Get(j.Hash()); ok == tc.all {
					t.Errorf("valid entry present=%v after GC(all=%v)", ok, tc.all)
				}
			}
		})
	}
}

// TestGCMemoryOnly: with no backing directory, GC touches no files and
// clears the memory layer only under -all.
func TestGCMemoryOnly(t *testing.T) {
	for _, all := range []bool{false, true} {
		c, err := NewCache("")
		if err != nil {
			t.Fatal(err)
		}
		j := testJob(1)
		if err := c.Put(j, j.Hash(), stats.Run{Cycles: 9}); err != nil {
			t.Fatal(err)
		}
		removed, err := c.GC(all)
		if err != nil {
			t.Fatal(err)
		}
		wantRemoved := 0
		if all {
			wantRemoved = 1
		}
		if removed != wantRemoved {
			t.Errorf("GC(all=%v) on memory cache removed %d, want %d", all, removed, wantRemoved)
		}
		if _, ok := c.Get(j.Hash()); ok == all {
			t.Errorf("memory entry present=%v after GC(all=%v)", ok, all)
		}
	}
}
