package serve

import (
	"fmt"
	"sync"

	"senss/internal/core"
)

// QuotaError is the typed group-exhaustion error: either the service-wide
// SHU group matrix (paper §3.2, 1024 concurrent secured groups) or one
// tenant's slice of it is full. It unwraps to core.ErrGroupsExhausted so
// callers can errors.Is against the simulator's own exhaustion sentinel,
// and maps to HTTP 429 with code "groups_exhausted".
type QuotaError struct {
	Tenant    string // "" for global exhaustion
	Requested int
	InUse     int // current occupancy of the exhausted scope
	Limit     int // capacity of the exhausted scope
}

func (e *QuotaError) Error() string {
	if e.Tenant == "" {
		return fmt.Sprintf("serve: SHU group table exhausted (%d/%d in use, %d requested)",
			e.InUse, e.Limit, e.Requested)
	}
	return fmt.Sprintf("serve: tenant %q group quota exhausted (%d/%d in use, %d requested)",
		e.Tenant, e.InUse, e.Limit, e.Requested)
}

// Unwrap ties the serving-layer error to the SHU's own sentinel.
func (e *QuotaError) Unwrap() error { return core.ErrGroupsExhausted }

// Accountant is the service-wide SHU group allocator. Every hosted
// machine owns a private 1024-entry group table, but the service models
// the fleet as one shared matrix: secured sessions draw from a global
// capacity (default core.MaxGroups) and from their tenant's quota, so
// group exhaustion and per-tenant fairness become real served scenarios
// instead of per-machine trivia.
type Accountant struct {
	mu       sync.Mutex
	capacity int // immutable after construction
	quota    int // per-tenant limit; 0 = bounded only by capacity; immutable
	//senss-lint:guardedby mu
	inUse int
	//senss-lint:guardedby mu
	peak int
	//senss-lint:guardedby mu
	byTenant map[string]int
}

// NewAccountant builds an accountant with the given global capacity
// (<= 0 selects core.MaxGroups) and per-tenant quota (0 = unlimited).
func NewAccountant(capacity, tenantQuota int) *Accountant {
	if capacity <= 0 {
		capacity = core.MaxGroups
	}
	return &Accountant{
		capacity: capacity,
		quota:    tenantQuota,
		byTenant: make(map[string]int),
	}
}

// Acquire reserves n groups for the tenant, or fails with a *QuotaError
// naming the exhausted scope. n == 0 always succeeds.
func (a *Accountant) Acquire(tenant string, n int) error {
	if n == 0 {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.inUse+n > a.capacity {
		return &QuotaError{Requested: n, InUse: a.inUse, Limit: a.capacity}
	}
	if a.quota > 0 && a.byTenant[tenant]+n > a.quota {
		return &QuotaError{Tenant: tenant, Requested: n, InUse: a.byTenant[tenant], Limit: a.quota}
	}
	a.inUse += n
	a.byTenant[tenant] += n
	if a.inUse > a.peak {
		a.peak = a.inUse
	}
	return nil
}

// Release returns n groups from the tenant.
func (a *Accountant) Release(tenant string, n int) {
	if n == 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.inUse -= n
	if a.inUse < 0 {
		panic("serve: accountant released more groups than acquired")
	}
	a.byTenant[tenant] -= n
	if a.byTenant[tenant] <= 0 {
		delete(a.byTenant, tenant)
	}
}

// InUse returns the current global occupancy.
func (a *Accountant) InUse() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inUse
}

// Peak returns the high-water occupancy since construction.
func (a *Accountant) Peak() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak
}

// Capacity returns the global capacity.
func (a *Accountant) Capacity() int { return a.capacity }

// TenantQuota returns the per-tenant limit (0 = unlimited).
func (a *Accountant) TenantQuota() int { return a.quota }

// ByTenant returns a copy of the per-tenant occupancy map.
func (a *Accountant) ByTenant() map[string]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]int, len(a.byTenant))
	for k, v := range a.byTenant {
		out[k] = v
	}
	return out
}
