// Package serve hosts SENSS simulations behind an HTTP/JSON API: a
// multi-tenant session service in which each session is one
// incrementally executed machine (driver.Session). The pieces mirror
// the paper's resource model scaled to a fleet: a lock-striped session
// table keeps thousands of concurrent handlers off a global lock, a
// service-wide accountant treats the SHU group matrix (§3.2, 1024
// concurrent secured groups) as the scarce resource tenants draw quota
// from, and a bounded worker pool with non-blocking admission turns
// saturation into backpressure (HTTP 429 + Retry-After) instead of
// collapse. Simulations stay bit-deterministic: slicing through
// sim.Engine.RunUntil retires the identical event sequence a monolithic
// run would, so served stats are byte-identical to driver.Run.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"senss/internal/driver"
	"senss/internal/machine"
	"senss/internal/workload"
)

// newDriverSession is the session constructor, a variable so tests can
// substitute a build that panics and prove the pool confines it.
var newDriverSession = func(name string, size workload.Size, cfg machine.Config) (*driver.Session, error) {
	return driver.NewSession(name, size, cfg)
}

// Option defaults.
const (
	// DefaultStepCycles is the slice size when a step request leaves
	// Cycles zero: big enough to finish a small workload in a handful of
	// steps, small enough that one step never monopolizes a worker.
	DefaultStepCycles = 200_000
	// DefaultWorkers bounds concurrent simulation slices.
	DefaultWorkers = 8
	// DefaultBacklog is the admission waiting room beyond the workers.
	DefaultBacklog = 32
	// DefaultRetryAfter is the Retry-After hint on overload responses.
	DefaultRetryAfter = 1 * time.Second
)

// Options configures a Server. The zero value selects the defaults.
type Options struct {
	// Shards is the session-table stripe count (0 = DefaultShards).
	Shards int
	// Workers bounds concurrent simulation slices (0 = DefaultWorkers).
	Workers int
	// Backlog is the admission waiting room (< 0 = none, 0 = DefaultBacklog).
	Backlog int
	// StepCycles is the default slice size (0 = DefaultStepCycles).
	StepCycles uint64
	// MaxStepCycles caps a client-requested slice (0 = 10*StepCycles).
	MaxStepCycles uint64
	// GroupCapacity is the service-wide SHU group budget (0 = core.MaxGroups).
	GroupCapacity int
	// TenantQuota caps one tenant's share of the group budget (0 = none).
	TenantQuota int
	// IdleTimeout evicts sessions untouched for this long (0 = never).
	IdleTimeout time.Duration
	// SweepEvery is the janitor period (0 = no background janitor; Sweep
	// may still be called directly, which is how tests drive eviction).
	SweepEvery time.Duration
	// Now overrides the clock (tests). Nil = time.Now.
	Now func() time.Time
}

// Server is the session host. Create it with New, mount Handler, and
// Close it to tear down every session and stop the janitor.
type Server struct {
	opts    Options
	table   *Table
	quota   *Accountant
	pool    *Pool
	mux     *http.ServeMux
	now     func() time.Time
	evicted atomic.Uint64

	stop chan struct{}
	wg   sync.WaitGroup

	closeOnce sync.Once
}

// New builds a server from opts and starts the eviction janitor when
// both IdleTimeout and SweepEvery are set.
func New(opts Options) *Server {
	if opts.Workers == 0 {
		opts.Workers = DefaultWorkers
	}
	if opts.Backlog == 0 {
		opts.Backlog = DefaultBacklog
	}
	if opts.StepCycles == 0 {
		opts.StepCycles = DefaultStepCycles
	}
	if opts.MaxStepCycles == 0 {
		opts.MaxStepCycles = 10 * opts.StepCycles
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	s := &Server{
		opts:  opts,
		table: NewTable(opts.Shards),
		quota: NewAccountant(opts.GroupCapacity, opts.TenantQuota),
		pool:  NewPool(opts.Workers, opts.Backlog),
		mux:   http.NewServeMux(),
		now:   now,
		stop:  make(chan struct{}),
	}
	s.routes()
	if opts.IdleTimeout > 0 && opts.SweepEvery > 0 {
		s.wg.Add(1)
		go s.janitor()
	}
	return s
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	s.mux.HandleFunc("GET /v1/sessions", s.handleList)
	s.mux.HandleFunc("POST /v1/sessions/{id}/step", s.handleStep)
	s.mux.HandleFunc("POST /v1/sessions/{id}/pause", s.handlePause)
	s.mux.HandleFunc("POST /v1/sessions/{id}/resume", s.handleResume)
	s.mux.HandleFunc("GET /v1/sessions/{id}/stats", s.handleStats)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	s.mux.HandleFunc("GET /v1/server", s.handleServerStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP makes the server mountable directly.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close stops the janitor and tears down every session, releasing its
// groups. Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.stop)
		s.wg.Wait()
		for _, h := range s.table.Snapshot() {
			if _, ok := s.table.Delete(h.ID); ok {
				s.closeHosted(h)
			}
		}
	})
}

// closeHosted tears one session down and releases its quota exactly
// once (the close() winner releases).
func (s *Server) closeHosted(h *Hosted) {
	if h.close() {
		s.quota.Release(h.Tenant, h.groups)
	}
}

// janitor periodically evicts idle sessions.
func (s *Server) janitor() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.Sweep()
		}
	}
}

// Sweep evicts every session idle longer than IdleTimeout and returns
// how many it removed. Exposed so tests (and operators) can force a
// sweep with an injected clock instead of waiting on the ticker.
func (s *Server) Sweep() int {
	if s.opts.IdleTimeout <= 0 {
		return 0
	}
	cutoff := s.now().Add(-s.opts.IdleTimeout)
	n := 0
	for _, h := range s.table.Snapshot() {
		if h.idleSince().After(cutoff) {
			continue
		}
		if _, ok := s.table.Delete(h.ID); ok {
			s.closeHosted(h)
			s.evicted.Add(1)
			n++
		}
	}
	return n
}

// --- handlers ---

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var spec SessionSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("decoding session spec: %v", err), 0)
		return
	}
	if spec.Tenant == "" {
		writeErr(w, http.StatusBadRequest, "bad_request", "tenant is required", 0)
		return
	}
	if spec.Workload == "" {
		writeErr(w, http.StatusBadRequest, "bad_request", "workload is required", 0)
		return
	}
	size, err := spec.SizeVal()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	cfg, err := spec.Config()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	// Reserve the SHU groups before building anything: quota exhaustion
	// must not cost a machine assembly, and a failed build must give the
	// reservation back.
	if err := s.quota.Acquire(spec.Tenant, spec.Groups()); err != nil {
		var qe *QuotaError
		if errors.As(err, &qe) {
			writeErr(w, http.StatusTooManyRequests, "groups_exhausted", qe.Error(), int(DefaultRetryAfter/time.Second))
			return
		}
		writeErr(w, http.StatusInternalServerError, "internal", err.Error(), 0)
		return
	}
	var h *Hosted
	poolErr := s.pool.Do(func() error {
		drv, err := newDriverSession(spec.Workload, size, cfg)
		if err != nil {
			return err
		}
		h = newHosted(s.table.NewID(), spec, drv, s.now())
		return nil
	})
	if poolErr != nil {
		s.quota.Release(spec.Tenant, spec.Groups())
		if errors.Is(poolErr, ErrOverloaded) {
			writeOverloaded(w)
			return
		}
		// driver.NewSession rejects bad configs and unknown workloads with
		// errors, so anything here is a client mistake, not a crash.
		writeErr(w, http.StatusBadRequest, "bad_request", poolErr.Error(), 0)
		return
	}
	s.table.Put(h)
	writeJSON(w, http.StatusCreated, h.info())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	tenant := r.URL.Query().Get("tenant")
	var out []SessionInfo
	for _, h := range s.table.Snapshot() {
		if tenant != "" && h.Tenant != tenant {
			continue
		}
		out = append(out, h.info())
	}
	if out == nil {
		out = []SessionInfo{}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*Hosted, bool) {
	id := r.PathValue("id")
	h, ok := s.table.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "not_found", fmt.Sprintf("no session %q", id), 0)
		return nil, false
	}
	return h, true
}

// stepCycles resolves a client-requested slice against the server bounds.
func (s *Server) stepCycles(req StepRequest) uint64 {
	c := req.Cycles
	if c == 0 {
		c = s.opts.StepCycles
	}
	if c > s.opts.MaxStepCycles {
		c = s.opts.MaxStepCycles
	}
	return c
}

// stepOnce advances one session slice through the worker pool.
func (s *Server) stepOnce(h *Hosted, cycles uint64) (StepResponse, error) {
	var resp StepResponse
	err := s.pool.Do(func() error {
		var stepErr error
		resp, stepErr = h.step(cycles, s.now())
		return stepErr
	})
	if err != nil {
		// A panic escaping the simulation is confined to this session by
		// the pool; record it so the session reports failed, not wedged.
		if !errors.Is(err, ErrOverloaded) && !errors.Is(err, ErrPaused) && !errors.Is(err, errClosed) {
			h.fail(err)
		}
		return resp, err
	}
	return resp, nil
}

func (s *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	h, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req StepRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("decoding step request: %v", err), 0)
			return
		}
	}
	resp, err := s.stepOnce(h, s.stepCycles(req))
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, resp)
	case errors.Is(err, ErrOverloaded):
		writeOverloaded(w)
	case errors.Is(err, ErrPaused):
		writeErr(w, http.StatusConflict, "session_paused", err.Error(), 0)
	case errors.Is(err, errClosed):
		writeErr(w, http.StatusNotFound, "not_found", err.Error(), 0)
	default:
		writeErr(w, http.StatusInternalServerError, "internal", err.Error(), 0)
	}
}

func (s *Server) handlePause(w http.ResponseWriter, r *http.Request) {
	h, ok := s.lookup(w, r)
	if !ok {
		return
	}
	h.pause(s.now())
	writeJSON(w, http.StatusOK, h.info())
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	h, ok := s.lookup(w, r)
	if !ok {
		return
	}
	h.resume(s.now())
	writeJSON(w, http.StatusOK, h.info())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	h, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if r.URL.Query().Get("follow") == "true" {
		s.followStats(w, r, h)
		return
	}
	writeJSON(w, http.StatusOK, h.snapshot(s.now(), false))
}

// followStats drives the session to completion through the worker pool,
// streaming one ndjson stats snapshot per slice — the "watch my
// simulation converge" mode. The stream ends when the session finishes,
// pauses, disappears, or the client goes away. Overload waits politely
// for a worker instead of erroring: a follower is a background consumer.
func (s *Server) followStats(w http.ResponseWriter, r *http.Request, h *Hosted) {
	fl, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	emit := func() bool {
		if err := enc.Encode(h.snapshot(s.now(), true)); err != nil {
			return false
		}
		if canFlush {
			fl.Flush()
		}
		return true
	}
	if !emit() {
		return
	}
	cycles := s.opts.StepCycles
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.stop:
			return
		default:
		}
		resp, err := s.stepOnce(h, cycles)
		if errors.Is(err, ErrOverloaded) {
			t := time.NewTimer(50 * time.Millisecond)
			select {
			case <-r.Context().Done():
				t.Stop()
				return
			case <-s.stop:
				t.Stop()
				return
			case <-t.C:
			}
			continue
		}
		if !emit() || err != nil || resp.Done {
			return
		}
	}
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	h, ok := s.table.Delete(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "not_found", fmt.Sprintf("no session %q", id), 0)
		return
	}
	final := h.snapshot(s.now(), false)
	s.closeHosted(h)
	writeJSON(w, http.StatusOK, final)
}

func (s *Server) handleServerStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// Stats assembles the service-wide counters.
func (s *Server) Stats() ServerStats {
	byState := make(map[string]int)
	sessions := s.table.Snapshot()
	for _, h := range sessions {
		byState[h.stateNow().String()]++
	}
	return ServerStats{
		Sessions:       len(sessions),
		ByState:        byState,
		GroupsInUse:    s.quota.InUse(),
		GroupCapacity:  s.quota.Capacity(),
		GroupsByTenant: s.quota.ByTenant(),
		TenantQuota:    s.quota.TenantQuota(),
		Evicted:        s.evicted.Load(),
		InFlight:       s.pool.InFlight(),
		Workers:        s.pool.Workers(),
		Backlog:        s.pool.Backlog(),
	}
}

// --- response helpers ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, code, msg string, retryAfterSec int) {
	if retryAfterSec > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSec))
	}
	writeJSON(w, status, ErrorResponse{Code: code, Message: msg, RetryAfterSec: retryAfterSec})
}

func writeOverloaded(w http.ResponseWriter) {
	sec := int(DefaultRetryAfter / time.Second)
	writeErr(w, http.StatusTooManyRequests, "overloaded", ErrOverloaded.Error(), sec)
}
