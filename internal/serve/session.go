package serve

import (
	"errors"
	"sync"
	"time"

	"senss/internal/driver"
)

// State is a hosted session's lifecycle phase.
type State int

// Session states.
const (
	// StateRunning accepts step requests.
	StateRunning State = iota
	// StatePaused rejects steps until resumed.
	StatePaused
	// StateDone holds a finished, validated simulation.
	StateDone
	// StateFailed holds a simulation that ended in an error (security
	// halt, validation failure, limit, or a panic isolated by the pool).
	StateFailed
	// StateClosed marks a session torn down (deleted or evicted).
	StateClosed
)

// String names the state as the API serializes it.
func (s State) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StatePaused:
		return "paused"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateClosed:
		return "closed"
	}
	return "unknown"
}

// ErrPaused is returned by Hosted.step on a paused session (HTTP 409,
// code "session_paused").
var ErrPaused = errors.New("serve: session paused")

// errClosed is returned for operations on a torn-down session.
var errClosed = errors.New("serve: session closed")

// Hosted is one tenant session: a driver.Session plus serving metadata.
// The mutex serializes every touch of the underlying simulation — the
// sim core stays single-goroutine deterministic while the server's
// handlers and eviction janitor race around it.
type Hosted struct {
	ID     string
	Tenant string
	Spec   SessionSpec
	groups int // quota units held until close

	mu sync.Mutex
	//senss-lint:guardedby mu
	drv *driver.Session
	//senss-lint:guardedby mu
	state State
	//senss-lint:guardedby mu
	steps uint64
	//senss-lint:guardedby mu
	lastTouch time.Time
	//senss-lint:guardedby mu
	finalErr string
}

// newHosted wraps a started driver session.
func newHosted(id string, spec SessionSpec, drv *driver.Session, now time.Time) *Hosted {
	return &Hosted{
		ID:        id,
		Tenant:    spec.Tenant,
		Spec:      spec,
		groups:    spec.Groups(),
		drv:       drv,
		state:     StateRunning,
		lastTouch: now,
	}
}

// step advances the simulation one bounded slice and folds the outcome
// into the session state.
//
//senss-lint:ignore lockguard holding h.mu across drv.Step is the design: the per-session mutex serializes simulation slices so the sim core stays single-goroutine deterministic; blocking is bounded by the step cycle budget
func (h *Hosted) step(cycles uint64, now time.Time) (StepResponse, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.lastTouch = now
	switch h.state {
	case StatePaused:
		return h.stepResponseLocked(), ErrPaused
	case StateClosed:
		return h.stepResponseLocked(), errClosed
	case StateDone, StateFailed:
		// Stepping a finished session is an idempotent no-op: clients
		// polling step-until-done never race a 4xx at the finish line.
		return h.stepResponseLocked(), nil
	}
	done, err := h.drv.Step(cycles)
	h.steps++
	if done {
		if err != nil {
			h.state = StateFailed
			h.finalErr = err.Error()
		} else {
			h.state = StateDone
		}
	}
	return h.stepResponseLocked(), nil
}

func (h *Hosted) stepResponseLocked() StepResponse {
	return StepResponse{
		ID:     h.ID,
		State:  h.state.String(),
		Done:   h.state == StateDone || h.state == StateFailed,
		Cycles: h.drv.Cycles(),
		Steps:  h.steps,
	}
}

// fail records a pool-isolated panic as the session's terminal state.
func (h *Hosted) fail(err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state == StateRunning || h.state == StatePaused {
		h.state = StateFailed
		h.finalErr = err.Error()
	}
}

// pause moves a running session to paused (idempotent; finished and
// closed sessions are left alone, reported by the returned state).
func (h *Hosted) pause(now time.Time) State {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.lastTouch = now
	if h.state == StateRunning {
		h.state = StatePaused
	}
	return h.state
}

// resume moves a paused session back to running.
func (h *Hosted) resume(now time.Time) State {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.lastTouch = now
	if h.state == StatePaused {
		h.state = StateRunning
	}
	return h.state
}

// info returns the listing record.
func (h *Hosted) info() SessionInfo {
	h.mu.Lock()
	defer h.mu.Unlock()
	return SessionInfo{
		ID:       h.ID,
		Tenant:   h.Tenant,
		Workload: h.Spec.Workload,
		State:    h.state.String(),
		Groups:   h.groups,
		Cycles:   h.drv.Cycles(),
		Steps:    h.steps,
	}
}

// snapshot returns the incremental stats payload. Touch is false for
// observation-only reads (the eviction clock keeps ticking).
func (h *Hosted) snapshot(now time.Time, touch bool) StatsResponse {
	h.mu.Lock()
	defer h.mu.Unlock()
	if touch {
		h.lastTouch = now
	}
	return StatsResponse{
		ID:       h.ID,
		Tenant:   h.Tenant,
		Workload: h.Spec.Workload,
		State:    h.state.String(),
		Done:     h.state == StateDone || h.state == StateFailed,
		Cycles:   h.drv.Cycles(),
		Steps:    h.steps,
		Stats:    h.drv.Snapshot(),
		Oracle:   h.drv.OracleReport(),
		Error:    h.finalErr,
	}
}

// idleSince reports the last touch time.
func (h *Hosted) idleSince() time.Time {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lastTouch
}

// stateNow returns the current state.
func (h *Hosted) stateNow() State {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state
}

// close tears the session down (abort + zeroize via driver.Close) and
// reports whether this call performed the teardown — the caller that
// wins releases the quota.
//
//senss-lint:ignore lockguard holding h.mu across drv.Close is the design: teardown must exclude concurrent steps so zeroize-once is guaranteed, and the abort handshake it blocks on is bounded by one engine dispatch
func (h *Hosted) close() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state == StateClosed {
		return false
	}
	h.state = StateClosed
	h.drv.Close()
	return true
}
