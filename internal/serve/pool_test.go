package serve

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestPoolRunsTasks(t *testing.T) {
	p := NewPool(2, 2)
	ran := false
	if err := p.Do(func() error { ran = true; return nil }); err != nil {
		t.Fatalf("Do: %v", err)
	}
	if !ran {
		t.Fatal("task did not run")
	}
	wantErr := errors.New("boom")
	if err := p.Do(func() error { return wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("Do error = %v, want %v", err, wantErr)
	}
}

func TestPoolOverload(t *testing.T) {
	p := NewPool(1, 0)
	block := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = p.Do(func() error { close(started); <-block; return nil })
	}()
	<-started
	if err := p.Do(func() error { return nil }); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated Do = %v, want ErrOverloaded", err)
	}
	if got := p.InFlight(); got != 1 {
		t.Fatalf("InFlight = %d, want 1", got)
	}
	close(block)
	wg.Wait()
	if err := p.Do(func() error { return nil }); err != nil {
		t.Fatalf("Do after drain: %v", err)
	}
	if got := p.InFlight(); got != 0 {
		t.Fatalf("InFlight after drain = %d, want 0", got)
	}
}

// TestPoolBacklogAdmitsBeyondWorkers checks the waiting room: a task
// beyond the worker count is admitted (blocking) rather than rejected.
func TestPoolBacklogAdmitsBeyondWorkers(t *testing.T) {
	p := NewPool(1, 1)
	block := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = p.Do(func() error { close(started); <-block; return nil })
	}()
	<-started
	queuedRan := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = p.Do(func() error { close(queuedRan); return nil })
	}()
	// Wait until the queued task holds the second admission slot, then a
	// third task must bounce.
	for p.InFlight() != 2 {
		time.Sleep(time.Millisecond)
	}
	if err := p.Do(func() error { return nil }); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third Do = %v, want ErrOverloaded", err)
	}
	close(block)
	<-queuedRan
	wg.Wait()
}

func TestPoolPanicIsolation(t *testing.T) {
	p := NewPool(1, 0)
	err := p.Do(func() error { panic("sim exploded") })
	if err == nil || !strings.Contains(err.Error(), "sim exploded") {
		t.Fatalf("panic not converted to error: %v", err)
	}
	// The pool is reusable after a panic — no leaked slot.
	if err := p.Do(func() error { return nil }); err != nil {
		t.Fatalf("Do after panic: %v", err)
	}
}
