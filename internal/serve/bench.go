package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// BenchOptions shapes a load-generation run against a senss-serve
// endpoint: M tenants each opening K sessions and stepping them to
// completion.
type BenchOptions struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Tenants is M (default 4).
	Tenants int
	// SessionsPerTenant is K (default 16).
	SessionsPerTenant int
	// Workload names the program every session runs (default "lockcontend").
	Workload string
	// Security is the session protection mode (default "senss").
	Security string
	// StepCycles is the per-step slice request (0 = server default).
	StepCycles uint64
	// Concurrency bounds in-flight client requests (default 2*Tenants).
	Concurrency int
	// SamplePeriod is the occupancy poll period (default 20ms).
	SamplePeriod time.Duration
}

func (o *BenchOptions) defaults() {
	if o.Tenants <= 0 {
		o.Tenants = 4
	}
	if o.SessionsPerTenant <= 0 {
		o.SessionsPerTenant = 16
	}
	if o.Workload == "" {
		o.Workload = "lockcontend"
	}
	if o.Security == "" {
		o.Security = "senss"
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 2 * o.Tenants
	}
	if o.SamplePeriod <= 0 {
		o.SamplePeriod = 20 * time.Millisecond
	}
}

// BenchReport is the BENCH_serve.json schema.
type BenchReport struct {
	Workload          string  `json:"workload"`
	Security          string  `json:"security"`
	Tenants           int     `json:"tenants"`
	SessionsPerTenant int     `json:"sessions_per_tenant"`
	Sessions          int     `json:"sessions"`
	Completed         int     `json:"completed"`
	Failed            int     `json:"failed"`
	Steps             int     `json:"steps"`
	Retried429        int     `json:"retried_429"`
	WallMS            float64 `json:"wall_ms"`
	SessionsPerSec    float64 `json:"sessions_per_sec"`
	StepP50MS         float64 `json:"step_p50_ms"`
	StepP90MS         float64 `json:"step_p90_ms"`
	StepP99MS         float64 `json:"step_p99_ms"`
	// PeakGroups / PeakSessions are sampled from GET /v1/server during
	// the run: how full the shared SHU group matrix and session table got.
	PeakGroups    int `json:"peak_groups"`
	PeakSessions  int `json:"peak_sessions"`
	GroupCapacity int `json:"group_capacity"`
}

// benchClient is one worker's HTTP helper.
type benchClient struct {
	base string
	hc   *http.Client
}

func (c *benchClient) do(method, path string, body, out any) (status int, err error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return 0, err
	}
	if rd != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err
	}
	// A Close failure means the connection is not reusable; fold it into
	// the result rather than blanking it.
	defer func() { err = errors.Join(err, resp.Body.Close()) }()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, fmt.Errorf("decoding %s %s response: %w", method, path, err)
		}
	}
	return resp.StatusCode, nil
}

// RunBench drives the load and assembles the report.
func RunBench(opts BenchOptions) (BenchReport, error) {
	opts.defaults()
	total := opts.Tenants * opts.SessionsPerTenant
	rep := BenchReport{
		Workload:          opts.Workload,
		Security:          opts.Security,
		Tenants:           opts.Tenants,
		SessionsPerTenant: opts.SessionsPerTenant,
		Sessions:          total,
	}
	client := &benchClient{base: opts.BaseURL, hc: &http.Client{Timeout: 60 * time.Second}}

	// Occupancy sampler: poll server stats until the run signals done.
	samplerDone := make(chan struct{})
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		t := time.NewTicker(opts.SamplePeriod)
		defer t.Stop()
		for {
			select {
			case <-samplerDone:
				return
			case <-t.C:
				var st ServerStats
				if code, err := client.do(http.MethodGet, "/v1/server", nil, &st); err == nil && code == http.StatusOK {
					if st.GroupsInUse > rep.PeakGroups {
						rep.PeakGroups = st.GroupsInUse
					}
					if st.Sessions > rep.PeakSessions {
						rep.PeakSessions = st.Sessions
					}
					rep.GroupCapacity = st.GroupCapacity
				}
			}
		}
	}()

	type job struct{ tenant string }
	jobs := make(chan job, total)
	for t := 0; t < opts.Tenants; t++ {
		for k := 0; k < opts.SessionsPerTenant; k++ {
			jobs <- job{tenant: fmt.Sprintf("tenant-%d", t)}
		}
	}
	close(jobs)

	var mu sync.Mutex
	var latencies []time.Duration
	var completed, failed, steps, retried int

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := &benchClient{base: opts.BaseURL, hc: &http.Client{Timeout: 60 * time.Second}}
			for j := range jobs {
				ok, nSteps, nRetried, lats := benchOne(c, opts, j.tenant)
				mu.Lock()
				if ok {
					completed++
				} else {
					failed++
				}
				steps += nSteps
				retried += nRetried
				latencies = append(latencies, lats...)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	close(samplerDone)
	samplerWG.Wait()

	rep.Completed = completed
	rep.Failed = failed
	rep.Steps = steps
	rep.Retried429 = retried
	rep.WallMS = float64(wall.Microseconds()) / 1e3
	if wall > 0 {
		rep.SessionsPerSec = float64(completed) / wall.Seconds()
	}
	rep.StepP50MS = percentileMS(latencies, 0.50)
	rep.StepP90MS = percentileMS(latencies, 0.90)
	rep.StepP99MS = percentileMS(latencies, 0.99)
	if failed > 0 {
		return rep, fmt.Errorf("serve: bench: %d of %d sessions failed", failed, total)
	}
	return rep, nil
}

// benchOne runs one session to completion: create, step until done,
// delete. 429 responses back off and retry — that is the backpressure
// contract working, not a failure.
func benchOne(c *benchClient, opts BenchOptions, tenant string) (ok bool, steps, retried int, lats []time.Duration) {
	spec := SessionSpec{Tenant: tenant, Workload: opts.Workload, Security: opts.Security}
	var info SessionInfo
	for {
		code, err := c.do(http.MethodPost, "/v1/sessions", spec, &info)
		if err != nil {
			return false, steps, retried, lats
		}
		if code == http.StatusTooManyRequests {
			retried++
			time.Sleep(20 * time.Millisecond)
			continue
		}
		if code != http.StatusCreated {
			return false, steps, retried, lats
		}
		break
	}
	req := StepRequest{Cycles: opts.StepCycles}
	for {
		var resp StepResponse
		t0 := time.Now()
		code, err := c.do(http.MethodPost, "/v1/sessions/"+info.ID+"/step", req, &resp)
		if err != nil {
			return false, steps, retried, lats
		}
		if code == http.StatusTooManyRequests {
			retried++
			time.Sleep(20 * time.Millisecond)
			continue
		}
		if code != http.StatusOK {
			return false, steps, retried, lats
		}
		lats = append(lats, time.Since(t0))
		steps++
		if resp.Done {
			ok = resp.State == "done"
			break
		}
	}
	code, err := c.do(http.MethodDelete, "/v1/sessions/"+info.ID, nil, nil)
	if err != nil || code != http.StatusOK {
		return false, steps, retried, lats
	}
	return ok, steps, retried, lats
}

// percentileMS returns the p-th percentile of lats in milliseconds.
func percentileMS(lats []time.Duration, p float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(lats))
	copy(sorted, lats)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return float64(sorted[idx].Microseconds()) / 1e3
}
