package serve

import (
	"errors"
	"testing"

	"senss/internal/core"
)

func TestAccountantGlobalExhaustion(t *testing.T) {
	a := NewAccountant(2, 0)
	if err := a.Acquire("a", 1); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if err := a.Acquire("b", 1); err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	err := a.Acquire("c", 1)
	if err == nil {
		t.Fatal("third acquire succeeded beyond capacity")
	}
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("error type %T, want *QuotaError", err)
	}
	if qe.Tenant != "" {
		t.Fatalf("exhausted scope tenant = %q, want global", qe.Tenant)
	}
	// The serving-layer error unwraps to the simulator's own sentinel.
	if !errors.Is(err, core.ErrGroupsExhausted) {
		t.Fatal("QuotaError does not unwrap to core.ErrGroupsExhausted")
	}
	a.Release("a", 1)
	if err := a.Acquire("c", 1); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

func TestAccountantTenantQuota(t *testing.T) {
	a := NewAccountant(10, 2)
	if err := a.Acquire("a", 2); err != nil {
		t.Fatalf("within quota: %v", err)
	}
	err := a.Acquire("a", 1)
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Tenant != "a" {
		t.Fatalf("over-quota error = %v, want tenant-scoped *QuotaError", err)
	}
	// Another tenant is unaffected by a's exhaustion.
	if err := a.Acquire("b", 2); err != nil {
		t.Fatalf("tenant b blocked by a's quota: %v", err)
	}
	if got := a.InUse(); got != 4 {
		t.Fatalf("InUse = %d, want 4", got)
	}
	if got := a.Peak(); got != 4 {
		t.Fatalf("Peak = %d, want 4", got)
	}
	by := a.ByTenant()
	if by["a"] != 2 || by["b"] != 2 {
		t.Fatalf("ByTenant = %v", by)
	}
	a.Release("a", 2)
	if by := a.ByTenant(); by["a"] != 0 {
		t.Fatalf("tenant a still tracked after release: %v", by)
	}
	if got := a.Peak(); got != 4 {
		t.Fatalf("Peak dropped to %d after release", got)
	}
}

func TestAccountantZeroIsFree(t *testing.T) {
	a := NewAccountant(0, 1)
	if a.Capacity() != core.MaxGroups {
		t.Fatalf("default capacity = %d, want %d", a.Capacity(), core.MaxGroups)
	}
	// Unsecured sessions (0 groups) never hit the quota.
	for i := 0; i < 5; i++ {
		if err := a.Acquire("a", 0); err != nil {
			t.Fatalf("zero acquire: %v", err)
		}
	}
	if a.InUse() != 0 {
		t.Fatalf("InUse = %d after zero acquires", a.InUse())
	}
}

func TestAccountantOverReleasePanics(t *testing.T) {
	a := NewAccountant(4, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	a.Release("a", 1)
}
