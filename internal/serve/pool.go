package serve

import (
	"errors"
	"fmt"
)

// ErrOverloaded is returned by Pool.Do when both the worker slots and
// the admission backlog are full — the server's backpressure signal,
// surfaced to clients as HTTP 429 + Retry-After.
var ErrOverloaded = errors.New("serve: worker pool saturated")

// Pool bounds how many simulation slices execute concurrently and how
// many callers may wait for a slot. It reuses internal/farm's
// panic-isolation discipline: a panicking simulation becomes an error
// confined to its task, never a crashed server.
type Pool struct {
	workers int
	backlog int
	// slots admits workers+backlog tasks; sem serializes execution down
	// to workers. Admission is non-blocking (backpressure), execution
	// waits its turn.
	slots chan struct{}
	sem   chan struct{}
}

// NewPool builds a pool with the given concurrency and waiting-room
// bounds (minimums of 1 and 0 are enforced).
func NewPool(workers, backlog int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if backlog < 0 {
		backlog = 0
	}
	return &Pool{
		workers: workers,
		backlog: backlog,
		slots:   make(chan struct{}, workers+backlog),
		sem:     make(chan struct{}, workers),
	}
}

// Do runs fn on the caller's goroutine under the pool's bounds. It
// returns ErrOverloaded immediately when the pool is saturated, and
// converts a panic inside fn into an error (farm's isolation pattern).
func (p *Pool) Do(fn func() error) error {
	select {
	case p.slots <- struct{}{}:
	default:
		return ErrOverloaded
	}
	defer func() { <-p.slots }()
	p.sem <- struct{}{}
	defer func() { <-p.sem }()
	return safeCall(fn)
}

// safeCall invokes fn with panic isolation.
func safeCall(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: task panicked: %v", r)
		}
	}()
	return fn()
}

// InFlight returns how many tasks are admitted (executing or queued).
func (p *Pool) InFlight() int { return len(p.slots) }

// Workers returns the execution bound.
func (p *Pool) Workers() int { return p.workers }

// Backlog returns the waiting-room bound.
func (p *Pool) Backlog() int { return p.backlog }
