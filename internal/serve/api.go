package serve

import (
	"fmt"

	"senss/internal/machine"
	"senss/internal/oracle"
	"senss/internal/stats"
	"senss/internal/workload"
)

// SessionSpec is the request body of POST /v1/sessions: the subset of
// machine.Config a tenant may choose, plus the workload to run. The
// mapping to a full machine.Config (Config) is a pure function, so a
// test can rebuild the exact configuration a served session used and
// replay it through driver.Run for a byte-identical cross-check.
type SessionSpec struct {
	Tenant   string `json:"tenant"`
	Workload string `json:"workload"`
	// Size selects the problem scale: "test" (default) or "bench".
	Size string `json:"size,omitempty"`
	// Procs is the processor count (default 2 — serving favors many
	// small machines over one big one).
	Procs int `json:"procs,omitempty"`
	// Security selects the protection mode: "base" (default), "senss",
	// or "senss+mem".
	Security string `json:"security,omitempty"`
	// Integrity adds the CHash tree (only with "senss+mem").
	Integrity bool `json:"integrity,omitempty"`
	// Crypto selects the block-cipher backend ("" = ref).
	Crypto string `json:"crypto,omitempty"`
	// Seed fixes machine randomness (0 = the library default).
	Seed uint64 `json:"seed,omitempty"`
	// Oracle attaches the lockstep differential checker; divergence
	// reports (redacted to SessionFP fingerprints) appear in stats.
	Oracle bool `json:"oracle,omitempty"`
	// Full keeps the paper's Figure 5 cache geometry. The default
	// (false) shrinks L1/L2/code to the bench-sim footprint so a host
	// can pack thousands of sessions.
	Full bool `json:"full,omitempty"`
}

// SizeVal parses the Size field.
func (s SessionSpec) SizeVal() (workload.Size, error) {
	switch s.Size {
	case "", "test":
		return workload.SizeTest, nil
	case "bench":
		return workload.SizeBench, nil
	}
	return 0, fmt.Errorf("serve: unknown size %q (want test or bench)", s.Size)
}

// Config maps the spec onto a full machine configuration. It is pure:
// the same spec always yields the same config.
func (s SessionSpec) Config() (machine.Config, error) {
	cfg := machine.DefaultConfig()
	cfg.Procs = 2
	if s.Procs != 0 {
		cfg.Procs = s.Procs
	}
	if !s.Full {
		cfg.Coherence.L1Size = 4 << 10
		cfg.Coherence.L2Size = 64 << 10
		cfg.CPU.CodeBytes = 2 << 10
	}
	switch s.Security {
	case "", "base":
		cfg.Security.Mode = machine.SecurityOff
	case "senss":
		cfg.Security.Mode = machine.SecurityBus
	case "senss+mem":
		cfg.Security.Mode = machine.SecurityBusMem
		cfg.Security.Integrity = s.Integrity
	default:
		return cfg, fmt.Errorf("serve: unknown security mode %q (want base, senss, or senss+mem)", s.Security)
	}
	if s.Crypto != "" {
		cfg.Security.Senss.Backend = s.Crypto
	}
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	cfg.Oracle = s.Oracle
	return cfg, nil
}

// Groups returns how many SHU group-table entries the session occupies
// in the service-wide accountant: one per secured machine (the default
// single group spanning its processors), none for unprotected baselines.
func (s SessionSpec) Groups() int {
	switch s.Security {
	case "senss", "senss+mem":
		return 1
	}
	return 0
}

// SessionInfo is the response of session creation and listing.
type SessionInfo struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	Workload string `json:"workload"`
	State    string `json:"state"`
	Groups   int    `json:"groups"`
	Cycles   uint64 `json:"cycles"`
	Steps    uint64 `json:"steps"`
}

// StepRequest is the (optional) body of POST /v1/sessions/{id}/step.
type StepRequest struct {
	// Cycles bounds the slice (0 = the server's default).
	Cycles uint64 `json:"cycles,omitempty"`
}

// StepResponse reports the outcome of one step.
type StepResponse struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Done   bool   `json:"done"`
	Cycles uint64 `json:"cycles"`
	Steps  uint64 `json:"steps"`
}

// StatsResponse is the payload of GET /v1/sessions/{id}/stats: the
// incremental measurement snapshot, and — once attached and diverged —
// the redacted oracle report.
type StatsResponse struct {
	ID       string         `json:"id"`
	Tenant   string         `json:"tenant"`
	Workload string         `json:"workload"`
	State    string         `json:"state"`
	Done     bool           `json:"done"`
	Cycles   uint64         `json:"cycles"`
	Steps    uint64         `json:"steps"`
	Stats    stats.Run      `json:"stats"`
	Oracle   *oracle.Report `json:"oracle,omitempty"`
	Error    string         `json:"error,omitempty"`
}

// ServerStats is the payload of GET /v1/server: table occupancy, group
// accounting, and pool pressure.
type ServerStats struct {
	Sessions       int            `json:"sessions"`
	ByState        map[string]int `json:"by_state"`
	GroupsInUse    int            `json:"groups_in_use"`
	GroupCapacity  int            `json:"group_capacity"`
	GroupsByTenant map[string]int `json:"groups_by_tenant"`
	TenantQuota    int            `json:"tenant_quota"`
	Evicted        uint64         `json:"evicted"`
	InFlight       int            `json:"in_flight"`
	Workers        int            `json:"workers"`
	Backlog        int            `json:"backlog"`
}

// ErrorResponse is the uniform error envelope. Code is machine-readable:
// bad_request, not_found, session_paused, groups_exhausted, overloaded,
// internal.
type ErrorResponse struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterSec mirrors the Retry-After header on overload responses.
	RetryAfterSec int `json:"retry_after_sec,omitempty"`
}
