package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"senss/internal/driver"
	"senss/internal/machine"
	"senss/internal/workload"
)

// newTestServer builds a server plus an httptest front end and tears
// both down with the test.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// call issues one JSON request and decodes the response body into out
// (when out is non-nil and the status is 2xx). It returns the status
// and raw body for error-path assertions.
func call(t *testing.T, client *http.Client, method, url string, body, out any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal body: %v", err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decode %s %s response %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode, raw
}

// errCode decodes the error envelope's machine-readable code.
func errCode(t *testing.T, raw []byte) string {
	t.Helper()
	var e ErrorResponse
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatalf("decode error envelope %q: %v", raw, err)
	}
	return e.Code
}

// expectedRun computes the serial-ground-truth measurements for a spec
// by replaying its exact configuration through driver.Run.
func expectedRun(t *testing.T, spec SessionSpec) []byte {
	t.Helper()
	size, err := spec.SizeVal()
	if err != nil {
		t.Fatalf("size: %v", err)
	}
	cfg, err := spec.Config()
	if err != nil {
		t.Fatalf("config: %v", err)
	}
	run, err := driver.Run(spec.Workload, size, cfg)
	if err != nil {
		t.Fatalf("serial run of %s: %v", spec.Workload, err)
	}
	b, err := json.Marshal(run)
	if err != nil {
		t.Fatalf("marshal serial run: %v", err)
	}
	return b
}

// driveToDone creates a session and steps it to completion over HTTP,
// retrying politely on backpressure. It returns the session ID.
func driveToDone(t *testing.T, client *http.Client, base string, spec SessionSpec, cycles uint64) string {
	t.Helper()
	var info SessionInfo
	for {
		code, raw := call(t, client, http.MethodPost, base+"/v1/sessions", spec, &info)
		if code == http.StatusTooManyRequests {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		if code != http.StatusCreated {
			t.Fatalf("create: status %d: %s", code, raw)
		}
		break
	}
	req := StepRequest{Cycles: cycles}
	for {
		var resp StepResponse
		code, raw := call(t, client, http.MethodPost, base+"/v1/sessions/"+info.ID+"/step", req, &resp)
		if code == http.StatusTooManyRequests {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		if code != http.StatusOK {
			t.Fatalf("step: status %d: %s", code, raw)
		}
		if resp.Done {
			if resp.State != "done" {
				t.Fatalf("session %s finished in state %q", info.ID, resp.State)
			}
			return info.ID
		}
	}
}

// sessionStats fetches and decodes a session's stats payload.
func sessionStats(t *testing.T, client *http.Client, base, id string) StatsResponse {
	t.Helper()
	var sr StatsResponse
	code, raw := call(t, client, http.MethodGet, base+"/v1/sessions/"+id+"/stats", nil, &sr)
	if code != http.StatusOK {
		t.Fatalf("stats: status %d: %s", code, raw)
	}
	return sr
}

func TestServeLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, Backlog: 8})
	spec := SessionSpec{Tenant: "acme", Workload: "lockcontend", Security: "senss"}
	id := driveToDone(t, ts.Client(), ts.URL, spec, 0)

	sr := sessionStats(t, ts.Client(), ts.URL, id)
	if !sr.Done || sr.State != "done" || sr.Error != "" {
		t.Fatalf("stats: done=%v state=%q err=%q", sr.Done, sr.State, sr.Error)
	}
	got, err := json.Marshal(sr.Stats)
	if err != nil {
		t.Fatalf("marshal served stats: %v", err)
	}
	if want := expectedRun(t, spec); !bytes.Equal(got, want) {
		t.Fatalf("served stats diverge from serial driver.Run:\n got  %s\n want %s", got, want)
	}

	// Delete returns the final snapshot; the session is then gone.
	var final StatsResponse
	code, raw := call(t, ts.Client(), http.MethodDelete, ts.URL+"/v1/sessions/"+id, nil, &final)
	if code != http.StatusOK {
		t.Fatalf("delete: status %d: %s", code, raw)
	}
	if final.ID != id || !final.Done {
		t.Fatalf("delete snapshot: %+v", final)
	}
	code, raw = call(t, ts.Client(), http.MethodGet, ts.URL+"/v1/sessions/"+id+"/stats", nil, nil)
	if code != http.StatusNotFound || errCode(t, raw) != "not_found" {
		t.Fatalf("stats after delete: status %d code %q", code, errCode(t, raw))
	}
}

// TestServeConcurrentSessionsMatchSerial is the acceptance workhorse:
// 64 sessions across 4 tenants stepped concurrently through the worker
// pool, every one finishing with measurements byte-identical to a
// serial driver.Run of the same configuration — slicing and scheduling
// are invisible to the simulations.
func TestServeConcurrentSessionsMatchSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second concurrency test")
	}
	srv, ts := newTestServer(t, Options{Workers: 4, Backlog: 64, TenantQuota: 0})

	workloads := []string{"lockcontend", "water", "falseshare"}
	want := make(map[string][]byte)
	for _, wl := range workloads {
		want[wl] = expectedRun(t, SessionSpec{Workload: wl, Security: "senss"})
	}

	const sessions = 64
	const tenants = 4
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := SessionSpec{
				Tenant:   fmt.Sprintf("tenant-%d", i%tenants),
				Workload: workloads[i%len(workloads)],
				Security: "senss",
			}
			client := &http.Client{Timeout: 60 * time.Second}
			id := driveToDone(t, client, ts.URL, spec, 50_000)
			sr := sessionStats(t, client, ts.URL, id)
			got, err := json.Marshal(sr.Stats)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, want[spec.Workload]) {
				errs <- fmt.Errorf("session %s (%s): served stats diverge from serial run", id, spec.Workload)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := srv.Stats()
	if st.Sessions != sessions {
		t.Fatalf("sessions registered = %d, want %d", st.Sessions, sessions)
	}
	if st.GroupsInUse != sessions {
		t.Fatalf("groups in use = %d, want %d (one per secured session)", st.GroupsInUse, sessions)
	}
	if len(st.GroupsByTenant) != tenants {
		t.Fatalf("tenants tracked = %d, want %d", len(st.GroupsByTenant), tenants)
	}
}

// TestServeQuotaExhaustion pins the multi-tenant fairness story: one
// tenant exhausting its group quota gets the typed 429 while other
// tenants keep creating and stepping sessions.
func TestServeQuotaExhaustion(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, Backlog: 8, GroupCapacity: 3, TenantQuota: 1})
	client := ts.Client()
	secured := func(tenant string) SessionSpec {
		return SessionSpec{Tenant: tenant, Workload: "lockcontend", Security: "senss"}
	}

	var infoA SessionInfo
	code, raw := call(t, client, http.MethodPost, ts.URL+"/v1/sessions", secured("a"), &infoA)
	if code != http.StatusCreated {
		t.Fatalf("tenant a first create: %d %s", code, raw)
	}
	// Tenant a's quota (1) is spent: the second secured session bounces
	// with the typed group-exhaustion code and a Retry-After hint.
	code, raw = call(t, client, http.MethodPost, ts.URL+"/v1/sessions", secured("a"), nil)
	if code != http.StatusTooManyRequests || errCode(t, raw) != "groups_exhausted" {
		t.Fatalf("tenant a over quota: status %d code %q", code, errCode(t, raw))
	}
	// An unsecured session costs no groups, so tenant a may still run one.
	base := SessionSpec{Tenant: "a", Workload: "lockcontend"}
	if code, raw := call(t, client, http.MethodPost, ts.URL+"/v1/sessions", base, nil); code != http.StatusCreated {
		t.Fatalf("tenant a unsecured create: %d %s", code, raw)
	}

	// Other tenants are untouched by a's exhaustion...
	var infoB, infoC SessionInfo
	if code, raw := call(t, client, http.MethodPost, ts.URL+"/v1/sessions", secured("b"), &infoB); code != http.StatusCreated {
		t.Fatalf("tenant b create: %d %s", code, raw)
	}
	if code, raw := call(t, client, http.MethodPost, ts.URL+"/v1/sessions", secured("c"), &infoC); code != http.StatusCreated {
		t.Fatalf("tenant c create: %d %s", code, raw)
	}
	// ...until the global matrix (capacity 3) fills; then the error is
	// globally scoped.
	code, raw = call(t, client, http.MethodPost, ts.URL+"/v1/sessions", secured("d"), nil)
	if code != http.StatusTooManyRequests || errCode(t, raw) != "groups_exhausted" {
		t.Fatalf("global exhaustion: status %d code %q", code, errCode(t, raw))
	}

	// Tenant b's session keeps stepping while a and d are rejected.
	var resp StepResponse
	code, raw = call(t, client, http.MethodPost, ts.URL+"/v1/sessions/"+infoB.ID+"/step", StepRequest{Cycles: 10_000}, &resp)
	if code != http.StatusOK || resp.Cycles == 0 {
		t.Fatalf("tenant b step during exhaustion: status %d cycles %d %s", code, resp.Cycles, raw)
	}

	// Deleting a secured session returns its group; tenant d now fits.
	if code, raw := call(t, client, http.MethodDelete, ts.URL+"/v1/sessions/"+infoC.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("delete tenant c: %d %s", code, raw)
	}
	if code, raw := call(t, client, http.MethodPost, ts.URL+"/v1/sessions", secured("d"), nil); code != http.StatusCreated {
		t.Fatalf("tenant d create after release: %d %s", code, raw)
	}
}

func TestServePauseResume(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, Backlog: 8})
	client := ts.Client()
	var info SessionInfo
	spec := SessionSpec{Tenant: "acme", Workload: "lockcontend", Security: "senss"}
	if code, raw := call(t, client, http.MethodPost, ts.URL+"/v1/sessions", spec, &info); code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, raw)
	}
	var paused SessionInfo
	if code, _ := call(t, client, http.MethodPost, ts.URL+"/v1/sessions/"+info.ID+"/pause", nil, &paused); code != http.StatusOK || paused.State != "paused" {
		t.Fatalf("pause: %d state %q", code, paused.State)
	}
	code, raw := call(t, client, http.MethodPost, ts.URL+"/v1/sessions/"+info.ID+"/step", nil, nil)
	if code != http.StatusConflict || errCode(t, raw) != "session_paused" {
		t.Fatalf("step while paused: status %d code %q", code, errCode(t, raw))
	}
	var resumed SessionInfo
	if code, _ := call(t, client, http.MethodPost, ts.URL+"/v1/sessions/"+info.ID+"/resume", nil, &resumed); code != http.StatusOK || resumed.State != "running" {
		t.Fatalf("resume: %d state %q", code, resumed.State)
	}
	var resp StepResponse
	if code, raw := call(t, client, http.MethodPost, ts.URL+"/v1/sessions/"+info.ID+"/step", StepRequest{Cycles: 10_000}, &resp); code != http.StatusOK || resp.Cycles == 0 {
		t.Fatalf("step after resume: %d cycles %d %s", code, resp.Cycles, raw)
	}
}

// TestServeEviction drives the idle janitor with an injected clock: the
// untouched session is reaped (quota returned), the recently stepped
// one survives.
func TestServeEviction(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1_000_000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	srv, ts := newTestServer(t, Options{Workers: 2, Backlog: 8, IdleTimeout: time.Minute, Now: clock})
	client := ts.Client()
	spec := SessionSpec{Tenant: "acme", Workload: "lockcontend", Security: "senss"}
	var a, b SessionInfo
	call(t, client, http.MethodPost, ts.URL+"/v1/sessions", spec, &a)
	call(t, client, http.MethodPost, ts.URL+"/v1/sessions", spec, &b)
	if got := srv.quota.InUse(); got != 2 {
		t.Fatalf("groups in use = %d, want 2", got)
	}

	advance(30 * time.Second)
	// Touch a; b stays idle.
	if code, raw := call(t, client, http.MethodPost, ts.URL+"/v1/sessions/"+a.ID+"/step", StepRequest{Cycles: 1000}, nil); code != http.StatusOK {
		t.Fatalf("touch step: %d %s", code, raw)
	}
	advance(45 * time.Second) // a idle 45s, b idle 75s

	if n := srv.Sweep(); n != 1 {
		t.Fatalf("Sweep evicted %d, want 1", n)
	}
	if code, _ := call(t, client, http.MethodGet, ts.URL+"/v1/sessions/"+b.ID+"/stats", nil, nil); code != http.StatusNotFound {
		t.Fatalf("evicted session still serves stats: %d", code)
	}
	if code, _ := call(t, client, http.MethodGet, ts.URL+"/v1/sessions/"+a.ID+"/stats", nil, nil); code != http.StatusOK {
		t.Fatalf("survivor lost: %d", code)
	}
	if got := srv.quota.InUse(); got != 1 {
		t.Fatalf("groups in use after eviction = %d, want 1", got)
	}
	st := srv.Stats()
	if st.Evicted != 1 || st.Sessions != 1 {
		t.Fatalf("server stats after eviction: evicted=%d sessions=%d", st.Evicted, st.Sessions)
	}
}

// rawStatus issues one request and returns only the status code, with
// transport failures as an error — safe to call from helper goroutines,
// unlike call, which t.Fatals.
func rawStatus(client *http.Client, method, url string, body any) (int, error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	if err := resp.Body.Close(); err != nil {
		return resp.StatusCode, err
	}
	return resp.StatusCode, nil
}

// TestServeEvictionRace is lockguard's dynamic counterpart: under -race
// it interleaves DELETE, janitor idle-eviction sweeps, and concurrent
// steps on the same session, round after round. The invariants are the
// close()-winner protocol's: the quota is released exactly once per
// session (the Accountant panics on over-release), a stepper never
// resurrects an evicted session, and the books drain to zero.
func TestServeEvictionRace(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1_000_000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	srv, ts := newTestServer(t, Options{Workers: 4, Backlog: 32, IdleTimeout: time.Millisecond, Now: clock})
	client := ts.Client()
	spec := SessionSpec{Tenant: "acme", Workload: "lockcontend", Security: "senss"}

	rounds := 20
	if testing.Short() {
		rounds = 4
	}
	for round := 0; round < rounds; round++ {
		var info SessionInfo
		for {
			code, raw := call(t, client, http.MethodPost, ts.URL+"/v1/sessions", spec, &info)
			if code == http.StatusTooManyRequests {
				time.Sleep(time.Millisecond)
				continue
			}
			if code != http.StatusCreated {
				t.Fatalf("round %d: create: status %d: %s", round, code, raw)
			}
			break
		}
		stepURL := ts.URL + "/v1/sessions/" + info.ID + "/step"
		delURL := ts.URL + "/v1/sessions/" + info.ID

		errs := make(chan error, 16)
		start := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < 3; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for j := 0; j < 5; j++ {
					code, err := rawStatus(client, http.MethodPost, stepURL, StepRequest{Cycles: 200})
					if err != nil {
						errs <- fmt.Errorf("step: %w", err)
						return
					}
					switch code {
					case http.StatusOK, http.StatusNotFound, http.StatusTooManyRequests:
					default:
						errs <- fmt.Errorf("step: unexpected status %d", code)
						return
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			code, err := rawStatus(client, http.MethodDelete, delURL, nil)
			if err != nil {
				errs <- fmt.Errorf("delete: %w", err)
				return
			}
			// 200 = this goroutine won the teardown, 404 = a sweep did.
			if code != http.StatusOK && code != http.StatusNotFound {
				errs <- fmt.Errorf("delete: unexpected status %d", code)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 5; j++ {
				advance(10 * time.Millisecond)
				srv.Sweep()
			}
		}()
		close(start)
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("round %d: %v", round, err)
		}
		// The session is gone whichever path won; stepping it must 404,
		// never revive it.
		if code, _ := rawStatus(client, http.MethodPost, stepURL, StepRequest{Cycles: 200}); code != http.StatusNotFound {
			t.Fatalf("round %d: step after teardown: status %d, want 404", round, code)
		}
	}
	if n := srv.table.Len(); n != 0 {
		t.Fatalf("table holds %d sessions after teardown", n)
	}
	if got := srv.quota.InUse(); got != 0 {
		t.Fatalf("groups in use after teardown = %d, want 0", got)
	}
}

// TestServeOverload saturates the pool (one worker, no backlog) and
// checks the 429 + Retry-After backpressure contract on create.
func TestServeOverload(t *testing.T) {
	orig := newDriverSession
	t.Cleanup(func() { newDriverSession = orig })
	block := make(chan struct{})
	started := make(chan struct{})
	newDriverSession = func(name string, size workload.Size, cfg machine.Config) (*driver.Session, error) {
		close(started)
		<-block
		return orig(name, size, cfg)
	}
	_, ts := newTestServer(t, Options{Workers: 1, Backlog: -1})
	client := ts.Client()
	spec := SessionSpec{Tenant: "acme", Workload: "lockcontend"}
	done := make(chan struct{})
	go func() {
		defer close(done)
		call(t, client, http.MethodPost, ts.URL+"/v1/sessions", spec, nil)
	}()
	<-started
	newDriverSession = orig // the saturating request is already inside

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/sessions", bytes.NewReader([]byte(`{"tenant":"acme","workload":"lockcontend"}`)))
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("overload request: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || errCode(t, raw) != "overloaded" {
		t.Fatalf("saturated create: status %d code %q", resp.StatusCode, errCode(t, raw))
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("overload response missing Retry-After header")
	}
	close(block)
	<-done
}

// TestServePanicIsolation proves a panicking simulation build is
// confined to its request: the client gets an error envelope and the
// server keeps serving.
func TestServePanicIsolation(t *testing.T) {
	orig := newDriverSession
	t.Cleanup(func() { newDriverSession = orig })
	newDriverSession = func(name string, size workload.Size, cfg machine.Config) (*driver.Session, error) {
		panic("rigged build")
	}
	srv, ts := newTestServer(t, Options{Workers: 2, Backlog: 8})
	client := ts.Client()
	spec := SessionSpec{Tenant: "acme", Workload: "lockcontend", Security: "senss"}
	code, raw := call(t, client, http.MethodPost, ts.URL+"/v1/sessions", spec, nil)
	if code != http.StatusBadRequest || !strings.Contains(string(raw), "panicked") {
		t.Fatalf("rigged create: status %d body %s", code, raw)
	}
	// The failed create returned its group reservation.
	if got := srv.quota.InUse(); got != 0 {
		t.Fatalf("groups leaked by panicked create: %d", got)
	}
	newDriverSession = orig
	if code, _ := call(t, client, http.MethodGet, ts.URL+"/healthz", nil, nil); code != http.StatusOK {
		t.Fatalf("healthz after panic: %d", code)
	}
	if code, raw := call(t, client, http.MethodPost, ts.URL+"/v1/sessions", spec, nil); code != http.StatusCreated {
		t.Fatalf("create after panic: %d %s", code, raw)
	}
}

// TestServeFollowStats reads the ndjson stream: monotone cycle counts,
// final line done with stats byte-identical to the serial run.
func TestServeFollowStats(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, Backlog: 8, StepCycles: 50_000})
	client := ts.Client()
	spec := SessionSpec{Tenant: "acme", Workload: "lockcontend", Security: "senss"}
	var info SessionInfo
	if code, raw := call(t, client, http.MethodPost, ts.URL+"/v1/sessions", spec, &info); code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, raw)
	}
	resp, err := client.Get(ts.URL + "/v1/sessions/" + info.ID + "/stats?follow=true")
	if err != nil {
		t.Fatalf("follow: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("follow content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var last StatsResponse
	var lines int
	var prevCycles uint64
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if last.Cycles < prevCycles {
			t.Fatalf("cycles went backwards: %d -> %d", prevCycles, last.Cycles)
		}
		prevCycles = last.Cycles
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	if lines < 2 {
		t.Fatalf("follow produced %d lines, want at least initial + final", lines)
	}
	if !last.Done || last.State != "done" {
		t.Fatalf("final line: done=%v state=%q", last.Done, last.State)
	}
	got, _ := json.Marshal(last.Stats)
	if want := expectedRun(t, spec); !bytes.Equal(got, want) {
		t.Fatalf("followed stats diverge from serial run:\n got  %s\n want %s", got, want)
	}
}

func TestServeBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, Backlog: 8})
	client := ts.Client()
	cases := []struct {
		name string
		body string
	}{
		{"missing tenant", `{"workload":"fft"}`},
		{"missing workload", `{"tenant":"acme"}`},
		{"unknown workload", `{"tenant":"acme","workload":"doom"}`},
		{"unknown security", `{"tenant":"acme","workload":"fft","security":"tinfoil"}`},
		{"unknown size", `{"tenant":"acme","workload":"fft","size":"galactic"}`},
		{"invalid procs", `{"tenant":"acme","workload":"fft","procs":-3}`},
		{"malformed json", `{"tenant":`},
	}
	for _, tc := range cases {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/sessions", strings.NewReader(tc.body))
		resp, err := client.Do(req)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || errCode(t, raw) != "bad_request" {
			t.Errorf("%s: status %d code %q", tc.name, resp.StatusCode, errCode(t, raw))
		}
	}
	// Unknown session IDs 404 on every per-session route.
	for _, r := range []struct{ method, path string }{
		{http.MethodPost, "/v1/sessions/s-nope/step"},
		{http.MethodPost, "/v1/sessions/s-nope/pause"},
		{http.MethodPost, "/v1/sessions/s-nope/resume"},
		{http.MethodGet, "/v1/sessions/s-nope/stats"},
		{http.MethodDelete, "/v1/sessions/s-nope"},
	} {
		code, raw := call(t, client, r.method, ts.URL+r.path, nil, nil)
		if code != http.StatusNotFound || errCode(t, raw) != "not_found" {
			t.Errorf("%s %s: status %d code %q", r.method, r.path, code, errCode(t, raw))
		}
	}
}

func TestServeListAndServerStats(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, Backlog: 8})
	client := ts.Client()
	for _, tenant := range []string{"a", "a", "b"} {
		spec := SessionSpec{Tenant: tenant, Workload: "lockcontend", Security: "senss"}
		if code, raw := call(t, client, http.MethodPost, ts.URL+"/v1/sessions", spec, nil); code != http.StatusCreated {
			t.Fatalf("create: %d %s", code, raw)
		}
	}
	var all, onlyA []SessionInfo
	call(t, client, http.MethodGet, ts.URL+"/v1/sessions", nil, &all)
	call(t, client, http.MethodGet, ts.URL+"/v1/sessions?tenant=a", nil, &onlyA)
	if len(all) != 3 || len(onlyA) != 2 {
		t.Fatalf("list: all=%d a=%d", len(all), len(onlyA))
	}
	var st ServerStats
	code, raw := call(t, client, http.MethodGet, ts.URL+"/v1/server", nil, &st)
	if code != http.StatusOK {
		t.Fatalf("server stats: %d %s", code, raw)
	}
	if st.Sessions != 3 || st.GroupsInUse != 3 || st.Workers != 2 {
		t.Fatalf("server stats: %+v", st)
	}
	if st.GroupsByTenant["a"] != 2 || st.GroupsByTenant["b"] != 1 {
		t.Fatalf("groups by tenant: %v", st.GroupsByTenant)
	}
}

// TestRunBench exercises the load generator end to end at a small scale.
func TestRunBench(t *testing.T) {
	if testing.Short() {
		t.Skip("bench run")
	}
	_, ts := newTestServer(t, Options{Workers: 2, Backlog: 32})
	rep, err := RunBench(BenchOptions{
		BaseURL:           ts.URL,
		Tenants:           2,
		SessionsPerTenant: 2,
		Workload:          "lockcontend",
		Security:          "senss",
	})
	if err != nil {
		t.Fatalf("bench: %v", err)
	}
	if rep.Completed != 4 || rep.Failed != 0 {
		t.Fatalf("bench report: completed=%d failed=%d", rep.Completed, rep.Failed)
	}
	if rep.Steps < 4 || rep.SessionsPerSec <= 0 || rep.StepP50MS <= 0 {
		t.Fatalf("bench metrics implausible: %+v", rep)
	}
	if rep.StepP99MS < rep.StepP50MS {
		t.Fatalf("p99 (%v) < p50 (%v)", rep.StepP99MS, rep.StepP50MS)
	}
}
