package serve

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// DefaultShards is the session-table shard count when Options leaves it
// zero: enough to keep create/step/evict contention off any single lock
// with hundreds of concurrent handlers, small enough to stay cheap.
const DefaultShards = 16

// Table is the lock-striped session registry — the gocryptfs
// openfiletable/inomap pattern applied to simulation sessions. IDs hash
// onto N independently locked shards, so concurrent handlers touching
// different sessions never serialize on a global lock; per-session
// mutual exclusion lives in the Hosted itself.
type Table struct {
	shards []tableShard
	nextID atomic.Uint64
	count  atomic.Int64
}

type tableShard struct {
	mu sync.Mutex
	//senss-lint:guardedby mu
	m map[string]*Hosted
}

// NewTable builds a table with n shards (<= 0 selects DefaultShards,
// values are rounded up to a power of two so shard selection is a mask).
//
//senss-lint:ignore lockguard construction: the table has not escaped NewTable yet, so no other goroutine can observe the shard maps being seeded
func NewTable(n int) *Table {
	if n <= 0 {
		n = DefaultShards
	}
	size := 1
	for size < n {
		size <<= 1
	}
	t := &Table{shards: make([]tableShard, size)}
	for i := range t.shards {
		t.shards[i].m = make(map[string]*Hosted)
	}
	return t
}

// NewID mints a stable, unique session ID. IDs are dense and ordered
// ("s-000001", ...): stable handles for clients, and cheap to shard.
func (t *Table) NewID() string {
	return fmt.Sprintf("s-%06x", t.nextID.Add(1))
}

func (t *Table) shardFor(id string) *tableShard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(id)) // fnv's Write cannot fail
	return &t.shards[h.Sum32()&uint32(len(t.shards)-1)]
}

// Put registers a session under its ID.
func (t *Table) Put(h *Hosted) {
	s := t.shardFor(h.ID)
	s.mu.Lock()
	s.m[h.ID] = h
	s.mu.Unlock()
	t.count.Add(1)
}

// Get returns the session with the given ID.
func (t *Table) Get(id string) (*Hosted, bool) {
	s := t.shardFor(id)
	s.mu.Lock()
	h, ok := s.m[id]
	s.mu.Unlock()
	return h, ok
}

// Delete removes and returns the session with the given ID. The caller
// owns the follow-up teardown (Hosted.close) outside the shard lock.
func (t *Table) Delete(id string) (*Hosted, bool) {
	s := t.shardFor(id)
	s.mu.Lock()
	h, ok := s.m[id]
	if ok {
		delete(s.m, id)
	}
	s.mu.Unlock()
	if ok {
		t.count.Add(-1)
	}
	return h, ok
}

// Len returns the number of registered sessions.
func (t *Table) Len() int { return int(t.count.Load()) }

// Snapshot returns every registered session. Each shard is copied under
// its own lock; the aggregate is not a consistent cut across shards,
// which eviction sweeps and stats endpoints do not need.
func (t *Table) Snapshot() []*Hosted {
	var out []*Hosted
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for _, h := range s.m {
			out = append(out, h)
		}
		s.mu.Unlock()
	}
	return out
}
