package serve

import (
	"fmt"
	"sync"
	"testing"
)

func TestTableShardCountRoundsUp(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultShards}, {1, 1}, {3, 4}, {16, 16}, {17, 32},
	} {
		if got := len(NewTable(tc.in).shards); got != tc.want {
			t.Errorf("NewTable(%d): %d shards, want %d", tc.in, got, tc.want)
		}
	}
}

func TestTableNewIDUnique(t *testing.T) {
	tab := NewTable(4)
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := tab.NewID()
		if seen[id] {
			t.Fatalf("duplicate ID %q", id)
		}
		seen[id] = true
	}
}

func TestTablePutGetDelete(t *testing.T) {
	tab := NewTable(4)
	h := &Hosted{ID: tab.NewID()}
	tab.Put(h)
	if tab.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tab.Len())
	}
	got, ok := tab.Get(h.ID)
	if !ok || got != h {
		t.Fatalf("Get(%q) = %v, %v", h.ID, got, ok)
	}
	if _, ok := tab.Get("s-nope"); ok {
		t.Fatal("Get of unknown ID succeeded")
	}
	del, ok := tab.Delete(h.ID)
	if !ok || del != h {
		t.Fatalf("Delete(%q) = %v, %v", h.ID, del, ok)
	}
	if _, ok := tab.Delete(h.ID); ok {
		t.Fatal("second Delete succeeded")
	}
	if tab.Len() != 0 {
		t.Fatalf("Len after delete = %d, want 0", tab.Len())
	}
}

// TestTableConcurrent exercises the stripes under the race detector.
func TestTableConcurrent(t *testing.T) {
	tab := NewTable(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := fmt.Sprintf("s-%d-%d", g, i)
				tab.Put(&Hosted{ID: id})
				if _, ok := tab.Get(id); !ok {
					t.Errorf("lost %q", id)
				}
				if i%2 == 0 {
					tab.Delete(id)
				}
			}
		}(g)
	}
	wg.Wait()
	if got, want := tab.Len(), 8*50; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	if got := len(tab.Snapshot()); got != tab.Len() {
		t.Fatalf("Snapshot len = %d, Len = %d", got, tab.Len())
	}
}
