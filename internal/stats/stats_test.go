package stats

import (
	"strings"
	"testing"
)

func almost(got, want float64) bool {
	d := got - want
	return d < 1e-9 && d > -1e-9
}

func TestSlowdownPct(t *testing.T) {
	base := Run{Cycles: 1000}
	sec := Run{Cycles: 1020}
	if got := SlowdownPct(base, sec); !almost(got, 2.0) {
		t.Errorf("SlowdownPct = %v, want 2", got)
	}
	if got := SlowdownPct(Run{}, sec); got != 0 {
		t.Errorf("zero base should yield 0, got %v", got)
	}
	faster := Run{Cycles: 990}
	if got := SlowdownPct(base, faster); !almost(got, -1.0) {
		t.Errorf("speedup = %v, want -1", got)
	}
}

func TestTrafficIncreasePct(t *testing.T) {
	base := Run{BusTotal: 200}
	sec := Run{BusTotal: 300}
	if got := TrafficIncreasePct(base, sec); got != 50.0 {
		t.Errorf("TrafficIncreasePct = %v", got)
	}
	if got := TrafficIncreasePct(Run{}, sec); got != 0 {
		t.Errorf("zero base should yield 0, got %v", got)
	}
}

func TestC2CShare(t *testing.T) {
	r := Run{BusTotal: 100, C2C: 46}
	if got := r.C2CShare(); got != 0.46 {
		t.Errorf("C2CShare = %v", got)
	}
	if (Run{}).C2CShare() != 0 {
		t.Error("empty run share should be 0")
	}
}

func TestRunString(t *testing.T) {
	r := Run{Workload: "fft", Procs: 4, Label: "senss", Cycles: 10, BusTotal: 5}
	s := r.String()
	for _, want := range []string{"fft", "4P", "senss", "10 cycles"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tab := &Table{Title: "demo", Columns: []string{"name", "value"}}
	tab.Add("short", "1")
	tab.Add("a-much-longer-name", "2")
	out := tab.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title, header, rule, 2 rows → 5? title+header+rule+2 = 5
		if len(lines) != 5 {
			t.Fatalf("rendered %d lines: %q", len(lines), out)
		}
	}
	if !strings.HasPrefix(lines[0], "demo") {
		t.Error("title missing")
	}
	// All data rows must be at least as wide as the widest cell.
	if len(lines[3]) < len("a-much-longer-name") {
		t.Error("column not widened to fit")
	}
	if !strings.Contains(out, "----") {
		t.Error("header rule missing")
	}
}

func TestTableRenderWithoutTitle(t *testing.T) {
	tab := &Table{Columns: []string{"a"}}
	tab.Add("x")
	out := tab.Render()
	if strings.HasPrefix(out, "\n") {
		t.Error("leading blank line for untitled table")
	}
	if !strings.Contains(out, "x") {
		t.Error("row missing")
	}
}
