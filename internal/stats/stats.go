// Package stats defines the measurement record produced by a simulation
// run and the derived metrics the paper reports (percentage slowdown,
// bus-activity increase).
package stats

import (
	"fmt"
	"strings"
)

// Run aggregates the counters of one simulation.
type Run struct {
	Workload string
	Procs    int
	Label    string // configuration tag, e.g. "base" or "senss"

	Cycles uint64 // total simulated cycles until the last thread finished

	// Bus activity.
	BusTotal   uint64            // all bus transactions
	BusByKind  map[string]uint64 // per transaction kind
	C2C        uint64            // cache-to-cache data transfers
	MemFills   uint64            // memory-supplied fills
	BusBusy    uint64            // cycles the bus was held
	ArbWaits   uint64            // requests that waited for the bus
	ArbWaitCyc uint64            // total cycles spent waiting for grants
	ArbWaitMax uint64            // worst single arbitration wait
	BusData    uint64            // data bytes moved
	ExtraBus   uint64            // security cycles charged on the bus
	AuthMsgs   uint64            // SENSS authentication broadcasts
	AuthUps    uint64            // adaptive interval doublings
	AuthDowns  uint64            // adaptive interval halvings
	PadMsgs    uint64            // memsec pad coherence messages
	MaskStalls uint64            // cycles senders waited for masks

	// Cache behaviour (summed over nodes).
	L1DHits, L1DMisses  uint64
	L1IHits, L1IMisses  uint64
	L2Hits, L2Misses    uint64
	Loads, Stores, RMWs uint64

	// Protection-layer work.
	HashOps     uint64 // integrity hash computations
	HashFetches uint64 // hash-tree lines fetched from memory
	PadHits     uint64
	PadMisses   uint64

	// Detection outcomes (attack experiments).
	Halted     bool
	HaltReason string
}

// SlowdownPct returns the percentage slowdown of r relative to base.
func SlowdownPct(base, r Run) float64 {
	if base.Cycles == 0 {
		return 0
	}
	return (float64(r.Cycles)/float64(base.Cycles) - 1) * 100
}

// TrafficIncreasePct returns the percentage increase in total bus
// transactions of r relative to base.
func TrafficIncreasePct(base, r Run) float64 {
	if base.BusTotal == 0 {
		return 0
	}
	return (float64(r.BusTotal)/float64(base.BusTotal) - 1) * 100
}

// C2CShare returns the fraction of bus transactions that were
// cache-to-cache transfers (the bound on Figure 9's traffic increase at
// interval 1).
func (r Run) C2CShare() float64 {
	if r.BusTotal == 0 {
		return 0
	}
	return float64(r.C2C) / float64(r.BusTotal)
}

// String renders a compact one-line summary.
func (r Run) String() string {
	return fmt.Sprintf("%s/%dP[%s]: %d cycles, %d bus txns (%d c2c, %d auth, %d pad)",
		r.Workload, r.Procs, r.Label, r.Cycles, r.BusTotal, r.C2C, r.AuthMsgs, r.PadMsgs)
}

// Table formats rows of (name, values...) with a header, for the cmd tools.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render produces aligned text output.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown (the format
// EXPERIMENTS.md uses), with the title as a bold caption line.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	row := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteString("\n")
	}
	row(t.Columns)
	b.WriteString("|")
	for range t.Columns {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		row(r)
	}
	return b.String()
}
