package workload

import (
	"fmt"
	"math"

	"senss/internal/cpu"
	"senss/internal/machine"
	"senss/internal/psync"
)

// Ocean is the SPLASH2 "ocean" stand-in: Jacobi relaxation of Laplace's
// equation on a g×g grid with fixed boundaries, rows partitioned across
// threads.  Each sweep reads the neighbor rows, so partition-boundary rows
// ping-pong between caches — the halo-exchange sharing of the original.
type Ocean struct {
	g     int
	iters int

	cur, next array
	barMem    uint64
	bar       *psync.Barrier

	boundaryLo, boundaryHi float64
}

// NewOcean builds the ocean workload at the given scale.
func NewOcean(size Size) *Ocean {
	g, iters := 32, 8
	if size == SizeBench {
		g, iters = 64, 12
	}
	return &Ocean{g: g, iters: iters}
}

// Name implements Workload.
func (w *Ocean) Name() string { return "ocean" }

func (w *Ocean) at(a array, i, j int) uint64 { return a.at(i*w.g + j) }

// Setup implements Workload.
func (w *Ocean) Setup(m *machine.Machine, procs int) []cpu.Program {
	g := w.g
	w.cur = alloc(m, g*g)
	w.next = alloc(m, g*g)
	w.barMem = m.Alloc(64)
	w.bar = psync.NewBarrier(w.barMem, procs)
	w.boundaryLo, w.boundaryHi = 0.0, 100.0

	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			v := 0.0
			if i == 0 {
				v = w.boundaryHi // hot top edge
			}
			m.InitFloat(w.at(w.cur, i, j), v)
			m.InitFloat(w.at(w.next, i, j), v)
		}
	}

	progs := make([]cpu.Program, procs)
	for tid := 0; tid < procs; tid++ {
		tid := tid
		progs[tid] = func(c *cpu.Port) { w.thread(c, tid, procs) }
	}
	return progs
}

func (w *Ocean) thread(c *cpu.Port, tid, procs int) {
	g := w.g
	var ctx psync.Context
	cur, next := w.cur, w.next
	lo, hi := chunk(g-2, procs, tid) // interior rows 1..g-2
	lo, hi = lo+1, hi+1

	for it := 0; it < w.iters; it++ {
		for i := lo; i < hi; i++ {
			for j := 1; j < g-1; j++ {
				v := 0.25 * (c.LoadFloat(w.at(cur, i-1, j)) +
					c.LoadFloat(w.at(cur, i+1, j)) +
					c.LoadFloat(w.at(cur, i, j-1)) +
					c.LoadFloat(w.at(cur, i, j+1)))
				c.StoreFloat(w.at(next, i, j), v)
			}
		}
		w.bar.Wait(c, &ctx)
		cur, next = next, cur
	}
}

// Validate implements Workload: the simulated grid must match a host-side
// Jacobi run exactly (same arithmetic), and stay within boundary bounds.
func (w *Ocean) Validate(m *machine.Machine) error {
	g := w.g
	ref := make([]float64, g*g)
	tmp := make([]float64, g*g)
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			if i == 0 {
				ref[i*g+j] = w.boundaryHi
				tmp[i*g+j] = w.boundaryHi
			}
		}
	}
	for it := 0; it < w.iters; it++ {
		for i := 1; i < g-1; i++ {
			for j := 1; j < g-1; j++ {
				tmp[i*g+j] = 0.25 * (ref[(i-1)*g+j] + ref[(i+1)*g+j] + ref[i*g+j-1] + ref[i*g+j+1])
			}
		}
		ref, tmp = tmp, ref
	}
	// After an even or odd number of sweeps the result sits in w.cur or
	// w.next; pick by iteration parity.
	result := w.cur
	if w.iters%2 == 1 {
		result = w.next
	}
	var worst float64
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			got := m.ReadFloat(w.at(result, i, j))
			if got < w.boundaryLo-1e-9 || got > w.boundaryHi+1e-9 {
				return fmt.Errorf("ocean: cell (%d,%d)=%g outside boundary range", i, j, got)
			}
			if d := math.Abs(got - ref[i*g+j]); d > worst {
				worst = d
			}
		}
	}
	if worst > 1e-9 {
		return fmt.Errorf("ocean: max deviation from reference %.3g", worst)
	}
	return nil
}
