package workload

import (
	"fmt"
	"sort"

	"senss/internal/cpu"
	"senss/internal/machine"
	"senss/internal/psync"
)

// Radix is the SPLASH2 "radix" stand-in: a parallel radix sort of 32-bit
// keys, digit by digit.  Each pass builds per-thread histograms privately,
// merges them into global digit offsets (serialized by a barrier), then
// scatters keys into the destination array — the scatter's scattered
// writes are the benchmark's notorious all-to-all communication.
type Radix struct {
	n      int
	digits int
	bits   uint

	src, dst array
	hist     array // procs × radix counters
	barMem   uint64
	bar      *psync.Barrier

	input []uint64
}

// NewRadix builds the radix workload at the given scale.
func NewRadix(size Size) *Radix {
	n := 1024
	if size == SizeBench {
		n = 4096
	}
	return &Radix{n: n, digits: 4, bits: 8}
}

// Name implements Workload.
func (w *Radix) Name() string { return "radix" }

// Setup implements Workload.
func (w *Radix) Setup(m *machine.Machine, procs int) []cpu.Program {
	radix := 1 << w.bits
	w.src = alloc(m, w.n)
	w.dst = alloc(m, w.n)
	w.hist = alloc(m, procs*radix)
	w.barMem = m.Alloc(64)
	w.bar = psync.NewBarrier(w.barMem, procs)

	r := m.Rand()
	w.input = make([]uint64, w.n)
	for i := range w.input {
		w.input[i] = uint64(r.Uint32())
		m.InitWord(w.src.at(i), w.input[i])
	}

	progs := make([]cpu.Program, procs)
	for tid := 0; tid < procs; tid++ {
		tid := tid
		progs[tid] = func(c *cpu.Port) { w.thread(c, tid, procs) }
	}
	return progs
}

func (w *Radix) thread(c *cpu.Port, tid, procs int) {
	radix := 1 << w.bits
	var ctx psync.Context
	src, dst := w.src, w.dst
	lo, hi := chunk(w.n, procs, tid)

	for pass := 0; pass < w.digits; pass++ {
		shift := uint(pass) * w.bits

		// Local histogram (private region of the shared hist array).
		for d := 0; d < radix; d++ {
			c.Store(w.hist.at(tid*radix+d), 0)
		}
		for i := lo; i < hi; i++ {
			key := c.Load(src.at(i))
			d := int(key>>shift) & (radix - 1)
			slot := w.hist.at(tid*radix + d)
			c.Store(slot, c.Load(slot)+1)
		}
		w.bar.Wait(c, &ctx)

		// Thread 0 turns the histograms into global scatter offsets: for
		// digit d, thread t starts at Σ(all counts of smaller digits) +
		// Σ(counts of d from threads < t).
		if tid == 0 {
			offset := uint64(0)
			for d := 0; d < radix; d++ {
				for t := 0; t < procs; t++ {
					slot := w.hist.at(t*radix + d)
					count := c.Load(slot)
					c.Store(slot, offset)
					offset += count
				}
			}
		}
		w.bar.Wait(c, &ctx)

		// Scatter: stable within a thread's contiguous range.
		for i := lo; i < hi; i++ {
			key := c.Load(src.at(i))
			d := int(key>>shift) & (radix - 1)
			slot := w.hist.at(tid*radix + d)
			pos := c.Load(slot)
			c.Store(slot, pos+1)
			c.Store(dst.at(int(pos)), key)
		}
		w.bar.Wait(c, &ctx)

		src, dst = dst, src
	}
	// digits is even, so the sorted data ends in w.src.
}

// Validate implements Workload.
func (w *Radix) Validate(m *machine.Machine) error {
	want := append([]uint64(nil), w.input...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := 0; i < w.n; i++ {
		got := m.ReadWord(w.src.at(i))
		if got != want[i] {
			return fmt.Errorf("radix: element %d = %d, want %d", i, got, want[i])
		}
	}
	return nil
}
