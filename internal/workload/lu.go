package workload

import (
	"fmt"
	"math"

	"senss/internal/cpu"
	"senss/internal/machine"
	"senss/internal/psync"
)

// LU is the SPLASH2 "lu" stand-in: in-place LU factorization (no
// pivoting) of a dense diagonally-dominant n×n matrix. For each step k the
// owner thread scales the pivot column, then all threads update their
// share of the trailing submatrix — the pivot row/column broadcast is the
// kernel's producer-consumer sharing.
type LU struct {
	n int

	a      array // n×n row-major
	barMem uint64
	bar    *psync.Barrier

	orig []float64
}

// NewLU builds the lu workload at the given scale.
func NewLU(size Size) *LU {
	n := 24
	if size == SizeBench {
		n = 48
	}
	return &LU{n: n}
}

// Name implements Workload.
func (w *LU) Name() string { return "lu" }

func (w *LU) idx(i, j int) uint64 { return w.a.at(i*w.n + j) }

// Setup implements Workload.
func (w *LU) Setup(m *machine.Machine, procs int) []cpu.Program {
	n := w.n
	w.a = alloc(m, n*n)
	w.barMem = m.Alloc(64)
	w.bar = psync.NewBarrier(w.barMem, procs)

	r := m.Rand()
	w.orig = make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := r.Float64()*2 - 1
			if i == j {
				v += float64(n) // diagonal dominance: stable without pivoting
			}
			w.orig[i*n+j] = v
			m.InitFloat(w.idx(i, j), v)
		}
	}

	progs := make([]cpu.Program, procs)
	for tid := 0; tid < procs; tid++ {
		tid := tid
		progs[tid] = func(c *cpu.Port) { w.thread(c, tid, procs) }
	}
	return progs
}

func (w *LU) thread(c *cpu.Port, tid, procs int) {
	n := w.n
	var ctx psync.Context
	for k := 0; k < n-1; k++ {
		// The owner of step k scales the pivot column.
		if k%procs == tid {
			pivot := c.LoadFloat(w.idx(k, k))
			for i := k + 1; i < n; i++ {
				c.StoreFloat(w.idx(i, k), c.LoadFloat(w.idx(i, k))/pivot)
			}
		}
		w.bar.Wait(c, &ctx)

		// All threads update their interleaved rows of the trailing block.
		for i := k + 1; i < n; i++ {
			if i%procs != tid {
				continue
			}
			lik := c.LoadFloat(w.idx(i, k))
			for j := k + 1; j < n; j++ {
				c.StoreFloat(w.idx(i, j),
					c.LoadFloat(w.idx(i, j))-lik*c.LoadFloat(w.idx(k, j)))
			}
		}
		w.bar.Wait(c, &ctx)
	}
}

// Validate implements Workload: L·U must reconstruct the original matrix.
func (w *LU) Validate(m *machine.Machine) error {
	n := w.n
	lu := make([]float64, n*n)
	for i := 0; i < n*n; i++ {
		lu[i] = m.ReadFloat(w.a.at(i))
	}
	var worst float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for k := 0; k <= i && k <= j; k++ {
				l := lu[i*n+k]
				if k == i {
					l = 1
				}
				if k <= j {
					sum += l * lu[k*n+j]
				}
			}
			if d := math.Abs(sum - w.orig[i*n+j]); d > worst {
				worst = d
			}
		}
	}
	if worst > 1e-8*float64(n) {
		return fmt.Errorf("lu: reconstruction error %.3g", worst)
	}
	return nil
}
