package workload

import (
	"fmt"
	"math"

	"senss/internal/cpu"
	"senss/internal/machine"
	"senss/internal/psync"
)

// Barnes is the SPLASH2 "barnes" stand-in: a 2-D Barnes-Hut N-body step.
// Thread 0 builds the quadtree in shared memory (the original's tree build
// is also mostly serialized); all threads then walk the shared tree to
// compute forces on their bodies — heavy read sharing of the upper tree
// levels — and integrate their own bodies.
type Barnes struct {
	n     int
	steps int
	theta float64

	px, py, vx, vy, ax, ay array
	nodes                  array // node pool
	poolCount              uint64
	barMem                 uint64
	bar                    *psync.Barrier

	initPx, initPy, initVx, initVy []float64
}

// Quadtree node layout, in words.
const (
	nodeKind  = 0 // 0 empty, 1 leaf, 2 internal
	nodeMass  = 1
	nodeComX  = 2
	nodeComY  = 3
	nodeCX    = 4 // cell center
	nodeCY    = 5
	nodeHalf  = 6
	nodeChild = 8  // 4 children: pool index+1, 0 = none
	nodeBody  = 12 // body index+1 for leaves
	nodeWords = 16 // 128 bytes, 2 cache lines
)

const (
	kindEmpty    = 0
	kindLeaf     = 1
	kindInternal = 2
)

// NewBarnes builds the barnes workload at the given scale.
func NewBarnes(size Size) *Barnes {
	n := 32
	if size == SizeBench {
		n = 96
	}
	return &Barnes{n: n, steps: 1, theta: 0.5}
}

// Name implements Workload.
func (w *Barnes) Name() string { return "barnes" }

// Setup implements Workload.
func (w *Barnes) Setup(m *machine.Machine, procs int) []cpu.Program {
	n := w.n
	w.px = alloc(m, n)
	w.py = alloc(m, n)
	w.vx = alloc(m, n)
	w.vy = alloc(m, n)
	w.ax = alloc(m, n)
	w.ay = alloc(m, n)
	maxNodes := 8*n + 16
	w.nodes = alloc(m, maxNodes*nodeWords)
	w.poolCount = m.Alloc(64)
	w.barMem = m.Alloc(64)
	w.bar = psync.NewBarrier(w.barMem, procs)

	r := m.Rand()
	for i := 0; i < n; i++ {
		px := r.Float64()*2 - 1
		py := r.Float64()*2 - 1
		vx := (r.Float64()*2 - 1) * 0.1
		vy := (r.Float64()*2 - 1) * 0.1
		w.initPx = append(w.initPx, px)
		w.initPy = append(w.initPy, py)
		w.initVx = append(w.initVx, vx)
		w.initVy = append(w.initVy, vy)
		m.InitFloat(w.px.at(i), px)
		m.InitFloat(w.py.at(i), py)
		m.InitFloat(w.vx.at(i), vx)
		m.InitFloat(w.vy.at(i), vy)
	}

	progs := make([]cpu.Program, procs)
	for tid := 0; tid < procs; tid++ {
		tid := tid
		progs[tid] = func(c *cpu.Port) { w.thread(c, tid, procs) }
	}
	return progs
}

func (w *Barnes) nodeAddr(idx int, word int) uint64 {
	return w.nodes.at(idx*nodeWords + word)
}

// newNode grabs a fresh pool node (single-threaded build: plain counter).
func (w *Barnes) newNode(c *cpu.Port, cx, cy, half float64) int {
	idx := int(c.Load(w.poolCount))
	c.Store(w.poolCount, uint64(idx+1))
	c.Store(w.nodeAddr(idx, nodeKind), kindEmpty)
	c.StoreFloat(w.nodeAddr(idx, nodeCX), cx)
	c.StoreFloat(w.nodeAddr(idx, nodeCY), cy)
	c.StoreFloat(w.nodeAddr(idx, nodeHalf), half)
	for q := 0; q < 4; q++ {
		c.Store(w.nodeAddr(idx, nodeChild+q), 0)
	}
	return idx
}

// quadrant returns which child cell (x, y) falls in, given the cell center.
func quadrant(x, y, cx, cy float64) int {
	q := 0
	if x >= cx {
		q |= 1
	}
	if y >= cy {
		q |= 2
	}
	return q
}

// insert places body b into the tree rooted at node idx.
func (w *Barnes) insert(c *cpu.Port, idx, b int, x, y float64) {
	for {
		kind := c.Load(w.nodeAddr(idx, nodeKind))
		cx := c.LoadFloat(w.nodeAddr(idx, nodeCX))
		cy := c.LoadFloat(w.nodeAddr(idx, nodeCY))
		half := c.LoadFloat(w.nodeAddr(idx, nodeHalf))
		switch kind {
		case kindEmpty:
			c.Store(w.nodeAddr(idx, nodeKind), kindLeaf)
			c.Store(w.nodeAddr(idx, nodeBody), uint64(b+1))
			return
		case kindLeaf:
			// Split: push the resident body down, retry.
			old := int(c.Load(w.nodeAddr(idx, nodeBody))) - 1
			ox := c.LoadFloat(w.px.at(old))
			oy := c.LoadFloat(w.py.at(old))
			c.Store(w.nodeAddr(idx, nodeKind), kindInternal)
			c.Store(w.nodeAddr(idx, nodeBody), 0)
			oq := quadrant(ox, oy, cx, cy)
			child := w.childFor(c, idx, oq, cx, cy, half)
			w.insert(c, child, old, ox, oy)
		case kindInternal:
			q := quadrant(x, y, cx, cy)
			idx = w.childFor(c, idx, q, cx, cy, half)
		}
	}
}

// childFor returns (creating on demand) child q of node idx.
func (w *Barnes) childFor(c *cpu.Port, idx, q int, cx, cy, half float64) int {
	ref := c.Load(w.nodeAddr(idx, nodeChild+q))
	if ref != 0 {
		return int(ref) - 1
	}
	h := half / 2
	nx, ny := cx-h, cy-h
	if q&1 != 0 {
		nx = cx + h
	}
	if q&2 != 0 {
		ny = cy + h
	}
	child := w.newNode(c, nx, ny, h)
	c.Store(w.nodeAddr(idx, nodeChild+q), uint64(child+1))
	return child
}

// summarize computes mass and center-of-mass bottom-up.
func (w *Barnes) summarize(c *cpu.Port, idx int) (mass, comX, comY float64) {
	kind := c.Load(w.nodeAddr(idx, nodeKind))
	switch kind {
	case kindLeaf:
		b := int(c.Load(w.nodeAddr(idx, nodeBody))) - 1
		mass = 1.0
		comX = c.LoadFloat(w.px.at(b))
		comY = c.LoadFloat(w.py.at(b))
	case kindInternal:
		for q := 0; q < 4; q++ {
			ref := c.Load(w.nodeAddr(idx, nodeChild+q))
			if ref == 0 {
				continue
			}
			m, x, y := w.summarize(c, int(ref)-1)
			mass += m
			comX += m * x
			comY += m * y
		}
		if mass > 0 {
			comX /= mass
			comY /= mass
		}
	}
	c.StoreFloat(w.nodeAddr(idx, nodeMass), mass)
	c.StoreFloat(w.nodeAddr(idx, nodeComX), comX)
	c.StoreFloat(w.nodeAddr(idx, nodeComY), comY)
	return mass, comX, comY
}

const (
	softening = 0.05
	dt        = 0.01
)

// force accumulates the acceleration on body b by walking the tree.
func (w *Barnes) force(c *cpu.Port, b int, x, y float64) (axv, ayv float64) {
	stack := []int{0}
	for len(stack) > 0 {
		idx := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		kind := c.Load(w.nodeAddr(idx, nodeKind))
		if kind == kindEmpty {
			continue
		}
		mass := c.LoadFloat(w.nodeAddr(idx, nodeMass))
		comX := c.LoadFloat(w.nodeAddr(idx, nodeComX))
		comY := c.LoadFloat(w.nodeAddr(idx, nodeComY))
		dx := comX - x
		dy := comY - y
		dist2 := dx*dx + dy*dy + softening*softening
		if kind == kindLeaf {
			bi := int(c.Load(w.nodeAddr(idx, nodeBody))) - 1
			if bi == b {
				continue
			}
			inv := 1 / (dist2 * math.Sqrt(dist2))
			axv += mass * dx * inv
			ayv += mass * dy * inv
			continue
		}
		half := c.LoadFloat(w.nodeAddr(idx, nodeHalf))
		if (2*half)*(2*half) < w.theta*w.theta*dist2 {
			inv := 1 / (dist2 * math.Sqrt(dist2))
			axv += mass * dx * inv
			ayv += mass * dy * inv
			continue
		}
		for q := 0; q < 4; q++ {
			if ref := c.Load(w.nodeAddr(idx, nodeChild+q)); ref != 0 {
				stack = append(stack, int(ref)-1)
			}
		}
	}
	return axv, ayv
}

func (w *Barnes) thread(c *cpu.Port, tid, procs int) {
	var ctx psync.Context
	n := w.n
	for step := 0; step < w.steps; step++ {
		if tid == 0 {
			// Rebuild the tree: reset the pool, make the root, insert all.
			c.Store(w.poolCount, 0)
			root := w.newNode(c, 0, 0, 2.0)
			for b := 0; b < n; b++ {
				w.insert(c, root, b, c.LoadFloat(w.px.at(b)), c.LoadFloat(w.py.at(b)))
			}
			w.summarize(c, root)
		}
		w.bar.Wait(c, &ctx)

		lo, hi := chunk(n, procs, tid)
		for b := lo; b < hi; b++ {
			x := c.LoadFloat(w.px.at(b))
			y := c.LoadFloat(w.py.at(b))
			axv, ayv := w.force(c, b, x, y)
			c.StoreFloat(w.ax.at(b), axv)
			c.StoreFloat(w.ay.at(b), ayv)
		}
		w.bar.Wait(c, &ctx)

		for b := lo; b < hi; b++ {
			vx := c.LoadFloat(w.vx.at(b)) + dt*c.LoadFloat(w.ax.at(b))
			vy := c.LoadFloat(w.vy.at(b)) + dt*c.LoadFloat(w.ay.at(b))
			c.StoreFloat(w.vx.at(b), vx)
			c.StoreFloat(w.vy.at(b), vy)
			c.StoreFloat(w.px.at(b), c.LoadFloat(w.px.at(b))+dt*vx)
			c.StoreFloat(w.py.at(b), c.LoadFloat(w.py.at(b))+dt*vy)
		}
		w.bar.Wait(c, &ctx)
	}
}

// Validate implements Workload: the Barnes-Hut accelerations of the final
// force pass must be close to a direct O(n²) sum over the same positions
// (θ=0.5 keeps the approximation within a few percent).
func (w *Barnes) Validate(m *machine.Machine) error {
	n := w.n
	// Reconstruct the positions at the start of the last force pass by
	// rolling velocities back one step.
	px := make([]float64, n)
	py := make([]float64, n)
	for b := 0; b < n; b++ {
		vx := m.ReadFloat(w.vx.at(b))
		vy := m.ReadFloat(w.vy.at(b))
		px[b] = m.ReadFloat(w.px.at(b)) - dt*vx
		py[b] = m.ReadFloat(w.py.at(b)) - dt*vy
	}
	var relErrs []float64
	for b := 0; b < n; b++ {
		var axd, ayd float64
		for o := 0; o < n; o++ {
			if o == b {
				continue
			}
			dx := px[o] - px[b]
			dy := py[o] - py[b]
			d2 := dx*dx + dy*dy + softening*softening
			inv := 1 / (d2 * math.Sqrt(d2))
			axd += dx * inv
			ayd += dy * inv
		}
		gx := m.ReadFloat(w.ax.at(b))
		gy := m.ReadFloat(w.ay.at(b))
		mag := math.Hypot(axd, ayd)
		if mag < 1e-12 {
			continue
		}
		relErrs = append(relErrs, math.Hypot(gx-axd, gy-ayd)/mag)
	}
	var worst float64
	var sum float64
	for _, e := range relErrs {
		sum += e
		if e > worst {
			worst = e
		}
	}
	mean := sum / float64(len(relErrs))
	if mean > 0.05 || worst > 0.5 {
		return fmt.Errorf("barnes: BH vs direct acceleration error mean %.3f worst %.3f", mean, worst)
	}
	// Sanity: no NaNs escaped.
	for b := 0; b < n; b++ {
		if math.IsNaN(m.ReadFloat(w.px.at(b))) || math.IsNaN(m.ReadFloat(w.vy.at(b))) {
			return fmt.Errorf("barnes: NaN in body %d state", b)
		}
	}
	return nil
}
