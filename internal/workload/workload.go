// Package workload reimplements the SPLASH2 kernels the paper evaluates —
// fft, radix, barnes, lu, ocean — as parallel programs that execute
// entirely through the simulated coherent shared memory, synchronized with
// locks and barriers built on simulated atomics.  Problem sizes are scaled
// to simulator speed (DESIGN.md §2); the sharing patterns (transpose,
// scatter permutation, blocked factorization, stencil halos, tree walks)
// are preserved, since they drive the cache-to-cache traffic SENSS taxes.
package workload

import (
	"fmt"

	"senss/internal/cpu"
	"senss/internal/machine"
)

// Workload is a runnable, self-validating kernel.
type Workload interface {
	// Name is the registry key ("fft", "radix", ...).
	Name() string
	// Setup allocates and initializes simulated memory on m and returns
	// one program per processor. It must be called exactly once, before
	// m.Run.
	Setup(m *machine.Machine, procs int) []cpu.Program
	// Validate checks the computation's result after the run.
	Validate(m *machine.Machine) error
}

// Size selects a problem scale.
type Size int

// Problem scales.
const (
	// SizeTest is small enough for unit tests (sub-second full runs).
	SizeTest Size = iota
	// SizeBench is the scale used by the figure-regeneration benches.
	SizeBench
)

// New constructs a workload by name. The paper's five benchmarks plus the
// microbenchmarks are available.
func New(name string, size Size) (Workload, error) {
	switch name {
	case "fft":
		return NewFFT(size), nil
	case "radix":
		return NewRadix(size), nil
	case "barnes":
		return NewBarnes(size), nil
	case "lu":
		return NewLU(size), nil
	case "ocean":
		return NewOcean(size), nil
	case "water":
		return NewWater(size), nil
	case "cholesky":
		return NewCholesky(size), nil
	case "falseshare":
		return NewFalseSharing(size), nil
	case "prodcons":
		return NewProducerConsumer(size), nil
	case "lockcontend":
		return NewLockContention(size), nil
	}
	return nil, fmt.Errorf("workload: unknown %q", name)
}

// PaperSuite lists the five SPLASH2 programs of the paper's evaluation, in
// the order of its figures.
func PaperSuite() []string {
	return []string{"fft", "radix", "barnes", "lu", "ocean"}
}

// AllNames lists every available workload: the paper suite, the extra
// SPLASH2-style kernels (water, cholesky), and the microbenchmarks.
func AllNames() []string {
	return append(PaperSuite(), "water", "cholesky", "falseshare", "prodcons", "lockcontend")
}

// array is a word-indexed view of a simulated allocation.
type array struct{ base uint64 }

func (a array) at(i int) uint64 { return a.base + uint64(i)*8 }

// alloc reserves n 8-byte words.
func alloc(m *machine.Machine, n int) array {
	return array{base: m.Alloc(uint64(n) * 8)}
}

// chunk splits [0, n) into procs contiguous ranges and returns the tid-th.
func chunk(n, procs, tid int) (lo, hi int) {
	per := (n + procs - 1) / procs
	lo = tid * per
	hi = lo + per
	if hi > n {
		hi = n
	}
	if lo > n {
		lo = n
	}
	return lo, hi
}
