package workload

import (
	"testing"

	"senss/internal/machine"
)

func testConfig(procs int, mode machine.SecurityMode) machine.Config {
	cfg := machine.DefaultConfig()
	cfg.Procs = procs
	cfg.Coherence.L1Size = 4 << 10
	cfg.Coherence.L2Size = 64 << 10
	cfg.CPU.CodeBytes = 2 << 10
	cfg.Security.Mode = mode
	return cfg
}

// runWorkload builds, runs, and validates one workload on one config.
func runWorkload(t *testing.T, name string, procs int, mode machine.SecurityMode) {
	t.Helper()
	w, err := New(name, SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(procs, mode)
	if mode == machine.SecurityBusMem {
		cfg.Security.Integrity = true
	}
	m := machine.New(cfg)
	progs := w.Setup(m, procs)
	run, err := m.Run(progs)
	if err != nil {
		t.Fatalf("%s/%dP/%s: %v", name, procs, mode, err)
	}
	if halted, why := m.Halted(); halted {
		t.Fatalf("%s/%dP/%s: false alarm: %s", name, procs, mode, why)
	}
	if err := w.Validate(m); err != nil {
		t.Fatalf("%s/%dP/%s: %v", name, procs, mode, err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("%s/%dP/%s: invariants: %v", name, procs, mode, err)
	}
	if run.Cycles == 0 {
		t.Fatalf("%s: zero cycles", name)
	}
}

func TestWorkloadsBaseline(t *testing.T) {
	for _, name := range AllNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			runWorkload(t, name, 4, machine.SecurityOff)
		})
	}
}

func TestWorkloadsUnderSENSS(t *testing.T) {
	for _, name := range AllNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			runWorkload(t, name, 4, machine.SecurityBus)
		})
	}
}

func TestWorkloadsUnderFullProtection(t *testing.T) {
	for _, name := range PaperSuite() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			runWorkload(t, name, 2, machine.SecurityBusMem)
		})
	}
}

func TestWorkloadsTwoProcs(t *testing.T) {
	for _, name := range PaperSuite() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			runWorkload(t, name, 2, machine.SecurityOff)
		})
	}
}

func TestWorkloadsSingleProc(t *testing.T) {
	// Degenerate single-processor runs must still validate (no deadlocks
	// in barriers sized for 1).
	for _, name := range []string{"fft", "radix", "lu", "ocean", "barnes"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			runWorkload(t, name, 1, machine.SecurityOff)
		})
	}
}

// TestWorkloadsBenchScale validates every kernel at the larger problem
// size used by the figure harness (guarded for speed).
func TestWorkloadsBenchScale(t *testing.T) {
	if testing.Short() {
		t.Skip("bench-scale validation in short mode")
	}
	for _, name := range PaperSuite() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w, err := New(name, SizeBench)
			if err != nil {
				t.Fatal(err)
			}
			cfg := testConfig(4, machine.SecurityOff)
			cfg.Coherence.L2Size = 256 << 10
			m := machine.New(cfg)
			progs := w.Setup(m, 4)
			if _, err := m.Run(progs); err != nil {
				t.Fatal(err)
			}
			if err := w.Validate(m); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestUnknownWorkload(t *testing.T) {
	if _, err := New("nope", SizeTest); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestChunkCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 100} {
		for procs := 1; procs <= 5; procs++ {
			covered := make([]bool, n)
			for tid := 0; tid < procs; tid++ {
				lo, hi := chunk(n, procs, tid)
				for i := lo; i < hi; i++ {
					if covered[i] {
						t.Fatalf("n=%d procs=%d: index %d covered twice", n, procs, i)
					}
					covered[i] = true
				}
			}
			for i, c := range covered {
				if !c {
					t.Fatalf("n=%d procs=%d: index %d uncovered", n, procs, i)
				}
			}
		}
	}
}

// TestWorkloadCacheToCacheTraffic asserts every paper workload actually
// generates cache-to-cache transfers at 4P — the traffic SENSS protects.
func TestWorkloadCacheToCacheTraffic(t *testing.T) {
	for _, name := range PaperSuite() {
		w, err := New(name, SizeTest)
		if err != nil {
			t.Fatal(err)
		}
		m := machine.New(testConfig(4, machine.SecurityOff))
		progs := w.Setup(m, 4)
		run, err := m.Run(progs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if run.C2C == 0 {
			t.Errorf("%s: no cache-to-cache transfers at 4P", name)
		}
	}
}
