package workload

import (
	"fmt"
	"math"

	"senss/internal/cpu"
	"senss/internal/machine"
	"senss/internal/psync"
)

// Water is a SPLASH2 "water-nsquared" stand-in: molecular dynamics with
// O(n²) pairwise short-range forces. Each thread owns a contiguous slice
// of molecules, reads every other molecule's position each step (all-to-
// all read sharing of the position arrays), accumulates forces privately,
// and integrates its own molecules after a barrier.
type Water struct {
	n     int
	steps int

	px, py, vx, vy, fx, fy array
	barMem                 uint64
	bar                    *psync.Barrier

	initPx, initPy, initVx, initVy []float64
}

// Force-field constants (arbitrary but stable for the step size).
const (
	waterEps   = 1e-4
	waterSigma = 0.25
	waterDt    = 0.005
)

// NewWater builds the water workload at the given scale.
func NewWater(size Size) *Water {
	n := 24
	if size == SizeBench {
		n = 64
	}
	return &Water{n: n, steps: 2}
}

// Name implements Workload.
func (w *Water) Name() string { return "water" }

// Setup implements Workload.
func (w *Water) Setup(m *machine.Machine, procs int) []cpu.Program {
	n := w.n
	w.px = alloc(m, n)
	w.py = alloc(m, n)
	w.vx = alloc(m, n)
	w.vy = alloc(m, n)
	w.fx = alloc(m, n)
	w.fy = alloc(m, n)
	w.barMem = m.Alloc(64)
	w.bar = psync.NewBarrier(w.barMem, procs)

	r := m.Rand()
	for i := 0; i < n; i++ {
		// Lattice positions with a small jitter keep molecules separated.
		px := float64(i%8) + 0.2*r.Float64()
		py := float64(i/8) + 0.2*r.Float64()
		vx := (r.Float64()*2 - 1) * 0.05
		vy := (r.Float64()*2 - 1) * 0.05
		w.initPx = append(w.initPx, px)
		w.initPy = append(w.initPy, py)
		w.initVx = append(w.initVx, vx)
		w.initVy = append(w.initVy, vy)
		m.InitFloat(w.px.at(i), px)
		m.InitFloat(w.py.at(i), py)
		m.InitFloat(w.vx.at(i), vx)
		m.InitFloat(w.vy.at(i), vy)
	}
	progs := make([]cpu.Program, procs)
	for tid := 0; tid < procs; tid++ {
		tid := tid
		progs[tid] = func(c *cpu.Port) { w.thread(c, tid, procs) }
	}
	return progs
}

// ljForce is the pair force of the (simplified) Lennard-Jones potential.
func ljForce(dx, dy float64) (fx, fy float64) {
	r2 := dx*dx + dy*dy + 1e-6
	s2 := waterSigma * waterSigma / r2
	s6 := s2 * s2 * s2
	mag := 24 * waterEps * (2*s6*s6 - s6) / r2
	return mag * dx, mag * dy
}

func (w *Water) thread(c *cpu.Port, tid, procs int) {
	n := w.n
	var ctx psync.Context
	lo, hi := chunk(n, procs, tid)

	for step := 0; step < w.steps; step++ {
		// Force phase: each thread accumulates the force on its own
		// molecules, reading every position (O(n²/P) pair evaluations).
		for i := lo; i < hi; i++ {
			xi := c.LoadFloat(w.px.at(i))
			yi := c.LoadFloat(w.py.at(i))
			var fx, fy float64
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				dx := xi - c.LoadFloat(w.px.at(j))
				dy := yi - c.LoadFloat(w.py.at(j))
				px, py := ljForce(dx, dy)
				fx += px
				fy += py
			}
			c.StoreFloat(w.fx.at(i), fx)
			c.StoreFloat(w.fy.at(i), fy)
		}
		w.bar.Wait(c, &ctx)

		// Integration phase: own molecules only.
		for i := lo; i < hi; i++ {
			vx := c.LoadFloat(w.vx.at(i)) + waterDt*c.LoadFloat(w.fx.at(i))
			vy := c.LoadFloat(w.vy.at(i)) + waterDt*c.LoadFloat(w.fy.at(i))
			c.StoreFloat(w.vx.at(i), vx)
			c.StoreFloat(w.vy.at(i), vy)
			c.StoreFloat(w.px.at(i), c.LoadFloat(w.px.at(i))+waterDt*vx)
			c.StoreFloat(w.py.at(i), c.LoadFloat(w.py.at(i))+waterDt*vy)
		}
		w.bar.Wait(c, &ctx)
	}
}

// Validate implements Workload: the force accumulation order within one
// molecule is deterministic (j ascending), so the simulated trajectory
// must match a host-side replay bit for bit.
func (w *Water) Validate(m *machine.Machine) error {
	n := w.n
	px := append([]float64(nil), w.initPx...)
	py := append([]float64(nil), w.initPy...)
	vx := append([]float64(nil), w.initVx...)
	vy := append([]float64(nil), w.initVy...)
	fx := make([]float64, n)
	fy := make([]float64, n)
	for step := 0; step < w.steps; step++ {
		for i := 0; i < n; i++ {
			var sx, sy float64
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				gx, gy := ljForce(px[i]-px[j], py[i]-py[j])
				sx += gx
				sy += gy
			}
			fx[i], fy[i] = sx, sy
		}
		for i := 0; i < n; i++ {
			vx[i] += waterDt * fx[i]
			vy[i] += waterDt * fy[i]
			px[i] += waterDt * vx[i]
			py[i] += waterDt * vy[i]
		}
	}
	for i := 0; i < n; i++ {
		gx := m.ReadFloat(w.px.at(i))
		gy := m.ReadFloat(w.py.at(i))
		if math.Abs(gx-px[i]) > 1e-12 || math.Abs(gy-py[i]) > 1e-12 {
			return fmt.Errorf("water: molecule %d at (%g,%g), want (%g,%g)", i, gx, gy, px[i], py[i])
		}
	}
	return nil
}
