package workload

import (
	"fmt"
	"math"

	"senss/internal/cpu"
	"senss/internal/machine"
	"senss/internal/psync"
)

// FFT is the SPLASH2 "fft" stand-in: an n-point iterative radix-2
// Cooley-Tukey transform over complex data held in shared memory, with all
// threads cooperating on every stage (barrier-separated).  The butterfly
// partners at large strides live in other processors' partitions, which
// creates exactly the transpose-style cache-to-cache traffic the original
// six-step FFT is known for.
type FFT struct {
	n int

	re, im array
	twRe   array
	twIm   array
	barMem uint64
	bar    *psync.Barrier

	input []complex128 // retained for validation
}

// NewFFT builds the fft workload at the given scale.
func NewFFT(size Size) *FFT {
	n := 256
	if size == SizeBench {
		n = 1024
	}
	return &FFT{n: n}
}

// Name implements Workload.
func (f *FFT) Name() string { return "fft" }

// Setup implements Workload.
func (f *FFT) Setup(m *machine.Machine, procs int) []cpu.Program {
	n := f.n
	f.re = alloc(m, n)
	f.im = alloc(m, n)
	f.twRe = alloc(m, n/2)
	f.twIm = alloc(m, n/2)
	f.barMem = m.Alloc(64)
	f.bar = psync.NewBarrier(f.barMem, procs)

	// Deterministic pseudo-random input signal.
	r := m.Rand()
	f.input = make([]complex128, n)
	for i := 0; i < n; i++ {
		v := complex(r.Float64()*2-1, r.Float64()*2-1)
		f.input[i] = v
		m.InitFloat(f.re.at(i), real(v))
		m.InitFloat(f.im.at(i), imag(v))
	}
	// Shared twiddle table (read-only sharing across all processors).
	for k := 0; k < n/2; k++ {
		ang := -2 * math.Pi * float64(k) / float64(n)
		m.InitFloat(f.twRe.at(k), math.Cos(ang))
		m.InitFloat(f.twIm.at(k), math.Sin(ang))
	}

	progs := make([]cpu.Program, procs)
	for tid := 0; tid < procs; tid++ {
		tid := tid
		progs[tid] = func(c *cpu.Port) { f.thread(c, tid, procs) }
	}
	return progs
}

func (f *FFT) thread(c *cpu.Port, tid, procs int) {
	n := f.n
	var ctx psync.Context

	// Phase 1: bit-reversal permutation. Each thread swaps its share of
	// index pairs (i < j only, so each pair is swapped exactly once).
	lo, hi := chunk(n, procs, tid)
	bits := 0
	for 1<<bits < n {
		bits++
	}
	for i := lo; i < hi; i++ {
		j := reverseBits(i, bits)
		if i < j {
			ri := c.LoadFloat(f.re.at(i))
			ii := c.LoadFloat(f.im.at(i))
			rj := c.LoadFloat(f.re.at(j))
			ij := c.LoadFloat(f.im.at(j))
			c.StoreFloat(f.re.at(i), rj)
			c.StoreFloat(f.im.at(i), ij)
			c.StoreFloat(f.re.at(j), ri)
			c.StoreFloat(f.im.at(j), ii)
		}
	}
	f.bar.Wait(c, &ctx)

	// Phase 2: log2(n) butterfly stages, barrier-separated. Butterflies
	// are dealt to threads by index, so partners cross partitions at the
	// larger strides.
	for span := 1; span < n; span <<= 1 {
		stride := n / (2 * span) // twiddle stride
		total := n / 2
		blo, bhi := chunk(total, procs, tid)
		for b := blo; b < bhi; b++ {
			block := b / span
			off := b % span
			i := block*2*span + off
			j := i + span
			wr := c.LoadFloat(f.twRe.at(off * stride))
			wi := c.LoadFloat(f.twIm.at(off * stride))
			rj := c.LoadFloat(f.re.at(j))
			ij := c.LoadFloat(f.im.at(j))
			tr := wr*rj - wi*ij
			ti := wr*ij + wi*rj
			ri := c.LoadFloat(f.re.at(i))
			ii := c.LoadFloat(f.im.at(i))
			c.StoreFloat(f.re.at(i), ri+tr)
			c.StoreFloat(f.im.at(i), ii+ti)
			c.StoreFloat(f.re.at(j), ri-tr)
			c.StoreFloat(f.im.at(j), ii-ti)
		}
		f.bar.Wait(c, &ctx)
	}
}

func reverseBits(v, bits int) int {
	out := 0
	for b := 0; b < bits; b++ {
		out = out<<1 | (v>>b)&1
	}
	return out
}

// Validate implements Workload: the simulated spectrum must match a
// reference DFT of the retained input.
func (f *FFT) Validate(m *machine.Machine) error {
	n := f.n
	// Reference via a host-side FFT of the same input.
	want := hostFFT(f.input)
	var worst float64
	var scale float64
	for i := 0; i < n; i++ {
		gr := m.ReadFloat(f.re.at(i))
		gi := m.ReadFloat(f.im.at(i))
		d := cmplxAbs(complex(gr, gi) - want[i])
		if d > worst {
			worst = d
		}
		if a := cmplxAbs(want[i]); a > scale {
			scale = a
		}
	}
	if scale == 0 {
		scale = 1
	}
	if worst/scale > 1e-9 {
		return fmt.Errorf("fft: max error %.3g (relative %.3g)", worst, worst/scale)
	}
	return nil
}

func cmplxAbs(c complex128) float64 { return math.Hypot(real(c), imag(c)) }

// hostFFT computes the same radix-2 DIT transform natively.
func hostFFT(in []complex128) []complex128 {
	n := len(in)
	out := make([]complex128, n)
	bits := 0
	for 1<<bits < n {
		bits++
	}
	for i, v := range in {
		out[reverseBits(i, bits)] = v
	}
	for span := 1; span < n; span <<= 1 {
		for block := 0; block < n/(2*span); block++ {
			for off := 0; off < span; off++ {
				ang := -2 * math.Pi * float64(off*(n/(2*span))) / float64(n)
				w := complex(math.Cos(ang), math.Sin(ang))
				i := block*2*span + off
				j := i + span
				t := w * out[j]
				out[i], out[j] = out[i]+t, out[i]-t
			}
		}
	}
	return out
}
