package workload

import (
	"fmt"

	"senss/internal/cpu"
	"senss/internal/machine"
	"senss/internal/psync"
)

// FalseSharing has every thread hammer its own word of one shared cache
// line — maximal invalidation ping-pong with no true communication. It is
// the Figure 11 / §7.8 microbenchmark: tiny timing perturbations reorder
// the interleaving and visibly change hit/miss patterns.
type FalseSharing struct {
	iters int
	line  array
	procs int
}

// NewFalseSharing builds the false-sharing microbenchmark.
func NewFalseSharing(size Size) *FalseSharing {
	iters := 200
	if size == SizeBench {
		iters = 1000
	}
	return &FalseSharing{iters: iters}
}

// Name implements Workload.
func (w *FalseSharing) Name() string { return "falseshare" }

// Setup implements Workload.
func (w *FalseSharing) Setup(m *machine.Machine, procs int) []cpu.Program {
	w.procs = procs
	w.line = alloc(m, 8) // one 64-byte line: 8 words
	progs := make([]cpu.Program, procs)
	for tid := 0; tid < procs; tid++ {
		tid := tid
		progs[tid] = func(c *cpu.Port) {
			word := w.line.at(tid % 8)
			for k := 0; k < w.iters; k++ {
				c.Store(word, c.Load(word)+1)
			}
		}
	}
	return progs
}

// Validate implements Workload.
func (w *FalseSharing) Validate(m *machine.Machine) error {
	for tid := 0; tid < w.procs && tid < 8; tid++ {
		want := uint64(w.iters)
		// Multiple threads share a word when procs > 8.
		n := 0
		for t := tid; t < w.procs; t += 8 {
			n++
		}
		want *= uint64(n)
		if got := m.ReadWord(w.line.at(tid)); got != want {
			return fmt.Errorf("falseshare: word %d = %d, want %d", tid, got, want)
		}
	}
	return nil
}

// ProducerConsumer streams items through a shared ring buffer from even
// to odd threads — pure point-to-point cache-to-cache traffic.
type ProducerConsumer struct {
	items int
	ring  array
	head  array // producer cursor, consumer cursor (separate lines)
	sum   array // per-consumer checksums
	procs int
}

// ringSlots is the ring capacity in items.
const ringSlots = 16

// NewProducerConsumer builds the streaming microbenchmark.
func NewProducerConsumer(size Size) *ProducerConsumer {
	items := 300
	if size == SizeBench {
		items = 1500
	}
	return &ProducerConsumer{items: items}
}

// Name implements Workload.
func (w *ProducerConsumer) Name() string { return "prodcons" }

// Setup implements Workload.
func (w *ProducerConsumer) Setup(m *machine.Machine, procs int) []cpu.Program {
	if procs < 2 {
		procs = 2
	}
	w.procs = procs
	pairs := procs / 2
	w.ring = alloc(m, pairs*ringSlots)
	w.head = alloc(m, pairs*16) // head and tail on separate lines per pair
	w.sum = alloc(m, pairs)

	progs := make([]cpu.Program, procs)
	for pair := 0; pair < pairs; pair++ {
		pair := pair
		headAddr := w.head.at(pair * 16)
		tailAddr := w.head.at(pair*16 + 8)
		slot := func(i uint64) uint64 { return w.ring.at(pair*ringSlots + int(i%ringSlots)) }
		progs[2*pair] = func(c *cpu.Port) { // producer
			for i := uint64(1); i <= uint64(w.items); i++ {
				for c.Load(headAddr)-c.Load(tailAddr) >= ringSlots {
					c.Think(20)
				}
				h := c.Load(headAddr)
				c.Store(slot(h), i*3)
				c.Store(headAddr, h+1)
			}
		}
		progs[2*pair+1] = func(c *cpu.Port) { // consumer
			var sum uint64
			for i := 0; i < w.items; i++ {
				for c.Load(headAddr) == c.Load(tailAddr) {
					c.Think(20)
				}
				t := c.Load(tailAddr)
				sum += c.Load(slot(t))
				c.Store(tailAddr, t+1)
			}
			c.Store(w.sum.at(pair), sum)
		}
	}
	return progs
}

// Validate implements Workload.
func (w *ProducerConsumer) Validate(m *machine.Machine) error {
	pairs := w.procs / 2
	n := uint64(w.items)
	want := 3 * n * (n + 1) / 2
	for pair := 0; pair < pairs; pair++ {
		if got := m.ReadWord(w.sum.at(pair)); got != want {
			return fmt.Errorf("prodcons: pair %d checksum %d, want %d", pair, got, want)
		}
	}
	return nil
}

// LockContention has all threads fight over one spinlock protecting a
// shared counter — the lock line and counter line bounce on every
// critical section.
type LockContention struct {
	iters   int
	lock    *psync.Lock
	counter array
	procs   int
}

// NewLockContention builds the lock-contention microbenchmark.
func NewLockContention(size Size) *LockContention {
	iters := 100
	if size == SizeBench {
		iters = 500
	}
	return &LockContention{iters: iters}
}

// Name implements Workload.
func (w *LockContention) Name() string { return "lockcontend" }

// Setup implements Workload.
func (w *LockContention) Setup(m *machine.Machine, procs int) []cpu.Program {
	w.procs = procs
	w.lock = psync.NewLock(m.Alloc(64))
	w.counter = alloc(m, 8)
	progs := make([]cpu.Program, procs)
	for tid := 0; tid < procs; tid++ {
		progs[tid] = func(c *cpu.Port) {
			for k := 0; k < w.iters; k++ {
				w.lock.Acquire(c)
				c.Store(w.counter.at(0), c.Load(w.counter.at(0))+1)
				w.lock.Release(c)
			}
		}
	}
	return progs
}

// Validate implements Workload.
func (w *LockContention) Validate(m *machine.Machine) error {
	want := uint64(w.procs * w.iters)
	if got := m.ReadWord(w.counter.at(0)); got != want {
		return fmt.Errorf("lockcontend: counter %d, want %d", got, want)
	}
	return nil
}
