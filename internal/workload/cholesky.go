package workload

import (
	"fmt"
	"math"

	"senss/internal/cpu"
	"senss/internal/machine"
	"senss/internal/psync"
)

// Cholesky is a SPLASH2 "cholesky" stand-in: the dense right-looking
// Cholesky factorization A = L·Lᵀ of a symmetric positive-definite
// matrix. Step k's owner computes the pivot column; all threads then
// update their interleaved share of the trailing submatrix, consuming the
// freshly produced column — the same producer-consumer column broadcast
// as LU, plus a serial sqrt on the critical path.
type Cholesky struct {
	n int

	a      array // n×n row-major (lower triangle factored in place)
	barMem uint64
	bar    *psync.Barrier

	orig []float64
}

// NewCholesky builds the cholesky workload at the given scale.
func NewCholesky(size Size) *Cholesky {
	n := 20
	if size == SizeBench {
		n = 40
	}
	return &Cholesky{n: n}
}

// Name implements Workload.
func (w *Cholesky) Name() string { return "cholesky" }

func (w *Cholesky) idx(i, j int) uint64 { return w.a.at(i*w.n + j) }

// Setup implements Workload.
func (w *Cholesky) Setup(m *machine.Machine, procs int) []cpu.Program {
	n := w.n
	w.a = alloc(m, n*n)
	w.barMem = m.Alloc(64)
	w.bar = psync.NewBarrier(w.barMem, procs)

	// Build a symmetric positive-definite matrix A = B·Bᵀ + n·I.
	r := m.Rand()
	b := make([]float64, n*n)
	for i := range b {
		b[i] = r.Float64()*2 - 1
	}
	w.orig = make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			for k := 0; k < n; k++ {
				sum += b[i*n+k] * b[j*n+k]
			}
			if i == j {
				sum += float64(n)
			}
			w.orig[i*n+j] = sum
			m.InitFloat(w.idx(i, j), sum)
		}
	}

	progs := make([]cpu.Program, procs)
	for tid := 0; tid < procs; tid++ {
		tid := tid
		progs[tid] = func(c *cpu.Port) { w.thread(c, tid, procs) }
	}
	return progs
}

func (w *Cholesky) thread(c *cpu.Port, tid, procs int) {
	n := w.n
	var ctx psync.Context
	for k := 0; k < n; k++ {
		// Owner factors column k: L[k][k] = sqrt(a_kk), L[i][k] /= L[k][k].
		if k%procs == tid {
			akk := c.LoadFloat(w.idx(k, k))
			lkk := math.Sqrt(akk)
			c.StoreFloat(w.idx(k, k), lkk)
			for i := k + 1; i < n; i++ {
				c.StoreFloat(w.idx(i, k), c.LoadFloat(w.idx(i, k))/lkk)
			}
		}
		w.bar.Wait(c, &ctx)

		// Trailing update: a_ij -= L[i][k]·L[j][k] for j ≤ i, rows
		// interleaved across threads.
		for i := k + 1; i < n; i++ {
			if i%procs != tid {
				continue
			}
			lik := c.LoadFloat(w.idx(i, k))
			for j := k + 1; j <= i; j++ {
				c.StoreFloat(w.idx(i, j),
					c.LoadFloat(w.idx(i, j))-lik*c.LoadFloat(w.idx(j, k)))
			}
		}
		w.bar.Wait(c, &ctx)
	}
}

// Validate implements Workload: L·Lᵀ must reconstruct the original matrix.
func (w *Cholesky) Validate(m *machine.Machine) error {
	n := w.n
	l := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			l[i*n+j] = m.ReadFloat(w.idx(i, j))
		}
	}
	var worst float64
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			var sum float64
			for k := 0; k <= j; k++ {
				sum += l[i*n+k] * l[j*n+k]
			}
			if d := math.Abs(sum - w.orig[i*n+j]); d > worst {
				worst = d
			}
		}
	}
	if worst > 1e-8*float64(n) {
		return fmt.Errorf("cholesky: reconstruction error %.3g", worst)
	}
	return nil
}
