package bus

import "senss/internal/mem"

// SimpleMemory is the unprotected MemoryPort: plaintext lines, no extra
// latency beyond the DRAM access already charged by Timing.MemLat.
type SimpleMemory struct {
	Backing *mem.Store
}

// Fetch implements MemoryPort.
//
//senss-lint:hotpath
//senss-lint:ignore cycleacct DRAM latency is charged by Timing.MemLat; the unprotected port adds no crypto cycles
func (m *SimpleMemory) Fetch(t *Transaction, dst []byte) uint64 {
	m.Backing.ReadLine(t.Addr, dst)
	return 0
}

// Store implements MemoryPort.
//
//senss-lint:hotpath
//senss-lint:ignore cycleacct writeback occupancy is charged by Timing.Occupancy; the unprotected port adds no crypto cycles
func (m *SimpleMemory) Store(t *Transaction, src []byte) uint64 {
	m.Backing.WriteLine(t.Addr, src)
	return 0
}
