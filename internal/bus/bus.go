// Package bus models the shared snooping bus of the SMP — the component
// SENSS protects.
//
// The bus serializes transactions through a FIFO arbiter.  Each granted
// transaction is snooped by every node (function calls, instantaneous in
// simulated time), resolved against memory if no cache supplies the line,
// passed through the registered security hooks (the SENSS SHU layer, and
// through it the attack interposer), and finally charged occupancy and
// latency cycles per the paper's Figure 5 timing.
package bus

import (
	"fmt"

	"senss/internal/sim"
)

// Kind enumerates bus transaction types. Rd/RdX/Upgr/WB are the MESI
// write-invalidate protocol transactions; Auth, PadInv and PadReq are the
// SENSS additions (message types "00", "01" and "10" of paper §7.1).
type Kind uint8

// Transaction kinds.
const (
	Rd     Kind = iota // read miss; data response
	RdX                // read-for-ownership; data response, others invalidate
	Upgr               // S→M upgrade; address-only, others invalidate
	WB                 // write back a dirty line to memory
	Auth               // SENSS bus-authentication MAC broadcast
	PadInv             // memsec pad invalidate (address-only)
	PadReq             // memsec pad (sequence number) request
	PadUpd             // memsec pad update (write-update variant, §6.1)
	kindCount
)

// NumKinds is the number of transaction kinds, for stats arrays.
const NumKinds = int(kindCount)

// String returns the mnemonics used in reports.
func (k Kind) String() string {
	switch k {
	case Rd:
		return "BusRd"
	case RdX:
		return "BusRdX"
	case Upgr:
		return "BusUpgr"
	case WB:
		return "BusWB"
	case Auth:
		return "BusAuth"
	case PadInv:
		return "BusPadInv"
	case PadReq:
		return "BusPadReq"
	case PadUpd:
		return "BusPadUpd"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// HasData reports whether the transaction carries a full line payload.
//
//senss-lint:hotpath
func (k Kind) HasData() bool { return k == Rd || k == RdX || k == WB }

// MemorySupplier is the SupplierID value meaning "data came from memory".
const MemorySupplier = -1

// Transaction is one bus operation. The requester fills Kind/Addr/Src/GID;
// snooping and the memory port fill the response fields.
type Transaction struct {
	Kind Kind
	Addr uint64
	Src  int // requesting (or originating) processor ID
	GID  int // SENSS group ID tag

	// Data is the line payload for Rd/RdX (response) and WB (request), or
	// the MAC bytes for Auth.
	Data []byte

	// SupplierID is the PID of the cache that supplied Data, or
	// MemorySupplier. Meaningful for Rd/RdX.
	SupplierID int

	// Shared is set during snooping when another cache retains a copy.
	Shared bool

	// Extra accumulates security-layer cycles (mask stalls, pad misses)
	// charged while the bus is held.
	Extra uint64

	// PreSnoop, if set, runs after the bus grant and before snooping. It
	// lets the requester revalidate local state that may have changed
	// while the request waited for arbitration — e.g. an S line that a
	// queued RdX invalidated, forcing a planned Upgr to become an RdX.
	PreSnoop func(t *Transaction)

	// OnData, if set, runs while the bus is still held, after snooping,
	// memory resolution, and security hooks. The requester commits its
	// cache-state change (line insertion, store value) here so the whole
	// transaction is atomic at the coherence point; the latency cycles are
	// charged afterwards.
	OnData func(t *Transaction)

	// Committed marks a WB whose memory contents were already committed
	// at the coherence point (inside the evicting transaction's OnData);
	// the bus then charges timing and stats only.
	Committed bool
}

// CacheToCache reports whether this is a cache-to-cache data transfer —
// the traffic class SENSS encrypts and authenticates.
//
//senss-lint:hotpath
func (t *Transaction) CacheToCache() bool {
	return (t.Kind == Rd || t.Kind == RdX) && t.SupplierID != MemorySupplier
}

// Snooper is a node observing the bus. Snoop runs for every transaction
// not originated by the node; a node holding the line in M or E must copy
// it into t.Data, set t.SupplierID, and apply its own downgrade.
type Snooper interface {
	SnoopBus(t *Transaction)
}

// MemoryPort services transactions that reach main memory. The memsec
// layer wraps the plain port with pad encryption; extra is any
// non-overlapped crypto latency to charge the requester.
type MemoryPort interface {
	Fetch(t *Transaction, dst []byte) (extra uint64)
	Store(t *Transaction, src []byte) (extra uint64)
}

// SecurityHook observes every granted transaction while the bus is held.
// The SENSS SHU layer implements it; hooks may sleep (never while mutating
// shared bus state), transform payloads, and return extra cycles to charge.
type SecurityHook interface {
	OnTransaction(p *sim.Proc, t *Transaction) (extra uint64)
}

// Timing holds the bus latency parameters (paper Figure 5 defaults are in
// package machine).
type Timing struct {
	BusCycle         uint64 // CPU cycles per bus cycle
	C2CLat           uint64 // requester latency for a cache-supplied line
	MemLat           uint64 // requester latency for a memory-supplied line
	BytesPerBusCycle int    // data bus width per bus cycle
	LineBytes        int    // cache line size carried by data transactions
}

// Occupancy returns how many CPU cycles the bus is held by a transaction
// of kind k.
//
//senss-lint:hotpath
func (tm *Timing) Occupancy(k Kind) uint64 {
	if k.HasData() {
		cycles := (tm.LineBytes + tm.BytesPerBusCycle - 1) / tm.BytesPerBusCycle
		return uint64(cycles) * tm.BusCycle
	}
	return tm.BusCycle // address-only, Auth MAC, pad messages: one bus cycle
}

// Latency returns the requester-visible latency from grant to completion.
//
//senss-lint:hotpath
func (tm *Timing) Latency(t *Transaction) uint64 {
	switch t.Kind {
	case Rd, RdX:
		if t.SupplierID != MemorySupplier {
			return tm.C2CLat
		}
		return tm.MemLat
	case WB:
		return tm.Occupancy(WB)
	default:
		return tm.Occupancy(t.Kind)
	}
}

// Stats aggregates bus activity.
type Stats struct {
	Count       [NumKinds]uint64
	C2CCount    uint64 // Rd/RdX supplied cache-to-cache
	MemCount    uint64 // Rd/RdX supplied by memory
	BusyCycles  uint64
	DataBytes   uint64
	ExtraCycles uint64 // security-layer cycles charged on the bus

	// Arbitration contention: how many requests had to wait for a grant,
	// the cycles they spent waiting, and the worst single wait.
	ArbWaits      uint64
	ArbWaitCycles uint64
	ArbWaitMax    uint64
}

// Total returns the total number of transactions.
func (s *Stats) Total() uint64 {
	var n uint64
	for _, c := range s.Count {
		n += c
	}
	return n
}

// Bus is the shared snooping bus.
type Bus struct {
	engine   *sim.Engine
	timing   Timing
	arbiter  sim.Mutex
	snoopers []Snooper
	memory   MemoryPort
	hooks    []SecurityHook

	// wbScratch is the reusable transaction record for CommitStore: dirty
	// victims are committed once per eviction on the steady state, and the
	// memory port never retains the record, so one scratch header replaces
	// a per-writeback heap allocation (hotpath discipline, DESIGN.md §13).
	wbScratch Transaction

	// OnCommitStore, if set, observes every functional memory write made
	// through CommitStore — the coherence-point commit of a dirty victim,
	// which happens inside another transaction's bus tenure, before the
	// victim's own Committed WB rides the bus. The lockstep oracle needs
	// this signal to keep its reference memory image current: between the
	// commit and the timing WB, other transactions may legally read the
	// fresh memory contents.
	OnCommitStore func(src, gid int, addr uint64, data []byte)

	Stats Stats
}

// New creates a bus with the given timing and memory port.
func New(engine *sim.Engine, timing Timing, memory MemoryPort) *Bus {
	return &Bus{engine: engine, timing: timing, memory: memory}
}

// Timing returns the bus timing parameters.
func (b *Bus) Timing() Timing { return b.timing }

// CommitStore writes a dirty victim's contents to memory functionally at
// the coherence point (inside an OnData callback); the evicting node then
// issues a Committed WB transaction for the bus timing and traffic.
//
//senss-lint:hotpath
func (b *Bus) CommitStore(src, gid int, addr uint64, data []byte) {
	if b.OnCommitStore != nil {
		b.OnCommitStore(src, gid, addr, data)
	}
	b.wbScratch = Transaction{Kind: WB, Addr: addr, Src: src, GID: gid, Data: data}
	b.memory.Store(&b.wbScratch, data)
	// Drop the payload reference so the scratch header does not pin the
	// caller's buffer past the commit.
	b.wbScratch.Data = nil
}

// AttachSnooper registers a node; snoop order follows attachment order
// (ascending PID by convention).
func (b *Bus) AttachSnooper(s Snooper) { b.snoopers = append(b.snoopers, s) }

// AttachHook registers a security hook, called in attachment order.
func (b *Bus) AttachHook(h SecurityHook) { b.hooks = append(b.hooks, h) }

// Transact performs t on behalf of proc p, blocking in simulated time for
// arbitration, snooping, data resolution, security processing, occupancy
// and latency. On return, Rd/RdX transactions carry the line in t.Data.
//
//senss-lint:hotpath
func (b *Bus) Transact(p *sim.Proc, t *Transaction) {
	requested := b.engine.Now()
	b.arbiter.Lock(p)
	if wait := b.engine.Now() - requested; wait > 0 {
		b.Stats.ArbWaits++
		b.Stats.ArbWaitCycles += wait
		if wait > b.Stats.ArbWaitMax {
			b.Stats.ArbWaitMax = wait
		}
	}

	if t.PreSnoop != nil {
		t.PreSnoop(t)
	}
	t.SupplierID = MemorySupplier
	t.Shared = false

	// Address phase: everyone snoops. A supplier fills t.Data.
	if (t.Kind == Rd || t.Kind == RdX) && t.Data == nil {
		//senss-lint:ignore hotpath fallback for requesters without preallocated buffers (tests, direct bus users); hot nodes pass their fill buffers
		t.Data = make([]byte, b.timing.LineBytes)
	}
	for _, s := range b.snoopers {
		s.SnoopBus(t)
	}

	// Data phase: memory services the transaction if no cache did.
	var extra uint64
	switch t.Kind {
	case Rd, RdX:
		if t.SupplierID == MemorySupplier {
			extra += b.memory.Fetch(t, t.Data)
			b.Stats.MemCount++
		} else {
			b.Stats.C2CCount++
		}
	case WB:
		if !t.Committed {
			extra += b.memory.Store(t, t.Data)
		}
	}

	// Security processing (SENSS SHU pipeline, attack interposer).
	for _, h := range b.hooks {
		//senss-lint:ignore hotpath hook fan-out reaches config-dependent debug and oracle rigs; the production SHU path is hot-annotated
		extra += h.OnTransaction(p, t)
	}
	t.Extra = extra

	// Commit point: the requester applies its state change atomically.
	if t.OnData != nil {
		t.OnData(t)
	}

	// Timing: the bus is held for stall + occupancy; the requester also
	// waits out the remaining latency after release.
	occ := b.timing.Occupancy(t.Kind)
	lat := b.timing.Latency(t)
	b.Stats.Count[t.Kind]++
	b.Stats.BusyCycles += occ + extra
	b.Stats.ExtraCycles += extra
	if t.Kind.HasData() {
		b.Stats.DataBytes += uint64(b.timing.LineBytes)
	}

	p.Sleep(extra + occ)
	// The tail of the latency does not hold the bus (split-transaction
	// flavor): release first, then wait.
	b.arbiter.Unlock(p)
	if lat > occ {
		p.Sleep(lat - occ)
	}
}

// RecordInjected accounts for a transaction issued piggybacked on another
// transaction's bus tenure — the SENSS layer triggers the periodic
// authentication broadcast from within OnTransaction, so the MAC message
// rides immediately after the saturating transfer. It returns the
// occupancy cycles the caller must charge (via its extra-cycles return).
//
//senss-lint:hotpath
func (b *Bus) RecordInjected(k Kind) uint64 {
	b.Stats.Count[k]++
	occ := b.timing.Occupancy(k)
	b.Stats.BusyCycles += occ
	return occ
}
