package bus

import (
	"testing"

	"senss/internal/mem"
	"senss/internal/sim"
)

func testTiming() Timing {
	return Timing{BusCycle: 10, C2CLat: 120, MemLat: 180, BytesPerBusCycle: 32, LineBytes: 64}
}

func TestOccupancy(t *testing.T) {
	tm := testTiming()
	if got := tm.Occupancy(Rd); got != 20 { // 64B / 32B-per-cycle × 10
		t.Errorf("data occupancy = %d, want 20", got)
	}
	for _, k := range []Kind{Upgr, Auth, PadInv, PadReq} {
		if got := tm.Occupancy(k); got != 10 {
			t.Errorf("%v occupancy = %d, want 10", k, got)
		}
	}
}

func TestLatencySelectsSupplier(t *testing.T) {
	tm := testTiming()
	c2c := &Transaction{Kind: Rd, SupplierID: 2}
	if got := tm.Latency(c2c); got != 120 {
		t.Errorf("c2c latency = %d", got)
	}
	memT := &Transaction{Kind: Rd, SupplierID: MemorySupplier}
	if got := tm.Latency(memT); got != 180 {
		t.Errorf("memory latency = %d", got)
	}
}

func TestKindStringsAndData(t *testing.T) {
	for k := Kind(0); int(k) < NumKinds; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if !Rd.HasData() || !RdX.HasData() || !WB.HasData() {
		t.Error("data kinds misreported")
	}
	if Upgr.HasData() || Auth.HasData() {
		t.Error("address-only kinds misreported")
	}
}

func TestCacheToCacheClassification(t *testing.T) {
	c2c := &Transaction{Kind: Rd, SupplierID: 1}
	if !c2c.CacheToCache() {
		t.Error("cache-supplied Rd not classified c2c")
	}
	memT := &Transaction{Kind: Rd, SupplierID: MemorySupplier}
	if memT.CacheToCache() {
		t.Error("memory fill classified c2c")
	}
	wb := &Transaction{Kind: WB, SupplierID: 1}
	if wb.CacheToCache() {
		t.Error("WB classified c2c")
	}
}

// recordingSnooper notes the order it was snooped in.
type recordingSnooper struct {
	id    int
	order *[]int
}

func (r *recordingSnooper) SnoopBus(t *Transaction) {
	*r.order = append(*r.order, r.id)
}

func TestSnoopOrderAndMemoryFallback(t *testing.T) {
	e := sim.NewEngine()
	store := mem.New()
	store.WriteWord(0x100, 77)
	b := New(e, testTiming(), &SimpleMemory{Backing: store})
	var order []int
	b.AttachSnooper(&recordingSnooper{0, &order})
	b.AttachSnooper(&recordingSnooper{1, &order})

	var got uint64
	e.Spawn("req", func(p *sim.Proc) {
		txn := &Transaction{Kind: Rd, Addr: 0x100, Src: 0}
		b.Transact(p, txn)
		got = mem.ReadWordFromLine(txn.Data, 0)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 77 {
		t.Errorf("memory fallback returned %d", got)
	}
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Errorf("snoop order %v", order)
	}
	if b.Stats.MemCount != 1 || b.Stats.C2CCount != 0 {
		t.Errorf("supply classification wrong: %+v", b.Stats)
	}
}

func TestArbitrationSerializesAndIsFIFO(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, testTiming(), &SimpleMemory{Backing: mem.New()})
	var grants []int
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("req", func(p *sim.Proc) {
			p.Sleep(uint64(i)) // stagger the requests deterministically
			txn := &Transaction{Kind: Rd, Addr: uint64(0x1000 + i*64), Src: i}
			txn.PreSnoop = func(*Transaction) { grants = append(grants, i) }
			b.Transact(p, txn)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(grants) != 3 || grants[0] != 0 || grants[1] != 1 || grants[2] != 2 {
		t.Errorf("grant order %v, want FIFO by request time", grants)
	}
	if b.Stats.Total() != 3 {
		t.Errorf("counted %d transactions", b.Stats.Total())
	}
}

func TestTransactionTiming(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, testTiming(), &SimpleMemory{Backing: mem.New()})
	var elapsed uint64
	e.Spawn("req", func(p *sim.Proc) {
		start := p.Now()
		b.Transact(p, &Transaction{Kind: Rd, Addr: 0x40, Src: 0})
		elapsed = p.Now() - start
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed != 180 { // memory latency, uncontended
		t.Errorf("uncontended memory fill took %d cycles, want 180", elapsed)
	}
}

// extraHook charges fixed extra cycles, like the SENSS +3 overhead.
type extraHook struct{ cycles uint64 }

func (h extraHook) OnTransaction(p *sim.Proc, t *Transaction) uint64 { return h.cycles }

func TestHookExtraCyclesCharged(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, testTiming(), &SimpleMemory{Backing: mem.New()})
	b.AttachHook(extraHook{3})
	var elapsed uint64
	e.Spawn("req", func(p *sim.Proc) {
		start := p.Now()
		b.Transact(p, &Transaction{Kind: Rd, Addr: 0x40, Src: 0})
		elapsed = p.Now() - start
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed != 183 {
		t.Errorf("took %d cycles, want 183 (180 + 3 overhead)", elapsed)
	}
	if b.Stats.ExtraCycles != 3 {
		t.Errorf("ExtraCycles = %d", b.Stats.ExtraCycles)
	}
}

func TestOnDataRunsBeforeCompletion(t *testing.T) {
	e := sim.NewEngine()
	store := mem.New()
	store.WriteWord(0x80, 5)
	b := New(e, testTiming(), &SimpleMemory{Backing: store})
	var commitTime, doneTime uint64
	e.Spawn("req", func(p *sim.Proc) {
		txn := &Transaction{Kind: Rd, Addr: 0x80, Src: 0}
		txn.OnData = func(*Transaction) { commitTime = p.Now() }
		b.Transact(p, txn)
		doneTime = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if commitTime != 0 {
		t.Errorf("commit at %d, want at grant (0)", commitTime)
	}
	if doneTime != 180 {
		t.Errorf("completion at %d, want 180", doneTime)
	}
}

func TestCommittedWBSkipsMemoryWrite(t *testing.T) {
	e := sim.NewEngine()
	store := mem.New()
	store.WriteWord(0x40, 111)
	b := New(e, testTiming(), &SimpleMemory{Backing: store})
	data := make([]byte, 64) // zeros — must NOT reach memory
	e.Spawn("req", func(p *sim.Proc) {
		b.Transact(p, &Transaction{Kind: WB, Addr: 0x40, Src: 0, Data: data, Committed: true})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := store.ReadWord(0x40); got != 111 {
		t.Errorf("committed WB overwrote memory: %d", got)
	}
	if b.Stats.Count[WB] != 1 {
		t.Error("committed WB not counted")
	}
}

func TestRecordInjected(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, testTiming(), &SimpleMemory{Backing: mem.New()})
	occ := b.RecordInjected(Auth)
	if occ != 10 {
		t.Errorf("auth occupancy = %d", occ)
	}
	if b.Stats.Count[Auth] != 1 || b.Stats.BusyCycles != 10 {
		t.Errorf("stats %+v", b.Stats)
	}
}

func TestArbitrationWaitStats(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, testTiming(), &SimpleMemory{Backing: mem.New()})
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("req", func(p *sim.Proc) {
			b.Transact(p, &Transaction{Kind: Rd, Addr: uint64(i * 64), Src: i})
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// All three request at cycle 0; the bus is held 20 cycles per data
	// transaction, so the second waits 20 and the third 40.
	if b.Stats.ArbWaits != 2 {
		t.Errorf("ArbWaits = %d, want 2", b.Stats.ArbWaits)
	}
	if b.Stats.ArbWaitCycles != 60 {
		t.Errorf("ArbWaitCycles = %d, want 60", b.Stats.ArbWaitCycles)
	}
	if b.Stats.ArbWaitMax != 40 {
		t.Errorf("ArbWaitMax = %d, want 40", b.Stats.ArbWaitMax)
	}
}

func TestBusyCyclesAccumulate(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, testTiming(), &SimpleMemory{Backing: mem.New()})
	for i := 0; i < 2; i++ {
		i := i
		e.Spawn("req", func(p *sim.Proc) {
			b.Transact(p, &Transaction{Kind: Rd, Addr: uint64(i * 64), Src: i})
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if b.Stats.BusyCycles != 40 { // 2 × 20-cycle data occupancy
		t.Errorf("busy = %d, want 40", b.Stats.BusyCycles)
	}
	if b.Stats.DataBytes != 128 {
		t.Errorf("data bytes = %d", b.Stats.DataBytes)
	}
}
