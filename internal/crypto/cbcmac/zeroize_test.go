package cbcmac

import (
	"testing"

	"senss/internal/crypto"
	"senss/internal/crypto/aes"
)

// TestZeroize verifies the chain state, IV, block count, and cipher
// reference are all cleared.
func TestZeroize(t *testing.T) {
	cipher := crypto.MustBackend(crypto.Ref, aes.Block{1, 2, 3, 4})
	m := New(cipher, aes.Block{9, 9, 9})
	m.Update(aes.Block{5})
	m.Update(aes.Block{6})
	if m.Sum().IsZero() || m.Blocks() != 2 {
		t.Fatal("chain did not advance; test is vacuous")
	}

	m.Zeroize()
	if !m.state.IsZero() {
		t.Errorf("state = %v after Zeroize", m.state)
	}
	if !m.iv.IsZero() {
		t.Errorf("iv = %v after Zeroize", m.iv)
	}
	if m.blocks != 0 {
		t.Errorf("blocks = %d after Zeroize", m.blocks)
	}
	if m.cipher != nil {
		t.Error("cipher reference survived Zeroize")
	}
}
