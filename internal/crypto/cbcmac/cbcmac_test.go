package cbcmac

import (
	"testing"
	"testing/quick"

	"senss/internal/crypto"
	"senss/internal/crypto/aes"
	"senss/internal/rng"
)

func newCipher(seed uint64) (crypto.BlockCipher, *rng.Rand) {
	r := rng.New(seed)
	return crypto.MustBackend(crypto.Ref, aes.Block(r.Block16())), r
}

// TestChainMatchesManualComputation cross-checks Update against a hand-rolled
// CBC chain.
func TestChainMatchesManualComputation(t *testing.T) {
	c, r := newCipher(11)
	iv := aes.Block(r.Block16())
	m := New(c, iv)

	state := iv
	for i := 0; i < 50; i++ {
		in := aes.Block(r.Block16())
		got := m.Update(in)
		state = c.Encrypt(state.XOR(in))
		if got != state {
			t.Fatalf("block %d: chain diverged", i)
		}
	}
	if m.Blocks() != 50 {
		t.Errorf("Blocks = %d, want 50", m.Blocks())
	}
}

// TestTwoPartiesStayInLockstep is the SENSS property: two SHUs seeing the
// same message history hold identical MACs at every step.
func TestTwoPartiesStayInLockstep(t *testing.T) {
	c, r := newCipher(12)
	iv := aes.Block(r.Block16())
	a, b := New(c, iv), New(c, iv)
	for i := 0; i < 200; i++ {
		in := aes.Block(r.Block16())
		a.Update(in)
		b.Update(in)
		if a.Sum() != b.Sum() {
			t.Fatalf("step %d: MACs diverged with identical history", i)
		}
	}
}

// TestOrderSensitivity: swapping two messages must change the final MAC —
// the paper's Type 2 (reordering) detection depends on this.
func TestOrderSensitivity(t *testing.T) {
	c, r := newCipher(13)
	iv := aes.Block(r.Block16())
	m1 := aes.Block(r.Block16())
	m2 := aes.Block(r.Block16())

	a := New(c, iv)
	a.Update(m1)
	a.Update(m2)
	b := New(c, iv)
	b.Update(m2)
	b.Update(m1)
	if a.Sum() == b.Sum() {
		t.Error("MAC insensitive to message order")
	}
}

// TestDivergencePropagates: once one input differs, later identical inputs
// never re-converge the chains (within the sampled horizon). This is the
// property that lets periodic authentication catch an attack that happened
// many transfers earlier.
func TestDivergencePropagates(t *testing.T) {
	c, r := newCipher(14)
	iv := aes.Block(r.Block16())
	a, b := New(c, iv), New(c, iv)
	a.Update(aes.Block(r.Block16()))
	b.Update(aes.Block(r.Block16())) // different first input
	for i := 0; i < 100; i++ {
		in := aes.Block(r.Block16())
		a.Update(in)
		b.Update(in)
		if a.Sum() == b.Sum() {
			t.Fatalf("chains re-converged after %d common inputs", i+1)
		}
	}
}

func TestTagIsPrefix(t *testing.T) {
	c, r := newCipher(15)
	m := New(c, aes.Block(r.Block16()))
	m.Update(aes.Block(r.Block16()))
	full := m.Sum()
	for n := 1; n <= aes.BlockSize; n++ {
		tag := m.Tag(n)
		if len(tag) != n {
			t.Fatalf("Tag(%d) length %d", n, len(tag))
		}
		for i := range tag {
			if tag[i] != full[i] {
				t.Fatalf("Tag(%d) not a prefix of Sum", n)
			}
		}
	}
}

func TestResetAndClone(t *testing.T) {
	c, r := newCipher(16)
	iv := aes.Block(r.Block16())
	m := New(c, iv)
	m.Update(aes.Block(r.Block16()))

	cl := m.Clone()
	in := aes.Block(r.Block16())
	m.Update(in)
	cl.Update(in)
	if m.Sum() != cl.Sum() {
		t.Error("clone diverged from original on identical input")
	}

	m.Reset()
	if m.Sum() != iv || m.Blocks() != 0 {
		t.Error("Reset did not restore IV state")
	}
}

// TestSumOneShotConsistency: one-shot Sum equals incremental updates over
// zero-padded blocks.
func TestSumOneShotConsistency(t *testing.T) {
	c, r := newCipher(17)
	iv := aes.Block(r.Block16())
	f := func(msg []byte) bool {
		if len(msg) > 256 {
			msg = msg[:256]
		}
		want := Sum(c, iv, msg)
		m := New(c, iv)
		for len(msg) > 0 {
			var b aes.Block
			n := copy(b[:], msg)
			msg = msg[n:]
			m.Update(b)
		}
		return m.Sum() == want
	}
	cfg := &quick.Config{MaxCount: 100}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
	_ = r
}

// TestDifferentIVsDiverge: the same history under encryption vs
// authentication IVs yields unrelated chains (paper §4.3 requires distinct
// IVs so masks cannot stand in for MACs).
func TestDifferentIVsDiverge(t *testing.T) {
	c, r := newCipher(18)
	iv1 := aes.Block(r.Block16())
	iv2 := aes.Block(r.Block16())
	if iv1 == iv2 {
		t.Skip("sampled IVs equal")
	}
	a, b := New(c, iv1), New(c, iv2)
	for i := 0; i < 50; i++ {
		in := aes.Block(r.Block16())
		a.Update(in)
		b.Update(in)
		if a.Sum() == b.Sum() {
			t.Fatalf("chains with distinct IVs collided at step %d", i)
		}
	}
}

func BenchmarkUpdate(b *testing.B) {
	c, r := newCipher(19)
	m := New(c, aes.Block(r.Block16()))
	in := aes.Block(r.Block16())
	b.SetBytes(aes.BlockSize)
	for i := 0; i < b.N; i++ {
		m.Update(in)
	}
}
