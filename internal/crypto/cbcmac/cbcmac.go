// Package cbcmac implements the chained CBC-MAC of SENSS Eq. (1):
//
//	MAC_t = AES_K( ... AES_K( AES_K(IV ⊕ in_1) ⊕ in_2 ) ... ⊕ in_t )
//
// following FIPS PUB 113 ("Computer Data Authentication") generalized with a
// non-zero initial vector.  In SENSS every bus transfer contributes one or
// more input blocks (the data block with its originating PID folded in), so
// the running MAC authenticates the entire broadcast history of a group.
// All group members keep the chain in lock-step; the paper's Type 1-3 bus
// attacks all surface as a divergence of this chain at the next
// authentication point.
package cbcmac

import (
	"senss/internal/crypto"
	"senss/internal/crypto/aes"
)

// MAC is a running chained MAC. The zero value is unusable; use New.
type MAC struct {
	cipher crypto.BlockCipher
	//senss-lint:secret
	state aes.Block
	//senss-lint:secret
	iv     aes.Block
	blocks uint64
}

// Resume reconstructs a MAC whose chain continues from a previously saved
// state value (SHU context swap-in, paper §4.2). Reset rewinds only to the
// resumed point.
func Resume(cipher crypto.BlockCipher, state aes.Block) *MAC {
	return &MAC{cipher: cipher, state: state, iv: state}
}

// New returns a MAC chained from iv under the given cipher.
//
// SENSS requires the authentication IV to differ from the encryption IV
// (paper §4.3, "Defending Type 2 attacks"); that policy is enforced by the
// caller (the SHU), not here.
func New(cipher crypto.BlockCipher, iv aes.Block) *MAC {
	return &MAC{cipher: cipher, state: iv, iv: iv}
}

// Update absorbs one input block into the chain and returns the new state.
//
//senss-lint:hotpath
func (m *MAC) Update(in aes.Block) aes.Block {
	m.state = m.cipher.Encrypt(m.state.XOR(in))
	m.blocks++
	return m.state
}

// Sum returns the current chain value (the full-width MAC).
func (m *MAC) Sum() aes.Block { return m.state }

// Tag returns the n-byte prefix of the current chain value, the "m-bit
// prefix of O_n" of Eq. (1). n must be in (0, BlockSize].
func (m *MAC) Tag(n int) []byte {
	s := m.Sum()
	out := make([]byte, n)
	copy(out, s[:n])
	return out
}

// Blocks returns how many input blocks have been chained so far.
func (m *MAC) Blocks() uint64 { return m.blocks }

// Reset rewinds the chain to its initial vector.
func (m *MAC) Reset() {
	m.state = m.iv
	m.blocks = 0
}

// Clone returns an independent copy of the chain (used by tests and by the
// attack analyzer to fork "what the sender saw" vs "what a victim saw").
func (m *MAC) Clone() *MAC {
	c := *m
	return &c
}

// Sum computes the one-shot CBC-MAC of msg (padded with zeros to a block
// multiple) under cipher and iv. Convenience for tests and for the program
// dispatcher's package signature.
func Sum(cipher crypto.BlockCipher, iv aes.Block, msg []byte) aes.Block {
	m := New(cipher, iv)
	var b aes.Block
	for len(msg) > 0 {
		n := copy(b[:], msg)
		for i := n; i < len(b); i++ {
			b[i] = 0
		}
		m.Update(b)
		msg = msg[n:]
	}
	return m.Sum()
}

// Zeroize wipes the chain state, the initial vector, and the block count,
// and drops the cipher reference. The chain value is secret material — it
// authenticates future group messages — so it must not survive group
// release. The MAC is unusable afterwards.
func (m *MAC) Zeroize() {
	m.state = aes.Block{}
	m.iv = aes.Block{}
	m.blocks = 0
	m.cipher = nil
}
