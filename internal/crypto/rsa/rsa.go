// Package rsa implements a compact RSA scheme used for SENSS program
// dispatch.
//
// In the paper (§4.1, Figure 1) every processor i holds a sealed key pair
// (K+_i, K-_i).  The program distributor picks a symmetric session key K,
// encrypts the program under K, then wraps K under each group member's
// public key and ships the bundle.  This package provides exactly that
// primitive: key generation, raw RSA, and a simple randomized padding for
// wrapping 16-byte session keys.
//
// This is a reproduction substrate, not a hardened production RSA: the
// modulus is small by modern standards (default 1024 bits) and the padding
// is a salted PKCS#1-v1.5 shape, which is sufficient for the simulated
// threat model (the adversary taps buses and memory, not the sealed
// on-chip private keys).
package rsa

import (
	"errors"
	"fmt"
	"io"
	"math/big"
)

// DefaultBits is the default modulus size for processor key pairs.
const DefaultBits = 1024

// PublicKey is an RSA public key (K+ in the paper).
type PublicKey struct {
	N *big.Int
	E *big.Int
}

// PrivateKey is an RSA private key (K-), sealed inside a processor's SHU.
type PrivateKey struct {
	PublicKey
	D *big.Int
	p *big.Int
	q *big.Int
}

var (
	// ErrMessageTooLong is returned when a message does not fit the modulus.
	ErrMessageTooLong = errors.New("rsa: message too long for modulus")
	// ErrDecrypt is returned when a ciphertext does not decrypt to a
	// well-formed padded message.
	ErrDecrypt = errors.New("rsa: decryption error")
)

// GenerateKey produces a key pair with an n-bit modulus using primes drawn
// from random. The generator is deterministic if random is.
func GenerateKey(random io.Reader, bits int) (*PrivateKey, error) {
	if bits < 128 {
		return nil, fmt.Errorf("rsa: modulus too small: %d bits", bits)
	}
	e := big.NewInt(65537)
	one := big.NewInt(1)
	for {
		p, err := genPrime(random, bits/2)
		if err != nil {
			return nil, err
		}
		q, err := genPrime(random, bits-bits/2)
		if err != nil {
			return nil, err
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		if n.BitLen() != bits {
			continue
		}
		pm1 := new(big.Int).Sub(p, one)
		qm1 := new(big.Int).Sub(q, one)
		phi := new(big.Int).Mul(pm1, qm1)
		d := new(big.Int)
		if d.ModInverse(e, phi) == nil {
			continue // e not invertible mod phi; re-draw primes
		}
		return &PrivateKey{
			PublicKey: PublicKey{N: n, E: new(big.Int).Set(e)},
			D:         d,
			p:         p,
			q:         q,
		}, nil
	}
}

// genPrime draws candidates from random until one passes Miller-Rabin.
func genPrime(random io.Reader, bits int) (*big.Int, error) {
	bytes := (bits + 7) / 8
	buf := make([]byte, bytes)
	for {
		if _, err := io.ReadFull(random, buf); err != nil {
			return nil, err
		}
		// Force exact bit length and oddness.
		buf[0] |= 0xC0 >> uint(8*bytes-bits)
		buf[bytes-1] |= 1
		c := new(big.Int).SetBytes(buf)
		c.SetBit(c, bits-1, 1)
		if c.ProbablyPrime(32) {
			return c, nil
		}
	}
}

// maxPayload returns the maximum payload EncryptKey accepts for pub.
func maxPayload(pub *PublicKey) int {
	k := (pub.N.BitLen() + 7) / 8
	return k - 11 // 0x00 0x02 [>=8 nonzero salt] 0x00 payload
}

// EncryptKey wraps payload (typically a 16-byte session key) under pub with
// randomized padding drawn from random.
func EncryptKey(random io.Reader, pub *PublicKey, payload []byte) ([]byte, error) {
	k := (pub.N.BitLen() + 7) / 8
	if len(payload) > maxPayload(pub) {
		return nil, ErrMessageTooLong
	}
	em := make([]byte, k)
	em[0] = 0
	em[1] = 2
	saltLen := k - 3 - len(payload)
	salt := em[2 : 2+saltLen]
	if _, err := io.ReadFull(random, salt); err != nil {
		return nil, err
	}
	for i := range salt {
		if salt[i] == 0 {
			salt[i] = 0xA7 // any fixed nonzero substitute keeps the frame parseable
		}
	}
	em[2+saltLen] = 0
	copy(em[3+saltLen:], payload)
	m := new(big.Int).SetBytes(em)
	c := new(big.Int).Exp(m, pub.E, pub.N)
	return leftPad(c.Bytes(), k), nil
}

// DecryptKey unwraps a ciphertext produced by EncryptKey.
func DecryptKey(priv *PrivateKey, ciphertext []byte) ([]byte, error) {
	k := (priv.N.BitLen() + 7) / 8
	if len(ciphertext) != k {
		return nil, ErrDecrypt
	}
	c := new(big.Int).SetBytes(ciphertext)
	if c.Cmp(priv.N) >= 0 {
		return nil, ErrDecrypt
	}
	m := new(big.Int).Exp(c, priv.D, priv.N)
	em := leftPad(m.Bytes(), k)
	if em[0] != 0 || em[1] != 2 {
		return nil, ErrDecrypt
	}
	// Find the 0x00 separator after at least 8 salt bytes.
	sep := -1
	for i := 2; i < len(em); i++ {
		if em[i] == 0 {
			sep = i
			break
		}
	}
	if sep < 10 {
		return nil, ErrDecrypt
	}
	out := make([]byte, len(em)-sep-1)
	copy(out, em[sep+1:])
	return out, nil
}

// leftPad returns b left-padded with zeros to length k.
func leftPad(b []byte, k int) []byte {
	if len(b) >= k {
		return b
	}
	out := make([]byte, k)
	copy(out[k-len(b):], b)
	return out
}
