package rsa

import (
	"bytes"
	"testing"

	"senss/internal/rng"
)

// testBits keeps key generation fast in tests; production-scale sizes are
// exercised once in TestDefaultBits.
const testBits = 512

func genTestKey(t *testing.T, seed uint64) *PrivateKey {
	t.Helper()
	key, err := GenerateKey(rng.New(seed), testBits)
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	return key
}

func TestWrapUnwrapSessionKey(t *testing.T) {
	key := genTestKey(t, 21)
	r := rng.New(22)
	session := make([]byte, 16)
	r.Read(session)

	ct, err := EncryptKey(r, &key.PublicKey, session)
	if err != nil {
		t.Fatalf("EncryptKey: %v", err)
	}
	pt, err := DecryptKey(key, ct)
	if err != nil {
		t.Fatalf("DecryptKey: %v", err)
	}
	if !bytes.Equal(pt, session) {
		t.Errorf("round trip: got %x, want %x", pt, session)
	}
}

func TestWrongKeyFailsOrGarbles(t *testing.T) {
	k1 := genTestKey(t, 23)
	k2 := genTestKey(t, 24)
	r := rng.New(25)
	session := make([]byte, 16)
	r.Read(session)

	ct, err := EncryptKey(r, &k1.PublicKey, session)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := DecryptKey(k2, ct)
	if err == nil && bytes.Equal(pt, session) {
		t.Error("session key decrypted under the wrong private key")
	}
}

func TestRandomizedPadding(t *testing.T) {
	key := genTestKey(t, 26)
	r := rng.New(27)
	session := make([]byte, 16)
	r.Read(session)

	c1, err := EncryptKey(r, &key.PublicKey, session)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := EncryptKey(r, &key.PublicKey, session)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(c1, c2) {
		t.Error("two encryptions of the same key are identical (padding not randomized)")
	}
}

func TestDeterministicKeygen(t *testing.T) {
	k1 := genTestKey(t, 28)
	k2 := genTestKey(t, 28)
	if k1.N.Cmp(k2.N) != 0 || k1.D.Cmp(k2.D) != 0 {
		t.Error("keygen not deterministic for a fixed seed")
	}
	k3 := genTestKey(t, 29)
	if k1.N.Cmp(k3.N) == 0 {
		t.Error("different seeds produced the same modulus")
	}
}

func TestMessageTooLong(t *testing.T) {
	key := genTestKey(t, 30)
	big := make([]byte, testBits/8)
	if _, err := EncryptKey(rng.New(31), &key.PublicKey, big); err != ErrMessageTooLong {
		t.Errorf("want ErrMessageTooLong, got %v", err)
	}
}

func TestTamperedCiphertextRejected(t *testing.T) {
	key := genTestKey(t, 32)
	r := rng.New(33)
	session := make([]byte, 16)
	r.Read(session)
	ct, err := EncryptKey(r, &key.PublicKey, session)
	if err != nil {
		t.Fatal(err)
	}
	// Truncated ciphertext must be rejected outright.
	if _, err := DecryptKey(key, ct[:len(ct)-1]); err == nil {
		t.Error("truncated ciphertext accepted")
	}
	// A flipped bit must either error or change the payload.
	ct[len(ct)/2] ^= 0x40
	pt, err := DecryptKey(key, ct)
	if err == nil && bytes.Equal(pt, session) {
		t.Error("bit-flipped ciphertext still decrypts to the session key")
	}
}

func TestModulusBitLength(t *testing.T) {
	key := genTestKey(t, 34)
	if key.N.BitLen() != testBits {
		t.Errorf("modulus bit length = %d, want %d", key.N.BitLen(), testBits)
	}
}

func TestGenerateKeyRejectsTinyModulus(t *testing.T) {
	if _, err := GenerateKey(rng.New(1), 64); err == nil {
		t.Error("want error for 64-bit modulus")
	}
}

// TestDefaultBits generates one full-size pair, covering the path used by
// the dispatcher.
func TestDefaultBits(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	key, err := GenerateKey(rng.New(35), DefaultBits)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(36)
	session := make([]byte, 16)
	r.Read(session)
	ct, err := EncryptKey(r, &key.PublicKey, session)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := DecryptKey(key, ct)
	if err != nil || !bytes.Equal(pt, session) {
		t.Errorf("1024-bit round trip failed: %v", err)
	}
}
