// Package aes implements the AES-128 block cipher (FIPS-197) from scratch.
//
// SENSS models a hardware AES core on every processor's security hardware
// unit (SHU).  The simulator charges modeled cycles for each invocation
// (80 cycles latency, 3.2 GB/s throughput in the paper's configuration);
// this package supplies the actual transformation so that bus masks, MACs,
// and memory pads are real values and attacks are genuinely detected.
package aes

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// BlockSize is the AES block size in bytes.
const BlockSize = 16

// KeySize is the AES-128 key size in bytes.
const KeySize = 16

// rounds is the number of AES-128 rounds.
const rounds = 10

// Block is an AES block. The value type makes it convenient to keep blocks
// in tables (group info table entries, mask banks) without aliasing.
type Block [BlockSize]byte

// XOR returns b ⊕ o. This is the one-cycle OTP operation of the SENSS
// bus-encryption datapath.
//
//senss-lint:hotpath
func (b Block) XOR(o Block) Block {
	var r Block
	for i := range b {
		r[i] = b[i] ^ o[i]
	}
	return r
}

// IsZero reports whether every byte of b is zero.
func (b Block) IsZero() bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// String renders the block as lowercase hex.
func (b Block) String() string {
	return fmt.Sprintf("%x", b[:])
}

// BlockFromUint64 packs two 64-bit words big-endian into a block.
// Handy for folding PIDs and counters into cipher inputs.
//
//senss-lint:hotpath
func BlockFromUint64(hi, lo uint64) Block {
	var b Block
	binary.BigEndian.PutUint64(b[0:8], hi)
	binary.BigEndian.PutUint64(b[8:16], lo)
	return b
}

// Uint64s unpacks the block into two big-endian 64-bit words.
func (b Block) Uint64s() (hi, lo uint64) {
	return binary.BigEndian.Uint64(b[0:8]), binary.BigEndian.Uint64(b[8:16])
}

// sbox is the FIPS-197 S-box.
var sbox = [256]byte{
	0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
	0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
	0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
	0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
	0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
	0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
	0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
	0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
	0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
	0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
	0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
	0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
	0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
	0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
	0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
	0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
}

// invSbox is the inverse S-box, derived from sbox at init.
var invSbox [256]byte

func init() {
	for i, v := range sbox {
		invSbox[v] = byte(i)
	}
}

// xtime multiplies by x (i.e., {02}) in GF(2^8) with the AES polynomial.
//
//senss-lint:hotpath
//senss-lint:ignore taintflow reference AES is table- and branch-based by design; a constant-time (bitsliced) implementation is out of scope, and the simulator never runs against live adversaries (DESIGN §12)
func xtime(b byte) byte {
	if b&0x80 != 0 {
		return b<<1 ^ 0x1b
	}
	return b << 1
}

// gmul multiplies a by b in GF(2^8).
//
//senss-lint:hotpath
func gmul(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		a = xtime(a)
		b >>= 1
	}
	return p
}

// rcon holds the round constants for key expansion.
var rcon = [11]byte{0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36}

// Cipher is an expanded AES-128 key schedule.
type Cipher struct {
	//senss-lint:secret
	enc [4 * (rounds + 1)]uint32
	//senss-lint:secret
	dec [4 * (rounds + 1)]uint32
}

// ErrKeySize is returned by New when the key is not 16 bytes.
var ErrKeySize = errors.New("aes: key must be 16 bytes")

// New expands key into an AES-128 cipher.
func New(key []byte) (*Cipher, error) {
	if len(key) != KeySize {
		return nil, ErrKeySize
	}
	c := new(Cipher)
	c.expand(key)
	return c, nil
}

// NewFromBlock expands a Block-typed key. It cannot fail because a Block is
// always KeySize bytes.
//
//senss-lint:ignore droppederr a Block is always KeySize bytes, the one condition New rejects
func NewFromBlock(key Block) *Cipher {
	c, _ := New(key[:])
	return c
}

func subWord(w uint32) uint32 {
	return uint32(sbox[w>>24])<<24 |
		uint32(sbox[w>>16&0xff])<<16 |
		uint32(sbox[w>>8&0xff])<<8 |
		uint32(sbox[w&0xff])
}

func rotWord(w uint32) uint32 { return w<<8 | w>>24 }

func (c *Cipher) expand(key []byte) {
	nk := KeySize / 4
	for i := 0; i < nk; i++ {
		c.enc[i] = binary.BigEndian.Uint32(key[4*i:])
	}
	for i := nk; i < len(c.enc); i++ {
		t := c.enc[i-1]
		if i%nk == 0 {
			t = subWord(rotWord(t)) ^ uint32(rcon[i/nk])<<24
		}
		c.enc[i] = c.enc[i-nk] ^ t
	}
	// The equivalent inverse cipher key schedule: round keys in reverse
	// order with InvMixColumns applied to the middle rounds.
	n := len(c.enc)
	for i := 0; i < n; i += 4 {
		for j := 0; j < 4; j++ {
			w := c.enc[n-4-i+j]
			if i > 0 && i < n-4 {
				w = invMixColumnWord(w)
			}
			c.dec[i+j] = w
		}
	}
}

func invMixColumnWord(w uint32) uint32 {
	var col [4]byte
	binary.BigEndian.PutUint32(col[:], w)
	out := invMixColumn(col)
	return binary.BigEndian.Uint32(out[:])
}

//senss-lint:hotpath
func mixColumn(col [4]byte) [4]byte {
	return [4]byte{
		gmul(col[0], 2) ^ gmul(col[1], 3) ^ col[2] ^ col[3],
		col[0] ^ gmul(col[1], 2) ^ gmul(col[2], 3) ^ col[3],
		col[0] ^ col[1] ^ gmul(col[2], 2) ^ gmul(col[3], 3),
		gmul(col[0], 3) ^ col[1] ^ col[2] ^ gmul(col[3], 2),
	}
}

func invMixColumn(col [4]byte) [4]byte {
	return [4]byte{
		gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9),
		gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13),
		gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11),
		gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14),
	}
}

// state is the AES state as a 4x4 column-major byte matrix, kept as 16 bytes
// in column order (as FIPS-197 loads it).
type state [16]byte

//senss-lint:hotpath
func (s *state) addRoundKey(rk []uint32) {
	for c := 0; c < 4; c++ {
		w := rk[c]
		s[4*c+0] ^= byte(w >> 24)
		s[4*c+1] ^= byte(w >> 16)
		s[4*c+2] ^= byte(w >> 8)
		s[4*c+3] ^= byte(w)
	}
}

//senss-lint:hotpath
func (s *state) subBytes() {
	for i := range s {
		s[i] = sbox[s[i]]
	}
}

func (s *state) invSubBytes() {
	for i := range s {
		s[i] = invSbox[s[i]]
	}
}

// shiftRows rotates row r left by r. Row r lives at indices r, r+4, r+8, r+12.
//
//senss-lint:hotpath
func (s *state) shiftRows() {
	s[1], s[5], s[9], s[13] = s[5], s[9], s[13], s[1]
	s[2], s[6], s[10], s[14] = s[10], s[14], s[2], s[6]
	s[3], s[7], s[11], s[15] = s[15], s[3], s[7], s[11]
}

func (s *state) invShiftRows() {
	s[1], s[5], s[9], s[13] = s[13], s[1], s[5], s[9]
	s[2], s[6], s[10], s[14] = s[10], s[14], s[2], s[6]
	s[3], s[7], s[11], s[15] = s[7], s[11], s[15], s[3]
}

//senss-lint:hotpath
func (s *state) mixColumns() {
	for c := 0; c < 4; c++ {
		col := [4]byte{s[4*c], s[4*c+1], s[4*c+2], s[4*c+3]}
		out := mixColumn(col)
		copy(s[4*c:4*c+4], out[:])
	}
}

func (s *state) invMixColumns() {
	for c := 0; c < 4; c++ {
		col := [4]byte{s[4*c], s[4*c+1], s[4*c+2], s[4*c+3]}
		out := invMixColumn(col)
		copy(s[4*c:4*c+4], out[:])
	}
}

// Encrypt computes the AES-128 encryption of src.
//
//senss-lint:hotpath
func (c *Cipher) Encrypt(src Block) Block {
	var s state
	copy(s[:], src[:])
	s.addRoundKey(c.enc[0:4])
	for r := 1; r < rounds; r++ {
		s.subBytes()
		s.shiftRows()
		s.mixColumns()
		s.addRoundKey(c.enc[4*r : 4*r+4])
	}
	s.subBytes()
	s.shiftRows()
	s.addRoundKey(c.enc[4*rounds : 4*rounds+4])
	var dst Block
	copy(dst[:], s[:])
	return dst
}

// Decrypt computes the AES-128 decryption of src.
func (c *Cipher) Decrypt(src Block) Block {
	var s state
	copy(s[:], src[:])
	s.addRoundKey(c.dec[0:4])
	for r := 1; r < rounds; r++ {
		s.invSubBytes()
		s.invShiftRows()
		s.invMixColumns()
		s.addRoundKey(c.dec[4*r : 4*r+4])
	}
	s.invSubBytes()
	s.invShiftRows()
	s.addRoundKey(c.dec[4*rounds : 4*rounds+4])
	var dst Block
	copy(dst[:], s[:])
	return dst
}

// Zeroize overwrites the expanded key schedule. The round keys are the
// only key-derived material a Cipher holds, so after Zeroize the group
// session key is unrecoverable from this object (paper §5.2: session
// state must not outlive the group). The cipher is unusable afterwards —
// Encrypt/Decrypt degenerate to the all-zero schedule.
func (c *Cipher) Zeroize() {
	for i := range c.enc {
		c.enc[i] = 0
	}
	for i := range c.dec {
		c.dec[i] = 0
	}
}
