package aes

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"

	"senss/internal/rng"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

func blockOf(t *testing.T, s string) Block {
	t.Helper()
	var b Block
	copy(b[:], mustHex(t, s))
	return b
}

// TestFIPS197AppendixC checks the AES-128 known-answer vector of FIPS-197
// Appendix C.1 in both directions.
func TestFIPS197AppendixC(t *testing.T) {
	key := mustHex(t, "000102030405060708090a0b0c0d0e0f")
	pt := blockOf(t, "00112233445566778899aabbccddeeff")
	want := blockOf(t, "69c4e0d86a7b0430d8cdb78070b4c55a")

	c, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Encrypt(pt); got != want {
		t.Errorf("Encrypt = %s, want %s", got, want)
	}
	if got := c.Decrypt(want); got != pt {
		t.Errorf("Decrypt = %s, want %s", got, pt)
	}
}

// TestFIPS197AppendixB checks the worked example of FIPS-197 Appendix B.
func TestFIPS197AppendixB(t *testing.T) {
	key := mustHex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	pt := blockOf(t, "3243f6a8885a308d313198a2e0370734")
	want := blockOf(t, "3925841d02dc09fbdc118597196a0b32")

	c, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Encrypt(pt); got != want {
		t.Errorf("Encrypt = %s, want %s", got, want)
	}
	if got := c.Decrypt(want); got != pt {
		t.Errorf("Decrypt = %s, want %s", got, pt)
	}
}

// TestSP80038AVectors checks the four AES-128-ECB known-answer blocks of
// NIST SP 800-38A Appendix F.1.1/F.1.2.
func TestSP80038AVectors(t *testing.T) {
	key := mustHex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	c, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	vectors := []struct{ pt, ct string }{
		{"6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97"},
		{"ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf"},
		{"30c81c46a35ce411e5fbc1191a0a52ef", "43b1cd7f598ece23881b00e3ed030688"},
		{"f69f2445df4f9b17ad2b417be66c3710", "7b0c785e27e8ad3f8223207104725dd4"},
	}
	for i, v := range vectors {
		pt := blockOf(t, v.pt)
		want := blockOf(t, v.ct)
		if got := c.Encrypt(pt); got != want {
			t.Errorf("block %d: Encrypt = %s, want %s", i, got, want)
		}
		if got := c.Decrypt(want); got != pt {
			t.Errorf("block %d: Decrypt = %s, want %s", i, got, pt)
		}
	}
}

// TestEncryptChainStability pins a 1000-round encryption chain (a Monte
// Carlo-style self-consistency check: any regression in the key schedule
// or round functions changes the final value).
func TestEncryptChainStability(t *testing.T) {
	key := mustHex(t, "000102030405060708090a0b0c0d0e0f")
	c, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	b := blockOf(t, "00112233445566778899aabbccddeeff")
	for i := 0; i < 1000; i++ {
		b = c.Encrypt(b)
	}
	// Invert the chain to prove Encrypt/Decrypt are exact inverses over
	// long compositions.
	for i := 0; i < 1000; i++ {
		b = c.Decrypt(b)
	}
	if b != blockOf(t, "00112233445566778899aabbccddeeff") {
		t.Errorf("1000-round chain did not invert: %s", b)
	}
}

func TestNewRejectsBadKeySizes(t *testing.T) {
	for _, n := range []int{0, 1, 15, 17, 24, 32} {
		if _, err := New(make([]byte, n)); err == nil {
			t.Errorf("New(%d bytes): want error, got nil", n)
		}
	}
}

// TestRoundTripProperty checks Decrypt(Encrypt(x)) == x over random keys
// and blocks.
func TestRoundTripProperty(t *testing.T) {
	r := rng.New(1)
	f := func() bool {
		key := Block(r.Block16())
		pt := Block(r.Block16())
		c := NewFromBlock(key)
		return c.Decrypt(c.Encrypt(pt)) == pt
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestEncryptIsPermutation checks that distinct plaintexts never collide
// under one key (sampled).
func TestEncryptIsPermutation(t *testing.T) {
	r := rng.New(2)
	c := NewFromBlock(Block(r.Block16()))
	seen := make(map[Block]Block)
	for i := 0; i < 2000; i++ {
		pt := Block(r.Block16())
		ct := c.Encrypt(pt)
		if prev, ok := seen[ct]; ok && prev != pt {
			t.Fatalf("collision: %s and %s both encrypt to %s", prev, pt, ct)
		}
		seen[ct] = pt
	}
}

// TestAvalanche flips one plaintext bit and requires a substantial number
// of ciphertext bits to change (sanity, not a strict cryptographic test).
func TestAvalanche(t *testing.T) {
	r := rng.New(3)
	c := NewFromBlock(Block(r.Block16()))
	pt := Block(r.Block16())
	base := c.Encrypt(pt)
	flipped := pt
	flipped[0] ^= 1
	diff := c.Encrypt(flipped).XOR(base)
	n := 0
	for _, b := range diff {
		for ; b != 0; b &= b - 1 {
			n++
		}
	}
	if n < 30 {
		t.Errorf("only %d bits changed after 1-bit flip; want >= 30", n)
	}
}

func TestBlockHelpers(t *testing.T) {
	b := BlockFromUint64(0x0102030405060708, 0x090a0b0c0d0e0f10)
	hi, lo := b.Uint64s()
	if hi != 0x0102030405060708 || lo != 0x090a0b0c0d0e0f10 {
		t.Errorf("Uint64s = %x,%x", hi, lo)
	}
	if !bytes.Equal(b[:8], []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Errorf("big-endian packing wrong: %x", b[:8])
	}
	var z Block
	if !z.IsZero() {
		t.Error("zero block reported non-zero")
	}
	if b.IsZero() {
		t.Error("non-zero block reported zero")
	}
	if b.XOR(b) != z {
		t.Error("b XOR b != 0")
	}
}

func TestXORIsInvolution(t *testing.T) {
	f := func(a, b Block) bool { return a.XOR(b).XOR(b) == a }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncrypt(b *testing.B) {
	r := rng.New(4)
	c := NewFromBlock(Block(r.Block16()))
	pt := Block(r.Block16())
	b.SetBytes(BlockSize)
	for i := 0; i < b.N; i++ {
		pt = c.Encrypt(pt)
	}
	_ = pt
}

func BenchmarkDecrypt(b *testing.B) {
	r := rng.New(5)
	c := NewFromBlock(Block(r.Block16()))
	ct := Block(r.Block16())
	b.SetBytes(BlockSize)
	for i := 0; i < b.N; i++ {
		ct = c.Decrypt(ct)
	}
	_ = ct
}
