package aes

import "testing"

// TestZeroize verifies the expanded key schedule is actually overwritten:
// every enc and dec round-key word must read back as zero.
func TestZeroize(t *testing.T) {
	key := Block{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	c := NewFromBlock(key)

	nonzero := false
	for _, w := range c.enc {
		if w != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("expanded schedule is all zero before Zeroize; test is vacuous")
	}

	c.Zeroize()
	for i, w := range c.enc {
		if w != 0 {
			t.Errorf("enc[%d] = %#x after Zeroize", i, w)
		}
	}
	for i, w := range c.dec {
		if w != 0 {
			t.Errorf("dec[%d] = %#x after Zeroize", i, w)
		}
	}
}
