package crypto

import (
	stdaes "crypto/aes"
	"crypto/cipher"

	"senss/internal/crypto/aes"
)

// stdlibCipher is the "stdlib" backend: crypto/aes behind the
// BlockCipher interface. On amd64/arm64 the standard library dispatches
// to the hardware AES instructions, which is what makes this backend the
// fast path cmd/senss-speed measures.
//
// The in/out scratch blocks live on the (heap-allocated) struct because
// cipher.Block.Encrypt takes []byte through an interface: slicing a
// stack array at the call site would force it to escape on every block,
// and the pad-generation kernel in internal/memsec is a
// //senss-lint:hotpath route with a zero-alloc budget.
type stdlibCipher struct {
	// block holds crypto/aes's expanded key schedule.
	//senss-lint:secret
	block cipher.Block
	// in, out are per-call scratch; see the struct comment.
	in, out aes.Block
}

func newStdlibCipher(key aes.Block) BlockCipher {
	b, err := stdaes.NewCipher(key[:])
	if err != nil {
		// Unreachable: a 16-byte key is always valid AES-128.
		panic(err)
	}
	return &stdlibCipher{block: b}
}

// Encrypt computes AES-128 of src under the session key.
//
//senss-lint:hotpath
func (c *stdlibCipher) Encrypt(src aes.Block) aes.Block {
	if c.block == nil {
		return aes.Block{}
	}
	c.in = src
	c.block.Encrypt(c.out[:], c.in[:])
	return c.out
}

// Decrypt inverts Encrypt.
//
//senss-lint:hotpath
func (c *stdlibCipher) Decrypt(src aes.Block) aes.Block {
	if c.block == nil {
		return aes.Block{}
	}
	c.in = src
	c.block.Decrypt(c.out[:], c.in[:])
	return c.out
}

// Zeroize drops the key schedule and wipes the scratch blocks. The
// schedule itself lives inside crypto/aes's opaque cipher.Block; Go
// gives no way to overwrite it in place, so this backend's erasure is
// best-effort (unreferenced memory awaiting GC) — one reason the "ref"
// backend, whose schedule is wiped for real, remains the fidelity
// oracle (DESIGN.md §14).
func (c *stdlibCipher) Zeroize() {
	c.block = nil
	c.in = aes.Block{}
	c.out = aes.Block{}
}
