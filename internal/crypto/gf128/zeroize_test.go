package gf128

import "testing"

// TestGHASHZeroize verifies both the hash subkey and the accumulator are
// cleared.
func TestGHASHZeroize(t *testing.T) {
	g := NewGHASH([16]byte{0x80, 1, 2, 3})
	g.Update([16]byte{7, 7, 7})
	if g.h.IsZero() || g.y.IsZero() {
		t.Fatal("accumulator did not advance; test is vacuous")
	}

	g.Zeroize()
	if !g.h.IsZero() {
		t.Errorf("subkey = %v after Zeroize", g.h)
	}
	if !g.y.IsZero() {
		t.Errorf("accumulator = %v after Zeroize", g.y)
	}
	if g.Subkey() != ([16]byte{}) || g.Sum() != ([16]byte{}) {
		t.Error("exported views nonzero after Zeroize")
	}
}
