// Package gf128 implements multiplication in GF(2^128) with the GHASH
// polynomial x^128 + x^7 + x^2 + x + 1 (bit-reflected convention of the
// Galois/Counter Mode, NIST SP 800-38D).
//
// SENSS §4.3 notes that a GCM-style construction can provide encryption
// and authentication with a single AES invocation per block, computing the
// MAC with GF(2^128) multiplications over the counter-mode outputs; the
// AuthGF mode of internal/core uses this package for that extension.
package gf128

import "encoding/binary"

// Element is a field element, kept as the two big-endian halves of the
// 128-bit string (GCM's byte order).
type Element struct {
	Hi uint64 // bits 0..63 (leftmost bytes)
	Lo uint64 // bits 64..127
}

// FromBytes loads a 16-byte string.
//
//senss-lint:hotpath
func FromBytes(b [16]byte) Element {
	return Element{
		Hi: binary.BigEndian.Uint64(b[0:8]),
		Lo: binary.BigEndian.Uint64(b[8:16]),
	}
}

// Bytes serializes the element.
func (e Element) Bytes() [16]byte {
	var b [16]byte
	binary.BigEndian.PutUint64(b[0:8], e.Hi)
	binary.BigEndian.PutUint64(b[8:16], e.Lo)
	return b
}

// IsZero reports whether e is the additive identity.
func (e Element) IsZero() bool { return e.Hi == 0 && e.Lo == 0 }

// Add is addition in GF(2^128): XOR.
//
//senss-lint:hotpath
func (e Element) Add(o Element) Element {
	return Element{Hi: e.Hi ^ o.Hi, Lo: e.Lo ^ o.Lo}
}

// One is the multiplicative identity in GCM's reflected representation:
// the byte string 0x80 00 ... 00 (bit 0 set).
func One() Element { return Element{Hi: 0x8000000000000000} }

// Mul multiplies x·y in GF(2^128) per the GCM specification (Algorithm 1
// of SP 800-38D): V iterates over doublings of y while bits of x select
// additions, with the reduction polynomial R = 0xe1 || 0^120.
//
//senss-lint:hotpath
func Mul(x, y Element) Element {
	var z Element
	v := y
	// Walk the bits of x from bit 0 (MSB of the first byte) to bit 127.
	for i := 0; i < 128; i++ {
		var bit uint64
		if i < 64 {
			bit = x.Hi >> (63 - uint(i)) & 1
		} else {
			bit = x.Lo >> (127 - uint(i)) & 1
		}
		if bit != 0 {
			z = z.Add(v)
		}
		// v = v >> 1 (in the bit-string sense), with reduction.
		lsb := v.Lo & 1
		v.Lo = v.Lo>>1 | v.Hi<<63
		v.Hi >>= 1
		if lsb != 0 {
			v.Hi ^= 0xe100000000000000
		}
	}
	return z
}

// GHASH is a running GHASH accumulator: Y ← (Y ⊕ X)·H per block.
type GHASH struct {
	//senss-lint:secret
	h Element
	//senss-lint:secret
	y Element
}

// NewGHASH returns an accumulator keyed by the hash subkey h.
func NewGHASH(h [16]byte) *GHASH {
	return &GHASH{h: FromBytes(h)}
}

// NewGHASHWithState reconstructs an accumulator mid-chain (SHU context
// swap-in): subkey h, accumulator y.
func NewGHASHWithState(h, y [16]byte) *GHASH {
	return &GHASH{h: FromBytes(h), y: FromBytes(y)}
}

// Subkey returns the hash subkey (for encrypted context serialization).
func (g *GHASH) Subkey() [16]byte { return g.h.Bytes() }

// Update absorbs one 16-byte block.
//
//senss-lint:hotpath
func (g *GHASH) Update(block [16]byte) {
	g.y = Mul(g.y.Add(FromBytes(block)), g.h)
}

// Sum returns the current accumulator value.
func (g *GHASH) Sum() [16]byte { return g.y.Bytes() }

// Reset clears the accumulator (the subkey is kept).
func (g *GHASH) Reset() { g.y = Element{} }

// Clone returns an independent copy.
func (g *GHASH) Clone() *GHASH {
	c := *g
	return &c
}

// Zeroize wipes the hash subkey and the accumulator. Both are secret: the
// subkey is AES_K(authIV) and the accumulator authenticates the group's
// message history. The accumulator is unusable afterwards (H = 0 absorbs
// everything to zero).
func (g *GHASH) Zeroize() {
	g.h = Element{}
	g.y = Element{}
}
