package gf128

import (
	"encoding/hex"
	"testing"
	"testing/quick"

	"senss/internal/crypto/aes"
	"senss/internal/rng"
)

func randElem(r *rng.Rand) Element {
	return Element{Hi: r.Uint64(), Lo: r.Uint64()}
}

func TestAddIsXor(t *testing.T) {
	a := Element{Hi: 0xF0F0, Lo: 0x0F0F}
	b := Element{Hi: 0x00FF, Lo: 0xFF00}
	c := a.Add(b)
	if c.Hi != 0xF00F || c.Lo != 0xF00F {
		t.Errorf("Add = %+v", c)
	}
	if !a.Add(a).IsZero() {
		t.Error("x + x != 0")
	}
}

func TestMulIdentity(t *testing.T) {
	r := rng.New(1)
	one := One()
	for i := 0; i < 100; i++ {
		x := randElem(r)
		if Mul(x, one) != x || Mul(one, x) != x {
			t.Fatalf("identity failed for %+v", x)
		}
	}
}

func TestMulZero(t *testing.T) {
	r := rng.New(2)
	for i := 0; i < 50; i++ {
		if !Mul(randElem(r), Element{}).IsZero() {
			t.Fatal("x · 0 != 0")
		}
	}
}

func TestMulCommutative(t *testing.T) {
	r := rng.New(3)
	f := func() bool {
		x, y := randElem(r), randElem(r)
		return Mul(x, y) == Mul(y, x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMulAssociative(t *testing.T) {
	r := rng.New(4)
	f := func() bool {
		x, y, z := randElem(r), randElem(r), randElem(r)
		return Mul(Mul(x, y), z) == Mul(x, Mul(y, z))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMulDistributive(t *testing.T) {
	r := rng.New(5)
	f := func() bool {
		x, y, z := randElem(r), randElem(r), randElem(r)
		return Mul(x, y.Add(z)) == Mul(x, y).Add(Mul(x, z))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestGHASHKnownAnswer checks GHASH against NIST GCM test case 2
// (SP 800-38D validation data): K = 0^128, H = AES_K(0^128) =
// 66e94bd4ef8a2c3b884cfa59ca342b2e; GHASH_H of one zero ciphertext block
// followed by the length block 0^64 || 128 is f38cbb1ad69223dcc3457ae5b6b0f885.
func TestGHASHKnownAnswer(t *testing.T) {
	var zero [16]byte
	cipher, err := aes.New(zero[:])
	if err != nil {
		t.Fatal(err)
	}
	h := cipher.Encrypt(aes.Block{})
	if hex.EncodeToString(h[:]) != "66e94bd4ef8a2c3b884cfa59ca342b2e" {
		t.Fatalf("hash subkey = %x", h[:])
	}
	g := NewGHASH([16]byte(h))
	// Ciphertext block: AES_K(ctr=2) for the all-zero plaintext block:
	// 0388dace60b6a392f328c2b971b2fe78 (GCM test case 2 ciphertext).
	ct, _ := hex.DecodeString("0388dace60b6a392f328c2b971b2fe78")
	var block [16]byte
	copy(block[:], ct)
	g.Update(block)
	var lenBlock [16]byte
	lenBlock[15] = 128 // len(A)=0, len(C)=128 bits
	g.Update(lenBlock)
	got := g.Sum()
	const want = "f38cbb1ad69223dcc3457ae5b6b0f885"
	if hex.EncodeToString(got[:]) != want {
		t.Errorf("GHASH = %x, want %s", got, want)
	}
}

func TestGHASHOrderSensitivity(t *testing.T) {
	r := rng.New(6)
	var h [16]byte
	r.Read(h[:])
	b1 := r.Block16()
	b2 := r.Block16()

	g1 := NewGHASH(h)
	g1.Update(b1)
	g1.Update(b2)
	g2 := NewGHASH(h)
	g2.Update(b2)
	g2.Update(b1)
	if g1.Sum() == g2.Sum() {
		t.Error("GHASH insensitive to block order")
	}
}

func TestGHASHDivergencePropagates(t *testing.T) {
	r := rng.New(7)
	var h [16]byte
	r.Read(h[:])
	g1, g2 := NewGHASH(h), NewGHASH(h)
	g1.Update(r.Block16())
	g2.Update(r.Block16())
	for i := 0; i < 50; i++ {
		b := r.Block16()
		g1.Update(b)
		g2.Update(b)
		if g1.Sum() == g2.Sum() {
			t.Fatalf("chains re-converged after %d common blocks", i+1)
		}
	}
}

func TestGHASHResetAndClone(t *testing.T) {
	r := rng.New(8)
	var h [16]byte
	r.Read(h[:])
	g := NewGHASH(h)
	g.Update(r.Block16())
	cl := g.Clone()
	b := r.Block16()
	g.Update(b)
	cl.Update(b)
	if g.Sum() != cl.Sum() {
		t.Error("clone diverged")
	}
	g.Reset()
	if g.Sum() != ([16]byte{}) {
		t.Error("reset did not clear")
	}
}

func TestBytesRoundTrip(t *testing.T) {
	r := rng.New(9)
	f := func() bool {
		b := r.Block16()
		return FromBytes(b).Bytes() == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMul(b *testing.B) {
	r := rng.New(10)
	x, y := randElem(r), randElem(r)
	for i := 0; i < b.N; i++ {
		x = Mul(x, y)
	}
	_ = x
}
