// Package crypto defines the pluggable block-cipher layer behind the
// SENSS datapath. Every mask refresh, bus pad, memory pad, CBC-MAC
// block, and swap blob goes through a BlockCipher; which implementation
// stands behind the interface is a backend choice made once, at session
// construction, through the registry in this package.
//
// Two backends are registered:
//
//   - "ref": the from-scratch FIPS-197 implementation in
//     internal/crypto/aes. Table- and loop-based, slow, but fully
//     inspectable — it is the fidelity oracle the differential checker
//     replays, and its key schedule can be genuinely zeroized.
//   - "stdlib": crypto/aes from the Go standard library, which uses
//     AES-NI (or the equivalent) on real hardware. An order of magnitude
//     faster; cmd/senss-speed records the ratio in BENCH_crypto.json.
//
// The backend never affects simulated timing: the SHU's AES core is
// charged in modeled cycles (Params.AESLatency) by the simulator, not by
// the wall-clock of the software cipher, so golden tables and cycle
// counts are byte-identical across backends. Both backends compute
// AES-128, so mask schedules, MACs, and memory images are bit-identical
// too; the cross-backend differential test in crypto_test.go pins that.
package crypto

import (
	"fmt"
	"sort"

	"senss/internal/crypto/aes"
)

// BlockCipher is one AES-128 engine instance keyed at construction.
//
// Zeroize destroys the key material the instance holds (the taintflow
// erasure contract: session state must not outlive the group, paper
// §5.2). After Zeroize the cipher is unusable — Encrypt and Decrypt no
// longer compute AES under the session key.
type BlockCipher interface {
	Encrypt(src aes.Block) aes.Block
	Decrypt(src aes.Block) aes.Block
	Zeroize()
}

// Registered backend names.
const (
	// Ref is the reference FIPS-197 implementation (internal/crypto/aes).
	Ref = "ref"
	// Stdlib wraps crypto/aes (AES-NI on real hardware).
	Stdlib = "stdlib"
	// Default is the backend used when none is named: the reference
	// implementation, which stays the fidelity oracle.
	Default = Ref
)

// backends is the registry: one constructor per name. A constructor
// cannot fail — an aes.Block key is always the right size.
var backends = map[string]func(key aes.Block) BlockCipher{
	Ref:    func(key aes.Block) BlockCipher { return aes.NewFromBlock(key) },
	Stdlib: newStdlibCipher,
}

// Canonical maps the empty string to Default and leaves every other name
// untouched. Config plumbing treats "" and "ref" as the same backend;
// canonicalizing before hashing or construction keeps them one identity.
func Canonical(name string) string {
	if name == "" {
		return Default
	}
	return name
}

// NewBackend constructs the named backend keyed with key. The empty name
// selects Default. Unknown names are an error listing the registry.
func NewBackend(name string, key aes.Block) (BlockCipher, error) {
	ctor, ok := backends[Canonical(name)]
	if !ok {
		return nil, fmt.Errorf("crypto: unknown backend %q (have %v)", name, Backends())
	}
	return ctor(key), nil
}

// MustBackend is NewBackend for callers holding an already-validated
// name (machine.Config.Validate rejects unknown backends up front).
func MustBackend(name string, key aes.Block) BlockCipher {
	c, err := NewBackend(name, key)
	if err != nil {
		panic(err)
	}
	return c
}

// Known reports whether name selects a registered backend ("" counts,
// as Default).
func Known(name string) bool {
	_, ok := backends[Canonical(name)]
	return ok
}

// Backends lists the registered backend names, sorted.
func Backends() []string {
	out := make([]string, 0, len(backends))
	for name := range backends {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
