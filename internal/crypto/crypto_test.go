package crypto

import (
	"encoding/hex"
	"testing"

	"senss/internal/crypto/aes"
	"senss/internal/rng"
)

func mustHexBlock(t *testing.T, s string) aes.Block {
	t.Helper()
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != 16 {
		t.Fatalf("bad hex block %q: %v", s, err)
	}
	var b aes.Block
	copy(b[:], raw)
	return b
}

// TestBackendsKnownAnswer runs the FIPS-197 appendix C.1 AES-128 vector
// (plus the appendix B worked example) against every registered backend:
// both must compute the same cipher, bit for bit.
func TestBackendsKnownAnswer(t *testing.T) {
	vectors := []struct {
		name, key, pt, ct string
	}{
		{
			name: "fips197-c1",
			key:  "000102030405060708090a0b0c0d0e0f",
			pt:   "00112233445566778899aabbccddeeff",
			ct:   "69c4e0d86a7b0430d8cdb78070b4c55a",
		},
		{
			name: "fips197-b",
			key:  "2b7e151628aed2a6abf7158809cf4f3c",
			pt:   "3243f6a8885a308d313198a2e0370734",
			ct:   "3925841d02dc09fbdc118597196a0b32",
		},
	}
	for _, backend := range Backends() {
		for _, v := range vectors {
			key := mustHexBlock(t, v.key)
			pt := mustHexBlock(t, v.pt)
			ct := mustHexBlock(t, v.ct)
			c := MustBackend(backend, key)
			if got := c.Encrypt(pt); got != ct {
				t.Errorf("%s/%s: Encrypt = %s, want %s", backend, v.name, got, ct)
			}
			if got := c.Decrypt(ct); got != pt {
				t.Errorf("%s/%s: Decrypt = %s, want %s", backend, v.name, got, pt)
			}
		}
	}
}

// TestCrossBackendDifferential drives ref and stdlib in lockstep over
// thousands of random (key, block) pairs: the registry promises every
// backend computes the same AES-128 function, and the simulator's
// byte-identical-tables guarantee rests on exactly that.
func TestCrossBackendDifferential(t *testing.T) {
	r := rng.New(0x5e2155)
	const keys, blocksPerKey = 32, 128
	for k := 0; k < keys; k++ {
		key := aes.Block(r.Block16())
		ref := MustBackend(Ref, key)
		std := MustBackend(Stdlib, key)
		for i := 0; i < blocksPerKey; i++ {
			pt := aes.Block(r.Block16())
			re, se := ref.Encrypt(pt), std.Encrypt(pt)
			if re != se {
				t.Fatalf("key %d block %d: ref Encrypt %s != stdlib %s", k, i, re, se)
			}
			rd, sd := ref.Decrypt(pt), std.Decrypt(pt)
			if rd != sd {
				t.Fatalf("key %d block %d: ref Decrypt %s != stdlib %s", k, i, rd, sd)
			}
			if got := std.Decrypt(se); got != pt {
				t.Fatalf("key %d block %d: stdlib round-trip %s != %s", k, i, got, pt)
			}
		}
	}
}

// TestZeroize pins the erasure contract: after Zeroize a backend no
// longer computes AES under the session key, for every backend.
func TestZeroize(t *testing.T) {
	r := rng.New(0x2e20)
	for _, backend := range Backends() {
		key := aes.Block(r.Block16())
		pt := aes.Block(r.Block16())
		c := MustBackend(backend, key)
		before := c.Encrypt(pt)
		c.Zeroize()
		if got := c.Encrypt(pt); got == before {
			t.Errorf("%s: Encrypt unchanged after Zeroize", backend)
		}
		if got := c.Decrypt(before); got == pt {
			t.Errorf("%s: Decrypt still inverts the session key after Zeroize", backend)
		}
	}
}

// TestRegistry covers name canonicalization and the unknown-name error.
func TestRegistry(t *testing.T) {
	key := aes.Block{1}
	if _, err := NewBackend("", key); err != nil {
		t.Errorf(`NewBackend("") = %v, want the default backend`, err)
	}
	if _, err := NewBackend("openssl-ni", key); err == nil {
		t.Error("NewBackend with unknown name succeeded, want error")
	}
	if Canonical("") != Default || Canonical(Stdlib) != Stdlib {
		t.Errorf("Canonical misbehaves: %q %q", Canonical(""), Canonical(Stdlib))
	}
	if !Known("") || !Known(Ref) || !Known(Stdlib) || Known("nope") {
		t.Error("Known disagrees with the registry")
	}
	want := []string{Ref, Stdlib}
	got := Backends()
	if len(got) != len(want) {
		t.Fatalf("Backends() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Backends() = %v, want %v", got, want)
		}
	}
}

// TestEncryptZeroAlloc is the dynamic half of the hotpath discipline for
// the backends themselves: pad generation calls Encrypt millions of
// times on a zero-alloc budget, so neither backend may allocate per
// block once constructed.
func TestEncryptZeroAlloc(t *testing.T) {
	r := rng.New(0xa110c)
	for _, backend := range Backends() {
		c := MustBackend(backend, aes.Block(r.Block16()))
		pt := aes.Block(r.Block16())
		var sink aes.Block
		avg := testing.AllocsPerRun(200, func() {
			sink = c.Encrypt(pt)
			sink = c.Decrypt(sink)
		})
		if avg != 0 {
			t.Errorf("%s: %v allocations per Encrypt+Decrypt, want 0", backend, avg)
		}
		_ = sink
	}
}
