// Package sha256 implements the SHA-256 hash function (FIPS 180-4) from
// scratch.
//
// The CHash memory-integrity scheme integrated into SENSS (paper §6.2)
// hashes memory lines and hash-tree nodes; the simulator charges modeled
// cycles (160-cycle latency, 3.2 GB/s throughput) while this package
// computes the real digests so tampering is genuinely detected.
package sha256

import "encoding/binary"

// Size is the digest size in bytes.
const Size = 32

// BlockSize is the compression-function block size in bytes.
const BlockSize = 64

var k = [64]uint32{
	0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
	0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
	0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
	0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
	0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
	0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
	0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
	0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
}

// Digest is an incremental SHA-256 computation. The zero value is not ready
// to use; call New.
type Digest struct {
	h   [8]uint32
	buf [BlockSize]byte
	n   int
	len uint64
}

// New returns an initialized SHA-256 state.
func New() *Digest {
	d := new(Digest)
	d.Reset()
	return d
}

// Reset restores the initial hash state.
func (d *Digest) Reset() {
	d.h = [8]uint32{
		0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
		0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
	}
	d.n = 0
	d.len = 0
}

func rotr(x uint32, n uint) uint32 { return x>>n | x<<(32-n) }

func (d *Digest) block(p []byte) {
	var w [64]uint32
	for len(p) >= BlockSize {
		for i := 0; i < 16; i++ {
			w[i] = binary.BigEndian.Uint32(p[4*i:])
		}
		for i := 16; i < 64; i++ {
			s0 := rotr(w[i-15], 7) ^ rotr(w[i-15], 18) ^ w[i-15]>>3
			s1 := rotr(w[i-2], 17) ^ rotr(w[i-2], 19) ^ w[i-2]>>10
			w[i] = w[i-16] + s0 + w[i-7] + s1
		}
		a, b, c, dd, e, f, g, h := d.h[0], d.h[1], d.h[2], d.h[3], d.h[4], d.h[5], d.h[6], d.h[7]
		for i := 0; i < 64; i++ {
			s1 := rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25)
			ch := (e & f) ^ (^e & g)
			t1 := h + s1 + ch + k[i] + w[i]
			s0 := rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22)
			maj := (a & b) ^ (a & c) ^ (b & c)
			t2 := s0 + maj
			h, g, f, e, dd, c, b, a = g, f, e, dd+t1, c, b, a, t1+t2
		}
		d.h[0] += a
		d.h[1] += b
		d.h[2] += c
		d.h[3] += dd
		d.h[4] += e
		d.h[5] += f
		d.h[6] += g
		d.h[7] += h
		p = p[BlockSize:]
	}
}

// Write absorbs p into the hash state. It never fails.
func (d *Digest) Write(p []byte) (int, error) {
	n := len(p)
	d.len += uint64(n)
	if d.n > 0 {
		c := copy(d.buf[d.n:], p)
		d.n += c
		p = p[c:]
		if d.n == BlockSize {
			d.block(d.buf[:])
			d.n = 0
		}
	}
	if len(p) >= BlockSize {
		m := len(p) &^ (BlockSize - 1)
		d.block(p[:m])
		p = p[m:]
	}
	if len(p) > 0 {
		d.n = copy(d.buf[:], p)
	}
	return n, nil
}

// Sum finalizes a copy of the state and returns the digest.
func (d *Digest) Sum() [Size]byte {
	c := *d
	var pad [BlockSize + 8]byte
	pad[0] = 0x80
	// Pad with 0x80 then zeros so the length field lands at the end of a block:
	// (len + padLen) ≡ 56 (mod 64), padLen ≥ 1 counting the 0x80 byte.
	padLen := (56-int((c.len+1)%BlockSize)+BlockSize)%BlockSize + 1
	binary.BigEndian.PutUint64(pad[padLen:], c.len*8)
	_, _ = c.Write(pad[:padLen+8]) // Digest.Write never fails
	var out [Size]byte
	for i, v := range c.h {
		binary.BigEndian.PutUint32(out[4*i:], v)
	}
	return out
}

// Sum256 hashes p in one shot.
func Sum256(p []byte) [Size]byte {
	d := New()
	_, _ = d.Write(p) // Digest.Write never fails
	return d.Sum()
}
