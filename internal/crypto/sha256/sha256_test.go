package sha256

import (
	"encoding/hex"
	"strings"
	"testing"
	"testing/quick"

	"senss/internal/rng"
)

// FIPS 180-4 / NIST CAVP known-answer vectors.
var kat = []struct {
	in   string
	want string
}{
	{"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
	{"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
	{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
		"248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
	{"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
		"cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"},
}

func TestKnownAnswers(t *testing.T) {
	for _, v := range kat {
		got := Sum256([]byte(v.in))
		if hex.EncodeToString(got[:]) != v.want {
			t.Errorf("Sum256(%q) = %x, want %s", v.in, got, v.want)
		}
	}
}

func TestMillionA(t *testing.T) {
	in := strings.Repeat("a", 1_000_000)
	got := Sum256([]byte(in))
	const want = "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
	if hex.EncodeToString(got[:]) != want {
		t.Errorf("Sum256(1M 'a') = %x, want %s", got, want)
	}
}

// TestIncrementalMatchesOneShot splits inputs at every boundary and checks
// streaming Write produces the same digest as one-shot hashing.
func TestIncrementalMatchesOneShot(t *testing.T) {
	r := rng.New(7)
	msg := make([]byte, 300)
	r.Read(msg)
	want := Sum256(msg)
	for cut := 0; cut <= len(msg); cut += 13 {
		d := New()
		d.Write(msg[:cut])
		d.Write(msg[cut:])
		if got := d.Sum(); got != want {
			t.Fatalf("split at %d: digest mismatch", cut)
		}
	}
}

// TestSumDoesNotMutateState verifies Sum finalizes a copy.
func TestSumDoesNotMutateState(t *testing.T) {
	d := New()
	d.Write([]byte("ab"))
	first := d.Sum()
	second := d.Sum()
	if first != second {
		t.Error("consecutive Sum calls differ")
	}
	d.Write([]byte("c"))
	got := d.Sum()
	want := Sum256([]byte("abc"))
	if got != want {
		t.Errorf("continued hash after Sum = %x, want %x", got, want)
	}
}

func TestResetRestoresInitialState(t *testing.T) {
	d := New()
	d.Write([]byte("garbage"))
	d.Reset()
	d.Write([]byte("abc"))
	if got, want := d.Sum(), Sum256([]byte("abc")); got != want {
		t.Errorf("after Reset: %x, want %x", got, want)
	}
}

// TestLengthBoundaries exercises the padding logic around block boundaries,
// where off-by-one bugs live.
func TestLengthBoundaries(t *testing.T) {
	r := rng.New(8)
	for _, n := range []int{54, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128, 129} {
		msg := make([]byte, n)
		r.Read(msg)
		d := New()
		for _, b := range msg { // byte-at-a-time streaming
			d.Write([]byte{b})
		}
		if got, want := d.Sum(), Sum256(msg); got != want {
			t.Errorf("len %d: streaming %x != one-shot %x", n, got, want)
		}
	}
}

// TestSecondPreimageSanity asserts distinct sampled inputs do not collide.
func TestSecondPreimageSanity(t *testing.T) {
	r := rng.New(9)
	seen := make(map[[Size]byte][]byte)
	for i := 0; i < 2000; i++ {
		msg := make([]byte, 1+r.Intn(80))
		r.Read(msg)
		h := Sum256(msg)
		if prev, ok := seen[h]; ok && string(prev) != string(msg) {
			t.Fatalf("collision between %x and %x", prev, msg)
		}
		seen[h] = append([]byte(nil), msg...)
	}
}

// TestDeterminism is the quick.Check property that hashing is a function.
func TestDeterminism(t *testing.T) {
	f := func(msg []byte) bool { return Sum256(msg) == Sum256(msg) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkSum256_64B(b *testing.B)  { benchSum(b, 64) }
func BenchmarkSum256_1KiB(b *testing.B) { benchSum(b, 1024) }

func benchSum(b *testing.B, n int) {
	r := rng.New(10)
	msg := make([]byte, n)
	r.Read(msg)
	b.SetBytes(int64(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sum256(msg)
	}
}
