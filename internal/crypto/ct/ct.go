// Package ct holds the constant-time primitives the rest of the tree must
// use whenever secret material — session keys, pad blocks, MAC tags, chain
// state (paper §4) — is compared or discarded.
//
// The taintflow analyzer (internal/lint) enforces the contract: a
// comparison whose operand carries secret taint is a finding unless it
// goes through Equal, and a function that acquires a secret must erase it
// with Zero on every return path. Fingerprint is the sanctioned
// declassifier for reports and logs: a short one-way digest that
// identifies a key without revealing it.
package ct

import (
	"crypto/subtle"
	"encoding/hex"

	"senss/internal/crypto/sha256"
)

// Equal reports whether a and b have identical contents, in time that
// depends only on their lengths. Unequal lengths compare unequal without
// touching the contents — length is public metadata for every tag and key
// format in this tree.
func Equal(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	return subtle.ConstantTimeCompare(a, b) == 1
}

// Zero erases b. The loop is kept trivial so the compiler lowers it to a
// memclr; correctness here is erasure before the buffer goes back to the
// allocator, not resistance to a debugger.
func Zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// FingerprintBytes is the length of a Fingerprint in raw bytes.
const FingerprintBytes = 4

// Fingerprint returns a short hex digest (first FingerprintBytes bytes of
// SHA-256) that identifies secret material without revealing it — the only
// form in which key or pad identity may appear in divergence reports,
// logs, or error strings.
func Fingerprint(secret []byte) string {
	sum := sha256.Sum256(secret)
	return hex.EncodeToString(sum[:FingerprintBytes])
}
