package ct_test

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"senss/internal/crypto/ct"
)

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"", "", true},
		{"a", "a", true},
		{"a", "b", false},
		{"abc", "ab", false},
		{"\x00\x01\x02", "\x00\x01\x02", true},
		{"\x00\x01\x02", "\x00\x01\x03", false},
	}
	for _, c := range cases {
		if got := ct.Equal([]byte(c.a), []byte(c.b)); got != c.want {
			t.Errorf("Equal(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if !ct.Equal(nil, []byte{}) {
		t.Error("nil and empty must compare equal: length is the only signal")
	}
}

func TestZero(t *testing.T) {
	b := []byte{1, 2, 3, 4, 255}
	ct.Zero(b)
	for i, v := range b {
		if v != 0 {
			t.Fatalf("byte %d survived Zero: %d", i, v)
		}
	}
	ct.Zero(nil) // must not panic
}

// TestFingerprint pins the format (8 hex chars) and checks the digest
// against the standard library's SHA-256, since the internal implementation
// must agree with FIPS 180-4.
func TestFingerprint(t *testing.T) {
	secret := []byte("0123456789abcdef")
	fp := ct.Fingerprint(secret)
	if len(fp) != 2*ct.FingerprintBytes {
		t.Fatalf("fingerprint %q has length %d, want %d", fp, len(fp), 2*ct.FingerprintBytes)
	}
	sum := sha256.Sum256(secret)
	if want := hex.EncodeToString(sum[:ct.FingerprintBytes]); fp != want {
		t.Fatalf("Fingerprint = %q, want %q", fp, want)
	}
	if ct.Fingerprint([]byte("other")) == fp {
		t.Fatal("distinct secrets produced the same fingerprint")
	}
}
