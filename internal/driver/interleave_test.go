package driver_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"senss/internal/driver"
	"senss/internal/workload"
)

// This file is the RunUntil/Abort interleaving suite: sessions advanced
// by randomized cycle slices and torn down mid-window must be invisible
// at the stats level (byte-identical to serial driver.Run) and invisible
// at the runtime level (every simulated-processor goroutine unwinds).
// The whole file runs under `make race`.

// waitGoroutines polls until the live goroutine count drops back to the
// baseline, failing with a full stack dump if it never does — the
// goroutine-leak check for aborted and completed sessions. Polling is
// necessary because Abort unparks procs and returns; the goroutines
// unwind asynchronously.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d live, baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// settledGoroutines waits for the live goroutine count to hold steady
// across several polls and returns it — a baseline uncontaminated by
// still-unwinding processor goroutines from earlier tests.
func settledGoroutines() int {
	last, stable := runtime.NumGoroutine(), 0
	for stable < 5 {
		time.Sleep(10 * time.Millisecond)
		if n := runtime.NumGoroutine(); n == last {
			stable++
		} else {
			last, stable = n, 0
		}
	}
	return last
}

// randomSlice draws a deadline-slice size skewed toward the punishing
// cases: 1-cycle slices that peek the event queue every cycle, and the
// occasional huge slice that swallows most of the run.
func randomSlice(r *rand.Rand) uint64 {
	switch r.Intn(8) {
	case 0:
		return 1
	case 1:
		return 50_000
	default:
		return 1 + uint64(r.Intn(2000))
	}
}

// TestRandomSlicedSessionMatchesRun pins that a session advanced by
// randomized deadline slices finishes with measurements deeply equal to
// the monolithic driver.Run, for several slicing seeds — and that the
// completed session's goroutines all retire.
func TestRandomSlicedSessionMatchesRun(t *testing.T) {
	cfg := smallCfg()
	want, err := driver.Run("falseshare", workload.SizeTest, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			// Baseline inside the subtest: t.Run adds a goroutine of its
			// own, so the count must be taken and checked from here.
			baseline := settledGoroutines()
			r := rand.New(rand.NewSource(seed))
			s, err := driver.NewSession("falseshare", workload.SizeTest, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for {
				done, err := s.Step(randomSlice(r))
				if err != nil {
					t.Fatal(err)
				}
				if done {
					break
				}
			}
			got, err := s.Result()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("randomized slicing diverged from driver.Run:\n got %+v\nwant %+v", got, want)
			}
			s.Close()
			waitGoroutines(t, baseline)
		})
	}
}

// TestAbortMidWindowNoLeaks closes sessions at randomized points in
// mid-flight — after a random number of random-size slices, including
// immediately after construction with zero cycles run — and checks that
// every processor goroutine unwinds, the snapshot stays readable, and
// the verdict records the early teardown.
func TestAbortMidWindowNoLeaks(t *testing.T) {
	cfg := smallCfg()
	baseline := settledGoroutines()

	for seed := int64(1); seed <= 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		s, err := driver.NewSession("ocean", workload.SizeTest, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for steps := r.Intn(6); steps > 0; steps-- {
			if done, _ := s.Step(1 + uint64(r.Intn(700))); done {
				t.Fatal("workload finished before the abort point; pick a longer one")
			}
		}
		s.Close()
		if _, err := s.Result(); err == nil {
			t.Errorf("seed %d: aborted session reports success", seed)
		}
		if snap := s.Snapshot(); snap.Workload != "ocean" {
			t.Errorf("seed %d: snapshot lost after mid-window abort: %+v", seed, snap)
		}
		waitGoroutines(t, baseline)
	}
}

// TestConcurrentRandomSlicing is the -race workout: independent sessions
// advanced concurrently with per-goroutine random slicing, a third of
// them aborted mid-window, the rest required to match the serial
// driver.Run result exactly. Sessions share no state, so the race
// detector finding any conflict means engine or machine internals leaked
// across instances.
func TestConcurrentRandomSlicing(t *testing.T) {
	cfg := smallCfg()
	want, err := driver.Run("prodcons", workload.SizeTest, cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseline := settledGoroutines()

	const sessions = 9
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			s, err := driver.NewSession("prodcons", workload.SizeTest, cfg)
			if err != nil {
				errs <- err
				return
			}
			defer s.Close()
			abortAfter := -1
			if seed%3 == 0 {
				abortAfter = r.Intn(10)
			}
			for steps := 0; ; steps++ {
				if steps == abortAfter {
					s.Close()
					return
				}
				done, err := s.Step(randomSlice(r))
				if err != nil {
					errs <- err
					return
				}
				if done {
					break
				}
			}
			got, err := s.Result()
			if err != nil {
				errs <- err
				return
			}
			if !reflect.DeepEqual(got, want) {
				errs <- fmt.Errorf("seed %d diverged from serial driver.Run", seed)
			}
		}(int64(i + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	waitGoroutines(t, baseline)
}
