package driver_test

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"senss/internal/driver"
	"senss/internal/machine"
	"senss/internal/workload"
)

// smallCfg returns a cheap secured machine (the bench-sim geometry).
func smallCfg() machine.Config {
	cfg := machine.DefaultConfig()
	cfg.Procs = 2
	cfg.Coherence.L1Size = 4 << 10
	cfg.Coherence.L2Size = 64 << 10
	cfg.CPU.CodeBytes = 2 << 10
	cfg.Security.Mode = machine.SecurityBus
	return cfg
}

func TestRunUnknownWorkload(t *testing.T) {
	_, err := driver.Run("no-such-kernel", workload.SizeTest, smallCfg())
	if err == nil || !strings.Contains(err.Error(), `unknown "no-such-kernel"`) {
		t.Fatalf("err = %v, want unknown-workload error", err)
	}
}

// TestRunInvalidConfig pins that configuration mistakes surface as
// errors from the driver, not as machine.New panics: a serving layer
// must be able to reject a bad request without crashing.
func TestRunInvalidConfig(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*machine.Config)
		want string
	}{
		{"zero procs", func(c *machine.Config) { c.Procs = 0 }, "Procs"},
		{"line mismatch", func(c *machine.Config) { c.Coherence.L2Line = 48 }, "multiple"},
		{"bad mask banks", func(c *machine.Config) { c.Security.Senss.Masks = 3 }, "mask banks"},
		{"unknown backend", func(c *machine.Config) { c.Security.Senss.Backend = "quantum" }, "crypto backend"},
		{"naive without bus", func(c *machine.Config) {
			c.Security.Mode = machine.SecurityOff
			c.Security.Naive = true
		}, "naive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallCfg()
			tc.mod(&cfg)
			_, err := driver.Run("fft", workload.SizeTest, cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
			if !strings.Contains(err.Error(), "invalid config") {
				t.Errorf("err = %v, want the invalid-config wrapper", err)
			}
		})
	}
}

func TestCompareUnknownWorkload(t *testing.T) {
	_, _, err := driver.Compare("bogus", workload.SizeTest, smallCfg())
	if err == nil || !strings.Contains(err.Error(), `unknown "bogus"`) {
		t.Fatalf("err = %v, want unknown-workload error", err)
	}
}

// TestCompareInvalidBackend exercises Compare's config-rejection path:
// Validate checks the crypto backend regardless of security mode, so the
// baseline leg already fails and no simulation ever starts.
func TestCompareInvalidBackend(t *testing.T) {
	cfg := smallCfg()
	cfg.Security.Senss.Backend = "quantum"
	base, secure, err := driver.Compare("fft", workload.SizeTest, cfg)
	if err == nil || !strings.Contains(err.Error(), "crypto backend") {
		t.Fatalf("err = %v, want unknown-backend error", err)
	}
	if base.Cycles != 0 || secure.Cycles != 0 {
		t.Errorf("got measurements (%d, %d cycles) from a rejected config", base.Cycles, secure.Cycles)
	}
}

// TestCompareMatchesRunWorkload pins Compare's happy path against two
// direct Runs.
func TestCompareMatchesRunWorkload(t *testing.T) {
	cfg := smallCfg()
	base, secure, err := driver.Compare("lockcontend", workload.SizeTest, cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseCfg := cfg
	baseCfg.Security.Mode = machine.SecurityOff
	wantBase, err := driver.Run("lockcontend", workload.SizeTest, baseCfg)
	if err != nil {
		t.Fatal(err)
	}
	wantSec, err := driver.Run("lockcontend", workload.SizeTest, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, wantBase) || !reflect.DeepEqual(secure, wantSec) {
		t.Error("Compare diverged from direct Runs")
	}
}

func TestNewSessionErrors(t *testing.T) {
	if _, err := driver.NewSession("nope", workload.SizeTest, smallCfg()); err == nil {
		t.Error("unknown workload accepted")
	}
	cfg := smallCfg()
	cfg.Procs = -1
	if _, err := driver.NewSession("fft", workload.SizeTest, cfg); err == nil {
		t.Error("invalid config accepted")
	}
}

// TestSessionSteppedMatchesRun is the core determinism contract of the
// serving layer: a session advanced in small slices finishes with
// measurements deeply equal to the monolithic driver.Run of the same
// config, for both secured modes.
func TestSessionSteppedMatchesRun(t *testing.T) {
	for _, mode := range []machine.SecurityMode{machine.SecurityOff, machine.SecurityBus} {
		cfg := smallCfg()
		cfg.Security.Mode = mode
		want, err := driver.Run("falseshare", workload.SizeTest, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s, err := driver.NewSession("falseshare", workload.SizeTest, cfg)
		if err != nil {
			t.Fatal(err)
		}
		steps := 0
		var lastCycles uint64
		for {
			done, err := s.Step(1000)
			if err != nil {
				t.Fatal(err)
			}
			if c := s.Cycles(); c < lastCycles {
				t.Fatalf("cycles went backwards: %d -> %d", lastCycles, c)
			} else {
				lastCycles = c
			}
			steps++
			if done {
				break
			}
			if snap := s.Snapshot(); snap.Workload != "falseshare" {
				t.Fatalf("snapshot workload = %q", snap.Workload)
			}
		}
		if steps < 5 {
			t.Fatalf("run completed in %d slices; slice too coarse to exercise stepping", steps)
		}
		got, err := s.Result()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("mode %s: stepped result diverged from driver.Run:\n got %+v\nwant %+v", mode, got, want)
		}
		if snap := s.Snapshot(); !reflect.DeepEqual(snap, want) {
			t.Errorf("mode %s: finished Snapshot diverged from Result", mode)
		}
		s.Close() // post-completion close is a clean shutdown
	}
}

func TestSessionResultBeforeDone(t *testing.T) {
	s, err := driver.NewSession("fft", workload.SizeTest, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Result(); err == nil || !strings.Contains(err.Error(), "still running") {
		t.Fatalf("Result before completion: err = %v", err)
	}
}

// TestSessionCloseMidRun aborts a half-finished simulation and checks
// the session degrades gracefully: closed-session Steps are no-ops, the
// snapshot stays readable, and the verdict says the run never finished.
func TestSessionCloseMidRun(t *testing.T) {
	s, err := driver.NewSession("ocean", workload.SizeTest, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if done, _ := s.Step(500); done {
		t.Fatal("finished within the first 500 cycles; pick a longer workload")
	}
	s.Close()
	s.Close() // idempotent
	if !s.Done() {
		t.Error("closed session not done")
	}
	if _, err := s.Result(); err == nil || !strings.Contains(err.Error(), "closed at cycle") {
		t.Errorf("Result after mid-run close: err = %v", err)
	}
	if done, _ := s.Step(math.MaxUint64); !done {
		t.Error("Step after Close claims the run continues")
	}
	if snap := s.Snapshot(); snap.Workload != "ocean" {
		t.Errorf("snapshot lost after close: %+v", snap)
	}
}

// TestSessionRunHonorsContext cancels mid-run and then resumes the same
// session to completion, pinning that cancellation pauses rather than
// poisons.
func TestSessionRunHonorsContext(t *testing.T) {
	cfg := smallCfg()
	want, err := driver.Run("ocean", workload.SizeTest, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := driver.NewSession("ocean", workload.SizeTest, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Run(ctx, 1000); err == nil {
		t.Fatal("cancelled Run returned nil error")
	}
	if s.Done() {
		t.Fatal("cancellation finished the session")
	}
	got, err := s.Run(context.Background(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("resumed-after-cancel result diverged from driver.Run")
	}
}
