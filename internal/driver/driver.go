// Package driver executes one workload run on a freshly assembled
// machine. It is the single implementation behind both the public
// senss.RunWorkload facade and the internal/farm orchestration pool, so
// the two can never drift apart in setup, validation, or error wording.
package driver

import (
	"fmt"

	"senss/internal/machine"
	"senss/internal/stats"
	"senss/internal/workload"
)

// Run builds a machine from cfg, runs the named workload on all
// processors, validates the computed result, and returns the
// measurements. Every call assembles a fresh machine and touches no
// shared mutable state, so concurrent Runs are independent; each
// individual simulation remains single-goroutine deterministic.
func Run(name string, size workload.Size, cfg machine.Config) (stats.Run, error) {
	w, err := workload.New(name, size)
	if err != nil {
		return stats.Run{}, err
	}
	m := machine.New(cfg)
	progs := w.Setup(m, cfg.Procs)
	run, err := m.Run(progs)
	run.Workload = name
	if err != nil {
		return run, fmt.Errorf("senss: running %s: %w", name, err)
	}
	if halted, why := m.Halted(); halted {
		return run, fmt.Errorf("senss: %s halted: %s", name, why)
	}
	if err := w.Validate(m); err != nil {
		return run, fmt.Errorf("senss: %s produced wrong results: %w", name, err)
	}
	return run, nil
}
