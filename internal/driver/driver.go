// Package driver executes workload runs on freshly assembled machines.
// It is the single implementation behind the public senss.RunWorkload /
// senss.Compare facade, the internal/farm orchestration pool, and the
// internal/serve session host, so none of them can drift apart in setup,
// validation, or error wording.
//
// Two execution shapes share one core:
//
//   - Run executes a workload to completion in one call.
//   - Session wraps the same machine but advances it in bounded cycle
//     slices (Step), so a host scheduler — the serving layer's worker
//     pool — can interleave thousands of simulations, snapshot stats
//     mid-flight, honor context cancellation between slices, and tear a
//     simulation down early. Slicing is invisible to the simulation
//     (sim.Engine.RunUntil retires the identical event sequence), so a
//     stepped session's final measurements are byte-identical to Run's.
package driver

import (
	"context"
	"fmt"
	"math"

	"senss/internal/machine"
	"senss/internal/oracle"
	"senss/internal/stats"
	"senss/internal/workload"
)

// DefaultSlice is the cycle-slice granularity Session.Run uses between
// cancellation checks when the caller passes 0.
const DefaultSlice = 100_000

// Session is one incrementally executed simulation: a machine plus the
// workload that validates it, advanced by bounded cycle slices. A
// Session is not safe for concurrent use; the host serializes access
// (internal/serve holds a per-session mutex). Abandoned sessions must be
// Closed, or their simulated processors' goroutines leak.
type Session struct {
	name string
	size workload.Size
	cfg  machine.Config

	m      *machine.Machine
	w      workload.Workload
	done   bool
	closed bool
	result stats.Run
	err    error
}

// NewSession validates cfg, assembles the machine, lays out the
// workload, and spawns its programs without running a single cycle.
// Unlike machine.New, configuration mistakes come back as errors, not
// panics — a serving layer cannot crash on a bad request.
func NewSession(name string, size workload.Size, cfg machine.Config) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("senss: invalid config for %s: %w", name, err)
	}
	w, err := workload.New(name, size)
	if err != nil {
		return nil, err
	}
	m := machine.New(cfg)
	progs := w.Setup(m, cfg.Procs)
	if err := m.Start(progs); err != nil {
		return nil, fmt.Errorf("senss: starting %s: %w", name, err)
	}
	return &Session{name: name, size: size, cfg: cfg, m: m, w: w}, nil
}

// Name returns the workload name the session runs.
func (s *Session) Name() string { return s.name }

// Config returns the machine configuration the session was built from.
func (s *Session) Config() machine.Config { return s.cfg }

// Cycles returns the current simulated cycle.
func (s *Session) Cycles() uint64 { return s.m.Engine.Now() }

// Done reports whether the simulation has finished (successfully or not).
func (s *Session) Done() bool { return s.done }

// Step advances the simulation by at most maxCycles cycles. When it
// completes the run — normally, by halting on an alarm, or by a
// simulation error — Step finalizes the result exactly the way Run
// does: done is true and Result carries the measurements and verdict.
// Stepping a finished or closed session is a harmless no-op.
func (s *Session) Step(maxCycles uint64) (done bool, err error) {
	if s.done || s.closed {
		return true, s.err
	}
	done, runErr := s.m.Step(maxCycles)
	if !done {
		return false, nil
	}
	s.finish(runErr)
	return true, s.err
}

// finish collects the measurements and applies Run's verdict sequence:
// simulation error, security halt, then workload validation.
func (s *Session) finish(runErr error) {
	s.done = true
	run := s.m.Collect()
	run.Workload = s.name
	s.result = run
	if runErr != nil {
		s.err = fmt.Errorf("senss: running %s: %w", s.name, runErr)
		return
	}
	if halted, why := s.m.Halted(); halted {
		s.err = fmt.Errorf("senss: %s halted: %s", s.name, why)
		return
	}
	if err := s.w.Validate(s.m); err != nil {
		s.err = fmt.Errorf("senss: %s produced wrong results: %w", s.name, err)
	}
}

// Run steps the session to completion in slices of the given size
// (0 selects DefaultSlice), checking ctx between slices. On
// cancellation the session is left paused and resumable; the context's
// error is returned.
func (s *Session) Run(ctx context.Context, slice uint64) (stats.Run, error) {
	if slice == 0 {
		slice = DefaultSlice
	}
	for {
		if err := ctx.Err(); err != nil {
			return s.Snapshot(), err
		}
		done, err := s.Step(slice)
		if done {
			return s.result, err
		}
	}
}

// Result returns the final measurements and verdict of a finished
// session. Calling it before completion returns the zero Run and an
// error.
func (s *Session) Result() (stats.Run, error) {
	if !s.done {
		return stats.Run{}, fmt.Errorf("senss: %s still running (cycle %d)", s.name, s.Cycles())
	}
	return s.result, s.err
}

// Snapshot returns the measurements accumulated so far — the incremental
// per-cycle stats a serving layer streams mid-run. On a finished session
// it equals the final Result record.
func (s *Session) Snapshot() stats.Run {
	if s.done {
		return s.result
	}
	run := s.m.Collect()
	run.Workload = s.name
	return run
}

// OracleReport returns the redacted divergence report when the machine
// ran with the differential oracle attached and it diverged, else nil.
// Reports carry SessionFP fingerprints only — safe to serialize.
func (s *Session) OracleReport() *oracle.Report {
	if s.m.Oracle == nil {
		return nil
	}
	return s.m.Oracle.Report()
}

// Close tears the session down: a still-running simulation is aborted
// (its processor goroutines unwound, SENSS group sessions reclaimed and
// zeroized). Safe to call at any point, including after completion, and
// idempotent. The last Snapshot remains readable.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	if !s.done {
		s.result = s.Snapshot()
		s.err = fmt.Errorf("senss: %s closed at cycle %d before completion", s.name, s.Cycles())
		s.done = true
		s.m.Abort()
		return
	}
	s.m.Shutdown()
}

// Run builds a machine from cfg, runs the named workload on all
// processors, validates the computed result, and returns the
// measurements. Every call assembles a fresh machine and touches no
// shared mutable state, so concurrent Runs are independent; each
// individual simulation remains single-goroutine deterministic. Run is a
// Session stepped with an unbounded slice — one code path for the batch
// and serving worlds.
func Run(name string, size workload.Size, cfg machine.Config) (stats.Run, error) {
	s, err := NewSession(name, size, cfg)
	if err != nil {
		return stats.Run{}, err
	}
	for {
		done, err := s.Step(math.MaxUint64)
		if done {
			return s.result, err
		}
	}
}

// Compare runs the workload on the unprotected baseline and on cfg,
// returning both measurements. cfg.Security.Mode selects the protected
// variant; the baseline copies cfg with security off.
func Compare(name string, size workload.Size, cfg machine.Config) (base, secure stats.Run, err error) {
	baseCfg := cfg
	baseCfg.Security.Mode = machine.SecurityOff
	baseCfg.Security.Naive = false
	base, err = Run(name, size, baseCfg)
	if err != nil {
		return base, secure, err
	}
	secure, err = Run(name, size, cfg)
	return base, secure, err
}
