package mem

import (
	"bytes"
	"testing"
	"testing/quick"

	"senss/internal/rng"
)

func TestWordRoundTrip(t *testing.T) {
	s := New()
	s.WriteWord(0x100, 0xdeadbeefcafef00d)
	if got := s.ReadWord(0x100); got != 0xdeadbeefcafef00d {
		t.Errorf("ReadWord = %#x", got)
	}
	if got := s.ReadWord(0x108); got != 0 {
		t.Errorf("untouched word = %#x, want 0", got)
	}
}

func TestWordsWithinLineIndependent(t *testing.T) {
	s := New()
	for i := uint64(0); i < 8; i++ {
		s.WriteWord(0x200+i*8, i+1)
	}
	for i := uint64(0); i < 8; i++ {
		if got := s.ReadWord(0x200 + i*8); got != i+1 {
			t.Errorf("word %d = %d", i, got)
		}
	}
}

func TestLineRoundTrip(t *testing.T) {
	s := New()
	src := make([]byte, LineSize)
	rng.New(1).Read(src)
	s.WriteLine(0x310, src) // unaligned addr maps to its containing line
	dst := make([]byte, LineSize)
	s.ReadLine(0x300, dst)
	if !bytes.Equal(src, dst) {
		t.Error("line round trip failed")
	}
}

func TestLineAddr(t *testing.T) {
	for _, c := range []struct{ in, want uint64 }{
		{0, 0}, {63, 0}, {64, 64}, {0x1234, 0x1200},
	} {
		if got := LineAddr(c.in); got != c.want {
			t.Errorf("LineAddr(%#x) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestUnalignedWordPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unaligned access did not panic")
		}
	}()
	New().ReadWord(0x101)
}

func TestTamper(t *testing.T) {
	s := New()
	s.WriteWord(0x400, 0xFF)
	s.Tamper(0x400, 0x01)
	if got := s.ReadWord(0x400); got != 0xFE {
		t.Errorf("after tamper = %#x, want 0xFE", got)
	}
}

func TestTouched(t *testing.T) {
	s := New()
	s.WriteWord(0x0, 1)
	s.WriteWord(0x40, 2)
	s.WriteWord(0x48, 3) // same line as 0x40
	touched := s.Touched()
	if len(touched) != 2 {
		t.Errorf("Touched = %v, want two lines", touched)
	}
}

func TestAccessCounters(t *testing.T) {
	s := New()
	buf := make([]byte, LineSize)
	s.ReadLine(0, buf)
	s.WriteLine(0, buf)
	s.WriteLine(64, buf)
	if s.Reads != 1 || s.Writes != 2 {
		t.Errorf("counters = %d/%d, want 1/2", s.Reads, s.Writes)
	}
}

func TestLineBufferHelpers(t *testing.T) {
	f := func(v uint64, off8 uint8) bool {
		off := uint64(off8%8) * 8
		line := make([]byte, LineSize)
		WriteWordToLine(line, off, v)
		return ReadWordFromLine(line, off) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWordIsLittleEndian(t *testing.T) {
	s := New()
	s.WriteWord(0, 0x0102030405060708)
	buf := make([]byte, LineSize)
	s.ReadLine(0, buf)
	if buf[0] != 0x08 || buf[7] != 0x01 {
		t.Errorf("byte layout %x not little-endian", buf[:8])
	}
}
