// Package mem models the shared main memory of the SMP: a sparse,
// line-granular backing store plus the DRAM timing parameters.
//
// The store holds whatever bytes the system writes — plaintext in an
// unprotected machine, ciphertext when the memsec layer wraps it — so a
// simulated adversary reading or flipping memory sees exactly what a probe
// on a real DIMM would.
package mem

import (
	"fmt"
	"sort"
)

// LineSize is the storage granularity in bytes, matching the L2 line size
// of the paper's configuration (Figure 5).
const LineSize = 64

// WordSize is the access granularity of simulated programs.
const WordSize = 8

// Line is one memory line.
type Line [LineSize]byte

// Store is a sparse line-addressed memory. The zero value is empty and
// ready to use via New.
type Store struct {
	lines map[uint64]*Line

	// Reads and Writes count line-granular accesses (for stats).
	Reads  uint64
	Writes uint64
}

// New returns an empty store.
func New() *Store {
	return &Store{lines: make(map[uint64]*Line)}
}

// LineAddr returns the line-aligned address containing addr.
//
//senss-lint:hotpath
func LineAddr(addr uint64) uint64 { return addr &^ (LineSize - 1) }

// line returns the line containing addr, allocating it zeroed on demand.
//
//senss-lint:hotpath
func (s *Store) line(addr uint64) *Line {
	la := LineAddr(addr)
	l, ok := s.lines[la]
	if !ok {
		//senss-lint:ignore hotpath first-touch growth: each line is allocated once, then reused for the run
		l = new(Line)
		s.lines[la] = l
	}
	return l
}

// ReadLine copies the line containing addr into dst.
//
//senss-lint:hotpath
func (s *Store) ReadLine(addr uint64, dst []byte) {
	if len(dst) != LineSize {
		panic(fmt.Sprintf("mem: ReadLine dst size %d", len(dst)))
	}
	s.Reads++
	copy(dst, s.line(addr)[:])
}

// WriteLine overwrites the line containing addr with src.
//
//senss-lint:hotpath
func (s *Store) WriteLine(addr uint64, src []byte) {
	if len(src) != LineSize {
		panic(fmt.Sprintf("mem: WriteLine src size %d", len(src)))
	}
	s.Writes++
	copy(s.line(addr)[:], src)
}

// ReadWord returns the 8-byte little-endian word at addr (must be aligned).
// It bypasses timing — used for initialization and result validation.
func (s *Store) ReadWord(addr uint64) uint64 {
	checkAlign(addr)
	l := s.line(addr)
	off := addr % LineSize
	var v uint64
	for i := 0; i < WordSize; i++ {
		v |= uint64(l[off+uint64(i)]) << (8 * i)
	}
	return v
}

// WriteWord stores an 8-byte little-endian word at addr (must be aligned).
// It bypasses timing — used for initialization.
func (s *Store) WriteWord(addr uint64, v uint64) {
	checkAlign(addr)
	l := s.line(addr)
	off := addr % LineSize
	for i := 0; i < WordSize; i++ {
		l[off+uint64(i)] = byte(v >> (8 * i))
	}
}

// Tamper XORs mask into the byte at addr — the physical memory attack used
// by the integrity experiments.
func (s *Store) Tamper(addr uint64, mask byte) {
	l := s.line(addr)
	l[addr%LineSize] ^= mask
}

// Touched returns the addresses of all allocated lines in ascending order,
// so callers that derive state from the line set (memsec encryption sweep,
// integrity tree construction) stay bit-reproducible.
func (s *Store) Touched() []uint64 {
	out := make([]uint64, 0, len(s.lines))
	for a := range s.lines {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func checkAlign(addr uint64) {
	if addr%WordSize != 0 {
		panic(fmt.Sprintf("mem: unaligned word access at %#x", addr))
	}
}

// ReadWordFromLine extracts the little-endian word at byte offset off of a
// line buffer. Shared helper for caches and nodes.
//
//senss-lint:hotpath
func ReadWordFromLine(line []byte, off uint64) uint64 {
	var v uint64
	for i := 0; i < WordSize; i++ {
		v |= uint64(line[off+uint64(i)]) << (8 * i)
	}
	return v
}

// WriteWordToLine stores a little-endian word at byte offset off of a line
// buffer.
//
//senss-lint:hotpath
func WriteWordToLine(line []byte, off uint64, v uint64) {
	for i := 0; i < WordSize; i++ {
		line[off+uint64(i)] = byte(v >> (8 * i))
	}
}
