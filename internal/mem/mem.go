// Package mem models the shared main memory of the SMP: a sparse,
// line-granular backing store plus the DRAM timing parameters.
//
// The store holds whatever bytes the system writes — plaintext in an
// unprotected machine, ciphertext when the memsec layer wraps it — so a
// simulated adversary reading or flipping memory sees exactly what a probe
// on a real DIMM would.
package mem

import "fmt"

// LineSize is the storage granularity in bytes, matching the L2 line size
// of the paper's configuration (Figure 5).
const LineSize = 64

// WordSize is the access granularity of simulated programs.
const WordSize = 8

// Line is one memory line.
type Line [LineSize]byte

// Paging geometry: the store is a two-level flat array — a page table
// indexed by the high bits of the line number, each entry holding a
// fixed 512-line (32 KiB) page. Simulated addresses come from the
// machine's bump allocator, so the space is dense from zero and the
// table stays tiny; lookup is two shifts and two loads instead of a
// map probe on every fetch and write-back.
const (
	pageLineBits = 9
	pageLines    = 1 << pageLineBits
)

// page is one 32 KiB slab of lines plus the touched bitmap that keeps
// Touched() exact (the sparse map used to record first access for free).
type page struct {
	lines   [pageLines]Line
	touched [pageLines / 64]uint64
}

// Store is a sparse line-addressed memory. The zero value is empty and
// ready to use via New.
type Store struct {
	pages []*page // indexed by line number >> pageLineBits; nil = untouched

	// Reads and Writes count line-granular accesses (for stats).
	Reads  uint64
	Writes uint64
}

// New returns an empty store.
func New() *Store {
	return &Store{}
}

// LineAddr returns the line-aligned address containing addr.
//
//senss-lint:hotpath
func LineAddr(addr uint64) uint64 { return addr &^ (LineSize - 1) }

// line returns the line containing addr, allocating its page zeroed on
// demand and recording the touch.
//
//senss-lint:hotpath
func (s *Store) line(addr uint64) *Line {
	li := addr / LineSize
	pi := li >> pageLineBits
	if pi >= uint64(len(s.pages)) {
		//senss-lint:ignore hotpath first-touch growth: the page table reaches its final size once the workload's footprint is allocated
		s.pages = append(s.pages, make([]*page, pi+1-uint64(len(s.pages)))...)
	}
	p := s.pages[pi]
	if p == nil {
		//senss-lint:ignore hotpath first-touch growth: each 32 KiB page is allocated once, then reused for the run
		p = new(page)
		s.pages[pi] = p
	}
	off := li & (pageLines - 1)
	p.touched[off>>6] |= 1 << (off & 63)
	return &p.lines[off]
}

// ReadLine copies the line containing addr into dst.
//
//senss-lint:hotpath
func (s *Store) ReadLine(addr uint64, dst []byte) {
	if len(dst) != LineSize {
		panic(fmt.Sprintf("mem: ReadLine dst size %d", len(dst)))
	}
	s.Reads++
	copy(dst, s.line(addr)[:])
}

// WriteLine overwrites the line containing addr with src.
//
//senss-lint:hotpath
func (s *Store) WriteLine(addr uint64, src []byte) {
	if len(src) != LineSize {
		panic(fmt.Sprintf("mem: WriteLine src size %d", len(src)))
	}
	s.Writes++
	copy(s.line(addr)[:], src)
}

// ReadWord returns the 8-byte little-endian word at addr (must be aligned).
// It bypasses timing — used for initialization and result validation.
func (s *Store) ReadWord(addr uint64) uint64 {
	checkAlign(addr)
	l := s.line(addr)
	off := addr % LineSize
	var v uint64
	for i := 0; i < WordSize; i++ {
		v |= uint64(l[off+uint64(i)]) << (8 * i)
	}
	return v
}

// WriteWord stores an 8-byte little-endian word at addr (must be aligned).
// It bypasses timing — used for initialization.
func (s *Store) WriteWord(addr uint64, v uint64) {
	checkAlign(addr)
	l := s.line(addr)
	off := addr % LineSize
	for i := 0; i < WordSize; i++ {
		l[off+uint64(i)] = byte(v >> (8 * i))
	}
}

// Tamper XORs mask into the byte at addr — the physical memory attack used
// by the integrity experiments.
func (s *Store) Tamper(addr uint64, mask byte) {
	l := s.line(addr)
	l[addr%LineSize] ^= mask
}

// Touched returns the addresses of all allocated lines in ascending order,
// so callers that derive state from the line set (memsec encryption sweep,
// integrity tree construction) stay bit-reproducible.
func (s *Store) Touched() []uint64 {
	var out []uint64
	for pi, p := range s.pages {
		if p == nil {
			continue
		}
		for w, bits := range p.touched {
			for b := 0; bits != 0; b++ {
				if bits&1 != 0 {
					li := uint64(pi)<<pageLineBits | uint64(w<<6|b)
					out = append(out, li*LineSize)
				}
				bits >>= 1
			}
		}
	}
	return out
}

func checkAlign(addr uint64) {
	if addr%WordSize != 0 {
		panic(fmt.Sprintf("mem: unaligned word access at %#x", addr))
	}
}

// ReadWordFromLine extracts the little-endian word at byte offset off of a
// line buffer. Shared helper for caches and nodes.
//
//senss-lint:hotpath
func ReadWordFromLine(line []byte, off uint64) uint64 {
	var v uint64
	for i := 0; i < WordSize; i++ {
		v |= uint64(line[off+uint64(i)]) << (8 * i)
	}
	return v
}

// WriteWordToLine stores a little-endian word at byte offset off of a line
// buffer.
//
//senss-lint:hotpath
func WriteWordToLine(line []byte, off uint64, v uint64) {
	for i := 0; i < WordSize; i++ {
		line[off+uint64(i)] = byte(v >> (8 * i))
	}
}
