// Package trace records the bus transaction stream of a simulation for
// offline analysis — per-kind histograms, group shares, inter-arrival
// statistics — and serializes it as JSON lines.
//
// A Recorder implements bus.SecurityHook with zero cycle cost, so it can
// ride on any configuration (including the unprotected baseline) without
// disturbing timing.
//
// Note: SENSS authentication broadcasts are piggybacked on the bus tenure
// of the transfer that saturated the counter (bus.RecordInjected), so they
// appear in the bus statistics but not as separate trace events.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"senss/internal/bus"
	"senss/internal/sim"
)

// Event is one observed bus transaction.
type Event struct {
	Cycle    uint64 `json:"cycle"`
	Kind     string `json:"kind"`
	Addr     uint64 `json:"addr"`
	Src      int    `json:"src"`
	GID      int    `json:"gid"`
	Supplier int    `json:"supplier"` // -1 = memory
	C2C      bool   `json:"c2c"`
	Extra    uint64 `json:"extra"` // security cycles charged
}

// Recorder captures bus events up to Limit (0 = unlimited).
type Recorder struct {
	Limit   int
	Events  []Event
	Dropped uint64 // events beyond Limit
}

// NewRecorder returns a recorder keeping at most limit events.
func NewRecorder(limit int) *Recorder { return &Recorder{Limit: limit} }

// OnTransaction implements bus.SecurityHook (cost-free observation).
//
//senss-lint:ignore cycleacct the recorder observes without disturbing timing: zero cycles is its contract
func (r *Recorder) OnTransaction(p *sim.Proc, t *bus.Transaction) uint64 {
	if r.Limit > 0 && len(r.Events) >= r.Limit {
		r.Dropped++
		return 0
	}
	cycle := uint64(0)
	if p != nil {
		cycle = p.Now()
	}
	r.Events = append(r.Events, Event{
		Cycle:    cycle,
		Kind:     t.Kind.String(),
		Addr:     t.Addr,
		Src:      t.Src,
		GID:      t.GID,
		Supplier: t.SupplierID,
		C2C:      t.CacheToCache(),
		Extra:    t.Extra,
	})
	return 0
}

// WriteJSONL serializes the trace as one JSON object per line.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range r.Events {
		if err := enc.Encode(&r.Events[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL parses a trace written by WriteJSONL.
func ReadJSONL(rd io.Reader) ([]Event, error) {
	dec := json.NewDecoder(rd)
	var out []Event
	for dec.More() {
		var e Event
		if err := dec.Decode(&e); err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// Summary is the aggregate view of a trace.
type Summary struct {
	Total      int
	ByKind     map[string]int
	BySrc      map[int]int
	ByGID      map[int]int
	C2C        int
	MeanGap    float64 // mean cycles between consecutive transactions
	FirstCycle uint64
	LastCycle  uint64
}

// Summarize aggregates events.
func Summarize(events []Event) Summary {
	s := Summary{
		ByKind: make(map[string]int),
		BySrc:  make(map[int]int),
		ByGID:  make(map[int]int),
	}
	s.Total = len(events)
	if s.Total == 0 {
		return s
	}
	s.FirstCycle = events[0].Cycle
	s.LastCycle = events[len(events)-1].Cycle
	for _, e := range events {
		s.ByKind[e.Kind]++
		s.BySrc[e.Src]++
		s.ByGID[e.GID]++
		if e.C2C {
			s.C2C++
		}
	}
	if s.Total > 1 {
		s.MeanGap = float64(s.LastCycle-s.FirstCycle) / float64(s.Total-1)
	}
	return s
}

// HotLine is one entry of the per-address contention ranking.
type HotLine struct {
	Addr       uint64
	Accesses   int
	C2C        int
	Requesters int // distinct requesting processors
}

// HotLines ranks line addresses by access count (top n) — the false-/true-
// sharing hot spots of a workload.
func HotLines(events []Event, n int) []HotLine {
	type acc struct {
		count, c2c int
		reqs       map[int]bool
	}
	byAddr := make(map[uint64]*acc)
	for _, e := range events {
		if e.Kind == "BusAuth" || e.Kind == "BusPadInv" || e.Kind == "BusPadReq" || e.Kind == "BusPadUpd" {
			continue
		}
		a, ok := byAddr[e.Addr]
		if !ok {
			a = &acc{reqs: make(map[int]bool)}
			byAddr[e.Addr] = a
		}
		a.count++
		if e.C2C {
			a.c2c++
		}
		a.reqs[e.Src] = true
	}
	out := make([]HotLine, 0, len(byAddr))
	for addr, a := range byAddr {
		out = append(out, HotLine{Addr: addr, Accesses: a.count, C2C: a.c2c, Requesters: len(a.reqs)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Accesses != out[j].Accesses {
			return out[i].Accesses > out[j].Accesses
		}
		return out[i].Addr < out[j].Addr
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// GapHistogram buckets inter-transaction gaps into powers of two (cycles):
// bucket i counts gaps in [2^i, 2^(i+1)). Useful for judging bus burstiness
// (what the adaptive authentication controller keys on).
func GapHistogram(events []Event) map[int]int {
	h := make(map[int]int)
	for i := 1; i < len(events); i++ {
		gap := events[i].Cycle - events[i-1].Cycle
		bucket := 0
		for g := gap; g > 1; g >>= 1 {
			bucket++
		}
		h[bucket]++
	}
	return h
}

// Format renders the summary as text.
func (s Summary) Format(w io.Writer) {
	fmt.Fprintf(w, "transactions: %d (%d cache-to-cache) over cycles %d..%d, mean gap %.1f\n",
		s.Total, s.C2C, s.FirstCycle, s.LastCycle, s.MeanGap)
	kinds := make([]string, 0, len(s.ByKind))
	for k := range s.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(w, "  %-10s %6d\n", k, s.ByKind[k])
	}
	srcs := make([]int, 0, len(s.BySrc))
	for src := range s.BySrc {
		srcs = append(srcs, src)
	}
	sort.Ints(srcs)
	for _, src := range srcs {
		fmt.Fprintf(w, "  cpu%-2d      %6d\n", src, s.BySrc[src])
	}
}
