package trace

import (
	"bytes"
	"strings"
	"testing"

	"senss/internal/bus"
)

func sample() []Event {
	return []Event{
		{Cycle: 100, Kind: "BusRd", Addr: 0x40, Src: 0, GID: 1, Supplier: -1},
		{Cycle: 220, Kind: "BusRd", Addr: 0x80, Src: 1, GID: 1, Supplier: 0, C2C: true},
		{Cycle: 400, Kind: "BusUpgr", Addr: 0x40, Src: 2, GID: 1},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	r := &Recorder{Events: sample()}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("round trip lost events: %d", len(got))
	}
	for i := range got {
		if got[i] != r.Events[i] {
			t.Errorf("event %d: %+v != %+v", i, got[i], r.Events[i])
		}
	}
}

func TestRecorderObservesTransactions(t *testing.T) {
	r := NewRecorder(0)
	txn := &bus.Transaction{Kind: bus.Rd, Addr: 0x1000, Src: 2, GID: 5}
	txn.SupplierID = 1
	if cost := r.OnTransaction(nil, txn); cost != 0 {
		t.Errorf("recorder charged %d cycles", cost)
	}
	if len(r.Events) != 1 {
		t.Fatal("event not recorded")
	}
	e := r.Events[0]
	if e.Kind != "BusRd" || e.Src != 2 || e.GID != 5 || !e.C2C {
		t.Errorf("event = %+v", e)
	}
}

func TestRecorderLimit(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.OnTransaction(nil, &bus.Transaction{Kind: bus.WB, SupplierID: -1})
	}
	if len(r.Events) != 2 || r.Dropped != 3 {
		t.Errorf("kept %d, dropped %d", len(r.Events), r.Dropped)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(sample())
	if s.Total != 3 || s.C2C != 1 {
		t.Errorf("summary %+v", s)
	}
	if s.ByKind["BusRd"] != 2 || s.ByKind["BusUpgr"] != 1 {
		t.Errorf("kinds %v", s.ByKind)
	}
	if s.MeanGap != 150 { // (400-100)/2
		t.Errorf("mean gap %v", s.MeanGap)
	}
	if s.BySrc[0] != 1 || s.BySrc[1] != 1 || s.BySrc[2] != 1 {
		t.Errorf("sources %v", s.BySrc)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Total != 0 || s.MeanGap != 0 {
		t.Errorf("empty summary %+v", s)
	}
}

func TestHotLines(t *testing.T) {
	events := []Event{
		{Cycle: 1, Kind: "BusRd", Addr: 0x100, Src: 0, C2C: true},
		{Cycle: 2, Kind: "BusRdX", Addr: 0x100, Src: 1, C2C: true},
		{Cycle: 3, Kind: "BusRd", Addr: 0x100, Src: 0},
		{Cycle: 4, Kind: "BusRd", Addr: 0x200, Src: 2},
		{Cycle: 5, Kind: "BusAuth", Addr: 0x100, Src: 3}, // excluded
	}
	hot := HotLines(events, 10)
	if len(hot) != 2 {
		t.Fatalf("hot lines = %d", len(hot))
	}
	if hot[0].Addr != 0x100 || hot[0].Accesses != 3 || hot[0].C2C != 2 || hot[0].Requesters != 2 {
		t.Errorf("top line = %+v", hot[0])
	}
	if hot[1].Addr != 0x200 {
		t.Errorf("second line = %+v", hot[1])
	}
	if got := HotLines(events, 1); len(got) != 1 {
		t.Errorf("top-1 returned %d", len(got))
	}
}

func TestGapHistogram(t *testing.T) {
	events := []Event{
		{Cycle: 0}, {Cycle: 1}, {Cycle: 3}, {Cycle: 11}, {Cycle: 139},
	}
	h := GapHistogram(events)
	// gaps: 1 (bucket 0), 2 (bucket 1), 8 (bucket 3), 128 (bucket 7)
	for bucket, want := range map[int]int{0: 1, 1: 1, 3: 1, 7: 1} {
		if h[bucket] != want {
			t.Errorf("bucket %d = %d, want %d (hist %v)", bucket, h[bucket], want, h)
		}
	}
}

func TestFormat(t *testing.T) {
	var buf bytes.Buffer
	Summarize(sample()).Format(&buf)
	out := buf.String()
	for _, want := range []string{"transactions: 3", "BusRd", "BusUpgr", "cpu0"} {
		if !strings.Contains(out, want) {
			t.Errorf("format output missing %q:\n%s", want, out)
		}
	}
}
