package core

import (
	"fmt"

	"senss/internal/crypto"
	"senss/internal/crypto/aes"
	"senss/internal/crypto/cbcmac"
	"senss/internal/crypto/ct"
	"senss/internal/crypto/rsa"
	"senss/internal/rng"
)

// Program dispatch (paper §4.1, Figure 1): the distributor encrypts the
// program under a symmetric session key K, wraps K under every group
// member's public key, and ships the bundle. On arrival each member's SHU
// unwraps K with its sealed private key; the lowest-PID member then
// broadcasts freshly drawn initial vectors, encrypted and authenticated
// under K, so all members start their mask and MAC chains synchronized.

// ProcessorKeys is a processor's sealed key pair: the public half is known
// to distributors, the private half never leaves the SHU.
type ProcessorKeys struct {
	Public  *rsa.PublicKey
	private *rsa.PrivateKey
}

// GenerateProcessorKeys mints the key pair burned into processor pid,
// deterministically from the random stream.
func GenerateProcessorKeys(random *rng.Rand, bits int) (*ProcessorKeys, error) {
	priv, err := rsa.GenerateKey(random, bits)
	if err != nil {
		return nil, err
	}
	return &ProcessorKeys{Public: &priv.PublicKey, private: priv}, nil
}

// Package is the distributable bundle: the encrypted program image plus
// the session key wrapped for each member processor.
type Package struct {
	Members     uint32
	Image       []byte         // program bytes encrypted under K (CBC)
	ImageIV     aes.Block      // CBC IV for the image
	ImageMAC    aes.Block      // CBC-MAC over the encrypted image
	WrappedKeys map[int][]byte // PID → RSA-wrapped session key
}

// Distributor prepares program packages for a target machine whose
// processors' public keys it knows.
type Distributor struct {
	random *rng.Rand
	pubs   map[int]*rsa.PublicKey
}

// NewDistributor creates a distributor drawing randomness from seed.
func NewDistributor(seed uint64) *Distributor {
	return &Distributor{random: rng.New(seed), pubs: make(map[int]*rsa.PublicKey)}
}

// RegisterProcessor records processor pid's public key.
func (d *Distributor) RegisterProcessor(pid int, pub *rsa.PublicKey) {
	d.pubs[pid] = pub
}

// Dispatch encrypts image under a fresh session key and wraps the key for
// every member in members. The session key is returned only for test
// introspection; a real distributor would discard it.
func (d *Distributor) Dispatch(image []byte, members uint32) (*Package, aes.Block, error) {
	key := aes.Block(d.random.Block16())
	iv := aes.Block(d.random.Block16())
	cipher := crypto.MustBackend(crypto.Ref, key)

	enc := cbcEncrypt(cipher, iv, image)
	pkg := &Package{
		Members:     members,
		Image:       enc,
		ImageIV:     iv,
		ImageMAC:    cbcmac.Sum(cipher, iv.XOR(aes.BlockFromUint64(^uint64(0), 0)), enc),
		WrappedKeys: make(map[int][]byte),
	}
	for _, pid := range MemberList(members) {
		pub, ok := d.pubs[pid]
		if !ok {
			return nil, aes.Block{}, fmt.Errorf("core: no public key registered for processor %d", pid)
		}
		wrapped, err := rsa.EncryptKey(d.random, pub, key[:])
		if err != nil {
			return nil, aes.Block{}, err
		}
		pkg.WrappedKeys[pid] = wrapped
	}
	return pkg, key, nil
}

// Unwrap recovers the session key for processor pid using its sealed
// private key, verifying the image MAC.
func (pkg *Package) Unwrap(pid int, keys *ProcessorKeys) (aes.Block, error) {
	wrapped, ok := pkg.WrappedKeys[pid]
	if !ok {
		return aes.Block{}, fmt.Errorf("core: processor %d is not a member of this package", pid)
	}
	raw, err := rsa.DecryptKey(keys.private, wrapped)
	// The RSA plaintext is the session key itself; it must not outlive
	// this frame on any path, including the error returns below.
	defer ct.Zero(raw)
	if err != nil {
		return aes.Block{}, fmt.Errorf("core: unwrapping session key: %w", err)
	}
	if len(raw) != aes.KeySize {
		return aes.Block{}, fmt.Errorf("core: unwrapped key has %d bytes", len(raw))
	}
	var key aes.Block
	copy(key[:], raw)
	cipher := crypto.MustBackend(crypto.Ref, key)
	mac := cbcmac.Sum(cipher, pkg.ImageIV.XOR(aes.BlockFromUint64(^uint64(0), 0)), pkg.Image)
	if !ct.Equal(mac[:], pkg.ImageMAC[:]) {
		return aes.Block{}, fmt.Errorf("core: program image failed authentication")
	}
	return key, nil
}

// DecryptImage recovers the plaintext program bytes.
func (pkg *Package) DecryptImage(key aes.Block) []byte {
	return cbcDecrypt(crypto.MustBackend(crypto.Ref, key), pkg.ImageIV, pkg.Image)
}

// Dispatcher performs the full arrival-side handshake on a System: every
// member unwraps the key, and the lowest-PID member draws and "broadcasts"
// the initial vectors (modeled as a trusted exchange under K, since the
// bus chains are not yet established).
type Dispatcher struct {
	random *rng.Rand
}

// NewDispatcher creates the arrival-side handshake driver.
func NewDispatcher(seed uint64) *Dispatcher {
	return &Dispatcher{random: rng.New(seed)}
}

// Install runs the handshake: unwrap on every member (verifying each
// recovers the same key), then establish the group on the system with
// fresh, distinct IVs. Returns the GID allocated from table.
func (disp *Dispatcher) Install(sys *System, table *GroupTable, pkg *Package, keys map[int]*ProcessorKeys) (int, error) {
	var sessionKey aes.Block
	first := true
	for _, pid := range MemberList(pkg.Members) {
		pk, ok := keys[pid]
		if !ok {
			return 0, fmt.Errorf("core: no processor keys for member %d", pid)
		}
		k, err := pkg.Unwrap(pid, pk)
		if err != nil {
			return 0, err
		}
		if first {
			sessionKey, first = k, false
		} else if !ct.Equal(k[:], sessionKey[:]) {
			return 0, fmt.Errorf("core: member %d unwrapped a different session key", pid)
		}
	}
	gid, err := table.Allocate(pkg.Members)
	if err != nil {
		return 0, err
	}
	encIV := aes.Block(disp.random.Block16())
	authIV := aes.Block(disp.random.Block16())
	for encIV == authIV {
		authIV = aes.Block(disp.random.Block16())
	}
	if err := sys.Establish(gid, sessionKey, pkg.Members, encIV, authIV); err != nil {
		table.Release(gid)
		return 0, err
	}
	return gid, nil
}

// cbcEncrypt encrypts msg (zero-padded to a block multiple) in CBC mode.
func cbcEncrypt(cipher crypto.BlockCipher, iv aes.Block, msg []byte) []byte {
	n := (len(msg) + aes.BlockSize - 1) / aes.BlockSize
	out := make([]byte, n*aes.BlockSize)
	prev := iv
	for i := 0; i < n; i++ {
		var b aes.Block
		copy(b[:], msg[i*aes.BlockSize:])
		prev = cipher.Encrypt(b.XOR(prev))
		copy(out[i*aes.BlockSize:], prev[:])
	}
	return out
}

// cbcDecrypt reverses cbcEncrypt (padding retained).
func cbcDecrypt(cipher crypto.BlockCipher, iv aes.Block, ct []byte) []byte {
	out := make([]byte, len(ct))
	prev := iv
	for i := 0; i+aes.BlockSize <= len(ct); i += aes.BlockSize {
		var b aes.Block
		copy(b[:], ct[i:])
		p := cipher.Decrypt(b).XOR(prev)
		copy(out[i:], p[:])
		prev = b
	}
	return out
}
