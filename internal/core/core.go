// Package core implements SENSS — the paper's security enhancement for
// snooping-bus SMPs.
//
// Every processor carries a Security Hardware Unit (SHU) holding a
// group-processor bit matrix and a group information table (occupied bit,
// session key, mask banks, authentication counter).  Cache-to-cache bus
// transfers are encrypted with a one-time-pad whose pads ("masks") are
// refreshed in the background through AES chained over the ciphertext
// history (Table 1 / Figure 2 of the paper), and authenticated with a
// chained CBC-MAC over (data ⊕ originator-PID) blocks (Eq. 1), checked
// every AuthInterval transfers by a round-robin initiator broadcasting its
// MAC on the bus.
//
// The package is used two ways: standalone (unit tests, attack analysis)
// via SHU/Group methods, and wired into the simulated machine as a
// bus.SecurityHook via System.
package core

import (
	"fmt"

	"senss/internal/crypto"
	"senss/internal/crypto/aes"
	"senss/internal/crypto/cbcmac"
	"senss/internal/crypto/gf128"
)

// Architectural limits from the paper (§5, §7.1).
const (
	MaxProcs  = 32
	MaxGroups = 1024
)

// BlocksPerLine is how many AES blocks one bus data transfer carries
// (64-byte line / 16-byte block).
const BlocksPerLine = 4

// pidBlock folds an originator PID and a block index into an AES block —
// the "PID input" of Figure 2 that defeats Type 3 (spoofing) attacks.
//
//senss-lint:hotpath
func pidBlock(pid int, j int) aes.Block {
	return aes.BlockFromUint64(uint64(pid), uint64(j))
}

// AuthMode selects the bus encryption/authentication construction.
type AuthMode int

// Authentication modes.
const (
	// AuthCBC is the paper's primary design: masks chained through
	// AES over the ciphertext history, MAC per Eq. (1) with a distinct IV.
	AuthCBC AuthMode = iota
	// AuthGF is the §4.3 "Implications" extension modeled after GCM:
	// counter-mode masks (precomputable, so senders never stall on mask
	// availability) with a GF(2^128) GHASH authentication chain —
	// encryption and MAC from a single AES invocation per block.
	AuthGF
)

// String names the mode.
func (m AuthMode) String() string {
	if m == AuthGF {
		return "gf"
	}
	return "cbc"
}

// Params configures the SENSS algorithms.
type Params struct {
	// AuthMode selects the CBC (paper's primary) or GCM-style (extension)
	// construction.
	AuthMode AuthMode
	// Masks is the number of mask banks k (paper §4.4: one for
	// unidirectional traffic, a pair for bidirectional, up to
	// AES-latency/bus-cycle = 8 for peak rates).
	Masks int
	// Perfect disables mask-availability stalls, modeling an unbounded
	// mask supply (the "Perfect" series of Figure 7).
	Perfect bool
	// AuthInterval is the number of cache-to-cache transfers between
	// authentication broadcasts; 1 authenticates every transfer, 0
	// disables authentication.
	AuthInterval int
	// MACTagBytes is the m-byte prefix of the chained MAC broadcast at
	// authentication points.
	MACTagBytes int
	// AESLatency is the modeled AES core latency in CPU cycles.
	AESLatency uint64
	// BusOverhead is the per-message datapath cost: 1 cycle for the
	// sender's XOR plus 2 on each receiver (GID lookup + XOR), per §7.1.
	BusOverhead uint64

	// Backend names the crypto.BlockCipher backend every session cipher is
	// constructed from ("ref", "stdlib"; empty selects crypto.Default).
	// Purely a host-software choice: the SHU's AES core is charged in
	// modeled cycles via AESLatency, so mask schedules, MACs, and cycle
	// counts are identical across backends.
	Backend string

	// Adaptive, when enabled, lets the system adjust the authentication
	// interval with bus load (§4.3: "the sequence length can be adjusted
	// by the system" — under heavy traffic per-transfer checking is
	// unaffordable; under light traffic it is nearly free). Every
	// AdaptWindow transfers the mean inter-transfer gap is compared
	// against the busy/idle thresholds and the interval doubles or halves
	// within [MinInterval, MaxInterval]. The chained MAC still covers
	// every transfer regardless of the interval in force.
	Adaptive      bool
	MinInterval   int
	MaxInterval   int
	AdaptWindow   int
	BusyGapCycles uint64 // mean gap below this = heavy load → longer interval
	IdleGapCycles uint64 // mean gap above this = light load → shorter interval
}

// DefaultParams returns the paper's highest-security configuration.
func DefaultParams() Params {
	return Params{
		Masks:        8,
		Perfect:      false,
		AuthInterval: 100,
		MACTagBytes:  16,
		AESLatency:   80,
		BusOverhead:  3,
	}
}

// sanitize fills in unset fields.
func (p Params) sanitize() Params {
	if p.Masks <= 0 {
		p.Masks = 1
	}
	if p.MACTagBytes <= 0 || p.MACTagBytes > aes.BlockSize {
		p.MACTagBytes = aes.BlockSize
	}
	if p.Adaptive {
		if p.MinInterval <= 0 {
			p.MinInterval = 1
		}
		if p.MaxInterval < p.MinInterval {
			p.MaxInterval = 128
		}
		if p.AdaptWindow <= 0 {
			p.AdaptWindow = 32
		}
		if p.BusyGapCycles == 0 {
			p.BusyGapCycles = 200
		}
		if p.IdleGapCycles <= p.BusyGapCycles {
			p.IdleGapCycles = 4 * p.BusyGapCycles
		}
		if p.AuthInterval < p.MinInterval {
			p.AuthInterval = p.MinInterval
		}
		if p.AuthInterval > p.MaxInterval {
			p.AuthInterval = p.MaxInterval
		}
	}
	return p
}

// session is one group's entry in a processor's group information table.
type session struct {
	gid    int
	cipher crypto.BlockCipher
	//senss-lint:secret
	banks   [][]aes.Block // [k][BlocksPerLine] mask material
	seq     uint64        // this member's view of the group message count
	mac     *cbcmac.MAC
	alarmed bool

	// reusePads is the planted one-time-pad-reuse fault: when set,
	// advance skips the bank refresh so the same pad material encrypts
	// every k-th transfer. Test-only, via SHU.InjectMaskReuse.
	reusePads bool

	// AuthGF mode state: the GHASH accumulator, the counter-mode base
	// (derived from the encryption IV), and the running mask counter.
	ghash *gf128.GHASH
	//senss-lint:secret
	ctrBase aes.Block
	ctr     uint64
}

// SHU is one processor's security hardware unit.
type SHU struct {
	PID    int
	params Params

	// matrix is the group-processor bit matrix (§5.1): row gid holds the
	// member bitmask, all-zero for groups this processor is not in.
	matrix [MaxGroups]uint32

	// sessions is the group information table, indexed directly by GID —
	// a flat array like the hardware's, so the per-transfer lookups on the
	// bus datapath are one bounds check and one load instead of map probes.
	sessions [MaxGroups]*session
}

// NewSHU creates the SHU for processor pid.
func NewSHU(pid int, params Params) *SHU {
	if pid < 0 || pid >= MaxProcs {
		panic(fmt.Sprintf("core: PID %d out of range", pid))
	}
	return &SHU{PID: pid, params: params.sanitize()}
}

// session returns gid's table entry, nil when out of range or unoccupied.
//
//senss-lint:hotpath
func (s *SHU) session(gid int) *session {
	if gid < 0 || gid >= MaxGroups {
		return nil
	}
	return s.sessions[gid]
}

// Join installs a group session: the symmetric key, the member set, and
// the two initial vectors (encryption mask IV and authentication IV, which
// must differ — §4.3, Type 2 defense). Every member must call Join with
// identical arguments (the dispatcher arranges this).
func (s *SHU) Join(gid int, key aes.Block, members uint32, encIV, authIV aes.Block) error {
	if gid < 0 || gid >= MaxGroups {
		return fmt.Errorf("core: GID %d out of range", gid)
	}
	if members&(1<<uint(s.PID)) == 0 {
		return fmt.Errorf("core: processor %d not in member set %#x", s.PID, members)
	}
	if encIV == authIV {
		return fmt.Errorf("core: encryption and authentication IVs must differ")
	}
	cipher, err := crypto.NewBackend(s.params.Backend, key)
	if err != nil {
		return err
	}
	ss := &session{
		gid:    gid,
		cipher: cipher,
		mac:    cbcmac.New(cipher, authIV),
	}
	k := s.params.Masks
	ss.banks = make([][]aes.Block, k)
	if s.params.AuthMode == AuthGF {
		// Counter-mode masks from the encryption IV; GHASH subkey from
		// the authentication IV so the two chains stay independent.
		ss.ctrBase = encIV
		for i := range ss.banks {
			ss.banks[i] = make([]aes.Block, BlocksPerLine)
			for j := range ss.banks[i] {
				ss.banks[i][j] = cipher.Encrypt(ss.ctrBase.XOR(aes.BlockFromUint64(0, ss.ctr)))
				ss.ctr++
			}
		}
		h := cipher.Encrypt(authIV)
		ss.ghash = gf128.NewGHASH([16]byte(h))
	} else {
		for i := range ss.banks {
			ss.banks[i] = make([]aes.Block, BlocksPerLine)
			for j := range ss.banks[i] {
				// Derive the initial mask material from the encryption IV
				// so every invocation of a program yields fresh mask traces.
				ss.banks[i][j] = cipher.Encrypt(encIV.XOR(aes.BlockFromUint64(uint64(i), uint64(j))))
			}
		}
	}
	s.matrix[gid] = members
	s.sessions[gid] = ss
	return nil
}

// zeroize overwrites every piece of key-derived material the session
// holds — mask banks, counter base, chain states, and the expanded key
// schedule — before the session becomes unreachable. Deleting the map
// entry alone would leave the secrets legible in freed memory (paper
// §5.2: session state must not outlive the group).
func (ss *session) zeroize() {
	for _, bank := range ss.banks {
		for j := range bank {
			bank[j] = aes.Block{}
		}
	}
	ss.banks = nil
	ss.ctrBase = aes.Block{}
	ss.ctr = 0
	ss.seq = 0
	if ss.mac != nil {
		ss.mac.Zeroize()
	}
	if ss.ghash != nil {
		ss.ghash.Zeroize()
	}
	if ss.cipher != nil {
		ss.cipher.Zeroize()
		ss.cipher = nil
	}
}

// Leave clears a group session (program exit; GID reclaimed by the table),
// zeroizing the session key schedule, mask banks, and chain state first.
func (s *SHU) Leave(gid int) {
	ss := s.session(gid)
	if ss == nil {
		return
	}
	ss.zeroize()
	s.matrix[gid] = 0
	s.sessions[gid] = nil
}

// InjectMaskReuse freezes gid's mask-bank refresh on this SHU — the
// deliberately planted crypto bug used to validate the differential
// oracle. When every member carries the fault the system remains
// self-consistent (identical stale banks everywhere, so decryption and
// the MAC chains keep agreeing); the bug is visible only to an
// independent reference pad schedule. Test-only.
func (s *SHU) InjectMaskReuse(gid int) {
	if ss := s.session(gid); ss != nil {
		ss.reusePads = true
	}
}

// InGroup consults the bit matrix: does this SHU maintain gid, and is
// proc a member?
func (s *SHU) InGroup(gid, proc int) bool {
	return s.matrix[gid]&(1<<uint(proc)) != 0
}

// Members returns the member bitmask for gid (zero if not maintained).
func (s *SHU) Members(gid int) uint32 { return s.matrix[gid] }

// Alarmed reports whether this SHU raised a self-snoop alarm on gid.
func (s *SHU) Alarmed(gid int) bool {
	ss := s.session(gid)
	return ss != nil && ss.alarmed
}

// Seq returns this member's message count for gid.
func (s *SHU) Seq(gid int) uint64 {
	ss := s.session(gid)
	if ss == nil {
		return 0
	}
	return ss.seq
}

// Encrypt produces the on-the-wire ciphertext for a line this processor is
// about to supply on the bus, and advances the local chains (the sender is
// also an observer of its own message). plain must be BlocksPerLine blocks.
func (s *SHU) Encrypt(gid int, plain []aes.Block) ([]aes.Block, error) {
	cipher := make([]aes.Block, len(plain))
	if err := s.EncryptInto(gid, plain, cipher); err != nil {
		return nil, err
	}
	return cipher, nil
}

// EncryptInto is Encrypt writing the ciphertext into a caller-owned buffer
// (len(cipher) == len(plain)) — the bus datapath's allocation-free form.
//
//senss-lint:hotpath
func (s *SHU) EncryptInto(gid int, plain, cipher []aes.Block) error {
	ss := s.session(gid)
	if ss == nil {
		//senss-lint:ignore hotpath failure path: misconfigured group, run is about to halt
		return fmt.Errorf("core: processor %d has no session for GID %d", s.PID, gid)
	}
	bank := ss.banks[ss.seq%uint64(len(ss.banks))]
	for j := range plain {
		cipher[j] = plain[j].XOR(bank[j]) // the 1-cycle OTP step
	}
	s.advance(ss, cipher, s.PID)
	return nil
}

// Observe processes a snooped group message: decrypt with the local mask
// bank, fold into the MAC chain, and refresh the bank from the observed
// ciphertext. It returns the recovered plaintext. A message claiming this
// processor's own PID trips the self-snoop alarm (Type 3 defense).
func (s *SHU) Observe(gid int, cipher []aes.Block, senderPID int) ([]aes.Block, error) {
	plain := make([]aes.Block, len(cipher))
	if err := s.ObserveInto(gid, cipher, senderPID, plain); err != nil {
		return nil, err
	}
	return plain, nil
}

// ObserveInto is Observe writing the recovered plaintext into a caller-owned
// buffer (len(plain) == len(cipher)) — the bus datapath's allocation-free
// form.
//
//senss-lint:hotpath
func (s *SHU) ObserveInto(gid int, cipher []aes.Block, senderPID int, plain []aes.Block) error {
	ss := s.session(gid)
	if ss == nil {
		//senss-lint:ignore hotpath failure path: misconfigured group, run is about to halt
		return fmt.Errorf("core: processor %d has no session for GID %d", s.PID, gid)
	}
	if senderPID == s.PID {
		ss.alarmed = true
		//senss-lint:ignore hotpath failure path: spoofing alarm, run is about to halt
		return fmt.Errorf("core: processor %d snooped a message claiming its own PID (spoofing)", s.PID)
	}
	bank := ss.banks[ss.seq%uint64(len(ss.banks))]
	for j := range cipher {
		plain[j] = cipher[j].XOR(bank[j])
	}
	s.advance(ss, cipher, senderPID)
	return nil
}

// advance refreshes the active mask bank and extends the authentication
// chain with (plaintext ⊕ PID) blocks.
//
// In AuthCBC mode (the paper's design) the next masks are chained through
// AES over the ciphertext and originator, and the MAC is the Eq. (1)
// CBC chain. In AuthGF mode masks come from a counter (independent of the
// traffic, hence precomputable) and the chain is a GHASH accumulator.
//
//senss-lint:hotpath
func (s *SHU) advance(ss *session, cipher []aes.Block, senderPID int) {
	bank := ss.banks[ss.seq%uint64(len(ss.banks))]
	for j := range cipher {
		plain := cipher[j].XOR(bank[j])
		in := plain.XOR(pidBlock(senderPID, j))
		if s.params.AuthMode == AuthGF {
			ss.ghash.Update([16]byte(in))
			if !ss.reusePads {
				bank[j] = ss.cipher.Encrypt(ss.ctrBase.XOR(aes.BlockFromUint64(0, ss.ctr)))
				ss.ctr++
			}
		} else {
			ss.mac.Update(in)
			if !ss.reusePads {
				bank[j] = ss.cipher.Encrypt(cipher[j].XOR(pidBlock(senderPID, j)))
			}
		}
	}
	ss.seq++
}

// MACTag returns the current m-byte authentication tag for gid.
func (s *SHU) MACTag(gid int) ([]byte, error) {
	sum, err := s.MACSum(gid)
	if err != nil {
		return nil, err
	}
	out := make([]byte, s.params.MACTagBytes)
	copy(out, sum[:])
	return out, nil
}

// MACSum returns the full-width chain value (tests, diagnostics).
func (s *SHU) MACSum(gid int) (aes.Block, error) {
	ss := s.session(gid)
	if ss == nil {
		return aes.Block{}, fmt.Errorf("core: no session for GID %d", gid)
	}
	if s.params.AuthMode == AuthGF {
		return aes.Block(ss.ghash.Sum()), nil
	}
	return ss.mac.Sum(), nil
}

// LineToBlocks splits a 64-byte line into BlocksPerLine AES blocks.
func LineToBlocks(line []byte) []aes.Block {
	out := make([]aes.Block, BlocksPerLine)
	LineToBlocksInto(line, out)
	return out
}

// LineToBlocksInto splits a 64-byte line into a caller-owned block buffer —
// the bus datapath's allocation-free form.
//
//senss-lint:hotpath
func LineToBlocksInto(line []byte, out []aes.Block) {
	if len(line) != BlocksPerLine*aes.BlockSize || len(out) != BlocksPerLine {
		panic(fmt.Sprintf("core: line of %d bytes into %d blocks", len(line), len(out)))
	}
	for j := range out {
		copy(out[j][:], line[j*aes.BlockSize:])
	}
}

// BlocksToLine reassembles AES blocks into a 64-byte line buffer.
func BlocksToLine(blocks []aes.Block, dst []byte) {
	if len(dst) != len(blocks)*aes.BlockSize {
		panic(fmt.Sprintf("core: dst of %d bytes for %d blocks", len(dst), len(blocks)))
	}
	for j, b := range blocks {
		copy(dst[j*aes.BlockSize:], b[:])
	}
}
