package core

import (
	"fmt"

	"senss/internal/bus"
	"senss/internal/crypto/aes"
	"senss/internal/crypto/ct"
	"senss/internal/sim"
)

// Observed is one message as seen by one receiver — the unit the attack
// interposer manipulates.
type Observed struct {
	Cipher []aes.Block
	Sender int // claimed originator PID
}

// Tamperer is the physical bus adversary: for each broadcast it may
// reshape what every receiver observes (drop, corrupt, re-order via
// buffering, spoof the PID). Returning nil means a clean broadcast.
// The map gives, per receiver PID, the ordered list of messages that
// receiver observes in place of the original; receivers absent from the
// map observe the original message.
type Tamperer interface {
	Tamper(seq uint64, sender int, cipher []aes.Block) map[int][]Observed
}

// Observer receives the protocol-level truth of the SENSS layer as it
// happens: session establishment parameters, every transfer's pre-tamper
// plaintext and on-the-wire ciphertext, and every authentication tag. The
// differential oracle implements it to run an untimed reference model in
// lockstep with the timed datapath. Observers must not mutate their
// arguments and must charge no simulated time.
type Observer interface {
	// OnEstablish fires once per Establish, before any transfer.
	OnEstablish(gid int, key aes.Block, members uint32, encIV, authIV aes.Block)
	// OnTransfer fires once per cache-to-cache transfer with the sender's
	// sequence number, the plaintext the sender encrypted, and the
	// ciphertext as it left the sender (before any interposer tampering).
	OnTransfer(gid, sender int, seq uint64, plain, wire []aes.Block)
	// OnAuth fires once per authentication broadcast with the initiator's
	// transmitted tag.
	OnAuth(gid, initiator int, tag []byte)
}

// SystemStats counts SENSS activity.
type SystemStats struct {
	Messages      uint64 // protected cache-to-cache transfers
	AuthMsgs      uint64 // authentication broadcasts
	MaskStalls    uint64 // cycles senders waited for mask banks
	Alarms        uint64
	IntervalUps   uint64 // adaptive interval doublings (load rose)
	IntervalDowns uint64 // adaptive interval halvings (load fell)
	Detections    []string
}

// groupTiming is the shared mask-availability schedule of a group: all
// members refresh banks in lockstep, so the sender-side schedule is global.
type groupTiming struct {
	availAt   []uint64 // per bank: cycle when next usable
	authCtr   int
	authRound int // round-robin authentication initiator index

	// Adaptive-interval state.
	interval   int    // interval currently in force
	lastMsgAt  uint64 // cycle of the previous c2c transfer
	gapSum     uint64
	windowMsgs int
}

// System wires the per-processor SHUs into the simulated bus as a
// bus.SecurityHook. It encrypts every cache-to-cache data transfer at the
// supplier, delivers the ciphertext through the (possibly adversarial)
// interposer to every group member, decrypts at the requester, and runs
// the periodic authentication protocol.
type System struct {
	params  Params
	engine  *sim.Engine
	bus     *bus.Bus
	shus    []*SHU
	timing  []*groupTiming // indexed by GID; nil = no group established
	tamper  Tamperer
	observe Observer
	halting bool // halt the engine on detection (true in the machine)

	// Broadcast scratch: one transfer's plaintext, on-the-wire ciphertext,
	// and per-receiver decryption, reused across transactions so the snoop
	// fan-out allocates nothing. Safe because OnTransaction runs to
	// completion under the bus lock before the next transfer, and the
	// observer contract forbids retaining the slices.
	plainBuf  [BlocksPerLine]aes.Block
	cipherBuf [BlocksPerLine]aes.Block
	gotBuf    [BlocksPerLine]aes.Block

	Stats SystemStats
}

// NewSystem creates the SENSS layer for nprocs processors and attaches it
// to b. halting controls whether a detection freezes the engine (the
// paper's global alarm) or is merely recorded (attack analysis runs).
func NewSystem(engine *sim.Engine, b *bus.Bus, nprocs int, params Params, halting bool) *System {
	s := &System{
		params:  params.sanitize(),
		engine:  engine,
		bus:     b,
		timing:  make([]*groupTiming, MaxGroups),
		halting: halting,
	}
	for pid := 0; pid < nprocs; pid++ {
		s.shus = append(s.shus, NewSHU(pid, s.params))
	}
	if b != nil {
		b.AttachHook(s)
	}
	return s
}

// SHU returns processor pid's security hardware unit.
func (s *System) SHU(pid int) *SHU { return s.shus[pid] }

// SetTamperer installs (or clears) the bus adversary.
func (s *System) SetTamperer(t Tamperer) { s.tamper = t }

// SetObserver installs (or clears) the lockstep observer. Install it
// before Establish so the observer sees the session parameters.
func (s *System) SetObserver(o Observer) { s.observe = o }

// InjectMaskReuse plants the deliberate crypto bug the differential
// oracle exists to catch: every member SHU of gid stops refreshing its
// mask banks, so the one-time pad repeats with period k·BlocksPerLine
// blocks. The system stays perfectly self-consistent — all members reuse
// the same stale banks, decryption still recovers the plaintext, and the
// MAC chains never disagree — which is exactly why internal agreement
// checks cannot see it and only an independent reference model can.
func (s *System) InjectMaskReuse(gid int) {
	for _, shu := range s.shus {
		shu.InjectMaskReuse(gid)
	}
}

// Establish installs a group session on every member SHU and initializes
// the group's mask-availability schedule. It is the low-level counterpart
// of the Dispatcher (which performs the full RSA key-wrap handshake).
func (s *System) Establish(gid int, key aes.Block, members uint32, encIV, authIV aes.Block) error {
	if gid < 0 || gid >= MaxGroups {
		return fmt.Errorf("core: GID %d outside group space [0,%d)", gid, MaxGroups)
	}
	for _, pid := range MemberList(members) {
		if pid >= len(s.shus) {
			return fmt.Errorf("core: member %d beyond system size %d", pid, len(s.shus))
		}
		if err := s.shus[pid].Join(gid, key, members, encIV, authIV); err != nil {
			return err
		}
	}
	s.timing[gid] = &groupTiming{
		availAt:  make([]uint64, s.params.Masks),
		interval: s.params.AuthInterval,
	}
	if s.observe != nil {
		s.observe.OnEstablish(gid, key, members, encIV, authIV)
	}
	return nil
}

// timingFor returns gid's mask-availability schedule, or nil when no such
// group has been established (or gid is outside the group space).
//
//senss-lint:hotpath
func (s *System) timingFor(gid int) *groupTiming {
	if gid < 0 || gid >= len(s.timing) {
		return nil
	}
	return s.timing[gid]
}

// CurrentInterval reports the authentication interval in force for gid
// (equals Params.AuthInterval unless adaptation moved it).
func (s *System) CurrentInterval(gid int) int {
	if gt := s.timingFor(gid); gt != nil {
		return gt.interval
	}
	return s.params.AuthInterval
}

// detect records an integrity violation and, in halting mode, freezes the
// machine (the paper's global alarm).
func (s *System) detect(reason string) {
	s.Stats.Alarms++
	s.Stats.Detections = append(s.Stats.Detections, reason)
	if s.halting && s.engine != nil {
		s.engine.Halt("senss: " + reason)
	}
}

// Detected reports whether any alarm fired.
func (s *System) Detected() bool { return s.Stats.Alarms > 0 }

// OnTransaction implements bus.SecurityHook: the SENSS datapath.
func (s *System) OnTransaction(p *sim.Proc, t *bus.Transaction) uint64 {
	extra := s.params.BusOverhead // +3 cycles on every tagged bus message
	if !t.CacheToCache() {
		return extra
	}
	gt := s.timingFor(t.GID)
	if gt == nil {
		return extra // untagged traffic (no group established)
	}
	sender := t.SupplierID

	// Mask-availability stall: the sender holds the bus until the bank for
	// this message sequence has been refreshed (§4.4). AuthGF masks come
	// from a counter, independent of the traffic, so they are precomputed
	// arbitrarily far ahead and never stall (the mode's selling point).
	if !s.params.Perfect && s.params.AuthMode == AuthCBC && p != nil {
		bank := int(s.shus[sender].Seq(t.GID) % uint64(s.params.Masks))
		if avail := gt.availAt[bank]; avail > p.Now() {
			stall := avail - p.Now()
			s.Stats.MaskStalls += stall
			extra += stall
		}
	}

	// One broadcast touches one reusable set of buffers: the line splits
	// into plainBuf, encrypts into cipherBuf, and every snooping member
	// decrypts the shared ciphertext into gotBuf in turn — no per-CPU
	// message construction.
	plain := s.plainBuf[:]
	LineToBlocksInto(t.Data, plain)
	cipher := s.cipherBuf[:]
	if err := s.shus[sender].EncryptInto(t.GID, plain, cipher); err != nil {
		s.detect(err.Error())
		return extra
	}
	s.Stats.Messages++
	if s.observe != nil {
		s.observe.OnTransfer(t.GID, sender, s.shus[sender].Seq(t.GID)-1, plain, cipher)
	}

	// Schedule this bank's refresh completion.
	if s.params.Masks > 0 && p != nil {
		bank := int((s.shus[sender].Seq(t.GID) - 1) % uint64(s.params.Masks))
		gt.availAt[bank] = p.Now() + extra + s.params.AESLatency
	}

	// Broadcast through the interposer to every member except the sender.
	var tampered map[int][]Observed
	if s.tamper != nil {
		// Interposers may buffer the wire image for later replay, so hand
		// them a private copy rather than the reused scratch (cold path:
		// attack runs only).
		wire := make([]aes.Block, len(cipher))
		copy(wire, cipher)
		tampered = s.tamper.Tamper(s.shus[sender].Seq(t.GID)-1, sender, wire)
	}
	members := s.shus[sender].Members(t.GID)
	for pid := 0; pid < len(s.shus); pid++ {
		if pid == sender || members&(1<<uint(pid)) == 0 {
			continue
		}
		if tampered != nil {
			if alt, ok := tampered[pid]; ok {
				// Attacked receiver: observe the interposer's substitute
				// message stream instead of the original.
				for _, o := range alt {
					got := s.gotBuf[:]
					if err := s.shus[pid].ObserveInto(t.GID, o.Cipher, o.Sender, got); err != nil {
						s.detect(err.Error())
						continue
					}
					if pid == t.Src {
						BlocksToLine(got, t.Data)
					}
				}
				continue
			}
		}
		got := s.gotBuf[:]
		if err := s.shus[pid].ObserveInto(t.GID, cipher, sender, got); err != nil {
			s.detect(err.Error())
			continue
		}
		if pid == t.Src {
			// The requester consumes its decrypted view — under attack
			// this is garbage, exactly as on a real tampered bus.
			BlocksToLine(got, t.Data)
		}
	}

	// Adaptive interval control (§4.3 extension): track the mean gap
	// between transfers and re-tune the interval per window.
	if s.params.Adaptive {
		s.adapt(gt, p)
	}

	// Authentication protocol (§4.3): after interval transfers, the
	// round-robin initiator broadcasts its MAC and all members compare.
	if gt.interval > 0 {
		gt.authCtr++
		if gt.authCtr >= gt.interval {
			gt.authCtr = 0
			extra += s.authenticate(t.GID, members, gt)
		}
	}
	return extra
}

// now returns the current cycle from the proc or the engine (protocol-
// level drives pass p == nil).
//
//senss-lint:ignore cycleacct read-only helper: observes the clock, charges nothing
func (s *System) now(p *sim.Proc) uint64 {
	if p != nil {
		return p.Now()
	}
	if s.engine != nil {
		return s.engine.Now()
	}
	return 0
}

// adapt implements the load-driven interval controller.
func (s *System) adapt(gt *groupTiming, p *sim.Proc) {
	now := s.now(p)
	if gt.lastMsgAt != 0 && now >= gt.lastMsgAt {
		gt.gapSum += now - gt.lastMsgAt
		gt.windowMsgs++
	}
	gt.lastMsgAt = now
	if gt.windowMsgs < s.params.AdaptWindow {
		return
	}
	mean := gt.gapSum / uint64(gt.windowMsgs)
	gt.gapSum, gt.windowMsgs = 0, 0
	switch {
	case mean < s.params.BusyGapCycles && gt.interval < s.params.MaxInterval:
		gt.interval *= 2
		if gt.interval > s.params.MaxInterval {
			gt.interval = s.params.MaxInterval
		}
		s.Stats.IntervalUps++
	case mean > s.params.IdleGapCycles && gt.interval > s.params.MinInterval:
		gt.interval /= 2
		if gt.interval < s.params.MinInterval {
			gt.interval = s.params.MinInterval
		}
		s.Stats.IntervalDowns++
	}
}

// authenticate runs one MAC broadcast, returning the bus cycles it adds.
func (s *System) authenticate(gid int, members uint32, gt *groupTiming) uint64 {
	list := MemberList(members)
	if len(list) == 0 {
		return 0
	}
	initiator := list[gt.authRound%len(list)]
	gt.authRound++
	s.Stats.AuthMsgs++

	var occ uint64
	if s.bus != nil {
		occ = s.bus.RecordInjected(bus.Auth)
	}
	ref, err := s.shus[initiator].MACTag(gid)
	if err != nil {
		s.detect(err.Error())
		return occ
	}
	if s.observe != nil {
		s.observe.OnAuth(gid, initiator, ref)
	}
	for _, pid := range list {
		if pid == initiator || pid >= len(s.shus) {
			continue
		}
		tag, err := s.shus[pid].MACTag(gid)
		if err != nil {
			s.detect(err.Error())
			continue
		}
		if !ct.Equal(ref, tag) {
			s.detect(fmt.Sprintf("bus authentication failure: processor %d disagrees with initiator %d on group %d",
				pid, initiator, gid))
			return occ
		}
	}
	return occ
}

// ForceAuthentication runs an immediate authentication round (used by
// tests and by the attack analyzer to bound detection latency).
func (s *System) ForceAuthentication(gid int) {
	gt := s.timingFor(gid)
	if gt == nil {
		return
	}
	var members uint32
	for _, shu := range s.shus {
		if m := shu.Members(gid); m != 0 {
			members = m
			break
		}
	}
	gt.authCtr = 0
	s.authenticate(gid, members, gt)
}
