package core

import (
	"testing"

	"senss/internal/crypto"
	"senss/internal/crypto/aes"
	"senss/internal/rng"
)

func naiveChannel(seed uint64) (*NaiveChannel, *rng.Rand) {
	r := rng.New(seed)
	return NewNaiveChannel(crypto.MustBackend(crypto.Ref, aes.Block(r.Block16()))), r
}

func naiveBlocks(r *rng.Rand) []aes.Block {
	return LineToBlocks(randomLine(r))
}

func TestNaiveRoundTrip(t *testing.T) {
	ch, r := naiveChannel(500)
	for seq := uint64(0); seq < 20; seq++ {
		plain := naiveBlocks(r)
		msg := ch.Send(seq, plain)
		got, err := ch.Receive(msg)
		if err != nil {
			t.Fatalf("seq %d: %v", seq, err)
		}
		for j := range plain {
			if got[j] != plain[j] {
				t.Fatalf("seq %d block %d corrupted", seq, j)
			}
		}
	}
}

func TestNaiveDetectsCorruption(t *testing.T) {
	ch, r := naiveChannel(501)
	msg := ch.Send(3, naiveBlocks(r))
	msg.Cipher[1][5] ^= 0x10
	if _, err := ch.Receive(msg); err == nil {
		t.Fatal("corrupted message passed the per-message MAC")
	}
}

// TestNaiveMissesDrop reproduces the paper's Type 1 argument against
// unchained authentication: a receiver that never saw message 5 still
// verifies messages 6, 7, ... perfectly — the drop is invisible.
func TestNaiveMissesDrop(t *testing.T) {
	ch, r := naiveChannel(502)
	for seq := uint64(0); seq < 10; seq++ {
		msg := ch.Send(seq, naiveBlocks(r))
		if seq == 5 {
			continue // dropped on the wire for this receiver
		}
		if _, err := ch.Receive(msg); err != nil {
			t.Fatalf("seq %d rejected after the drop: %v — the strawman should NOT notice", seq, err)
		}
	}
}

// TestNaiveMissesReplay reproduces the paper's Type 3 argument: an old
// message with its valid MAC re-verifies.
func TestNaiveMissesReplay(t *testing.T) {
	ch, r := naiveChannel(503)
	old := ch.Send(2, naiveBlocks(r))
	ch.Send(3, naiveBlocks(r))
	if _, err := ch.Receive(old); err != nil {
		t.Fatalf("replayed message rejected: %v — the strawman should accept it", err)
	}
}

// TestNaiveMissesReordering: self-contained messages verify in any order.
func TestNaiveMissesReordering(t *testing.T) {
	ch, r := naiveChannel(504)
	m1 := ch.Send(1, naiveBlocks(r))
	m2 := ch.Send(2, naiveBlocks(r))
	if _, err := ch.Receive(m2); err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Receive(m1); err != nil {
		t.Fatalf("out-of-order delivery rejected: %v — the strawman should accept it", err)
	}
}

// TestSENSSCatchesWhatNaiveMisses drives the same drop through the real
// SENSS chains side by side, as the §8 comparison table.
func TestSENSSCatchesWhatNaiveMisses(t *testing.T) {
	params := DefaultParams()
	params.AuthInterval = 8
	s, gid := newTestSystem(t, 4, params, 505)
	s.SetTamperer(&dropTamperer{dropSeq: 5, victims: []int{2}})
	r := rng.New(506)
	for i := 0; i < 20 && !s.Detected(); i++ {
		c2c(s, gid, 0, 1, randomLine(r))
	}
	if !s.Detected() {
		t.Fatal("SENSS missed the drop the naive scheme also misses")
	}
}
