package core

import (
	"encoding/binary"
	"fmt"

	"senss/internal/crypto"
	"senss/internal/crypto/aes"
	"senss/internal/crypto/cbcmac"
	"senss/internal/crypto/ct"
	"senss/internal/crypto/gf128"
)

// Group swap-out (paper §4.2, "Maintaining the mask"): when the OS swaps
// an application out, every SHU's session state — mask banks, chain
// positions, counters — must leave the chip encrypted and authenticated
// under the session key, and restore bit-exactly on swap-in, or the group
// chains would desynchronize. The OS handles the opaque blobs but can
// neither read nor forge them.

// contextMagic guards against restoring a blob into the wrong slot.
const contextMagic = 0x53454e5353574150 // "SENSSWAP"

// SavedContext is one SHU's encrypted, authenticated session context.
type SavedContext struct {
	PID        int
	GID        int
	Ciphertext []byte
	IV         aes.Block
	MAC        aes.Block
}

// Suspend serializes and encrypts the session state for gid, removing it
// from the SHU. The returned context is what the OS writes to (untrusted)
// memory.
func (s *SHU) Suspend(gid int, ivSeed uint64) (*SavedContext, error) {
	ss := s.session(gid)
	if ss == nil {
		return nil, fmt.Errorf("core: processor %d has no session for GID %d to suspend", s.PID, gid)
	}
	plain := s.serializeSession(ss)
	iv := ss.cipher.Encrypt(aes.BlockFromUint64(contextMagic, ivSeed))
	ct := cbcEncrypt(ss.cipher, iv, plain)
	mac := cbcmac.Sum(ss.cipher, iv.XOR(aes.BlockFromUint64(contextMagic, ^ivSeed)), ct)
	saved := &SavedContext{PID: s.PID, GID: gid, Ciphertext: ct, IV: iv, MAC: mac}

	// Only the encrypted blob leaves the chip; group membership stays in
	// the bit matrix so the SHU keeps filtering (and ignoring) bus traffic
	// for the suspended group correctly. The plaintext scratch and the
	// in-SHU session copy are zeroized — the blob is now the sole carrier
	// of the chain state.
	for i := range plain {
		plain[i] = 0
	}
	ss.zeroize()
	s.sessions[gid] = nil
	return saved, nil
}

// Resume decrypts, authenticates, and reinstalls a suspended context. The
// session key is re-derived from the program package (the SHU keeps it in
// the group info table across the swap in real hardware; here the caller
// supplies it, as the dispatcher would).
func (s *SHU) Resume(saved *SavedContext, key aes.Block) error {
	if saved.PID != s.PID {
		return fmt.Errorf("core: context for processor %d resumed on %d", saved.PID, s.PID)
	}
	cipher, err := crypto.NewBackend(s.params.Backend, key)
	if err != nil {
		return err
	}
	// Authenticate before use: a swapped blob in memory is attacker-reachable.
	mac := cbcmac.Sum(cipher, saved.IV.XOR(s.macBinder(cipher, saved.IV)), saved.Ciphertext)
	if !ct.Equal(mac[:], saved.MAC[:]) {
		return fmt.Errorf("core: suspended context for GID %d failed authentication", saved.GID)
	}
	plain := cbcDecrypt(cipher, saved.IV, saved.Ciphertext)
	ss, err := s.deserializeSession(plain, cipher)
	if err != nil {
		return err
	}
	if saved.GID < 0 || saved.GID >= MaxGroups {
		return fmt.Errorf("core: context GID %d outside group space", saved.GID)
	}
	ss.gid = saved.GID
	s.sessions[saved.GID] = ss
	return nil
}

// macBinder reconstructs the MAC IV binding used at Suspend time. The
// suspend IV is AES_K(magic ‖ seed); its decryption recovers the seed, so
// the binder is AES-free of stored secrets yet unforgeable without K.
func (s *SHU) macBinder(cipher crypto.BlockCipher, iv aes.Block) aes.Block {
	seedBlock := cipher.Decrypt(iv)
	_, seed := seedBlock.Uint64s()
	return aes.BlockFromUint64(contextMagic, ^seed)
}

// serializeSession flattens the mutable chain state.
func (s *SHU) serializeSession(ss *session) []byte {
	var out []byte
	u64 := func(v uint64) {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], v)
		out = append(out, b[:]...)
	}
	u64(uint64(s.params.AuthMode))
	u64(ss.seq)
	u64(ss.ctr)
	u64(uint64(len(ss.banks)))
	for _, bank := range ss.banks {
		for _, blk := range bank {
			out = append(out, blk[:]...)
		}
	}
	if s.params.AuthMode == AuthGF {
		sum := ss.ghash.Sum()
		sub := ss.ghash.Subkey()
		out = append(out, sum[:]...)
		out = append(out, ss.ctrBase[:]...)
		out = append(out, sub[:]...)
	} else {
		sum := ss.mac.Sum()
		out = append(out, sum[:]...)
	}
	return out
}

// deserializeSession rebuilds a session from serialized state.
func (s *SHU) deserializeSession(plain []byte, cipher crypto.BlockCipher) (*session, error) {
	rd := func() (uint64, error) {
		if len(plain) < 8 {
			return 0, fmt.Errorf("core: truncated context")
		}
		v := binary.BigEndian.Uint64(plain[:8])
		plain = plain[8:]
		return v, nil
	}
	mode, err := rd()
	if err != nil {
		return nil, err
	}
	if AuthMode(mode) != s.params.AuthMode {
		return nil, fmt.Errorf("core: context auth mode %d does not match SHU", mode)
	}
	seq, err := rd()
	if err != nil {
		return nil, err
	}
	ctr, err := rd()
	if err != nil {
		return nil, err
	}
	nbanks, err := rd()
	if err != nil {
		return nil, err
	}
	if int(nbanks) != s.params.Masks {
		return nil, fmt.Errorf("core: context has %d banks, SHU expects %d", nbanks, s.params.Masks)
	}
	ss := &session{cipher: cipher, seq: seq, ctr: ctr}
	ss.banks = make([][]aes.Block, nbanks)
	for i := range ss.banks {
		ss.banks[i] = make([]aes.Block, BlocksPerLine)
		for j := range ss.banks[i] {
			if len(plain) < aes.BlockSize {
				return nil, fmt.Errorf("core: truncated bank state")
			}
			copy(ss.banks[i][j][:], plain)
			plain = plain[aes.BlockSize:]
		}
	}
	if len(plain) < aes.BlockSize {
		return nil, fmt.Errorf("core: truncated chain state")
	}
	var sum aes.Block
	copy(sum[:], plain)
	plain = plain[aes.BlockSize:]
	if s.params.AuthMode == AuthGF {
		if len(plain) < 2*aes.BlockSize {
			return nil, fmt.Errorf("core: truncated GF state")
		}
		copy(ss.ctrBase[:], plain)
		plain = plain[aes.BlockSize:]
		var sub [16]byte
		copy(sub[:], plain)
		ss.ghash = gf128.NewGHASHWithState(sub, [16]byte(sum))
	} else {
		ss.mac = cbcmac.Resume(cipher, sum)
	}
	return ss, nil
}
