package core

import (
	"errors"
	"fmt"
)

// ErrGroupsExhausted is returned by Allocate when every GID is occupied
// and the caller did not ask to queue.
var ErrGroupsExhausted = errors.New("core: all group IDs occupied")

// GroupTable is the OS-visible allocator of group IDs (§5.2). Once a GID is
// selected for a program, the corresponding entry is marked occupied on
// every processor — including non-members — so untrusting applications can
// never share a GID. The table also implements the paper's waiting queue
// for GID exhaustion.
type GroupTable struct {
	occupied [MaxGroups]bool
	members  [MaxGroups]uint32
	free     int
	queue    []chan int // waiters for a reclaimed GID, FIFO
}

// NewGroupTable returns a table with every GID free.
func NewGroupTable() *GroupTable {
	return &GroupTable{free: MaxGroups}
}

// Allocate reserves a GID for the given member bitmask. It fails with
// ErrGroupsExhausted when no entry is free.
func (g *GroupTable) Allocate(members uint32) (int, error) {
	if members == 0 {
		return 0, fmt.Errorf("core: empty member set")
	}
	for gid := 0; gid < MaxGroups; gid++ {
		if !g.occupied[gid] {
			g.occupied[gid] = true
			g.members[gid] = members
			g.free--
			return gid, nil
		}
	}
	return 0, ErrGroupsExhausted
}

// AllocateOrWait reserves a GID, or registers a waiter that receives the
// next reclaimed GID. The second return is non-nil only when queued.
func (g *GroupTable) AllocateOrWait(members uint32) (int, <-chan int, error) {
	gid, err := g.Allocate(members)
	if err == nil {
		return gid, nil, nil
	}
	if !errors.Is(err, ErrGroupsExhausted) {
		return 0, nil, err
	}
	ch := make(chan int, 1)
	g.queue = append(g.queue, ch)
	return 0, ch, nil
}

// Release reclaims a GID on program completion. If applications are queued
// waiting, the GID is handed directly to the oldest waiter (staying
// occupied); the waiter's member set must be set via SetMembers.
func (g *GroupTable) Release(gid int) {
	if gid < 0 || gid >= MaxGroups || !g.occupied[gid] {
		panic(fmt.Sprintf("core: release of unoccupied GID %d", gid))
	}
	g.members[gid] = 0
	if len(g.queue) > 0 {
		ch := g.queue[0]
		g.queue = g.queue[1:]
		ch <- gid
		return
	}
	g.occupied[gid] = false
	g.free++
}

// SetMembers records the member set of a GID handed over via the queue.
func (g *GroupTable) SetMembers(gid int, members uint32) {
	if !g.occupied[gid] {
		panic(fmt.Sprintf("core: SetMembers on free GID %d", gid))
	}
	g.members[gid] = members
}

// Occupied reports whether gid is allocated.
func (g *GroupTable) Occupied(gid int) bool { return g.occupied[gid] }

// Members returns the member bitmask of gid.
func (g *GroupTable) Members(gid int) uint32 { return g.members[gid] }

// Free returns the number of unallocated GIDs.
func (g *GroupTable) Free() int { return g.free }

// MemberList expands a bitmask into ascending PIDs.
func MemberList(members uint32) []int {
	var out []int
	for pid := 0; pid < MaxProcs; pid++ {
		if members&(1<<uint(pid)) != 0 {
			out = append(out, pid)
		}
	}
	return out
}

// MemberMask builds a bitmask from PIDs.
func MemberMask(pids ...int) uint32 {
	var m uint32
	for _, pid := range pids {
		if pid < 0 || pid >= MaxProcs {
			panic(fmt.Sprintf("core: PID %d out of range", pid))
		}
		m |= 1 << uint(pid)
	}
	return m
}
