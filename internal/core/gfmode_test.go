package core

import (
	"bytes"
	"testing"

	"senss/internal/crypto/aes"
	"senss/internal/rng"
)

func gfParams() Params {
	p := DefaultParams()
	p.AuthMode = AuthGF
	p.AuthInterval = 10
	return p
}

func TestGFModeCleanRoundTrip(t *testing.T) {
	s, gid := newTestSystem(t, 4, gfParams(), 200)
	r := rng.New(201)
	for i := 0; i < 60; i++ {
		line := randomLine(r)
		txn := c2c(s, gid, i%4, (i+1)%4, line)
		if !bytes.Equal(txn.Data, line) {
			t.Fatalf("transfer %d corrupted", i)
		}
	}
	ref, _ := s.SHU(0).MACSum(gid)
	for pid := 1; pid < 4; pid++ {
		m, _ := s.SHU(pid).MACSum(gid)
		if m != ref {
			t.Errorf("processor %d GHASH diverged on clean traffic", pid)
		}
	}
	if s.Detected() {
		t.Errorf("false alarm: %v", s.Stats.Detections)
	}
}

func TestGFModeDetectsDropping(t *testing.T) {
	s, gid := newTestSystem(t, 4, gfParams(), 202)
	s.SetTamperer(&dropTamperer{dropSeq: 2, victims: []int{3}})
	r := rng.New(203)
	for i := 0; i < 12 && !s.Detected(); i++ {
		c2c(s, gid, 0, 1, randomLine(r))
	}
	if !s.Detected() {
		t.Fatal("GF mode missed a dropped message")
	}
}

func TestGFModeDetectsReordering(t *testing.T) {
	s, gid := newTestSystem(t, 4, gfParams(), 204)
	s.SetTamperer(&swapTamperer{swapSeq: 1, procs: 4})
	r := rng.New(205)
	for i := 0; i < 12 && !s.Detected(); i++ {
		c2c(s, gid, 0, 1+(i%3), randomLine(r))
	}
	if !s.Detected() {
		t.Fatal("GF mode missed a reordering")
	}
}

func TestGFModeDetectsSpoofing(t *testing.T) {
	s, gid := newTestSystem(t, 4, gfParams(), 206)
	r := rng.New(207)
	s.SetTamperer(&spoofTamperer{atSeq: 1, victim: 3, claimed: 2,
		payload: LineToBlocks(randomLine(r))})
	for i := 0; i < 12 && !s.Detected(); i++ {
		c2c(s, gid, 0, 1, randomLine(r))
	}
	if !s.Detected() {
		t.Fatal("GF mode missed a spoof")
	}
}

// TestGFModeNeverStalls is the mode's performance property: even with a
// single mask bank under back-to-back traffic, no stall cycles accrue.
func TestGFModeNeverStalls(t *testing.T) {
	params := gfParams()
	params.Perfect = false
	params.Masks = 1
	// newTestSystem forces Perfect=true, so build by hand.
	s := NewSystem(nil, nil, 2, params, false)
	key, encIV, authIV := testIVs(208)
	table := NewGroupTable()
	gid, _ := table.Allocate(MemberMask(0, 1))
	if err := s.Establish(gid, key, MemberMask(0, 1), encIV, authIV); err != nil {
		t.Fatal(err)
	}
	r := rng.New(209)
	for i := 0; i < 50; i++ {
		line := randomLine(r)
		txn := c2c(s, gid, 0, 1, line)
		if !bytes.Equal(txn.Data, line) {
			t.Fatalf("transfer %d corrupted", i)
		}
	}
	if s.Stats.MaskStalls != 0 {
		t.Errorf("AuthGF accrued %d stall cycles", s.Stats.MaskStalls)
	}
}

// TestGFMasksNeverRepeat: counter-mode masks must be unique across a long
// trace (pad reuse would reintroduce the §3.1 leak).
func TestGFMasksNeverRepeat(t *testing.T) {
	s, gid := newTestSystem(t, 2, gfParams(), 210)
	rec := &recordingTamperer{}
	s.SetTamperer(rec)
	line := make([]byte, 64) // constant plaintext: repeated masks ⇒ repeated cipher
	for i := 0; i < 100; i++ {
		c2c(s, gid, 0, 1, line)
	}
	seen := make(map[aes.Block]int)
	for i, msg := range rec.ciphers {
		for _, b := range msg {
			if prev, dup := seen[b]; dup {
				t.Fatalf("mask reuse: message %d repeats a block of message %d", i, prev)
			}
			seen[b] = i
		}
	}
}

func TestGFAndCBCChainsDiffer(t *testing.T) {
	// The same traffic under the two modes must produce unrelated tags
	// (different constructions, same inputs).
	run := func(p Params) aes.Block {
		s, gid := newTestSystem(t, 2, p, 211)
		r := rng.New(212)
		for i := 0; i < 10; i++ {
			c2c(s, gid, 0, 1, randomLine(r))
		}
		sum, _ := s.SHU(0).MACSum(gid)
		return sum
	}
	cbc := run(DefaultParams())
	gf := run(gfParams())
	if cbc == gf {
		t.Error("CBC and GF chains produced the same value")
	}
}

func TestAuthModeString(t *testing.T) {
	if AuthCBC.String() != "cbc" || AuthGF.String() != "gf" {
		t.Error("mode names wrong")
	}
}
