package core

import (
	"senss/internal/crypto"
	"senss/internal/crypto/aes"
)

// This file implements the two *insecure* strawmen the paper analyzes, so
// their weaknesses can be demonstrated by tests and the attack examples:
//
//   - §3.1: reusing the cache-to-memory OTP pad for cache-to-cache traffic
//     leaks D ⊕ D' to a bus observer whenever the same pad encrypts two
//     versions of a line;
//   - §4.3 (Type 2 discussion): using the encryption masks themselves as
//     the integrity evidence "recovers" after a reordering attack, so the
//     attack goes undetected — which is why SENSS chains a separate MAC
//     under a different IV.

// PadReuseChannel models the broken scheme of §3.1: a fixed per-address
// pad (the memory-encryption pad, unchanged while the line is dirty in a
// cache) XOR-encrypts every bus transfer of that line.
type PadReuseChannel struct {
	cipher crypto.BlockCipher
}

// NewPadReuseChannel builds the strawman channel over cipher.
func NewPadReuseChannel(cipher crypto.BlockCipher) *PadReuseChannel {
	return &PadReuseChannel{cipher: cipher}
}

// Pad derives the (address-stable) pad for addr — exactly the fast memory
// encryption pad construction with a sequence number that does NOT change
// between the two transfers (the line stays dirty in the owner's cache).
func (c *PadReuseChannel) Pad(addr uint64, seq uint64) aes.Block {
	return c.cipher.Encrypt(aes.BlockFromUint64(addr, seq))
}

// Encrypt is the strawman bus encryption: data ⊕ pad(addr).
func (c *PadReuseChannel) Encrypt(addr uint64, seq uint64, data aes.Block) aes.Block {
	return data.XOR(c.Pad(addr, seq))
}

// LeakXOR is the §3.1 attack: XORing two ciphertexts of the same address
// (same pad) yields D ⊕ D' without knowing the key.
func LeakXOR(c1, c2 aes.Block) aes.Block { return c1.XOR(c2) }

// MaskChainAuth models the flawed "authenticate with the masks" idea of
// §4.3: integrity evidence is simply the current mask, which is refreshed
// as AES_K(previous ciphertext) with no PID and no separate chain. After a
// swap of two adjacent messages both ends converge to the same mask again,
// so comparing masks at a later checkpoint detects nothing.
type MaskChainAuth struct {
	cipher crypto.BlockCipher
	mask   aes.Block
}

// NewMaskChainAuth starts the strawman chain from iv over cipher.
func NewMaskChainAuth(cipher crypto.BlockCipher, iv aes.Block) *MaskChainAuth {
	return &MaskChainAuth{cipher: cipher, mask: iv}
}

// ObserveCipher advances the strawman chain with a raw ciphertext block.
func (m *MaskChainAuth) ObserveCipher(c aes.Block) {
	m.mask = m.cipher.Encrypt(c)
}

// Evidence returns the current chain value (what a checkpoint would
// compare).
func (m *MaskChainAuth) Evidence() aes.Block { return m.mask }
